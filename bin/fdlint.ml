(* fdlint — static analysis over the project's own sources.

   Parses every .ml/.mli under the root with compiler-libs and enforces
   the project rules (see `fdlint --list-rules` and DESIGN.md §11/§16;
   the range below is derived from the registry).  Exit codes: 0 clean,
   1 findings, 2 usage/config error. *)

let usage =
  Printf.sprintf
    "usage: fdlint [--root DIR] [--config FILE] [--list-rules] [--smoke] [options]\n\
     rules: %s" Lint.Rules.span

let () =
  let root = ref "." in
  let config_path = ref "" in
  let list_rules = ref false in
  let smoke = ref false in
  let quiet = ref false in
  let format = ref "text" in
  let disabled = ref [] in
  let only = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  tree to lint (default: .)");
      ("--config", Arg.Set_string config_path, "FILE  config file (default: ROOT/.fdlint)");
      ( "--list-rules",
        Arg.Set list_rules,
        Printf.sprintf "  describe every rule (%s) and exit" Lint.Rules.span );
      ("--smoke", Arg.Set smoke, "  self-test: check each rule fires on its builtin positive");
      ("--disable", Arg.String (fun r -> disabled := r :: !disabled), "RULE  turn a rule off");
      ("--only", Arg.String (fun r -> only := r :: !only), "RULE  run only the named rule(s)");
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun f -> format := f),
        "  findings as human text (default) or one JSON object per line" );
      ("--quiet", Arg.Set quiet, "  print nothing; communicate through the exit code");
    ]
  in
  Arg.parse spec
    (fun a ->
      prerr_endline ("fdlint: unexpected argument " ^ a);
      exit 2)
    usage;
  let selected =
    Lint.Rules.all
    |> List.filter (fun r -> not (List.exists (fun s -> Lint.Rule.spec_matches s r) !disabled))
    |> List.filter (fun r ->
           !only = [] || List.exists (fun s -> Lint.Rule.spec_matches s r) !only)
  in
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rule.t) ->
        Printf.printf "%s %-22s %s\n" r.id r.name r.doc;
        List.iter
          (fun (tag, p) ->
            Printf.printf "   scope%s: %s\n" (if tag = "" then "" else " (" ^ tag ^ ")") p)
          r.scope;
        List.iter
          (fun (tag, p) ->
            Printf.printf "   allow%s: %s\n" (if tag = "" then "" else " (" ^ tag ^ ")") p)
          r.allow)
      selected;
    exit 0
  end;
  if !smoke then begin
    let failed = ref 0 in
    List.iter
      (fun (r : Lint.Rule.t) ->
        let ok = Lint.Driver.smoke r in
        if not ok then incr failed;
        if not !quiet then
          Printf.printf "%s %-22s %s\n" r.id r.name (if ok then "fires" else "SILENT"))
      selected;
    if not !quiet then
      Printf.printf "fdlint --smoke: %d/%d rules fire\n"
        (List.length selected - !failed)
        (List.length selected);
    exit (if !failed > 0 then 1 else 0)
  end;
  let config_file =
    if !config_path <> "" then !config_path else Filename.concat !root ".fdlint"
  in
  match Lint.Config.load config_file with
  | Error e ->
      prerr_endline ("fdlint: " ^ e);
      exit 2
  | Ok config ->
      let findings, nfiles = Lint.Driver.lint_tree ~config ~rules:selected ~root:!root () in
      if not !quiet then begin
        match !format with
        | "json" -> List.iter (fun f -> print_endline (Lint.Finding.to_json f)) findings
        | _ ->
            List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
            Printf.printf "fdlint: %d finding(s) in %d file(s) scanned\n" (List.length findings)
              nfiles
      end;
      exit (if findings <> [] then 1 else 0)
