(* fdserved: the multi-tenant oblivious block-service daemon.

     fdserved --unix /tmp/fdd.sock
     fdserved --tcp 127.0.0.1:7144 --max-conns 128 --idle-timeout 60
     fdserved --unix /tmp/fdd.sock --domains 8   # 8 worker domains
     fdserved --selftest        # loopback smoke test, exits 0 on success *)

open Cmdliner

let parse_backend s =
  match Service.Evloop.of_string s with
  | Ok b -> b
  | Error msg -> invalid_arg ("--backend " ^ s ^ ": " ^ msg)

let parse_tcp s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "--tcp %S: expected HOST:PORT" s)
  | Some i ->
      let host = String.sub s 0 i in
      let port = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      (host, port)

let serve unix_path tcp max_conns idle_timeout drain_grace domains backend data_dir
    max_resident verbose =
  let log = if verbose then fun msg -> Printf.eprintf "fdserved: %s\n%!" msg else ignore in
  let cfg =
    {
      Service.Daemon.unix_path;
      tcp = Option.map parse_tcp tcp;
      max_conns;
      idle_timeout;
      drain_grace;
      domains = max 1 domains;
      backend = parse_backend backend;
      data_dir;
      max_resident;
      log;
    }
  in
  let daemon = Service.Daemon.create cfg in
  Service.Daemon.install_stop_signals daemon;
  (match Service.Daemon.tcp_port daemon with
  | Some port -> Printf.printf "fdserved: listening on tcp port %d\n%!" port
  | None -> ());
  (match unix_path with
  | Some path -> Printf.printf "fdserved: listening on unix socket %s\n%!" path
  | None -> ());
  Printf.printf "fdserved: %d worker domain(s), %s backend\n%!"
    (Service.Daemon.domains daemon)
    (Service.Evloop.to_string (Service.Daemon.backend daemon));
  (match data_dir with
  | Some dir ->
      Printf.printf "fdserved: durable tenant state under %s%s\n%!" dir
        (if max_resident > 0 then Printf.sprintf " (max %d resident per worker)" max_resident
         else "")
  | None -> ());
  Service.Daemon.run daemon;
  `Ok ()

(* Loopback smoke test: daemon in a background thread on a fresh Unix
   socket, two clients in disjoint namespaces doing real block traffic,
   then a graceful drain.  Run once single-domain and once with two
   worker domains so `dune runtest` exercises the sharded path.  Used
   from `dune runtest`. *)
let selftest_with ~domains ~backend =
  let path = Filename.temp_file "fdserved" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        drain_grace = 10.;
        domains;
        backend }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("selftest: " ^ m)) fmt in
  let check name cond = if not cond then fail "%s" name in
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () ->
      let open Servsim in
      let a = Remote.connect_unix ~namespace:"alice" path in
      let b = Remote.connect_unix ~namespace:"bob" path in
      Remote.ping a;
      Remote.ping b;
      let setup conn fill =
        check "create" (Remote.call conn (Wire.Create_store "blocks") = Wire.Ok);
        check "ensure" (Remote.call conn (Wire.Ensure ("blocks", 8)) = Wire.Ok);
        check "put" (Remote.call conn (Wire.Put ("blocks", 3, String.make 64 fill)) = Wire.Ok)
      in
      setup a 'A';
      setup b 'B';
      check "tenant isolation"
        (Remote.call a (Wire.Get ("blocks", 3)) <> Remote.call b (Wire.Get ("blocks", 3)));
      let stats = Remote.stats a in
      check "stats frames" (stats.Wire.frames = Remote.frames a);
      check "stats sessions" (stats.Wire.sessions = 2);
      Remote.close b;
      (* b is gone; a must still be served. *)
      check "a alive after b closed"
        (Remote.call a (Wire.Get ("blocks", 3)) = Wire.Value (String.make 64 'A'));
      Remote.close a);
  check "drained" (Service.Daemon.live_conns daemon = 0);
  Printf.printf "fdserved selftest (domains=%d, backend=%s): OK\n%!" domains
    (Service.Evloop.to_string backend)

(* Persistence smoke test: the same op sequence served (a) by one
   uninterrupted in-memory daemon across a client reconnect and (b) by a
   disk-backed daemon that is gracefully restarted between the two
   connections.  Digests, trace count and the server-side frame ledger
   must be bit-identical — restart must be invisible. *)
let selftest_persist () =
  let open Servsim in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("selftest-persist: " ^ m)) fmt in
  let check name cond = if not cond then fail "%s" name in
  let fresh_path suffix =
    let p = Filename.temp_file "fdserved" suffix in
    Sys.remove p;
    p
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let batch_a conn =
    check "create" (Remote.call conn (Wire.Create_store "blocks") = Wire.Ok);
    check "ensure" (Remote.call conn (Wire.Ensure ("blocks", 16)) = Wire.Ok);
    for i = 0 to 15 do
      check "put" (Remote.call conn (Wire.Put ("blocks", i, String.make 48 'p')) = Wire.Ok)
    done;
    check "get" (Remote.call conn (Wire.Get ("blocks", 7)) = Wire.Value (String.make 48 'p'))
  in
  let batch_b conn =
    for i = 0 to 15 do
      check "put2" (Remote.call conn (Wire.Put ("blocks", i, String.make 32 'q')) = Wire.Ok)
    done;
    check "get2" (Remote.call conn (Wire.Get ("blocks", 3)) = Wire.Value (String.make 32 'q'));
    let stats = Remote.stats conn in
    let digests = Remote.server_digests conn in
    (digests, stats.Wire.frames)
  in
  let with_daemon ~data_dir f =
    let path = fresh_path ".sock" in
    let daemon =
      Service.Daemon.create
        { Service.Daemon.default_config with
          unix_path = Some path;
          drain_grace = 10.;
          data_dir }
    in
    let th = Thread.create Service.Daemon.run daemon in
    Fun.protect
      ~finally:(fun () ->
        Service.Daemon.stop daemon;
        Thread.join th)
      (fun () -> f path)
  in
  (* Reference: one daemon, two sequential connections. *)
  let reference =
    with_daemon ~data_dir:None (fun path ->
        let c1 = Remote.connect_unix ~namespace:"tenant" path in
        batch_a c1;
        Remote.close c1;
        let c2 = Remote.connect_unix ~namespace:"tenant" path in
        let r = batch_b c2 in
        Remote.close c2;
        r)
  in
  (* Disk-backed: same ops, but the daemon restarts between connections. *)
  let data_dir = fresh_path ".data" in
  Fun.protect
    ~finally:(fun () -> rm_rf data_dir)
    (fun () ->
      with_daemon ~data_dir:(Some data_dir) (fun path ->
          let c1 = Remote.connect_unix ~namespace:"tenant" path in
          batch_a c1;
          Remote.close c1);
      let recovered =
        with_daemon ~data_dir:(Some data_dir) (fun path ->
            let c2 = Remote.connect_unix ~namespace:"tenant" path in
            let r = batch_b c2 in
            Remote.close c2;
            r)
      in
      check "digests and ledger survive restart" (recovered = reference));
  Printf.printf "fdserved selftest (persistence): OK\n%!"

(* Dynamic-session smoke test: a streaming Ex-ORAM session (Begin,
   pipelined inserts, a delete) interrupted by a daemon restart
   mid-update-stream, against an uninterrupted in-memory daemon.  The
   concluding Revalidate's FD statuses, engine trace digests and
   per-verb counters must be bit-identical — the restart rehydrates the
   session by replaying its journaled update history. *)
let selftest_dynamic () =
  let open Servsim in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("selftest-dynamic: " ^ m)) fmt in
  let check name cond = if not cond then fail "%s" name in
  let fresh_path suffix =
    let p = Filename.temp_file "fdserved" suffix in
    Sys.remove p;
    p
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let row ints =
    Dynserve.encode_row (Array.of_list (List.map (fun i -> Relation.Value.Int i) ints))
  in
  let batch_a conn =
    let r0 =
      Remote.begin_dynamic conn ~capacity:64 ~seed:11L ~cols:3
        (List.map row [ [ 1; 10; 100 ]; [ 1; 10; 200 ]; [ 2; 20; 100 ]; [ 3; 20; 200 ] ])
    in
    check "initial FDs all valid" (List.for_all (fun s -> s.Wire.fd_valid) r0.Wire.fds);
    check "pipelined inserts assign sequential ids"
      (Remote.insert_rows conn [ row [ 2; 3; 1 ]; row [ 3; 1; 1 ] ] = [ 4; 5 ]);
    Remote.delete_row conn ~id:2
  in
  let batch_b conn =
    check "insert after restart" (Remote.insert_rows conn [ row [ 9; 9; 9 ] ] = [ 6 ]);
    let r = Remote.revalidate conn in
    let st = Remote.stats conn in
    (r, st.Wire.inserts, st.Wire.deletes, st.Wire.revalidates)
  in
  let with_daemon ~data_dir f =
    let path = fresh_path ".sock" in
    let daemon =
      Service.Daemon.create
        { Service.Daemon.default_config with
          unix_path = Some path;
          drain_grace = 10.;
          data_dir }
    in
    let th = Thread.create Service.Daemon.run daemon in
    Fun.protect
      ~finally:(fun () ->
        Service.Daemon.stop daemon;
        Thread.join th)
      (fun () -> f path)
  in
  let reference =
    with_daemon ~data_dir:None (fun path ->
        let c1 = Remote.connect_unix ~namespace:"dyn" ~depth:8 path in
        batch_a c1;
        Remote.close c1;
        let c2 = Remote.connect_unix ~namespace:"dyn" path in
        let r = batch_b c2 in
        Remote.close c2;
        r)
  in
  let data_dir = fresh_path ".data" in
  Fun.protect
    ~finally:(fun () -> rm_rf data_dir)
    (fun () ->
      with_daemon ~data_dir:(Some data_dir) (fun path ->
          let c1 = Remote.connect_unix ~namespace:"dyn" ~depth:8 path in
          batch_a c1;
          Remote.close c1);
      let recovered =
        with_daemon ~data_dir:(Some data_dir) (fun path ->
            let c2 = Remote.connect_unix ~namespace:"dyn" path in
            let r = batch_b c2 in
            Remote.close c2;
            r)
      in
      check "dynamic session survives restart bit-identically" (recovered = reference));
  Printf.printf "fdserved selftest (dynamic sessions): OK\n%!"

let selftest domains =
  (* Every compiled-in readiness backend, single-domain and sharded:
     acceptor + worker domains with fd handoff. *)
  List.iter
    (fun backend ->
      selftest_with ~domains:1 ~backend;
      selftest_with ~domains:(max 2 domains) ~backend)
    (Service.Evloop.available ());
  selftest_persist ();
  selftest_dynamic ();
  `Ok ()

let run unix_path tcp max_conns idle_timeout drain_grace domains backend data_dir
    max_resident oram_cache_levels verbose do_selftest =
  try
    (* Re-register the provider with the configured cache depth (the
       startup install covers only the pre-parse default). *)
    Dynserve.install ~oram_cache_levels ();
    if do_selftest then selftest domains
    else if unix_path = None && tcp = None then
      `Error (true, "need at least one of --unix / --tcp (or --selftest)")
    else
      serve unix_path tcp max_conns idle_timeout drain_grace domains backend data_dir
        max_resident verbose
  with
  | Failure msg | Invalid_argument msg -> `Error (false, msg)
  | Unix.Unix_error (e, fn, arg) ->
      `Error (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

let cmd =
  let unix_path =
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH"
         ~doc:"Serve on a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Serve on TCP at $(docv) (port 0 picks an ephemeral port).")
  in
  let max_conns =
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N"
         ~doc:"Reject connections beyond $(docv) concurrent clients.")
  in
  let idle_timeout =
    Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECONDS"
         ~doc:"Close connections idle for more than $(docv) seconds (0 disables).")
  in
  let drain_grace =
    Arg.(value & opt float 5. & info [ "drain-grace" ] ~docv:"SECONDS"
         ~doc:"Keep serving live connections for up to $(docv) seconds after SIGTERM.")
  in
  let domains =
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "domains" ] ~docv:"N"
         ~doc:"Shard tenants over $(docv) worker domains (1 = single-domain \
               event loop, the default on single-core hosts).")
  in
  let backend =
    Arg.(value & opt string "auto" & info [ "backend" ] ~docv:"BACKEND"
         ~doc:"Readiness backend: $(b,auto) (the most scalable compiled-in one), \
               $(b,select) (portable, capped at 1024 descriptors), $(b,poll) or \
               $(b,epoll).")
  in
  let data_dir =
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"PATH"
         ~doc:"Persist tenant state (snapshot + write-ahead journal per namespace) under \
               $(docv); tenants survive daemon restarts with bit-identical digests and \
               ledgers.  Without it, tenant state is in-memory only.")
  in
  let max_resident =
    Arg.(value & opt int 0 & info [ "max-resident" ] ~docv:"N"
         ~doc:"With --data-dir: keep at most $(docv) tenants in memory per worker, \
               LRU-evicting cold ones to disk (0 disables eviction).")
  in
  let oram_cache_levels =
    Arg.(value & opt int 0 & info [ "oram-cache-levels" ] ~docv:"K"
         ~doc:"Treetop-cache depth for the ORAMs of dynamic FD sessions: the top \
               $(docv) levels of every tree stay decrypted in the engine, trading \
               memory for fewer, smaller store frames.  Not journaled: keep it \
               stable across restarts of a daemon whose clients compare trace \
               digests.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log connection events.") in
  let do_selftest =
    Arg.(value & flag & info [ "selftest" ]
         ~doc:"Run a loopback smoke test (daemon + two clients) and exit.")
  in
  let info_ =
    Cmd.info "fdserved" ~doc:"Multi-tenant oblivious block-service daemon"
  in
  Cmd.v info_
    Term.(ret (const run $ unix_path $ tcp $ max_conns $ idle_timeout $ drain_grace
               $ domains $ backend $ data_dir $ max_resident $ oram_cache_levels
               $ verbose $ do_selftest))

let () =
  (* Link the dynamic-FD engine into the request handler: without this
     the daemon serves v5 dynamic verbs with a clean "unavailable"
     error instead of a session. *)
  Dynserve.install ();
  exit (Cmd.eval cmd)
