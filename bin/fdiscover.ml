(* fdiscover: secure FD discovery from the command line.

     fdiscover --dataset adult --rows 128 --method sort
     fdiscover --csv data.csv --method or-oram --max-lhs 2
     fdiscover --dataset rnd --rows 64 --method sort --enclave
     fdiscover --dataset fig1 --baseline *)

open Cmdliner
open Relation

let load_table dataset csv rows seed =
  match (csv, dataset) with
  | Some path, _ -> Csv.load path
  | None, "adult" -> Datasets.Adult_like.generate ~seed ~rows ()
  | None, "letter" -> Datasets.Letter_like.generate ~seed ~rows ()
  | None, "flight" -> Datasets.Flight_like.generate ~seed ~rows ()
  | None, "rnd" -> Datasets.Rnd.generate ~seed ~rows ~cols:8 ()
  | None, "fig1" -> Datasets.Examples.fig1 ()
  | None, "employee" -> Datasets.Examples.employee ()
  | None, other -> invalid_arg (Printf.sprintf "unknown dataset %S" other)

let method_of_string = function
  | "sort" -> Core.Protocol.Sort
  | "or-oram" -> Core.Protocol.Or_oram
  | "ex-oram" -> Core.Protocol.Ex_oram
  | other -> invalid_arg (Printf.sprintf "unknown method %S" other)

let run dataset csv rows seed method_name max_lhs cache_levels enclave baseline det_baseline
    epsilon remote verbose debug =
  if debug then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Core.Log.src (Some Logs.Debug)
  end;
  try
    let table = load_table dataset csv rows seed in
    let schema = Table.schema table in
    Format.printf "Loaded %d rows x %d columns.@." (Table.rows table) (Table.cols table);
    let print_fds fds =
      List.iter (fun fd -> Format.printf "  %a@." (Fdbase.Fd.pp_named schema) fd) fds
    in
    if baseline then begin
      let r = Fdbase.Tane.discover ?max_lhs table in
      Format.printf "Plaintext TANE: %d minimal FDs (%d lattice nodes).@."
        (List.length r.Fdbase.Lattice.fds) r.Fdbase.Lattice.sets_checked;
      print_fds r.Fdbase.Lattice.fds;
      `Ok ()
    end
    else if det_baseline then begin
      let r = Baseline.Freq_fd.discover ?max_lhs (String.make 16 'K') table in
      Format.printf
        "Frequency-revealing baseline (deterministic encryption): %d FDs in %.3fs.@."
        (List.length r.Baseline.Freq_fd.fds) r.Baseline.Freq_fd.elapsed_s;
      print_fds r.Baseline.Freq_fd.fds;
      Format.printf
        "WARNING: this mode leaks every column's frequency histogram to the server@.";
      `Ok ()
    end
    else begin
      match epsilon with
      | Some epsilon ->
          let r =
            Core.Protocol.discover_approx ~seed ?max_lhs
              ~oram_cache_levels:cache_levels ~epsilon (method_of_string method_name)
              table
          in
          Format.printf "Secure %g-approximate FD discovery (%s): %d FDs.@." epsilon
            method_name
            (List.length r.Fdbase.Approx.fds);
          print_fds r.Fdbase.Approx.fds;
          `Ok ()
      | None ->
          let discover_once () =
            if enclave then Core.Enclave.discover ~seed ?max_lhs table
            else if remote then begin
              let fd, pid = Servsim.Remote_server.fork_server () in
              let conn = Servsim.Remote.connect_fd ~pid fd in
              Fun.protect
                ~finally:(fun () -> Servsim.Remote.close conn)
                (fun () ->
                  Core.Protocol.discover ~seed ?max_lhs ~remote:conn
                    ~oram_cache_levels:cache_levels (method_of_string method_name) table)
            end
            else
              Core.Protocol.discover ~seed ?max_lhs ~oram_cache_levels:cache_levels
                (method_of_string method_name) table
          in
          let report = discover_once () in
          Format.printf "Secure FD discovery (%s%s%s): %d minimal FDs.@."
            (if enclave then "enclave " else "")
            (if remote && not enclave then "remote-process " else "")
            (if enclave then "Sort" else method_name)
            (List.length report.Core.Protocol.fds);
          print_fds report.Core.Protocol.fds;
          if verbose then begin
            Format.printf "@.%a@." Servsim.Cost.pp_snapshot report.Core.Protocol.cost;
            Format.printf
              "elapsed: %.3f s, trace: %d accesses, shape digest %016Lx, full digest %016Lx@."
              report.Core.Protocol.elapsed_s report.Core.Protocol.trace_count
              report.Core.Protocol.trace_shape report.Core.Protocol.trace_full
          end;
          `Ok ()
    end
  with
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

let dataset =
  Arg.(value & opt string "fig1"
       & info [ "dataset"; "d" ] ~docv:"NAME"
           ~doc:"Built-in dataset: fig1, employee, adult, letter, flight, rnd.")

let csv =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"FILE" ~doc:"Load the table from a CSV file (header row).")

let rows =
  Arg.(value & opt int 64
       & info [ "rows"; "n" ] ~docv:"N" ~doc:"Rows to generate for built-in datasets.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let method_name =
  Arg.(value & opt string "sort"
       & info [ "method"; "m" ] ~docv:"METHOD" ~doc:"sort, or-oram, or ex-oram.")

let max_lhs =
  Arg.(value & opt (some int) None
       & info [ "max-lhs" ] ~docv:"K" ~doc:"Cap left-hand-side size (lattice depth).")

let cache_levels =
  Arg.(value & opt int 0
       & info [ "oram-cache-levels" ] ~docv:"K"
           ~doc:"Keep the top $(docv) levels of every ORAM tree decrypted client-side \
                 (treetop caching): fewer and smaller wire frames for more client \
                 memory.  0 (default) disables caching; the discovered FDs are \
                 identical either way.")

let enclave =
  Arg.(value & flag & info [ "enclave" ] ~doc:"Run the Sort method in the SGX simulation.")

let baseline =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Run plaintext TANE instead of a secure method.")

let det_baseline =
  Arg.(value & flag
       & info [ "det-baseline" ]
           ~doc:"Run the frequency-revealing prior-art baseline (deterministic encryption).")

let epsilon =
  Arg.(value & opt (some float) None
       & info [ "approx" ] ~docv:"EPS" ~doc:"Discover EPS-approximate FDs (split error).")

let remote =
  Arg.(value & flag
       & info [ "remote" ]
           ~doc:"Fork a real server process and run the protocol over a Unix socketpair.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print cost accounting.")

let debug =
  Arg.(value & flag & info [ "debug" ] ~doc:"Enable protocol debug logging on stderr.")

let cmd =
  let doc = "secure functional dependency discovery in outsourced databases" in
  Cmd.v
    (Cmd.info "fdiscover" ~doc)
    Term.(ret (const run $ dataset $ csv $ rows $ seed $ method_name $ max_lhs $ cache_levels
               $ enclave $ baseline $ det_baseline $ epsilon $ remote $ verbose $ debug))

let () =
  Servsim.Remote_server.maybe_serve_child ();
  exit (Cmd.eval cmd)
