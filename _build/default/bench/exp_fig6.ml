(* Fig. 6: practicality of Sort.
   (a) multi-threaded execution of the comparator network (OCaml domains
       stand in for the paper's threads);
   (b) deployment in a secure enclave: plaintext array in secure memory,
       no transfer and no re-encryption. *)

open Core
open Relation

let sort_single_threaded ?(domains = 1) ~network n =
  let table = Datasets.Rnd.generate ~seed:60 ~rows:n ~cols:1 () in
  let session = Session.create ~n ~m:1 () in
  let db = Enc_db.outsource session table in
  (* Tracing off: the single-threaded recorder must not be shared. *)
  Servsim.Trace.set_enabled (Session.trace session) false;
  Bench_util.time_unit (fun () -> ignore (Sort_method.single ~network ~domains db 0))

(* Modeled multi-core runtime: the comparator network's critical path.
   Within a stage all comparators are independent, so k workers need
   ceil(c_s / k) sequential comparator slots per stage; the per-comparator
   cost is calibrated from the measured single-thread run.  This is the
   substitute for real hardware parallelism when the host exposes a
   single core (see DESIGN.md §5) — with >= 16 real cores the measured
   column converges to this model (the worker-domain driver is real and
   tested for correctness). *)
let modeled_parallel ~network ~per_comparator n domains =
  let net =
    match network with
    | Sort_method.Bitonic -> Osort.Network.bitonic (Osort.Network.ceil_pow2 n)
    | Sort_method.Odd_even_merge -> Osort.Network.odd_even_merge (Osort.Network.ceil_pow2 n)
  in
  let slots =
    Array.fold_left
      (fun acc stage -> acc + ((Array.length stage + domains - 1) / domains))
      0 net.Osort.Network.stages
  in
  (* Two network executions (by key, by id) plus the linear pass. *)
  float_of_int (2 * slots) *. per_comparator
  +. (float_of_int n *. per_comparator /. 2.0)

let run_fig6a (opts : Bench_util.opts) =
  let n = Bench_util.pow2 (if opts.Bench_util.full then 12 else 10) in
  let cores = Domain.recommended_domain_count () in
  Bench_util.header
    (Printf.sprintf
       "Fig. 6(a): Sort with multiple threads (n = %d, bitonic network; host has %d core%s)" n
       cores (if cores = 1 then "" else "s"));
  ignore (sort_single_threaded ~domains:1 ~network:Sort_method.Bitonic (n / 4)) (* warmup *);
  let measured =
    List.map
      (fun domains -> (domains, sort_single_threaded ~domains ~network:Sort_method.Bitonic n))
      [ 1; 2; 4; 8; 16 ]
  in
  let t1 = List.assoc 1 measured in
  let net = Osort.Network.bitonic (Osort.Network.ceil_pow2 n) in
  let per_comparator =
    t1 /. float_of_int ((2 * Osort.Network.comparator_count net) + (n / 2))
  in
  Printf.printf "%10s %14s %16s %10s\n" "threads" "measured" "modeled(16core)" "speedup";
  List.iter
    (fun (domains, t) ->
      let m = modeled_parallel ~network:Sort_method.Bitonic ~per_comparator n domains in
      Printf.printf "%10d %14s %16s %9.2fx\n%!" domains (Bench_util.pretty_time t)
        (Bench_util.pretty_time m) (t1 /. m))
    measured;
  if cores = 1 then
    Printf.printf
      "(single-core host: the measured column cannot speed up; the modeled column\n\
       is the stage-critical-path time the worker-domain driver achieves on real\n\
       cores — substitution documented in DESIGN.md)\n";
  Bench_util.subheader "network ablation (1 thread, bitonic vs odd-even merge)";
  let tb = sort_single_threaded ~domains:1 ~network:Sort_method.Bitonic n in
  let to_ = sort_single_threaded ~domains:1 ~network:Sort_method.Odd_even_merge n in
  Printf.printf "  bitonic:        %s\n  odd-even merge: %s (%.2fx fewer comparators)\n%!"
    (Bench_util.pretty_time tb) (Bench_util.pretty_time to_) (tb /. to_);
  Printf.printf
    "\nExpected shape (paper Fig. 6a): near-2x from 1 -> 2 threads, diminishing\nreturns by 8 \
     -> 16.\n%!"

let enclave_time ~case n =
  let table = Datasets.Rnd.generate ~seed:61 ~rows:n ~cols:2 () in
  let x = match case with `Single -> Attrset.singleton 0 | `Multi -> Attrset.of_list [ 0; 1 ] in
  snd (Enclave.partition_cardinality table x)

let encrypted_time ~case n =
  let table = Datasets.Rnd.generate ~seed:61 ~rows:n ~cols:2 () in
  let x = match case with `Single -> Attrset.singleton 0 | `Multi -> Attrset.of_list [ 0; 1 ] in
  let _, r = Protocol.partition_cardinality Protocol.Sort table x in
  r.Protocol.elapsed_s

let run_fig6b (opts : Bench_util.opts) =
  let ks = if opts.Bench_util.full then [ 6; 8; 10; 12 ] else [ 6; 8; 10 ] in
  Bench_util.header "Fig. 6(b): Sort inside a secure enclave (SGX simulation)";
  Printf.printf "%8s %16s %16s %16s %10s\n" "n" "outside (|X|=1)" "SGX (|X|=1)" "SGX (|X|>=2)"
    "speedup";
  List.iter
    (fun k ->
      let n = Bench_util.pow2 k in
      let outside = encrypted_time ~case:`Single n in
      let e1 = enclave_time ~case:`Single n in
      let e2 = enclave_time ~case:`Multi n in
      Printf.printf "%8d %16s %16s %16s %9.0fx\n%!" n (Bench_util.pretty_time outside)
        (Bench_util.pretty_time e1) (Bench_util.pretty_time e2) (outside /. e1))
    ks;
  Printf.printf
    "\n\
     Expected shape (paper Fig. 6b): enclave runtimes for |X| = 1 and |X| >= 2\n\
     nearly identical (curves overlap); speedup vs the outside deployment is\n\
     orders of magnitude (paper: 22,000x at n = 2^15 — all transfer and\n\
     re-encryption eliminated).\n%!"

let run opts =
  run_fig6a opts;
  run_fig6b opts
