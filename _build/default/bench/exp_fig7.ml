(* Fig. 7: insertion and deletion efficiency of the extended (Ex-ORAM)
   method — average per-operation time vs n, cases |X| = 1 and |X| = 2.
   As in §VII-E: insert n rows into empty structures, then delete all. *)

open Core
open Relation

let measure n =
  let session = Session.create ~seed:(70 + n) ~n ~m:2 () in
  let rng = Crypto.Rng.create (1000 + n) in
  let a = Ex_oram_method.create session (Attrset.singleton 0) ~capacity:n in
  let b = Ex_oram_method.create session (Attrset.singleton 1) ~capacity:n in
  let ab = Ex_oram_method.create session (Attrset.of_list [ 0; 1 ]) ~capacity:n in
  let values =
    Array.init n (fun _ ->
        (Value.Int (1 + Crypto.Rng.int rng (1 lsl 20)), Value.Int (1 + Crypto.Rng.int rng (1 lsl 20))))
  in
  (* Insert all rows; time the single-attribute and combined inserts
     separately. *)
  let t_ins1 = ref 0.0 and t_ins2 = ref 0.0 in
  for id = 0 to n - 1 do
    let va, vb = values.(id) in
    t_ins1 :=
      !t_ins1
      +. Bench_util.time_unit (fun () -> Ex_oram_method.insert_value a ~row:id va);
    ignore (Bench_util.time_unit (fun () -> Ex_oram_method.insert_value b ~row:id vb));
    t_ins2 :=
      !t_ins2
      +. Bench_util.time_unit (fun () ->
             Ex_oram_method.insert_combined ab ~gen1:a ~gen2:b ~row:id)
  done;
  (* Delete all rows. *)
  let t_del1 = ref 0.0 and t_del2 = ref 0.0 in
  for id = 0 to n - 1 do
    t_del2 := !t_del2 +. Bench_util.time_unit (fun () -> Ex_oram_method.delete ab ~row:id);
    t_del1 := !t_del1 +. Bench_util.time_unit (fun () -> Ex_oram_method.delete a ~row:id);
    Ex_oram_method.delete b ~row:id
  done;
  let avg t = t /. float_of_int n in
  (avg !t_ins1, avg !t_del1, avg !t_ins2, avg !t_del2)

let run (opts : Bench_util.opts) =
  let ks = if opts.Bench_util.full then [ 4; 6; 8; 10; 12 ] else [ 4; 6; 8; 9 ] in
  Bench_util.header "Fig. 7: insertion and deletion efficiency (Ex-ORAM, avg per op)";
  Printf.printf "%8s | %12s %12s | %12s %12s\n" "" "|X| = 1" "" "|X| = 2" "";
  Printf.printf "%8s | %12s %12s | %12s %12s\n" "n" "insert" "delete" "insert" "delete";
  List.iter
    (fun k ->
      let n = Bench_util.pow2 k in
      let i1, d1, i2, d2 = measure n in
      Printf.printf "%8d | %12s %12s | %12s %12s\n%!" n (Bench_util.pretty_time i1)
        (Bench_util.pretty_time d1) (Bench_util.pretty_time i2) (Bench_util.pretty_time d2))
    ks;
  Printf.printf
    "\n\
     Expected shape (paper Fig. 7): every curve grows ~ log n (ORAM path length);\n\
     |X| = 1 insert and delete nearly coincide; |X| = 2 insertion costs about\n\
     twice its deletion (four ORAMs accessed vs two).\n%!"
