(* Bechamel micro-benchmarks: one Test.make per table/figure family,
   measuring the primitive that dominates that experiment. *)

open Bechamel
open Toolkit

let cell_cipher = Crypto.Cell_cipher.create (String.make 16 'K')

let cipher_of_fixture = Crypto.Cell_cipher.create (String.make 16 'M')

let oram_fixture =
  lazy
    (let server = Servsim.Server.create () in
     let rng = Crypto.Rng.create 3 in
     Oram.Path_oram.setup ~name:"micro"
       { capacity = 256; key_len = 8; payload_len = 8 }
       server cipher_of_fixture (Crypto.Rng.int rng))

let sort_fixture =
  lazy
    (let session = Core.Session.create ~n:256 ~m:1 () in
     Servsim.Trace.set_enabled (Core.Session.trace session) false;
     let b = Core.Sort_backend.encrypted session ~n:256 in
     for i = 0 to 255 do
       b.Core.Sort_backend.write i { Core.Sort_backend.key = Core.Sort_backend.L i; id = i }
     done;
     b)

let partition_fixture =
  lazy
    (let t = Datasets.Rnd.generate_with_domain ~seed:1 ~rows:1024 ~cols:2 ~domain:64 () in
     ( Fdbase.Partition.of_column (Relation.Table.column t 0),
       Fdbase.Partition.of_column (Relation.Table.column t 1) ))

let tests =
  [
    (* Table I is static; its cost driver is dataset generation. *)
    Test.make ~name:"table1/dataset-row-gen"
      (Staged.stage (fun () -> Datasets.Adult_like.generate ~rows:32 ()));
    (* Table II / semantic security: one cell encrypt+decrypt. *)
    Test.make ~name:"table2/cell-encrypt-decrypt"
      (Staged.stage (fun () ->
           Crypto.Cell_cipher.decrypt cell_cipher
             (Crypto.Cell_cipher.encrypt cell_cipher "0123456789abcdef01234567")));
    (* Table III / Fig. 4 ORAM curve: one PathORAM access at n = 256. *)
    Test.make ~name:"table3-fig4/path-oram-access"
      (Staged.stage (fun () ->
           let o = Lazy.force oram_fixture in
           Oram.Path_oram.write o ~key:(Relation.Codec.encode_int 7)
             (Relation.Codec.encode_int 7)));
    (* Fig. 4/6 Sort curve: one encrypted compare-exchange. *)
    Test.make ~name:"fig4-fig6/sort-compare-exchange"
      (Staged.stage (fun () ->
           let b = Lazy.force sort_fixture in
           let a = b.Core.Sort_backend.read 3 and c = b.Core.Sort_backend.read 200 in
           let lo, hi = if Core.Sort_backend.compare_by_key a c <= 0 then (a, c) else (c, a) in
           b.Core.Sort_backend.write 3 lo;
           b.Core.Sort_backend.write 200 hi));
    (* Fig. 5 storage accounting driver: partition product (plaintext). *)
    Test.make ~name:"fig5/partition-product"
      (Staged.stage (fun () ->
           let p1, p2 = Lazy.force partition_fixture in
           Fdbase.Partition.product p1 p2));
    (* Fig. 6(b): enclave-side comparator network execution, n = 256. *)
    Test.make ~name:"fig6b/enclave-sort-n256"
      (Staged.stage
         (let net = Osort.Network.bitonic 256 in
          fun () ->
            let b = Core.Sort_backend.enclave ~n:256 in
            for i = 0 to 255 do
              b.Core.Sort_backend.write i
                { Core.Sort_backend.key = Core.Sort_backend.L (255 - i); id = i }
            done;
            Osort.Driver.run net ~exchange:(fun ~up i j ->
                let x = b.Core.Sort_backend.read i and y = b.Core.Sort_backend.read j in
                let lo, hi =
                  if Core.Sort_backend.compare_by_key x y <= 0 then (x, y) else (y, x)
                in
                if up then begin
                  b.Core.Sort_backend.write i lo;
                  b.Core.Sort_backend.write j hi
                end
                else begin
                  b.Core.Sort_backend.write i hi;
                  b.Core.Sort_backend.write j lo
                end)));
    (* Fig. 7: one Ex-ORAM insert+delete pair. *)
    Test.make ~name:"fig7/ex-oram-insert-delete"
      (Staged.stage
         (let session = Core.Session.create ~n:256 ~m:1 () in
          let h =
            Core.Ex_oram_method.create session (Relation.Attrset.singleton 0) ~capacity:256
          in
          let i = ref 0 in
          fun () ->
            let id = !i mod 200 in
            incr i;
            Core.Ex_oram_method.insert_value h ~row:id (Relation.Value.Int id);
            Core.Ex_oram_method.delete h ~row:id));
  ]

(* Wire protocol v2: frames per PathORAM access over a real forked server
   process.  v1 sent one synchronous frame per block — 2·(levels+1)·Z of
   them per access; v2 batches the whole path into one Multi_get plus one
   Multi_put. *)
let remote_frames_report () =
  let fd, pid = Servsim.Remote_server.fork_server () in
  let conn = Servsim.Remote.connect_fd ~pid fd in
  Fun.protect
    ~finally:(fun () -> Servsim.Remote.close conn)
    (fun () ->
      let server = Servsim.Server.create ~remote:conn () in
      let rng = Crypto.Rng.create 5 in
      let o =
        Oram.Path_oram.setup ~name:"rt"
          { capacity = 256; key_len = 8; payload_len = 8 }
          server cipher_of_fixture (Crypto.Rng.int rng)
      in
      let f0 = Servsim.Remote.frames conn in
      let t0 = Unix.gettimeofday () in
      let accesses = 64 in
      for i = 0 to accesses - 1 do
        Oram.Path_oram.write o ~key:(Relation.Codec.encode_int i) (Relation.Codec.encode_int i)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let frames = Servsim.Remote.frames conn - f0 in
      let v1_frames = 2 * (Oram.Path_oram.levels o + 1) * 4 (* Z = 4 *) in
      Printf.printf
        "  remote PathORAM (n = 256): %.1f wire frames per access, %s/access\n\
        \  (protocol v1 sent %d frames per access — one per path block)\n%!"
        (float_of_int frames /. float_of_int accesses)
        (Bench_util.pretty_time (dt /. float_of_int accesses))
        v1_frames)

let run (_ : Bench_util.opts) =
  Bench_util.header "Bechamel micro-benchmarks (ns per run, OLS fit)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"sfdd" tests) in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) ols [] in
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with Some [ e ] -> e | Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "  %-42s %14s\n" name (Bench_util.pretty_time (est /. 1e9)))
    (List.sort compare rows);
  Bench_util.header "Wire protocol v2: batched path I/O";
  remote_frames_report ();
  Printf.printf "%!"
