bench/exp_table3.ml: Bench_util Core Crypto Datasets List Oram Printf Protocol Relation Servsim String
