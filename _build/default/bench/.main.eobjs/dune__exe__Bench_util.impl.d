bench/bench_util.ml: Core Crypto Datasets Printf Relation Unix
