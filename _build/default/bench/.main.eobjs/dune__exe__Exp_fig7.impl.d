bench/exp_fig7.ml: Array Attrset Bench_util Core Crypto Ex_oram_method List Printf Relation Session Value
