bench/exp_table1.ml: Bench_util Datasets Printf Relation String Table Value
