bench/exp_table2.ml: Array Attrset Bench_util Codec Core Crypto Datasets Gc Int64 List Printf Protocol Relation Schema Servsim Stats Table
