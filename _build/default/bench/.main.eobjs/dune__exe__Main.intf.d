bench/main.mli:
