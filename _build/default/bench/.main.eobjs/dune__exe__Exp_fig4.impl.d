bench/exp_fig4.ml: Attrset Bench_util Core Datasets List Printf Protocol Relation
