bench/main.ml: Array Bench_util Exp_ablation Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_micro Exp_table1 Exp_table2 Exp_table3 List Printf Sys Unix
