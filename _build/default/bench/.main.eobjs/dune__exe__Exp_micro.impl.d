bench/exp_micro.ml: Analyze Bechamel Bench_util Benchmark Core Crypto Datasets Fdbase Fun Hashtbl Instance Lazy List Measure Oram Osort Printf Relation Servsim Staged String Test Time Toolkit Unix
