bench/exp_fig5.ml: Attrset Bench_util Codec Core Crypto Datasets List Printf Protocol Relation Servsim
