bench/exp_fig6.ml: Array Attrset Bench_util Core Datasets Domain Enc_db Enclave List Osort Printf Protocol Relation Servsim Session Sort_method
