(* Table III: the analytic computation/storage summary, backed by two
   empirical checks: (1) measured per-access cost of the non-recursive
   PathORAM vs. the linear-scan ORAM ablation (what the tree buys), and
   (2) the measured growth exponents of the two methods' partition
   runtimes (ORAM ~ n log n vs Sort ~ n log^2 n). *)

open Core

let oram_access_cost (module_ : [ `Path | `Linear ]) n =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 17 in
  let cfg_key_len = 8 and payload_len = 8 in
  let accesses = 50 in
  match module_ with
  | `Path ->
      let o =
        Oram.Path_oram.setup ~name:"p"
          { capacity = n; key_len = cfg_key_len; payload_len }
          server cipher (Crypto.Rng.int rng)
      in
      Bench_util.time_unit (fun () ->
          for i = 1 to accesses do
            Oram.Path_oram.write o ~key:(Relation.Codec.encode_int i)
              (Relation.Codec.encode_int i)
          done)
      /. float_of_int accesses
  | `Linear ->
      let o =
        Oram.Linear_oram.setup ~name:"l"
          { capacity = n; key_len = cfg_key_len; payload_len }
          server cipher (Crypto.Rng.int rng)
      in
      Bench_util.time_unit (fun () ->
          for i = 1 to accesses do
            Oram.Linear_oram.write o ~key:(Relation.Codec.encode_int i)
              (Relation.Codec.encode_int i)
          done)
      /. float_of_int accesses

let growth_exponent method_ =
  (* Fit log2(time ratio) across a size doubling, |X| = 1. *)
  let t_of n =
    let table = Datasets.Rnd.generate ~seed:3 ~rows:n ~cols:2 () in
    let _, r = Protocol.partition_cardinality method_ table (Relation.Attrset.singleton 0) in
    r.Protocol.elapsed_s
  in
  let n1 = 256 and n2 = 1024 in
  let t1 = t_of n1 and t2 = t_of n2 in
  log (t2 /. t1) /. log (float_of_int n2 /. float_of_int n1)

let run (opts : Bench_util.opts) =
  Bench_util.header "Table III: summary of methods";
  Printf.printf "%-8s %-32s %-12s\n" "Method" "Computation" "Storage in S";
  Printf.printf "%-8s %-32s %-12s\n" "ORAM" "O(n log n (1 + log^2 log n))" "O(n)";
  Printf.printf "%-8s %-32s %-12s\n" "Sort" "O(n log^2 n)" "O(n)";

  Bench_util.subheader "empirical growth exponents (time ~ n^e over n = 256 -> 1024, |X|=1)";
  List.iter
    (fun m ->
      Printf.printf "  %-8s e = %.2f  (n log n ~ 1.1-1.3; n log^2 n ~ 1.2-1.5)\n%!"
        (Protocol.method_name m) (growth_exponent m))
    Bench_util.all_methods;

  Bench_util.subheader "ablation: PathORAM tree vs linear-scan ORAM (per-access cost)";
  let sizes = if opts.Bench_util.full then [ 64; 256; 1024; 4096 ] else [ 64; 256; 1024 ] in
  Printf.printf "%8s %14s %14s %10s\n" "n" "PathORAM" "LinearORAM" "ratio";
  List.iter
    (fun n ->
      let p = oram_access_cost `Path n and l = oram_access_cost `Linear n in
      Printf.printf "%8d %14s %14s %9.1fx\n%!" n (Bench_util.pretty_time p)
        (Bench_util.pretty_time l) (l /. p))
    sizes;
  Printf.printf "(the tree's O(log n) paths beat O(n) scans, increasingly so with n)\n%!"
