(* Fig. 5: row scalability of server-side storage and client-side memory
   for one partition structure (identical for |X| = 1 and |X| >= 2 by the
   attribute-compression design, §IV-B). *)

open Core
open Relation

let measure method_ n =
  let table = Datasets.Rnd.generate ~seed:(50 + n) ~rows:n ~cols:2 () in
  let _, r = Protocol.partition_cardinality method_ table (Attrset.singleton 0) in
  let cell_ct = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:Codec.value_width in
  let storage = r.Protocol.cost.Servsim.Cost.server_bytes - (n * 2 * cell_ct) in
  let client = r.Protocol.cost.Servsim.Cost.client_current_bytes in
  (storage, client)

let run (opts : Bench_util.opts) =
  let ks = if opts.Bench_util.full then [ 6; 8; 10; 12 ] else [ 6; 8; 10 ] in
  Bench_util.header "Fig. 5: storage usage in S and memory usage in C vs number of rows";
  Printf.printf "%8s | %12s %12s %12s | %12s %12s %12s\n" "" "storage in S" "" "" "memory in C"
    "" "";
  Printf.printf "%8s | %12s %12s %12s | %12s %12s %12s\n" "n" "Or-ORAM" "Ex-ORAM" "Sort"
    "Or-ORAM" "Ex-ORAM" "Sort";
  List.iter
    (fun k ->
      let n = Bench_util.pow2 k in
      let s_or, c_or = measure Protocol.Or_oram n in
      let s_ex, c_ex = measure Protocol.Ex_oram n in
      let s_sort, c_sort = measure Protocol.Sort n in
      Printf.printf "%8d | %12s %12s %12s | %12s %12s %12s\n%!" n
        (Bench_util.pretty_bytes s_or) (Bench_util.pretty_bytes s_ex)
        (Bench_util.pretty_bytes s_sort) (Bench_util.pretty_bytes c_or)
        (Bench_util.pretty_bytes c_ex) (Bench_util.pretty_bytes c_sort))
    ks;
  Printf.printf
    "\n\
     Expected shape (paper Fig. 5): all O(n); Sort smallest on both axes (only\n\
     label ciphertexts in S, O(1) client memory); ORAM methods pay for dummy\n\
     blocks in S and position map + stash in C; Ex-ORAM > Or-ORAM (frequencies\n\
     and keys stored in addition).\n%!"
