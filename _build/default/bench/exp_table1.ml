(* Table I: the summary of datasets.  We report the stand-in generators'
   shapes (full row counts as constants; sizes estimated from a sample at
   the generators' cell encodings). *)

open Relation

let estimate_size table full_rows =
  let sample = min (Table.rows table) 256 in
  let bytes = ref 0 in
  for r = 0 to sample - 1 do
    for c = 0 to Table.cols table - 1 do
      bytes :=
        !bytes
        + String.length (Value.to_string (Table.cell table ~row:r ~col:c))
        + 1 (* separator *)
    done
  done;
  !bytes * full_rows / sample

let run (_ : Bench_util.opts) =
  Bench_util.header "Table I: the summary of datasets (synthetic stand-ins)";
  Printf.printf "%-10s %10s %10s %12s\n" "Dataset" "# Columns" "# Rows" "# Size";
  let row name table full_rows =
    Printf.printf "%-10s %10d %10d %12s\n" name (Table.cols table) full_rows
      (Bench_util.pretty_bytes (estimate_size table full_rows))
  in
  row "Adult" (Datasets.Adult_like.generate ~rows:512 ()) Datasets.Adult_like.default_rows;
  row "Letter" (Datasets.Letter_like.generate ~rows:512 ()) Datasets.Letter_like.default_rows;
  row "Flight" (Datasets.Flight_like.generate ~rows:512 ()) Datasets.Flight_like.default_rows;
  Printf.printf
    "(paper: Adult 14 x 48,842 = 3528KB; Letter 16 x 20,000 = 695KB; Flight 20 x 500,000 = \
     71MB)\n%!"
