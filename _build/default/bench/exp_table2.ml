(* Table II: obliviousness — two-sample KS tests on the runtime of each
   method across datasets with different distributions, plus server
   storage.  Mirrors §VII-B: S1/S2 are runtimes on random columns/pairs
   of each real-world dataset; S3/S4 are repeated runs on one fixed RND
   column/pair; obliviousness predicts indistinguishable distributions
   (p >= 0.05). *)

open Relation
open Core

let runs = 9

(* All tables are projected to the same number of columns: the timed unit
   only touches the chosen attribute set, but in a single-process
   simulation the *untimed* encrypted database's heap footprint would
   otherwise differ by dataset width and skew the GC noise of the timed
   region — a simulation artifact, not a protocol leak (the paper's
   client and server are separate machines). *)
let width = 10

let project table =
  let open Relation in
  let m = min width (Table.cols table) in
  let schema = Schema.make (Array.init m (Schema.name (Table.schema table))) in
  Table.make schema
    (Array.init (Table.rows table) (fun r ->
         Array.init m (fun c -> Table.cell table ~row:r ~col:c)))

let case_name = function `Single -> "|X| = 1" | `Multi -> "|X| >= 2"

let pick_attrset rng table = function
  | `Single -> Attrset.singleton (Crypto.Rng.int rng (Table.cols table))
  | `Multi ->
      let m = Table.cols table in
      let a = Crypto.Rng.int rng m in
      let b = (a + 1 + Crypto.Rng.int rng (m - 1)) mod m in
      Attrset.of_list [ a; b ]

let fixed_attrset = function
  | `Single -> Attrset.singleton 0
  | `Multi -> Attrset.of_list [ 0; 1 ]

let partition_elapsed method_ table x =
  let _, r = Protocol.partition_cardinality method_ table x in
  r.Protocol.elapsed_s

(* Server storage attributable to the partition structures: total minus
   the encrypted database itself. *)
let partition_storage method_ table x =
  let _, r = Protocol.partition_cardinality method_ table x in
  let cell_ct = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:Codec.value_width in
  r.Protocol.cost.Servsim.Cost.server_bytes - (Table.rows table * Table.cols table * cell_ct)

let run (opts : Bench_util.opts) =
  let n = Bench_util.pow2 (if opts.Bench_util.full then 9 else 6) in
  Bench_util.header
    (Printf.sprintf
       "Table II: KS-test p-values of runtimes across datasets (n = %d, %d runs per sample)"
       n runs);
  let rng = Crypto.Rng.create 0xB2 in
  (* Beyond the paper's statistical argument: compare the trace *shape
     digests* of one run per dataset directly — they must be equal. *)
  let shape_digest method_ table x =
    let _, r = Protocol.partition_cardinality ~seed:1234 method_ table x in
    r.Protocol.trace_shape
  in
  Printf.printf "%-8s %-9s %8s %8s %8s %12s %6s\n" "Method" "Case" "Adult" "Letter" "Flight"
    "Sto" "Trace";
  List.iter
    (fun method_ ->
      List.iter
        (fun case ->
          let p_for ds =
            (* Interleave real-dataset and RND runs so slow drift (heap
               growth, frequency scaling) hits both samples equally. *)
            let s_real = Array.make runs 0.0 and s_rnd = Array.make runs 0.0 in
            for i = 0 to runs - 1 do
              Gc.major ();
              let t = project (Bench_util.sampled_dataset ~rng ~rows:n ds) in
              s_real.(i) <- partition_elapsed method_ t (pick_attrset rng t case);
              Gc.major ();
              let t = Datasets.Rnd.generate ~seed:(1000 + i) ~rows:n ~cols:width () in
              s_rnd.(i) <- partition_elapsed method_ t (fixed_attrset case)
            done;
            Stats.Ks_test.p_value s_real s_rnd
          in
          let p_adult = p_for `Adult and p_letter = p_for `Letter and p_flight = p_for `Flight in
          let sto =
            partition_storage method_
              (Datasets.Rnd.generate ~seed:5 ~rows:n ~cols:width ())
              (fixed_attrset case)
          in
          let x = fixed_attrset case in
          let d_rnd =
            shape_digest method_ (Datasets.Rnd.generate ~seed:6 ~rows:n ~cols:width ()) x
          in
          let traces_equal =
            List.for_all
              (fun ds ->
                let t = project (Bench_util.sampled_dataset ~rng ~rows:n ds) in
                Int64.equal (shape_digest method_ t x) d_rnd)
              [ `Adult; `Letter; `Flight ]
          in
          Printf.printf "%-8s %-9s %8.2f %8.2f %8.2f %12s %6s\n%!"
            (Protocol.method_name method_) (case_name case) p_adult p_letter p_flight
            (Bench_util.pretty_bytes sto)
            (if traces_equal then "=" else "LEAK"))
        [ `Single; `Multi ])
    Bench_util.all_methods;
  Printf.printf
    "\n\
     Obliviousness holds when no p-value is small (< 0.05): runtimes on different\n\
     distributions are statistically indistinguishable (paper: all p >= 0.35).\n\
     Sto is nearly constant per method across datasets (paper Table II last column).\n\
     Trace '=' is the stronger, non-statistical check this implementation adds:\n\
     the access-pattern shape digests of runs on every dataset are bit-identical.\n\
     %!"
