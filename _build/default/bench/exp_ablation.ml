(* Ablations beyond the paper's tables:
   (a) security/performance frontier: the frequency-revealing baseline
       (prior art) vs the oblivious methods, with the attack's recovery
       rate as the price of the speed;
   (b) recursive vs non-recursive PathORAM (the §VII-C client-memory
       remark quantified);
   (c) attribute compression on/off for the Sort method (why §IV-B is
       needed). *)

open Relation
open Core

let run_baseline_frontier (opts : Bench_util.opts) =
  let n = Bench_util.pow2 (if opts.Bench_util.full then 9 else 7) in
  Bench_util.subheader
    (Printf.sprintf "(a) leakage/performance frontier at n = %d (single attribute)" n);
  let table = Datasets.Adult_like.generate ~seed:3 ~rows:n () in
  let aux = Datasets.Adult_like.generate ~seed:4 ~rows:n () in
  let key = String.make 16 'F' in
  let col = Schema.index (Table.schema table) "workclass" in
  (* Baseline: server-side partition of one column + attack rate. *)
  let det = Baseline.Det_encryption.create key in
  let truth = Table.column table col in
  let cts = Array.map (fun v -> Baseline.Det_encryption.encrypt det (Codec.encode_value v)) truth in
  let t_base =
    Bench_util.time_unit (fun () ->
        ignore (Fdbase.Partition.of_column (Array.map (fun c -> Value.Str c) cts)))
  in
  let rate =
    Baseline.Leakage_attack.recovery_rate
      (Baseline.Leakage_attack.frequency_attack ~ciphertexts:cts
         ~auxiliary:(Table.column aux col) ~truth)
  in
  Printf.printf "%-22s %14s   attack recovery: %4.0f%%\n" "DET baseline" (Bench_util.pretty_time t_base)
    (100.0 *. rate);
  List.iter
    (fun m ->
      let _, r = Protocol.partition_cardinality m table (Attrset.singleton col) in
      Printf.printf "%-22s %14s   attack recovery: n/a (semantically secure)\n%!"
        (Protocol.method_name m) (Bench_util.pretty_time r.Protocol.elapsed_s))
    Bench_util.all_methods;
  Printf.printf
    "(the baseline is orders of magnitude faster -- and an attacker with an\n\
     auxiliary distribution decrypts most of the column; cf. paper SVIII)\n"

let run_recursive_oram (opts : Bench_util.opts) =
  let sizes = if opts.Bench_util.full then [ 256; 1024; 4096; 16384 ] else [ 256; 1024; 4096 ] in
  Bench_util.subheader "(b) non-recursive vs recursive PathORAM (50 accesses each)";
  Printf.printf "%8s | %12s %12s | %14s %14s | %6s\n" "n" "flat client" "rec client"
    "flat t/access" "rec t/access" "depth";
  List.iter
    (fun n ->
      let server = Servsim.Server.create () in
      let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
      let rng = Crypto.Rng.create 3 in
      let flat =
        Oram.Path_oram.setup ~name:"flat" { capacity = n; key_len = 8; payload_len = 8 } server
          cipher (Crypto.Rng.int rng)
      in
      let rec_ =
        Oram.Recursive_path_oram.setup ~name:"rec"
          { capacity = n; payload_len = 8; fanout = 16; top_cutoff = 16 }
          server cipher (Crypto.Rng.int rng)
      in
      let accesses = 50 in
      (* Fill a third, then time accesses. *)
      for i = 0 to (n / 3) - 1 do
        Oram.Path_oram.write flat ~key:(Codec.encode_int i) (Codec.encode_int i);
        Oram.Recursive_path_oram.write rec_ ~key:i (Codec.encode_int i)
      done;
      let t_flat =
        Bench_util.time_unit (fun () ->
            for i = 0 to accesses - 1 do
              ignore (Oram.Path_oram.read flat ~key:(Codec.encode_int (i mod (n / 3))))
            done)
        /. float_of_int accesses
      in
      let t_rec =
        Bench_util.time_unit (fun () ->
            for i = 0 to accesses - 1 do
              ignore (Oram.Recursive_path_oram.read rec_ ~key:(i mod (n / 3)))
            done)
        /. float_of_int accesses
      in
      Printf.printf "%8d | %12s %12s | %14s %14s | %6d\n%!" n
        (Bench_util.pretty_bytes (Oram.Path_oram.client_state_bytes flat))
        (Bench_util.pretty_bytes (Oram.Recursive_path_oram.client_state_bytes rec_))
        (Bench_util.pretty_time t_flat) (Bench_util.pretty_time t_rec)
        (Oram.Recursive_path_oram.recursion_depth rec_))
    sizes;
  Printf.printf
    "(client state drops from O(n) to O(log n); each access pays one extra path\n\
     per recursion level -- the paper's 'more advanced ORAMs at the cost of\n\
     runtime', SVII-C)\n"

let run_lm_method (opts : Bench_util.opts) =
  let n = Bench_util.pow2 (if opts.Bench_util.full then 8 else 6) in
  Bench_util.subheader
    (Printf.sprintf "(b') end-to-end low-memory method (Omap + recursive ORAM), n = %d" n);
  let t = Datasets.Rnd.generate ~seed:31 ~rows:n ~cols:1 () in
  (* Or-ORAM. *)
  let session_or = Session.create ~n ~m:1 () in
  let db_or = Enc_db.outsource session_or t in
  let (_ : Or_oram_method.handle), dt_or =
    Bench_util.time (fun () -> Or_oram_method.single db_or 0)
  in
  let or_client =
    (Servsim.Cost.snapshot (Session.cost session_or)).Servsim.Cost.client_current_bytes
  in
  (* Lm-ORAM. *)
  let session_lm = Session.create ~n ~m:1 () in
  let db_lm = Enc_db.outsource session_lm t in
  let h, dt_lm = Bench_util.time (fun () -> Lm_oram_method.single db_lm 0) in
  Printf.printf "%-10s client %10s   partition time %12s\n" "Or-ORAM"
    (Bench_util.pretty_bytes or_client) (Bench_util.pretty_time dt_or);
  Printf.printf "%-10s client %10s   partition time %12s  (%.1fx slower)\n%!" "Lm-ORAM"
    (Bench_util.pretty_bytes (Lm_oram_method.client_state_bytes h))
    (Bench_util.pretty_time dt_lm) (dt_lm /. dt_or)

let run_compression_ablation (opts : Bench_util.opts) =
  let n = Bench_util.pow2 (if opts.Bench_util.full then 9 else 7) in
  Bench_util.subheader
    (Printf.sprintf "(c) attribute compression ablation, Sort method, n = %d" n);
  (* With compression, |X| = 4 costs the same as |X| = 2 (8-byte keys).
     Without it, keys are the concatenated values: width grows with |X|,
     and so do ciphertexts and transfer.  We emulate 'off' by splicing
     value-tuples into strings and measuring the key width. *)
  let table = Datasets.Rnd.generate ~seed:8 ~rows:n ~cols:4 () in
  List.iter
    (fun k ->
      let x = Attrset.of_list (List.init k Fun.id) in
      let compressed_key_bytes = 8 in
      let raw_key_bytes = k * Codec.value_width in
      let _, r = Protocol.partition_cardinality Protocol.Sort table x in
      Printf.printf
        "|X| = %d: key width %3d B compressed vs %3d B raw; final-step bytes moved %s\n%!" k
        compressed_key_bytes raw_key_bytes
        (Bench_util.pretty_bytes r.Protocol.step_bytes))
    [ 2; 3; 4 ];
  Printf.printf
    "(with S IV-B compression the per-record cost is flat in |X|; raw keys would\n\
     grow the sort elements ~linearly with |X|)\n"

let run_bucket_sort (opts : Bench_util.opts) =
  let ks = if opts.Bench_util.full then [ 10; 12; 14; 16 ] else [ 10; 12; 14 ] in
  Bench_util.subheader "(d) oblivious-sort primitives: slots touched (cost model) + measured";
  Printf.printf "%10s %14s %14s %8s | %12s %12s\n" "n" "bitonic" "bucket(z=128)" "ratio"
    "bitonic t" "bucket t";
  let rng = Crypto.Rng.create 17 in
  List.iter
    (fun k ->
      let n = Bench_util.pow2 k in
      let bitonic_touches = 4 * Osort.Network.comparator_count (Osort.Network.bitonic n) in
      let bucket_touches = Osort.Bucket_sort.touches ~n ~z:128 in
      (* Measured on plaintext ints (primitive-level comparison). *)
      let a = Array.init n (fun _ -> Crypto.Rng.int rng 1000000) in
      let t_bitonic =
        Bench_util.time_unit (fun () ->
            let b = Array.copy a in
            Osort.Driver.run (Osort.Network.bitonic n) ~exchange:(fun ~up i j ->
                let lo, hi = if b.(i) <= b.(j) then (b.(i), b.(j)) else (b.(j), b.(i)) in
                if up then begin
                  b.(i) <- lo;
                  b.(j) <- hi
                end
                else begin
                  b.(i) <- hi;
                  b.(j) <- lo
                end))
      in
      let t_bucket =
        Bench_util.time_unit (fun () ->
            ignore (Osort.Bucket_sort.sort ~z:128 ~compare ~rand:(Crypto.Rng.int rng) a))
      in
      Printf.printf "%10d %14d %14d %7.1fx | %12s %12s\n%!" n bitonic_touches bucket_touches
        (float_of_int bitonic_touches /. float_of_int bucket_touches)
        (Bench_util.pretty_time t_bitonic) (Bench_util.pretty_time t_bucket))
    ks;
  Printf.printf
    "(bucket oblivious sort [1] is O(n log n) vs bitonic's O(n log^2 n); the gap\n\
     widens with n -- the paper keeps bitonic for its in-place simplicity and\n\
     parallelism, which this table makes a quantified choice)\n"

let run (opts : Bench_util.opts) =
  Bench_util.header "Ablations (beyond the paper's tables)";
  run_baseline_frontier opts;
  run_recursive_oram opts;
  run_lm_method opts;
  run_compression_ablation opts;
  run_bucket_sort opts
