(* Fig. 4: row scalability of runtime — partition-computation time vs n
   for the three methods, cases |X| = 1 and |X| >= 2 (the timed unit is
   the final Algorithm run, generators pre-built, as in §VII-C). *)

open Core
open Relation

(* The paper's runtimes are client↔server over a 1 Gbps LAN, where every
   protocol message pays latency; our simulation runs in-process, so we
   report both the measured computation time and the modeled deployment
   time = computation + round_trips * RTT + bytes / bandwidth (see
   EXPERIMENTS.md).  The modeled column is what reproduces the paper's
   ordering: Sort performs ~(n/2) log^2 n sequential exchanges, each
   two wire frames (one batched fetch, one batched write-back), whereas
   the ORAM methods make only ~3n accesses of two frames each. *)

let measure method_ table x =
  let _, r = Protocol.partition_cardinality method_ table x in
  (r.Protocol.elapsed_s, r.Protocol.elapsed_s +. Protocol.modeled_network_seconds r)

let run (opts : Bench_util.opts) =
  let ks = if opts.Bench_util.full then [ 6; 7; 8; 9; 10; 11 ] else [ 6; 7; 8; 9 ] in
  Bench_util.header "Fig. 4: runtime vs number of rows (cpu = computation only; net = modeled 1 Gbps / 0.2 ms deployment)";
  List.iter
    (fun (case, x) ->
      Bench_util.subheader (Printf.sprintf "case %s" case);
      Printf.printf "%8s | %11s %11s | %11s %11s | %11s %11s\n" "" "Or-ORAM" "" "Ex-ORAM" ""
        "Sort" "";
      Printf.printf "%8s | %11s %11s | %11s %11s | %11s %11s\n" "n" "cpu" "net" "cpu" "net"
        "cpu" "net";
      List.iter
        (fun k ->
          let n = Bench_util.pow2 k in
          let table = Datasets.Rnd.generate ~seed:(40 + k) ~rows:n ~cols:3 () in
          let c_or, n_or = measure Protocol.Or_oram table x in
          let c_ex, n_ex = measure Protocol.Ex_oram table x in
          let c_sort, n_sort = measure Protocol.Sort table x in
          Printf.printf "%8d | %11s %11s | %11s %11s | %11s %11s\n%!" n
            (Bench_util.pretty_time c_or) (Bench_util.pretty_time n_or)
            (Bench_util.pretty_time c_ex) (Bench_util.pretty_time n_ex)
            (Bench_util.pretty_time c_sort) (Bench_util.pretty_time n_sort))
        ks)
    [ ("|X| = 1", Attrset.singleton 0); ("|X| >= 2", Attrset.of_list [ 0; 1 ]) ];
  Printf.printf
    "\n\
     Expected shape (paper Fig. 4, the 'net' columns): Sort is the most expensive\n\
     once n > ~2^11 and grows fastest (O(n log^2 n) round trips vs the ORAM\n\
     methods' O(n)); Ex-ORAM costs more than Or-ORAM (bigger payloads); the ORAM\n\
     methods pay extra in the |X| >= 2 case for the generator O^IL lookups.\n%!"
