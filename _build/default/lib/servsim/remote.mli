(** Client-side connection to a remote server process. *)

type t

val connect_fd : ?pid:int -> Unix.file_descr -> t
(** Wrap a connected descriptor (e.g. from {!Remote_server.fork_server});
    [pid] is reaped on {!close}.  Performs the one-byte version handshake.
    @raise Wire.Protocol_error if the server speaks a different protocol
    version or closes during the handshake. *)

val call : t -> Wire.request -> Wire.response
(** Synchronous request/response.
    @raise Wire.Protocol_error on an [Error] response. *)

val multi_get : t -> store:string -> int list -> string list
(** One [Multi_get] frame; values in index order.  No-op (no frame) on the
    empty list. *)

val multi_put : t -> store:string -> (int * string) list -> unit
(** One [Multi_put] frame.  No-op (no frame) on the empty list. *)

val frames : t -> int
(** Number of request/response exchanges performed on this connection so
    far (the version handshake is not counted).  The round-trip ledger in
    {!Cost} is asserted against this counter in tests. *)

val digests : t -> full:int64 -> shape:int64 -> count:int -> bool
(** [digests t ~full ~shape ~count] asks the server for its own trace
    digests and compares with the given (client-side) ones. *)

val server_digests : t -> int64 * int64 * int
(** The server's own (full, shape, count). *)

val close : t -> unit
(** Send [Bye], close the channel, reap the child if any. *)
