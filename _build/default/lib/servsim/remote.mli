(** Client-side connection to a remote server process. *)

type t

val connect_fd : ?pid:int -> Unix.file_descr -> t
(** Wrap a connected descriptor (e.g. from {!Remote_server.fork_server});
    [pid] is reaped on {!close}. *)

val call : t -> Wire.request -> Wire.response
(** Synchronous request/response.
    @raise Wire.Protocol_error on an [Error] response. *)

val digests : t -> full:int64 -> shape:int64 -> count:int -> bool
(** [digests t ~full ~shape ~count] asks the server for its own trace
    digests and compares with the given (client-side) ones. *)

val server_digests : t -> int64 * int64 * int
(** The server's own (full, shape, count). *)

val close : t -> unit
(** Send [Bye], close the channel, reap the child if any. *)
