(** Wire protocol between the client and a remote server process.

    Binary, synchronous request/response over any pair of file
    descriptors (Unix socketpair, TCP socket).  All integers are
    little-endian fixed width; strings are length-prefixed.  The protocol
    carries only what the honest-but-curious server legitimately sees:
    opaque ciphertext blocks and store bookkeeping. *)

type request =
  | Create_store of string
  | Drop_store of string
  | Ensure of string * int
  | Get of string * int
  | Put of string * int * string
  | Digest  (** ask the server for its own trace digests *)
  | Total_bytes
  | Bye

type response =
  | Ok
  | Value of string
  | Digests of { full : int64; shape : int64; count : int }
  | Bytes_total of int
  | Error of string

val write_request : out_channel -> request -> unit
val read_request : in_channel -> request
val write_response : out_channel -> response -> unit
val read_response : in_channel -> response

exception Protocol_error of string
