(** Wire protocol (v2) between the client and a remote server process.

    Binary, synchronous request/response over any pair of file
    descriptors (Unix socketpair, TCP socket).  All integers are
    little-endian fixed width; strings are length-prefixed.  The protocol
    carries only what the honest-but-curious server legitimately sees:
    opaque ciphertext blocks and store bookkeeping.

    v2 adds batched block operations ([Multi_get]/[Multi_put]/[Values]) —
    one frame per logical batch, e.g. a whole ORAM path — plus a one-byte
    version handshake on connect and hard caps on every length prefix so a
    corrupt stream fails with {!Protocol_error} instead of an unbounded
    allocation. *)

type request =
  | Create_store of string
  | Drop_store of string
  | Ensure of string * int
  | Get of string * int
  | Put of string * int * string
  | Multi_get of string * int list
      (** Read a batch of slots of one store, in order, in one frame. *)
  | Multi_put of string * (int * string) list
      (** Write a batch of (slot, ciphertext) pairs in one frame; applied
          (and traced server-side) in list order, all-or-nothing with
          respect to bounds checking. *)
  | Digest  (** ask the server for its own trace digests *)
  | Total_bytes
  | Bye

type response =
  | Ok
  | Value of string
  | Values of string list  (** answers [Multi_get], same order as the indices *)
  | Digests of { full : int64; shape : int64; count : int }
  | Bytes_total of int
  | Error of string

val protocol_version : int
(** Current protocol version (2).  Exchanged once per connection:
    the client sends its version byte, the server always answers with its
    own, and each side rejects a mismatch with {!Protocol_error}. *)

val max_string_len : int
(** Upper bound any string length prefix may claim (bytes). *)

val max_list_len : int
(** Upper bound any batch count prefix may claim (entries). *)

val write_hello : out_channel -> unit
(** Send the one-byte version preamble. *)

val read_hello : in_channel -> int
(** Read the peer's version byte. *)

val write_request : out_channel -> request -> unit
val read_request : in_channel -> request
val write_response : out_channel -> response -> unit
val read_response : in_channel -> response

exception Protocol_error of string
