(** A named, growable array of ciphertext blocks held by the server.

    Every read and write is recorded in the server's {!Trace} and counted
    against the channel in {!Cost} — this is the adversary's complete view
    of the store.  Blocks are opaque strings (ciphertexts); the store never
    interprets them.

    While the trace is disabled ({!Trace.set_enabled}), cost accounting is
    suspended as well: the shared counters are not safe (or cheap) to
    mutate from multiple domains, and multi-domain sections are exactly
    when tracing is turned off.  Byte/storage totals are therefore only
    meaningful for single-domain runs. *)

type t

val name : t -> string

val length : t -> int
(** Number of block slots. *)

val size_bytes : t -> int
(** Total bytes currently stored. *)

val ensure : t -> int -> unit
(** [ensure t n] grows the store to at least [n] slots (empty blocks). *)

val read : t -> int -> string
(** [read t i] returns block [i], tracing the access and counting the
    bytes as server→client traffic. *)

val write : t -> int -> string -> unit
(** [write t i c] replaces block [i], tracing and counting client→server
    traffic. *)

(** {2 Construction} — normally via {!Server.create_store}. *)

val create :
  name:string -> trace:Trace.t -> on_resize:(int -> unit) -> ?remote:Remote.t -> Cost.t -> t
(** With [?remote], blocks live in the connected server process and every
    read/write is a wire round trip; the client still records its own
    trace and cost view (block sizes are mirrored locally). *)
