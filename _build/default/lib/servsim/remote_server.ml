type store = { mutable blocks : string array; mutable len : int }

type state = {
  stores : (string, store) Hashtbl.t;
  trace : Trace.t;
  mutable bytes : int;
}

let create_state () = { stores = Hashtbl.create 32; trace = Trace.create (); bytes = 0 }

let find st name =
  match Hashtbl.find_opt st.stores name with
  | Some s -> s
  | None -> raise (Wire.Protocol_error ("no such store: " ^ name))

let ensure s n =
  if n > Array.length s.blocks then begin
    let cap = ref (max 16 (Array.length s.blocks)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let blocks = Array.make !cap "" in
    Array.blit s.blocks 0 blocks 0 s.len;
    s.blocks <- blocks
  end;
  if n > s.len then s.len <- n

let handle st = function
  | Wire.Create_store name ->
      if Hashtbl.mem st.stores name then Wire.Error ("store exists: " ^ name)
      else begin
        Hashtbl.replace st.stores name { blocks = Array.make 16 ""; len = 0 };
        Wire.Ok
      end
  | Wire.Drop_store name ->
      (match Hashtbl.find_opt st.stores name with
      | None -> ()
      | Some s ->
          for i = 0 to s.len - 1 do
            st.bytes <- st.bytes - String.length s.blocks.(i)
          done;
          Hashtbl.remove st.stores name);
      Wire.Ok
  | Wire.Ensure (name, n) ->
      ensure (find st name) n;
      Wire.Ok
  | Wire.Get (name, i) ->
      let s = find st name in
      if i < 0 || i >= s.len then Wire.Error "index out of bounds"
      else begin
        let c = s.blocks.(i) in
        Trace.record st.trace { Trace.store = name; op = Trace.Read; addr = i; len = String.length c };
        Wire.Value c
      end
  | Wire.Put (name, i, c) ->
      let s = find st name in
      if i < 0 || i >= s.len then Wire.Error "index out of bounds"
      else begin
        st.bytes <- st.bytes - String.length s.blocks.(i) + String.length c;
        s.blocks.(i) <- c;
        Trace.record st.trace { Trace.store = name; op = Trace.Write; addr = i; len = String.length c };
        Wire.Ok
      end
  | Wire.Multi_get (name, idxs) ->
      let s = find st name in
      if List.exists (fun i -> i < 0 || i >= s.len) idxs then Wire.Error "index out of bounds"
      else
        Wire.Values
          (List.map
             (fun i ->
               let c = s.blocks.(i) in
               Trace.record st.trace
                 { Trace.store = name; op = Trace.Read; addr = i; len = String.length c };
               c)
             idxs)
  | Wire.Multi_put (name, items) ->
      let s = find st name in
      (* Validate every index before mutating anything: a batch either
         lands whole or not at all. *)
      if List.exists (fun (i, _) -> i < 0 || i >= s.len) items then
        Wire.Error "index out of bounds"
      else begin
        List.iter
          (fun (i, c) ->
            st.bytes <- st.bytes - String.length s.blocks.(i) + String.length c;
            s.blocks.(i) <- c;
            Trace.record st.trace
              { Trace.store = name; op = Trace.Write; addr = i; len = String.length c })
          items;
        Wire.Ok
      end
  | Wire.Digest ->
      Wire.Digests
        {
          full = Trace.full_digest st.trace;
          shape = Trace.shape_digest st.trace;
          count = Trace.count st.trace;
        }
  | Wire.Total_bytes -> Wire.Bytes_total st.bytes
  | Wire.Bye -> Wire.Ok

let serve ic oc =
  (* Version handshake first: always answer with our own version byte so a
     mismatched client can report the disagreement, then hang up on
     mismatch rather than misparse its stream as requests. *)
  match Wire.read_hello ic with
  | exception End_of_file -> ()
  | client_version ->
      Wire.write_hello oc;
      if client_version = Wire.protocol_version then begin
        let st = create_state () in
        let continue_ = ref true in
        while !continue_ do
          match Wire.read_request ic with
          | Wire.Bye ->
              Wire.write_response oc Wire.Ok;
              continue_ := false
          | req ->
              let resp = try handle st req with Wire.Protocol_error msg -> Wire.Error msg in
              Wire.write_response oc resp
          | exception End_of_file -> continue_ := false
          | exception Wire.Protocol_error msg ->
              (* The stream is beyond resync (bad tag, oversized prefix):
                 report once and hang up. *)
              (try Wire.write_response oc (Wire.Error ("unrecoverable: " ^ msg)) with _ -> ());
              continue_ := false
        done
      end

let serve_fd fd =
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  serve ic oc

let serve_fd_env = "SFDD_SERVE_FD"

let maybe_serve_child () =
  match Sys.getenv_opt serve_fd_env with
  | None -> ()
  | Some s ->
      (* We are the re-executed server child: the socket descriptor was
         inherited across exec under this number. *)
      let fd : Unix.file_descr = Obj.magic (int_of_string s) in
      (try serve_fd fd with _ -> ());
      Stdlib.exit 0

let fork_server () =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      Unix.close parent_fd;
      (try serve_fd child_fd with _ -> ());
      Stdlib.exit 0
  | pid ->
      Unix.close child_fd;
      (parent_fd, pid)
  | exception Failure _ ->
      (* OCaml 5 forbids fork once domains have been spawned; re-exec this
         program instead, with the child endpoint's descriptor number in
         the environment (the process re-enters through
         {!maybe_serve_child}, which the hosting executable must call at
         startup). *)
      let fd_int : int = Obj.magic child_fd in
      let env =
        Array.append (Unix.environment ())
          [| Printf.sprintf "%s=%d" serve_fd_env fd_int |]
      in
      let pid =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          env Unix.stdin Unix.stdout Unix.stderr
      in
      Unix.close child_fd;
      (parent_fd, pid)
