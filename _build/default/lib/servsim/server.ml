type t = {
  trace : Trace.t;
  cost : Cost.t;
  stores : (string, Block_store.t) Hashtbl.t;
  remote : Remote.t option;
  mutable bytes : int;
}

let create ?keep_events ?remote () =
  {
    trace = Trace.create ?keep_events ();
    cost = Cost.create ();
    stores = Hashtbl.create 32;
    remote;
    bytes = 0;
  }

let trace t = t.trace
let cost t = t.cost
let remote t = t.remote

let sync_cost t = Cost.set_server_bytes t.cost t.bytes

let create_store t name =
  if Hashtbl.mem t.stores name then
    invalid_arg (Printf.sprintf "Server.create_store: store %s already exists" name);
  (match t.remote with
  | Some conn -> ignore (Remote.call conn (Wire.Create_store name))
  | None -> ());
  let on_resize delta =
    t.bytes <- t.bytes + delta;
    sync_cost t
  in
  let store = Block_store.create ~name ~trace:t.trace ~on_resize ?remote:t.remote t.cost in
  Hashtbl.replace t.stores name store;
  (* One wire frame in remote mode; charged identically in the local sim. *)
  if Trace.enabled t.trace then Cost.round_trip t.cost;
  store

let find_store t name =
  match Hashtbl.find_opt t.stores name with
  | Some s -> s
  | None -> raise Not_found

let drop_store t name =
  match Hashtbl.find_opt t.stores name with
  | None -> ()
  | Some s ->
      (match t.remote with
      | Some conn -> ignore (Remote.call conn (Wire.Drop_store name))
      | None -> ());
      t.bytes <- t.bytes - Block_store.size_bytes s;
      sync_cost t;
      if Trace.enabled t.trace then Cost.round_trip t.cost;
      Hashtbl.remove t.stores name

let total_bytes t = t.bytes

let store_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.stores [] |> List.sort compare
