lib/servsim/remote.mli: Unix Wire
