lib/servsim/cost.mli: Format
