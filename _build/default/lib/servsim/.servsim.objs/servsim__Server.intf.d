lib/servsim/server.mli: Block_store Cost Remote Trace
