lib/servsim/trace.mli:
