lib/servsim/block_store.mli: Cost Remote Trace
