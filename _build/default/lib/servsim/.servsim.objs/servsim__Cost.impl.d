lib/servsim/cost.ml: Format Hashtbl Option
