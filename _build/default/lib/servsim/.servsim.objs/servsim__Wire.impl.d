lib/servsim/wire.ml: Char Int64 List Printf String
