lib/servsim/wire.ml: Char Int64 Printf String
