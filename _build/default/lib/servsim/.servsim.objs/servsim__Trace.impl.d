lib/servsim/trace.ml: Char Int64 List String
