lib/servsim/remote.ml: Int64 List Printf Sys Unix Wire
