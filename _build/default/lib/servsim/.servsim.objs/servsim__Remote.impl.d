lib/servsim/remote.ml: Int64 Sys Unix Wire
