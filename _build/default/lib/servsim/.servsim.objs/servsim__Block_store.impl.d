lib/servsim/block_store.ml: Array Cost Printf Remote String Trace Wire
