lib/servsim/block_store.ml: Array Cost List Printf Remote String Trace Wire
