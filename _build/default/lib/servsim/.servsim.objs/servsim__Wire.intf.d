lib/servsim/wire.mli:
