lib/servsim/remote_server.ml: Array Hashtbl Obj Printf Stdlib String Sys Trace Unix Wire
