lib/servsim/remote_server.ml: Array Hashtbl List Obj Printf Stdlib String Sys Trace Unix Wire
