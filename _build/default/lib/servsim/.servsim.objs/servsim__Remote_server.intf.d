lib/servsim/remote_server.mli: Unix
