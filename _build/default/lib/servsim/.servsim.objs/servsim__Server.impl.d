lib/servsim/server.ml: Block_store Cost Hashtbl List Printf Remote Trace Wire
