(** The honest-but-curious cloud server S.

    Owns a set of named ciphertext block stores, the access-pattern trace
    (its complete adversarial view of protocol executions), and the cost
    ledger shared with the client.  Protocols create one server per
    session; tests compare the traces of two sessions on different
    databases of equal size. *)

type t

val create : ?keep_events:bool -> ?remote:Remote.t -> unit -> t
(** With [?remote], all stores live in the connected server process (see
    {!Remote_server}); the in-process structures then only mirror the
    adversary's view for cost/trace accounting. *)

val remote : t -> Remote.t option

val trace : t -> Trace.t
val cost : t -> Cost.t

val create_store : t -> string -> Block_store.t
(** [create_store t name] registers a fresh store.
    @raise Invalid_argument if [name] is already registered. *)

val find_store : t -> string -> Block_store.t
(** @raise Not_found if no such store. *)

val drop_store : t -> string -> unit
(** Releases a store's space (e.g. partitions of pruned lattice nodes). *)

val total_bytes : t -> int
(** Current server-side storage across all stores. *)

val store_names : t -> string list
