type t = {
  ic : in_channel;
  oc : out_channel;
  pid : int option;
  mutable closed : bool;
}

let connect_fd ?pid fd =
  (* A dead peer must surface as an exception on the next call, not as a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; pid; closed = false }

let call t req =
  if t.closed then raise (Wire.Protocol_error "connection closed");
  Wire.write_request t.oc req;
  match Wire.read_response t.ic with
  | Wire.Error msg -> raise (Wire.Protocol_error msg)
  | resp -> resp

let server_digests t =
  match call t Wire.Digest with
  | Wire.Digests { full; shape; count } -> (full, shape, count)
  | _ -> raise (Wire.Protocol_error "unexpected response to Digest")

let digests t ~full ~shape ~count =
  let f, s, c = server_digests t in
  Int64.equal f full && Int64.equal s shape && c = count

let close t =
  if not t.closed then begin
    (try ignore (call t Wire.Bye) with _ -> ());
    t.closed <- true;
    close_out_noerr t.oc;
    (* ic shares the fd; closing oc closed it. *)
    match t.pid with
    | Some pid -> ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
    | None -> ()
  end
