type op = Read | Write

type event = { store : string; op : op; addr : int; len : int }

type t = {
  keep_events : bool;
  mutable events_rev : event list;
  mutable count : int;
  mutable full : int64;
  mutable shape : int64;
  mutable enabled : bool;
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let create ?(keep_events = false) () =
  {
    keep_events;
    events_rev = [];
    count = 0;
    full = fnv_offset;
    shape = fnv_offset;
    enabled = true;
  }

let fold1 h byte = Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

let fold_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fold1 !h ((v lsr (shift * 8)) land 0xff)
  done;
  !h

let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := fold1 !h (Char.code c)) s;
  !h

let op_tag = function Read -> 1 | Write -> 2

let record t e =
  if t.enabled then begin
    t.count <- t.count + 1;
    if t.keep_events then t.events_rev <- e :: t.events_rev;
    let h = fold_string t.full e.store in
    let h = fold_int h (op_tag e.op) in
    let h = fold_int h e.addr in
    t.full <- fold_int h e.len;
    let h = fold_string t.shape e.store in
    let h = fold_int h (op_tag e.op) in
    t.shape <- fold_int h e.len
  end

let mark t label =
  if t.enabled then begin
    t.full <- fold_string t.full label;
    t.shape <- fold_string t.shape label
  end

let count t = t.count
let full_digest t = t.full
let shape_digest t = t.shape
let events t = List.rev t.events_rev
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
