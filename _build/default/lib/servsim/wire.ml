type request =
  | Create_store of string
  | Drop_store of string
  | Ensure of string * int
  | Get of string * int
  | Put of string * int * string
  | Multi_get of string * int list
  | Multi_put of string * (int * string) list
  | Digest
  | Total_bytes
  | Bye

type response =
  | Ok
  | Value of string
  | Values of string list
  | Digests of { full : int64; shape : int64; count : int }
  | Bytes_total of int
  | Error of string

exception Protocol_error of string

let protocol_version = 2

(* Hard caps on what a length prefix may claim.  A corrupt or truncated
   stream must fail with [Protocol_error], not drive [really_input_string]
   into a multi-gigabyte allocation. *)
let max_string_len = 1 lsl 26 (* 64 MiB per string *)
let max_list_len = 1 lsl 24 (* 16M entries per batch *)

let put_u32 oc v =
  if v < 0 || v > 0xFFFFFFFF then
    raise (Protocol_error (Printf.sprintf "put_u32: %d out of 32-bit range" v));
  for k = 0 to 3 do
    output_char oc (Char.chr ((v lsr (k * 8)) land 0xff))
  done

let get_u32 ic =
  let v = ref 0 in
  for k = 0 to 3 do
    v := !v lor (Char.code (input_char ic) lsl (k * 8))
  done;
  !v land 0xFFFFFFFF

let put_u64 oc v =
  for k = 0 to 7 do
    output_char oc (Char.chr (Int64.to_int (Int64.shift_right_logical v (k * 8)) land 0xff))
  done

let get_u64 ic =
  let v = ref 0L in
  for k = 0 to 7 do
    let b = Int64.of_int (Char.code (input_char ic)) in
    v := Int64.logor !v (Int64.shift_left b (k * 8))
  done;
  !v

let put_string oc s =
  let n = String.length s in
  if n > max_string_len then
    raise (Protocol_error (Printf.sprintf "put_string: %d bytes exceeds frame cap %d" n max_string_len));
  put_u32 oc n;
  output_string oc s

let get_string ic =
  let n = get_u32 ic in
  if n > max_string_len then
    raise (Protocol_error (Printf.sprintf "get_string: claimed length %d exceeds frame cap %d" n max_string_len));
  really_input_string ic n

let put_count oc n =
  if n > max_list_len then
    raise (Protocol_error (Printf.sprintf "put_count: %d entries exceeds batch cap %d" n max_list_len));
  put_u32 oc n

let get_count ic =
  let n = get_u32 ic in
  if n > max_list_len then
    raise (Protocol_error (Printf.sprintf "get_count: claimed %d entries exceeds batch cap %d" n max_list_len));
  n

let get_list ic get_item =
  let n = get_count ic in
  List.init n (fun _ -> get_item ic)

let write_hello oc =
  output_char oc (Char.chr protocol_version);
  flush oc

let read_hello ic = Char.code (input_char ic)

let write_request oc req =
  (match req with
  | Create_store s ->
      output_char oc '\001';
      put_string oc s
  | Drop_store s ->
      output_char oc '\002';
      put_string oc s
  | Ensure (s, n) ->
      output_char oc '\003';
      put_string oc s;
      put_u32 oc n
  | Get (s, i) ->
      output_char oc '\004';
      put_string oc s;
      put_u32 oc i
  | Put (s, i, v) ->
      output_char oc '\005';
      put_string oc s;
      put_u32 oc i;
      put_string oc v
  | Multi_get (s, idxs) ->
      output_char oc '\009';
      put_string oc s;
      put_count oc (List.length idxs);
      List.iter (put_u32 oc) idxs
  | Multi_put (s, items) ->
      output_char oc '\010';
      put_string oc s;
      put_count oc (List.length items);
      List.iter
        (fun (i, v) ->
          put_u32 oc i;
          put_string oc v)
        items
  | Digest -> output_char oc '\006'
  | Total_bytes -> output_char oc '\007'
  | Bye -> output_char oc '\008');
  flush oc

let read_request ic =
  match input_char ic with
  | '\001' -> Create_store (get_string ic)
  | '\002' -> Drop_store (get_string ic)
  | '\003' ->
      let s = get_string ic in
      Ensure (s, get_u32 ic)
  | '\004' ->
      let s = get_string ic in
      Get (s, get_u32 ic)
  | '\005' ->
      let s = get_string ic in
      let i = get_u32 ic in
      Put (s, i, get_string ic)
  | '\009' ->
      let s = get_string ic in
      Multi_get (s, get_list ic get_u32)
  | '\010' ->
      let s = get_string ic in
      Multi_put
        ( s,
          get_list ic (fun ic ->
              let i = get_u32 ic in
              (i, get_string ic)) )
  | '\006' -> Digest
  | '\007' -> Total_bytes
  | '\008' -> Bye
  | c -> raise (Protocol_error (Printf.sprintf "bad request tag %d" (Char.code c)))

let write_response oc resp =
  (match resp with
  | Ok -> output_char oc '\100'
  | Value v ->
      output_char oc '\101';
      put_string oc v
  | Values vs ->
      output_char oc '\105';
      put_count oc (List.length vs);
      List.iter (put_string oc) vs
  | Digests { full; shape; count } ->
      output_char oc '\102';
      put_u64 oc full;
      put_u64 oc shape;
      put_u32 oc count
  | Bytes_total n ->
      output_char oc '\103';
      put_u32 oc n
  | Error msg ->
      output_char oc '\104';
      put_string oc msg);
  flush oc

let read_response ic =
  match input_char ic with
  | '\100' -> Ok
  | '\101' -> Value (get_string ic)
  | '\105' -> Values (get_list ic get_string)
  | '\102' ->
      let full = get_u64 ic in
      let shape = get_u64 ic in
      let count = get_u32 ic in
      Digests { full; shape; count }
  | '\103' -> Bytes_total (get_u32 ic)
  | '\104' -> Error (get_string ic)
  | c -> raise (Protocol_error (Printf.sprintf "bad response tag %d" (Char.code c)))
