lib/baseline/leakage_attack.mli: Relation Value
