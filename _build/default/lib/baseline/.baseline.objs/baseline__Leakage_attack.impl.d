lib/baseline/leakage_attack.ml: Array Hashtbl List Option Relation String Value
