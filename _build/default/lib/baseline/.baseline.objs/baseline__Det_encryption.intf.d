lib/baseline/det_encryption.mli:
