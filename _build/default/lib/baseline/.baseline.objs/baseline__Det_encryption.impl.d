lib/baseline/det_encryption.ml: Bytes Char Crypto String
