lib/baseline/freq_fd.mli: Fdbase Relation Table
