lib/baseline/freq_fd.ml: Array Codec Det_encryption Fdbase Hashtbl List Option Relation Table Unix Value
