(** Frequency-revealing FD discovery — the insecure-but-fast baseline.

    With deterministic cell encryption the server can compute partitions
    by itself (grouping equal ciphertexts), so FD discovery needs no
    client interaction beyond the upload.  This is the performance target
    the paper's oblivious methods are compared against, and the security
    anti-example: {!Leakage_attack} shows what the leaked histograms give
    away. *)

open Relation

type server_view = {
  column_histograms : int list array;
      (** per column: the multiset of ciphertext frequencies, sorted
          descending — everything S learns beyond sizes *)
}

type report = {
  fds : Fdbase.Fd.t list;
  elapsed_s : float;
  view : server_view;
}

val discover : ?max_lhs:int -> string (* key *) -> Table.t -> report
(** Encrypt the table deterministically, then let the (simulated) server
    run partition-based discovery directly on ciphertexts. *)
