(** Deterministic (frequency-revealing) cell encryption.

    The prior art the paper improves on (Dong & Wang, ICDE 2017 — §VIII)
    performs FD discovery over {e deterministically} encrypted cells:
    equal plaintexts produce equal ciphertexts, so the server can group
    and count by itself.  That makes discovery fast and non-interactive —
    and leaks the full frequency histogram of every column, which
    frequency-analysis attacks exploit (Naveed et al., CCS 2015).

    We implement it as AES-128 in a synthetic-IV mode: the IV is a PRF of
    the plaintext (CBC-MAC under a second key), so encryption is a
    deterministic permutation-like map, secure up to equality leakage. *)

type t

val create : string -> t
(** [create raw_key] derives the encryption and PRF keys from one 16-byte
    master key. *)

val encrypt : t -> string -> string
(** Deterministic: equal plaintexts yield equal ciphertexts. *)

val decrypt : t -> string -> string
(** @raise Invalid_argument on malformed input. *)
