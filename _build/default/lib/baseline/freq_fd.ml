open Relation

type server_view = { column_histograms : int list array }

type report = {
  fds : Fdbase.Fd.t list;
  elapsed_s : float;
  view : server_view;
}

let discover ?max_lhs raw_key table =
  let det = Det_encryption.create raw_key in
  let n = Table.rows table and m = Table.cols table in
  (* Upload: deterministic ciphertext per cell. *)
  let enc =
    Array.init n (fun r ->
        Array.init m (fun c ->
            Det_encryption.encrypt det (Codec.encode_value (Table.cell table ~row:r ~col:c))))
  in
  (* Everything below runs purely server-side on ciphertexts. *)
  let t0 = Unix.gettimeofday () in
  let column c = Array.init n (fun r -> Value.Str enc.(r).(c)) in
  let oracle =
    {
      Fdbase.Lattice.single =
        (fun c ->
          let p = Fdbase.Partition.of_column (column c) in
          (p, Fdbase.Partition.cardinality p));
      combine =
        (fun _x h1 h2 ->
          let p = Fdbase.Partition.product h1 h2 in
          (p, Fdbase.Partition.cardinality p));
      release = (fun _ -> ());
    }
  in
  let result = Fdbase.Lattice.discover ~m ~n ?max_lhs oracle in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let histogram c =
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun row ->
        let ct = row.(c) in
        Hashtbl.replace counts ct (1 + Option.value ~default:0 (Hashtbl.find_opt counts ct)))
      enc;
    Hashtbl.fold (fun _ k acc -> k :: acc) counts [] |> List.sort (fun a b -> compare b a)
  in
  {
    fds = result.Fdbase.Lattice.fds;
    elapsed_s;
    view = { column_histograms = Array.init m histogram };
  }
