type t = { enc_key : Crypto.Aes128.key; mac_key : Crypto.Aes128.key }

let derive raw tag =
  (* Domain-separate the two subkeys with one AES call on a tag block. *)
  let k = Crypto.Aes128.expand raw in
  let src = Bytes.make 16 tag in
  let dst = Bytes.create 16 in
  Crypto.Aes128.encrypt_block k ~src ~src_off:0 ~dst ~dst_off:0;
  Bytes.to_string dst

let create raw_key =
  {
    enc_key = Crypto.Aes128.expand (derive raw_key '\001');
    mac_key = Crypto.Aes128.expand (derive raw_key '\002');
  }

(* CBC-MAC over the zero-padded plaintext (fixed-width inputs only, which
   is what the cell codec produces, so length-extension is not a
   concern). *)
let cbc_mac key plaintext =
  let n = String.length plaintext in
  let padded_len = (n + 15) / 16 * 16 in
  let buf = Bytes.make (max 16 padded_len) '\000' in
  Bytes.blit_string plaintext 0 buf 0 n;
  let acc = Bytes.make 16 '\000' in
  let off = ref 0 in
  while !off < Bytes.length buf do
    for i = 0 to 15 do
      Bytes.set acc i
        (Char.chr (Char.code (Bytes.get acc i) lxor Char.code (Bytes.get buf (!off + i))))
    done;
    Crypto.Aes128.encrypt_block key ~src:acc ~src_off:0 ~dst:acc ~dst_off:0;
    off := !off + 16
  done;
  Bytes.to_string acc

let encrypt t plaintext =
  let iv = cbc_mac t.mac_key plaintext in
  iv ^ Crypto.Cbc.encrypt t.enc_key ~iv plaintext

let decrypt t ciphertext =
  if String.length ciphertext < 32 then invalid_arg "Det_encryption.decrypt: too short";
  let iv = String.sub ciphertext 0 16 in
  let body = String.sub ciphertext 16 (String.length ciphertext - 16) in
  Crypto.Cbc.decrypt t.enc_key ~iv body
