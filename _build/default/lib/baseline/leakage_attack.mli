(** Frequency-analysis attack against deterministic encryption — why the
    paper insists on minimal leakage.

    Given (1) the ciphertext column of a deterministically encrypted
    attribute and (2) an auxiliary plaintext distribution for that
    attribute (census tables, public datasets — the standard assumption
    of Naveed-Kamara-Wright, CCS 2015), the attacker sorts both sides by
    frequency and matches rank-by-rank.  Low-entropy attributes (sex,
    state, department) fall almost completely. *)

open Relation

type result = {
  assignment : (string * Value.t) list;  (** ciphertext -> guessed plaintext *)
  recovered_cells : int;  (** correctly recovered cells, given the truth *)
  total_cells : int;
}

val frequency_attack :
  ciphertexts:string array -> auxiliary:Value.t array -> truth:Value.t array -> result
(** [frequency_attack ~ciphertexts ~auxiliary ~truth] runs the
    rank-matching attack; [truth] is used only to score accuracy. *)

val recovery_rate : result -> float
