open Relation

type result = {
  assignment : (string * Value.t) list;
  recovered_cells : int;
  total_cells : int;
}

(* Distinct items of [arr], most frequent first (ties broken by [cmp] for
   determinism). *)
let rank (type a) (module H : Hashtbl.HashedType with type t = a) cmp (arr : a array) =
  let module T = Hashtbl.Make (H) in
  let counts = T.create 64 in
  Array.iter (fun x -> T.replace counts x (1 + Option.value ~default:0 (T.find_opt counts x))) arr;
  T.fold (fun x c acc -> (x, c) :: acc) counts []
  |> List.sort (fun (x1, c1) (x2, c2) -> match compare c2 c1 with 0 -> cmp x1 x2 | d -> d)
  |> List.map fst

module Str_h = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end

module Val_h = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

let frequency_attack ~ciphertexts ~auxiliary ~truth =
  if Array.length ciphertexts <> Array.length truth then
    invalid_arg "Leakage_attack.frequency_attack: ciphertexts/truth length mismatch";
  let ct_ranked = rank (module Str_h) String.compare ciphertexts in
  let aux_ranked = rank (module Val_h) Value.compare auxiliary in
  let rec zip a b =
    match (a, b) with
    | x :: a', y :: b' -> (x, y) :: zip a' b'
    | _, [] | [], _ -> []
  in
  let assignment = zip ct_ranked aux_ranked in
  let guess = Hashtbl.create 64 in
  List.iter (fun (ct, v) -> Hashtbl.replace guess ct v) assignment;
  let recovered = ref 0 in
  Array.iteri
    (fun i ct ->
      match Hashtbl.find_opt guess ct with
      | Some v when Value.equal v truth.(i) -> incr recovered
      | Some _ | None -> ())
    ciphertexts;
  { assignment; recovered_cells = !recovered; total_cells = Array.length ciphertexts }

let recovery_rate r =
  if r.total_cells = 0 then 0.0 else float_of_int r.recovered_cells /. float_of_int r.total_cells
