(** Cell values of the outsourced database.

    The paper assumes orderable, individually encryptable cell values
    (§II-A, Definition 3).  We support integers and short strings; both
    are totally ordered (all integers sort before all strings) and encode
    to a fixed-width binary form suitable for semantically secure
    encryption (see {!Codec}). *)

type t =
  | Int of int
  | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Parses an integer if the string looks like one, else a [Str]. *)
