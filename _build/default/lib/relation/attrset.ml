type t = int

let max_attrs = 62

let empty = 0
let full ~m = (1 lsl m) - 1

let check_idx i =
  if i < 0 || i >= max_attrs then invalid_arg "Attrset: attribute index out of range"

let singleton i =
  check_idx i;
  1 lsl i

let add s i =
  check_idx i;
  s lor (1 lsl i)

let remove s i =
  check_idx i;
  s land lnot (1 lsl i)

let mem s i = i >= 0 && i < max_attrs && s land (1 lsl i) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let is_empty s = s = 0
let subset a b = a land b = a
let equal = Int.equal
let compare = Int.compare

let elements s =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mem s i then i :: acc else acc) in
  go (max_attrs - 1) []

let of_list l = List.fold_left add empty l

let iter f s = List.iter f (elements s)
let fold f s init = List.fold_left (fun acc i -> f i acc) init (elements s)
let for_all p s = List.for_all p (elements s)
let exists p s = List.exists p (elements s)

let min_elt s =
  if s = 0 then raise Not_found;
  let rec go i = if mem s i then i else go (i + 1) in
  go 0

let choose_two_generators s =
  if cardinal s < 2 then invalid_arg "Attrset.choose_two_generators: need |X| >= 2";
  let a = min_elt s in
  let b = min_elt (remove s a) in
  (remove s a, remove s b)

let to_int s = s
let of_int s = s

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (elements s)))

let pp_named names ppf s =
  let name i = if i < Array.length names then names.(i) else string_of_int i in
  Format.fprintf ppf "{%s}" (String.concat "," (List.map name (elements s)))
