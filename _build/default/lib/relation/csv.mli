(** Minimal CSV reader/writer (RFC-4180 quoting subset) for loading
    external datasets and dumping tables.  The first line is the header. *)

val parse_line : string -> string list
(** Split one CSV line into fields, honouring double-quoted fields with
    escaped quotes ([""]). *)

val of_string : string -> Table.t
(** Parse a whole CSV document; cells become {!Value.t} via
    {!Value.of_string}.  @raise Invalid_argument on ragged rows or empty
    input. *)

val load : string -> Table.t
(** Read a CSV file from disk. *)

val to_string : Table.t -> string
val save : string -> Table.t -> unit
