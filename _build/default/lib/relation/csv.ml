let parse_line line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec field i =
    if i >= n then finish i
    else if line.[i] = '"' then quoted (i + 1)
    else plain i
  and plain i =
    if i >= n then finish i
    else if line.[i] = ',' then begin
      push ();
      field (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      plain (i + 1)
    end
  and quoted i =
    if i >= n then invalid_arg "Csv.parse_line: unterminated quote"
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else plain (i + 1)
    else begin
      Buffer.add_char buf line.[i];
      quoted (i + 1)
    end
  and push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  and finish _ = push ()
  in
  field 0;
  List.rev !fields

let of_string doc =
  let lines =
    String.split_on_char '\n' doc
    |> List.map (fun l ->
           let l = if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l
           in
           l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> invalid_arg "Csv.of_string: empty document"
  | header :: body ->
      let names = Array.of_list (parse_line header) in
      let schema = Schema.make names in
      let m = Array.length names in
      let parse_row l =
        let cells = parse_line l in
        if List.length cells <> m then invalid_arg "Csv.of_string: ragged row";
        Array.of_list (List.map Value.of_string cells)
      in
      Table.make schema (Array.of_list (List.map parse_row body))

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  of_string doc

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_string t =
  let buf = Buffer.create 1024 in
  let add_row cells =
    Buffer.add_string buf (String.concat "," (List.map escape_field cells));
    Buffer.add_char buf '\n'
  in
  add_row (Array.to_list (Schema.names (Table.schema t)));
  for i = 0 to Table.rows t - 1 do
    add_row
      (Array.to_list (Table.row t i) |> List.map Value.to_string)
  done;
  Buffer.contents buf

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc
