(** Relation schema: ordered attribute (column) names. *)

type t

val make : string array -> t
(** @raise Invalid_argument on duplicate names or more than
    {!Attrset.max_attrs} columns. *)

val arity : t -> int
val name : t -> int -> string
val names : t -> string array
val index : t -> string -> int
(** @raise Not_found if the attribute is unknown. *)

val attrset_of_names : t -> string list -> Attrset.t
val pp_attrset : t -> Format.formatter -> Attrset.t -> unit
