type t = { names : string array; by_name : (string, int) Hashtbl.t }

let make names =
  if Array.length names > Attrset.max_attrs then
    invalid_arg "Schema.make: too many columns";
  let by_name = Hashtbl.create (Array.length names) in
  Array.iteri
    (fun i n ->
      if Hashtbl.mem by_name n then invalid_arg ("Schema.make: duplicate attribute " ^ n);
      Hashtbl.replace by_name n i)
    names;
  { names = Array.copy names; by_name }

let arity t = Array.length t.names
let name t i = t.names.(i)
let names t = Array.copy t.names

let index t n =
  match Hashtbl.find_opt t.by_name n with
  | Some i -> i
  | None -> raise Not_found

let attrset_of_names t l = Attrset.of_list (List.map (index t) l)

let pp_attrset t ppf s = Attrset.pp_named t.names ppf s
