lib/relation/attrset.mli: Format
