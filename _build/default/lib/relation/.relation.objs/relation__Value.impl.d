lib/relation/value.ml: Format Hashtbl Int String
