lib/relation/csv.mli: Table
