lib/relation/table.ml: Array Attrset Format List Schema String Value
