lib/relation/schema.ml: Array Attrset Hashtbl List
