lib/relation/codec.ml: Bytes Char Int64 Printf String Value
