lib/relation/table.mli: Attrset Format Schema Value
