lib/relation/codec.mli: Bytes Value
