lib/relation/attrset.ml: Array Format Int List String
