lib/relation/schema.mli: Attrset Format
