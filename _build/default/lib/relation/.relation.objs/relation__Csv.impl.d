lib/relation/csv.ml: Array Buffer List Schema String Table Value
