type t =
  | Int of int
  | Str of string

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s

let pp ppf = function
  | Int x -> Format.fprintf ppf "%d" x
  | Str s -> Format.fprintf ppf "%S" s

let of_string s =
  match int_of_string_opt s with
  | Some x -> Int x
  | None -> Str s
