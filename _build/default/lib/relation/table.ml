type t = { schema : Schema.t; data : Value.t array array }

let make schema data =
  let m = Schema.arity schema in
  Array.iter
    (fun r ->
      if Array.length r <> m then invalid_arg "Table.make: row arity mismatch")
    data;
  { schema; data = Array.copy data }

let schema t = t.schema
let rows t = Array.length t.data
let cols t = Schema.arity t.schema
let cell t ~row ~col = t.data.(row).(col)
let row t i = Array.copy t.data.(i)
let column t c = Array.map (fun r -> r.(c)) t.data

let project_value t ~row set =
  List.map (fun c -> t.data.(row).(c)) (Attrset.elements set)

let sample_rows t rand k =
  let n = rows t in
  if k > n then invalid_arg "Table.sample_rows: sample larger than table";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher–Yates: the first k entries end up a uniform sample. *)
  for i = 0 to k - 1 do
    let j = i + rand (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  { schema = t.schema; data = Array.init k (fun i -> t.data.(idx.(i))) }

let append_row t r =
  if Array.length r <> cols t then invalid_arg "Table.append_row: arity mismatch";
  { t with data = Array.append t.data [| Array.copy r |] }

let remove_row t i =
  if i < 0 || i >= rows t then invalid_arg "Table.remove_row: out of bounds";
  let data =
    Array.init (rows t - 1) (fun k -> if k < i then t.data.(k) else t.data.(k + 1))
  in
  { t with data }

let equal a b =
  Schema.names a.schema = Schema.names b.schema
  && Array.length a.data = Array.length b.data
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 Value.equal r1 r2) a.data b.data

let pp ppf t =
  let m = cols t in
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " (Array.to_list (Schema.names t.schema)));
  Array.iter
    (fun r ->
      for c = 0 to m - 1 do
        if c > 0 then Format.fprintf ppf " | ";
        Value.pp ppf r.(c)
      done;
      Format.fprintf ppf "@,")
    t.data;
  Format.fprintf ppf "@]"
