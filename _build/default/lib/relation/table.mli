(** In-memory plaintext relation: the client's database DB before
    outsourcing, and the working representation of the non-secure
    baselines. *)

type t

val make : Schema.t -> Value.t array array -> t
(** Rows are copied shallowly; each row must have [Schema.arity] cells.
    @raise Invalid_argument on arity mismatch. *)

val schema : t -> Schema.t
val rows : t -> int
(** n — number of records. *)

val cols : t -> int
(** m — number of attributes. *)

val cell : t -> row:int -> col:int -> Value.t
val row : t -> int -> Value.t array
val column : t -> int -> Value.t array

val project_value : t -> row:int -> Attrset.t -> Value.t list
(** The tuple of values of a record under an attribute set (ascending
    column order). *)

val sample_rows : t -> (int -> int) -> int -> t
(** [sample_rows t rand k] takes a uniform sample of [k] distinct rows
    (used by the Table II experiment to equalise dataset sizes).
    @raise Invalid_argument if [k > rows t]. *)

val append_row : t -> Value.t array -> t
val remove_row : t -> int -> t
(** Functional update helpers for the dynamic-database tests. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
