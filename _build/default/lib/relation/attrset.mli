(** Attribute sets as bitmasks over column indices.

    FD discovery manipulates very many small sets of column indices
    (lattice nodes, C+ candidate sets); a bitmask makes membership, union,
    intersection and equality O(1) and makes sets directly usable as
    hash-table keys.  Supports up to 62 columns, far above the paper's
    datasets (14–20). *)

type t = private int

val max_attrs : int

val empty : t
val full : m:int -> t
val singleton : int -> t
val add : t -> int -> t
val remove : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val elements : t -> int list
(** Ascending column indices. *)

val of_list : int list -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val min_elt : t -> int
(** @raise Not_found on the empty set. *)

val choose_two_generators : t -> t * t
(** For [|X| >= 2], the two subsets [X \ {a}] and [X \ {b}] where [a], [b]
    are the two smallest attributes — the pair (X1, X2) of the paper's
    Property 1 (X1 ∪ X2 = X, both strict subsets, both one level down).
    @raise Invalid_argument if [cardinal < 2]. *)

val to_int : t -> int
val of_int : int -> t
val pp : Format.formatter -> t -> unit
val pp_named : string array -> Format.formatter -> t -> unit
