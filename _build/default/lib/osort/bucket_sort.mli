(** Bucket oblivious random permutation and bucket oblivious sort
    (Asharov, Chan, Nayak, Pass, Ren, Shi — SOSA 2020), the paper's
    reference [1]: an O(n log n) oblivious shuffle/sort, asymptotically
    better than bitonic's O(n log² n).

    Structure: elements get uniform random destination keys and are
    routed through a butterfly of log B levels of {e MergeSplit}
    operations over B buckets of capacity [z]; each MergeSplit is a fixed
    bitonic network over 2[z] slots, so the whole physical schedule is a
    function of (n, z) alone.  A bucket overflow (probability
    2^{-Ω(z)}) aborts and retries with fresh keys — the retry itself
    reveals nothing about the data since keys are independent of it.

    After the permutation, a comparison sort's access pattern on the
    {e randomly permuted} data is input-independent (ties broken by
    position), giving the bucket oblivious sort. *)

exception Overflow
(** Raised internally on bucket overflow; {!permute} retries, so callers
    see it only if [attempts] is exhausted. *)

val permute : ?z:int -> ?attempts:int -> rand:(int -> int) -> 'a array -> 'a array
(** [permute ~rand a] is a uniformly random permutation of [a] produced
    by the oblivious routing network.  [z] is the bucket capacity
    (default 32); [attempts] bounds overflow retries (default 16).
    @raise Overflow if every attempt overflowed (vanishingly unlikely). *)

val sort : ?z:int -> compare:('a -> 'a -> int) -> rand:(int -> int) -> 'a array -> 'a array
(** Bucket oblivious sort: {!permute}, then merge sort with ties broken
    by permuted position. *)

val touches : n:int -> z:int -> int
(** The number of element slots touched by the routing network for [n]
    elements — the cost model used in the ablation bench (compare with
    2·comparators of the bitonic network). *)
