(** Comparator networks.

    A sorting network is an explicit, data-independent schedule of
    compare-exchange operations: a sequence of stages, each a set of
    comparators touching pairwise-disjoint positions.  Because the schedule
    is a function of the array length alone, any algorithm that executes a
    network over encrypted elements is oblivious by construction
    (Definition 2 of the paper) — this module is where that guarantee
    comes from, so it is kept free of any data or crypto concerns.

    Comparators within one stage are disjoint, which is exactly the
    parallelism the paper exploits (§VII-D, up to n/2 threads). *)

type comparator = {
  i : int;
  j : int;  (** i < j always *)
  up : bool;  (** after the exchange, elt(i) <= elt(j) iff [up] *)
}

type t = {
  n : int;  (** array length the network sorts (a power of two) *)
  stages : comparator array array;
}

val bitonic : int -> t
(** [bitonic n] is Batcher's bitonic sorting network for [n] a power of
    two; O(n log^2 n) comparators in (log n)(log n + 1)/2 stages.
    @raise Invalid_argument if [n] is not a positive power of two. *)

val odd_even_merge : int -> t
(** Batcher's odd-even merge sorting network, same asymptotics with a
    smaller constant; used for the network ablation. *)

val comparator_count : t -> int
val stage_count : t -> int

val sorts_all_01 : t -> bool
(** Exhaustive 0-1-principle check: the network sorts all 2^n boolean
    inputs ascending.  Exponential — for test use with n <= 16. *)

val check_disjoint_stages : t -> bool
(** Every stage touches each index at most once (required for parallel
    execution). *)

val ceil_pow2 : int -> int
(** Smallest power of two >= max(1, n). *)
