exception Overflow

type 'a slot =
  | Real of int * 'a (* routing key, element *)
  | Dummy

let log2_exact b =
  let rec go l v = if v = 1 then l else go (l + 1) (v / 2) in
  go 0 b

(* One MergeSplit: route the real elements of two z-slot buckets by bit
   [bit] of their keys.  (A deployment performs this as a fixed bitonic
   network over the 2z encrypted slots; the data movement below is the
   same and the schedule is equally input-independent — every level
   touches every slot of every bucket exactly once.) *)
let merge_split ~z ~bit b0 b1 =
  let out0 = Array.make z Dummy and out1 = Array.make z Dummy in
  let n0 = ref 0 and n1 = ref 0 in
  let route slot =
    match slot with
    | Dummy -> ()
    | Real (key, _) ->
        if key land (1 lsl bit) = 0 then begin
          if !n0 >= z then raise Overflow;
          out0.(!n0) <- slot;
          incr n0
        end
        else begin
          if !n1 >= z then raise Overflow;
          out1.(!n1) <- slot;
          incr n1
        end
  in
  Array.iter route b0;
  Array.iter route b1;
  (out0, out1)

let permute_once ~z ~rand a =
  let n = Array.length a in
  let half = z / 2 in
  let b = Network.ceil_pow2 (max 2 ((n + half - 1) / half)) in
  let levels = log2_exact b in
  (* Random destination keys, then initial distribution: <= z/2 reals per
     bucket. *)
  let buckets =
    Array.init b (fun bi ->
        Array.init z (fun s ->
            let i = (bi * half) + s in
            if s < half && i < n then Real (rand b, a.(i)) else Dummy))
  in
  for level = 0 to levels - 1 do
    let stride = 1 lsl level in
    for i = 0 to b - 1 do
      if i land stride = 0 then begin
        let j = i lor stride in
        let o0, o1 = merge_split ~z ~bit:level buckets.(i) buckets.(j) in
        buckets.(i) <- o0;
        buckets.(j) <- o1
      end
    done
  done;
  (* Collect reals bucket by bucket; within a bucket the residual order is
     a deterministic function of the keys, so shuffle it away (client-side
     work, invisible to the server). *)
  let out = Array.make n a.(0) in
  let k = ref 0 in
  Array.iter
    (fun bucket ->
      let reals =
        Array.to_list bucket
        |> List.filter_map (function Real (_, x) -> Some x | Dummy -> None)
        |> Array.of_list
      in
      for i = Array.length reals - 1 downto 1 do
        let j = rand (i + 1) in
        let tmp = reals.(i) in
        reals.(i) <- reals.(j);
        reals.(j) <- tmp
      done;
      Array.iter
        (fun x ->
          out.(!k) <- x;
          incr k)
        reals)
    buckets;
  assert (!k = n);
  out

let permute ?(z = 32) ?(attempts = 16) ~rand a =
  if z < 2 || z mod 2 <> 0 then invalid_arg "Bucket_sort.permute: z must be even and >= 2";
  if Array.length a <= 1 then Array.copy a
  else begin
    let rec try_ k =
      if k = 0 then raise Overflow
      else
        match permute_once ~z ~rand a with
        | out -> out
        | exception Overflow -> try_ (k - 1)
    in
    try_ attempts
  end

let sort ?z ~compare ~rand a =
  let permuted = permute ?z ~rand a in
  (* Comparison sort over randomly permuted data: the comparison outcomes
     (hence any data-dependent accesses) are determined by the uniformly
     random permutation once ties are broken by position. *)
  let indexed = Array.mapi (fun i x -> (x, i)) permuted in
  Array.sort
    (fun (x, i) (y, j) -> match compare x y with 0 -> Int.compare i j | c -> c)
    indexed;
  Array.map fst indexed

let touches ~n ~z =
  let half = z / 2 in
  let b = Network.ceil_pow2 (max 2 ((n + half - 1) / half)) in
  let levels = log2_exact b in
  (* Each level reads and rewrites every slot of every bucket. *)
  2 * levels * b * z
