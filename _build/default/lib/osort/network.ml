type comparator = { i : int; j : int; up : bool }

type t = {
  n : int;
  stages : comparator array array;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let bitonic n =
  if not (is_pow2 n) then invalid_arg "Network.bitonic: n must be a positive power of two";
  let stages = ref [] in
  let k = ref 2 in
  while !k <= n do
    let j = ref (!k / 2) in
    while !j > 0 do
      let stage = ref [] in
      for i = 0 to n - 1 do
        let l = i lxor !j in
        if l > i then begin
          let up = i land !k = 0 in
          stage := { i; j = l; up } :: !stage
        end
      done;
      stages := Array.of_list (List.rev !stage) :: !stages;
      j := !j / 2
    done;
    k := !k * 2
  done;
  { n; stages = Array.of_list (List.rev !stages) }

let odd_even_merge n =
  if not (is_pow2 n) then invalid_arg "Network.odd_even_merge: n must be a positive power of two";
  let stages = ref [] in
  let p = ref 1 in
  while !p < n do
    let k = ref !p in
    while !k >= 1 do
      let stage = ref [] in
      let j = ref (!k mod !p) in
      while !j <= n - 1 - !k do
        let upper = min (!k - 1) (n - 1 - !j - !k) in
        for i = 0 to upper do
          if (i + !j) / (!p * 2) = (i + !j + !k) / (!p * 2) then
            stage := { i = i + !j; j = i + !j + !k; up = true } :: !stage
        done;
        j := !j + (2 * !k)
      done;
      if !stage <> [] then stages := Array.of_list (List.rev !stage) :: !stages;
      k := !k / 2
    done;
    p := !p * 2
  done;
  { n; stages = Array.of_list (List.rev !stages) }

let comparator_count t = Array.fold_left (fun acc s -> acc + Array.length s) 0 t.stages
let stage_count t = Array.length t.stages

let apply_01 t input =
  let a = Array.copy input in
  Array.iter
    (fun stage ->
      Array.iter
        (fun { i; j; up } ->
          let lo, hi = if a.(i) <= a.(j) then (a.(i), a.(j)) else (a.(j), a.(i)) in
          if up then begin
            a.(i) <- lo;
            a.(j) <- hi
          end
          else begin
            a.(i) <- hi;
            a.(j) <- lo
          end)
        stage)
    t.stages;
  a

let sorts_all_01 t =
  let n = t.n in
  if n > 20 then invalid_arg "Network.sorts_all_01: n too large for exhaustive check";
  let sorted a =
    let ok = ref true in
    for i = 0 to n - 2 do
      if a.(i) > a.(i + 1) then ok := false
    done;
    !ok
  in
  let all_ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let input = Array.init n (fun i -> (mask lsr i) land 1) in
    if not (sorted (apply_01 t input)) then all_ok := false
  done;
  !all_ok

let check_disjoint_stages t =
  Array.for_all
    (fun stage ->
      let seen = Hashtbl.create 64 in
      Array.for_all
        (fun { i; j; _ } ->
          if Hashtbl.mem seen i || Hashtbl.mem seen j then false
          else begin
            Hashtbl.replace seen i ();
            Hashtbl.replace seen j ();
            true
          end)
        stage)
    t.stages
