lib/osort/driver.ml: Array Barrier Domain Network
