lib/osort/bucket_sort.ml: Array Int List Network
