lib/osort/network.mli:
