lib/osort/driver.mli: Network
