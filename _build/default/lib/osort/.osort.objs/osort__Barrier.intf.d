lib/osort/barrier.mli:
