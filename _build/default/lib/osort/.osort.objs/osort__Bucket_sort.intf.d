lib/osort/bucket_sort.mli:
