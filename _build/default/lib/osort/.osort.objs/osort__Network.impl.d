lib/osort/network.ml: Array Hashtbl List
