lib/osort/barrier.ml: Condition Mutex
