type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable waiting : int;
  mutable phase : int;
}

let create parties =
  if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
  { mutex = Mutex.create (); cond = Condition.create (); parties; waiting = 0; phase = 0 }

let wait t =
  Mutex.lock t.mutex;
  let phase = t.phase in
  t.waiting <- t.waiting + 1;
  if t.waiting = t.parties then begin
    t.waiting <- 0;
    t.phase <- phase + 1;
    Condition.broadcast t.cond
  end
  else
    while t.phase = phase do
      Condition.wait t.cond t.mutex
    done;
  Mutex.unlock t.mutex
