let run (net : Network.t) ~exchange =
  Array.iter
    (fun stage ->
      Array.iter (fun { Network.i; j; up } -> exchange ~up i j) stage)
    net.Network.stages

(* Persistent workers: domains are spawned once for the whole network and
   synchronise between stages on a reusable barrier — per-stage domain
   churn (and its stop-the-world GC synchronisations) would otherwise eat
   the parallel speedup. *)
let run_parallel (net : Network.t) ~domains ~make_exchange =
  if domains < 1 then invalid_arg "Driver.run_parallel: domains must be >= 1";
  if domains = 1 then run net ~exchange:(make_exchange ())
  else begin
    let stages = net.Network.stages in
    let barrier = Barrier.create domains in
    let worker w () =
      let exchange = make_exchange () in
      Array.iter
        (fun stage ->
          let len = Array.length stage in
          let chunk = (len + domains - 1) / domains in
          let lo = w * chunk and hi = min len ((w + 1) * chunk) in
          for c = lo to hi - 1 do
            let { Network.i; j; up } = stage.(c) in
            exchange ~up i j
          done;
          Barrier.wait barrier)
        stages
    in
    let spawned = Array.init (domains - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned
  end
