(** Drivers executing a comparator network over an abstract exchanger.

    The exchanger owns the data (plaintext in an enclave, or ciphertexts on
    a remote server) and performs one compare-exchange; the driver merely
    walks the fixed schedule.  The parallel driver exploits the fact that
    comparators within a stage touch disjoint indices: each domain runs a
    contiguous chunk of the stage with its own exchange closure (so
    per-worker RNG/cipher state is not shared), with a barrier between
    stages — the same structure as the paper's multi-threaded Sort
    (Fig. 6a). *)

val run : Network.t -> exchange:(up:bool -> int -> int -> unit) -> unit
(** Execute every stage sequentially. *)

val run_parallel :
  Network.t -> domains:int -> make_exchange:(unit -> up:bool -> int -> int -> unit) -> unit
(** [run_parallel net ~domains ~make_exchange] executes each stage with
    [domains] worker domains; [make_exchange] is called once per worker per
    run to build a thread-private exchange closure.
    @raise Invalid_argument if [domains < 1]. *)
