(** A reusable synchronisation barrier for a fixed party count, used to
    separate network stages among persistent worker domains. *)

type t

val create : int -> t
(** [create parties] — @raise Invalid_argument if [parties < 1]. *)

val wait : t -> unit
(** Blocks until all parties have called [wait] for the current phase. *)
