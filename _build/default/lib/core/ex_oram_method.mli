(** Ex-ORAM: the extended ORAM-based method for dynamic databases
    (§V, Algorithms 4 and 5) — the paper's first non-trivial secure FD
    discovery supporting both insertion and deletion.

    The ORAMs store strictly more than {!Or_oram_method}:
    - O^KLF_X : key_X → (label_X, fre_X) — fre_X is the frequency of the
      value under X, needed to know when a deleted record was the last
      holder of its key;
    - O^IKL_X : r[ID] → (key_X, label_X) — the key is needed to find the
      KLF pair of a record being deleted by ID alone.

    Deletion performs the same physical accesses whether the frequency
    hits zero or not (the branch lives in the client's update function),
    so insertions into and deletions from a given attribute set are
    oblivious. *)

open Relation

type handle

val attrs : handle -> Attrset.t
val cardinality : handle -> int
val live_records : handle -> int
(** Number of records currently contained (n after setup, changes with
    insert/delete). *)

val create : Session.t -> Attrset.t -> capacity:int -> handle
(** Empty structure able to hold up to [capacity] records — insertion
    beyond the initial n is the point of the dynamic method, so the
    capacity is chosen up front (ORAM trees are sized publicly). *)

val single : Enc_db.t -> ?capacity:int -> int -> handle
(** Algorithm 4 over a column of the encrypted database. *)

val combine : Session.t -> ?capacity:int -> Attrset.t -> handle -> handle -> handle
(** The |X| ≥ 2 variant of Algorithm 4 (keys from the generators' O^IKL,
    as in Algorithm 2). *)

val insert_value : handle -> row:int -> Value.t -> unit
(** Insert one record given its value under the (single) attribute. *)

val insert_single : handle -> Enc_db.t -> row:int -> unit

val insert_combined : handle -> gen1:handle -> gen2:handle -> row:int -> unit
(** The generators must already contain the record.  Combined keys use the
    handle's capacity as the public multiplier base, so labels stay unique
    even after the live count grows past the initial n. *)

val delete : handle -> row:int -> unit
(** Algorithm 5: remove record [row]'s contribution to (π_X, |π_X|).
    A no-op (but physically identical) if the record is absent. *)

val label_of_row : handle -> row:int -> int option
(** label_X of a record (one O^IKL access); [None] if absent/deleted. *)

val release : handle -> unit

val oracle : Session.t -> Enc_db.t -> handle Fdbase.Lattice.oracle
