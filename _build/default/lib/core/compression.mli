(** Attribute compression (§IV-B of the paper).

    Each record's value under an attribute set X is compressed to a pair
    (key_X, label_X):

    - for |X| = 1, key_X is the (fixed-width encoded) cell value itself;
    - for |X| ≥ 2, key_X = label_X1 · n + label_X2 ∈ [n² + n], where
      (X1, X2) are the two generators of Property 1;
    - label_X ∈ [n] is the unique integer assigned to key_X by the
      incremental card_X counter.

    This keeps the partition computation for any multi-attribute set
    constant-cost regardless of |X| — the key width never exceeds
    2⌈log n⌉+1 bits (we store it in a fixed 8-byte field). *)

open Relation

val key_of_value : Value.t -> string
(** ORAM key for a single-attribute set: the fixed-width value encoding
    ({!Codec.value_width} bytes). *)

val key_of_labels : n:int -> int -> int -> string
(** [key_of_labels ~n l1 l2] = encoding of [l1 * n + l2] (8 bytes).
    @raise Invalid_argument if a label is outside [0, n). *)

val combined_key_int : n:int -> int -> int -> int
(** The integer [l1 * n + l2] itself. *)

val single_key_len : int
val multi_key_len : int

val label_of_payload : string -> int
(** Decode a label payload (first 8 bytes). *)

val payload_of_label : int -> string
