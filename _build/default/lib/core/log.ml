(* Log source for the secure-FD core; enable with
   Logs.Src.set_level Core.Log.src (Some Logs.Debug) or via the CLI's
   --debug flag. *)

let src = Logs.Src.create "sfdd.core" ~doc:"Secure FD discovery protocols"

module L = (val Logs.src_log src : Logs.LOG)

let debug f = L.debug f
let info f = L.info f
let warn f = L.warn f
