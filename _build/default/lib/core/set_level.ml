let cardinality_ct_len = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:8

let check session c1 c2 =
  let cost = Session.cost session in
  Servsim.Cost.sent_to_client cost (2 * cardinality_ct_len);
  Servsim.Cost.sent_to_server cost 1;
  Servsim.Cost.round_trip cost;
  c1 = c2
