(** The set-level task (§IV-A, §IV-C(c)): decide whether
    |π_X| = |π_{X∪Y}|.

    In the protocol the two cardinalities live in S only as ciphertexts;
    S sends them to C, C decrypts and replies with a single bit — so S
    learns exactly whether the FD holds (part of the allowed leakage) and
    nothing about the values.  In the simulation the client already holds
    the plaintext counters, so this module's job is to model the channel
    cost of that exchange and to centralise the comparison. *)

val check : Session.t -> int -> int -> bool
(** [check session c1 c2] — [true] iff the FD holds ([c1 = c2]); charges
    two cardinality-ciphertext transfers and one round trip. *)

val cardinality_ct_len : int
(** Length of one encrypted cardinality (fixed-width 8-byte plaintext). *)
