(** Sort: the oblivious-sorting-based partition computation (Algorithm 3,
    §IV-D).

    For an attribute set X the method (1) bitonic-sorts the array of
    (key_X, r[ID]) pairs by key, (2) makes one linear pass replacing each
    key by its run index — the compressed label_X — and (3) bitonic-sorts
    back by r[ID].  The final array B preserves π_X ordered by record ID;
    [card + 1] is |π_X|.

    Every step is a fixed comparator network or a fixed scan, so the
    server's view is bit-identical for any two databases of the same size
    (the strongest form of Definition 2; tested via full trace digests).

    [domains] > 1 exercises the paper's parallel mode (Fig. 6a): network
    stages are executed by that many OCaml domains (tracing must be off —
    see {!Servsim.Trace.set_enabled}). *)

open Relation

type network =
  | Bitonic
  | Odd_even_merge  (** ablation alternative *)

type handle

val attrs : handle -> Attrset.t
val cardinality : handle -> int

val compute : ?network:network -> ?domains:int -> Sort_backend.t -> Attrset.t -> handle
(** Run Algorithm 3 over a backend already filled with (key, id) pairs. *)

val single :
  ?network:network -> ?domains:int -> ?backend:(n:int -> Sort_backend.t) ->
  Enc_db.t -> int -> handle
(** Build the pair array from an encrypted column, then {!compute}.
    [backend] defaults to {!Sort_backend.encrypted} on the database's
    session; pass [fun ~n -> Sort_backend.enclave ~n] for the SGX mode. *)

val combine :
  ?network:network -> ?domains:int -> ?backend:(n:int -> Sort_backend.t) ->
  Session.t -> Attrset.t -> handle -> handle -> handle
(** Pairs keyed by label_X1 · n + label_X2 read off the generators'
    result arrays (both ordered by r[ID]), then {!compute}. *)

val label_of_row : handle -> row:int -> int
(** label_X of record [row] (one array read). *)

val labels : handle -> int array
(** All labels ordered by record ID (n array reads). *)

val release : handle -> unit

val oracle :
  ?network:network -> ?domains:int -> ?backend:(n:int -> Sort_backend.t) ->
  Session.t -> Enc_db.t -> handle Fdbase.Lattice.oracle
