open Relation

let key_of_value v = Codec.encode_value v

let combined_key_int ~n l1 l2 =
  if l1 < 0 || l1 >= n || l2 < 0 || l2 >= n then
    invalid_arg "Compression.combined_key_int: label out of [0, n)";
  (l1 * n) + l2

let key_of_labels ~n l1 l2 = Codec.encode_int (combined_key_int ~n l1 l2)

let single_key_len = Codec.value_width
let multi_key_len = 8

let label_of_payload s = Codec.decode_int s
let payload_of_label l = Codec.encode_int l
