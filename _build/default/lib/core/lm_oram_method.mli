(** Lm-ORAM: a low-client-memory variant of the Or-ORAM method.

    The paper's ORAM methods keep O(n) client memory — a position map per
    PathORAM (Fig. 5) — and remark (§VII-C) that more advanced ORAMs
    trade that memory for runtime.  This method realises the trade
    end-to-end:

    - the Key-Label structure becomes an {!Oram.Omap} (AVL over a
      recursive PathORAM), since its keys are attribute values;
    - the ID-Label structure becomes a {!Oram.Recursive_path_oram}
      (record IDs are integers).

    The client is left with O(polylog n) state: top-level position maps
    and stashes.  Access counts per record are fixed (Omap budgets), so
    the method is oblivious exactly like Or-ORAM.  Runtime grows by the
    recursion depth — measured in the ablation bench. *)

open Relation

type handle

val attrs : handle -> Attrset.t
val cardinality : handle -> int

val single : Enc_db.t -> int -> handle
val combine : Session.t -> Attrset.t -> handle -> handle -> handle
val label_of_row : handle -> row:int -> int
val client_state_bytes : handle -> int
val release : handle -> unit

val oracle : Session.t -> Enc_db.t -> handle Fdbase.Lattice.oracle
