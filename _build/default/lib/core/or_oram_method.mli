(** Or-ORAM: the original ORAM-based oblivious partition computation
    (Algorithms 1 and 2 of the paper, §IV-C).

    For each attribute set X two PathORAMs are kept:
    - the Key-Label ORAM O^KL_X mapping key_X → label_X (its live-pair
      count is |π_X|);
    - the ID-Label ORAM O^IL_X mapping r[ID] → label_X (it preserves π_X
      and feeds the computation of supersets).

    Every record is processed with exactly one O^KL read, one O^IL write
    and one O^KL write (plus, for |X| ≥ 2, one read in each generator's
    O^IL), so the server-visible access sequence is a function of n
    alone.  Supports appending new records (insertion); deletion needs
    the extended method ({!Ex_oram_method}). *)

open Relation

type handle

val attrs : handle -> Attrset.t
val cardinality : handle -> int
(** |π_X| — held by the client (the server only stores its ciphertext). *)

val single : Enc_db.t -> int -> handle
(** Algorithm 1: build (O^KL, O^IL) for a single attribute by scanning
    the encrypted column. *)

val combine : Session.t -> Attrset.t -> handle -> handle -> handle
(** Algorithm 2: build the ORAMs for X = X1 ∪ X2 from the generators'
    ID-Label ORAMs (Property 1). *)

val insert_single : handle -> Enc_db.t -> row:int -> unit
(** Continue Algorithm 1 on one new record (ORAM methods "inherently
    support insertions", §IV-C(c)). *)

val insert_combined : Session.t -> handle -> gen1:handle -> gen2:handle -> row:int -> unit
(** Continue Algorithm 2 on one new record; the generators must already
    contain the record. *)

val label_of_row : handle -> row:int -> int
(** Client-side lookup of label_X for a record (one O^IL access). *)

val release : handle -> unit
(** Free the server-side ORAM trees. *)

val oracle : Session.t -> Enc_db.t -> handle Fdbase.Lattice.oracle
(** The attribute-level oracle for the lattice search. *)
