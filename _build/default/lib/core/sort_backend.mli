(** Storage backends for the sorting-based method (Algorithm 3).

    Algorithm 3 operates on an array of (key_X, r[ID]) pairs; this module
    abstracts where that array lives:

    - {!encrypted}: each element is a fixed-width plaintext encrypted under
      the client's key and stored in a server block store; every read and
      write moves a ciphertext over the channel and re-encrypts — the
      standard outsourced setting;
    - {!enclave}: the array is plaintext inside SGX-style secure memory
      that the server cannot observe; no transfer, no re-encryption — the
      paper's Fig. 6(b) configuration.

    The array is padded to a power of two with [Pad] elements (which sort
    after everything) so the bitonic network depends only on the public
    padded size. *)

open Relation

(** Sort keys.  [V] for raw single-attribute values, [L] for compressed
    label keys (§IV-B), [Pad] for padding (sorts last). *)
type skey =
  | V of Value.t
  | L of int
  | Pad

type elt = { key : skey; id : int }

val compare_skey : skey -> skey -> int
val compare_by_key : elt -> elt -> int
val compare_by_id : elt -> elt -> int
val pad_elt : elt

val encode_elt : elt -> string
(** Fixed width ({!elt_width} bytes). *)

val decode_elt : string -> elt
val elt_width : int

type t = {
  length : int;  (** padded (power-of-two) array length *)
  n : int;  (** number of real elements *)
  read : int -> elt;
  write : int -> elt -> unit;
  read_batch : int list -> elt list;
      (** Batched read, one round trip for the whole list (one
          [Multi_get] frame in remote mode).  A compare-exchange fetches
          its two slots in a single frame through this. *)
  write_batch : (int * elt) list -> unit;
      (** Batched write, one round trip for the whole list (one
          [Multi_put] frame in remote mode). *)
  make_worker : int -> (int -> elt) * (int -> elt -> unit);
      (** [make_worker w] — thread-private read/write closures for worker
          [w] (own cipher instance; no shared mutable state). *)
  client_bytes : int;  (** client working memory the backend needs *)
  destroy : unit -> unit;
}

val encrypted : Session.t -> n:int -> t
(** Fresh server-side encrypted array, all slots initialised to [Pad]. *)

val enclave : n:int -> t
(** Fresh in-enclave plaintext array. *)
