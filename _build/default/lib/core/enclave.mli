(** SGX-style enclave deployment of the Sort method (§VII-D, Fig. 6b).

    The enclave is modelled as client-side secure memory invisible to S:
    the encrypted cells are still fetched from the server once, but the
    (key, id) array lives decrypted in the enclave, so the sorting network
    runs without any transfer or re-encryption — exactly the two costs the
    paper identifies SGX as eliminating. *)

open Relation

val oracle : Session.t -> Enc_db.t -> Sort_method.handle Fdbase.Lattice.oracle

val discover : ?seed:int -> ?max_lhs:int -> Table.t -> Protocol.report

val partition_cardinality : ?seed:int -> Table.t -> Attrset.t -> int * float
(** (|π_X|, seconds for the final Algorithm-3 run inside the enclave). *)
