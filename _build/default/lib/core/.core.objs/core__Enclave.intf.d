lib/core/enclave.mli: Attrset Enc_db Fdbase Protocol Relation Session Sort_method Table
