lib/core/dynamic.mli: Attrset Fdbase Relation Session Table Value
