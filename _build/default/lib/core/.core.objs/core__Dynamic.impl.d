lib/core/dynamic.ml: Array Attrset Enc_db Ex_oram_method Fdbase Format Hashtbl List Log Option Relation Session Set_level Table
