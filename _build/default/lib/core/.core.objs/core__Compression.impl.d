lib/core/compression.ml: Codec Relation
