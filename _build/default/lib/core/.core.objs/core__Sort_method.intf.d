lib/core/sort_method.mli: Attrset Enc_db Fdbase Relation Session Sort_backend
