lib/core/protocol.ml: Attrset Enc_db Ex_oram_method Fdbase Format List Log Or_oram_method Relation Servsim Session Set_level Sort_method Table Unix
