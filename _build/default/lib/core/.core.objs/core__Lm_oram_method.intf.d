lib/core/lm_oram_method.mli: Attrset Enc_db Fdbase Relation Session
