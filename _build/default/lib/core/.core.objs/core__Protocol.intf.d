lib/core/protocol.mli: Attrset Fdbase Format Relation Schema Servsim Table
