lib/core/enclave.ml: Attrset Compression Enc_db Fdbase Protocol Relation Servsim Session Sort_backend Sort_method Table Unix
