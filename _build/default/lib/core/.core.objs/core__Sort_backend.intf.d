lib/core/sort_backend.mli: Relation Session Value
