lib/core/set_level.mli: Session
