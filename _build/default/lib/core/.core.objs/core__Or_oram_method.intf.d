lib/core/or_oram_method.mli: Attrset Enc_db Fdbase Relation Session
