lib/core/compression.mli: Relation Value
