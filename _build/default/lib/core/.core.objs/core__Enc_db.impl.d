lib/core/enc_db.ml: Codec Crypto Relation Servsim Session Table
