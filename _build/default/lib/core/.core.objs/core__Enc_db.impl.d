lib/core/enc_db.ml: Codec Crypto List Relation Servsim Session Table
