lib/core/ex_oram_method.ml: Attrset Codec Compression Enc_db Fdbase Option Oram Relation Session String
