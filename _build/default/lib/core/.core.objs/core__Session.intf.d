lib/core/session.mli: Crypto Servsim
