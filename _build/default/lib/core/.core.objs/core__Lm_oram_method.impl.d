lib/core/lm_oram_method.ml: Attrset Codec Compression Enc_db Fdbase Oram Relation Session
