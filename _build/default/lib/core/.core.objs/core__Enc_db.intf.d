lib/core/enc_db.mli: Relation Session Table Value
