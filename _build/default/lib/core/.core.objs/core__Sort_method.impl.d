lib/core/sort_method.ml: Array Attrset Compression Enc_db Fdbase Fun List Option Osort Relation Session Sort_backend
