lib/core/set_level.ml: Crypto Servsim Session
