lib/core/session.ml: Bytes Crypto Printf Servsim
