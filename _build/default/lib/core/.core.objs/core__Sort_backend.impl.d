lib/core/sort_backend.ml: Array Bytes Codec Crypto Int Osort Relation Servsim Session String Value
