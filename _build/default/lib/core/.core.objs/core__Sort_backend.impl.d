lib/core/sort_backend.ml: Array Bytes Codec Crypto Int List Osort Relation Servsim Session String Value
