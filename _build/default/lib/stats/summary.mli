(** Summary statistics for benchmark reporting. *)

val mean : float array -> float
val stddev : float array -> float
val median : float array -> float
val min : float array -> float
val max : float array -> float
val pp_series : Format.formatter -> float array -> unit
