let statistic a b =
  let n1 = Array.length a and n2 = Array.length b in
  if n1 = 0 || n2 = 0 then invalid_arg "Ks_test.statistic: empty sample";
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  let d = ref 0.0 in
  let i = ref 0 and j = ref 0 in
  while !i < n1 && !j < n2 do
    let x1 = a.(!i) and x2 = b.(!j) in
    if x1 <= x2 then incr i;
    if x2 <= x1 then incr j;
    let f1 = float_of_int !i /. float_of_int n1 in
    let f2 = float_of_int !j /. float_of_int n2 in
    let diff = Float.abs (f1 -. f2) in
    if diff > !d then d := diff
  done;
  !d

let kolmogorov_q lambda =
  if lambda <= 0.0 then 1.0
  else begin
    let sum = ref 0.0 in
    for j = 1 to 100 do
      let sign = if j mod 2 = 1 then 1.0 else -1.0 in
      sum := !sum +. (sign *. exp (-2.0 *. float_of_int (j * j) *. lambda *. lambda))
    done;
    Float.max 0.0 (Float.min 1.0 (2.0 *. !sum))
  end

let p_value a b =
  let d = statistic a b in
  let n1 = float_of_int (Array.length a) and n2 = float_of_int (Array.length b) in
  let ne = n1 *. n2 /. (n1 +. n2) in
  let sqrt_ne = sqrt ne in
  let lambda = (sqrt_ne +. 0.12 +. (0.11 /. sqrt_ne)) *. d in
  kolmogorov_q lambda

let test ?(alpha = 0.05) a b = p_value a b >= alpha
