let check a = if Array.length a = 0 then invalid_arg "Summary: empty series"

let mean a =
  check a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  check a;
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var

let median a =
  check a;
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let min a =
  check a;
  Array.fold_left Float.min a.(0) a

let max a =
  check a;
  Array.fold_left Float.max a.(0) a

let pp_series ppf a =
  Format.fprintf ppf "mean=%.4g sd=%.4g med=%.4g min=%.4g max=%.4g" (mean a) (stddev a)
    (median a) (min a) (max a)
