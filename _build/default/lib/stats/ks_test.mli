(** Two-sample Kolmogorov–Smirnov test, as used by the paper's Table II
    to argue that the runtime distributions of the oblivious methods are
    indistinguishable across datasets.

    The p-value uses the standard asymptotic Kolmogorov distribution with
    the Stephens small-sample correction
    λ = (√n_e + 0.12 + 0.11/√n_e)·D, Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2j²λ²},
    the same approximation as scipy/Numerical Recipes. *)

val statistic : float array -> float array -> float
(** The KS statistic D = sup_x |F1(x) − F2(x)|.
    @raise Invalid_argument on an empty sample. *)

val p_value : float array -> float array -> float
(** Two-sided asymptotic p-value for the two samples. *)

val test : ?alpha:float -> float array -> float array -> bool
(** [test a b] is [true] when the samples are {e consistent} with one
    distribution (p >= alpha, default 0.05) — the paper's criterion for
    obliviousness in Table II. *)
