lib/stats/ks_test.mli:
