lib/stats/ks_test.ml: Array Float
