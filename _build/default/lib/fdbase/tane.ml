open Relation

let oracle table =
  {
    Lattice.single = (fun col ->
      let p = Partition.of_column (Table.column table col) in
      (p, Partition.cardinality p));
    combine = (fun _x h1 h2 ->
      let p = Partition.product h1 h2 in
      (p, Partition.cardinality p));
    release = (fun _ -> ());
  }

let discover ?max_lhs table =
  Lattice.discover ~m:(Table.cols table) ~n:(Table.rows table) ?max_lhs (oracle table)

let fds ?max_lhs table = (discover ?max_lhs table).Lattice.fds
