(** Approximate functional dependencies.

    An FD X → A holds {e ε-approximately} under the split measure when

      e_split(X → A) = (|π_{X∪A}| − |π_X|) / n ≤ ε

    i.e. at most ε·n equivalence classes of X are split by adding A.
    [e_split] is computable from partition {e cardinalities} alone, so the
    secure attribute-level oracles support it with no new machinery and no
    leakage beyond the approximate-FD verdicts themselves.  (It is a lower
    bound of TANE's g3 error: removing one row repairs at most one
    split.)

    Discovery is a levelwise search like {!Lattice} but without the exact
    C+/key pruning rules (which are unsound for approximate dependencies);
    the lattice depth is capped by [max_lhs] instead (default 2). *)

open Relation

val split_error : Table.t -> lhs:Attrset.t -> rhs:int -> float
(** Plaintext reference implementation of e_split (tests, baselines). *)

type result = {
  fds : Fd.t list;  (** minimal ε-approximate FDs *)
  sets_checked : int;
}

val discover :
  m:int -> n:int -> epsilon:float -> ?max_lhs:int -> 'h Lattice.oracle -> result

val discover_plaintext : epsilon:float -> ?max_lhs:int -> Table.t -> result
