lib/fdbase/fastfds.mli: Attrset Fd Relation Table
