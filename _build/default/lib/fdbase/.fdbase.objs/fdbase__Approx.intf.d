lib/fdbase/approx.mli: Attrset Fd Lattice Relation Table
