lib/fdbase/lattice.ml: Array Attrset Fd Hashtbl Int List Option Relation
