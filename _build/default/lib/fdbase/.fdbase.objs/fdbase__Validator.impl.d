lib/fdbase/validator.ml: Attrset Fd Fun Hashtbl List Relation Table Value
