lib/fdbase/approx.ml: Attrset Fd Float Hashtbl Lattice List Partition Relation Table Tane
