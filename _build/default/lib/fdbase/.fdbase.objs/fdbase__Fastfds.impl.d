lib/fdbase/fastfds.ml: Attrset Fd Hashtbl List Relation Table Value
