lib/fdbase/tane.ml: Lattice Partition Relation Table
