lib/fdbase/lattice.mli: Attrset Fd Relation
