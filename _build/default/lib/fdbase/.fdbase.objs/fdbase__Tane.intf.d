lib/fdbase/tane.mli: Fd Lattice Partition Relation Table
