lib/fdbase/fd.ml: Attrset Format Int List Relation Schema
