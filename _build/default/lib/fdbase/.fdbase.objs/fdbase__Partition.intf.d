lib/fdbase/partition.mli: Attrset Relation Table Value
