lib/fdbase/partition.ml: Array Attrset Hashtbl List Option Relation Table
