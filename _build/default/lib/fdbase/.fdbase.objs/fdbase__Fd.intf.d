lib/fdbase/fd.mli: Attrset Format Relation Schema
