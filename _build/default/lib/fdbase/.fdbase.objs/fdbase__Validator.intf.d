lib/fdbase/validator.mli: Attrset Fd Relation Table
