(** The database-level task (§IV-A): the top-down levelwise lattice search
    of TANE (Huhtala et al., 1999) with its dependency and key pruning
    rules, parameterised by an {e attribute-level partition oracle}.

    The oracle abstracts how partitions are computed; the plaintext
    baseline ({!Tane}) plugs in stripped partitions, and the secure
    protocols plug in their oblivious ORAM- or sorting-based oracles.
    By Property 1 of the paper, [combine] is only ever called on two
    strict subsets X1, X2 of X with X1 ∪ X2 = X whose partitions were
    computed at the previous level.

    The search visits attribute sets in an order that is a deterministic
    function of (m, and the validity answers obtained so far) — i.e. of
    the leakage function L(DB) = (size, FDs) — which is what makes the
    database level leak nothing extra (§VI).  [plan] exposes the visited
    sequence so tests can verify this replay property. *)

open Relation

type 'h oracle = {
  single : int -> 'h * int;
      (** [single col] computes π for one column, returning a handle and
          |π|. *)
  combine : Attrset.t -> 'h -> 'h -> 'h * int;
      (** [combine x h1 h2] computes π_X from the partitions of its two
          generators (Property 1). *)
  release : 'h -> unit;
      (** Called when a handle can no longer be used by the search. *)
}

type result = {
  fds : Fd.t list;  (** minimal non-trivial FDs, canonical order *)
  sets_checked : int;  (** lattice nodes whose partition was computed *)
  plan : Attrset.t list;  (** the visited attribute sets, in order *)
}

val discover :
  m:int -> n:int -> ?max_lhs:int -> ?check:(int -> int -> bool) -> 'h oracle -> result
(** [discover ~m ~n oracle] runs the search over [m] attributes for a
    relation with [n] rows.  [max_lhs] optionally caps the size of
    left-hand sides explored (level cap).  [check c1 c2] decides the
    set-level test |π_lhs| = |π_X| (default [Int.equal]); the secure
    protocol routes it through {e Set_level} to model the
    ciphertext-comparison exchange. *)
