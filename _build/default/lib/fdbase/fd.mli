(** Functional dependencies.

    Discovery outputs {e minimal, non-trivial} FDs with a single-attribute
    right-hand side, the canonical form of the FD-discovery literature
    (TANE et al.): every general FD [A -> B] follows from these by
    Armstrong's axioms, so the set determines [FD(DB)] — the second
    component of the paper's leakage function. *)

open Relation

type t = { lhs : Attrset.t; rhs : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_named : Schema.t -> Format.formatter -> t -> unit

val sort_canonical : t list -> t list
(** Sorted, deduplicated. *)

val closure : m:int -> t list -> Attrset.t -> Attrset.t
(** [closure ~m fds x] is the attribute closure x+ under [fds]. *)

val implies : m:int -> t list -> lhs:Attrset.t -> rhs:Attrset.t -> bool
(** Does [lhs -> rhs] follow from [fds] (Armstrong derivation)? *)

val is_superkey : m:int -> t list -> Attrset.t -> bool
