open Relation

let difference_sets table =
  let n = Table.rows table and m = Table.cols table in
  let seen = Hashtbl.create 256 in
  for r1 = 0 to n - 1 do
    for r2 = r1 + 1 to n - 1 do
      let d = ref Attrset.empty in
      for c = 0 to m - 1 do
        if not (Value.equal (Table.cell table ~row:r1 ~col:c) (Table.cell table ~row:r2 ~col:c))
        then d := Attrset.add !d c
      done;
      if not (Attrset.is_empty !d) then Hashtbl.replace seen !d ()
    done
  done;
  Hashtbl.fold (fun d () acc -> d :: acc) seen []

let minimal_difference_sets sets =
  List.filter
    (fun d ->
      not
        (List.exists (fun d' -> (not (Attrset.equal d d')) && Attrset.subset d' d) sets))
    sets

(* All minimal covers of [sets] using attributes from [universe]: DFS in
   a fixed attribute order; at each step branch on the attributes that
   cover the first uncovered set.  Minimality is checked directly (every
   chosen attribute must be necessary). *)
let minimal_covers universe sets =
  let covers = ref [] in
  let is_cover chosen =
    List.for_all (fun d -> not (Attrset.is_empty (Attrset.inter d chosen))) sets
  in
  let rec dfs chosen remaining =
    match remaining with
    | [] ->
        (* chosen covers everything; record if minimal so far *)
        if
          not
            (List.exists (fun c -> Attrset.subset c chosen) !covers)
        then begin
          (* prune previously found supersets *)
          covers := chosen :: List.filter (fun c -> not (Attrset.subset chosen c)) !covers
        end
    | d :: rest ->
        if not (Attrset.is_empty (Attrset.inter d chosen)) then dfs chosen rest
        else
          Attrset.iter
            (fun a ->
              let chosen' = Attrset.add chosen a in
              (* prune: skip if a known cover is already inside *)
              if not (List.exists (fun c -> Attrset.subset c chosen') !covers) then
                dfs chosen' rest)
            (Attrset.inter d universe)
  in
  dfs Attrset.empty sets;
  (* Final minimality sweep: a DFS order can record a set before one of
     its subsets is found. *)
  let all = !covers in
  List.filter
    (fun c ->
      is_cover c
      && not (List.exists (fun c' -> (not (Attrset.equal c c')) && Attrset.subset c' c) all))
    all

let discover table =
  let m = Table.cols table in
  let diffs = difference_sets table in
  let fds = ref [] in
  for a = 0 to m - 1 do
    let d_a =
      List.filter_map
        (fun d -> if Attrset.mem d a then Some (Attrset.remove d a) else None)
        diffs
    in
    if d_a = [] then
      (* No pair ever differs on A: the column is constant, ∅ → A. *)
      fds := { Fd.lhs = Attrset.empty; rhs = a } :: !fds
    else if List.exists Attrset.is_empty d_a then
      (* Some pair differs only on A: no non-trivial FD determines A. *)
      ()
    else begin
      let universe = Attrset.remove (Attrset.full ~m) a in
      let d_a = minimal_difference_sets d_a in
      List.iter
        (fun lhs -> fds := { Fd.lhs; rhs = a } :: !fds)
        (minimal_covers universe d_a)
    end
  done;
  Fd.sort_canonical !fds
