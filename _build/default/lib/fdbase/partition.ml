open Relation

type t = {
  n : int;
  card : int;
  classes : int array array; (* stripped: only classes of size >= 2 *)
}

let n t = t.n
let cardinality t = t.card
let classes t = t.classes

let strip n groups =
  (* [groups]: list of row-index lists; singletons are dropped, the true
     cardinality is reconstructed from the stripped total. *)
  let big = List.filter (fun g -> List.length g >= 2) groups in
  let covered = List.fold_left (fun acc g -> acc + List.length g) 0 big in
  let card = n - covered + List.length big in
  {
    n;
    card;
    classes = Array.of_list (List.map (fun g -> Array.of_list (List.rev g)) big);
  }

let of_column col =
  let n = Array.length col in
  let tbl = Hashtbl.create (2 * n) in
  for r = 0 to n - 1 do
    let key = col.(r) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (r :: prev)
  done;
  strip n (Hashtbl.fold (fun _ g acc -> g :: acc) tbl [])

let of_table table set =
  let n = Table.rows table in
  let cols = Attrset.elements set in
  if cols = [] then
    (* π_∅: all rows equivalent. *)
    strip n [ List.init n (fun r -> n - 1 - r) ]
  else begin
    let tbl = Hashtbl.create (2 * n) in
    for r = 0 to n - 1 do
      let key = List.map (fun c -> Table.cell table ~row:r ~col:c) cols in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (r :: prev)
    done;
    strip n (Hashtbl.fold (fun _ g acc -> g :: acc) tbl [])
  end

(* TANE partition product: probe rows of π_X's classes against class ids
   of π_Y.  Linear in the stripped sizes. *)
let product a b =
  if a.n <> b.n then invalid_arg "Partition.product: row counts differ";
  let n = a.n in
  let class_of = Array.make n (-1) in
  Array.iteri (fun ci cls -> Array.iter (fun r -> class_of.(r) <- ci) cls) b.classes;
  let groups = ref [] in
  Array.iter
    (fun cls ->
      (* Split this π_X class by the π_Y class id of each row; rows in no
         stripped π_Y class (id -1) are singletons in the product. *)
      let sub = Hashtbl.create 16 in
      Array.iter
        (fun r ->
          let ci = class_of.(r) in
          if ci >= 0 then begin
            let prev = Option.value ~default:[] (Hashtbl.find_opt sub ci) in
            Hashtbl.replace sub ci (r :: prev)
          end)
        cls;
      Hashtbl.iter (fun _ g -> groups := g :: !groups) sub)
    a.classes;
  strip n !groups

let error t =
  Array.fold_left (fun acc cls -> acc + Array.length cls - 1) 0 t.classes

let labels t =
  let l = Array.make t.n (-1) in
  let next = ref 0 in
  Array.iter
    (fun cls ->
      let id = !next in
      incr next;
      Array.iter (fun r -> l.(r) <- id) cls)
    t.classes;
  for r = 0 to t.n - 1 do
    if l.(r) < 0 then begin
      l.(r) <- !next;
      incr next
    end
  done;
  l

let equal_refinement a b =
  if a.n <> b.n then false
  else begin
    let la = labels a and lb = labels b in
    (* Same refinement iff the label pairs are in bijection. *)
    let fwd = Hashtbl.create 64 and bwd = Hashtbl.create 64 in
    let ok = ref true in
    for r = 0 to a.n - 1 do
      (match Hashtbl.find_opt fwd la.(r) with
      | Some x when x <> lb.(r) -> ok := false
      | Some _ -> ()
      | None -> Hashtbl.replace fwd la.(r) lb.(r));
      match Hashtbl.find_opt bwd lb.(r) with
      | Some x when x <> la.(r) -> ok := false
      | Some _ -> ()
      | None -> Hashtbl.replace bwd lb.(r) la.(r)
    done;
    !ok
  end
