open Relation

let split_error table ~lhs ~rhs =
  let n = Table.rows table in
  if n = 0 then 0.0
  else
    let c_lhs = Partition.cardinality (Partition.of_table table lhs) in
    let c_all = Partition.cardinality (Partition.of_table table (Attrset.add lhs rhs)) in
    float_of_int (c_all - c_lhs) /. float_of_int n

type result = {
  fds : Fd.t list;
  sets_checked : int;
}

type 'h node = { attrs : Attrset.t; handle : 'h; card : int }

let discover ~m ~n ~epsilon ?(max_lhs = 2) oracle =
  if epsilon < 0.0 then invalid_arg "Approx.discover: epsilon must be >= 0";
  let threshold = int_of_float (Float.floor (epsilon *. float_of_int n +. 1e-9)) in
  let fds = ref [] in
  let sets_checked = ref 0 in
  let minimal lhs rhs =
    not (List.exists (fun fd -> fd.Fd.rhs = rhs && Attrset.subset fd.Fd.lhs lhs) !fds)
  in
  let cards : (Attrset.t, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace cards Attrset.empty 1;
  (* Level 1. *)
  let level =
    ref
      (List.init m (fun a ->
           let handle, card = oracle.Lattice.single a in
           incr sets_checked;
           { attrs = Attrset.singleton a; handle; card }))
  in
  let l = ref 1 in
  while !level <> [] && !l <= max_lhs + 1 do
    List.iter (fun node -> Hashtbl.replace cards node.attrs node.card) !level;
    (* Emit minimal ε-approximate FDs X\{A} → A. *)
    List.iter
      (fun node ->
        Attrset.iter
          (fun a ->
            let lhs = Attrset.remove node.attrs a in
            match Hashtbl.find_opt cards lhs with
            | Some lhs_card
              when node.card - lhs_card <= threshold && minimal lhs a ->
                fds := { Fd.lhs; rhs = a } :: !fds
            | Some _ | None -> ())
          node.attrs)
      !level;
    if !l >= max_lhs + 1 then begin
      List.iter (fun node -> oracle.Lattice.release node.handle) !level;
      level := []
    end
    else begin
      (* Next level: all (l+1)-subsets whose immediate subsets are all at
         this level (apriori-gen without validity pruning; sets whose
         every RHS is already covered need not be expanded). *)
      let here : (Attrset.t, 'h node) Hashtbl.t = Hashtbl.create 64 in
      List.iter (fun node -> Hashtbl.replace here node.attrs node) !level;
      let next = ref [] in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun node ->
          for a = 0 to m - 1 do
            if not (Attrset.mem node.attrs a) then begin
              let y = Attrset.add node.attrs a in
              if
                (not (Hashtbl.mem seen y))
                && Attrset.for_all (fun b -> Hashtbl.mem here (Attrset.remove y b)) y
              then begin
                Hashtbl.replace seen y ();
                next := y :: !next
              end
            end
          done)
        !level;
      let next_nodes =
        List.map
          (fun y ->
            let x1, x2 = Attrset.choose_two_generators y in
            let h1 = Hashtbl.find here x1 and h2 = Hashtbl.find here x2 in
            let handle, card = oracle.Lattice.combine y h1.handle h2.handle in
            incr sets_checked;
            { attrs = y; handle; card })
          (List.sort_uniq Attrset.compare !next)
      in
      List.iter (fun node -> oracle.Lattice.release node.handle) !level;
      level := next_nodes;
      incr l
    end
  done;
  { fds = Fd.sort_canonical !fds; sets_checked = !sets_checked }

let discover_plaintext ~epsilon ?max_lhs table =
  discover ~m:(Table.cols table) ~n:(Table.rows table) ~epsilon ?max_lhs (Tane.oracle table)
