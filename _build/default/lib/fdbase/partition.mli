(** Stripped partitions (π_X) over a plaintext relation — the classical
    partition representation of TANE (Huhtala et al., 1999) used by the
    paper's Theorem 1: an FD A → B holds iff |π_A| = |π_{A∪B}|.

    A partition is stored "stripped": only equivalence classes with at
    least two rows are kept; [cardinality] still reports the true |π_X|
    including singletons. *)

open Relation

type t

val n : t -> int
(** Number of rows of the underlying relation. *)

val cardinality : t -> int
(** |π_X| — the number of equivalence classes, singletons included. *)

val classes : t -> int array array
(** The stripped classes (row indices, each class length >= 2). *)

val of_column : Value.t array -> t
(** Partition of the relation under a single attribute. *)

val of_table : Table.t -> Attrset.t -> t
(** Partition under an arbitrary attribute set, computed directly (used as
    a test oracle; the lattice uses {!product} instead). *)

val product : t -> t -> t
(** π_{X∪Y} from π_X and π_Y — the TANE partition product, linear in the
    stripped sizes. *)

val error : t -> int
(** TANE's e(X) = (rows in stripped classes) - (number of stripped
    classes); e(X) = 0 iff X is a (super)key. *)

val labels : t -> int array
(** A labelling [l] with [l.(r1) = l.(r2)] iff rows r1, r2 are equivalent
    — the plaintext analogue of the paper's label_X. *)

val equal_refinement : t -> t -> bool
(** Do the two partitions classify rows identically? *)
