(** Direct FD validation — the independent test oracle.

    Checks an FD by grouping rows on the LHS values in a hash table; used
    to cross-check discovery output, and to brute-force all minimal FDs on
    small tables. *)

open Relation

val holds : Table.t -> lhs:Attrset.t -> rhs:Attrset.t -> bool
(** Does [lhs -> rhs] hold in the table? (Direct definition check.) *)

val holds_fd : Table.t -> Fd.t -> bool

val brute_force_minimal : Table.t -> Fd.t list
(** All minimal non-trivial FDs with single-attribute RHS, by enumerating
    every LHS subset.  Exponential in the column count — tests only. *)
