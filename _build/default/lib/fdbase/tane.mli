(** Plaintext TANE: the non-secure FD-discovery baseline, i.e. the
    lattice search of {!Lattice} with stripped-partition oracles.  This is
    the algorithm whose output the secure protocols must reproduce
    exactly (they only change {e how} partitions are computed). *)

open Relation

val oracle : Table.t -> Partition.t Lattice.oracle
(** The stripped-partition attribute-level oracle over a plaintext table. *)

val discover : ?max_lhs:int -> Table.t -> Lattice.result
(** Discover all minimal non-trivial FDs of the table. *)

val fds : ?max_lhs:int -> Table.t -> Fd.t list
