(** FastFDs (Wyss, Giannella, Robertson, DaWaK 2001): FD discovery via
    difference sets and minimal covers — the other classical algorithm
    family the paper's related work cites ([59]) and notes is {e not}
    known to be implementable obliviously.

    We implement it as an independent plaintext oracle: it must produce
    exactly the same minimal FDs as the partition-based TANE lattice, so
    the two validate each other in the test suite. *)

open Relation

val difference_sets : Table.t -> Attrset.t list
(** The distinct non-empty difference sets D(r1, r2) = attributes where
    the two records disagree, over all record pairs.  O(n² m) — baseline
    and test use. *)

val minimal_difference_sets : Attrset.t list -> Attrset.t list
(** Keep only the subset-minimal sets. *)

val discover : Table.t -> Fd.t list
(** All minimal non-trivial FDs (single-attribute RHS), canonical order. *)
