open Relation

type t = { lhs : Attrset.t; rhs : int }

let compare a b =
  match Attrset.compare a.lhs b.lhs with
  | 0 -> Int.compare a.rhs b.rhs
  | c -> c

let equal a b = compare a b = 0

let pp ppf { lhs; rhs } = Format.fprintf ppf "%a -> %d" Attrset.pp lhs rhs

let pp_named schema ppf { lhs; rhs } =
  Format.fprintf ppf "%a -> %s" (Schema.pp_attrset schema) lhs (Schema.name schema rhs)

let sort_canonical fds = List.sort_uniq compare fds

let closure ~m fds x =
  ignore m;
  let cur = ref x in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
        if Attrset.subset lhs !cur && not (Attrset.mem !cur rhs) then begin
          cur := Attrset.add !cur rhs;
          changed := true
        end)
      fds
  done;
  !cur

let implies ~m fds ~lhs ~rhs = Attrset.subset rhs (closure ~m fds lhs)

let is_superkey ~m fds x = Attrset.equal (closure ~m fds x) (Attrset.full ~m)
