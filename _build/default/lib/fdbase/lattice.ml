open Relation

type 'h oracle = {
  single : int -> 'h * int;
  combine : Attrset.t -> 'h -> 'h -> 'h * int;
  release : 'h -> unit;
}

type result = {
  fds : Fd.t list;
  sets_checked : int;
  plan : Attrset.t list;
}

type 'h node = {
  attrs : Attrset.t;
  handle : 'h;
  card : int;
  mutable cplus : Attrset.t;
  mutable alive : bool;
}

let discover ~m ~n ?max_lhs ?(check = Int.equal) oracle =
  let r_full = Attrset.full ~m in
  let fds = ref [] in
  let plan = ref [] in
  let sets_checked = ref 0 in
  let emit lhs rhs = fds := { Fd.lhs; rhs } :: !fds in

  (* Cardinalities of every set whose partition has been computed (π_∅ has
     cardinality 1). *)
  let cards_hist : (Attrset.t, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace cards_hist Attrset.empty 1;
  (* C+ of every set seen so far (C+(∅) = R).  TANE's key-pruning rule
     needs C+ of sets that were pruned away before being generated; those
     are computed on demand by the defining recurrence
     C+(Y) = ∩_{B∈Y} C+(Y\{B}), memoised here. *)
  let cplus_hist : (Attrset.t, Attrset.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace cplus_hist Attrset.empty r_full;
  let rec cplus_of y =
    match Hashtbl.find_opt cplus_hist y with
    | Some c -> c
    | None ->
        let c =
          Attrset.fold (fun b acc -> Attrset.inter acc (cplus_of (Attrset.remove y b))) y r_full
        in
        Hashtbl.replace cplus_hist y c;
        c
  in

  (* Level 1. *)
  let level =
    ref
      (List.init m (fun a ->
           let handle, card = oracle.single a in
           incr sets_checked;
           plan := Attrset.singleton a :: !plan;
           { attrs = Attrset.singleton a; handle; card; cplus = r_full; alive = true }))
  in
  let l = ref 1 in
  let continue_ = ref true in
  while !continue_ && !level <> [] do
    let nodes = !level in
    (* compute_dependencies: C+(X) = ∩_{A∈X} C+(X \ {A}), then test
       X\{A} → A for A ∈ X ∩ C+(X). *)
    List.iter
      (fun node ->
        node.cplus <-
          Attrset.fold
            (fun a acc -> Attrset.inter acc (cplus_of (Attrset.remove node.attrs a)))
            node.attrs r_full)
      nodes;
    List.iter
      (fun node ->
        let candidates = Attrset.inter node.attrs node.cplus in
        Attrset.iter
          (fun a ->
            let lhs = Attrset.remove node.attrs a in
            let lhs_card =
              match Hashtbl.find_opt cards_hist lhs with
              | Some c -> c
              | None -> -1 (* subset pruned away: cannot be valid-minimal *)
            in
            if lhs_card >= 0 && check lhs_card node.card then begin
              emit lhs a;
              node.cplus <- Attrset.remove node.cplus a;
              node.cplus <- Attrset.inter node.cplus node.attrs
              (* remove all B ∈ R \ X, i.e. keep only attrs of X *)
            end)
          candidates;
        Hashtbl.replace cplus_hist node.attrs node.cplus)
      nodes;
    (* prune *)
    List.iter
      (fun node ->
        if Attrset.is_empty node.cplus then node.alive <- false
        else if node.card = n then begin
          (* X is a superkey: key pruning may output FDs X → A. *)
          let extra = Attrset.diff node.cplus node.attrs in
          Attrset.iter
            (fun a ->
              let all_contain =
                Attrset.for_all
                  (fun b ->
                    let y = Attrset.remove (Attrset.add node.attrs a) b in
                    Attrset.mem (cplus_of y) a)
                  node.attrs
              in
              if all_contain then emit node.attrs a)
            extra;
          node.alive <- false
        end)
      nodes;
    let alive = List.filter (fun nd -> nd.alive) nodes in
    let reached_cap = match max_lhs with Some cap -> !l >= cap | None -> false in
    if reached_cap then begin
      List.iter (fun nd -> oracle.release nd.handle) nodes;
      continue_ := false
    end
    else begin
      (* generate_next_level: prefix-block join + all-subsets check. *)
      let alive_set : (Attrset.t, 'h node) Hashtbl.t = Hashtbl.create 64 in
      List.iter (fun nd -> Hashtbl.replace alive_set nd.attrs nd) alive;
      let sorted =
        List.sort (fun a b -> compare (Attrset.elements a.attrs) (Attrset.elements b.attrs)) alive
      in
      let prefix nd =
        let els = Attrset.elements nd.attrs in
        List.filteri (fun i _ -> i < !l - 1) els
      in
      (* Group alive nodes by their (l-1)-element prefix. *)
      let blocks = Hashtbl.create 64 in
      List.iter
        (fun nd ->
          let p = prefix nd in
          let prev = Option.value ~default:[] (Hashtbl.find_opt blocks p) in
          Hashtbl.replace blocks p (nd :: prev))
        sorted;
      let next = ref [] in
      Hashtbl.iter
        (fun _ block ->
          let arr = Array.of_list (List.rev block) in
          let k = Array.length arr in
          for i = 0 to k - 1 do
            for j = i + 1 to k - 1 do
              let y = Attrset.union arr.(i).attrs arr.(j).attrs in
              if Attrset.cardinal y = !l + 1 then begin
                let all_subsets_alive =
                  Attrset.for_all
                    (fun a -> Hashtbl.mem alive_set (Attrset.remove y a))
                    y
                in
                if all_subsets_alive then next := y :: !next
              end
            done
          done)
        blocks;
      let next = List.sort_uniq Attrset.compare !next in
      (* Compute partitions for the next level from two generators. *)
      let next_nodes =
        List.map
          (fun y ->
            let x1, x2 = Attrset.choose_two_generators y in
            let n1 = Hashtbl.find alive_set x1 and n2 = Hashtbl.find alive_set x2 in
            let handle, card = oracle.combine y n1.handle n2.handle in
            incr sets_checked;
            plan := y :: !plan;
            { attrs = y; handle; card; cplus = r_full; alive = true })
          next
      in
      (* The previous level's handles are no longer needed. *)
      List.iter (fun nd -> oracle.release nd.handle) nodes;
      List.iter (fun nd -> Hashtbl.replace cards_hist nd.attrs nd.card) nodes;
      level := next_nodes;
      incr l
    end
  done;
  { fds = Fd.sort_canonical !fds; sets_checked = !sets_checked; plan = List.rev !plan }
