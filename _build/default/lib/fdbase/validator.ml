open Relation

let holds table ~lhs ~rhs =
  let n = Table.rows table in
  let tbl = Hashtbl.create (2 * n) in
  let ok = ref true in
  for r = 0 to n - 1 do
    let key = Table.project_value table ~row:r lhs in
    let v = Table.project_value table ~row:r rhs in
    match Hashtbl.find_opt tbl key with
    | Some v' -> if not (List.for_all2 Value.equal v v') then ok := false
    | None -> Hashtbl.replace tbl key v
  done;
  !ok

let holds_fd table { Fd.lhs; rhs } = holds table ~lhs ~rhs:(Attrset.singleton rhs)

let brute_force_minimal table =
  let m = Table.cols table in
  let fds = ref [] in
  for rhs = 0 to m - 1 do
    (* All subsets of R \ {rhs}, smallest first; keep minimal valid ones. *)
    let others = List.filter (fun a -> a <> rhs) (List.init m Fun.id) in
    let valid : Attrset.t list ref = ref [] in
    let subsets = ref [ Attrset.empty ] in
    List.iter
      (fun a -> subsets := !subsets @ List.map (fun s -> Attrset.add s a) !subsets)
      others;
    let sorted =
      List.sort (fun a b -> compare (Attrset.cardinal a) (Attrset.cardinal b)) !subsets
    in
    List.iter
      (fun lhs ->
        let has_smaller = List.exists (fun v -> Attrset.subset v lhs) !valid in
        if (not has_smaller) && holds table ~lhs ~rhs:(Attrset.singleton rhs) then begin
          valid := lhs :: !valid;
          fds := { Fd.lhs; rhs } :: !fds
        end)
      sorted
  done;
  Fd.sort_canonical !fds
