open Relation

let default_rows = 500_000

let schema =
  Schema.make
    [|
      "year"; "month"; "day"; "day_of_week"; "carrier"; "flight_num"; "tail_num";
      "origin"; "origin_city"; "origin_state"; "dest"; "dest_city"; "dest_state";
      "crs_dep_time"; "dep_time"; "crs_arr_time"; "arr_time"; "distance";
      "taxi_out"; "taxi_in";
    |]

let n_airports = 80
let n_carriers = 12
let n_routes = 900

let generate ?(seed = 0xF119) ~rows () =
  let rng = Crypto.Rng.create seed in
  (* Airport master data: code determines city and state. *)
  let airports =
    Array.init n_airports (fun i ->
        ( Printf.sprintf "AP%02d" i,
          Printf.sprintf "City%02d" i,
          Printf.sprintf "ST%d" (i mod 30) ))
  in
  (* Route master data: (carrier, flight_num) determines the route and its
     distance — planted composite FDs. *)
  let routes =
    Array.init n_routes (fun i ->
        let carrier = Printf.sprintf "CA%d" (i mod n_carriers) in
        let flight_num = 100 + (i / n_carriers) in
        let o = Crypto.Rng.int rng n_airports in
        let d = (o + 1 + Crypto.Rng.int rng (n_airports - 1)) mod n_airports in
        let distance = 100 + ((o * 131 + d * 57) mod 2800) in
        (carrier, flight_num, o, d, distance))
  in
  let row _ =
    let carrier, flight_num, o, d, distance =
      (* Zipf-ish: low route ids fly much more often. *)
      let r = Crypto.Rng.int rng n_routes in
      let r = min r (Crypto.Rng.int rng n_routes) in
      routes.(r)
    in
    let ocode, ocity, ostate = airports.(o) in
    let dcode, dcity, dstate = airports.(d) in
    let dep = (5 * 60) + Crypto.Rng.int rng (18 * 60) in
    let duration = 30 + (distance / 8) + Crypto.Rng.int rng 40 in
    let arr = (dep + duration) mod (24 * 60) in
    [|
      Value.Int 2015;
      Value.Int (1 + Crypto.Rng.int rng 12);
      Value.Int (1 + Crypto.Rng.int rng 28);
      Value.Int (1 + Crypto.Rng.int rng 7);
      Value.Str carrier;
      Value.Int flight_num;
      Value.Str (Printf.sprintf "N%05d" (Crypto.Rng.int rng 4000));
      Value.Str ocode;
      Value.Str ocity;
      Value.Str ostate;
      Value.Str dcode;
      Value.Str dcity;
      Value.Str dstate;
      Value.Int ((dep / 5 * 5) mod (24 * 60));
      Value.Int dep;
      Value.Int ((arr / 5 * 5) mod (24 * 60));
      Value.Int arr;
      Value.Int distance;
      Value.Int (5 + Crypto.Rng.int rng 30);
      Value.Int (2 + Crypto.Rng.int rng 15);
    |]
  in
  Table.make schema (Array.init rows row)
