open Relation

let s v = Value.Str v

let fig1 () =
  Table.make
    (Schema.make [| "Name"; "City"; "Birth" |])
    [|
      [| s "Alice"; s "Boston"; s "Jan" |];
      [| s "Bob"; s "Boston"; s "May" |];
      [| s "Bob"; s "Boston"; s "Jan" |];
      [| s "Carol"; s "New York"; s "Sep" |];
    |]

let employee () =
  Table.make
    (Schema.make [| "Name"; "Position"; "Department"; "Office" |])
    [|
      [| s "Ann"; s "Engineer"; s "R&D"; s "B1" |];
      [| s "Ben"; s "Engineer"; s "R&D"; s "B2" |];
      [| s "Cal"; s "Analyst"; s "Finance"; s "B1" |];
      [| s "Dee"; s "Analyst"; s "Finance"; s "B3" |];
      [| s "Eve"; s "Manager"; s "R&D"; s "B1" |];
      [| s "Fay"; s "Recruiter"; s "HR"; s "B2" |];
      [| s "Gil"; s "Engineer"; s "R&D"; s "B3" |];
      [| s "Hal"; s "Manager"; s "R&D"; s "B2" |];
    |]
