open Relation

let generate_with_domain ?(seed = 0xC0FFEE) ~rows ~cols ~domain () =
  let rng = Crypto.Rng.create seed in
  let schema = Schema.make (Array.init cols (fun i -> Printf.sprintf "R%d" i)) in
  Table.make schema
    (Array.init rows (fun _ ->
         Array.init cols (fun _ -> Value.Int (1 + Crypto.Rng.int rng domain))))

let generate ?seed ~rows ~cols () =
  generate_with_domain ?seed ~rows ~cols ~domain:(1 lsl 20) ()
