lib/datasets/rnd.mli: Relation Table
