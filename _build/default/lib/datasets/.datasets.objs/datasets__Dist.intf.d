lib/datasets/dist.mli: Crypto Relation Value
