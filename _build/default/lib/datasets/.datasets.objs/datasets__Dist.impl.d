lib/datasets/dist.ml: Array Crypto Float Printf Relation Stdlib Value
