lib/datasets/adult_like.ml: Array Crypto Dist Relation Schema Table Value
