lib/datasets/letter_like.ml: Array Crypto Dist Relation Schema Table Value
