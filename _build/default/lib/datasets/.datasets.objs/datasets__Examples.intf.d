lib/datasets/examples.mli: Relation Table
