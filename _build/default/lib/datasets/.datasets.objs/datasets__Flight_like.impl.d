lib/datasets/flight_like.ml: Array Crypto Printf Relation Schema Table Value
