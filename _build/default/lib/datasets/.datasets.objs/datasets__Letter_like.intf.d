lib/datasets/letter_like.mli: Relation Table
