lib/datasets/rnd.ml: Array Crypto Printf Relation Schema Table Value
