lib/datasets/flight_like.mli: Relation Table
