lib/datasets/examples.ml: Relation Schema Table Value
