lib/datasets/adult_like.mli: Relation Table
