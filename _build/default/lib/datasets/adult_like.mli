(** Synthetic stand-in for the Adult census dataset (Table I of the paper:
    14 columns, 48,842 rows).

    We cannot ship the real file, so we generate a table with the same
    column count, a similar categorical/numeric mix with skewed
    distributions, and the real dataset's best-known FD planted:
    [education -> education_num].  See DESIGN.md §5 for why this
    substitution preserves the paper's experiments (Table II only needs
    equal-size datasets with different distributions). *)

open Relation

val default_rows : int
(** 48,842 — the real dataset's row count. *)

val generate : ?seed:int -> rows:int -> unit -> Table.t
