open Relation

let categorical rng weighted =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 weighted in
  let pick = Crypto.Rng.int rng total in
  let rec go i acc =
    let v, w = weighted.(i) in
    if pick < acc + w then v else go (i + 1) (acc + w)
  in
  go 0 0

let zipf_strings ~prefix k =
  Array.init k (fun i -> (Value.Str (Printf.sprintf "%s%d" prefix i), k / (i + 1) * 10 + 1))

let gaussian_int rng ~mean ~stddev ~min:lo ~max:hi =
  let u1 = (float_of_int (Crypto.Rng.int rng 1_000_000) +. 1.0) /. 1_000_001.0 in
  let u2 = float_of_int (Crypto.Rng.int rng 1_000_000) /. 1_000_000.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  let v = int_of_float (Float.round (mean +. (stddev *. z))) in
  Stdlib.min hi (Stdlib.max lo v)
