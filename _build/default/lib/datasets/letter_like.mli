(** Synthetic stand-in for the Letter Recognition dataset (Table I:
    16 columns, 20,000 rows): 16 integer features in [0, 15] with
    letter-conditioned near-normal distributions, mirroring the original's
    structure (feature moments vary by underlying letter). *)

open Relation

val default_rows : int
(** 20,000 — the real dataset's row count. *)

val generate : ?seed:int -> rows:int -> unit -> Table.t
