(** The paper's synthetic dataset RND (§VII-A): arbitrary rows and
    columns, each cell drawn uniformly from [1, 2^20]. *)

open Relation

val generate : ?seed:int -> rows:int -> cols:int -> unit -> Table.t

val generate_with_domain : ?seed:int -> rows:int -> cols:int -> domain:int -> unit -> Table.t
(** Same, with a custom per-cell domain size (cells uniform in
    [1, domain]); smaller domains create equivalence classes, exercising
    the partition logic harder. *)
