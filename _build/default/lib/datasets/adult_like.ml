open Relation

let default_rows = 48_842

let schema =
  Schema.make
    [|
      "age"; "workclass"; "fnlwgt"; "education"; "education_num"; "marital_status";
      "occupation"; "relationship"; "race"; "sex"; "capital_gain"; "capital_loss";
      "hours_per_week"; "native_country";
    |]

let educations =
  [| "Bachelors"; "HSgrad"; "11th"; "Masters"; "9th"; "SomeCollege"; "AssocAcdm";
     "AssocVoc"; "7th8th"; "Doctorate"; "ProfSchool"; "5th6th"; "10th"; "1st4th";
     "Preschool"; "12th" |]

let generate ?(seed = 0xAD2317) ~rows () =
  let rng = Crypto.Rng.create seed in
  let workclass = Dist.zipf_strings ~prefix:"work" 8 in
  let marital = Dist.zipf_strings ~prefix:"marital" 7 in
  let occupation = Dist.zipf_strings ~prefix:"occ" 14 in
  let relationship = Dist.zipf_strings ~prefix:"rel" 6 in
  let race = Dist.zipf_strings ~prefix:"race" 5 in
  let country = Dist.zipf_strings ~prefix:"country" 41 in
  let row _ =
    let education_idx =
      (* Skewed choice over the 16 education levels. *)
      let w = Array.init 16 (fun i -> (Value.Int i, (16 - i) * 3 + 1)) in
      match Dist.categorical rng w with Value.Int i -> i | _ -> 0
    in
    [|
      Value.Int (Dist.gaussian_int rng ~mean:38.6 ~stddev:13.6 ~min:17 ~max:90);
      Dist.categorical rng workclass;
      Value.Int (10_000 + Crypto.Rng.int rng 1_400_000);
      Value.Str educations.(education_idx);
      (* Planted FD: education -> education_num, as in the real data. *)
      Value.Int (education_idx + 1);
      Dist.categorical rng marital;
      Dist.categorical rng occupation;
      Dist.categorical rng relationship;
      Dist.categorical rng race;
      Value.Str (if Crypto.Rng.int rng 3 = 0 then "Female" else "Male");
      Value.Int (if Crypto.Rng.int rng 10 = 0 then Crypto.Rng.int rng 99_999 else 0);
      Value.Int (if Crypto.Rng.int rng 20 = 0 then Crypto.Rng.int rng 4_356 else 0);
      Value.Int (Dist.gaussian_int rng ~mean:40.4 ~stddev:12.3 ~min:1 ~max:99);
      Dist.categorical rng country;
    |]
  in
  Table.make schema (Array.init rows row)
