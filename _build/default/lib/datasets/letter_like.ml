open Relation

let default_rows = 20_000

let schema =
  Schema.make
    (Array.init 16 (fun i ->
         [| "xbox"; "ybox"; "width"; "height"; "onpix"; "xbar"; "ybar"; "x2bar";
            "y2bar"; "xybar"; "x2ybar"; "xy2bar"; "xedge"; "xedgey"; "yedge"; "yedgex" |].(i)))

let generate ?(seed = 0x1E77E4) ~rows () =
  let rng = Crypto.Rng.create seed in
  let row _ =
    (* Condition the 16 features on a hidden letter class, as in the real
       data: each class shifts the feature means. *)
    let letter = Crypto.Rng.int rng 26 in
    Array.init 16 (fun f ->
        let mean = 4.0 +. (float_of_int ((letter * (f + 3)) mod 11) /. 2.0) in
        Value.Int (Dist.gaussian_int rng ~mean ~stddev:2.2 ~min:0 ~max:15))
  in
  Table.make schema (Array.init rows row)
