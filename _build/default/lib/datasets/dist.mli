(** Small sampling helpers shared by the dataset generators. *)

open Relation

val categorical : Crypto.Rng.t -> (Value.t * int) array -> Value.t
(** Weighted categorical draw. *)

val zipf_strings : prefix:string -> int -> (Value.t * int) array
(** [zipf_strings ~prefix k] — k categories ["<prefix>0" .. ] with
    Zipf-like weights (w_i ∝ k/(i+1)), a crude model of the skew of
    real-world categorical attributes. *)

val gaussian_int : Crypto.Rng.t -> mean:float -> stddev:float -> min:int -> max:int -> int
(** Clamped rounded normal draw (Box–Muller). *)
