(** Tiny literal tables from the paper, used in tests and examples. *)

open Relation

val fig1 : unit -> Table.t
(** The paper's Fig. 1: Name/City/Birth with Name → City holding and
    Name → Birth failing. *)

val employee : unit -> Table.t
(** The paper's §I example: an employee table where
    Position → Department holds (the query-optimization motivation). *)
