(** Synthetic stand-in for the Flight route dataset (Table I: 20 columns,
    500,000 rows): flight-leg records with the natural route FDs planted —
    airport code determines its city and state, (carrier, flight number)
    determines the route, distance is a function of the route. *)

open Relation

val default_rows : int
(** 500,000 — the real dataset's row count. *)

val generate : ?seed:int -> rows:int -> unit -> Table.t
