lib/oram/omap.mli: Crypto Servsim
