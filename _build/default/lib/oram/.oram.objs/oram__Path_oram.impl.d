lib/oram/path_oram.ml: Array Bytes Crypto Fun Hashtbl List Printf Servsim String
