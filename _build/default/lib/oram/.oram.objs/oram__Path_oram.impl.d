lib/oram/path_oram.ml: Array Bytes Crypto Hashtbl List Printf Servsim String
