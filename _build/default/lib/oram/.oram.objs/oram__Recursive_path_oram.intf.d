lib/oram/recursive_path_oram.mli: Crypto Servsim
