lib/oram/omap.ml: Bytes Hashtbl Int64 List Path_oram Printf Recursive_path_oram Relation String
