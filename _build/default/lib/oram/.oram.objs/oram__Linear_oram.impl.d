lib/oram/linear_oram.ml: Array Bytes Crypto Fun List Servsim String
