lib/oram/linear_oram.ml: Array Bytes Crypto Servsim String
