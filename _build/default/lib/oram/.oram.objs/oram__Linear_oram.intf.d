lib/oram/linear_oram.mli: Crypto Servsim
