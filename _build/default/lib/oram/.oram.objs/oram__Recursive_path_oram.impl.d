lib/oram/recursive_path_oram.ml: Array Bytes Crypto Fun Hashtbl Int64 List Option Printf Relation Servsim String
