lib/oram/oram_intf.ml: Crypto Linear_oram Path_oram Servsim
