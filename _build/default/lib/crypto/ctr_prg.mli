(** AES-128-CTR pseudo-random generator.

    A cryptographically defensible PRG for the simulation: the keystream of
    AES-128 in counter mode under a secret key.  Provides the same sampling
    surface as {!Rng} so obliviousness-critical randomness (ORAM leaves,
    encryption IVs) can be driven by it. *)

type t

val create : string -> t
(** [create seed_key] builds a generator keyed by the 16-byte [seed_key].
    @raise Invalid_argument if the key is not 16 bytes. *)

val next64 : t -> int64
val int : t -> int -> int
val fill_bytes : t -> Bytes.t -> unit
val bytes : t -> int -> Bytes.t
