let hex_digit n = "0123456789abcdef".[n]

let encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter
    (fun c ->
      let v = Char.code c in
      Buffer.add_char b (hex_digit (v lsr 4));
      Buffer.add_char b (hex_digit (v land 0xf)))
    s;
  Buffer.contents b

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))
