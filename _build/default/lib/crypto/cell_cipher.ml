type t = { key : Aes128.key; iv_rng : Bytes.t -> unit }

let create ?iv_rng raw_key =
  let key = Aes128.expand raw_key in
  let iv_rng =
    match iv_rng with
    | Some f -> f
    | None ->
        (* Default: deterministic-per-instance splitmix stream seeded from
           the key bytes, good enough for the simulation. *)
        let seed = String.fold_left (fun acc c -> (acc * 257) + Char.code c) 0 raw_key in
        let rng = Rng.create seed in
        fun b -> Rng.fill_bytes rng b
  in
  { key; iv_rng }

let encrypt t plaintext =
  let iv = Bytes.create 16 in
  t.iv_rng iv;
  let iv = Bytes.to_string iv in
  iv ^ Cbc.encrypt t.key ~iv plaintext

let decrypt t ciphertext =
  if String.length ciphertext < 32 then invalid_arg "Cell_cipher.decrypt: too short";
  let iv = String.sub ciphertext 0 16 in
  let body = String.sub ciphertext 16 (String.length ciphertext - 16) in
  Cbc.decrypt t.key ~iv body

let ciphertext_len ~plaintext_len = 16 + (plaintext_len / 16 * 16) + 16
