(** Seeded pseudo-random number generator (splitmix64).

    Used for everything that needs {e reproducible} randomness in the
    simulation: dataset generation, workload sampling, and — through the
    common interface shared with {!Ctr_prg} — ORAM leaf selection and
    encryption IVs.  Splitmix64 is not cryptographically secure; protocol
    components that model cryptographic randomness accept any
    [unit -> int64] source so the AES-CTR generator can be plugged in. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator (e.g. one per domain). *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] pseudo-random bytes. *)

val fill_bytes : t -> Bytes.t -> unit

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
