type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62-bit draw (fits OCaml's native int), rejection-sampled to avoid
     modulo bias. *)
  let max62 = 0x3FFFFFFFFFFFFFFF in
  let limit = max62 / bound * bound in
  let rec go () =
    let v = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL) in
    if v >= limit then go () else v mod bound
  in
  go ()

let bool t = Int64.logand (next64 t) 1L = 1L

let fill_bytes t b =
  let n = Bytes.length b in
  let i = ref 0 in
  while !i < n do
    let v = ref (next64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xffL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done

let bytes t n =
  let b = Bytes.create n in
  fill_bytes t b;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
