let pad plaintext =
  let n = String.length plaintext in
  let k = 16 - (n mod 16) in
  let out = Bytes.create (n + k) in
  Bytes.blit_string plaintext 0 out 0 n;
  Bytes.fill out n k (Char.chr k);
  out

let unpad buf =
  let n = Bytes.length buf in
  if n = 0 then invalid_arg "Cbc.decrypt: empty input";
  let k = Char.code (Bytes.get buf (n - 1)) in
  if k = 0 || k > 16 || k > n then invalid_arg "Cbc.decrypt: bad padding";
  for i = n - k to n - 1 do
    if Char.code (Bytes.get buf i) <> k then invalid_arg "Cbc.decrypt: bad padding"
  done;
  Bytes.sub_string buf 0 (n - k)

let xor_into dst off block =
  for i = 0 to 15 do
    Bytes.set dst (off + i)
      (Char.chr (Char.code (Bytes.get dst (off + i)) lxor Char.code (Bytes.get block i)))
  done

let encrypt key ~iv plaintext =
  if String.length iv <> 16 then invalid_arg "Cbc.encrypt: iv must be 16 bytes";
  let buf = pad plaintext in
  let prev = Bytes.of_string iv in
  let n = Bytes.length buf in
  let off = ref 0 in
  while !off < n do
    xor_into buf !off prev;
    Aes128.encrypt_block key ~src:buf ~src_off:!off ~dst:buf ~dst_off:!off;
    Bytes.blit buf !off prev 0 16;
    off := !off + 16
  done;
  Bytes.to_string buf

let decrypt key ~iv ciphertext =
  let n = String.length ciphertext in
  if n = 0 || n mod 16 <> 0 then invalid_arg "Cbc.decrypt: length must be a positive multiple of 16";
  if String.length iv <> 16 then invalid_arg "Cbc.decrypt: iv must be 16 bytes";
  let src = Bytes.of_string ciphertext in
  let out = Bytes.create n in
  let prev = Bytes.of_string iv in
  let off = ref 0 in
  while !off < n do
    Aes128.decrypt_block key ~src ~src_off:!off ~dst:out ~dst_off:!off;
    xor_into out !off prev;
    Bytes.blit src !off prev 0 16;
    off := !off + 16
  done;
  unpad out
