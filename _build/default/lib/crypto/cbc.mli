(** AES-128-CBC with PKCS#7 padding.

    The IV is supplied by the caller; {!Cell_cipher} layers fresh random IVs
    on top to obtain CBC$ (semantic security under chosen-plaintext attack). *)

val encrypt : Aes128.key -> iv:string -> string -> string
(** [encrypt key ~iv plaintext] CBC-encrypts [plaintext] (any length) with
    PKCS#7 padding.  The result length is the padded length; the IV is not
    included.  @raise Invalid_argument if [iv] is not 16 bytes. *)

val decrypt : Aes128.key -> iv:string -> string -> string
(** Inverse of {!encrypt}.  @raise Invalid_argument on malformed input or
    padding. *)
