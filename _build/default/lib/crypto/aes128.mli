(** From-scratch AES-128 block cipher (FIPS-197).

    The S-box and its inverse are derived programmatically from the GF(2^8)
    multiplicative inverse and the Rijndael affine transform, so there is no
    hand-typed 256-entry table to get wrong.  Verified against the FIPS-197
    appendix-B vector and the NIST AESAVS known-answer vectors in the test
    suite. *)

type key
(** An expanded AES-128 key schedule (11 round keys). *)

val block_size : int
(** Size of an AES block in bytes (16). *)

val expand : string -> key
(** [expand raw] expands a 16-byte raw key into a key schedule.
    @raise Invalid_argument if [raw] is not exactly 16 bytes. *)

val encrypt_block : key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
(** Encrypt one 16-byte block of [src] at [src_off] into [dst] at [dst_off].
    [src] and [dst] may be the same buffer at the same offset. *)

val decrypt_block : key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
(** Inverse of {!encrypt_block}. *)
