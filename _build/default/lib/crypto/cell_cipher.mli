(** Semantically secure cell encryption (CBC$): AES-128-CBC under a secret
    key with a fresh random IV prepended to every ciphertext.

    This is the cell-level encryption the paper assumes for the outsourced
    database (§II-A): every attribute value of every record is encrypted
    individually, and the client re-encrypts on every write so the server
    never sees a repeated ciphertext. *)

type t

val create : ?iv_rng:(Bytes.t -> unit) -> string -> t
(** [create raw_key] builds a cipher from a 16-byte key.  [iv_rng] supplies
    IV randomness (defaults to a splitmix64 generator seeded from the key);
    pass an AES-CTR source for cryptographic-strength IVs. *)

val encrypt : t -> string -> string
(** [encrypt t plaintext] is [iv || cbc_encrypt plaintext] under a fresh IV.
    Repeated calls on equal plaintexts yield distinct ciphertexts. *)

val decrypt : t -> string -> string
(** Inverse of {!encrypt}.  @raise Invalid_argument on malformed input. *)

val ciphertext_len : plaintext_len:int -> int
(** Length of the ciphertext produced for a plaintext of the given length
    (IV + PKCS#7-padded body).  Needed for fixed-width server storage. *)
