lib/crypto/hex.ml: Buffer Char String
