lib/crypto/hex.mli:
