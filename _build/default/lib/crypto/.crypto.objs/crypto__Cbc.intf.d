lib/crypto/cbc.mli: Aes128
