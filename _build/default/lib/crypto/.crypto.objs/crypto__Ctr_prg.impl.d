lib/crypto/ctr_prg.ml: Aes128 Bytes Char Int64
