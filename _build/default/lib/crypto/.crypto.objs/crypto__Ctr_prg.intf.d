lib/crypto/ctr_prg.mli: Bytes
