lib/crypto/cbc.ml: Aes128 Bytes Char String
