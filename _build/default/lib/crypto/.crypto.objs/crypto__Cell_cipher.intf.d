lib/crypto/cell_cipher.mli: Bytes
