lib/crypto/rng.ml: Array Bytes Char Int64
