lib/crypto/cell_cipher.ml: Aes128 Bytes Cbc Char Rng String
