(* AES-128 (FIPS-197), implemented from scratch.

   The state is kept as a flat 16-byte buffer in FIPS column-major order:
   state.(r + 4*c) is row r, column c.  All table lookups go through int
   arrays built once at module initialisation. *)

let block_size = 16

(* ---- GF(2^8) arithmetic with the Rijndael polynomial x^8+x^4+x^3+x+1 ---- *)

let xtime a =
  let a2 = a lsl 1 in
  if a land 0x80 <> 0 then (a2 lxor 0x1b) land 0xff else a2 land 0xff

let gmul a b =
  (* Russian-peasant multiplication in GF(2^8). *)
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
  in
  loop a b 0

(* ---- S-box construction ---- *)

let sbox, inv_sbox =
  let sb = Array.make 256 0 and inv = Array.make 256 0 in
  (* Multiplicative inverses: inv_tbl.(x) * x = 1 for x <> 0. *)
  let inv_tbl = Array.make 256 0 in
  for x = 1 to 255 do
    for y = 1 to 255 do
      if gmul x y = 1 then inv_tbl.(x) <- y
    done
  done;
  let rotl8 b k = ((b lsl k) lor (b lsr (8 - k))) land 0xff in
  for x = 0 to 255 do
    let b = inv_tbl.(x) in
    let s = b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63 in
    sb.(x) <- s
  done;
  Array.iteri (fun x s -> inv.(s) <- x) sb;
  (sb, inv)

(* ---- Key schedule ---- *)

type key = { enc : int array (* 176 bytes: 11 round keys *) }

let expand raw =
  if String.length raw <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
  let w = Array.make 176 0 in
  for i = 0 to 15 do
    w.(i) <- Char.code raw.[i]
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let base = i * 4 and prev = (i - 1) * 4 and back = (i - 4) * 4 in
    let t0, t1, t2, t3 =
      if i mod 4 = 0 then begin
        (* RotWord + SubWord + Rcon *)
        let a = sbox.(w.(prev + 1)) lxor !rcon
        and b = sbox.(w.(prev + 2))
        and c = sbox.(w.(prev + 3))
        and d = sbox.(w.(prev)) in
        rcon := xtime !rcon;
        (a, b, c, d)
      end
      else (w.(prev), w.(prev + 1), w.(prev + 2), w.(prev + 3))
    in
    w.(base) <- w.(back) lxor t0;
    w.(base + 1) <- w.(back + 1) lxor t1;
    w.(base + 2) <- w.(back + 2) lxor t2;
    w.(base + 3) <- w.(back + 3) lxor t3
  done;
  { enc = w }

(* ---- Round transformations on a 16-int state array ---- *)

let add_round_key st w round =
  let off = round * 16 in
  for i = 0 to 15 do
    st.(i) <- st.(i) lxor w.(off + i)
  done

let sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- sbox.(st.(i))
  done

let inv_sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- inv_sbox.(st.(i))
  done

(* ShiftRows: row r rotates left by r.  Bytes are laid out column-major, so
   row r of column c lives at index r + 4*c. *)
let shift_rows st =
  let t = st.(1) in
  st.(1) <- st.(5); st.(5) <- st.(9); st.(9) <- st.(13); st.(13) <- t;
  let t = st.(2) and u = st.(6) in
  st.(2) <- st.(10); st.(6) <- st.(14); st.(10) <- t; st.(14) <- u;
  let t = st.(15) in
  st.(15) <- st.(11); st.(11) <- st.(7); st.(7) <- st.(3); st.(3) <- t

let inv_shift_rows st =
  let t = st.(13) in
  st.(13) <- st.(9); st.(9) <- st.(5); st.(5) <- st.(1); st.(1) <- t;
  let t = st.(2) and u = st.(6) in
  st.(2) <- st.(10); st.(6) <- st.(14); st.(10) <- t; st.(14) <- u;
  let t = st.(3) in
  st.(3) <- st.(7); st.(7) <- st.(11); st.(11) <- st.(15); st.(15) <- t

let mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    st.(i) <- xtime a0 lxor (xtime a1 lxor a1) lxor a2 lxor a3;
    st.(i + 1) <- a0 lxor xtime a1 lxor (xtime a2 lxor a2) lxor a3;
    st.(i + 2) <- a0 lxor a1 lxor xtime a2 lxor (xtime a3 lxor a3);
    st.(i + 3) <- (xtime a0 lxor a0) lxor a1 lxor a2 lxor xtime a3
  done

(* Lookup tables for the InvMixColumns multipliers — gmul per byte is the
   hot path of decryption otherwise. *)
let mul9 = Array.init 256 (fun x -> gmul x 9)
let mul11 = Array.init 256 (fun x -> gmul x 11)
let mul13 = Array.init 256 (fun x -> gmul x 13)
let mul14 = Array.init 256 (fun x -> gmul x 14)

let inv_mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    st.(i) <- mul14.(a0) lxor mul11.(a1) lxor mul13.(a2) lxor mul9.(a3);
    st.(i + 1) <- mul9.(a0) lxor mul14.(a1) lxor mul11.(a2) lxor mul13.(a3);
    st.(i + 2) <- mul13.(a0) lxor mul9.(a1) lxor mul14.(a2) lxor mul11.(a3);
    st.(i + 3) <- mul11.(a0) lxor mul13.(a1) lxor mul9.(a2) lxor mul14.(a3)
  done

let load st src off =
  for i = 0 to 15 do
    st.(i) <- Char.code (Bytes.get src (off + i))
  done

let store st dst off =
  for i = 0 to 15 do
    Bytes.set dst (off + i) (Char.chr st.(i))
  done

let encrypt_block { enc = w } ~src ~src_off ~dst ~dst_off =
  let st = Array.make 16 0 in
  load st src src_off;
  add_round_key st w 0;
  for round = 1 to 9 do
    sub_bytes st;
    shift_rows st;
    mix_columns st;
    add_round_key st w round
  done;
  sub_bytes st;
  shift_rows st;
  add_round_key st w 10;
  store st dst dst_off

let decrypt_block { enc = w } ~src ~src_off ~dst ~dst_off =
  let st = Array.make 16 0 in
  load st src src_off;
  add_round_key st w 10;
  for round = 9 downto 1 do
    inv_shift_rows st;
    inv_sub_bytes st;
    add_round_key st w round;
    inv_mix_columns st
  done;
  inv_shift_rows st;
  inv_sub_bytes st;
  add_round_key st w 0;
  store st dst dst_off
