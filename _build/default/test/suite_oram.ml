(* ORAM tests: functional correctness against a plain hash table (and the
   linear-scan oracle), obliviousness of the trace shape, stash behaviour,
   leaf-choice uniformity. *)

let key_len = 8
let payload_len = 8

let enc_key i = Relation.Codec.encode_int i
let enc_val i = Relation.Codec.encode_int i

let make_path ?(capacity = 64) ?(seed = 1) () =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create seed in
  let o =
    Oram.Path_oram.setup ~name:"oram" { capacity; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  (server, o)

let test_read_empty () =
  let _, o = make_path () in
  Alcotest.(check (option string)) "absent" None (Oram.Path_oram.read o ~key:(enc_key 1))

let test_write_read () =
  let _, o = make_path () in
  Oram.Path_oram.write o ~key:(enc_key 1) (enc_val 42);
  Alcotest.(check (option string)) "present" (Some (enc_val 42))
    (Oram.Path_oram.read o ~key:(enc_key 1));
  Alcotest.(check (option string)) "other absent" None (Oram.Path_oram.read o ~key:(enc_key 2))

let test_overwrite () =
  let _, o = make_path () in
  Oram.Path_oram.write o ~key:(enc_key 5) (enc_val 1);
  Oram.Path_oram.write o ~key:(enc_key 5) (enc_val 2);
  Alcotest.(check (option string)) "latest wins" (Some (enc_val 2))
    (Oram.Path_oram.read o ~key:(enc_key 5));
  Alcotest.(check int) "one live block" 1 (Oram.Path_oram.live_blocks o)

let test_remove () =
  let _, o = make_path () in
  Oram.Path_oram.write o ~key:(enc_key 5) (enc_val 1);
  Oram.Path_oram.remove o ~key:(enc_key 5);
  Alcotest.(check (option string)) "gone" None (Oram.Path_oram.read o ~key:(enc_key 5));
  Alcotest.(check int) "no live blocks" 0 (Oram.Path_oram.live_blocks o);
  (* Removing an absent key is a no-op but still a physical access. *)
  Oram.Path_oram.remove o ~key:(enc_key 99);
  Alcotest.(check int) "still none" 0 (Oram.Path_oram.live_blocks o)

let test_full_capacity_random_ops () =
  (* Model check against Hashtbl across a random op sequence. *)
  let capacity = 128 in
  let _, o = make_path ~capacity ~seed:7 () in
  let model = Hashtbl.create 64 in
  let rng = Crypto.Rng.create 1234 in
  for step = 1 to 2000 do
    let k = Crypto.Rng.int rng capacity in
    let key = enc_key k in
    match Crypto.Rng.int rng 3 with
    | 0 ->
        let v = enc_val (Crypto.Rng.int rng 10000) in
        Oram.Path_oram.write o ~key v;
        Hashtbl.replace model k v
    | 1 ->
        Oram.Path_oram.remove o ~key;
        Hashtbl.remove model k
    | _ ->
        let expect = Hashtbl.find_opt model k in
        let got = Oram.Path_oram.read o ~key in
        if expect <> got then
          Alcotest.failf "step %d: key %d mismatch (model %s, oram %s)" step k
            (Option.value ~default:"⊥" expect)
            (Option.value ~default:"⊥" got)
  done;
  Alcotest.(check int) "live count matches model" (Hashtbl.length model)
    (Oram.Path_oram.live_blocks o)

let test_matches_linear_oracle () =
  let capacity = 32 in
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 3 in
  let p =
    Oram.Path_oram.setup ~name:"path" { capacity; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  let l =
    Oram.Linear_oram.setup ~name:"linear" { capacity; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  let oprng = Crypto.Rng.create 55 in
  for _ = 1 to 500 do
    let k = enc_key (Crypto.Rng.int oprng 20) in
    match Crypto.Rng.int oprng 3 with
    | 0 ->
        let v = enc_val (Crypto.Rng.int oprng 1000) in
        Oram.Path_oram.write p ~key:k v;
        Oram.Linear_oram.write l ~key:k v
    | 1 ->
        Oram.Path_oram.remove p ~key:k;
        Oram.Linear_oram.remove l ~key:k
    | _ ->
        Alcotest.(check (option string)) "agree"
          (Oram.Linear_oram.read l ~key:k)
          (Oram.Path_oram.read p ~key:k)
  done

let test_stash_within_limit () =
  let _, o = make_path ~capacity:256 ~seed:11 () in
  for i = 0 to 255 do
    Oram.Path_oram.write o ~key:(enc_key i) (enc_val i)
  done;
  for i = 0 to 255 do
    ignore (Oram.Path_oram.read o ~key:(enc_key i))
  done;
  Alcotest.(check int) "no overflows" 0 (Oram.Path_oram.stash_overflows o);
  Alcotest.(check bool) "max stash positive but bounded" true
    (Oram.Path_oram.max_stash_seen o <= Oram.Path_oram.stash_limit o)

(* Obliviousness: trace shape must be identical for different data and
   different keys, given the same number of accesses. *)
let trace_shape_of_ops ops =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 17 in
  let o =
    Oram.Path_oram.setup ~name:"oram" { capacity = 64; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  List.iter
    (fun (k, v) ->
      match v with
      | Some v -> Oram.Path_oram.write o ~key:(enc_key k) (enc_val v)
      | None -> ignore (Oram.Path_oram.read o ~key:(enc_key k)))
    ops;
  Servsim.Trace.shape_digest (Servsim.Server.trace server)

let test_trace_shape_data_independent () =
  let ops1 = [ (1, Some 10); (2, Some 20); (1, None); (3, Some 30); (9, None) ] in
  let ops2 = [ (7, Some 99); (7, Some 98); (7, None); (8, Some 1); (8, None) ] in
  Alcotest.(check int64) "same shape" (trace_shape_of_ops ops1) (trace_shape_of_ops ops2)

let test_trace_shape_counts_accesses () =
  (* One more access must change the shape. *)
  let ops1 = [ (1, Some 10); (2, Some 20) ] in
  let ops2 = [ (1, Some 10); (2, Some 20); (3, Some 30) ] in
  Alcotest.(check bool) "different shape" false
    (Int64.equal (trace_shape_of_ops ops1) (trace_shape_of_ops ops2))

let test_access_touches_one_path () =
  (* Each access reads and writes exactly (L+1)*Z slots. *)
  let server = Servsim.Server.create ~keep_events:true () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 29 in
  let o =
    Oram.Path_oram.setup ~name:"oram" { capacity = 64; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  let before = Servsim.Trace.count (Servsim.Server.trace server) in
  Oram.Path_oram.write o ~key:(enc_key 1) (enc_val 1);
  let after = Servsim.Trace.count (Servsim.Server.trace server) in
  let levels = Oram.Path_oram.levels o in
  Alcotest.(check int) "2*(L+1)*Z slot accesses" (2 * (levels + 1) * 4) (after - before)

let test_dummy_access_indistinguishable_shape () =
  let run use_dummy =
    let server = Servsim.Server.create () in
    let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
    let rng = Crypto.Rng.create 31 in
    let o =
      Oram.Path_oram.setup ~name:"oram" { capacity = 64; key_len; payload_len } server cipher
        (Crypto.Rng.int rng)
    in
    if use_dummy then Oram.Path_oram.dummy_access o
    else Oram.Path_oram.write o ~key:(enc_key 4) (enc_val 4);
    Servsim.Trace.shape_digest (Servsim.Server.trace server)
  in
  Alcotest.(check int64) "dummy = real shape" (run true) (run false)

let test_leaf_uniformity () =
  (* Repeated accesses to one key touch near-uniform leaves: chi-square
     style coarse bound over the leaf buckets of the recorded paths. *)
  let server = Servsim.Server.create ~keep_events:true () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 37 in
  let o =
    Oram.Path_oram.setup ~name:"oram" { capacity = 64; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  Oram.Path_oram.write o ~key:(enc_key 1) (enc_val 1);
  let trials = 2048 in
  for _ = 1 to trials do
    ignore (Oram.Path_oram.read o ~key:(enc_key 1))
  done;
  let levels = Oram.Path_oram.levels o in
  let leaves = 1 lsl levels in
  let leaf_base = 4 * (leaves - 1) in
  (* Leaf-level slots have addresses >= leaf_base. *)
  let counts = Array.make leaves 0 in
  List.iter
    (fun { Servsim.Trace.op; addr; _ } ->
      if op = Servsim.Trace.Read && addr >= leaf_base then begin
        let leaf = (addr - leaf_base) / 4 in
        if (addr - leaf_base) mod 4 = 0 then counts.(leaf) <- counts.(leaf) + 1
      end)
    (Servsim.Trace.events (Servsim.Server.trace server));
  let total = Array.fold_left ( + ) 0 counts in
  let expect = float_of_int total /. float_of_int leaves in
  Array.iteri
    (fun i c ->
      let ratio = float_of_int c /. expect in
      if ratio < 0.5 || ratio > 1.7 then
        Alcotest.failf "leaf %d count %d far from uniform (expected ~%.0f)" i c expect)
    counts

let test_destroy_frees_storage () =
  let server, o = make_path () in
  let before = Servsim.Server.total_bytes server in
  Alcotest.(check bool) "storage allocated" true (before > 0);
  Oram.Path_oram.destroy o;
  Alcotest.(check int) "freed" 0 (Servsim.Server.total_bytes server)

let test_key_length_validation () =
  let _, o = make_path () in
  Alcotest.(check bool) "bad key rejected" true
    (match Oram.Path_oram.read o ~key:"short" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_linear_oram_basics () =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 3 in
  let o =
    Oram.Linear_oram.setup ~name:"lin" { capacity = 16; key_len; payload_len } server cipher
      (Crypto.Rng.int rng)
  in
  Oram.Linear_oram.write o ~key:(enc_key 3) (enc_val 33);
  Alcotest.(check (option string)) "read" (Some (enc_val 33))
    (Oram.Linear_oram.read o ~key:(enc_key 3));
  Oram.Linear_oram.remove o ~key:(enc_key 3);
  Alcotest.(check (option string)) "removed" None (Oram.Linear_oram.read o ~key:(enc_key 3))

let test_linear_oram_full_trace_identical () =
  (* The linear ORAM's full trace (addresses included) is identical for
     any two op sequences of the same length. *)
  let run ops =
    let server = Servsim.Server.create () in
    let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
    let rng = Crypto.Rng.create 3 in
    let o =
      Oram.Linear_oram.setup ~name:"lin" { capacity = 16; key_len; payload_len } server cipher
        (Crypto.Rng.int rng)
    in
    List.iter
      (fun (k, v) ->
        match v with
        | Some v -> Oram.Linear_oram.write o ~key:(enc_key k) (enc_val v)
        | None -> ignore (Oram.Linear_oram.read o ~key:(enc_key k)))
      ops;
    Servsim.Trace.full_digest (Servsim.Server.trace server)
  in
  Alcotest.(check int64) "identical traces"
    (run [ (1, Some 1); (2, None); (1, None) ])
    (run [ (9, Some 7); (9, Some 8); (9, None) ])

let qcheck_path_oram_model =
  QCheck.Test.make ~name:"path oram = hashtable model (random op lists)" ~count:30
    QCheck.(list_of_size Gen.(5 -- 60) (pair (int_bound 15) (option (int_bound 100))))
    (fun ops ->
      let _, o = make_path ~capacity:16 ~seed:(List.length ops) () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, v) ->
          let key = enc_key k in
          match v with
          | Some v ->
              Oram.Path_oram.write o ~key (enc_val v);
              Hashtbl.replace model k (enc_val v);
              true
          | None -> Hashtbl.find_opt model k = Oram.Path_oram.read o ~key)
        ops)

let suite =
  [
    Alcotest.test_case "read empty" `Quick test_read_empty;
    Alcotest.test_case "write/read" `Quick test_write_read;
    Alcotest.test_case "overwrite" `Quick test_overwrite;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "random ops vs model" `Quick test_full_capacity_random_ops;
    Alcotest.test_case "path oram = linear oracle" `Quick test_matches_linear_oracle;
    Alcotest.test_case "stash within 7·log n" `Quick test_stash_within_limit;
    Alcotest.test_case "trace shape data-independent" `Quick test_trace_shape_data_independent;
    Alcotest.test_case "trace shape counts accesses" `Quick test_trace_shape_counts_accesses;
    Alcotest.test_case "access touches one path" `Quick test_access_touches_one_path;
    Alcotest.test_case "dummy access indistinguishable" `Quick test_dummy_access_indistinguishable_shape;
    Alcotest.test_case "leaf uniformity" `Slow test_leaf_uniformity;
    Alcotest.test_case "destroy frees storage" `Quick test_destroy_frees_storage;
    Alcotest.test_case "key length validation" `Quick test_key_length_validation;
    Alcotest.test_case "linear oram basics" `Quick test_linear_oram_basics;
    Alcotest.test_case "linear oram identical full traces" `Quick test_linear_oram_full_trace_identical;
    QCheck_alcotest.to_alcotest qcheck_path_oram_model;
  ]
