(* Corner-case tables through the full secure protocols: single row,
   single column, all-equal, all-distinct, two identical rows — the
   shapes where off-by-one errors in partitions, lattices, ORAM sizing
   and network padding live. *)

open Relation
open Core

let v x = Value.Int x

let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fdbase.Fd.pp) fds)

let check_all_methods t label =
  let expect = Fdbase.Tane.fds t in
  List.iter
    (fun m ->
      let r = Protocol.discover m t in
      Alcotest.(check string)
        (Printf.sprintf "%s on %s" (Protocol.method_name m) label)
        (pp_fds expect) (pp_fds r.Protocol.fds))
    [ Protocol.Or_oram; Protocol.Ex_oram; Protocol.Sort ]

let test_single_row () =
  let t = Table.make (Schema.make [| "A"; "B" |]) [| [| v 1; v 2 |] |] in
  (* With one row every FD holds; minimal cover: ∅ -> A, ∅ -> B. *)
  let expect = [ { Fdbase.Fd.lhs = Attrset.empty; rhs = 0 }; { Fdbase.Fd.lhs = Attrset.empty; rhs = 1 } ] in
  Alcotest.(check string) "TANE single row" (pp_fds expect) (pp_fds (Fdbase.Tane.fds t));
  check_all_methods t "single row"

let test_single_column () =
  let t = Table.make (Schema.make [| "A" |]) [| [| v 1 |]; [| v 2 |]; [| v 1 |] |] in
  Alcotest.(check string) "no FDs possible" "" (pp_fds (Fdbase.Tane.fds t));
  check_all_methods t "single column"

let test_all_rows_equal () =
  let t =
    Table.make (Schema.make [| "A"; "B"; "C" |])
      (Array.make 5 [| v 7; v 8; v 9 |])
  in
  (* Every column constant: ∅ determines everything. *)
  let fds = Fdbase.Tane.fds t in
  Alcotest.(check int) "three constant FDs" 3 (List.length fds);
  List.iter
    (fun fd -> Alcotest.(check bool) "lhs empty" true (Attrset.is_empty fd.Fdbase.Fd.lhs))
    fds;
  check_all_methods t "all rows equal"

let test_all_rows_distinct_all_columns_keys () =
  let t =
    Table.make (Schema.make [| "A"; "B" |])
      (Array.init 6 (fun i -> [| v i; v (100 + i) |]))
  in
  (* Both columns are keys: A -> B and B -> A. *)
  let expect =
    [ { Fdbase.Fd.lhs = Attrset.singleton 0; rhs = 1 };
      { Fdbase.Fd.lhs = Attrset.singleton 1; rhs = 0 } ]
  in
  Alcotest.(check string) "key FDs" (pp_fds expect) (pp_fds (Fdbase.Tane.fds t));
  check_all_methods t "all distinct"

let test_duplicate_rows () =
  let t =
    Table.make (Schema.make [| "A"; "B" |])
      [| [| v 1; v 2 |]; [| v 1; v 2 |]; [| v 3; v 4 |]; [| v 3; v 4 |] |]
  in
  check_all_methods t "duplicate rows"

let test_two_rows () =
  let t = Table.make (Schema.make [| "A"; "B"; "C" |])
      [| [| v 1; v 5; v 5 |]; [| v 2; v 5; v 6 |] |]
  in
  check_all_methods t "two rows"

let test_non_pow2_sizes () =
  (* Sort pads to a power of two; sizes just above one are the risky
     spots. *)
  List.iter
    (fun n ->
      let t = Datasets.Rnd.generate_with_domain ~seed:n ~rows:n ~cols:2 ~domain:3 () in
      check_all_methods t (Printf.sprintf "n=%d" n))
    [ 3; 5; 9; 17; 33 ]

let test_wide_table_max_lhs () =
  (* Wider than the paper's datasets per row count; capped lattice. *)
  let t = Datasets.Rnd.generate_with_domain ~seed:3 ~rows:12 ~cols:8 ~domain:2 () in
  let expect = (Fdbase.Tane.discover ~max_lhs:1 t).Fdbase.Lattice.fds in
  let r = Protocol.discover ~max_lhs:1 Protocol.Sort t in
  Alcotest.(check string) "wide, capped" (pp_fds expect) (pp_fds r.Protocol.fds)

let test_dynamic_down_to_empty () =
  let t = Table.make (Schema.make [| "A" |]) [| [| v 1 |]; [| v 2 |] |] in
  let d = Dynamic.start ~capacity:8 t in
  Dynamic.delete d ~id:0;
  Dynamic.delete d ~id:1;
  Alcotest.(check int) "empty" 0 (Dynamic.live_records d);
  Alcotest.(check (option int)) "cardinality 0" (Some 0)
    (Dynamic.cardinality d (Attrset.singleton 0));
  (* Refill after emptying. *)
  ignore (Dynamic.insert d [| v 9 |]);
  Alcotest.(check (option int)) "cardinality back to 1" (Some 1)
    (Dynamic.cardinality d (Attrset.singleton 0));
  Dynamic.release d

let test_modeled_network_time () =
  let r =
    {
      Protocol.fds = [];
      sets_checked = 0;
      plan = [];
      cost = Servsim.Cost.snapshot (Servsim.Cost.create ());
      elapsed_s = 0.0;
      trace_full = 0L;
      trace_shape = 0L;
      trace_count = 0;
      step_round_trips = 1000;
      step_bytes = 1_000_000;
    }
  in
  (* 1000 trips x 0.2ms + 8 Mbit / 1 Gbps = 0.2 + 0.008 s. *)
  Alcotest.(check (float 1e-9)) "default model" 0.208 (Protocol.modeled_network_seconds r);
  Alcotest.(check (float 1e-9)) "custom model" 2.008
    (Protocol.modeled_network_seconds ~rtt_s:2e-3 ~gbps:1.0 r)

let suite =
  [
    Alcotest.test_case "single row" `Quick test_single_row;
    Alcotest.test_case "single column" `Quick test_single_column;
    Alcotest.test_case "all rows equal" `Quick test_all_rows_equal;
    Alcotest.test_case "all rows distinct" `Quick test_all_rows_distinct_all_columns_keys;
    Alcotest.test_case "duplicate rows" `Quick test_duplicate_rows;
    Alcotest.test_case "two rows" `Quick test_two_rows;
    Alcotest.test_case "non-power-of-two sizes" `Slow test_non_pow2_sizes;
    Alcotest.test_case "wide table with max_lhs" `Quick test_wide_table_max_lhs;
    Alcotest.test_case "dynamic down to empty" `Quick test_dynamic_down_to_empty;
    Alcotest.test_case "modeled network time" `Quick test_modeled_network_time;
  ]
