(* Sorting-network tests: 0-1 principle, stage disjointness, driver
   correctness on real data, parallel driver equivalence. *)

let test_bitonic_sorts_01 () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "bitonic %d" n)
        true
        (Osort.Network.sorts_all_01 (Osort.Network.bitonic n)))
    [ 1; 2; 4; 8; 16 ]

let test_odd_even_merge_sorts_01 () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "oem %d" n)
        true
        (Osort.Network.sorts_all_01 (Osort.Network.odd_even_merge n)))
    [ 1; 2; 4; 8; 16 ]

let test_non_pow2_rejected () =
  Alcotest.(check bool) "bitonic 12 rejected" true
    (match Osort.Network.bitonic 12 with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "oem 0 rejected" true
    (match Osort.Network.odd_even_merge 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stage_disjointness () =
  List.iter
    (fun n ->
      Alcotest.(check bool) "bitonic disjoint" true
        (Osort.Network.check_disjoint_stages (Osort.Network.bitonic n));
      Alcotest.(check bool) "oem disjoint" true
        (Osort.Network.check_disjoint_stages (Osort.Network.odd_even_merge n)))
    [ 2; 8; 64; 256 ]

let test_comparator_counts () =
  (* Bitonic on n elements has n/2 * log(n)(log(n)+1)/2 comparators. *)
  let n = 64 in
  let log = 6 in
  let net = Osort.Network.bitonic n in
  Alcotest.(check int) "bitonic comparators" (n / 2 * (log * (log + 1) / 2))
    (Osort.Network.comparator_count net);
  Alcotest.(check int) "bitonic stages" (log * (log + 1) / 2) (Osort.Network.stage_count net);
  let oem = Osort.Network.odd_even_merge n in
  Alcotest.(check bool) "oem strictly smaller" true
    (Osort.Network.comparator_count oem < Osort.Network.comparator_count net)

let test_ceil_pow2 () =
  List.iter
    (fun (n, expect) -> Alcotest.(check int) (string_of_int n) expect (Osort.Network.ceil_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1000, 1024) ]

let sort_array_with net (a : int array) =
  let exchange ~up i j =
    let lo, hi = if a.(i) <= a.(j) then (a.(i), a.(j)) else (a.(j), a.(i)) in
    if up then begin
      a.(i) <- lo;
      a.(j) <- hi
    end
    else begin
      a.(i) <- hi;
      a.(j) <- lo
    end
  in
  Osort.Driver.run net ~exchange

let test_driver_sorts_ints () =
  let rng = Crypto.Rng.create 5 in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Crypto.Rng.int rng 1000) in
      let expect = Array.copy a in
      Array.sort compare expect;
      sort_array_with (Osort.Network.bitonic n) a;
      Alcotest.(check (array int)) (Printf.sprintf "sorted %d" n) expect a)
    [ 1; 2; 16; 128; 512 ]

let test_driver_duplicates () =
  let a = [| 3; 1; 3; 2; 1; 3; 2; 2 |] in
  sort_array_with (Osort.Network.bitonic 8) a;
  Alcotest.(check (array int)) "duplicates" [| 1; 1; 2; 2; 2; 3; 3; 3 |] a

let test_parallel_matches_sequential () =
  let rng = Crypto.Rng.create 9 in
  List.iter
    (fun domains ->
      let n = 256 in
      let orig = Array.init n (fun _ -> Crypto.Rng.int rng 10000) in
      let seq = Array.copy orig and par = Array.copy orig in
      let net = Osort.Network.bitonic n in
      sort_array_with net seq;
      let make_exchange () ~up i j =
        let a = par in
        let lo, hi = if a.(i) <= a.(j) then (a.(i), a.(j)) else (a.(j), a.(i)) in
        if up then begin
          a.(i) <- lo;
          a.(j) <- hi
        end
        else begin
          a.(i) <- hi;
          a.(j) <- lo
        end
      in
      Osort.Driver.run_parallel net ~domains ~make_exchange;
      Alcotest.(check (array int)) (Printf.sprintf "%d domains" domains) seq par)
    [ 1; 2; 4 ]

let qcheck_bitonic_sorts_random =
  QCheck.Test.make ~name:"bitonic sorts arbitrary int arrays" ~count:50
    QCheck.(array_of_size (Gen.oneofl [ 1; 2; 4; 8; 16; 32; 64 ]) int)
    (fun a ->
      let a = Array.copy a in
      let expect = Array.copy a in
      Array.sort compare expect;
      sort_array_with (Osort.Network.bitonic (Array.length a)) a;
      a = expect)

let qcheck_oem_sorts_random =
  QCheck.Test.make ~name:"odd-even-merge sorts arbitrary int arrays" ~count:50
    QCheck.(array_of_size (Gen.oneofl [ 1; 2; 4; 8; 16; 32; 64 ]) int)
    (fun a ->
      let a = Array.copy a in
      let expect = Array.copy a in
      Array.sort compare expect;
      sort_array_with (Osort.Network.odd_even_merge (Array.length a)) a;
      a = expect)

let qcheck_network_is_permutation =
  QCheck.Test.make ~name:"network output is a permutation of input" ~count:50
    QCheck.(array_of_size (Gen.return 32) (int_bound 100))
    (fun a ->
      let b = Array.copy a in
      sort_array_with (Osort.Network.bitonic 32) b;
      List.sort compare (Array.to_list a) = Array.to_list b)

let suite =
  [
    Alcotest.test_case "bitonic 0-1 principle" `Quick test_bitonic_sorts_01;
    Alcotest.test_case "odd-even-merge 0-1 principle" `Quick test_odd_even_merge_sorts_01;
    Alcotest.test_case "non-power-of-two rejected" `Quick test_non_pow2_rejected;
    Alcotest.test_case "stages are disjoint" `Quick test_stage_disjointness;
    Alcotest.test_case "comparator counts" `Quick test_comparator_counts;
    Alcotest.test_case "ceil_pow2" `Quick test_ceil_pow2;
    Alcotest.test_case "driver sorts ints" `Quick test_driver_sorts_ints;
    Alcotest.test_case "driver handles duplicates" `Quick test_driver_duplicates;
    Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
    QCheck_alcotest.to_alcotest qcheck_bitonic_sorts_random;
    QCheck_alcotest.to_alcotest qcheck_oem_sorts_random;
    QCheck_alcotest.to_alcotest qcheck_network_is_permutation;
  ]
