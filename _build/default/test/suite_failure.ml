(* Failure injection: a corrupted or misbehaving server must surface as a
   client-side integrity error, never as silently wrong results; plus
   malformed-input robustness of the parsers and the wire protocol. *)

open Relation

let test_corrupted_cell_detected () =
  (* Flip bytes of a stored cell ciphertext; the client's CBC decryption
     must reject it (with overwhelming probability the padding breaks) or
     the codec must reject the garbled plaintext. *)
  let t = Datasets.Examples.fig1 () in
  let session = Core.Session.create ~n:4 ~m:3 () in
  let db = Core.Enc_db.outsource session t in
  let store = Servsim.Server.find_store session.Core.Session.server (Core.Enc_db.store_name db) in
  let detected = ref 0 in
  let rng = Crypto.Rng.create 13 in
  for trial = 1 to 20 do
    let idx = Crypto.Rng.int rng 12 in
    let c = Bytes.of_string (Servsim.Block_store.read store idx) in
    let pos = Crypto.Rng.int rng (Bytes.length c) in
    Bytes.set c pos (Char.chr (Char.code (Bytes.get c pos) lxor (1 + Crypto.Rng.int rng 254)));
    Servsim.Block_store.write store idx (Bytes.to_string c);
    (match Core.Enc_db.read_cell db ~row:(idx / 3) ~col:(idx mod 3) with
    | exception Invalid_argument _ -> incr detected
    | v ->
        (* Corruption of non-final blocks can decrypt to valid padding and
           a valid codec tag; then the value differs from the original. *)
        if not (Value.equal v (Table.cell t ~row:(idx / 3) ~col:(idx mod 3))) then
          incr detected);
    ignore trial
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/20 corruptions detected" !detected)
    true (!detected >= 18)

let test_truncated_ciphertext_rejected () =
  let cipher = Crypto.Cell_cipher.create (String.make 16 'T') in
  List.iter
    (fun s ->
      Alcotest.(check bool) "rejected" true
        (match Crypto.Cell_cipher.decrypt cipher s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ ""; "short"; String.make 31 'x'; String.make 40 'y' ]

let test_oram_corruption_detected () =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 3 in
  let o =
    Oram.Path_oram.setup ~name:"o" { capacity = 16; key_len = 8; payload_len = 8 } server
      cipher (Crypto.Rng.int rng)
  in
  Oram.Path_oram.write o ~key:(Codec.encode_int 1) (Codec.encode_int 1);
  let store = Servsim.Server.find_store server "o" in
  (* Corrupt every slot: any subsequent access must fail loudly. *)
  for i = 0 to Servsim.Block_store.length store - 1 do
    Servsim.Block_store.write store i (String.make 64 'Z')
  done;
  Alcotest.(check bool) "detected" true
    (match Oram.Path_oram.read o ~key:(Codec.encode_int 1) with
    | exception Invalid_argument _ -> true
    | exception Failure _ -> true
    | _ -> false)

let test_csv_malformed () =
  List.iter
    (fun doc ->
      Alcotest.(check bool) (Printf.sprintf "rejected: %S" doc) true
        (match Csv.of_string doc with exception Invalid_argument _ -> true | _ -> false))
    [ ""; "a,b\n1,2,3\n"; "a,b\n\"unterminated\n" ]

let test_wire_malformed_stream () =
  (* Feed garbage bytes to the server loop: it must not crash the
     process; the reader raises and serve returns on EOF/protocol error. *)
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc "\255garbage-bytes";
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Alcotest.(check bool) "protocol error raised" true
    (match Servsim.Wire.read_request ic with
    | exception Servsim.Wire.Protocol_error _ -> true
    | exception End_of_file -> true
    | _ -> false);
  close_in ic

let test_stash_statistics () =
  (* Hammer one PathORAM and confirm the stash stays within the paper's
     7·log n bound throughout (the bound is statistical; a violation
     would indicate an eviction bug rather than bad luck at these
     sizes). *)
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 77 in
  let o =
    Oram.Path_oram.setup ~name:"s" { capacity = 512; key_len = 8; payload_len = 8 } server
      cipher (Crypto.Rng.int rng)
  in
  for i = 0 to 511 do
    Oram.Path_oram.write o ~key:(Codec.encode_int i) (Codec.encode_int i)
  done;
  for round = 1 to 4 do
    for i = 0 to 511 do
      ignore (Oram.Path_oram.read o ~key:(Codec.encode_int ((i * 7) mod 512)))
    done;
    ignore round
  done;
  Alcotest.(check int) "no overflow" 0 (Oram.Path_oram.stash_overflows o);
  Alcotest.(check bool)
    (Printf.sprintf "max stash %d <= limit %d" (Oram.Path_oram.max_stash_seen o)
       (Oram.Path_oram.stash_limit o))
    true
    (Oram.Path_oram.max_stash_seen o <= Oram.Path_oram.stash_limit o)

let test_schema_mismatch_rejected () =
  let t = Datasets.Examples.fig1 () in
  let session = Core.Session.create ~n:99 ~m:3 () in
  Alcotest.(check bool) "dimension mismatch" true
    (match Core.Enc_db.outsource session t with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dead_server_process () =
  (* Kill the server child mid-session: the next call must raise, not
     hang. *)
  let fd, pid = Servsim.Remote_server.fork_server () in
  let conn = Servsim.Remote.connect_fd fd in
  ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Alcotest.(check bool) "raises after server death" true
    (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 0)) with
    | exception _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "corrupted cells detected" `Quick test_corrupted_cell_detected;
    Alcotest.test_case "truncated ciphertexts rejected" `Quick test_truncated_ciphertext_rejected;
    Alcotest.test_case "ORAM corruption detected" `Quick test_oram_corruption_detected;
    Alcotest.test_case "malformed CSV rejected" `Quick test_csv_malformed;
    Alcotest.test_case "malformed wire stream" `Quick test_wire_malformed_stream;
    Alcotest.test_case "stash statistics" `Slow test_stash_statistics;
    Alcotest.test_case "schema mismatch rejected" `Quick test_schema_mismatch_rejected;
    Alcotest.test_case "dead server process" `Quick test_dead_server_process;
  ]
