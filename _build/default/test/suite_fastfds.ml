(* FastFDs tests: the difference-set algorithm must agree exactly with
   both the TANE lattice and brute force — three independent roads to the
   same FD set. *)

open Relation
open Fdbase

let v x = Value.Int x

let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fd.pp) fds)

let random_table rng ~n ~m ~domain =
  let schema = Schema.make (Array.init m (fun i -> Printf.sprintf "C%d" i)) in
  Table.make schema
    (Array.init n (fun _ -> Array.init m (fun _ -> v (Crypto.Rng.int rng domain))))

let test_difference_sets_fig1 () =
  let t = Datasets.Examples.fig1 () in
  let diffs = Fastfds.difference_sets t in
  (* r2/r3 differ only on Birth: {2} must be a difference set. *)
  Alcotest.(check bool) "{Birth} present" true
    (List.exists (fun d -> Attrset.equal d (Attrset.singleton 2)) diffs);
  (* All sets non-empty and within the schema. *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "non-empty" false (Attrset.is_empty d);
      Alcotest.(check bool) "within schema" true (Attrset.subset d (Attrset.full ~m:3)))
    diffs

let test_minimal_difference_sets () =
  let s = Attrset.of_list in
  let sets = [ s [ 0 ]; s [ 0; 1 ]; s [ 1; 2 ]; s [ 2 ] ] in
  let min = Fastfds.minimal_difference_sets sets in
  Alcotest.(check int) "kept" 2 (List.length min);
  Alcotest.(check bool) "{0} kept" true (List.exists (Attrset.equal (s [ 0 ])) min);
  Alcotest.(check bool) "{2} kept" true (List.exists (Attrset.equal (s [ 2 ])) min)

let test_matches_tane_fig1 () =
  let t = Datasets.Examples.fig1 () in
  Alcotest.(check string) "fig1" (pp_fds (Tane.fds t)) (pp_fds (Fastfds.discover t))

let test_matches_tane_employee () =
  let t = Datasets.Examples.employee () in
  Alcotest.(check string) "employee" (pp_fds (Tane.fds t)) (pp_fds (Fastfds.discover t))

let test_matches_tane_random () =
  let rng = Crypto.Rng.create 61 in
  for _ = 1 to 25 do
    let t = random_table rng ~n:(8 + Crypto.Rng.int rng 25) ~m:4 ~domain:3 in
    Alcotest.(check string) "same FDs" (pp_fds (Tane.fds t)) (pp_fds (Fastfds.discover t))
  done

let test_matches_brute_force () =
  let rng = Crypto.Rng.create 62 in
  for _ = 1 to 10 do
    let t = random_table rng ~n:(6 + Crypto.Rng.int rng 15) ~m:5 ~domain:3 in
    Alcotest.(check string) "same FDs" (pp_fds (Validator.brute_force_minimal t))
      (pp_fds (Fastfds.discover t))
  done

let test_constant_and_key_columns () =
  let schema = Schema.make [| "K"; "A"; "C" |] in
  let t =
    Table.make schema
      [| [| v 0; v 5; v 7 |]; [| v 1; v 5; v 7 |]; [| v 2; v 6; v 7 |] |]
  in
  let fds = Fastfds.discover t in
  Alcotest.(check bool) "∅ → C (constant)" true
    (List.exists (Fd.equal { Fd.lhs = Attrset.empty; rhs = 2 }) fds);
  Alcotest.(check bool) "K → A (key)" true
    (List.exists (Fd.equal { Fd.lhs = Attrset.singleton 0; rhs = 1 }) fds);
  Alcotest.(check string) "agrees with TANE" (pp_fds (Tane.fds t)) (pp_fds fds)

let qcheck_three_way_agreement =
  QCheck.Test.make ~name:"FastFDs = TANE (random tables)" ~count:20
    QCheck.(pair (int_range 5 20) (int_range 2 4))
    (fun (n, domain) ->
      let rng = Crypto.Rng.create ((n * 31) + domain) in
      let t = random_table rng ~n ~m:4 ~domain in
      String.equal (pp_fds (Tane.fds t)) (pp_fds (Fastfds.discover t)))

let suite =
  [
    Alcotest.test_case "difference sets on Fig. 1" `Quick test_difference_sets_fig1;
    Alcotest.test_case "minimal difference sets" `Quick test_minimal_difference_sets;
    Alcotest.test_case "= TANE on Fig. 1" `Quick test_matches_tane_fig1;
    Alcotest.test_case "= TANE on employee" `Quick test_matches_tane_employee;
    Alcotest.test_case "= TANE on random tables" `Quick test_matches_tane_random;
    Alcotest.test_case "= brute force" `Quick test_matches_brute_force;
    Alcotest.test_case "constant and key columns" `Quick test_constant_and_key_columns;
    QCheck_alcotest.to_alcotest qcheck_three_way_agreement;
  ]
