(* Bucket oblivious random permutation / sort tests. *)

let rand_of seed =
  let rng = Crypto.Rng.create seed in
  Crypto.Rng.int rng

let test_permute_is_permutation () =
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> i) in
      let p = Osort.Bucket_sort.permute ~rand:(rand_of (100 + n)) a in
      Alcotest.(check int) "length" n (Array.length p);
      let sorted = Array.copy p in
      Array.sort compare sorted;
      Alcotest.(check bool)
        (Printf.sprintf "permutation of [0,%d)" n)
        true
        (Array.to_list sorted = List.init n Fun.id))
    [ 0; 1; 2; 7; 32; 100; 500 ]

let test_permute_randomises () =
  let n = 64 in
  let a = Array.init n (fun i -> i) in
  let p1 = Osort.Bucket_sort.permute ~rand:(rand_of 1) a in
  let p2 = Osort.Bucket_sort.permute ~rand:(rand_of 2) a in
  Alcotest.(check bool) "different draws differ" false (p1 = p2);
  Alcotest.(check bool) "not identity" false (p1 = a)

let test_permute_uniformity_coarse () =
  (* Track where element 0 lands over many draws: each of the n positions
     should be hit roughly uniformly. *)
  let n = 8 in
  let trials = 4000 in
  let counts = Array.make n 0 in
  let rng = Crypto.Rng.create 99 in
  for _ = 1 to trials do
    let p = Osort.Bucket_sort.permute ~z:4 ~rand:(Crypto.Rng.int rng) (Array.init n Fun.id) in
    let pos = ref 0 in
    Array.iteri (fun i x -> if x = 0 then pos := i) p;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  let expect = trials / n in
  Array.iteri
    (fun i c ->
      if c < expect / 2 || c > expect * 2 then
        Alcotest.failf "position %d hit %d times (expected ~%d)" i c expect)
    counts

let test_sort_sorts () =
  let rng = Crypto.Rng.create 5 in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Crypto.Rng.int rng 50) in
      let expect = Array.copy a in
      Array.sort compare expect;
      let got = Osort.Bucket_sort.sort ~compare ~rand:(Crypto.Rng.int rng) a in
      Alcotest.(check (array int)) (Printf.sprintf "n=%d" n) expect got)
    [ 1; 2; 10; 64; 300 ]

let test_sort_with_duplicates () =
  let a = Array.make 100 7 in
  let got = Osort.Bucket_sort.sort ~compare ~rand:(rand_of 3) a in
  Alcotest.(check (array int)) "all equal" a got

let test_invalid_z () =
  Alcotest.(check bool) "odd z rejected" true
    (match Osort.Bucket_sort.permute ~z:5 ~rand:(rand_of 1) [| 1; 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_touches_asymptotics () =
  (* O(n log n): doubling n should grow touches by a bit more than 2x,
     far below the ~2.4x of n log^2 n at these sizes. *)
  let z = 32 in
  let t1 = Osort.Bucket_sort.touches ~n:1024 ~z in
  let t2 = Osort.Bucket_sort.touches ~n:2048 ~z in
  let ratio = float_of_int t2 /. float_of_int t1 in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [2, 2.4]" ratio) true
    (ratio >= 2.0 && ratio <= 2.4);
  (* And asymptotically cheaper than bitonic for large n. *)
  let n = 1 lsl 14 in
  let bitonic = 2 * Osort.Network.comparator_count (Osort.Network.bitonic n) in
  let bucket = Osort.Bucket_sort.touches ~n ~z:512 in
  Alcotest.(check bool)
    (Printf.sprintf "bucket %d < bitonic %d at n=2^14" bucket bitonic)
    true (bucket < bitonic)

let qcheck_sort_random =
  QCheck.Test.make ~name:"bucket sort = stdlib sort" ~count:50
    QCheck.(array_of_size Gen.(0 -- 200) (int_bound 1000))
    (fun a ->
      let expect = Array.copy a in
      Array.sort compare expect;
      Osort.Bucket_sort.sort ~compare ~rand:(rand_of (Array.length a)) a = expect)

let qcheck_permute_multiset =
  QCheck.Test.make ~name:"permute preserves multiset" ~count:50
    QCheck.(array_of_size Gen.(0 -- 150) (int_bound 20))
    (fun a ->
      let p = Osort.Bucket_sort.permute ~rand:(rand_of (1 + Array.length a)) a in
      List.sort compare (Array.to_list p) = List.sort compare (Array.to_list a))

let suite =
  [
    Alcotest.test_case "permute is a permutation" `Quick test_permute_is_permutation;
    Alcotest.test_case "permute randomises" `Quick test_permute_randomises;
    Alcotest.test_case "permute coarse uniformity" `Slow test_permute_uniformity_coarse;
    Alcotest.test_case "sort sorts" `Quick test_sort_sorts;
    Alcotest.test_case "sort with duplicates" `Quick test_sort_with_duplicates;
    Alcotest.test_case "invalid z rejected" `Quick test_invalid_z;
    Alcotest.test_case "O(n log n) touches" `Quick test_touches_asymptotics;
    QCheck_alcotest.to_alcotest qcheck_sort_random;
    QCheck_alcotest.to_alcotest qcheck_permute_multiset;
  ]
