(* Operational checks of Definition 2 (oblivious algorithm): for any two
   databases of the same size, the server's view must be distributed
   identically.  For Sort the whole physical trace (addresses included)
   is a deterministic function of (n, m, plan), so traces must be
   bit-identical; for the ORAM methods the trace *shape* (sequence of
   stores, op kinds and ciphertext lengths) must be identical while path
   choices are random. *)

open Relation
open Core

(* Two databases, same size, very different contents and FDs... but NOTE:
   the lattice plan is allowed to depend on the discovered FDs (part of
   the leakage), so trace comparisons across databases must use tables
   with identical FD sets, or fixed attribute-set computations. *)

let table_a n = Datasets.Rnd.generate_with_domain ~seed:1 ~rows:n ~cols:3 ~domain:4 ()
let table_b n = Datasets.Rnd.generate_with_domain ~seed:2 ~rows:n ~cols:3 ~domain:900000 ()

let table_strings n =
  let schema = Schema.make [| "A"; "B"; "C" |] in
  let rng = Crypto.Rng.create 3 in
  Table.make schema
    (Array.init n (fun _ ->
         Array.init 3 (fun _ ->
             Value.Str (String.init 6 (fun _ -> Char.chr (97 + Crypto.Rng.int rng 26))))))

let partition_trace method_ table x =
  let _, r = Protocol.partition_cardinality ~seed:424242 method_ table x in
  r

(* --- Sort: full trace equality (strongest property). --- *)

let test_sort_full_trace_identical_datasets () =
  let x = Attrset.of_list [ 0; 1 ] in
  let r1 = partition_trace Protocol.Sort (table_a 32) x in
  let r2 = partition_trace Protocol.Sort (table_b 32) x in
  let r3 = partition_trace Protocol.Sort (table_strings 32) x in
  Alcotest.(check int64) "a = b" r1.Protocol.trace_full r2.Protocol.trace_full;
  Alcotest.(check int64) "a = strings" r1.Protocol.trace_full r3.Protocol.trace_full

let test_sort_full_trace_single_attr () =
  let x = Attrset.singleton 2 in
  let r1 = partition_trace Protocol.Sort (table_a 48) x in
  let r2 = partition_trace Protocol.Sort (table_b 48) x in
  Alcotest.(check int64) "identical" r1.Protocol.trace_full r2.Protocol.trace_full

let test_sort_trace_differs_across_sizes () =
  let x = Attrset.singleton 0 in
  let r1 = partition_trace Protocol.Sort (table_a 32) x in
  let r2 = partition_trace Protocol.Sort (table_a 64) x in
  Alcotest.(check bool) "sizes distinguishable (allowed leakage)" false
    (Int64.equal r1.Protocol.trace_full r2.Protocol.trace_full)

(* --- ORAM methods: shape equality; addresses (leaves) may differ. --- *)

let test_oram_shape_identical_datasets () =
  List.iter
    (fun m ->
      let x = Attrset.of_list [ 0; 1 ] in
      let r1 = partition_trace m (table_a 32) x in
      let r2 = partition_trace m (table_b 32) x in
      let r3 = partition_trace m (table_strings 32) x in
      Alcotest.(check int64)
        (Protocol.method_name m ^ " a=b")
        r1.Protocol.trace_shape r2.Protocol.trace_shape;
      Alcotest.(check int64)
        (Protocol.method_name m ^ " a=strings")
        r1.Protocol.trace_shape r3.Protocol.trace_shape;
      Alcotest.(check int)
        (Protocol.method_name m ^ " same access count")
        r1.Protocol.trace_count r2.Protocol.trace_count)
    [ Protocol.Or_oram; Protocol.Ex_oram ]

let test_oram_shape_single_attr () =
  List.iter
    (fun m ->
      let x = Attrset.singleton 1 in
      let r1 = partition_trace m (table_a 24) x in
      let r2 = partition_trace m (table_strings 24) x in
      Alcotest.(check int64) (Protocol.method_name m) r1.Protocol.trace_shape
        r2.Protocol.trace_shape)
    [ Protocol.Or_oram; Protocol.Ex_oram ]

(* --- Full protocol: for equal-size DBs with equal FD sets, the entire
   execution must look the same (Sort: identical; ORAM: same shape). --- *)

let rename_values table =
  (* A bijective per-column renaming preserves all partitions, hence all
     FDs, while changing every plaintext. *)
  let m = Table.cols table in
  let maps = Array.init m (fun _ -> Hashtbl.create 16) in
  let fresh = Array.make m 1000 in
  let data =
    Array.init (Table.rows table) (fun r ->
        Array.init m (fun c ->
            let v = Table.cell table ~row:r ~col:c in
            let tbl = maps.(c) in
            match Hashtbl.find_opt tbl v with
            | Some v' -> v'
            | None ->
                let v' = Value.Int fresh.(c) in
                fresh.(c) <- fresh.(c) + 7;
                Hashtbl.replace tbl v v';
                v'))
  in
  Table.make (Table.schema table) data

let test_protocol_sort_identical_for_equal_leakage () =
  let t1 = Datasets.Rnd.generate_with_domain ~seed:21 ~rows:24 ~cols:3 ~domain:3 () in
  let t2 = rename_values t1 in
  let r1 = Protocol.discover ~seed:777 Protocol.Sort t1 in
  let r2 = Protocol.discover ~seed:777 Protocol.Sort t2 in
  Alcotest.(check string) "same FDs (leakage equal)"
    (String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) r1.Protocol.fds))
    (String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) r2.Protocol.fds));
  Alcotest.(check int64) "identical full trace" r1.Protocol.trace_full r2.Protocol.trace_full

let test_protocol_oram_same_shape_for_equal_leakage () =
  let t1 = Datasets.Rnd.generate_with_domain ~seed:22 ~rows:20 ~cols:3 ~domain:3 () in
  let t2 = rename_values t1 in
  List.iter
    (fun m ->
      let r1 = Protocol.discover ~seed:778 m t1 in
      let r2 = Protocol.discover ~seed:778 m t2 in
      Alcotest.(check int64) (Protocol.method_name m ^ " shape") r1.Protocol.trace_shape
        r2.Protocol.trace_shape;
      Alcotest.(check int) (Protocol.method_name m ^ " count") r1.Protocol.trace_count
        r2.Protocol.trace_count)
    [ Protocol.Or_oram; Protocol.Ex_oram ]

let test_oram_leaves_vary_across_seeds () =
  (* Sanity: the ORAM trace is NOT degenerate — different client
     randomness produces different physical addresses. *)
  let x = Attrset.singleton 0 in
  let t = table_a 24 in
  let _, r1 = Protocol.partition_cardinality ~seed:1 Protocol.Or_oram t x in
  let _, r2 = Protocol.partition_cardinality ~seed:2 Protocol.Or_oram t x in
  Alcotest.(check int64) "same shape" r1.Protocol.trace_shape r2.Protocol.trace_shape;
  Alcotest.(check bool) "different addresses" false
    (Int64.equal r1.Protocol.trace_full r2.Protocol.trace_full)

let test_ex_oram_insert_delete_shape () =
  (* Updates on different values must look identical (same shape and
     count) — the dynamic method's obliviousness. *)
  let run values =
    let n = List.length values in
    let schema = Schema.make [| "A" |] in
    let t = Table.make schema (Array.of_list (List.map (fun v -> [| Value.Int v |]) values)) in
    let d = Dynamic.start ~seed:31 ~capacity:64 t in
    let id = Dynamic.insert d [| Value.Int (List.nth values 0) |] in
    Dynamic.delete d ~id;
    Dynamic.delete d ~id:0;
    ignore n;
    let trace = Session.trace (Dynamic.session d) in
    (Servsim.Trace.shape_digest trace, Servsim.Trace.count trace)
  in
  let s1, c1 = run [ 5; 5; 7; 9 ] in
  let s2, c2 = run [ 1; 2; 3; 4 ] in
  Alcotest.(check int64) "same shape" s1 s2;
  Alcotest.(check int) "same count" c1 c2

let suite =
  [
    Alcotest.test_case "Sort: identical traces across datasets" `Quick
      test_sort_full_trace_identical_datasets;
    Alcotest.test_case "Sort: identical traces (single attr)" `Quick
      test_sort_full_trace_single_attr;
    Alcotest.test_case "Sort: size is (allowed) leakage" `Quick
      test_sort_trace_differs_across_sizes;
    Alcotest.test_case "ORAM: identical shapes across datasets" `Quick
      test_oram_shape_identical_datasets;
    Alcotest.test_case "ORAM: identical shapes (single attr)" `Quick
      test_oram_shape_single_attr;
    Alcotest.test_case "full protocol (Sort) identical for equal leakage" `Quick
      test_protocol_sort_identical_for_equal_leakage;
    Alcotest.test_case "full protocol (ORAM) same shape for equal leakage" `Quick
      test_protocol_oram_same_shape_for_equal_leakage;
    Alcotest.test_case "ORAM leaves vary across seeds" `Quick test_oram_leaves_vary_across_seeds;
    Alcotest.test_case "Ex-ORAM update shape data-independent" `Quick
      test_ex_oram_insert_delete_shape;
  ]
