(* Oblivious map (AVL over ORAM) tests: model equivalence, AVL
   invariants, fixed access budgets, client memory with the recursive
   backing. *)

let key_len = 8
let value_len = 8

let k i = Relation.Codec.encode_int i
let v i = Relation.Codec.encode_int i

let make ?(capacity = 256) ?(backing = `Path) ?(seed = 5) () =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'O') in
  let rng = Crypto.Rng.create seed in
  let cfg = { Oram.Omap.capacity; key_len; value_len } in
  let nl = Oram.Omap.node_len cfg in
  let b =
    match backing with
    | `Path ->
        Oram.Omap.path_oram_backing ~name:"omap" ~capacity ~node_len:nl server cipher
          (Crypto.Rng.int rng)
    | `Recursive ->
        Oram.Omap.recursive_backing ~name:"omap" ~capacity ~node_len:nl server cipher
          (Crypto.Rng.int rng)
  in
  (server, Oram.Omap.create cfg b)

let test_empty () =
  let _, m = make () in
  Alcotest.(check (option string)) "find on empty" None (Oram.Omap.find m (k 1));
  Alcotest.(check int) "size" 0 (Oram.Omap.size m);
  Oram.Omap.delete m (k 1);
  Alcotest.(check int) "delete on empty ok" 0 (Oram.Omap.size m)

let test_insert_find () =
  let _, m = make () in
  Oram.Omap.insert m (k 5) (v 50);
  Oram.Omap.insert m (k 3) (v 30);
  Oram.Omap.insert m (k 8) (v 80);
  Alcotest.(check (option string)) "find 5" (Some (v 50)) (Oram.Omap.find m (k 5));
  Alcotest.(check (option string)) "find 3" (Some (v 30)) (Oram.Omap.find m (k 3));
  Alcotest.(check (option string)) "find 8" (Some (v 80)) (Oram.Omap.find m (k 8));
  Alcotest.(check (option string)) "find absent" None (Oram.Omap.find m (k 9));
  Alcotest.(check int) "size" 3 (Oram.Omap.size m);
  Oram.Omap.insert m (k 5) (v 55);
  Alcotest.(check (option string)) "overwrite" (Some (v 55)) (Oram.Omap.find m (k 5));
  Alcotest.(check int) "size unchanged" 3 (Oram.Omap.size m)

let test_sorted_sequence () =
  let _, m = make () in
  (* Ascending insertion is the classic AVL degenerate case. *)
  for i = 0 to 63 do
    Oram.Omap.insert m (k i) (v i)
  done;
  Alcotest.(check bool) "invariants after ascending inserts" true (Oram.Omap.check_invariants m);
  Alcotest.(check int) "size" 64 (Oram.Omap.size m);
  let contents = Oram.Omap.to_sorted_list m in
  Alcotest.(check int) "sorted size" 64 (List.length contents);
  Alcotest.(check bool) "in order" true
    (List.for_all2
       (fun (key, _) i -> String.equal key (k i))
       contents
       (List.init 64 Fun.id))

let test_deletions_keep_invariants () =
  let _, m = make () in
  for i = 0 to 40 do
    Oram.Omap.insert m (k i) (v i)
  done;
  (* Delete odd keys. *)
  for i = 0 to 40 do
    if i mod 2 = 1 then Oram.Omap.delete m (k i)
  done;
  Alcotest.(check bool) "invariants" true (Oram.Omap.check_invariants m);
  Alcotest.(check int) "size" 21 (Oram.Omap.size m);
  for i = 0 to 40 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (if i mod 2 = 0 then Some (v i) else None)
      (Oram.Omap.find m (k i))
  done

let test_random_model () =
  let _, m = make ~capacity:64 ~seed:9 () in
  let model = Hashtbl.create 64 in
  let rng = Crypto.Rng.create 31 in
  for _ = 1 to 150 do
    let key = Crypto.Rng.int rng 40 in
    match Crypto.Rng.int rng 3 with
    | 0 ->
        let value = Crypto.Rng.int rng 10000 in
        Oram.Omap.insert m (k key) (v value);
        Hashtbl.replace model key value
    | 1 ->
        Oram.Omap.delete m (k key);
        Hashtbl.remove model key
    | _ ->
        let expect = Option.map v (Hashtbl.find_opt model key) in
        Alcotest.(check (option string))
          (Printf.sprintf "key %d" key)
          expect (Oram.Omap.find m (k key))
  done;
  Alcotest.(check int) "final size" (Hashtbl.length model) (Oram.Omap.size m);
  Alcotest.(check bool) "invariants" true (Oram.Omap.check_invariants m)

let test_fixed_access_counts () =
  (* Obliviousness: within one map, every find costs the same number of
     physical accesses regardless of key or presence; same for inserts
     and deletes. *)
  let server, m = make ~capacity:64 () in
  for i = 0 to 20 do
    Oram.Omap.insert m (k i) (v i)
  done;
  let trace = Servsim.Server.trace server in
  let count_of f =
    let before = Servsim.Trace.count trace in
    f ();
    Servsim.Trace.count trace - before
  in
  let c1 = count_of (fun () -> ignore (Oram.Omap.find m (k 0))) in
  let c2 = count_of (fun () -> ignore (Oram.Omap.find m (k 20))) in
  let c3 = count_of (fun () -> ignore (Oram.Omap.find m (k 999))) in
  Alcotest.(check int) "find counts equal (present/present)" c1 c2;
  Alcotest.(check int) "find counts equal (absent)" c1 c3;
  let i1 = count_of (fun () -> Oram.Omap.insert m (k 100) (v 1)) in
  let i2 = count_of (fun () -> Oram.Omap.insert m (k 0) (v 2)) in
  Alcotest.(check int) "insert counts equal" i1 i2;
  let d1 = count_of (fun () -> Oram.Omap.delete m (k 100)) in
  let d2 = count_of (fun () -> Oram.Omap.delete m (k 555)) in
  Alcotest.(check int) "delete counts equal" d1 d2

let test_recursive_backing_small_client () =
  let _, m_rec = make ~capacity:256 ~backing:`Recursive () in
  let _, m_path = make ~capacity:256 ~backing:`Path () in
  for i = 0 to 39 do
    Oram.Omap.insert m_rec (k i) (v i);
    Oram.Omap.insert m_path (k i) (v i)
  done;
  Alcotest.(check (option string)) "recursive find" (Some (v 17)) (Oram.Omap.find m_rec (k 17));
  let rb = Oram.Omap.client_state_bytes m_rec in
  let pb = Oram.Omap.client_state_bytes m_path in
  Alcotest.(check bool)
    (Printf.sprintf "recursive client %dB < path client %dB / 2" rb pb)
    true (rb < pb / 2)

let test_value_keyed_usage () =
  (* The FD use case: keys are encoded attribute values. *)
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'O') in
  let rng = Crypto.Rng.create 5 in
  let cfg =
    { Oram.Omap.capacity = 64; key_len = Relation.Codec.value_width; value_len = 8 }
  in
  let b =
    Oram.Omap.path_oram_backing ~name:"vk" ~capacity:64 ~node_len:(Oram.Omap.node_len cfg)
      server cipher (Crypto.Rng.int rng)
  in
  let m = Oram.Omap.create cfg b in
  let kv s = Relation.Codec.encode_value (Relation.Value.Str s) in
  Oram.Omap.insert m (kv "Boston") (v 0);
  Oram.Omap.insert m (kv "New York") (v 1);
  Alcotest.(check (option string)) "city label" (Some (v 0)) (Oram.Omap.find m (kv "Boston"));
  Alcotest.(check (option string)) "absent city" None (Oram.Omap.find m (kv "Chicago"))

let qcheck_model =
  QCheck.Test.make ~name:"omap = hashtable model" ~count:8
    QCheck.(list_of_size Gen.(10 -- 40) (pair (int_bound 30) (option (int_bound 1000))))
    (fun ops ->
      let _, m = make ~capacity:64 ~seed:(List.length ops * 3) () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (key, value) ->
          match value with
          | Some value ->
              Oram.Omap.insert m (k key) (v value);
              Hashtbl.replace model key value;
              true
          | None -> Option.map v (Hashtbl.find_opt model key) = Oram.Omap.find m (k key))
        ops
      && Oram.Omap.check_invariants m)

let suite =
  [
    Alcotest.test_case "empty map" `Quick test_empty;
    Alcotest.test_case "insert/find/overwrite" `Quick test_insert_find;
    Alcotest.test_case "ascending inserts stay balanced" `Quick test_sorted_sequence;
    Alcotest.test_case "deletions keep invariants" `Quick test_deletions_keep_invariants;
    Alcotest.test_case "random ops vs model" `Quick test_random_model;
    Alcotest.test_case "fixed access counts" `Quick test_fixed_access_counts;
    Alcotest.test_case "recursive backing shrinks client" `Slow test_recursive_backing_small_client;
    Alcotest.test_case "value-keyed usage" `Quick test_value_keyed_usage;
    QCheck_alcotest.to_alcotest qcheck_model;
  ]
