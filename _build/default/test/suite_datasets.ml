(* Dataset generator tests: shapes, determinism, planted FDs. *)

open Relation

let test_rnd_shape () =
  let t = Datasets.Rnd.generate ~rows:100 ~cols:7 () in
  Alcotest.(check int) "rows" 100 (Table.rows t);
  Alcotest.(check int) "cols" 7 (Table.cols t);
  (* Values in [1, 2^20]. *)
  for r = 0 to 99 do
    for c = 0 to 6 do
      match Table.cell t ~row:r ~col:c with
      | Value.Int v -> Alcotest.(check bool) "range" true (v >= 1 && v <= 1 lsl 20)
      | Value.Str _ -> Alcotest.fail "RND cells must be integers"
    done
  done

let test_rnd_deterministic () =
  let a = Datasets.Rnd.generate ~seed:4 ~rows:20 ~cols:3 () in
  let b = Datasets.Rnd.generate ~seed:4 ~rows:20 ~cols:3 () in
  let c = Datasets.Rnd.generate ~seed:5 ~rows:20 ~cols:3 () in
  Alcotest.(check bool) "same seed same data" true (Table.equal a b);
  Alcotest.(check bool) "different seed different data" false (Table.equal a c)

let test_adult_like () =
  let t = Datasets.Adult_like.generate ~rows:200 () in
  Alcotest.(check int) "14 columns (Table I)" 14 (Table.cols t);
  Alcotest.(check int) "rows" 200 (Table.rows t);
  let schema = Table.schema t in
  let edu = Schema.index schema "education" and num = Schema.index schema "education_num" in
  Alcotest.(check bool) "education -> education_num planted" true
    (Fdbase.Validator.holds t ~lhs:(Attrset.singleton edu) ~rhs:(Attrset.singleton num))

let test_letter_like () =
  let t = Datasets.Letter_like.generate ~rows:150 () in
  Alcotest.(check int) "16 columns (Table I)" 16 (Table.cols t);
  for r = 0 to 149 do
    for c = 0 to 15 do
      match Table.cell t ~row:r ~col:c with
      | Value.Int v -> Alcotest.(check bool) "0..15" true (v >= 0 && v <= 15)
      | Value.Str _ -> Alcotest.fail "letter cells must be integers"
    done
  done

let test_flight_like () =
  let t = Datasets.Flight_like.generate ~rows:300 () in
  Alcotest.(check int) "20 columns (Table I)" 20 (Table.cols t);
  let schema = Table.schema t in
  let idx = Schema.index schema in
  let holds lhs rhs =
    Fdbase.Validator.holds t
      ~lhs:(Attrset.of_list (List.map idx lhs))
      ~rhs:(Attrset.of_list (List.map idx rhs))
  in
  Alcotest.(check bool) "origin -> origin_city" true
    (holds [ "origin" ] [ "origin_city" ]);
  Alcotest.(check bool) "origin -> origin_state" true
    (holds [ "origin" ] [ "origin_state" ]);
  Alcotest.(check bool) "dest -> dest_city" true (holds [ "dest" ] [ "dest_city" ]);
  Alcotest.(check bool) "(carrier, flight_num) -> origin" true
    (holds [ "carrier"; "flight_num" ] [ "origin" ]);
  Alcotest.(check bool) "(carrier, flight_num) -> distance" true
    (holds [ "carrier"; "flight_num" ] [ "distance" ])

let test_default_row_counts () =
  (* Table I's row counts are exposed as constants (we don't generate the
     full sizes in tests). *)
  Alcotest.(check int) "adult" 48_842 Datasets.Adult_like.default_rows;
  Alcotest.(check int) "letter" 20_000 Datasets.Letter_like.default_rows;
  Alcotest.(check int) "flight" 500_000 Datasets.Flight_like.default_rows

let test_examples () =
  let fig1 = Datasets.Examples.fig1 () in
  Alcotest.(check int) "fig1 rows" 4 (Table.rows fig1);
  let emp = Datasets.Examples.employee () in
  let schema = Table.schema emp in
  Alcotest.(check bool) "Position -> Department" true
    (Fdbase.Validator.holds emp
       ~lhs:(Attrset.singleton (Schema.index schema "Position"))
       ~rhs:(Attrset.singleton (Schema.index schema "Department")))

let test_distinct_distributions () =
  (* The Table II argument needs datasets with different distributions:
     compare single-column cardinalities at equal sample size. *)
  let n = 256 in
  let rng = Crypto.Rng.create 5 in
  let card t c = Fdbase.Partition.cardinality (Fdbase.Partition.of_column (Table.column t c)) in
  let a = Table.sample_rows (Datasets.Adult_like.generate ~rows:1000 ()) (Crypto.Rng.int rng) n in
  let l = Table.sample_rows (Datasets.Letter_like.generate ~rows:1000 ()) (Crypto.Rng.int rng) n in
  let r = Datasets.Rnd.generate ~rows:n ~cols:3 () in
  (* RND columns are near-unique; letter columns have <= 16 values. *)
  Alcotest.(check bool) "rnd near-unique" true (card r 0 > n / 2);
  Alcotest.(check bool) "letter small domain" true (card l 0 <= 16);
  Alcotest.(check bool) "adult sex binary-ish" true (card a 9 <= 2)

let suite =
  [
    Alcotest.test_case "RND shape and range" `Quick test_rnd_shape;
    Alcotest.test_case "RND deterministic by seed" `Quick test_rnd_deterministic;
    Alcotest.test_case "Adult-like (planted FD)" `Quick test_adult_like;
    Alcotest.test_case "Letter-like" `Quick test_letter_like;
    Alcotest.test_case "Flight-like (route FDs)" `Quick test_flight_like;
    Alcotest.test_case "Table I row counts" `Quick test_default_row_counts;
    Alcotest.test_case "paper examples" `Quick test_examples;
    Alcotest.test_case "distributions differ" `Quick test_distinct_distributions;
  ]
