(* Frequency-revealing baseline (prior art) tests: correctness of the
   deterministic encryption and its FD discovery, and a demonstration
   that its leakage is real — the frequency-analysis attack recovers
   low-entropy columns. *)

open Relation

let key = String.make 16 'B'

let test_det_encryption_deterministic () =
  let d = Baseline.Det_encryption.create key in
  let c1 = Baseline.Det_encryption.encrypt d "hello" in
  let c2 = Baseline.Det_encryption.encrypt d "hello" in
  let c3 = Baseline.Det_encryption.encrypt d "world" in
  Alcotest.(check string) "equal plaintexts equal ciphertexts" c1 c2;
  Alcotest.(check bool) "different plaintexts differ" false (String.equal c1 c3)

let test_det_encryption_roundtrip () =
  let d = Baseline.Det_encryption.create key in
  List.iter
    (fun pt ->
      Alcotest.(check string) "roundtrip" pt
        (Baseline.Det_encryption.decrypt d (Baseline.Det_encryption.encrypt d pt)))
    [ ""; "a"; "16-byte-block-xx"; String.make 100 'q' ]

let test_det_encryption_key_separation () =
  let d1 = Baseline.Det_encryption.create (String.make 16 'A') in
  let d2 = Baseline.Det_encryption.create (String.make 16 'B') in
  Alcotest.(check bool) "different keys differ" false
    (String.equal (Baseline.Det_encryption.encrypt d1 "x") (Baseline.Det_encryption.encrypt d2 "x"))

let test_freq_fd_matches_tane () =
  List.iter
    (fun seed ->
      let t = Datasets.Rnd.generate_with_domain ~seed ~rows:30 ~cols:4 ~domain:3 () in
      let expect = Fdbase.Tane.fds t in
      let r = Baseline.Freq_fd.discover key t in
      let pp fds = String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) fds) in
      Alcotest.(check string) (Printf.sprintf "seed %d" seed) (pp expect) (pp r.Baseline.Freq_fd.fds))
    [ 1; 2; 3; 4 ]

let test_histogram_leaks_frequencies () =
  let schema = Schema.make [| "A" |] in
  let v x = Value.Int x in
  let t =
    Table.make schema [| [| v 1 |]; [| v 1 |]; [| v 1 |]; [| v 2 |]; [| v 2 |]; [| v 3 |] |]
  in
  let r = Baseline.Freq_fd.discover key t in
  Alcotest.(check (list int)) "histogram" [ 3; 2; 1 ]
    r.Baseline.Freq_fd.view.Baseline.Freq_fd.column_histograms.(0)

let test_attack_recovers_skewed_column () =
  (* A Zipf-like column; the attacker holds an auxiliary sample from the
     same distribution.  Rank matching should recover most cells. *)
  let rng = Crypto.Rng.create 7 in
  let draw () =
    (* P(v) ∝ 1/(v+1), v in 0..9, deterministic skew. *)
    let r = Crypto.Rng.int rng 100 in
    let v =
      if r < 35 then 0
      else if r < 55 then 1
      else if r < 68 then 2
      else if r < 78 then 3
      else if r < 85 then 4
      else 5 + Crypto.Rng.int rng 5
    in
    Value.Int v
  in
  let truth = Array.init 2000 (fun _ -> draw ()) in
  let auxiliary = Array.init 2000 (fun _ -> draw ()) in
  let det = Baseline.Det_encryption.create key in
  let ciphertexts =
    Array.map (fun v -> Baseline.Det_encryption.encrypt det (Codec.encode_value v)) truth
  in
  let res = Baseline.Leakage_attack.frequency_attack ~ciphertexts ~auxiliary ~truth in
  let rate = Baseline.Leakage_attack.recovery_rate res in
  Alcotest.(check bool)
    (Printf.sprintf "recovery rate %.2f > 0.6" rate)
    true (rate > 0.6)

let test_attack_fails_against_semantic_encryption () =
  (* The same attack against CBC$ ciphertexts: every ciphertext is unique,
     so rank matching recovers (at best) the most frequent value share. *)
  let rng = Crypto.Rng.create 8 in
  let truth = Array.init 500 (fun _ -> Value.Int (Crypto.Rng.int rng 10)) in
  let cipher = Crypto.Cell_cipher.create key in
  let ciphertexts =
    Array.map (fun v -> Crypto.Cell_cipher.encrypt cipher (Codec.encode_value v)) truth
  in
  let res = Baseline.Leakage_attack.frequency_attack ~ciphertexts ~auxiliary:truth ~truth in
  let rate = Baseline.Leakage_attack.recovery_rate res in
  Alcotest.(check bool)
    (Printf.sprintf "recovery rate %.3f < 0.3" rate)
    true (rate < 0.3)

let test_attack_empty () =
  let res =
    Baseline.Leakage_attack.frequency_attack ~ciphertexts:[||] ~auxiliary:[||] ~truth:[||]
  in
  Alcotest.(check (float 0.0)) "rate 0" 0.0 (Baseline.Leakage_attack.recovery_rate res)

let suite =
  [
    Alcotest.test_case "det encryption deterministic" `Quick test_det_encryption_deterministic;
    Alcotest.test_case "det encryption roundtrip" `Quick test_det_encryption_roundtrip;
    Alcotest.test_case "det encryption key separation" `Quick test_det_encryption_key_separation;
    Alcotest.test_case "freq FD discovery = TANE" `Quick test_freq_fd_matches_tane;
    Alcotest.test_case "histograms leaked" `Quick test_histogram_leaks_frequencies;
    Alcotest.test_case "frequency attack on det encryption" `Quick test_attack_recovers_skewed_column;
    Alcotest.test_case "attack fails on CBC$" `Quick test_attack_fails_against_semantic_encryption;
    Alcotest.test_case "attack on empty input" `Quick test_attack_empty;
  ]
