test/suite_edge.ml: Alcotest Array Attrset Core Datasets Dynamic Fdbase Format List Printf Protocol Relation Schema Servsim String Table Value
