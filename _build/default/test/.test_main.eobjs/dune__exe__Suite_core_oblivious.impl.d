test/suite_core_oblivious.ml: Alcotest Array Attrset Char Core Crypto Datasets Dynamic Fdbase Format Hashtbl Int64 List Protocol Relation Schema Servsim Session String Table Value
