test/suite_crypto.ml: Aes128 Alcotest Array Bytes Cbc Cell_cipher Char Crypto Ctr_prg Gen Hex Int64 List Printf QCheck QCheck_alcotest Rng String
