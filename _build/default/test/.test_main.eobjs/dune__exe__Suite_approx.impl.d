test/suite_approx.ml: Alcotest Approx Attrset Core Crypto Datasets Fd Fdbase Format List Printf Relation Schema String Table Tane Value
