test/suite_omap.ml: Alcotest Crypto Fun Gen Hashtbl List Option Oram Printf QCheck QCheck_alcotest Relation Servsim String
