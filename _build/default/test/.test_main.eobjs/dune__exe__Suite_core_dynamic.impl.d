test/suite_core_dynamic.ml: Alcotest Array Attrset Core Crypto Datasets Dynamic Fdbase Format Fun List Option Relation Schema String Table Value
