test/suite_recursive_oram.ml: Alcotest Crypto Gen Hashtbl List Oram Printf QCheck QCheck_alcotest Relation Servsim String
