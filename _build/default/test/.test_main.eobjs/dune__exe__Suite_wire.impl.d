test/suite_wire.ml: Alcotest Char Codec Crypto Fun Int64 Oram QCheck QCheck_alcotest Relation Servsim String Sys Unix
