test/suite_bucket_sort.ml: Alcotest Array Crypto Fun Gen List Osort Printf QCheck QCheck_alcotest
