test/suite_osort.ml: Alcotest Array Crypto Gen List Osort Printf QCheck QCheck_alcotest
