test/suite_relation.ml: Alcotest Array Attrset Char Codec Crypto Csv Hashtbl List Printf QCheck QCheck_alcotest Relation Schema String Table Value
