test/suite_datasets.ml: Alcotest Attrset Crypto Datasets Fdbase List Relation Schema Table Value
