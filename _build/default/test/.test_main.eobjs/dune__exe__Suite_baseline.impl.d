test/suite_baseline.ml: Alcotest Array Baseline Codec Crypto Datasets Fdbase Format List Printf Relation Schema String Table Value
