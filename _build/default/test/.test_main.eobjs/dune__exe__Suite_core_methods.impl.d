test/suite_core_methods.ml: Alcotest Array Attrset Core Crypto Datasets Enc_db Enclave Fdbase Format List Or_oram_method Printf Protocol Relation Schema Servsim Session Sort_method String Table Value
