test/suite_fastfds.ml: Alcotest Array Attrset Crypto Datasets Fastfds Fd Fdbase Format List Printf QCheck QCheck_alcotest Relation Schema String Table Tane Validator Value
