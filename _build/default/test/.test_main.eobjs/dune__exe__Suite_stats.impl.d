test/suite_stats.ml: Alcotest Array Crypto Float Gen Printf QCheck QCheck_alcotest Stats
