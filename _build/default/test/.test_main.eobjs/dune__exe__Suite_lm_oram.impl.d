test/suite_lm_oram.ml: Alcotest Attrset Core Datasets Enc_db Fdbase Format List Lm_oram_method Or_oram_method Printf Relation Servsim Session String Table
