test/suite_oram.ml: Alcotest Array Crypto Gen Hashtbl Int64 List Option Oram QCheck QCheck_alcotest Relation Servsim String
