test/suite_fdbase.ml: Alcotest Array Attrset Crypto Fd Fdbase Format Lattice List Partition Printf QCheck QCheck_alcotest Relation Schema String Table Tane Validator Value
