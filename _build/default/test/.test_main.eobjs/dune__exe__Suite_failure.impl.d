test/suite_failure.ml: Alcotest Bytes Char Codec Core Crypto Csv Datasets List Oram Printf Relation Servsim String Sys Table Unix Value
