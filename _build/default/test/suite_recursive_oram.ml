(* Recursive PathORAM tests: functional equivalence to a model, the
   client-memory reduction it exists for, and access-pattern shape
   independence. *)

let make ?(capacity = 512) ?(fanout = 16) ?(top_cutoff = 8) ?(seed = 5) () =
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'R') in
  let rng = Crypto.Rng.create seed in
  let o =
    Oram.Recursive_path_oram.setup ~name:"rec"
      { capacity; payload_len = 8; fanout; top_cutoff }
      server cipher (Crypto.Rng.int rng)
  in
  (server, o)

let enc_val i = Relation.Codec.encode_int i

let test_basic_ops () =
  let _, o = make () in
  Alcotest.(check (option string)) "absent" None (Oram.Recursive_path_oram.read o ~key:3);
  Oram.Recursive_path_oram.write o ~key:3 (enc_val 33);
  Alcotest.(check (option string)) "present" (Some (enc_val 33))
    (Oram.Recursive_path_oram.read o ~key:3);
  Oram.Recursive_path_oram.write o ~key:3 (enc_val 44);
  Alcotest.(check (option string)) "overwritten" (Some (enc_val 44))
    (Oram.Recursive_path_oram.read o ~key:3);
  Oram.Recursive_path_oram.remove o ~key:3;
  Alcotest.(check (option string)) "removed" None (Oram.Recursive_path_oram.read o ~key:3)

let test_recursion_depth () =
  let _, o = make ~capacity:512 ~fanout:16 ~top_cutoff:8 () in
  (* 512 -> 32 -> 2: data tree + two map trees. *)
  Alcotest.(check int) "three trees" 3 (Oram.Recursive_path_oram.recursion_depth o);
  let _, small = make ~capacity:6 ~top_cutoff:8 () in
  Alcotest.(check int) "flat when tiny" 1 (Oram.Recursive_path_oram.recursion_depth small)

let test_model_random_ops () =
  let capacity = 128 in
  let _, o = make ~capacity ~seed:11 () in
  let model = Hashtbl.create 64 in
  let rng = Crypto.Rng.create 99 in
  for step = 1 to 1200 do
    let k = Crypto.Rng.int rng capacity in
    match Crypto.Rng.int rng 3 with
    | 0 ->
        let v = enc_val (Crypto.Rng.int rng 100000) in
        Oram.Recursive_path_oram.write o ~key:k v;
        Hashtbl.replace model k v
    | 1 ->
        Oram.Recursive_path_oram.remove o ~key:k;
        Hashtbl.remove model k
    | _ ->
        let expect = Hashtbl.find_opt model k in
        let got = Oram.Recursive_path_oram.read o ~key:k in
        if expect <> got then Alcotest.failf "step %d key %d mismatch" step k
  done;
  Alcotest.(check int) "live count" (Hashtbl.length model)
    (Oram.Recursive_path_oram.live_blocks o)

let test_client_memory_sublinear () =
  (* The whole point: client state far below the flat position map. *)
  let n = 4096 in
  let server = Servsim.Server.create () in
  let cipher = Crypto.Cell_cipher.create (String.make 16 'R') in
  let rng = Crypto.Rng.create 5 in
  let flat =
    Oram.Path_oram.setup ~name:"flat" { capacity = n; key_len = 8; payload_len = 8 } server
      cipher (Crypto.Rng.int rng)
  in
  let rec_ =
    Oram.Recursive_path_oram.setup ~name:"rec"
      { capacity = n; payload_len = 8; fanout = 16; top_cutoff = 16 }
      server cipher (Crypto.Rng.int rng)
  in
  for i = 0 to 499 do
    Oram.Path_oram.write flat ~key:(Relation.Codec.encode_int i) (enc_val i);
    Oram.Recursive_path_oram.write rec_ ~key:i (enc_val i)
  done;
  let flat_bytes = Oram.Path_oram.client_state_bytes flat in
  let rec_bytes = Oram.Recursive_path_oram.client_state_bytes rec_ in
  Alcotest.(check bool)
    (Printf.sprintf "recursive %dB < flat %dB / 2" rec_bytes flat_bytes)
    true
    (rec_bytes < flat_bytes / 2)

let test_shape_data_independent () =
  let run values =
    let server, o = make ~capacity:64 ~seed:21 () in
    List.iteri (fun i v -> Oram.Recursive_path_oram.write o ~key:i (enc_val v)) values;
    ignore (Oram.Recursive_path_oram.read o ~key:0);
    ( Servsim.Trace.shape_digest (Servsim.Server.trace server),
      Servsim.Trace.count (Servsim.Server.trace server) )
  in
  let s1, c1 = run [ 1; 1; 1; 1 ] in
  let s2, c2 = run [ 9; 8; 7; 6 ] in
  Alcotest.(check int64) "same shape" s1 s2;
  Alcotest.(check int) "same count" c1 c2

let test_bounds_checked () =
  let _, o = make ~capacity:16 () in
  Alcotest.(check bool) "negative key" true
    (match Oram.Recursive_path_oram.read o ~key:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "key too large" true
    (match Oram.Recursive_path_oram.read o ~key:16 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_destroy () =
  let server, o = make () in
  Alcotest.(check bool) "allocated" true (Servsim.Server.total_bytes server > 0);
  Oram.Recursive_path_oram.destroy o;
  Alcotest.(check int) "freed" 0 (Servsim.Server.total_bytes server)

let qcheck_model =
  QCheck.Test.make ~name:"recursive oram = model (random op lists)" ~count:20
    QCheck.(list_of_size Gen.(5 -- 50) (pair (int_bound 31) (option (int_bound 100))))
    (fun ops ->
      let _, o = make ~capacity:32 ~seed:(1 + List.length ops) () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, v) ->
          match v with
          | Some v ->
              Oram.Recursive_path_oram.write o ~key:k (enc_val v);
              Hashtbl.replace model k (enc_val v);
              true
          | None -> Hashtbl.find_opt model k = Oram.Recursive_path_oram.read o ~key:k)
        ops)

let suite =
  [
    Alcotest.test_case "basic ops" `Quick test_basic_ops;
    Alcotest.test_case "recursion depth" `Quick test_recursion_depth;
    Alcotest.test_case "random ops vs model" `Quick test_model_random_ops;
    Alcotest.test_case "client memory sublinear" `Quick test_client_memory_sublinear;
    Alcotest.test_case "shape data-independent" `Quick test_shape_data_independent;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    Alcotest.test_case "destroy frees storage" `Quick test_destroy;
    QCheck_alcotest.to_alcotest qcheck_model;
  ]
