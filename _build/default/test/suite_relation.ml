(* Relation substrate tests: values, attribute sets, codecs, tables, CSV. *)

open Relation

let v_int x = Value.Int x
let v_str s = Value.Str s

let test_value_order () =
  Alcotest.(check bool) "int < str" true (Value.compare (v_int 5) (v_str "a") < 0);
  Alcotest.(check bool) "int order" true (Value.compare (v_int (-3)) (v_int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (v_str "a") (v_str "b") < 0);
  Alcotest.(check bool) "equal" true (Value.equal (v_str "x") (v_str "x"))

let test_value_of_string () =
  Alcotest.(check bool) "int parse" true (Value.equal (Value.of_string "42") (v_int 42));
  Alcotest.(check bool) "str parse" true (Value.equal (Value.of_string "4x2") (v_str "4x2"))

let test_attrset_basics () =
  let s = Attrset.of_list [ 3; 1; 5 ] in
  Alcotest.(check (list int)) "elements sorted" [ 1; 3; 5 ] (Attrset.elements s);
  Alcotest.(check int) "cardinal" 3 (Attrset.cardinal s);
  Alcotest.(check bool) "mem" true (Attrset.mem s 3);
  Alcotest.(check bool) "not mem" false (Attrset.mem s 2);
  Alcotest.(check (list int)) "remove" [ 1; 5 ] (Attrset.elements (Attrset.remove s 3));
  Alcotest.(check bool) "subset" true (Attrset.subset (Attrset.of_list [ 1; 5 ]) s);
  Alcotest.(check bool) "not subset" false (Attrset.subset (Attrset.of_list [ 1; 2 ]) s)

let test_attrset_generators () =
  let s = Attrset.of_list [ 2; 4; 7 ] in
  let x1, x2 = Attrset.choose_two_generators s in
  Alcotest.(check (list int)) "x1 = s minus smallest" [ 4; 7 ] (Attrset.elements x1);
  Alcotest.(check (list int)) "x2 = s minus second" [ 2; 7 ] (Attrset.elements x2);
  Alcotest.(check (list int)) "union back" [ 2; 4; 7 ]
    (Attrset.elements (Attrset.union x1 x2));
  Alcotest.check_raises "needs two"
    (Invalid_argument "Attrset.choose_two_generators: need |X| >= 2") (fun () ->
      ignore (Attrset.choose_two_generators (Attrset.singleton 1)))

let test_codec_int_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) "int roundtrip" v (Codec.decode_int (Codec.encode_int v)))
    [ 0; 1; -1; 42; max_int; min_int; 1 lsl 40 ]

let test_codec_value_roundtrip () =
  List.iter
    (fun v ->
      let e = Codec.encode_value v in
      Alcotest.(check int) "fixed width" Codec.value_width (String.length e);
      Alcotest.(check bool) "roundtrip" true (Value.equal v (Codec.decode_value e)))
    [ v_int 0; v_int (-77); v_int max_int; v_str ""; v_str "hello"; v_str (String.make 22 'z') ]

let test_codec_value_order_preserved () =
  (* Byte-lexicographic order of encodings matches value order for ints. *)
  let vals = [ -1000; -1; 0; 1; 5; 1000000 ] in
  let sign x = compare x 0 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ea = Codec.encode_value (v_int a) and eb = Codec.encode_value (v_int b) in
          Alcotest.(check int)
            (Printf.sprintf "%d vs %d" a b)
            (sign (compare a b))
            (sign (String.compare ea eb)))
        vals)
    vals

let test_codec_too_long_string () =
  Alcotest.(check bool) "raises" true
    (match Codec.encode_value (v_str (String.make 23 'a')) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_codec_injective_random () =
  let rng = Crypto.Rng.create 5 in
  let seen = Hashtbl.create 256 in
  for _ = 1 to 2000 do
    let v =
      if Crypto.Rng.bool rng then v_int (Crypto.Rng.int rng 1000 - 500)
      else v_str (String.init (Crypto.Rng.int rng 8) (fun _ -> Char.chr (97 + Crypto.Rng.int rng 26)))
    in
    let e = Codec.encode_value v in
    match Hashtbl.find_opt seen e with
    | Some v' -> Alcotest.(check bool) "injective" true (Value.equal v v')
    | None -> Hashtbl.replace seen e v
  done

let fig1_table () =
  (* The paper's Fig. 1 example. *)
  let schema = Schema.make [| "Name"; "City"; "Birth" |] in
  Table.make schema
    [|
      [| v_str "Alice"; v_str "Boston"; v_str "Jan" |];
      [| v_str "Bob"; v_str "Boston"; v_str "May" |];
      [| v_str "Bob"; v_str "Boston"; v_str "Jan" |];
      [| v_str "Carol"; v_str "New York"; v_str "Sep" |];
    |]

let test_table_basics () =
  let t = fig1_table () in
  Alcotest.(check int) "rows" 4 (Table.rows t);
  Alcotest.(check int) "cols" 3 (Table.cols t);
  Alcotest.(check bool) "cell" true
    (Value.equal (Table.cell t ~row:2 ~col:0) (v_str "Bob"));
  let col = Table.column t 1 in
  Alcotest.(check int) "column length" 4 (Array.length col)

let test_table_append_remove () =
  let t = fig1_table () in
  let t2 = Table.append_row t [| v_str "Dan"; v_str "LA"; v_str "Feb" |] in
  Alcotest.(check int) "appended" 5 (Table.rows t2);
  Alcotest.(check int) "original untouched" 4 (Table.rows t);
  let t3 = Table.remove_row t2 0 in
  Alcotest.(check int) "removed" 4 (Table.rows t3);
  Alcotest.(check bool) "shifted" true
    (Value.equal (Table.cell t3 ~row:0 ~col:0) (v_str "Bob"))

let test_table_sample () =
  let t = fig1_table () in
  let rng = Crypto.Rng.create 3 in
  let s = Table.sample_rows t (Crypto.Rng.int rng) 2 in
  Alcotest.(check int) "sample size" 2 (Table.rows s)

let test_csv_roundtrip () =
  let t = fig1_table () in
  let doc = Csv.to_string t in
  let t' = Csv.of_string doc in
  Alcotest.(check bool) "roundtrip" true (Table.equal t t')

let test_csv_quoting () =
  let fields = Csv.parse_line "a,\"b,c\",\"d\"\"e\",f" in
  Alcotest.(check (list string)) "quoted fields" [ "a"; "b,c"; "d\"e"; "f" ] fields

let test_schema_lookup () =
  let s = Schema.make [| "A"; "B"; "C" |] in
  Alcotest.(check int) "index" 1 (Schema.index s "B");
  Alcotest.(check (list int)) "attrset of names" [ 0; 2 ]
    (Attrset.elements (Schema.attrset_of_names s [ "A"; "C" ]));
  Alcotest.(check bool) "duplicate rejected" true
    (match Schema.make [| "A"; "A" |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qcheck_attrset_union_cardinal =
  QCheck.Test.make ~name:"attrset |A∪B| + |A∩B| = |A| + |B|" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (a, b) ->
      let a = Attrset.of_int a and b = Attrset.of_int b in
      Attrset.cardinal (Attrset.union a b) + Attrset.cardinal (Attrset.inter a b)
      = Attrset.cardinal a + Attrset.cardinal b)

let qcheck_codec_value_int_order =
  QCheck.Test.make ~name:"codec int encoding is order-preserving" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let sign x = compare x 0 in
      let ea = Codec.encode_value (v_int a) and eb = Codec.encode_value (v_int b) in
      sign (compare a b) = sign (String.compare ea eb))

let suite =
  [
    Alcotest.test_case "value order" `Quick test_value_order;
    Alcotest.test_case "value of_string" `Quick test_value_of_string;
    Alcotest.test_case "attrset basics" `Quick test_attrset_basics;
    Alcotest.test_case "attrset generators (Property 1)" `Quick test_attrset_generators;
    Alcotest.test_case "codec int roundtrip" `Quick test_codec_int_roundtrip;
    Alcotest.test_case "codec value roundtrip" `Quick test_codec_value_roundtrip;
    Alcotest.test_case "codec order preserved" `Quick test_codec_value_order_preserved;
    Alcotest.test_case "codec string too long" `Quick test_codec_too_long_string;
    Alcotest.test_case "codec injective (random)" `Quick test_codec_injective_random;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table append/remove" `Quick test_table_append_remove;
    Alcotest.test_case "table sample" `Quick test_table_sample;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    QCheck_alcotest.to_alcotest qcheck_attrset_union_cardinal;
    QCheck_alcotest.to_alcotest qcheck_codec_value_int_order;
  ]
