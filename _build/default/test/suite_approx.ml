(* Approximate FD discovery tests. *)

open Relation
open Fdbase

let v x = Value.Int x

let dirty_table () =
  (* A -> B holds except for one dirty row (of 8): e_split = 1/8. *)
  let schema = Schema.make [| "A"; "B" |] in
  Table.make schema
    [|
      [| v 1; v 10 |]; [| v 1; v 10 |]; [| v 2; v 20 |]; [| v 2; v 20 |];
      [| v 3; v 30 |]; [| v 3; v 30 |]; [| v 4; v 40 |]; [| v 4; v 99 |];
    |]

let test_split_error () =
  let t = dirty_table () in
  Alcotest.(check (float 1e-9)) "A->B error 1/8" 0.125
    (Approx.split_error t ~lhs:(Attrset.singleton 0) ~rhs:1);
  (* B -> A is exact: every B value has one A value. *)
  Alcotest.(check (float 1e-9)) "B->A exact" 0.0
    (Approx.split_error t ~lhs:(Attrset.singleton 1) ~rhs:0)

let test_threshold_behaviour () =
  let t = dirty_table () in
  let has eps lhs rhs =
    List.exists
      (fun fd -> Fd.equal fd { Fd.lhs = Attrset.of_list lhs; rhs })
      (Approx.discover_plaintext ~epsilon:eps t).Approx.fds
  in
  let covered eps lhs rhs =
    List.exists
      (fun fd -> fd.Fd.rhs = rhs && Attrset.subset fd.Fd.lhs (Attrset.of_list lhs))
      (Approx.discover_plaintext ~epsilon:eps t).Approx.fds
  in
  Alcotest.(check bool) "A->B rejected at eps=0" false (has 0.0 [ 0 ] 1);
  Alcotest.(check bool) "A->B accepted at eps=0.125" true (has 0.125 [ 0 ] 1);
  (* At eps=0.5 even ∅ -> B becomes valid (4 of 5 B-classes removable),
     which subsumes A -> B; coverage must persist. *)
  Alcotest.(check bool) "A->B covered at eps=0.5" true (covered 0.5 [ 0 ] 1);
  Alcotest.(check bool) "B->A accepted always" true (has 0.0 [ 1 ] 0)

let test_epsilon_zero_matches_tane () =
  (* With ε = 0 and full depth, the approximate search finds exactly the
     exact minimal FDs. *)
  List.iter
    (fun seed ->
      let t = Datasets.Rnd.generate_with_domain ~seed ~rows:25 ~cols:4 ~domain:3 () in
      let exact = Tane.fds t in
      let approx = (Approx.discover_plaintext ~epsilon:0.0 ~max_lhs:3 t).Approx.fds in
      let pp fds = String.concat ";" (List.map (Format.asprintf "%a" Fd.pp) fds) in
      Alcotest.(check string) (Printf.sprintf "seed %d" seed) (pp exact) (pp approx))
    [ 1; 2; 3; 5; 8 ]

let test_all_results_within_epsilon () =
  let rng = Crypto.Rng.create 4 in
  for _ = 1 to 10 do
    let t =
      Datasets.Rnd.generate_with_domain ~seed:(Crypto.Rng.int rng 1000) ~rows:30 ~cols:4
        ~domain:4 ()
    in
    let epsilon = 0.2 in
    List.iter
      (fun fd ->
        let e = Approx.split_error t ~lhs:fd.Fd.lhs ~rhs:fd.Fd.rhs in
        Alcotest.(check bool)
          (Format.asprintf "%a within eps (e=%.3f)" Fd.pp fd e)
          true
          (e <= epsilon +. 1e-9))
      (Approx.discover_plaintext ~epsilon ~max_lhs:2 t).Approx.fds
  done

let test_results_are_minimal () =
  let rng = Crypto.Rng.create 9 in
  for _ = 1 to 10 do
    let t =
      Datasets.Rnd.generate_with_domain ~seed:(Crypto.Rng.int rng 1000) ~rows:30 ~cols:4
        ~domain:3 ()
    in
    let fds = (Approx.discover_plaintext ~epsilon:0.1 ~max_lhs:3 t).Approx.fds in
    List.iter
      (fun fd ->
        List.iter
          (fun fd' ->
            if fd.Fd.rhs = fd'.Fd.rhs && not (Attrset.equal fd.Fd.lhs fd'.Fd.lhs) then
              Alcotest.(check bool) "no subsumption" false
                (Attrset.subset fd'.Fd.lhs fd.Fd.lhs))
          fds)
      fds
  done

let test_monotone_in_epsilon () =
  (* Every FD accepted at ε remains implied at ε' >= ε: its lhs (or a
     subset) must still be accepted. *)
  let t = Datasets.Rnd.generate_with_domain ~seed:77 ~rows:40 ~cols:4 ~domain:3 () in
  let at eps = (Approx.discover_plaintext ~epsilon:eps ~max_lhs:2 t).Approx.fds in
  let small = at 0.05 and large = at 0.2 in
  List.iter
    (fun fd ->
      Alcotest.(check bool)
        (Format.asprintf "%a still covered" Fd.pp fd)
        true
        (List.exists
           (fun fd' -> fd'.Fd.rhs = fd.Fd.rhs && Attrset.subset fd'.Fd.lhs fd.Fd.lhs)
           large))
    small

let test_secure_matches_plaintext () =
  let t = dirty_table () in
  let expect = (Approx.discover_plaintext ~epsilon:0.125 ~max_lhs:1 t).Approx.fds in
  List.iter
    (fun m ->
      let got = (Core.Protocol.discover_approx ~epsilon:0.125 ~max_lhs:1 m t).Approx.fds in
      let pp fds = String.concat ";" (List.map (Format.asprintf "%a" Fd.pp) fds) in
      Alcotest.(check string) (Core.Protocol.method_name m) (pp expect) (pp got))
    [ Core.Protocol.Or_oram; Core.Protocol.Ex_oram; Core.Protocol.Sort ]

let test_invalid_epsilon () =
  Alcotest.(check bool) "negative rejected" true
    (match Approx.discover_plaintext ~epsilon:(-0.1) (dirty_table ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "split error" `Quick test_split_error;
    Alcotest.test_case "threshold behaviour" `Quick test_threshold_behaviour;
    Alcotest.test_case "eps=0 matches TANE" `Quick test_epsilon_zero_matches_tane;
    Alcotest.test_case "results within epsilon" `Quick test_all_results_within_epsilon;
    Alcotest.test_case "results minimal" `Quick test_results_are_minimal;
    Alcotest.test_case "monotone in epsilon" `Quick test_monotone_in_epsilon;
    Alcotest.test_case "secure = plaintext" `Quick test_secure_matches_plaintext;
    Alcotest.test_case "invalid epsilon rejected" `Quick test_invalid_epsilon;
  ]
