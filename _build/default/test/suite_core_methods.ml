(* Core protocol correctness: every oblivious method must compute exactly
   the plaintext partition cardinalities and exactly the TANE FD set. *)

open Relation
open Core

let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fdbase.Fd.pp) fds)

let random_table ?(seed = 7) ~n ~m ~domain () =
  Datasets.Rnd.generate_with_domain ~seed ~rows:n ~cols:m ~domain ()

let methods = [ Protocol.Or_oram; Protocol.Ex_oram; Protocol.Sort ]

let test_partition_cardinality_single () =
  let t = random_table ~n:50 ~m:3 ~domain:5 () in
  List.iter
    (fun m ->
      for col = 0 to 2 do
        let expect =
          Fdbase.Partition.cardinality (Fdbase.Partition.of_column (Table.column t col))
        in
        let got, _ = Protocol.partition_cardinality m t (Attrset.singleton col) in
        Alcotest.(check int)
          (Printf.sprintf "%s col %d" (Protocol.method_name m) col)
          expect got
      done)
    methods

let test_partition_cardinality_pairs () =
  let t = random_table ~seed:8 ~n:40 ~m:4 ~domain:4 () in
  List.iter
    (fun m ->
      List.iter
        (fun (a, b) ->
          let x = Attrset.of_list [ a; b ] in
          let expect = Fdbase.Partition.cardinality (Fdbase.Partition.of_table t x) in
          let got, _ = Protocol.partition_cardinality m t x in
          Alcotest.(check int)
            (Printf.sprintf "%s {%d,%d}" (Protocol.method_name m) a b)
            expect got)
        [ (0, 1); (1, 2); (0, 3) ])
    methods

let test_partition_cardinality_triple () =
  let t = random_table ~seed:9 ~n:30 ~m:4 ~domain:3 () in
  let x = Attrset.of_list [ 0; 1; 2 ] in
  let expect = Fdbase.Partition.cardinality (Fdbase.Partition.of_table t x) in
  List.iter
    (fun m ->
      let got, _ = Protocol.partition_cardinality m t x in
      Alcotest.(check int) (Protocol.method_name m) expect got)
    methods

let test_discover_fig1 () =
  let t = Datasets.Examples.fig1 () in
  let expect = Fdbase.Tane.fds t in
  List.iter
    (fun m ->
      let r = Protocol.discover m t in
      Alcotest.(check string) (Protocol.method_name m) (pp_fds expect) (pp_fds r.Protocol.fds))
    methods

let test_discover_employee () =
  let t = Datasets.Examples.employee () in
  let expect = Fdbase.Tane.fds t in
  List.iter
    (fun m ->
      let r = Protocol.discover m t in
      Alcotest.(check string) (Protocol.method_name m) (pp_fds expect) (pp_fds r.Protocol.fds);
      (* The paper's §I motivation: Position → Department must hold. *)
      let schema = Table.schema t in
      let pos = Schema.index schema "Position" and dep = Schema.index schema "Department" in
      Alcotest.(check bool) "Position -> Department" true
        (List.exists
           (fun fd -> Fdbase.Fd.equal fd { Fdbase.Fd.lhs = Attrset.singleton pos; rhs = dep })
           r.Protocol.fds))
    methods

let test_discover_random_matches_tane () =
  List.iter
    (fun seed ->
      let t = random_table ~seed ~n:24 ~m:4 ~domain:3 () in
      let expect = Fdbase.Tane.fds t in
      List.iter
        (fun m ->
          let r = Protocol.discover m t in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d" (Protocol.method_name m) seed)
            (pp_fds expect) (pp_fds r.Protocol.fds))
        methods)
    [ 1; 2; 3 ]

let test_discover_dataset_samples () =
  (* Small samples of the three "real-world" stand-ins. *)
  let rng = Crypto.Rng.create 99 in
  let tables =
    [
      ("adult", Datasets.Adult_like.generate ~rows:64 ());
      ("letter", Datasets.Letter_like.generate ~rows:64 ());
      ("flight", Datasets.Flight_like.generate ~rows:64 ());
    ]
  in
  List.iter
    (fun (name, full) ->
      let t = Table.sample_rows full (Crypto.Rng.int rng) 32 in
      let expect = (Fdbase.Tane.discover ~max_lhs:2 t).Fdbase.Lattice.fds in
      List.iter
        (fun m ->
          let r = Protocol.discover ~max_lhs:2 m t in
          Alcotest.(check string)
            (Printf.sprintf "%s on %s" (Protocol.method_name m) name)
            (pp_fds expect) (pp_fds r.Protocol.fds))
        methods)
    tables

let test_enclave_matches_tane () =
  let t = random_table ~seed:5 ~n:32 ~m:4 ~domain:3 () in
  let expect = Fdbase.Tane.fds t in
  let r = Enclave.discover t in
  Alcotest.(check string) "enclave sort" (pp_fds expect) (pp_fds r.Protocol.fds)

let test_enclave_partition () =
  let t = random_table ~seed:6 ~n:50 ~m:3 ~domain:4 () in
  let x = Attrset.of_list [ 0; 1 ] in
  let expect = Fdbase.Partition.cardinality (Fdbase.Partition.of_table t x) in
  let card, dt = Enclave.partition_cardinality t x in
  Alcotest.(check int) "cardinality" expect card;
  Alcotest.(check bool) "time positive" true (dt >= 0.0)

let test_sort_method_networks_agree () =
  let t = random_table ~seed:12 ~n:40 ~m:3 ~domain:4 () in
  let x = Attrset.of_list [ 0; 2 ] in
  let expect = Fdbase.Partition.cardinality (Fdbase.Partition.of_table t x) in
  let session = Session.create ~n:40 ~m:3 () in
  let db = Enc_db.outsource session t in
  let run network =
    let h1 = Sort_method.single ~network db 0 in
    let h2 = Sort_method.single ~network db 2 in
    Sort_method.cardinality (Sort_method.combine ~network session x h1 h2)
  in
  Alcotest.(check int) "bitonic" expect (run Sort_method.Bitonic);
  Alcotest.(check int) "odd-even-merge" expect (run Sort_method.Odd_even_merge)

let test_sort_labels_preserve_partition () =
  (* The label array of Sort must induce the same partition as plaintext. *)
  let t = random_table ~seed:13 ~n:30 ~m:2 ~domain:3 () in
  let session = Session.create ~n:30 ~m:2 () in
  let db = Enc_db.outsource session t in
  let h = Sort_method.single db 0 in
  let labels = Sort_method.labels h in
  let col = Table.column t 0 in
  for i = 0 to 29 do
    for j = 0 to 29 do
      Alcotest.(check bool)
        (Printf.sprintf "rows %d,%d" i j)
        (Value.equal col.(i) col.(j))
        (labels.(i) = labels.(j))
    done
  done

let test_or_oram_labels_preserve_partition () =
  let t = random_table ~seed:14 ~n:25 ~m:2 ~domain:3 () in
  let session = Session.create ~n:25 ~m:2 () in
  let db = Enc_db.outsource session t in
  let h = Or_oram_method.single db 1 in
  let col = Table.column t 1 in
  let labels = Array.init 25 (fun row -> Or_oram_method.label_of_row h ~row) in
  for i = 0 to 24 do
    for j = 0 to 24 do
      Alcotest.(check bool)
        (Printf.sprintf "rows %d,%d" i j)
        (Value.equal col.(i) col.(j))
        (labels.(i) = labels.(j))
    done
  done

let test_string_values_supported () =
  let t = Datasets.Examples.employee () in
  let x = Schema.attrset_of_names (Table.schema t) [ "Position" ] in
  let expect = Fdbase.Partition.cardinality (Fdbase.Partition.of_table t x) in
  List.iter
    (fun m ->
      let got, _ = Protocol.partition_cardinality m t x in
      Alcotest.(check int) (Protocol.method_name m) expect got)
    methods

let test_parallel_sort_method () =
  let t = random_table ~seed:15 ~n:64 ~m:2 ~domain:5 () in
  let session = Session.create ~n:64 ~m:2 () in
  let db = Enc_db.outsource session t in
  (* Tracing off during multi-domain execution. *)
  Servsim.Trace.set_enabled (Session.trace session) false;
  let h = Sort_method.single ~domains:4 db 0 in
  let expect =
    Fdbase.Partition.cardinality (Fdbase.Partition.of_column (Table.column t 0))
  in
  Alcotest.(check int) "parallel cardinality" expect (Sort_method.cardinality h)

let test_lattice_releases_storage () =
  (* The lattice releases pruned/used handles; after discovery the server
     holds little beyond the encrypted database itself. *)
  let t = random_table ~seed:17 ~n:24 ~m:4 ~domain:3 () in
  let session = Session.create ~n:24 ~m:4 () in
  let db = Enc_db.outsource session t in
  ignore db;
  let db_bytes = Servsim.Server.total_bytes session.Session.server in
  ignore (Fdbase.Lattice.discover ~m:4 ~n:24 (Or_oram_method.oracle session db));
  let after = Servsim.Server.total_bytes session.Session.server in
  Alcotest.(check bool)
    (Printf.sprintf "after %dB <= db %dB (all ORAMs released)" after db_bytes)
    true (after <= db_bytes)

let test_cost_report_sane () =
  let t = random_table ~seed:16 ~n:32 ~m:3 ~domain:4 () in
  let r = Protocol.discover Protocol.Sort t in
  Alcotest.(check bool) "bytes moved" true (r.Protocol.cost.Servsim.Cost.bytes_to_client > 0);
  Alcotest.(check bool) "round trips" true (r.Protocol.cost.Servsim.Cost.round_trips > 0);
  Alcotest.(check bool) "elapsed positive" true (r.Protocol.elapsed_s > 0.0);
  Alcotest.(check bool) "trace nonempty" true (r.Protocol.trace_count > 0)

let suite =
  [
    Alcotest.test_case "partition |X|=1 = plaintext" `Quick test_partition_cardinality_single;
    Alcotest.test_case "partition |X|=2 = plaintext" `Quick test_partition_cardinality_pairs;
    Alcotest.test_case "partition |X|=3 = plaintext" `Quick test_partition_cardinality_triple;
    Alcotest.test_case "discover = TANE on Fig. 1" `Quick test_discover_fig1;
    Alcotest.test_case "discover = TANE on employee" `Quick test_discover_employee;
    Alcotest.test_case "discover = TANE on random tables" `Slow test_discover_random_matches_tane;
    Alcotest.test_case "discover = TANE on dataset samples" `Slow test_discover_dataset_samples;
    Alcotest.test_case "enclave discover = TANE" `Quick test_enclave_matches_tane;
    Alcotest.test_case "enclave partition" `Quick test_enclave_partition;
    Alcotest.test_case "bitonic = odd-even-merge results" `Quick test_sort_method_networks_agree;
    Alcotest.test_case "sort labels preserve partition" `Quick test_sort_labels_preserve_partition;
    Alcotest.test_case "or-oram labels preserve partition" `Quick test_or_oram_labels_preserve_partition;
    Alcotest.test_case "string values supported" `Quick test_string_values_supported;
    Alcotest.test_case "parallel sort method" `Quick test_parallel_sort_method;
    Alcotest.test_case "lattice releases storage" `Quick test_lattice_releases_storage;
    Alcotest.test_case "cost report sane" `Quick test_cost_report_sane;
  ]
