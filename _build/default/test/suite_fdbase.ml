(* Plaintext FD discovery tests: partitions, Theorem 1, TANE vs brute
   force on random tables, Armstrong closure. *)

open Relation
open Fdbase

let v_int x = Value.Int x
let v_str s = Value.Str s

let fig1_table () =
  let schema = Schema.make [| "Name"; "City"; "Birth" |] in
  Table.make schema
    [|
      [| v_str "Alice"; v_str "Boston"; v_str "Jan" |];
      [| v_str "Bob"; v_str "Boston"; v_str "May" |];
      [| v_str "Bob"; v_str "Boston"; v_str "Jan" |];
      [| v_str "Carol"; v_str "New York"; v_str "Sep" |];
    |]

let attrs = Attrset.of_list

let test_partition_single () =
  let t = fig1_table () in
  let p = Partition.of_column (Table.column t 0) in
  Alcotest.(check int) "|π_Name| = 3" 3 (Partition.cardinality p);
  let p_city = Partition.of_column (Table.column t 1) in
  Alcotest.(check int) "|π_City| = 2" 2 (Partition.cardinality p_city)

let test_partition_of_table_empty_set () =
  let t = fig1_table () in
  let p = Partition.of_table t Attrset.empty in
  Alcotest.(check int) "|π_∅| = 1" 1 (Partition.cardinality p)

let test_theorem1_fig1 () =
  (* Paper Fig. 1: Name → City holds, Name → Birth does not. *)
  let t = fig1_table () in
  let card s = Partition.cardinality (Partition.of_table t s) in
  Alcotest.(check int) "|π_Name|" 3 (card (attrs [ 0 ]));
  Alcotest.(check int) "|π_{Name,City}|" 3 (card (attrs [ 0; 1 ]));
  Alcotest.(check int) "|π_{Name,Birth}|" 4 (card (attrs [ 0; 2 ]));
  Alcotest.(check bool) "Name → City" true (card (attrs [ 0 ]) = card (attrs [ 0; 1 ]));
  Alcotest.(check bool) "Name → Birth fails" false
    (card (attrs [ 0 ]) = card (attrs [ 0; 2 ]))

let test_partition_product_matches_direct () =
  let rng = Crypto.Rng.create 11 in
  for _ = 1 to 20 do
    let n = 30 + Crypto.Rng.int rng 40 in
    let col () = Array.init n (fun _ -> v_int (Crypto.Rng.int rng 5)) in
    let c1 = col () and c2 = col () in
    let schema = Schema.make [| "A"; "B" |] in
    let t = Table.make schema (Array.init n (fun i -> [| c1.(i); c2.(i) |])) in
    let p1 = Partition.of_column c1 and p2 = Partition.of_column c2 in
    let prod = Partition.product p1 p2 in
    let direct = Partition.of_table t (attrs [ 0; 1 ]) in
    Alcotest.(check int) "cardinality" (Partition.cardinality direct)
      (Partition.cardinality prod);
    Alcotest.(check bool) "same refinement" true (Partition.equal_refinement prod direct)
  done

let test_partition_error_superkey () =
  let col = Array.init 10 (fun i -> v_int i) in
  let p = Partition.of_column col in
  Alcotest.(check int) "e(X) = 0 for key" 0 (Partition.error p);
  Alcotest.(check int) "card = n" 10 (Partition.cardinality p)

let test_labels_consistent () =
  let col = [| v_int 1; v_int 2; v_int 1; v_int 3; v_int 2 |] in
  let p = Partition.of_column col in
  let l = Partition.labels p in
  Alcotest.(check bool) "same label same value" true (l.(0) = l.(2) && l.(1) = l.(4));
  Alcotest.(check bool) "distinct labels distinct values" true
    (l.(0) <> l.(1) && l.(0) <> l.(3) && l.(1) <> l.(3))

let test_tane_fig1 () =
  let t = fig1_table () in
  let fds = Tane.fds t in
  (* Name → City must be among the discovered FDs. *)
  let has lhs rhs = List.exists (fun fd -> Fd.equal fd { Fd.lhs = attrs lhs; rhs }) fds in
  Alcotest.(check bool) "Name → City" true (has [ 0 ] 1);
  Alcotest.(check bool) "no Name → Birth" false (has [ 0 ] 2)

let random_table rng ~n ~m ~domain =
  let schema = Schema.make (Array.init m (fun i -> Printf.sprintf "C%d" i)) in
  Table.make schema
    (Array.init n (fun _ -> Array.init m (fun _ -> v_int (Crypto.Rng.int rng domain))))

let check_tane_equals_brute t =
  let expected = Validator.brute_force_minimal t in
  let got = Tane.fds t in
  let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fd.pp) fds) in
  Alcotest.(check string) "same minimal FDs" (pp_fds expected) (pp_fds got)

let test_tane_vs_brute_small_random () =
  let rng = Crypto.Rng.create 21 in
  for _ = 1 to 30 do
    let t = random_table rng ~n:(5 + Crypto.Rng.int rng 20) ~m:4 ~domain:3 in
    check_tane_equals_brute t
  done

let test_tane_vs_brute_wider () =
  let rng = Crypto.Rng.create 22 in
  for _ = 1 to 10 do
    let t = random_table rng ~n:(10 + Crypto.Rng.int rng 30) ~m:5 ~domain:4 in
    check_tane_equals_brute t
  done

let test_tane_constant_column () =
  let schema = Schema.make [| "A"; "B" |] in
  let t =
    Table.make schema [| [| v_int 1; v_int 7 |]; [| v_int 2; v_int 7 |]; [| v_int 3; v_int 7 |] |]
  in
  let fds = Tane.fds t in
  Alcotest.(check bool) "∅ → B" true
    (List.exists (fun fd -> Fd.equal fd { Fd.lhs = Attrset.empty; rhs = 1 }) fds)

let test_tane_key_column () =
  let schema = Schema.make [| "K"; "A"; "B" |] in
  let t =
    Table.make schema
      [|
        [| v_int 0; v_int 5; v_int 5 |];
        [| v_int 1; v_int 5; v_int 6 |];
        [| v_int 2; v_int 6; v_int 5 |];
      |]
  in
  let fds = Tane.fds t in
  Alcotest.(check bool) "K → A" true
    (List.exists (fun fd -> Fd.equal fd { Fd.lhs = attrs [ 0 ]; rhs = 1 }) fds);
  Alcotest.(check bool) "K → B" true
    (List.exists (fun fd -> Fd.equal fd { Fd.lhs = attrs [ 0 ]; rhs = 2 }) fds);
  check_tane_equals_brute t

let test_tane_all_fds_validate () =
  let rng = Crypto.Rng.create 23 in
  (* Plant C5 = f(C0) so at least one FD is guaranteed. *)
  let base = random_table rng ~n:60 ~m:5 ~domain:3 in
  let schema = Schema.make (Array.init 6 (fun i -> Printf.sprintf "C%d" i)) in
  let derive v = match v with Value.Int x -> v_int ((x * 7) mod 5) | _ -> v in
  let t =
    Table.make schema
      (Array.init (Table.rows base) (fun i ->
           Array.append (Table.row base i) [| derive (Table.cell base ~row:i ~col:0) |]))
  in
  let fds = Tane.fds t in
  Alcotest.(check bool) "nonempty" true (fds <> []);
  Alcotest.(check bool) "planted FD found" true
    (List.exists (fun fd -> fd.Fd.rhs = 5 && Attrset.subset fd.Fd.lhs (attrs [ 0 ])) fds);
  List.iter
    (fun fd ->
      Alcotest.(check bool)
        (Format.asprintf "%a validates" Fd.pp fd)
        true (Validator.holds_fd t fd))
    fds

let test_tane_duplicated_rows () =
  let rng = Crypto.Rng.create 24 in
  let base = random_table rng ~n:10 ~m:4 ~domain:3 in
  (* Duplicating every row must not change the FD set. *)
  let doubled =
    Table.make (Table.schema base)
      (Array.init (2 * Table.rows base) (fun i -> Table.row base (i / 2)))
  in
  let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fd.pp) fds) in
  Alcotest.(check string) "same FDs" (pp_fds (Tane.fds base)) (pp_fds (Tane.fds doubled))

let test_closure_and_implies () =
  (* A → B, B → C: closure of {A} is {A,B,C}. *)
  let fds = [ { Fd.lhs = attrs [ 0 ]; rhs = 1 }; { Fd.lhs = attrs [ 1 ]; rhs = 2 } ] in
  let cl = Fd.closure ~m:3 fds (attrs [ 0 ]) in
  Alcotest.(check (list int)) "closure" [ 0; 1; 2 ] (Attrset.elements cl);
  Alcotest.(check bool) "implies" true
    (Fd.implies ~m:3 fds ~lhs:(attrs [ 0 ]) ~rhs:(attrs [ 2 ]));
  Alcotest.(check bool) "superkey" true (Fd.is_superkey ~m:3 fds (attrs [ 0 ]));
  Alcotest.(check bool) "not superkey" false (Fd.is_superkey ~m:3 fds (attrs [ 2 ]))

let test_lattice_plan_deterministic () =
  (* Same table → identical plan; the plan is a function of the leakage. *)
  let rng = Crypto.Rng.create 31 in
  let t = random_table rng ~n:40 ~m:5 ~domain:3 in
  let r1 = Tane.discover t and r2 = Tane.discover t in
  Alcotest.(check int) "same plan length" (List.length r1.Lattice.plan)
    (List.length r2.Lattice.plan);
  Alcotest.(check bool) "same plan" true
    (List.for_all2 Attrset.equal r1.Lattice.plan r2.Lattice.plan)

let test_lattice_plan_depends_only_on_fds () =
  (* Two different tables with the same schema and the same FD set must
     produce the same lattice plan (database-level leaks only L(DB)). *)
  let schema = Schema.make [| "A"; "B"; "C" |] in
  let t1 =
    Table.make schema
      [|
        [| v_int 1; v_int 1; v_int 1 |];
        [| v_int 1; v_int 1; v_int 2 |];
        [| v_int 2; v_int 2; v_int 1 |];
        [| v_int 3; v_int 2; v_int 2 |];
      |]
  in
  (* Rename values; FDs unchanged. *)
  let t2 =
    Table.make schema
      [|
        [| v_int 10; v_int 91; v_int 51 |];
        [| v_int 10; v_int 91; v_int 52 |];
        [| v_int 20; v_int 92; v_int 51 |];
        [| v_int 30; v_int 92; v_int 52 |];
      |]
  in
  let r1 = Tane.discover t1 and r2 = Tane.discover t2 in
  let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fd.pp) fds) in
  Alcotest.(check string) "same FDs (precondition)" (pp_fds r1.Lattice.fds)
    (pp_fds r2.Lattice.fds);
  Alcotest.(check bool) "same plan" true
    (List.length r1.Lattice.plan = List.length r2.Lattice.plan
    && List.for_all2 Attrset.equal r1.Lattice.plan r2.Lattice.plan)

let test_max_lhs_cap () =
  let rng = Crypto.Rng.create 41 in
  let t = random_table rng ~n:50 ~m:6 ~domain:2 in
  let r = Tane.discover ~max_lhs:1 t in
  List.iter
    (fun fd ->
      Alcotest.(check bool) "lhs capped" true (Attrset.cardinal fd.Fd.lhs <= 1))
    r.Lattice.fds

let qcheck_tane_matches_brute =
  QCheck.Test.make ~name:"TANE = brute force (random 4-col tables)" ~count:25
    QCheck.(pair (int_range 4 25) (int_range 2 4))
    (fun (n, domain) ->
      let rng = Crypto.Rng.create (n * 100 + domain) in
      let t = random_table rng ~n ~m:4 ~domain in
      let pp_fds fds = String.concat ";" (List.map (Format.asprintf "%a" Fd.pp) fds) in
      String.equal (pp_fds (Validator.brute_force_minimal t)) (pp_fds (Tane.fds t)))

let qcheck_discovered_fds_hold =
  QCheck.Test.make ~name:"every discovered FD validates directly" ~count:25
    QCheck.(int_range 5 40)
    (fun n ->
      let rng = Crypto.Rng.create (n * 7) in
      let t = random_table rng ~n ~m:5 ~domain:3 in
      List.for_all (Validator.holds_fd t) (Tane.fds t))

let suite =
  [
    Alcotest.test_case "partition single column" `Quick test_partition_single;
    Alcotest.test_case "partition of empty attrset" `Quick test_partition_of_table_empty_set;
    Alcotest.test_case "Theorem 1 on paper Fig. 1" `Quick test_theorem1_fig1;
    Alcotest.test_case "partition product = direct" `Quick test_partition_product_matches_direct;
    Alcotest.test_case "partition error/superkey" `Quick test_partition_error_superkey;
    Alcotest.test_case "partition labels" `Quick test_labels_consistent;
    Alcotest.test_case "TANE on paper Fig. 1" `Quick test_tane_fig1;
    Alcotest.test_case "TANE = brute force (small)" `Quick test_tane_vs_brute_small_random;
    Alcotest.test_case "TANE = brute force (wider)" `Slow test_tane_vs_brute_wider;
    Alcotest.test_case "TANE constant column" `Quick test_tane_constant_column;
    Alcotest.test_case "TANE key column" `Quick test_tane_key_column;
    Alcotest.test_case "all discovered FDs validate" `Quick test_tane_all_fds_validate;
    Alcotest.test_case "duplicated rows preserve FDs" `Quick test_tane_duplicated_rows;
    Alcotest.test_case "closure and implication" `Quick test_closure_and_implies;
    Alcotest.test_case "lattice plan deterministic" `Quick test_lattice_plan_deterministic;
    Alcotest.test_case "plan depends only on leakage" `Quick test_lattice_plan_depends_only_on_fds;
    Alcotest.test_case "max_lhs cap respected" `Quick test_max_lhs_cap;
    QCheck_alcotest.to_alcotest qcheck_tane_matches_brute;
    QCheck_alcotest.to_alcotest qcheck_discovered_fds_hold;
  ]
