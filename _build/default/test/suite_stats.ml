(* KS test and summary statistics. *)

let test_ks_statistic_identical () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "D = 0 on identical" 0.0 (Stats.Ks_test.statistic a a)

let test_ks_statistic_disjoint () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 10.0; 20.0; 30.0 |] in
  Alcotest.(check (float 1e-9)) "D = 1 on disjoint" 1.0 (Stats.Ks_test.statistic a b)

let test_ks_pvalue_same_distribution () =
  (* Two samples from one uniform distribution: p should be large. *)
  let rng = Crypto.Rng.create 8 in
  let draw () = Array.init 100 (fun _ -> float_of_int (Crypto.Rng.int rng 10000)) in
  let p = Stats.Ks_test.p_value (draw ()) (draw ()) in
  Alcotest.(check bool) (Printf.sprintf "p = %.3f >= 0.05" p) true (p >= 0.05)

let test_ks_pvalue_different_distributions () =
  let rng = Crypto.Rng.create 9 in
  let a = Array.init 200 (fun _ -> float_of_int (Crypto.Rng.int rng 1000)) in
  let b = Array.init 200 (fun _ -> 2000.0 +. float_of_int (Crypto.Rng.int rng 1000)) in
  let p = Stats.Ks_test.p_value a b in
  Alcotest.(check bool) (Printf.sprintf "p = %.6f < 0.05" p) true (p < 0.05)

let test_ks_pvalue_shifted_slightly () =
  (* A large shift relative to spread must be detected at n = 300. *)
  let rng = Crypto.Rng.create 10 in
  let a = Array.init 300 (fun _ -> float_of_int (Crypto.Rng.int rng 100)) in
  let b = Array.init 300 (fun _ -> 50.0 +. float_of_int (Crypto.Rng.int rng 100)) in
  Alcotest.(check bool) "detected" true (Stats.Ks_test.p_value a b < 0.05)

let test_ks_monotone_in_d () =
  let base = Array.init 50 float_of_int in
  let shift k = Array.map (fun x -> x +. k) base in
  let p1 = Stats.Ks_test.p_value base (shift 1.0) in
  let p2 = Stats.Ks_test.p_value base (shift 25.0) in
  Alcotest.(check bool) "bigger shift, smaller p" true (p2 < p1)

let test_ks_empty_rejected () =
  Alcotest.(check bool) "raises" true
    (match Stats.Ks_test.statistic [||] [| 1.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_summary () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean a);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.Summary.median a);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max a);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Stats.Summary.stddev a);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.Summary.median [| 3.0; 1.0; 2.0 |])

let qcheck_ks_symmetric =
  QCheck.Test.make ~name:"KS statistic is symmetric" ~count:100
    QCheck.(pair (array_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0))
              (array_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0)))
    (fun (a, b) ->
      Float.abs (Stats.Ks_test.statistic a b -. Stats.Ks_test.statistic b a) < 1e-9)

let qcheck_ks_bounded =
  QCheck.Test.make ~name:"KS statistic in [0,1], p in [0,1]" ~count:100
    QCheck.(pair (array_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0))
              (array_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0)))
    (fun (a, b) ->
      let d = Stats.Ks_test.statistic a b and p = Stats.Ks_test.p_value a b in
      d >= 0.0 && d <= 1.0 && p >= 0.0 && p <= 1.0)

let suite =
  [
    Alcotest.test_case "KS D identical" `Quick test_ks_statistic_identical;
    Alcotest.test_case "KS D disjoint" `Quick test_ks_statistic_disjoint;
    Alcotest.test_case "KS p same distribution" `Quick test_ks_pvalue_same_distribution;
    Alcotest.test_case "KS p different distributions" `Quick test_ks_pvalue_different_distributions;
    Alcotest.test_case "KS p shifted" `Quick test_ks_pvalue_shifted_slightly;
    Alcotest.test_case "KS monotone" `Quick test_ks_monotone_in_d;
    Alcotest.test_case "KS empty rejected" `Quick test_ks_empty_rejected;
    Alcotest.test_case "summary statistics" `Quick test_summary;
    QCheck_alcotest.to_alcotest qcheck_ks_symmetric;
    QCheck_alcotest.to_alcotest qcheck_ks_bounded;
  ]
