(* Low-memory method (Omap + recursive ORAM) tests. *)

open Relation
open Core

let pp_fds fds = String.concat "; " (List.map (Format.asprintf "%a" Fdbase.Fd.pp) fds)

let test_single_cardinality () =
  let t = Datasets.Rnd.generate_with_domain ~seed:7 ~rows:16 ~cols:2 ~domain:4 () in
  let session = Session.create ~n:16 ~m:2 () in
  let db = Enc_db.outsource session t in
  let h = Lm_oram_method.single db 0 in
  let expect =
    Fdbase.Partition.cardinality (Fdbase.Partition.of_column (Table.column t 0))
  in
  Alcotest.(check int) "cardinality" expect (Lm_oram_method.cardinality h)

let test_combine_cardinality () =
  let t = Datasets.Rnd.generate_with_domain ~seed:8 ~rows:12 ~cols:2 ~domain:3 () in
  let session = Session.create ~n:12 ~m:2 () in
  let db = Enc_db.outsource session t in
  let h1 = Lm_oram_method.single db 0 in
  let h2 = Lm_oram_method.single db 1 in
  let h = Lm_oram_method.combine session (Attrset.of_list [ 0; 1 ]) h1 h2 in
  let expect =
    Fdbase.Partition.cardinality (Fdbase.Partition.of_table t (Attrset.of_list [ 0; 1 ]))
  in
  Alcotest.(check int) "cardinality" expect (Lm_oram_method.cardinality h)

let test_discover_matches_tane () =
  let t = Datasets.Examples.fig1 () in
  let session = Session.create ~n:(Table.rows t) ~m:(Table.cols t) () in
  let db = Enc_db.outsource session t in
  let result =
    Fdbase.Lattice.discover ~m:(Table.cols t) ~n:(Table.rows t)
      (Lm_oram_method.oracle session db)
  in
  Alcotest.(check string) "FDs" (pp_fds (Fdbase.Tane.fds t))
    (pp_fds result.Fdbase.Lattice.fds)

let test_client_memory_much_smaller () =
  let n = 64 in
  let t = Datasets.Rnd.generate_with_domain ~seed:9 ~rows:n ~cols:1 ~domain:20 () in
  (* Or-ORAM client state: measured through the cost ledger. *)
  let session_or = Session.create ~n ~m:1 () in
  let db_or = Enc_db.outsource session_or t in
  ignore (Or_oram_method.single db_or 0);
  let or_bytes =
    (Servsim.Cost.snapshot (Session.cost session_or)).Servsim.Cost.client_current_bytes
  in
  let session_lm = Session.create ~n ~m:1 () in
  let db_lm = Enc_db.outsource session_lm t in
  let h = Lm_oram_method.single db_lm 0 in
  let lm_bytes = Lm_oram_method.client_state_bytes h in
  Alcotest.(check bool)
    (Printf.sprintf "lm %dB < or %dB / 3" lm_bytes or_bytes)
    true
    (lm_bytes < or_bytes / 3)

let test_shape_data_independent () =
  let run seed_table =
    let t = Datasets.Rnd.generate_with_domain ~seed:seed_table ~rows:10 ~cols:1 ~domain:3 () in
    let session = Session.create ~seed:4242 ~n:10 ~m:1 () in
    let db = Enc_db.outsource session t in
    ignore (Lm_oram_method.single db 0);
    let trace = Session.trace session in
    (Servsim.Trace.shape_digest trace, Servsim.Trace.count trace)
  in
  let s1, c1 = run 1 in
  let s2, c2 = run 2 in
  Alcotest.(check int64) "same shape" s1 s2;
  Alcotest.(check int) "same count" c1 c2

let suite =
  [
    Alcotest.test_case "single cardinality" `Quick test_single_cardinality;
    Alcotest.test_case "combine cardinality" `Quick test_combine_cardinality;
    Alcotest.test_case "discover = TANE" `Quick test_discover_matches_tane;
    Alcotest.test_case "client memory sublinear" `Slow test_client_memory_much_smaller;
    Alcotest.test_case "shape data-independent" `Quick test_shape_data_independent;
  ]
