(* Why minimal leakage matters: the prior-art baseline (deterministic
   encryption, frequency-revealing — Dong & Wang, ICDE'17 / §VIII of the
   paper) discovers FDs fast, but its leaked histograms let a
   frequency-analysis attacker (Naveed et al., CCS'15) decrypt low-entropy
   columns outright.  The paper's oblivious methods leak nothing of the
   kind.

     dune exec examples/baseline_leakage.exe *)

open Relation

let () =
  let rows = 4000 in
  let table = Datasets.Adult_like.generate ~seed:1 ~rows () in
  let schema = Table.schema table in
  let key = String.make 16 'D' in

  (* 1. Baseline discovery: server-side, fast, leaky. *)
  let r = Baseline.Freq_fd.discover ~max_lhs:1 key table in
  Format.printf "Baseline (deterministic encryption) discovery: %d FDs in %.3fs@."
    (List.length r.Baseline.Freq_fd.fds) r.Baseline.Freq_fd.elapsed_s;

  (* 2. What the server now knows: per-column frequency histograms. *)
  let col = Schema.index schema "sex" in
  Format.printf "@.Leaked histogram of column %S: %s@." "sex"
    (String.concat ", "
       (List.map string_of_int r.Baseline.Freq_fd.view.Baseline.Freq_fd.column_histograms.(col)));

  (* 3. The attack: auxiliary knowledge = a disjoint sample of the same
     population (a public census table, say). *)
  let aux_table = Datasets.Adult_like.generate ~seed:2 ~rows () in
  let det = Baseline.Det_encryption.create key in
  let attack name col =
    let truth = Table.column table col in
    let ciphertexts =
      Array.map (fun v -> Baseline.Det_encryption.encrypt det (Codec.encode_value v)) truth
    in
    let res =
      Baseline.Leakage_attack.frequency_attack ~ciphertexts
        ~auxiliary:(Table.column aux_table col) ~truth
    in
    Format.printf "  %-16s %5.1f%% of cells recovered@." name
      (100.0 *. Baseline.Leakage_attack.recovery_rate res)
  in
  Format.printf "@.Frequency-analysis attack against the baseline's ciphertexts:@.";
  List.iter
    (fun name -> attack name (Schema.index schema name))
    [ "sex"; "race"; "education"; "workclass"; "relationship" ];

  (* 4. The same attack against this paper's encryption fails. *)
  let cipher = Crypto.Cell_cipher.create key in
  let col = Schema.index schema "sex" in
  let truth = Table.column table col in
  let ciphertexts =
    Array.map (fun v -> Crypto.Cell_cipher.encrypt cipher (Codec.encode_value v)) truth
  in
  let res =
    Baseline.Leakage_attack.frequency_attack ~ciphertexts
      ~auxiliary:(Table.column aux_table col) ~truth
  in
  Format.printf
    "@.Same attack against the paper's semantically secure cells (column %S):@.  %5.1f%% \
     recovered — no better than guessing the majority value.@."
    "sex"
    (100.0 *. Baseline.Leakage_attack.recovery_rate res)
