(* Quickstart: outsource a small table and discover its FDs with each of
   the three oblivious methods.

     dune exec examples/quickstart.exe *)

open Relation
open Core

let () =
  (* The client's plaintext table — the paper's Fig. 1. *)
  let table = Datasets.Examples.fig1 () in
  let schema = Table.schema table in
  Format.printf "@[<v>Client database (%d rows x %d cols):@,%a@]@." (Table.rows table)
    (Table.cols table) Table.pp table;

  List.iter
    (fun method_ ->
      Format.printf "=== %s ===@." (Protocol.method_name method_);
      let report = Protocol.discover method_ table in
      Format.printf "%a@.@." (Protocol.pp_report schema) report)
    [ Protocol.Sort; Protocol.Or_oram; Protocol.Ex_oram ];

  (* Cross-check against the plaintext baseline. *)
  let expect = Fdbase.Tane.fds table in
  let secure = (Protocol.discover Protocol.Sort table).Protocol.fds in
  assert (List.for_all2 Fdbase.Fd.equal expect secure);
  Format.printf "Secure output matches plaintext TANE: OK@."
