(* Obliviousness, observably (Definition 2): run the partition protocols
   on two databases of equal size but wildly different contents, and
   compare the server's recorded access patterns.

     dune exec examples/obliviousness_demo.exe *)

open Relation
open Core

let n = 64

let skewed () =
  (* Everything equal: one giant equivalence class. *)
  let schema = Schema.make [| "A"; "B" |] in
  Table.make schema (Array.init n (fun _ -> [| Value.Int 1; Value.Int 1 |]))

let unique () =
  (* Everything distinct: n singleton classes. *)
  let schema = Schema.make [| "A"; "B" |] in
  Table.make schema (Array.init n (fun i -> [| Value.Int i; Value.Int (1000 + i) |]))

let () =
  let x = Attrset.of_list [ 0; 1 ] in
  Format.printf "Two databases, both %d x 2, opposite value distributions:@." n;
  Format.printf "  DB1: every value identical   (|pi_X| = 1)@.";
  Format.printf "  DB2: every value distinct    (|pi_X| = %d)@.@." n;

  (* Sort: the full physical trace (every address) must be identical. *)
  let c1, r1 = Protocol.partition_cardinality ~seed:9 Protocol.Sort (skewed ()) x in
  let c2, r2 = Protocol.partition_cardinality ~seed:9 Protocol.Sort (unique ()) x in
  Format.printf "Sort method:@.";
  Format.printf "  cardinalities:   %d vs %d (the protocol really computed them)@." c1 c2;
  Format.printf "  trace digests:   %016Lx vs %016Lx%s@." r1.Protocol.trace_full
    r2.Protocol.trace_full
    (if Int64.equal r1.Protocol.trace_full r2.Protocol.trace_full then "   <- BIT-IDENTICAL"
     else "   <- LEAK!");
  Format.printf "  accesses:        %d vs %d@.@." r1.Protocol.trace_count r2.Protocol.trace_count;

  (* ORAM: addresses are randomized, but the shape (sequence of op kinds
     and lengths) must be identical. *)
  List.iter
    (fun m ->
      let c1, r1 = Protocol.partition_cardinality ~seed:10 m (skewed ()) x in
      let c2, r2 = Protocol.partition_cardinality ~seed:11 m (unique ()) x in
      Format.printf "%s method:@." (Protocol.method_name m);
      Format.printf "  cardinalities:   %d vs %d@." c1 c2;
      Format.printf "  shape digests:   %016Lx vs %016Lx%s@." r1.Protocol.trace_shape
        r2.Protocol.trace_shape
        (if Int64.equal r1.Protocol.trace_shape r2.Protocol.trace_shape then
           "   <- SAME SHAPE"
         else "   <- LEAK!");
      Format.printf "  full digests:    %016Lx vs %016Lx   (differ: fresh random paths)@.@."
        r1.Protocol.trace_full r2.Protocol.trace_full)
    [ Protocol.Or_oram; Protocol.Ex_oram ];

  (* Contrast: a NON-oblivious hash-based scan would touch data-dependent
     numbers of slots; emulate it to show what the adversary would see. *)
  let naive table =
    let tbl = Hashtbl.create 16 in
    let touched = ref 0 in
    for row = 0 to Table.rows table - 1 do
      let key = Table.project_value table ~row x in
      (match Hashtbl.find_opt tbl key with
      | Some _ -> ()
      | None ->
          (* A real server-side index would allocate a new bucket here —
             an observable, data-dependent write. *)
          incr touched;
          Hashtbl.replace tbl key ())
      |> ignore
    done;
    !touched
  in
  Format.printf "Naive (non-oblivious) duplicate counting for contrast:@.";
  Format.printf "  observable bucket allocations: %d vs %d  <- distribution leaks!@."
    (naive (skewed ())) (naive (unique ()))
