(* The paper's §I motivating scenario: an employee table where the FD
   Position → Department lets the query planner of an encrypted database
   replace two encrypted equality tests by one.

     dune exec examples/query_optimization.exe *)

open Relation
open Core

let () =
  let table = Datasets.Examples.employee () in
  let schema = Table.schema table in
  Format.printf "@[<v>Employee table:@,%a@]@." Table.pp table;

  let report = Protocol.discover Protocol.Sort table in
  Format.printf "Discovered %d minimal FDs with the oblivious Sort method:@."
    (List.length report.Protocol.fds);
  List.iter
    (fun fd -> Format.printf "  %a@." (Fdbase.Fd.pp_named schema) fd)
    report.Protocol.fds;

  let pos = Schema.index schema "Position" and dep = Schema.index schema "Department" in
  let fd = { Fdbase.Fd.lhs = Attrset.singleton pos; rhs = dep } in
  assert (List.exists (Fdbase.Fd.equal fd) report.Protocol.fds);

  (* What the FD buys: a conjunctive selection
       Position = p AND Department = d
     needs only the Position test whenever the pair is consistent with the
     FD; in an encrypted database each avoided equality test saves one
     oblivious comparison per record (the paper cites Arx, where this
     halves the cost). *)
  Format.printf
    "@.Position -> Department holds, so the predicate@.  Position = 'Engineer' AND \
     Department = 'R&D'@.can be answered with %d encrypted equality tests per record \
     instead of %d.@."
    1 2;

  (* Count what a naive scan would have decrypted vs the FD-aware one. *)
  let rows = Table.rows table in
  Format.printf "On this table: %d comparisons instead of %d (%.0f%% saved).@." rows
    (2 * rows)
    (100.0 *. (1.0 -. (float_of_int rows /. float_of_int (2 * rows))))
