examples/dynamic_maintenance.mli:
