examples/dynamic_maintenance.ml: Core Dynamic Fdbase Format List Relation Schema Servsim Session Table Value
