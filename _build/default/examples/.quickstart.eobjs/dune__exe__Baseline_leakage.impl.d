examples/baseline_leakage.ml: Array Baseline Codec Crypto Datasets Format List Relation Schema String Table
