examples/obliviousness_demo.ml: Array Attrset Core Format Hashtbl Int64 List Protocol Relation Schema Table Value
