examples/approximate_cleaning.mli:
