examples/quickstart.ml: Core Datasets Fdbase Format List Protocol Relation Table
