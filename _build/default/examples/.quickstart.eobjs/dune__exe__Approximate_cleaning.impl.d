examples/approximate_cleaning.ml: Array Attrset Core Fdbase Format List Relation Schema Table Value
