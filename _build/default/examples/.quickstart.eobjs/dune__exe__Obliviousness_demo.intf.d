examples/obliviousness_demo.mli:
