examples/quickstart.mli:
