examples/query_optimization.ml: Attrset Core Datasets Fdbase Format List Protocol Relation Schema Table
