examples/baseline_leakage.mli:
