(* Approximate FDs for data cleaning over an encrypted database: a
   Zipcode -> City rule that a few dirty rows violate is invisible to
   exact discovery but surfaces at a small ε — computed with the same
   oblivious machinery and no extra leakage beyond the verdicts.

     dune exec examples/approximate_cleaning.exe *)

open Relation

let () =
  let v x = Value.Int x in
  let schema = Schema.make [| "Zipcode"; "City"; "Street" |] in
  let clean zip city i = [| v zip; v city; v (1000 + i) |] in
  let rows =
    Array.init 50 (fun i ->
        let zip = 10000 + (i mod 5) in
        clean zip (zip mod 97) i)
  in
  (* Two dirty rows: same zipcode, inconsistent city. *)
  rows.(13) <- [| v 10003; v 9999; v 1013 |];
  rows.(27) <- [| v 10001; v 8888; v 1027 |];
  let table = Table.make schema rows in

  Format.printf "50 rows; Zipcode -> City violated by 2 dirty rows.@.";
  let exact = Core.Protocol.discover Core.Protocol.Sort table in
  let has fds lhs rhs =
    List.exists (fun fd -> Fdbase.Fd.equal fd { Fdbase.Fd.lhs = Attrset.of_list lhs; rhs }) fds
  in
  Format.printf "exact secure discovery: Zipcode -> City %s@."
    (if has exact.Core.Protocol.fds [ 0 ] 1 then "HOLDS" else "does not hold");

  let e = Fdbase.Approx.split_error table ~lhs:(Attrset.singleton 0) ~rhs:1 in
  Format.printf "split error of Zipcode -> City: %.3f (2 extra classes / 50 rows)@." e;

  List.iter
    (fun epsilon ->
      let r = Core.Protocol.discover_approx ~epsilon ~max_lhs:1 Core.Protocol.Sort table in
      Format.printf "eps = %.2f: Zipcode -> City %s  (%d approximate FDs total)@." epsilon
        (if has r.Fdbase.Approx.fds [ 0 ] 1 then "ACCEPTED" else "rejected")
        (List.length r.Fdbase.Approx.fds))
    [ 0.0; 0.02; 0.05; 0.10 ];

  Format.printf
    "@.A cleaning pipeline would now fetch the violating classes and repair the\n\
     2 rows — after which exact discovery confirms the rule:@.";
  rows.(13) <- clean 10003 (10003 mod 97) 13;
  rows.(27) <- clean 10001 (10001 mod 97) 27;
  let repaired = Table.make schema rows in
  let exact = Core.Protocol.discover Core.Protocol.Sort repaired in
  Format.printf "after repair: Zipcode -> City %s@."
    (if has exact.Core.Protocol.fds [ 0 ] 1 then "HOLDS" else "does not hold")
