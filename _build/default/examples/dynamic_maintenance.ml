(* Dynamic databases (§V): keep FDs maintained under inserts and deletes
   with the Ex-ORAM structures, without re-running discovery.

     dune exec examples/dynamic_maintenance.exe *)

open Relation
open Core

let pp_status ppf (fd, ok) =
  Format.fprintf ppf "  %a : %s" Fdbase.Fd.pp fd (if ok then "holds" else "BROKEN")

let () =
  let v x = Value.Int x in
  let schema = Schema.make [| "Zipcode"; "City"; "Orders" |] in
  let table =
    Table.make schema
      [|
        [| v 10001; v 1; v 17 |];
        [| v 10001; v 1; v 5 |];
        [| v 94016; v 2; v 9 |];
        [| v 94016; v 2; v 3 |];
        [| v 60601; v 3; v 12 |];
      |]
  in
  Format.printf "Initial table (Zipcode determines City):@.%a@." Table.pp table;

  let d = Dynamic.start ~capacity:64 table in
  Format.printf "@.Initial discovery (Ex-ORAM):@.";
  List.iter (fun fd -> Format.printf "  %a@." Fdbase.Fd.pp fd) (Dynamic.fds d);

  (* Insert a record that violates Zipcode -> City. *)
  Format.printf "@.insert (10001, City 9, 1 order)  -- conflicting city for 10001@.";
  let id = Dynamic.insert d [| v 10001; v 9; v 1 |] in
  Format.printf "revalidation:@.%a@."
    (Format.pp_print_list pp_status)
    (Dynamic.revalidate d);

  (* Delete it again: the FD is restored. *)
  Format.printf "@.delete that record@.";
  Dynamic.delete d ~id;
  Format.printf "revalidation:@.%a@."
    (Format.pp_print_list pp_status)
    (Dynamic.revalidate d);

  let snap = Servsim.Cost.snapshot (Session.cost (Dynamic.session d)) in
  Format.printf "@.Costs so far: %d round trips, %d B to server, %d B to client@."
    snap.Servsim.Cost.round_trips snap.Servsim.Cost.bytes_to_server
    snap.Servsim.Cost.bytes_to_client;
  Dynamic.release d
