(* The multi-tenant daemon: an in-process [Service.Daemon] on a Unix
   socket (run in a background thread), exercised by real client
   connections.  Checks per-tenant isolation — concurrent discover runs
   produce server-side trace digests bit-identical to a single-client
   run — plus the frames == per-session-ledger invariant, fault
   isolation (mid-frame disconnects, malformed frames, a v2 client),
   the connection cap, the idle timeout, and graceful drain. *)

let with_daemon ?(max_conns = 64) ?(idle_timeout = 0.) ?(domains = 1) f =
  let path = Filename.temp_file "svc-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        max_conns;
        idle_timeout;
        domains }
  in
  let th = Thread.create Service.Daemon.run daemon in
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () -> f path daemon)

let with_client ?namespace path f =
  let conn = Servsim.Remote.connect_unix ?namespace path in
  Fun.protect
    ~finally:(fun () ->
      ((try Servsim.Remote.close conn with _ -> ()) [@lint.allow "exception-hygiene"]))
    (fun () -> f conn)

(* A raw (non-[Remote]) connection, for speaking out of protocol. *)
let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let discover_fds conn table =
  let r = Core.Protocol.discover ~seed:99 ~remote:conn Core.Protocol.Sort table in
  String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) r.Core.Protocol.fds)

(* {2 Tenant isolation under concurrency} *)

let test_concurrent_tenants_match_single_client () =
  let table = Datasets.Examples.fig1 () in
  (* Reference: one daemon, one client, one tenant. *)
  let ref_fds = ref "" and ref_digests = ref (0L, 0L, 0) in
  with_daemon (fun path _ ->
      with_client ~namespace:"solo" path (fun conn ->
          ref_fds := discover_fds conn table;
          ref_digests := Servsim.Remote.server_digests conn));
  (* Two tenants running the same protocol concurrently on one daemon:
     each tenant's server-side trace must be bit-identical to the
     single-client run — neither client can even see that the other
     exists in its own adversary view. *)
  with_daemon (fun path _ ->
      let run ns out_fds out_digests () =
        with_client ~namespace:ns path (fun conn ->
            out_fds := discover_fds conn table;
            out_digests := Servsim.Remote.server_digests conn)
      in
      let a_fds = ref "" and a_dig = ref (0L, 0L, 0) in
      let b_fds = ref "" and b_dig = ref (0L, 0L, 0) in
      let ta = Thread.create (run "alice" a_fds a_dig) () in
      let tb = Thread.create (run "bob" b_fds b_dig) () in
      Thread.join ta;
      Thread.join tb;
      Alcotest.(check string) "alice finds the same FDs" !ref_fds !a_fds;
      Alcotest.(check string) "bob finds the same FDs" !ref_fds !b_fds;
      let f0, s0, c0 = !ref_digests in
      let check_digests who (f, s, c) =
        Alcotest.(check int64) (who ^ " full digest") f0 f;
        Alcotest.(check int64) (who ^ " shape digest") s0 s;
        Alcotest.(check int) (who ^ " trace count") c0 c
      in
      check_digests "alice" !a_dig;
      check_digests "bob" !b_dig)

let test_tenant_state_survives_reconnect () =
  with_daemon (fun path _ ->
      with_client ~namespace:"durable" path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 4)));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 1, "kept"))));
      with_client ~namespace:"durable" path (fun conn ->
          match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 1)) with
          | Servsim.Wire.Value v -> Alcotest.(check string) "value survives" "kept" v
          | _ -> Alcotest.fail "get after reconnect");
      (* ...but another namespace sees none of it. *)
      with_client ~namespace:"stranger" path (fun conn ->
          Alcotest.(check bool) "other tenant has no store" true
            (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 1)) with
            | exception Servsim.Wire.Protocol_error _ -> true
            | _ -> false)))

(* {2 Session accounting} *)

let test_frames_match_session_ledger () =
  with_daemon (fun path _ ->
      with_client ~namespace:"ledger" path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 8)));
          for i = 0 to 7 do
            ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", i, "x")))
          done;
          Servsim.Remote.ping conn;
          let stats = Servsim.Remote.stats conn in
          Alcotest.(check int) "server ledger equals client frames"
            (Servsim.Remote.frames conn) stats.Servsim.Wire.frames;
          (* A second look must observe the first Stats exchange too. *)
          let stats2 = Servsim.Remote.stats conn in
          Alcotest.(check int) "still equal after Stats itself"
            (Servsim.Remote.frames conn) stats2.Servsim.Wire.frames;
          Alcotest.(check bool) "sampled latency percentiles are ordered" true
            (stats2.Servsim.Wire.p50_us <= stats2.Servsim.Wire.p95_us
            && stats2.Servsim.Wire.p95_us <= stats2.Servsim.Wire.p99_us)))

(* {2 Fault isolation} *)

let test_mid_frame_disconnect_leaves_others_served () =
  with_daemon (fun path _ ->
      with_client ~namespace:"survivor" path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 2)));
          (* A second client dies mid-frame: version byte, Hello, then a
             Put whose length prefix is cut short by an abrupt close. *)
          let fd, ic, oc = raw_connect path in
          output_char oc (Char.chr Servsim.Wire.protocol_version);
          flush oc;
          Alcotest.(check int) "handshake answered" Servsim.Wire.protocol_version
            (Char.code (input_char ic));
          Servsim.Wire.write_request oc (Servsim.Wire.Hello "victim");
          (match Servsim.Wire.read_response ic with
          | Servsim.Wire.Ok -> ()
          | _ -> Alcotest.fail "hello");
          output_string oc "\005\002";
          flush oc;
          Unix.close fd;
          (* The survivor is still served by the same daemon. *)
          ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 0, "alive")));
          match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 0)) with
          | Servsim.Wire.Value v -> Alcotest.(check string) "served after kill" "alive" v
          | _ -> Alcotest.fail "get"))

let test_malformed_frame_closes_only_offender () =
  with_daemon (fun path _ ->
      with_client ~namespace:"bystander" path (fun conn ->
          let fd, ic, oc = raw_connect path in
          output_char oc (Char.chr Servsim.Wire.protocol_version);
          flush oc;
          ignore (input_char ic);
          Servsim.Wire.write_request oc (Servsim.Wire.Hello "hostile");
          (match Servsim.Wire.read_response ic with
          | Servsim.Wire.Ok -> ()
          | _ -> Alcotest.fail "hello");
          (* An unknown tag is beyond resync: the daemon must answer one
             final Error and hang up on this connection only. *)
          output_char oc '\042';
          flush oc;
          (match Servsim.Wire.read_response ic with
          | Servsim.Wire.Error _ -> ()
          | _ -> Alcotest.fail "expected Error for bad tag");
          Alcotest.(check bool) "offender hung up" true
            (match input_char ic with
            | _ -> false
            | exception End_of_file -> true);
          Unix.close fd;
          Servsim.Remote.ping conn))

let test_hello_required_first () =
  with_daemon (fun path _ ->
      let fd, ic, oc = raw_connect path in
      output_char oc (Char.chr Servsim.Wire.protocol_version);
      flush oc;
      ignore (input_char ic);
      Servsim.Wire.write_request oc Servsim.Wire.Ping;
      (match Servsim.Wire.read_response ic with
      | Servsim.Wire.Error _ -> ()
      | _ -> Alcotest.fail "expected Error before Hello");
      Alcotest.(check bool) "connection closed" true
        (match input_char ic with _ -> false | exception End_of_file -> true);
      Unix.close fd)

let test_v2_handshake_rejected () =
  with_daemon (fun path _ ->
      let fd, ic, oc = raw_connect path in
      output_char oc '\002';
      flush oc;
      (* The daemon announces its own version so the stale client can
         diagnose the mismatch, then hangs up. *)
      Alcotest.(check int) "daemon announces v3" Servsim.Wire.protocol_version
        (Char.code (input_char ic));
      Alcotest.(check bool) "then hangs up" true
        (match input_char ic with _ -> false | exception End_of_file -> true);
      Unix.close fd)

(* {2 Robustness: cap, idle timeout, drain} *)

let test_connection_cap () =
  with_daemon ~max_conns:2 (fun path _ ->
      with_client ~namespace:"one" path (fun _c1 ->
          with_client ~namespace:"two" path (fun _c2 ->
              Alcotest.(check bool) "third connection turned away" true
                (match Servsim.Remote.connect_unix ~namespace:"three" path with
                | conn ->
                    Servsim.Remote.close conn;
                    false
                | exception _ -> true))))

let test_idle_timeout () =
  with_daemon ~idle_timeout:0.3 (fun path _ ->
      with_client ~namespace:"sleepy" path (fun conn ->
          Servsim.Remote.ping conn;
          Unix.sleepf 1.2;
          Alcotest.(check bool) "idle connection was closed" true
            (match Servsim.Remote.ping conn with
            | () -> false
            | exception _ -> true)))

let test_graceful_drain () =
  let path = Filename.temp_file "svc-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create { Service.Daemon.default_config with unix_path = Some path }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let conn = Servsim.Remote.connect_unix ~namespace:"draining" path in
  ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
  Service.Daemon.stop daemon;
  (* Already-connected clients keep being served during the drain... *)
  ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 2)));
  Servsim.Remote.ping conn;
  (* ...and once the last one leaves, the daemon exits. *)
  Servsim.Remote.close conn;
  Thread.join th;
  Alcotest.(check bool) "socket path removed" false (Sys.file_exists path);
  Alcotest.(check int) "no live connections" 0 (Service.Daemon.live_conns daemon)

let test_tcp_listener () =
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with tcp = Some ("127.0.0.1", 0) }
  in
  let port =
    match Service.Daemon.tcp_port daemon with Some p -> p | None -> Alcotest.fail "no port"
  in
  let th = Thread.create Service.Daemon.run daemon in
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () ->
      let conn = Servsim.Remote.connect_tcp ~namespace:"tcp" ~host:"127.0.0.1" ~port () in
      Servsim.Remote.ping conn;
      ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 1)));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 0, "over tcp")));
      (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 0)) with
      | Servsim.Wire.Value v -> Alcotest.(check string) "tcp roundtrip" "over tcp" v
      | _ -> Alcotest.fail "get");
      Servsim.Remote.close conn)

(* {2 Namespace-sharded worker domains} *)

let test_shard_deterministic () =
  List.iter
    (fun shards ->
      List.iter
        (fun ns ->
          let s = Service.Session.shard ~shards ns in
          Alcotest.(check bool)
            (Printf.sprintf "shard %S/%d in range" ns shards)
            true
            (s >= 0 && s < max 1 shards);
          Alcotest.(check int)
            (Printf.sprintf "shard %S/%d stable" ns shards)
            s
            (Service.Session.shard ~shards ns))
        [ ""; "alice"; "bob"; "a-rather-long-namespace-name"; "\x00\xff" ])
    [ 1; 2; 3; 4; 7; 16 ];
  Alcotest.(check int) "single shard is always 0" 0
    (Service.Session.shard ~shards:1 "anything")

(* The acceptance bar for the sharded daemon: per-tenant digests under
   concurrent multi-namespace load on N worker domains are bit-identical
   to the single-domain daemon (which in turn matches a solo client, per
   [test_concurrent_tenants_match_single_client]).  Obliviousness is a
   per-tenant property; how tenants are spread over domains must be
   invisible in every adversary view. *)
let test_multidomain_digests_match_single_domain () =
  let table = Datasets.Examples.fig1 () in
  let namespaces = [ "tenant-a"; "tenant-b"; "tenant-c" ] in
  let run_daemon ~domains =
    with_daemon ~domains (fun path _ ->
        let results =
          List.map
            (fun ns ->
              let fds = ref "" and dig = ref (0L, 0L, 0) in
              let th =
                Thread.create
                  (fun () ->
                    with_client ~namespace:ns path (fun conn ->
                        fds := discover_fds conn table;
                        dig := Servsim.Remote.server_digests conn))
                  ()
              in
              (ns, fds, dig, th))
            namespaces
        in
        List.map
          (fun (ns, fds, dig, th) ->
            Thread.join th;
            (ns, !fds, !dig))
          results)
  in
  let single = run_daemon ~domains:1 in
  let sharded = run_daemon ~domains:3 in
  List.iter2
    (fun (ns, fds1, (f1, s1, c1)) (_, fdsn, (fn, sn, cn)) ->
      Alcotest.(check string) (ns ^ " FDs identical") fds1 fdsn;
      Alcotest.(check int64) (ns ^ " full digest bit-identical") f1 fn;
      Alcotest.(check int64) (ns ^ " shape digest bit-identical") s1 sn;
      Alcotest.(check int) (ns ^ " trace count identical") c1 cn)
    single sharded

let test_same_namespace_lands_on_same_worker () =
  with_daemon ~domains:3 (fun path daemon ->
      (* Two live connections plus a later reconnect, all saying
         [Hello "pinned"]: one tenant, one worker, one registry entry. *)
      with_client ~namespace:"pinned" path (fun c1 ->
          with_client ~namespace:"pinned" path (fun c2 ->
              ignore (Servsim.Remote.call c1 (Servsim.Wire.Create_store "s"));
              ignore (Servsim.Remote.call c1 (Servsim.Wire.Ensure ("s", 2)));
              ignore (Servsim.Remote.call c1 (Servsim.Wire.Put ("s", 0, "via c1")));
              (* c2 sees c1's write: same tenant state, same worker. *)
              match Servsim.Remote.call c2 (Servsim.Wire.Get ("s", 0)) with
              | Servsim.Wire.Value v ->
                  Alcotest.(check string) "shared session state" "via c1" v
              | _ -> Alcotest.fail "get via second connection"));
      with_client ~namespace:"pinned" path (fun c3 ->
          match Servsim.Remote.call c3 (Servsim.Wire.Get ("s", 0)) with
          | Servsim.Wire.Value v ->
              Alcotest.(check string) "state survives reconnect" "via c1" v
          | _ -> Alcotest.fail "get after reconnect");
      let owner = Service.Daemon.shard_of daemon "pinned" in
      List.iteri
        (fun i reg ->
          let here = Service.Session.find reg "pinned" <> None in
          Alcotest.(check bool)
            (Printf.sprintf "tenant on worker %d" i)
            (i = owner) here)
        (Service.Daemon.registries daemon))

let test_multidomain_graceful_drain () =
  let path = Filename.temp_file "svc-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with unix_path = Some path; domains = 2 }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let a = Servsim.Remote.connect_unix ~namespace:"drain-a" path in
  let b = Servsim.Remote.connect_unix ~namespace:"drain-b" path in
  ignore (Servsim.Remote.call a (Servsim.Wire.Create_store "s"));
  Service.Daemon.stop daemon;
  (* Connected clients on every worker keep being served during the
     drain... *)
  ignore (Servsim.Remote.call a (Servsim.Wire.Ensure ("s", 2)));
  Servsim.Remote.ping a;
  Servsim.Remote.ping b;
  Servsim.Remote.close a;
  Servsim.Remote.close b;
  (* ...and [run] only returns after [Domain.join] on both workers, so
     [Thread.join] returning proves every domain exited. *)
  Thread.join th;
  Alcotest.(check bool) "socket path removed" false (Sys.file_exists path);
  Alcotest.(check int) "no live connections anywhere" 0 (Service.Daemon.live_conns daemon)

(* {2 Frame decoder unit tests (byte-at-a-time reassembly)} *)

let test_decoder_byte_at_a_time () =
  let req = Servsim.Wire.Put ("store", 7, String.make 100 'z') in
  let buf = Buffer.create 64 in
  Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) req;
  let encoded = Buffer.to_bytes buf in
  let dec = Service.Frame_decoder.create () in
  let got = ref None in
  Bytes.iter
    (fun c ->
      Alcotest.(check bool) "no frame before last byte" true (!got = None);
      Service.Frame_decoder.feed dec (Bytes.make 1 c) ~off:0 ~len:1;
      match Service.Frame_decoder.next dec with
      | Some (r, n) -> got := Some (r, n)
      | None -> ())
    encoded;
  match !got with
  | Some (r, n) ->
      Alcotest.(check bool) "frame decoded" true (r = req);
      Alcotest.(check int) "consumed exactly the frame" (Bytes.length encoded) n;
      Alcotest.(check int) "no residue" 0 (Service.Frame_decoder.pending_bytes dec)
  | None -> Alcotest.fail "frame never completed"

let test_decoder_pipelined_frames () =
  let reqs =
    [ Servsim.Wire.Ping; Servsim.Wire.Get ("a", 1); Servsim.Wire.Put ("b", 2, "vv");
      Servsim.Wire.Stats ]
  in
  let buf = Buffer.create 64 in
  List.iter (fun r -> Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) r) reqs;
  let dec = Service.Frame_decoder.create () in
  Service.Frame_decoder.feed dec (Buffer.to_bytes buf) ~off:0 ~len:(Buffer.length buf);
  let rec drain acc =
    match Service.Frame_decoder.next dec with
    | Some (r, _) -> drain (r :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check bool) "all pipelined frames decoded in order" true (drain [] = reqs)

(* The O(n²) regression: a burst of pipelined frames fed in one chunk
   used to re-copy the remaining buffer once per decoded frame.  The
   decoder now tracks a consumed offset and compacts at a threshold, so
   draining n frames costs O(1) compactions. *)
let test_decoder_burst_compactions_bounded () =
  let n = 500 in
  let req i = Servsim.Wire.Put ("burst", i mod 32, String.make 40 'x') in
  let buf = Buffer.create (n * 64) in
  for i = 0 to n - 1 do
    Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) (req i)
  done;
  let dec = Service.Frame_decoder.create () in
  Service.Frame_decoder.feed dec (Buffer.to_bytes buf) ~off:0 ~len:(Buffer.length buf);
  let decoded = ref 0 in
  let ok = ref true in
  let continue = ref true in
  while !continue do
    match Service.Frame_decoder.next dec with
    | Some (r, _) ->
        ok := !ok && r = req !decoded;
        incr decoded
    | None -> continue := false
  done;
  Alcotest.(check int) "all frames decoded" n !decoded;
  Alcotest.(check bool) "in order" true !ok;
  Alcotest.(check int) "no residue" 0 (Service.Frame_decoder.pending_bytes dec);
  (* The feed itself may compact/grow a handful of times; what must not
     happen is one compaction per frame. *)
  Alcotest.(check bool) "O(1) compactions for the burst" true
    (Service.Frame_decoder.compactions dec < 20)

let test_decoder_trickled_large_frame () =
  let req = Servsim.Wire.Put ("big", 0, String.make 20_000 'y') in
  let buf = Buffer.create 32_000 in
  Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) req;
  let encoded = Buffer.to_bytes buf in
  let dec = Service.Frame_decoder.create () in
  let got = ref false in
  let chunk = 777 in
  let off = ref 0 in
  while not !got && !off < Bytes.length encoded do
    let len = min chunk (Bytes.length encoded - !off) in
    Service.Frame_decoder.feed dec encoded ~off:!off ~len;
    off := !off + len;
    match Service.Frame_decoder.next dec with
    | Some (r, n) ->
        Alcotest.(check bool) "large frame decoded" true (r = req);
        Alcotest.(check int) "size accounted" (Bytes.length encoded) n;
        got := true
    | None -> ()
  done;
  Alcotest.(check bool) "frame completed" true !got;
  Alcotest.(check int) "only on full arrival" (Bytes.length encoded) !off

(* {2 Metrics: bounded tracking and eviction folding} *)

let test_metrics_tracking_bounded () =
  let m = Service.Metrics.create () in
  for i = 1 to Service.Metrics.max_tracked + 1000 do
    Service.Metrics.record m
      ~namespace:(Printf.sprintf "ns-%d" i)
      ~bytes_in:10 ~bytes_out:20 ~latency_s:0.001
  done;
  Alcotest.(check bool) "tracked entries capped" true
    (Service.Metrics.tracked m <= Service.Metrics.max_tracked + 1);
  (* Not one namespace was dropped on the floor: the overflow frames are
     all in the catch-all bucket, which [namespaces] does not list. *)
  let listed = List.length (Service.Metrics.namespaces m) in
  let overflow = Service.Metrics.max_tracked + 1000 - listed in
  Alcotest.(check bool) "overflow went to the catch-all bucket" true (overflow > 0);
  let total_frames =
    List.fold_left
      (fun acc ns -> acc + (Service.Metrics.ns_summary m ns).Service.Metrics.frames)
      0
      (Service.Metrics.namespaces m)
  in
  Alcotest.(check int) "no frame lost to the cap"
    (Service.Metrics.max_tracked + 1000)
    (total_frames + (Service.Metrics.ns_summary m "").Service.Metrics.frames)

let test_metrics_evict_folds_counters () =
  let m = Service.Metrics.create () in
  for _ = 1 to 7 do
    Service.Metrics.record m ~namespace:"gone" ~bytes_in:100 ~bytes_out:50
      ~latency_s:0.002
  done;
  Service.Metrics.record m ~namespace:"stays" ~bytes_in:1 ~bytes_out:1 ~latency_s:0.001;
  Service.Metrics.evict_ns m "gone";
  Alcotest.(check int) "entry dropped" 0
    (Service.Metrics.ns_summary m "gone").Service.Metrics.frames;
  Alcotest.(check bool) "namespace no longer listed" false
    (List.mem "gone" (Service.Metrics.namespaces m));
  Alcotest.(check int) "eviction counted" 1 (Service.Metrics.evicted m);
  Alcotest.(check int) "frames folded into the aggregate" 7
    (Service.Metrics.evicted_frames m);
  (* Idempotent for unknown names; the survivor is untouched. *)
  Service.Metrics.evict_ns m "never-seen";
  Alcotest.(check int) "unknown eviction is a no-op" 1 (Service.Metrics.evicted m);
  Alcotest.(check int) "survivor intact" 1
    (Service.Metrics.ns_summary m "stays").Service.Metrics.frames;
  (* A returning tenant starts a fresh entry from zero. *)
  Service.Metrics.record m ~namespace:"gone" ~bytes_in:9 ~bytes_out:9 ~latency_s:0.001;
  Alcotest.(check int) "returning tenant starts fresh" 1
    (Service.Metrics.ns_summary m "gone").Service.Metrics.frames

let suite =
  [
    Alcotest.test_case "concurrent tenants match single-client digests" `Quick
      test_concurrent_tenants_match_single_client;
    Alcotest.test_case "tenant state survives reconnect" `Quick
      test_tenant_state_survives_reconnect;
    Alcotest.test_case "frames match per-session ledger" `Quick
      test_frames_match_session_ledger;
    Alcotest.test_case "mid-frame disconnect isolated" `Quick
      test_mid_frame_disconnect_leaves_others_served;
    Alcotest.test_case "malformed frame isolated" `Quick
      test_malformed_frame_closes_only_offender;
    Alcotest.test_case "hello required first" `Quick test_hello_required_first;
    Alcotest.test_case "v2 handshake rejected" `Quick test_v2_handshake_rejected;
    Alcotest.test_case "connection cap" `Quick test_connection_cap;
    Alcotest.test_case "idle timeout" `Slow test_idle_timeout;
    Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
    Alcotest.test_case "tcp listener" `Quick test_tcp_listener;
    Alcotest.test_case "namespace shard deterministic" `Quick test_shard_deterministic;
    Alcotest.test_case "multi-domain digests match single-domain" `Quick
      test_multidomain_digests_match_single_domain;
    Alcotest.test_case "same namespace lands on same worker" `Quick
      test_same_namespace_lands_on_same_worker;
    Alcotest.test_case "multi-domain graceful drain" `Quick test_multidomain_graceful_drain;
    Alcotest.test_case "decoder byte-at-a-time" `Quick test_decoder_byte_at_a_time;
    Alcotest.test_case "decoder pipelined frames" `Quick test_decoder_pipelined_frames;
    Alcotest.test_case "decoder burst compactions bounded" `Quick
      test_decoder_burst_compactions_bounded;
    Alcotest.test_case "decoder trickled large frame" `Quick
      test_decoder_trickled_large_frame;
    Alcotest.test_case "metrics tracking bounded" `Quick test_metrics_tracking_bounded;
    Alcotest.test_case "metrics eviction folds counters" `Quick
      test_metrics_evict_folds_counters;
  ]
