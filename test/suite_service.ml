(* The multi-tenant daemon: an in-process [Service.Daemon] on a Unix
   socket (run in a background thread), exercised by real client
   connections.  Checks per-tenant isolation — concurrent discover runs
   produce server-side trace digests bit-identical to a single-client
   run — plus the frames == per-session-ledger invariant, fault
   isolation (mid-frame disconnects, malformed frames, a v2 client),
   the connection cap, the idle timeout, and graceful drain. *)

let with_daemon ?(max_conns = 64) ?(idle_timeout = 0.) ?(domains = 1)
    ?(backend = Service.Evloop.Select) f =
  let path = Filename.temp_file "svc-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        max_conns;
        idle_timeout;
        domains;
        backend }
  in
  let th = Thread.create Service.Daemon.run daemon in
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () -> f path daemon)

let with_client ?namespace ?depth path f =
  let conn = Servsim.Remote.connect_unix ?namespace ?depth path in
  Fun.protect
    ~finally:(fun () ->
      ((try Servsim.Remote.close conn with _ -> ()) [@lint.allow "exception-hygiene"]))
    (fun () -> f conn)

(* A raw (non-[Remote]) connection, for speaking out of protocol. *)
let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let discover_fds conn table =
  let r = Core.Protocol.discover ~seed:99 ~remote:conn Core.Protocol.Sort table in
  String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) r.Core.Protocol.fds)

(* {2 Tenant isolation under concurrency} *)

let test_concurrent_tenants_match_single_client backend () =
  let table = Datasets.Examples.fig1 () in
  (* Reference: one daemon, one client, one tenant — always on the
     portable select backend, so the parameterized runs also prove the
     poll/epoll paths bit-identical to select. *)
  let ref_fds = ref "" and ref_digests = ref (0L, 0L, 0) in
  with_daemon (fun path _ ->
      with_client ~namespace:"solo" path (fun conn ->
          ref_fds := discover_fds conn table;
          ref_digests := Servsim.Remote.server_digests conn));
  (* Two tenants running the same protocol concurrently on one daemon:
     each tenant's server-side trace must be bit-identical to the
     single-client run — neither client can even see that the other
     exists in its own adversary view. *)
  with_daemon ~backend (fun path _ ->
      let run ns out_fds out_digests () =
        with_client ~namespace:ns path (fun conn ->
            out_fds := discover_fds conn table;
            out_digests := Servsim.Remote.server_digests conn)
      in
      let a_fds = ref "" and a_dig = ref (0L, 0L, 0) in
      let b_fds = ref "" and b_dig = ref (0L, 0L, 0) in
      let ta = Thread.create (run "alice" a_fds a_dig) () in
      let tb = Thread.create (run "bob" b_fds b_dig) () in
      Thread.join ta;
      Thread.join tb;
      Alcotest.(check string) "alice finds the same FDs" !ref_fds !a_fds;
      Alcotest.(check string) "bob finds the same FDs" !ref_fds !b_fds;
      let f0, s0, c0 = !ref_digests in
      let check_digests who (f, s, c) =
        Alcotest.(check int64) (who ^ " full digest") f0 f;
        Alcotest.(check int64) (who ^ " shape digest") s0 s;
        Alcotest.(check int) (who ^ " trace count") c0 c
      in
      check_digests "alice" !a_dig;
      check_digests "bob" !b_dig)

let test_tenant_state_survives_reconnect () =
  with_daemon (fun path _ ->
      with_client ~namespace:"durable" path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 4)));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 1, "kept"))));
      with_client ~namespace:"durable" path (fun conn ->
          match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 1)) with
          | Servsim.Wire.Value v -> Alcotest.(check string) "value survives" "kept" v
          | _ -> Alcotest.fail "get after reconnect");
      (* ...but another namespace sees none of it. *)
      with_client ~namespace:"stranger" path (fun conn ->
          Alcotest.(check bool) "other tenant has no store" true
            (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 1)) with
            | exception Servsim.Wire.Protocol_error _ -> true
            | _ -> false)))

(* {2 Session accounting} *)

let test_frames_match_session_ledger () =
  with_daemon (fun path _ ->
      with_client ~namespace:"ledger" path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 8)));
          for i = 0 to 7 do
            ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", i, "x")))
          done;
          Servsim.Remote.ping conn;
          let stats = Servsim.Remote.stats conn in
          Alcotest.(check int) "server ledger equals client frames"
            (Servsim.Remote.frames conn) stats.Servsim.Wire.frames;
          (* A second look must observe the first Stats exchange too. *)
          let stats2 = Servsim.Remote.stats conn in
          Alcotest.(check int) "still equal after Stats itself"
            (Servsim.Remote.frames conn) stats2.Servsim.Wire.frames;
          Alcotest.(check bool) "sampled latency percentiles are ordered" true
            (stats2.Servsim.Wire.p50_us <= stats2.Servsim.Wire.p95_us
            && stats2.Servsim.Wire.p95_us <= stats2.Servsim.Wire.p99_us)))

(* {2 Fault isolation} *)

let test_mid_frame_disconnect_leaves_others_served backend () =
  with_daemon ~backend (fun path _ ->
      with_client ~namespace:"survivor" path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 2)));
          (* A second client dies mid-frame: version byte, Hello, then a
             Put whose length prefix is cut short by an abrupt close. *)
          let fd, ic, oc = raw_connect path in
          output_char oc (Char.chr Servsim.Wire.protocol_version);
          flush oc;
          Alcotest.(check int) "handshake answered" Servsim.Wire.protocol_version
            (Char.code (input_char ic));
          Servsim.Wire.write_request oc (Servsim.Wire.Hello "victim");
          (match Servsim.Wire.read_response ic with
          | Servsim.Wire.Ok -> ()
          | _ -> Alcotest.fail "hello");
          output_string oc "\005\002";
          flush oc;
          Unix.close fd;
          (* The survivor is still served by the same daemon. *)
          ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 0, "alive")));
          match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 0)) with
          | Servsim.Wire.Value v -> Alcotest.(check string) "served after kill" "alive" v
          | _ -> Alcotest.fail "get"))

let test_malformed_frame_closes_only_offender () =
  with_daemon (fun path _ ->
      with_client ~namespace:"bystander" path (fun conn ->
          let fd, ic, oc = raw_connect path in
          output_char oc (Char.chr Servsim.Wire.protocol_version);
          flush oc;
          ignore (input_char ic);
          Servsim.Wire.write_request oc (Servsim.Wire.Hello "hostile");
          (match Servsim.Wire.read_response ic with
          | Servsim.Wire.Ok -> ()
          | _ -> Alcotest.fail "hello");
          (* An unknown tag is beyond resync: the daemon must answer one
             final Error and hang up on this connection only. *)
          output_char oc '\042';
          flush oc;
          (match Servsim.Wire.read_response ic with
          | Servsim.Wire.Error _ -> ()
          | _ -> Alcotest.fail "expected Error for bad tag");
          Alcotest.(check bool) "offender hung up" true
            (match input_char ic with
            | _ -> false
            | exception End_of_file -> true);
          Unix.close fd;
          Servsim.Remote.ping conn))

let test_hello_required_first () =
  with_daemon (fun path _ ->
      let fd, ic, oc = raw_connect path in
      output_char oc (Char.chr Servsim.Wire.protocol_version);
      flush oc;
      ignore (input_char ic);
      Servsim.Wire.write_request oc Servsim.Wire.Ping;
      (match Servsim.Wire.read_response ic with
      | Servsim.Wire.Error _ -> ()
      | _ -> Alcotest.fail "expected Error before Hello");
      Alcotest.(check bool) "connection closed" true
        (match input_char ic with _ -> false | exception End_of_file -> true);
      Unix.close fd)

let test_v2_handshake_rejected () =
  with_daemon (fun path _ ->
      let fd, ic, oc = raw_connect path in
      output_char oc '\002';
      flush oc;
      (* The daemon announces its own version so the stale client can
         diagnose the mismatch, then hangs up. *)
      Alcotest.(check int) "daemon announces its version" Servsim.Wire.protocol_version
        (Char.code (input_char ic));
      Alcotest.(check bool) "then hangs up" true
        (match input_char ic with _ -> false | exception End_of_file -> true);
      Unix.close fd)

(* {2 Robustness: cap, idle timeout, drain} *)

let test_connection_cap () =
  with_daemon ~max_conns:2 (fun path _ ->
      with_client ~namespace:"one" path (fun _c1 ->
          with_client ~namespace:"two" path (fun _c2 ->
              Alcotest.(check bool) "third connection turned away" true
                (match Servsim.Remote.connect_unix ~namespace:"three" path with
                | conn ->
                    Servsim.Remote.close conn;
                    false
                | exception _ -> true))))

let test_idle_timeout backend () =
  with_daemon ~backend ~idle_timeout:0.3 (fun path _ ->
      with_client ~namespace:"sleepy" path (fun conn ->
          Servsim.Remote.ping conn;
          Unix.sleepf 1.2;
          Alcotest.(check bool) "idle connection was closed" true
            (match Servsim.Remote.ping conn with
            | () -> false
            | exception _ -> true)))

let test_graceful_drain backend () =
  let path = Filename.temp_file "svc-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with unix_path = Some path; backend }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let conn = Servsim.Remote.connect_unix ~namespace:"draining" path in
  ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
  Service.Daemon.stop daemon;
  (* Already-connected clients keep being served during the drain... *)
  ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 2)));
  Servsim.Remote.ping conn;
  (* ...and once the last one leaves, the daemon exits. *)
  Servsim.Remote.close conn;
  Thread.join th;
  Alcotest.(check bool) "socket path removed" false (Sys.file_exists path);
  Alcotest.(check int) "no live connections" 0 (Service.Daemon.live_conns daemon)

let test_tcp_listener () =
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with tcp = Some ("127.0.0.1", 0) }
  in
  let port =
    match Service.Daemon.tcp_port daemon with Some p -> p | None -> Alcotest.fail "no port"
  in
  let th = Thread.create Service.Daemon.run daemon in
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () ->
      let conn = Servsim.Remote.connect_tcp ~namespace:"tcp" ~host:"127.0.0.1" ~port () in
      Servsim.Remote.ping conn;
      ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 1)));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 0, "over tcp")));
      (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 0)) with
      | Servsim.Wire.Value v -> Alcotest.(check string) "tcp roundtrip" "over tcp" v
      | _ -> Alcotest.fail "get");
      Servsim.Remote.close conn)

(* {2 Readiness backends: handshake robustness, fd-limit behaviour} *)

(* A client that trickles its handshake — version byte alone, then the
   [Hello] frame split mid-bytes — must be reassembled identically by
   every backend: readiness semantics (level vs edge, ready-set
   encoding) are Evloop-internal and must not leak into framing. *)
let test_trickled_handshake backend () =
  with_daemon ~backend (fun path _ ->
      let fd, ic, oc = raw_connect path in
      output_char oc (Char.chr Servsim.Wire.protocol_version);
      flush oc;
      Alcotest.(check int) "echoed version" Servsim.Wire.protocol_version
        (Char.code (input_char ic));
      let buf = Buffer.create 64 in
      Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf)
        (Servsim.Wire.Hello "slow");
      let frame = Buffer.contents buf in
      let cut = String.length frame / 2 in
      output_string oc (String.sub frame 0 cut);
      flush oc;
      Unix.sleepf 0.05;
      output_string oc (String.sub frame cut (String.length frame - cut));
      flush oc;
      (match Servsim.Wire.read_response ic with
      | Servsim.Wire.Ok -> ()
      | _ -> Alcotest.fail "hello after trickle");
      Servsim.Wire.write_request oc Servsim.Wire.Ping;
      (match Servsim.Wire.read_response ic with
      | Servsim.Wire.Pong -> ()
      | _ -> Alcotest.fail "ping after trickle");
      Unix.close fd)

(* The handshake stage is unauthenticated and acceptor-owned, so its
   buffering is bounded: a client opening with a jumbo first frame is
   cut off at [Conn.pre_hello_max], long before the 64 MiB frame cap. *)
let test_handshake_flood_bounded backend () =
  with_daemon ~backend (fun path _ ->
      let fd, ic, oc = raw_connect path in
      output_char oc (Char.chr Servsim.Wire.protocol_version);
      flush oc;
      ignore (input_char ic);
      (* A well-formed Put frame much larger than the pre-hello budget,
         sent all but its last byte so it never completes. *)
      let buf = Buffer.create 16_384 in
      Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf)
        (Servsim.Wire.Put ("s", 0, String.make (4 * Service.Conn.pre_hello_max) 'x'));
      let frame = Buffer.contents buf in
      output_string oc (String.sub frame 0 (String.length frame - 1));
      flush oc;
      (match Servsim.Wire.read_response ic with
      | Servsim.Wire.Error _ -> ()
      | _ -> Alcotest.fail "expected Error for an oversized pre-hello frame");
      Alcotest.(check bool) "connection closed" true
        (match input_char ic with _ -> false | exception End_of_file -> true);
      Unix.close fd)

(* The point of poll/epoll: accept and serve more connections than
   select's FD_SETSIZE wall.  Each connection holds two descriptors in
   this (shared-table, in-process) test, so 1100 of them push fd numbers
   well past 1024; every one completes its handshake and session setup,
   and a sample across the whole fd range is then served with all the
   others still open. *)
let fanout_conns = 1100

let test_fanout_past_fd_setsize backend () =
  with_daemon ~backend ~max_conns:(fanout_conns + 64) (fun path _ ->
      let conns =
        Array.init fanout_conns (fun i ->
            let fd, ic, oc = raw_connect path in
            output_char oc (Char.chr Servsim.Wire.protocol_version);
            flush oc;
            Alcotest.(check int)
              (Printf.sprintf "conn %d handshake" i)
              Servsim.Wire.protocol_version
              (Char.code (input_char ic));
            Servsim.Wire.write_request oc
              (Servsim.Wire.Hello (Printf.sprintf "fan-%d" (i mod 7)));
            (match Servsim.Wire.read_response ic with
            | Servsim.Wire.Ok -> ()
            | _ -> Alcotest.failf "conn %d hello" i);
            (fd, ic, oc))
      in
      Array.iteri
        (fun i (_, ic, oc) ->
          if i mod 97 = 0 || i = fanout_conns - 1 then begin
            Servsim.Wire.write_request oc Servsim.Wire.Ping;
            match Servsim.Wire.read_response ic with
            | Servsim.Wire.Pong -> ()
            | _ -> Alcotest.failf "conn %d not served" i
          end)
        conns;
      Array.iter (fun (fd, _, _) -> Unix.close fd) conns)

(* select cannot represent descriptors >= FD_SETSIZE: the daemon must
   refuse such a connection at accept time instead of corrupting its
   ready sets.  Opening connections until the shared fd table passes
   1024 forces the case; the refusal is the overflowing connection's
   problem only — earlier connections keep being served. *)
let test_select_refuses_past_fd_setsize () =
  with_daemon ~backend:Service.Evloop.Select ~max_conns:4096 (fun path _ ->
      with_client ~namespace:"early" path (fun early ->
          Servsim.Remote.ping early;
          let opened = ref [] in
          let refused = ref false in
          Fun.protect
            ~finally:(fun () -> List.iter (fun (fd, _, _) -> Unix.close fd) !opened)
            (fun () ->
              let i = ref 0 in
              while (not !refused) && !i < 1200 do
                incr i;
                let (_, ic, oc) as c = raw_connect path in
                opened := c :: !opened;
                (* The refusal close can surface as a clean EOF or as a
                   reset, depending on who wins the race. *)
                let served =
                  try
                    output_char oc (Char.chr Servsim.Wire.protocol_version);
                    flush oc;
                    match input_char ic with
                    | _ -> true
                    | exception End_of_file -> false
                  with Sys_error _ -> false
                in
                if not served then refused := true
              done;
              Alcotest.(check bool) "a connection beyond FD_SETSIZE was refused" true
                !refused;
              Servsim.Remote.ping early)))

(* {2 Client pipelining} *)

let test_pipelined_ordered backend () =
  with_daemon ~backend (fun path _ ->
      with_client ~namespace:"pipe" ~depth:8 path (fun conn ->
          ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
          ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 32)));
          let reqs =
            List.concat_map
              (fun i ->
                [ Servsim.Wire.Put ("s", i, Printf.sprintf "v%d" i);
                  Servsim.Wire.Get ("s", i) ])
              (List.init 32 Fun.id)
          in
          let resps = Servsim.Remote.pipelined conn reqs in
          Alcotest.(check int) "one response per request" (List.length reqs)
            (List.length resps);
          List.iteri
            (fun i r ->
              match (i mod 2, r) with
              | 0, Servsim.Wire.Ok -> ()
              | 1, Servsim.Wire.Value v ->
                  Alcotest.(check string) "responses in request order"
                    (Printf.sprintf "v%d" (i / 2))
                    v
              | _ -> Alcotest.failf "response %d out of order" i)
            resps;
          (* Pipelined frames hit the same ledger as synchronous ones. *)
          let stats = Servsim.Remote.stats conn in
          Alcotest.(check int) "server ledger equals client frames"
            (Servsim.Remote.frames conn) stats.Servsim.Wire.frames))

(* The obliviousness bar for the async write path: the same op sequence
   issued through [multi_put_async] at depth 8 must leave the server
   with the very same trace digests, frame ledger and byte counts as
   synchronous depth-1 [multi_put]s — pipelining changes scheduling,
   never the adversary view. *)
let test_async_puts_match_sync () =
  with_daemon (fun path _ ->
      let items = List.init 64 (fun i -> (i, Printf.sprintf "blk-%04d" i)) in
      let run ns depth put =
        with_client ~namespace:ns ~depth path (fun conn ->
            ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
            ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 64)));
            List.iter (fun it -> put conn [ it ]) items;
            Servsim.Remote.drain conn;
            let d = Servsim.Remote.server_digests conn in
            let stats = Servsim.Remote.stats conn in
            Alcotest.(check int) (ns ^ ": ledger equals frames")
              (Servsim.Remote.frames conn) stats.Servsim.Wire.frames;
            (d, stats.Servsim.Wire.frames, stats.Servsim.Wire.bytes_in,
             stats.Servsim.Wire.bytes_out))
      in
      let (d1, f1, in1, out1) =
        run "sync" 1 (fun c its -> Servsim.Remote.multi_put c ~store:"s" its)
      in
      let (d8, f8, in8, out8) =
        run "async" 8 (fun c its -> Servsim.Remote.multi_put_async c ~store:"s" its)
      in
      let fu1, sh1, c1 = d1 and fu8, sh8, c8 = d8 in
      Alcotest.(check int64) "full digest bit-identical" fu1 fu8;
      Alcotest.(check int64) "shape digest bit-identical" sh1 sh8;
      Alcotest.(check int) "trace count identical" c1 c8;
      Alcotest.(check int) "frames identical" f1 f8;
      Alcotest.(check int) "bytes in identical" in1 in8;
      Alcotest.(check int) "bytes out identical" out1 out8)

let test_send_recv_window () =
  with_daemon (fun path _ ->
      with_client ~namespace:"raw" ~depth:4 path (fun conn ->
          for _ = 1 to 4 do
            Servsim.Remote.send conn Servsim.Wire.Ping
          done;
          Alcotest.(check int) "window full" 4 (Servsim.Remote.inflight conn);
          Alcotest.(check bool) "fifth send refused" true
            (match Servsim.Remote.send conn Servsim.Wire.Ping with
            | () -> false
            | exception Servsim.Wire.Protocol_error _ -> true);
          for _ = 1 to 4 do
            match Servsim.Remote.recv conn with
            | Servsim.Wire.Pong -> ()
            | _ -> Alcotest.fail "expected Pong"
          done;
          Alcotest.(check int) "window drained" 0 (Servsim.Remote.inflight conn);
          Alcotest.(check bool) "recv with nothing in flight refused" true
            (match Servsim.Remote.recv conn with
            | _ -> false
            | exception Servsim.Wire.Protocol_error _ -> true);
          (* The connection is fully usable synchronously afterwards. *)
          Servsim.Remote.ping conn))

(* {2 Event-loop syscall accounting} *)

let test_loop_counters_in_stats () =
  with_daemon (fun path _ ->
      with_client ~namespace:"counted" path (fun conn ->
          for _ = 1 to 5 do
            Servsim.Remote.ping conn
          done;
          let s = Servsim.Remote.stats conn in
          Alcotest.(check bool) "loop rounds counted" true (s.Servsim.Wire.loop_rounds > 0);
          Alcotest.(check bool) "read syscalls counted" true (s.Servsim.Wire.loop_reads > 0);
          Alcotest.(check bool) "write syscalls counted" true
            (s.Servsim.Wire.loop_writes > 0);
          Alcotest.(check bool) "wakeups counted, at most one per round" true
            (s.Servsim.Wire.loop_wakeups > 0
            && s.Servsim.Wire.loop_wakeups <= s.Servsim.Wire.loop_rounds)))

let test_wake_histogram_buckets () =
  let m = Service.Metrics.create () in
  List.iter
    (fun n -> Service.Metrics.record_wake_frames m n)
    [ 0; 1; 1; 2; 5; 9; 31; 32; 1000 ];
  let hist = Service.Metrics.wake_histogram m in
  let count b = match List.assoc_opt b hist with Some n -> n | None -> 0 in
  Alcotest.(check int) "bucket 0" 1 (count "0");
  Alcotest.(check int) "bucket 1" 2 (count "1");
  Alcotest.(check int) "bucket 2" 1 (count "2");
  Alcotest.(check int) "bucket 4-7" 1 (count "4-7");
  Alcotest.(check int) "bucket 8-15" 1 (count "8-15");
  Alcotest.(check int) "bucket 16-31" 1 (count "16-31");
  Alcotest.(check int) "bucket 32+" 2 (count "32+")

(* {2 Namespace-sharded worker domains} *)

let test_shard_deterministic () =
  List.iter
    (fun shards ->
      List.iter
        (fun ns ->
          let s = Service.Session.shard ~shards ns in
          Alcotest.(check bool)
            (Printf.sprintf "shard %S/%d in range" ns shards)
            true
            (s >= 0 && s < max 1 shards);
          Alcotest.(check int)
            (Printf.sprintf "shard %S/%d stable" ns shards)
            s
            (Service.Session.shard ~shards ns))
        [ ""; "alice"; "bob"; "a-rather-long-namespace-name"; "\x00\xff" ])
    [ 1; 2; 3; 4; 7; 16 ];
  Alcotest.(check int) "single shard is always 0" 0
    (Service.Session.shard ~shards:1 "anything")

(* The acceptance bar for the sharded daemon: per-tenant digests under
   concurrent multi-namespace load on N worker domains are bit-identical
   to the single-domain daemon (which in turn matches a solo client, per
   [test_concurrent_tenants_match_single_client]).  Obliviousness is a
   per-tenant property; how tenants are spread over domains must be
   invisible in every adversary view. *)
let test_multidomain_digests_match_single_domain () =
  let table = Datasets.Examples.fig1 () in
  let namespaces = [ "tenant-a"; "tenant-b"; "tenant-c" ] in
  let run_daemon ~domains =
    with_daemon ~domains (fun path _ ->
        let results =
          List.map
            (fun ns ->
              let fds = ref "" and dig = ref (0L, 0L, 0) in
              let th =
                Thread.create
                  (fun () ->
                    with_client ~namespace:ns path (fun conn ->
                        fds := discover_fds conn table;
                        dig := Servsim.Remote.server_digests conn))
                  ()
              in
              (ns, fds, dig, th))
            namespaces
        in
        List.map
          (fun (ns, fds, dig, th) ->
            Thread.join th;
            (ns, !fds, !dig))
          results)
  in
  let single = run_daemon ~domains:1 in
  let sharded = run_daemon ~domains:3 in
  List.iter2
    (fun (ns, fds1, (f1, s1, c1)) (_, fdsn, (fn, sn, cn)) ->
      Alcotest.(check string) (ns ^ " FDs identical") fds1 fdsn;
      Alcotest.(check int64) (ns ^ " full digest bit-identical") f1 fn;
      Alcotest.(check int64) (ns ^ " shape digest bit-identical") s1 sn;
      Alcotest.(check int) (ns ^ " trace count identical") c1 cn)
    single sharded

let test_same_namespace_lands_on_same_worker () =
  with_daemon ~domains:3 (fun path daemon ->
      (* Two live connections plus a later reconnect, all saying
         [Hello "pinned"]: one tenant, one worker, one registry entry. *)
      with_client ~namespace:"pinned" path (fun c1 ->
          with_client ~namespace:"pinned" path (fun c2 ->
              ignore (Servsim.Remote.call c1 (Servsim.Wire.Create_store "s"));
              ignore (Servsim.Remote.call c1 (Servsim.Wire.Ensure ("s", 2)));
              ignore (Servsim.Remote.call c1 (Servsim.Wire.Put ("s", 0, "via c1")));
              (* c2 sees c1's write: same tenant state, same worker. *)
              match Servsim.Remote.call c2 (Servsim.Wire.Get ("s", 0)) with
              | Servsim.Wire.Value v ->
                  Alcotest.(check string) "shared session state" "via c1" v
              | _ -> Alcotest.fail "get via second connection"));
      with_client ~namespace:"pinned" path (fun c3 ->
          match Servsim.Remote.call c3 (Servsim.Wire.Get ("s", 0)) with
          | Servsim.Wire.Value v ->
              Alcotest.(check string) "state survives reconnect" "via c1" v
          | _ -> Alcotest.fail "get after reconnect");
      let owner = Service.Daemon.shard_of daemon "pinned" in
      List.iteri
        (fun i reg ->
          let here = Service.Session.find reg "pinned" <> None in
          Alcotest.(check bool)
            (Printf.sprintf "tenant on worker %d" i)
            (i = owner) here)
        (Service.Daemon.registries daemon))

let test_multidomain_graceful_drain () =
  let path = Filename.temp_file "svc-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with unix_path = Some path; domains = 2 }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let a = Servsim.Remote.connect_unix ~namespace:"drain-a" path in
  let b = Servsim.Remote.connect_unix ~namespace:"drain-b" path in
  ignore (Servsim.Remote.call a (Servsim.Wire.Create_store "s"));
  Service.Daemon.stop daemon;
  (* Connected clients on every worker keep being served during the
     drain... *)
  ignore (Servsim.Remote.call a (Servsim.Wire.Ensure ("s", 2)));
  Servsim.Remote.ping a;
  Servsim.Remote.ping b;
  Servsim.Remote.close a;
  Servsim.Remote.close b;
  (* ...and [run] only returns after [Domain.join] on both workers, so
     [Thread.join] returning proves every domain exited. *)
  Thread.join th;
  Alcotest.(check bool) "socket path removed" false (Sys.file_exists path);
  Alcotest.(check int) "no live connections anywhere" 0 (Service.Daemon.live_conns daemon)

(* {2 Dynamic FD sessions over the wire (protocol v5)} *)

let dyn_rows = [ [ 1; 10; 100 ]; [ 1; 10; 200 ]; [ 2; 20; 100 ]; [ 3; 20; 200 ] ]

let enc_row ints =
  Dynserve.encode_row (Array.of_list (List.map (fun i -> Relation.Value.Int i) ints))

(* The one-shot library run the wire session must match bit-for-bit:
   same seed, same initial table, same update sequence. *)
let dyn_reference ~seed =
  let v x = Relation.Value.Int x in
  let schema = Relation.Schema.make (Array.init 3 (Printf.sprintf "c%d")) in
  let table =
    Relation.Table.make schema
      (Array.of_list (List.map (fun r -> Array.of_list (List.map v r)) dyn_rows))
  in
  let d = Core.Dynamic.start ~seed ~capacity:64 table in
  ignore (Core.Dynamic.insert d [| v 2; v 3; v 1 |]);
  ignore (Core.Dynamic.insert d [| v 3; v 1; v 1 |]);
  Core.Dynamic.delete d ~id:2;
  let reval = Core.Dynamic.revalidate d in
  let tr = Core.Session.trace (Core.Dynamic.session d) in
  let out =
    ( List.map
        (fun (fd, ok) ->
          (Int64.of_int (Relation.Attrset.to_int fd.Fdbase.Fd.lhs), fd.Fdbase.Fd.rhs, ok))
        reval,
      (Servsim.Trace.full_digest tr, Servsim.Trace.shape_digest tr, Servsim.Trace.count tr)
    )
  in
  Core.Dynamic.release d;
  out

let test_dynamic_session_matches_library () =
  let seed = 4242 in
  let ref_fds, (ref_full, ref_shape, ref_events) = dyn_reference ~seed in
  with_daemon (fun path _ ->
      with_client ~namespace:"dyn" ~depth:8 path (fun conn ->
          ignore
            (Servsim.Remote.begin_dynamic conn ~capacity:64 ~seed:(Int64.of_int seed)
               ~cols:3 (List.map enc_row dyn_rows));
          (* Pipelined update stream: ids are assigned sequentially after
             the initial table. *)
          let ids =
            Servsim.Remote.insert_rows conn [ enc_row [ 2; 3; 1 ]; enc_row [ 3; 1; 1 ] ]
          in
          Alcotest.(check (list int)) "sequential row ids" [ 4; 5 ] ids;
          Servsim.Remote.delete_row conn ~id:2;
          let r = Servsim.Remote.revalidate conn in
          Alcotest.(check int) "engine trace events match library" ref_events
            r.Servsim.Wire.dyn_events;
          Alcotest.(check int64) "full digest bit-identical" ref_full r.Servsim.Wire.dyn_full;
          Alcotest.(check int64) "shape digest bit-identical" ref_shape
            r.Servsim.Wire.dyn_shape;
          let got =
            List.map
              (fun s ->
                (s.Servsim.Wire.fd_lhs, s.Servsim.Wire.fd_rhs, s.Servsim.Wire.fd_valid))
              r.Servsim.Wire.fds
          in
          Alcotest.(check bool) "fd statuses match library" true (got = ref_fds);
          (* v5 per-verb counters and the resident-session gauge. *)
          let st = Servsim.Remote.stats conn in
          Alcotest.(check int) "inserts counted" 2 st.Servsim.Wire.inserts;
          Alcotest.(check int) "deletes counted" 1 st.Servsim.Wire.deletes;
          Alcotest.(check int) "revalidates counted" 1 st.Servsim.Wire.revalidates;
          Alcotest.(check int) "one dynamic session resident" 1 st.Servsim.Wire.dyn_sessions;
          (* A second Begin on an active session is refused... *)
          (match
             Servsim.Remote.call conn
               (Servsim.Wire.Begin_dynamic
                  { seed = 0L; capacity = 0; max_lhs = 0; cols = 3;
                    rows = List.map enc_row dyn_rows })
           with
          | exception Servsim.Wire.Protocol_error _ -> ()
          | _ -> Alcotest.fail "re-Begin must be refused");
          (* ...and an arity-mismatched update is rejected by the engine
             yet still counted — rejections are part of the deterministic
             history the durable journal replays. *)
          (match Servsim.Remote.call conn (Servsim.Wire.Insert_row (enc_row [ 1; 2 ])) with
          | exception Servsim.Wire.Protocol_error _ -> ()
          | _ -> Alcotest.fail "arity mismatch must be rejected");
          let st = Servsim.Remote.stats conn in
          Alcotest.(check int) "rejected insert still counted" 3 st.Servsim.Wire.inserts);
      (* Updates without a session are refused, and the gauge still shows
         only the one live session of the other tenant. *)
      with_client ~namespace:"bystander" path (fun conn ->
          (match Servsim.Remote.call conn (Servsim.Wire.Insert_row (enc_row [ 1; 2; 3 ])) with
          | exception Servsim.Wire.Protocol_error _ -> ()
          | _ -> Alcotest.fail "update without Begin must fail");
          let st = Servsim.Remote.stats conn in
          Alcotest.(check int) "gauge counts live sessions only" 1
            st.Servsim.Wire.dyn_sessions))

(* {2 Frame decoder unit tests (byte-at-a-time reassembly)} *)

let test_decoder_byte_at_a_time () =
  let req = Servsim.Wire.Put ("store", 7, String.make 100 'z') in
  let buf = Buffer.create 64 in
  Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) req;
  let encoded = Buffer.to_bytes buf in
  let dec = Service.Frame_decoder.create () in
  let got = ref None in
  Bytes.iter
    (fun c ->
      Alcotest.(check bool) "no frame before last byte" true (!got = None);
      Service.Frame_decoder.feed dec (Bytes.make 1 c) ~off:0 ~len:1;
      match Service.Frame_decoder.next dec with
      | Some (r, n) -> got := Some (r, n)
      | None -> ())
    encoded;
  match !got with
  | Some (r, n) ->
      Alcotest.(check bool) "frame decoded" true (r = req);
      Alcotest.(check int) "consumed exactly the frame" (Bytes.length encoded) n;
      Alcotest.(check int) "no residue" 0 (Service.Frame_decoder.pending_bytes dec)
  | None -> Alcotest.fail "frame never completed"

let test_decoder_pipelined_frames () =
  let reqs =
    [ Servsim.Wire.Ping; Servsim.Wire.Get ("a", 1); Servsim.Wire.Put ("b", 2, "vv");
      Servsim.Wire.Stats ]
  in
  let buf = Buffer.create 64 in
  List.iter (fun r -> Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) r) reqs;
  let dec = Service.Frame_decoder.create () in
  Service.Frame_decoder.feed dec (Buffer.to_bytes buf) ~off:0 ~len:(Buffer.length buf);
  let rec drain acc =
    match Service.Frame_decoder.next dec with
    | Some (r, _) -> drain (r :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check bool) "all pipelined frames decoded in order" true (drain [] = reqs)

(* The O(n²) regression: a burst of pipelined frames fed in one chunk
   used to re-copy the remaining buffer once per decoded frame.  The
   decoder now tracks a consumed offset and compacts at a threshold, so
   draining n frames costs O(1) compactions. *)
let test_decoder_burst_compactions_bounded () =
  let n = 500 in
  let req i = Servsim.Wire.Put ("burst", i mod 32, String.make 40 'x') in
  let buf = Buffer.create (n * 64) in
  for i = 0 to n - 1 do
    Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) (req i)
  done;
  let dec = Service.Frame_decoder.create () in
  Service.Frame_decoder.feed dec (Buffer.to_bytes buf) ~off:0 ~len:(Buffer.length buf);
  let decoded = ref 0 in
  let ok = ref true in
  let continue = ref true in
  while !continue do
    match Service.Frame_decoder.next dec with
    | Some (r, _) ->
        ok := !ok && r = req !decoded;
        incr decoded
    | None -> continue := false
  done;
  Alcotest.(check int) "all frames decoded" n !decoded;
  Alcotest.(check bool) "in order" true !ok;
  Alcotest.(check int) "no residue" 0 (Service.Frame_decoder.pending_bytes dec);
  (* The feed itself may compact/grow a handful of times; what must not
     happen is one compaction per frame. *)
  Alcotest.(check bool) "O(1) compactions for the burst" true
    (Service.Frame_decoder.compactions dec < 20)

let test_decoder_trickled_large_frame () =
  let req = Servsim.Wire.Put ("big", 0, String.make 20_000 'y') in
  let buf = Buffer.create 32_000 in
  Servsim.Wire.write_request_sink (Servsim.Wire.buffer_sink buf) req;
  let encoded = Buffer.to_bytes buf in
  let dec = Service.Frame_decoder.create () in
  let got = ref false in
  let chunk = 777 in
  let off = ref 0 in
  while not !got && !off < Bytes.length encoded do
    let len = min chunk (Bytes.length encoded - !off) in
    Service.Frame_decoder.feed dec encoded ~off:!off ~len;
    off := !off + len;
    match Service.Frame_decoder.next dec with
    | Some (r, n) ->
        Alcotest.(check bool) "large frame decoded" true (r = req);
        Alcotest.(check int) "size accounted" (Bytes.length encoded) n;
        got := true
    | None -> ()
  done;
  Alcotest.(check bool) "frame completed" true !got;
  Alcotest.(check int) "only on full arrival" (Bytes.length encoded) !off

(* {2 Metrics: bounded tracking and eviction folding} *)

let test_metrics_tracking_bounded () =
  let m = Service.Metrics.create () in
  for i = 1 to Service.Metrics.max_tracked + 1000 do
    Service.Metrics.record m
      ~namespace:(Printf.sprintf "ns-%d" i)
      ~bytes_in:10 ~bytes_out:20 ~latency_s:0.001
  done;
  Alcotest.(check bool) "tracked entries capped" true
    (Service.Metrics.tracked m <= Service.Metrics.max_tracked + 1);
  (* Not one namespace was dropped on the floor: the overflow frames are
     all in the catch-all bucket, which [namespaces] does not list. *)
  let listed = List.length (Service.Metrics.namespaces m) in
  let overflow = Service.Metrics.max_tracked + 1000 - listed in
  Alcotest.(check bool) "overflow went to the catch-all bucket" true (overflow > 0);
  let total_frames =
    List.fold_left
      (fun acc ns -> acc + (Service.Metrics.ns_summary m ns).Service.Metrics.frames)
      0
      (Service.Metrics.namespaces m)
  in
  Alcotest.(check int) "no frame lost to the cap"
    (Service.Metrics.max_tracked + 1000)
    (total_frames + (Service.Metrics.ns_summary m "").Service.Metrics.frames)

let test_metrics_evict_folds_counters () =
  let m = Service.Metrics.create () in
  for _ = 1 to 7 do
    Service.Metrics.record m ~namespace:"gone" ~bytes_in:100 ~bytes_out:50
      ~latency_s:0.002
  done;
  Service.Metrics.record m ~namespace:"stays" ~bytes_in:1 ~bytes_out:1 ~latency_s:0.001;
  Service.Metrics.evict_ns m "gone";
  Alcotest.(check int) "entry dropped" 0
    (Service.Metrics.ns_summary m "gone").Service.Metrics.frames;
  Alcotest.(check bool) "namespace no longer listed" false
    (List.mem "gone" (Service.Metrics.namespaces m));
  Alcotest.(check int) "eviction counted" 1 (Service.Metrics.evicted m);
  Alcotest.(check int) "frames folded into the aggregate" 7
    (Service.Metrics.evicted_frames m);
  (* Idempotent for unknown names; the survivor is untouched. *)
  Service.Metrics.evict_ns m "never-seen";
  Alcotest.(check int) "unknown eviction is a no-op" 1 (Service.Metrics.evicted m);
  Alcotest.(check int) "survivor intact" 1
    (Service.Metrics.ns_summary m "stays").Service.Metrics.frames;
  (* A returning tenant starts a fresh entry from zero. *)
  Service.Metrics.record m ~namespace:"gone" ~bytes_in:9 ~bytes_out:9 ~latency_s:0.001;
  Alcotest.(check int) "returning tenant starts fresh" 1
    (Service.Metrics.ns_summary m "gone").Service.Metrics.frames

(* The backend-parity block: the same suite of daemon behaviours runs
   on every backend compiled into this build, so select, poll and epoll
   must be observably interchangeable (digests included). *)
let backend_cases =
  Service.Evloop.available ()
  |> List.concat_map (fun b ->
         let n name = Printf.sprintf "%s: %s" (Service.Evloop.to_string b) name in
         [
           Alcotest.test_case
             (n "concurrent tenants match single-client digests")
             `Quick
             (test_concurrent_tenants_match_single_client b);
           Alcotest.test_case (n "mid-frame disconnect isolated") `Quick
             (test_mid_frame_disconnect_leaves_others_served b);
           Alcotest.test_case (n "idle timeout") `Slow (test_idle_timeout b);
           Alcotest.test_case (n "graceful drain") `Quick (test_graceful_drain b);
           Alcotest.test_case (n "trickled handshake reassembled") `Quick
             (test_trickled_handshake b);
           Alcotest.test_case (n "pre-hello buffering bounded") `Quick
             (test_handshake_flood_bounded b);
           Alcotest.test_case (n "pipelined client, ordered responses") `Quick
             (test_pipelined_ordered b);
         ]
         @
         if b = Service.Evloop.Select then []
         else
           [
             Alcotest.test_case (n "serves past select's FD_SETSIZE") `Slow
               (test_fanout_past_fd_setsize b);
           ])

let suite =
  backend_cases
  @ [
    Alcotest.test_case "tenant state survives reconnect" `Quick
      test_tenant_state_survives_reconnect;
    Alcotest.test_case "frames match per-session ledger" `Quick
      test_frames_match_session_ledger;
    Alcotest.test_case "malformed frame isolated" `Quick
      test_malformed_frame_closes_only_offender;
    Alcotest.test_case "hello required first" `Quick test_hello_required_first;
    Alcotest.test_case "v2 handshake rejected" `Quick test_v2_handshake_rejected;
    Alcotest.test_case "connection cap" `Quick test_connection_cap;
    Alcotest.test_case "select refuses past FD_SETSIZE" `Slow
      test_select_refuses_past_fd_setsize;
    Alcotest.test_case "async puts match sync digests" `Quick test_async_puts_match_sync;
    Alcotest.test_case "raw send/recv window" `Quick test_send_recv_window;
    Alcotest.test_case "loop syscall counters in stats" `Quick test_loop_counters_in_stats;
    Alcotest.test_case "wake-frames histogram buckets" `Quick test_wake_histogram_buckets;
    Alcotest.test_case "tcp listener" `Quick test_tcp_listener;
    Alcotest.test_case "namespace shard deterministic" `Quick test_shard_deterministic;
    Alcotest.test_case "multi-domain digests match single-domain" `Quick
      test_multidomain_digests_match_single_domain;
    Alcotest.test_case "same namespace lands on same worker" `Quick
      test_same_namespace_lands_on_same_worker;
    Alcotest.test_case "multi-domain graceful drain" `Quick test_multidomain_graceful_drain;
    Alcotest.test_case "dynamic session matches one-shot library run" `Quick
      test_dynamic_session_matches_library;
    Alcotest.test_case "decoder byte-at-a-time" `Quick test_decoder_byte_at_a_time;
    Alcotest.test_case "decoder pipelined frames" `Quick test_decoder_pipelined_frames;
    Alcotest.test_case "decoder burst compactions bounded" `Quick
      test_decoder_burst_compactions_bounded;
    Alcotest.test_case "decoder trickled large frame" `Quick
      test_decoder_trickled_large_frame;
    Alcotest.test_case "metrics tracking bounded" `Quick test_metrics_tracking_bounded;
    Alcotest.test_case "metrics eviction folds counters" `Quick
      test_metrics_evict_folds_counters;
  ]
