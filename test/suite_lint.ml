(* Tests for the fdlint static-analysis pass (lib/lint).

   The fixture corpus under test/lint_fixtures/ carries one positive
   (rule fires) and one negative (rule silent) snippet per rule.  Each
   fixture is self-describing: its first line is
     (* fdlint-fixture path=<virtual path> expect=<rule name|none> *)
   where the virtual path places the snippet inside the rule's scope.
   R3 (mli-completeness) is a whole-tree rule, so its fixtures are the
   directory trees r3_pos/ and r3_neg/. *)

open Lint

let fixtures_dir = "lint_fixtures"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let strings_of fs = List.map Finding.to_string fs

let parse_header file content =
  let line =
    match String.index_opt content '\n' with
    | Some i -> String.sub content 0 i
    | None -> content
  in
  let tok prefix =
    String.split_on_char ' ' line
    |> List.find_map (fun w ->
           let lp = String.length prefix in
           if String.length w > lp && String.equal prefix (String.sub w 0 lp) then
             Some (String.sub w lp (String.length w - lp))
           else None)
  in
  match (tok "path=", tok "expect=") with
  | Some p, Some e -> (p, e)
  | _ -> Alcotest.failf "%s: missing fdlint-fixture header" file

let fixture_case file =
  Alcotest.test_case ("fixture " ^ file) `Quick (fun () ->
      let content = read_file (Filename.concat fixtures_dir file) in
      let vpath, expect = parse_header file content in
      let fs = Driver.lint_string ~path:vpath content in
      match expect with
      | "none" -> Alcotest.(check (list string)) "silent" [] (strings_of fs)
      | rule ->
          Alcotest.(check bool) "fires" true (fs <> []);
          List.iter
            (fun (f : Finding.t) -> Alcotest.(check string) "finding rule" rule f.rule)
            fs)

let fixture_files =
  Sys.readdir fixtures_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort String.compare

(* Every AST rule must be represented by a rN_pos.ml / rN_neg.ml pair;
   R3's positive/negative live in the r3_pos/ and r3_neg/ trees. *)
let test_corpus_complete () =
  List.iter
    (fun (r : Rule.t) ->
      let low = String.lowercase_ascii r.id in
      match r.check with
      | Rule.Tree _ ->
          Alcotest.(check bool) (r.id ^ " tree fixtures") true
            (Sys.is_directory (Filename.concat fixtures_dir (low ^ "_pos"))
            && Sys.is_directory (Filename.concat fixtures_dir (low ^ "_neg")))
      | Rule.Ast _ ->
          Alcotest.(check bool)
            (r.id ^ " pos+neg fixtures")
            true
            (List.mem (low ^ "_pos.ml") fixture_files && List.mem (low ^ "_neg.ml") fixture_files))
    Rules.all

let test_mli_trees () =
  let pos, n = Driver.lint_tree ~root:(Filename.concat fixtures_dir "r3_pos") () in
  Alcotest.(check int) "r3_pos scans one file" 1 n;
  (match pos with
  | [ f ] ->
      Alcotest.(check string) "rule" "mli-completeness" f.Finding.rule;
      Alcotest.(check string) "path" "lib/x/a.ml" f.Finding.path
  | fs -> Alcotest.failf "r3_pos: expected exactly one finding, got %d" (List.length fs));
  let neg, n = Driver.lint_tree ~root:(Filename.concat fixtures_dir "r3_neg") () in
  Alcotest.(check int) "r3_neg scans three files" 3 n;
  Alcotest.(check (list string)) "r3_neg clean" [] (strings_of neg)

let test_suppression_site () =
  let code = "let a x = Obj.magic x\nlet b x = Obj.magic x [@@lint.allow \"R2\"]\n" in
  match Driver.lint_string ~path:"lib/core/x.ml" code with
  | [ f ] ->
      Alcotest.(check int) "unsuppressed line" 1 f.Finding.line;
      Alcotest.(check string) "rule" "no-unsafe-casts" f.Finding.rule
  | fs -> Alcotest.failf "expected one surviving finding, got %d" (List.length fs)

let test_suppression_tag () =
  (* A ":tag"-narrowed suppression must not cover the rule's other
     sub-checks. *)
  let code = "let f b x = ignore (Bytes.unsafe_get b 0); Obj.magic x\n[@@lint.allow \"no-unsafe-casts:bytes-unsafe\"]\n" in
  match Driver.lint_string ~path:"lib/core/x.ml" code with
  | [ f ] -> Alcotest.(check string) "only obj-magic survives" "obj-magic" f.Finding.tag
  | fs -> Alcotest.failf "expected one surviving finding, got %d" (List.length fs)

let test_suppression_nested () =
  (* An allow on an enclosing module must cover findings of inner
     bindings, including ones that carry their own (different) allow. *)
  let code =
    "module M = struct\n\
    \  let a x = Obj.magic x\n\
    \  let b y = ignore (Bytes.unsafe_get y 0) [@@lint.allow \"R2:bytes-unsafe\"]\n\
     end\n\
     [@@lint.allow \"R2\"]\n\
     let outside z = Obj.magic z\n"
  in
  match Driver.lint_string ~path:"lib/core/x.ml" code with
  | [ f ] ->
      Alcotest.(check int) "only the binding outside the region fires" 6 f.Finding.line
  | fs -> Alcotest.failf "expected one surviving finding, got %d" (List.length fs)

let test_suppression_multi_spec () =
  (* One payload, several comma-separated specs: both named checks are
     silenced, anything else keeps firing. *)
  let code =
    "let f b x = ignore (Bytes.unsafe_get b 0) ; Obj.magic x\n\
     [@@lint.allow \"R2:bytes-unsafe, R6\"]\n"
  in
  match Driver.lint_string ~path:"lib/core/x.ml" code with
  | [ f ] -> Alcotest.(check string) "obj-magic survives the pair" "obj-magic" f.Finding.tag
  | fs -> Alcotest.failf "expected one surviving finding, got %d" (List.length fs)

let test_suppression_floating () =
  (* The floating whole-file form covers every finding after (and
     before) it, with tag narrowing still honoured. *)
  let whole = "[@@@lint.allow \"R2\"]\n\nlet f x = Obj.magic x\nlet g b = Bytes.unsafe_get b 0\n" in
  Alcotest.(check (list string))
    "whole-file allow" []
    (strings_of (Driver.lint_string ~path:"lib/core/x.ml" whole));
  let narrowed =
    "[@@@lint.allow \"no-unsafe-casts:bytes-unsafe\"]\n\nlet f x = Obj.magic x\n"
  in
  match Driver.lint_string ~path:"lib/core/x.ml" narrowed with
  | [ f ] -> Alcotest.(check string) "narrowed floating allow" "obj-magic" f.Finding.tag
  | fs -> Alcotest.failf "expected one surviving finding, got %d" (List.length fs)

let conf directives =
  match Config.parse directives with Ok c -> c | Error e -> Alcotest.fail e

let test_config () =
  let code = "let f x = Obj.magic x\n" in
  let run config = Driver.lint_string ~config ~path:"lib/oram/x.ml" code in
  Alcotest.(check int) "baseline fires" 1 (List.length (run Config.default));
  Alcotest.(check int) "disable R2" 0 (List.length (run (conf "disable R2")));
  Alcotest.(check int) "disable by name" 0
    (List.length (run (conf "disable no-unsafe-casts")));
  Alcotest.(check int) "allow under path" 0
    (List.length (run (conf "allow no-unsafe-casts lib/oram/")));
  Alcotest.(check int) "allow elsewhere keeps firing" 1
    (List.length (run (conf "allow no-unsafe-casts lib/crypto/")));
  Alcotest.(check int) "allow wrong tag keeps firing" 1
    (List.length (run (conf "allow R2:bytes-unsafe lib/oram/")));
  Alcotest.(check int) "scope directive restricts" 0
    (List.length (run (conf "scope R2 lib/never/")));
  Alcotest.(check int) "component-aware prefix does not match lib/ora"
    1
    (List.length (run (conf "allow R2 lib/ora")));
  match Config.parse "frobnicate x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed directive must be rejected"

let test_config_exclude () =
  let config = conf "exclude lib/" in
  let fs, n = Driver.lint_tree ~config ~root:(Filename.concat fixtures_dir "r3_pos") () in
  Alcotest.(check int) "no files scanned" 0 n;
  Alcotest.(check (list string)) "no findings" [] (strings_of fs)

let test_parse_error () =
  match Driver.lint_string ~path:"lib/x.ml" "let let let\n" with
  | [ f ] -> Alcotest.(check string) "rule" Driver.parse_error_rule f.Finding.rule
  | fs -> Alcotest.failf "expected one parse-error finding, got %d" (List.length fs)

let test_format () =
  match Driver.lint_string ~path:"lib/oram/x.ml" "let f x = Obj.magic x\n" with
  | [ f ] ->
      Alcotest.(check string) "file:line:col [rule] msg"
        "lib/oram/x.ml:1:10 [no-unsafe-casts] Obj.magic defeats the type system"
        (Finding.to_string f)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_json_format () =
  (* The machine surface of `fdlint --format json`: key order, key set
     and string escaping are all part of the contract. *)
  let f =
    Finding.v ~path:"lib/a.ml" ~line:3 ~col:7 ~rule:"secret-flow" ~tag:"branch"
      "he said \"no\"\tthen\nleft \\ \x01"
  in
  Alcotest.(check string) "pinned json object"
    {|{"path":"lib/a.ml","line":3,"col":7,"rule":"secret-flow","tag":"branch","msg":"he said \"no\"\tthen\nleft \\ \u0001"}|}
    (Finding.to_json f);
  let plain = Finding.v ~path:"lib/b.ml" ~line:1 ~col:0 ~rule:"r" "m" in
  Alcotest.(check string) "empty tag still present"
    {|{"path":"lib/b.ml","line":1,"col":0,"rule":"r","tag":"","msg":"m"}|}
    (Finding.to_json plain)

(* ---- R11 (secret-flow) ---- *)

let r11_rules = List.filter (fun (r : Rule.t) -> String.equal r.id "R11") Rules.all

let test_r11_trees () =
  let pos, n =
    Driver.lint_tree ~rules:r11_rules ~root:(Filename.concat fixtures_dir "r11_pos") ()
  in
  Alcotest.(check int) "r11_pos scans all files" 12 n;
  let got =
    List.sort_uniq compare (List.map (fun (f : Finding.t) -> (f.path, f.tag)) pos)
  in
  let expect =
    [
      ("lib/oram/alloc.ml", "alloc");
      ("lib/oram/branch.ml", "branch");
      ("lib/oram/index.ml", "index");
      ("lib/oram/lab.ml", "branch");
      ("lib/oram/loop.ml", "loop-bound");
      ("lib/oram/noreason.ml", "declassify-missing-reason");
      ("lib/oram/out.ml", "output");
      ("lib/oram/par.ml", "branch");
    ]
  in
  Alcotest.(check (list (pair string string))) "every sink class fires" expect got;
  List.iter
    (fun (f : Finding.t) -> Alcotest.(check string) "rule" "secret-flow" f.rule)
    pos;
  let neg, n =
    Driver.lint_tree ~rules:r11_rules ~root:(Filename.concat fixtures_dir "r11_neg") ()
  in
  Alcotest.(check int) "r11_neg scans all files" 11 n;
  Alcotest.(check (list string)) "r11_neg clean" [] (strings_of neg)

(* Generative coverage: a secret source piped through a chain of k
   forwarding functions must still reach the branch sink (the summary
   fixpoint cannot lose taint with depth), and the declassified variant
   must stay silent at every depth. *)
let qcheck_r11_chain =
  QCheck.Test.make ~name:"R11 taint survives call chains of any depth" ~count:20
    QCheck.(int_range 0 8)
    (fun k ->
      let b = Buffer.create 256 in
      Buffer.add_string b "let src () = \"s\" [@@secret]\n";
      Buffer.add_string b "let hop0 x = x\n";
      for i = 1 to k do
        Buffer.add_string b (Printf.sprintf "let hop%d x = hop%d x\n" i (i - 1))
      done;
      let sink declassified =
        Printf.sprintf "let top () = if (hop%d (src ()) = \"\")%s then 1 else 0\n" k
          (if declassified then " [@lint.declassify \"qcheck fixture\"]" else "")
      in
      let lint code =
        fst (Driver.lint_vtree ~rules:r11_rules [ ("lib/oram/chain.ml", Buffer.contents b ^ code) ])
      in
      let fired = lint (sink false) and silent = lint (sink true) in
      List.length fired = 1
      && List.for_all (fun (f : Finding.t) -> String.equal f.tag "branch") fired
      && silent = [])

let test_smoke_all () =
  List.iter
    (fun (r : Rule.t) -> Alcotest.(check bool) (r.id ^ " smoke fires") true (Driver.smoke r))
    Rules.all

(* End-to-end: the real tree must be lint-clean under its checked-in
   .fdlint.  Tests run unsandboxed from _build/default/test, so walk up
   to the repository root (the directory containing .git). *)
let rec find_root dir =
  if Sys.file_exists (Filename.concat dir ".git") then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_root parent

let test_real_tree_clean () =
  match find_root (Sys.getcwd ()) with
  | None -> Alcotest.skip ()
  | Some root ->
      let config =
        match Config.load (Filename.concat root ".fdlint") with
        | Ok c -> c
        | Error e -> Alcotest.fail e
      in
      let fs, n = Driver.lint_tree ~config ~root () in
      Alcotest.(check bool) "scanned a real tree" true (n > 100);
      Alcotest.(check (list string)) "zero findings on the real tree" [] (strings_of fs)

(* End-to-end exit codes of the installed binary: 0 clean, 1 findings,
   >= 2 usage/config error.  Tests run from _build/default/test, where
   the dune dep rule places a copy of the linted tree's binary at
   ../bin/fdlint.exe. *)
let fdlint_exe = Filename.concat (Filename.concat ".." "bin") "fdlint.exe"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let test_exit_codes () =
  if not (Sys.file_exists fdlint_exe) then Alcotest.skip ()
  else begin
    let clean = "exitcode_clean" in
    mkdir_p clean;
    Alcotest.(check int) "empty tree exits 0" 0
      (Sys.command (Filename.quote_command fdlint_exe [ "--quiet"; "--root"; clean ]));
    let dirty = "exitcode_dirty" in
    mkdir_p (Filename.concat dirty (Filename.concat "lib" "core"));
    Out_channel.with_open_bin
      (Filename.concat dirty (Filename.concat "lib" (Filename.concat "core" "x.ml")))
      (fun oc -> Out_channel.output_string oc "let f x = Obj.magic x\n");
    Alcotest.(check int) "findings exit 1" 1
      (Sys.command (Filename.quote_command fdlint_exe [ "--quiet"; "--root"; dirty ]));
    Alcotest.(check int) "unknown flag exits 2" 2
      (Sys.command
         (Filename.quote_command fdlint_exe [ "--definitely-not-a-flag" ]
         ^ " >/dev/null 2>&1"));
    Alcotest.(check int) "unexpected argument exits 2" 2
      (Sys.command
         (Filename.quote_command fdlint_exe [ "stray-arg" ] ^ " >/dev/null 2>&1"))
  end

let suite =
  List.map fixture_case fixture_files
  @ [
      Alcotest.test_case "fixture corpus covers every rule" `Quick test_corpus_complete;
      Alcotest.test_case "mli-completeness trees" `Quick test_mli_trees;
      Alcotest.test_case "per-site suppression" `Quick test_suppression_site;
      Alcotest.test_case "tag-narrowed suppression" `Quick test_suppression_tag;
      Alcotest.test_case "nested suppression regions" `Quick test_suppression_nested;
      Alcotest.test_case "multi-spec suppression payload" `Quick test_suppression_multi_spec;
      Alcotest.test_case "floating whole-file suppression" `Quick test_suppression_floating;
      Alcotest.test_case "config directives" `Quick test_config;
      Alcotest.test_case "config exclude" `Quick test_config_exclude;
      Alcotest.test_case "parse error is a finding" `Quick test_parse_error;
      Alcotest.test_case "finding format" `Quick test_format;
      Alcotest.test_case "json finding format" `Quick test_json_format;
      Alcotest.test_case "secret-flow fixture trees" `Quick test_r11_trees;
      QCheck_alcotest.to_alcotest qcheck_r11_chain;
      Alcotest.test_case "smoke: every rule fires" `Quick test_smoke_all;
      Alcotest.test_case "fdlint exit codes" `Quick test_exit_codes;
      Alcotest.test_case "real tree is clean" `Quick test_real_tree_clean;
    ]
