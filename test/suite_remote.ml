(* Networked mode: the server S runs in a forked child process; every
   block access crosses a Unix socketpair.  Checks protocol correctness
   end-to-end and that the *server-side* trace (recorded where the
   adversary actually sits) matches the client's mirror and stays
   oblivious. *)

open Relation
open Core

let with_remote f =
  let fd, pid = Servsim.Remote_server.fork_server () in
  let conn = Servsim.Remote.connect_fd ~pid fd in
  Fun.protect ~finally:(fun () -> Servsim.Remote.close conn) (fun () -> f conn)

let test_wire_roundtrip () =
  with_remote (fun conn ->
      (match Servsim.Remote.call conn (Servsim.Wire.Create_store "s") with
      | Servsim.Wire.Ok -> ()
      | _ -> Alcotest.fail "create");
      ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 4)));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", 2, "ciphertext!")));
      (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 2)) with
      | Servsim.Wire.Value v -> Alcotest.(check string) "payload" "ciphertext!" v
      | _ -> Alcotest.fail "get");
      match Servsim.Remote.call conn Servsim.Wire.Total_bytes with
      | Servsim.Wire.Bytes_total n -> Alcotest.(check int) "bytes" 11 n
      | _ -> Alcotest.fail "total")

let test_wire_errors () =
  with_remote (fun conn ->
      Alcotest.(check bool) "missing store" true
        (match Servsim.Remote.call conn (Servsim.Wire.Get ("nope", 0)) with
        | exception Servsim.Wire.Protocol_error _ -> true
        | _ -> false);
      ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
      Alcotest.(check bool) "duplicate store" true
        (match Servsim.Remote.call conn (Servsim.Wire.Create_store "s") with
        | exception Servsim.Wire.Protocol_error _ -> true
        | _ -> false);
      Alcotest.(check bool) "out of bounds" true
        (match Servsim.Remote.call conn (Servsim.Wire.Get ("s", 99)) with
        | exception Servsim.Wire.Protocol_error _ -> true
        | _ -> false))

let test_block_store_over_wire () =
  with_remote (fun conn ->
      let server = Servsim.Server.create ~remote:conn () in
      let store = Servsim.Server.create_store server "blocks" in
      Servsim.Block_store.ensure store 8;
      Servsim.Block_store.write store 3 "abc";
      Servsim.Block_store.write store 3 "defgh";
      Alcotest.(check string) "read back" "defgh" (Servsim.Block_store.read store 3);
      Alcotest.(check int) "local byte mirror" 5 (Servsim.Block_store.size_bytes store);
      match Servsim.Remote.call conn Servsim.Wire.Total_bytes with
      | Servsim.Wire.Bytes_total n -> Alcotest.(check int) "remote bytes agree" 5 n
      | _ -> Alcotest.fail "total")

let test_oram_over_wire () =
  with_remote (fun conn ->
      let server = Servsim.Server.create ~remote:conn () in
      let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
      let rng = Crypto.Rng.create 3 in
      let o =
        Oram.Path_oram.setup ~name:"o" { capacity = 32; key_len = 8; payload_len = 8 } server
          cipher (Crypto.Rng.int rng)
      in
      for i = 0 to 19 do
        Oram.Path_oram.write o ~key:(Codec.encode_int i) (Codec.encode_int (i * i))
      done;
      for i = 0 to 19 do
        Alcotest.(check (option string)) "read" (Some (Codec.encode_int (i * i)))
          (Oram.Path_oram.read o ~key:(Codec.encode_int i))
      done)

let test_full_protocol_over_wire () =
  with_remote (fun conn ->
      let table = Datasets.Examples.fig1 () in
      let session =
        Session.create ~seed:99 ~remote:conn ~n:(Table.rows table) ~m:(Table.cols table) ()
      in
      let db = Enc_db.outsource session table in
      let result =
        Fdbase.Lattice.discover ~m:(Table.cols table) ~n:(Table.rows table)
          (Sort_method.oracle session db)
      in
      let expect = Fdbase.Tane.fds table in
      let pp fds = String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) fds) in
      Alcotest.(check string) "FDs over the wire" (pp expect) (pp result.Fdbase.Lattice.fds);
      (* The adversary's own recording agrees with the client's mirror. *)
      let trace = Session.trace session in
      Alcotest.(check bool) "server-side trace matches" true
        (Servsim.Remote.digests conn
           ~full:(Servsim.Trace.full_digest trace)
           ~shape:(Servsim.Trace.shape_digest trace)
           ~count:(Servsim.Trace.count trace)))

let test_remote_obliviousness_server_side () =
  (* Run the Sort partition on two different same-size DBs against two
     fresh server processes; the digests recorded *by the servers* must
     be identical. *)
  let run table =
    with_remote (fun conn ->
        let session =
          Session.create ~seed:5 ~remote:conn ~n:(Table.rows table) ~m:(Table.cols table) ()
        in
        let db = Enc_db.outsource session table in
        let h = Sort_method.single db 0 in
        ignore (Sort_method.cardinality h);
        Servsim.Remote.server_digests conn)
  in
  let t1 = Datasets.Rnd.generate_with_domain ~seed:1 ~rows:16 ~cols:2 ~domain:2 () in
  let t2 = Datasets.Rnd.generate_with_domain ~seed:2 ~rows:16 ~cols:2 ~domain:1000 () in
  let f1, s1, c1 = run t1 and f2, s2, c2 = run t2 in
  Alcotest.(check int64) "full digests equal" f1 f2;
  Alcotest.(check int64) "shape digests equal" s1 s2;
  Alcotest.(check int) "counts equal" c1 c2

let test_ex_oram_dynamic_over_wire () =
  with_remote (fun conn ->
      let v x = Value.Int x in
      let schema = Schema.make [| "A" |] in
      let table = Table.make schema [| [| v 1 |]; [| v 2 |]; [| v 1 |] |] in
      let session = Session.create ~seed:7 ~remote:conn ~n:3 ~m:1 () in
      let db = Enc_db.outsource session table in
      let h = Ex_oram_method.single db 0 in
      Alcotest.(check int) "card" 2 (Ex_oram_method.cardinality h);
      Ex_oram_method.delete h ~row:0;
      Alcotest.(check int) "card after delete" 2 (Ex_oram_method.cardinality h);
      Ex_oram_method.delete h ~row:2;
      Alcotest.(check int) "card after second delete" 1 (Ex_oram_method.cardinality h))

(* The fork server answers [Stats] with percentiles from its own latency
   reservoir — real measurements, not the zeros it used to report. *)
let test_fork_server_latency_percentiles () =
  with_remote (fun conn ->
      ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 8)));
      (* Large payloads so every dispatch is reliably >= 1 us once
         rounded to the wire's microsecond resolution. *)
      let big = String.make 65536 'p' in
      for i = 0 to 99 do
        ignore (Servsim.Remote.call conn (Servsim.Wire.Put ("s", i mod 8, big)))
      done;
      let stats = Servsim.Remote.stats conn in
      Alcotest.(check bool) "percentiles ordered" true
        (stats.Servsim.Wire.p50_us <= stats.Servsim.Wire.p95_us
        && stats.Servsim.Wire.p95_us <= stats.Servsim.Wire.p99_us);
      Alcotest.(check bool) "p99 is a real measurement" true
        (stats.Servsim.Wire.p99_us > 0))

(* The reservoir itself, deterministically: nearest-rank percentiles
   over a known sample set, and ring-buffer overwrite past capacity. *)
let test_latency_reservoir_nearest_rank () =
  let st = Servsim.Handler.create_state () in
  let z50, z95, z99 = Servsim.Handler.latency_percentiles st in
  Alcotest.(check (triple (float 0.) (float 0.) (float 0.)))
    "empty reservoir reports zeros" (0., 0., 0.) (z50, z95, z99);
  (* 1..100 in shuffled order: nearest-rank pk = k for n = 100. *)
  let xs = Array.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  Array.iter (fun x -> Servsim.Handler.record_latency st x) xs;
  let p50, p95, p99 = Servsim.Handler.latency_percentiles st in
  Alcotest.(check (float 1e-9)) "p50 of 1..100" 50. p50;
  Alcotest.(check (float 1e-9)) "p95 of 1..100" 95. p95;
  Alcotest.(check (float 1e-9)) "p99 of 1..100" 99. p99

(* Property tests for the wire codec itself (through a pipe). *)
let roundtrip_request req =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w and ic = Unix.in_channel_of_descr r in
  Servsim.Wire.write_request oc req;
  let back = Servsim.Wire.read_request ic in
  close_in_noerr ic;
  close_out_noerr oc;
  back = req

let roundtrip_response resp =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w and ic = Unix.in_channel_of_descr r in
  Servsim.Wire.write_response oc resp;
  let back = Servsim.Wire.read_response ic in
  close_in_noerr ic;
  close_out_noerr oc;
  back = resp

let qcheck_wire_request_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun s -> Servsim.Wire.Create_store s) (string_size (0 -- 30));
          map (fun s -> Servsim.Wire.Drop_store s) (string_size (0 -- 30));
          map2 (fun s n -> Servsim.Wire.Ensure (s, n)) (string_size (0 -- 20)) (int_bound 100000);
          map2 (fun s i -> Servsim.Wire.Get (s, i)) (string_size (0 -- 20)) (int_bound 100000);
          map3
            (fun s i v -> Servsim.Wire.Put (s, i, v))
            (string_size (0 -- 20))
            (int_bound 100000) (string_size (0 -- 200));
          map (fun ns -> Servsim.Wire.Hello ns) (string_size (0 -- 40));
          return Servsim.Wire.Ping;
          return Servsim.Wire.Stats;
          return Servsim.Wire.Digest;
          return Servsim.Wire.Total_bytes;
        ])
  in
  QCheck.Test.make ~name:"wire request roundtrip" ~count:200 (QCheck.make gen)
    roundtrip_request

let qcheck_wire_response_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          return Servsim.Wire.Ok;
          map (fun v -> Servsim.Wire.Value v) (string_size (0 -- 200));
          map3
            (fun a b c ->
              Servsim.Wire.Digests { full = Int64.of_int a; shape = Int64.of_int b; count = c })
            int int (int_bound 1000000);
          map (fun n -> Servsim.Wire.Bytes_total n) (int_bound 1000000);
          return Servsim.Wire.Pong;
          map (fun m -> Servsim.Wire.Error m) (string_size (0 -- 50));
        ])
  in
  QCheck.Test.make ~name:"wire response roundtrip" ~count:200 (QCheck.make gen)
    roundtrip_response

let suite =
  [
    Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_wire_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_wire_response_roundtrip;
    Alcotest.test_case "wire errors" `Quick test_wire_errors;
    Alcotest.test_case "block store over wire" `Quick test_block_store_over_wire;
    Alcotest.test_case "path oram over wire" `Quick test_oram_over_wire;
    Alcotest.test_case "full protocol over wire" `Quick test_full_protocol_over_wire;
    Alcotest.test_case "server-side obliviousness" `Quick test_remote_obliviousness_server_side;
    Alcotest.test_case "ex-oram dynamic over wire" `Quick test_ex_oram_dynamic_over_wire;
    Alcotest.test_case "fork server reports latency percentiles" `Quick
      test_fork_server_latency_percentiles;
    Alcotest.test_case "latency reservoir nearest-rank" `Quick
      test_latency_reservoir_nearest_rank;
  ]
