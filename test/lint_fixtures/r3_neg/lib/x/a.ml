let answer = 42
