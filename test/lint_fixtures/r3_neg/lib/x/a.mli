val answer : int
