module type S = sig
  val answer : int
end
