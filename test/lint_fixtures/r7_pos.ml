(* fdlint-fixture path=lib/servsim/wire.ml expect=exception-hygiene *)
let parse_tag = function 1 -> `Get | 2 -> `Put | _ -> failwith "bad tag"
let first b = if Bytes.length b = 0 then assert false else Bytes.get b 0
let ignore_errors f = try f () with _ -> ()
