(* fdlint-fixture path=lib/oram/casts.ml expect=no-unsafe-casts *)
let f x = Obj.magic x
let g x = Marshal.to_string x []
let h b = Bytes.unsafe_get b 0
