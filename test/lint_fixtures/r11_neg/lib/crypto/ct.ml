let equal (a : string) b = String.equal a b
