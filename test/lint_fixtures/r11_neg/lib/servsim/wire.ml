let put _ = ()
