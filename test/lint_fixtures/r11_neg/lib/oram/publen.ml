(* Lengths are public under Size(DB): none of these flows may fire. *)
let f a c = a.(String.length (Dec.open_cell c))
let g c = Bytes.create (String.length (Dec.open_cell c))
let h c = Servsim.Wire.put (String.length (Dec.open_cell c))
