let f c = Crypto.Ct.equal (Dec.open_cell c) "x"
