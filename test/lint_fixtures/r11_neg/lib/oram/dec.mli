val open_cell : string -> string [@@secret]
