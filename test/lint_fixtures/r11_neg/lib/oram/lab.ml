type t = { w : string [@secret] }

let set t v = { t with w = v }
