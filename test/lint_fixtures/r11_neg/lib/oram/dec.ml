let open_cell c = c
