let h c = if Boundary.fetch c = "" then 1 else 0
