let f c =
  if (Dec.open_cell c = "x") [@lint.declassify "fixture: flow audited in the test corpus"]
  then 1
  else 0
