val fetch : string -> string [@@lint.declassify "fixture: audited boundary"]
