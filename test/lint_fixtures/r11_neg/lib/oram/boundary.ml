let fetch c = Dec.open_cell c
