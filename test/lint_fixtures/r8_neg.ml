(* fdlint-fixture path=lib/core/parallel.ml expect=none *)
let recommended () = Domain.recommended_domain_count ()
let self_id () = Domain.self ()
