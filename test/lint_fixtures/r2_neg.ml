(* fdlint-fixture path=lib/oram/casts.ml expect=none *)
let f x = Obj.magic x [@@lint.allow "no-unsafe-casts"]
let h b = Bytes.unsafe_get b 0 [@@lint.allow "no-unsafe-casts:bytes-unsafe"]
