(* fdlint-fixture path=lib/core/evwait.ml expect=event-loop-hygiene *)
external epoll_create : unit -> int = "sfdd_ev_epoll_create"

let wait fds = Unix.select fds [] [] 0.25
