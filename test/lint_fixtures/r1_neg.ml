(* fdlint-fixture path=lib/datasets/gen.ml expect=none *)
(* lib/datasets is on R1's built-in allowlist: dataset generators may
   use ambient randomness. *)
let roll () = Random.int 6
