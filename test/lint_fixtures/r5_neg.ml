(* fdlint-fixture path=lib/service/io.ml expect=none *)
let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let read_retry fd b off len = retry_intr (fun () -> Unix.read fd b off len)
[@@lint.allow "eintr-discipline"]

let read_all fd b = read_retry fd b 0 (Bytes.length b)
