(* fdlint-fixture path=bin/report.ml expect=none *)
(* R4 only applies under lib/; executables may print. *)
let () = Printf.printf "%d\n" 1
let warn () = print_endline "careful"
