(* fdlint-fixture path=lib/store/fsio.ml expect=none *)
(* The audited helper itself: raw file syscalls are its whole job. *)
let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let rotate old_path new_path = Unix.rename old_path new_path
