(* fdlint-fixture path=lib/core/evwait.ml expect=none *)
external nproc : unit -> int = "sfdd_nproc"

let wait ev ~timeout = Evloop.wait ev ~timeout
let pick name = Evloop.of_string name
