(* fdlint-fixture path=lib/core/seeded.ml expect=no-ambient-randomness *)
let roll () = Random.int 6
let rng () = Rng.create (int_of_float (Unix.time ()))
