(* fdlint-fixture path=lib/fdbase/noisy.ml expect=no-raw-output-in-lib *)
let () = Printf.printf "%d\n" 1
let warn () = print_endline "careful"
