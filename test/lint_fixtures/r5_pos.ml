(* fdlint-fixture path=lib/service/io.ml expect=eintr-discipline *)
let read_all fd b = Unix.read fd b 0 (Bytes.length b)
let push fd b = Unix.write fd b 0 (Bytes.length b)
