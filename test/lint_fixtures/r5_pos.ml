(* fdlint-fixture path=lib/service/io.ml expect=eintr-discipline *)
let read_all fd b = Unix.read fd b 0 (Bytes.length b)
let wait fds = Unix.select fds [] [] 0.25
