(* fdlint-fixture path=lib/crypto/verify.ml expect=constant-time-crypto *)
let check_tag ~tag ~expected = tag = expected
let same_key a key = String.equal a key
