(* fdlint-fixture path=lib/core/parallel.ml expect=domain-hygiene *)
let spawn_all fs = List.map (fun f -> Domain.spawn f) fs
