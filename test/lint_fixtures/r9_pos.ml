(* fdlint-fixture path=lib/store/segment.ml expect=durability-hygiene *)
let write_segment path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let rotate old_path new_path = Unix.rename old_path new_path
