(* fdlint-fixture path=lib/crypto/verify.ml expect=none *)
let check_tag ~tag ~expected = Ct.equal tag expected

(* Comparing a *length* is fine: lengths are public in L(DB). *)
let keylen_ok key = String.length key = 16
