(* fdlint-fixture path=lib/servsim/wire.ml expect=none *)
exception Protocol_error of string

let parse_tag = function
  | 1 -> `Get
  | 2 -> `Put
  | t -> raise (Protocol_error ("bad tag " ^ string_of_int t))

let ignore_eof f = try f () with End_of_file -> ()
