let answer = 42
