let f c = if Dec.open_cell c = "x" then 1 else 0
