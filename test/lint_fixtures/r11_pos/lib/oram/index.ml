let f a c = a.(Char.code (Dec.open_cell c).[0])
