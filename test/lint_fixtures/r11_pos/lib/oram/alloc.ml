let f c = Bytes.create (Char.code (Dec.open_cell c).[0])
