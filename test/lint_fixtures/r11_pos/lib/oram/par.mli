val g : (string[@secret]) -> int
