type t = { w : string [@secret] }

let f t = if t.w = "" then 1 else 0
