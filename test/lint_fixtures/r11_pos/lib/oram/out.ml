let f c = Servsim.Wire.put (Dec.open_cell c)
