let f c = if (Dec.open_cell c = "x") [@lint.declassify] then 1 else 0
