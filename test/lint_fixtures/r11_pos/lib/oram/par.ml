let g s = if s = "" then 0 else 1
