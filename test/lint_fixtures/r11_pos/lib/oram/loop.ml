let f c =
  for i = 0 to Char.code (Dec.open_cell c).[0] do
    ignore i
  done
