let put _ = ()
