(* The durable tenant store: CRC-framed segment log, snapshot + journal
   recovery, and the Session/Daemon layers above it.  The acceptance bar
   throughout is bit-identity: a tenant recovered from disk — after a
   torn-tail crash, a snapshot rotation, an LRU eviction, or a full
   daemon restart — must have the same stores, trace digests and cost
   ledger as a session that was never interrupted. *)

module Wire = Servsim.Wire
module Handler = Servsim.Handler
module Trace = Servsim.Trace
module Cost = Servsim.Cost

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Store.Fsio.mkdirs path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_tmp_dir prefix f =
  let dir = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Everything persistence must preserve, as one comparable value. *)
let fingerprint st =
  let tr = Handler.trace st in
  ( Handler.export_stores st,
    Trace.full_digest tr,
    Trace.shape_digest tr,
    Trace.count tr,
    Cost.snapshot (Handler.cost st) )

let check_identical msg a b =
  Alcotest.(check bool) (msg ^ ": stores, digests and ledger bit-identical") true
    (fingerprint a = fingerprint b)

(* A request mix covering every journaled shape: mutations, reads (which
   fold into the digests and so must replay too), batches, probes. *)
let workload_a =
  [ Wire.Create_store "s"; Wire.Ensure ("s", 8) ]
  @ List.init 8 (fun i -> Wire.Put ("s", i, String.make 24 (Char.chr (97 + i))))
  @ [
      Wire.Get ("s", 3);
      Wire.Multi_get ("s", [ 0; 2; 4 ]);
      Wire.Multi_put ("s", [ (1, "one"); (5, "five") ]);
      Wire.Digest;
      Wire.Total_bytes;
      Wire.Ping;
      Wire.Get ("s", 99) (* out of bounds: served as Error, still journaled *);
    ]

let workload_b =
  [ Wire.Create_store "t"; Wire.Ensure ("t", 4) ]
  @ List.init 4 (fun i -> Wire.Put ("t", i, String.make 16 'q'))
  @ [ Wire.Get ("t", 1); Wire.Stats; Wire.Drop_store "t" ]

(* The reference: the same requests served by one uninterrupted session. *)
let reference reqs =
  let st = Handler.create_state () in
  List.iter (Handler.replay st) reqs;
  st

(* Serve [reqs] against a live journaled tenant, as the daemon would:
   dispatch, then journal. *)
let serve t state reqs =
  List.iter
    (fun req ->
      Handler.replay state req;
      Store.Tenant.journal t ~state req)
    reqs

(* {2 CRC-32} *)

let test_crc32_kat () =
  Alcotest.(check int) "standard check value" 0xCBF43926 (Store.Crc32.digest "123456789");
  Alcotest.(check int) "empty string" 0 (Store.Crc32.digest "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let split =
    List.fold_left
      (fun crc (off, len) -> Store.Crc32.update crc s ~off ~len)
      0
      [ (0, 7); (7, 0); (7, 20); (27, String.length s - 27) ]
  in
  Alcotest.(check int) "streaming equals one-shot" (Store.Crc32.digest s) split

(* {2 Segment framing} *)

let payloads = [ "alpha"; ""; String.make 300 'b'; "\x00\xff\x00"; "tail" ]

let segment_of records =
  let buf = Buffer.create 256 in
  List.iter (Store.Segment.add_record buf) records;
  Buffer.contents buf

let test_segment_roundtrip () =
  let data = segment_of payloads in
  let scan = Store.Segment.parse data in
  Alcotest.(check bool) "records round-trip" true (scan.records = payloads);
  Alcotest.(check int) "whole segment valid" (String.length data) scan.valid;
  Alcotest.(check bool) "not torn" false scan.torn;
  let empty = Store.Segment.parse "" in
  Alcotest.(check bool) "empty segment" true
    (empty.records = [] && empty.valid = 0 && not empty.torn)

(* Record boundaries within a segment, for the exhaustive tear matrix. *)
let boundaries records =
  let _, rev =
    List.fold_left
      (fun (off, acc) r ->
        let off = off + 8 + String.length r in
        (off, off :: acc))
      (0, [ 0 ])
      records
  in
  List.rev rev

(* A segment cut at every possible byte offset: the parse must keep
   exactly the records whose frames fit, report the cut as torn unless
   it lands on a record boundary, and place [valid] at the last
   boundary before the cut. *)
let test_segment_torn_at_every_offset () =
  let data = segment_of payloads in
  let bounds = boundaries payloads in
  for cut = 0 to String.length data do
    let scan = Store.Segment.parse (String.sub data 0 cut) in
    let expect_valid = List.fold_left (fun acc b -> if b <= cut then b else acc) 0 bounds in
    let expect_n = List.length (List.filter (fun b -> b <> 0 && b <= cut) bounds) in
    Alcotest.(check int) (Printf.sprintf "valid prefix at cut %d" cut) expect_valid scan.valid;
    Alcotest.(check int)
      (Printf.sprintf "records kept at cut %d" cut)
      expect_n
      (List.length scan.records);
    Alcotest.(check bool)
      (Printf.sprintf "torn flag at cut %d" cut)
      (cut > expect_valid) scan.torn
  done

(* A flipped byte is indistinguishable from a torn tail at that record:
   everything before it survives, nothing after it is trusted. *)
let test_segment_crc_flip () =
  let data = segment_of payloads in
  let bounds = boundaries payloads in
  let last_start = List.nth bounds (List.length bounds - 2) in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  (* Flip inside the last record's payload. *)
  let scan = Store.Segment.parse (flip data (last_start + 8)) in
  Alcotest.(check bool) "prior records survive a tail flip" true
    (scan.records = List.filteri (fun i _ -> i < List.length payloads - 1) payloads);
  Alcotest.(check int) "valid stops before the flipped record" last_start scan.valid;
  Alcotest.(check bool) "flip reported as torn" true scan.torn;
  (* Flip inside the first record's payload: nothing is trusted. *)
  let scan0 = Store.Segment.parse (flip data 8) in
  Alcotest.(check bool) "first-record flip yields empty scan" true
    (scan0.records = [] && scan0.valid = 0 && scan0.torn)

(* {2 Tenant journal recovery} *)

let test_tenant_reopen_without_close () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:0 "crashy" in
      serve t st workload_a;
      (* Crash: no snapshot, no close, no sync.  (The writer's appends
         went through write(2), so the bytes are in the file even though
         the fd is still open.) *)
      let t2, recovered = Store.Tenant.open_ ~data_dir ~snapshot_every:0 "crashy" in
      check_identical "journal-only recovery" (reference workload_a) recovered;
      Store.Tenant.close t2;
      Store.Tenant.close t)

let test_tenant_snapshot_midway () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:0 "rotated" in
      serve t st workload_a;
      Store.Tenant.snapshot t st;
      Alcotest.(check int) "journal reset after snapshot" 0 (Store.Tenant.wal_records t);
      Alcotest.(check int) "generation advanced" 1 (Store.Tenant.generation t);
      serve t st workload_b;
      let t2, recovered = Store.Tenant.open_ ~data_dir ~snapshot_every:0 "rotated" in
      check_identical "snapshot + journal recovery"
        (reference (workload_a @ workload_b))
        recovered;
      Store.Tenant.close t2;
      Store.Tenant.close t)

let test_tenant_auto_snapshot () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:5 "auto" in
      serve t st (workload_a @ workload_b);
      Alcotest.(check bool) "auto-snapshot rotated the journal" true
        (Store.Tenant.generation t > 0);
      Alcotest.(check bool) "journal stays under the threshold" true
        (Store.Tenant.wal_records t < 5);
      let t2, recovered = Store.Tenant.open_ ~data_dir ~snapshot_every:5 "auto" in
      check_identical "recovery across auto-snapshots"
        (reference (workload_a @ workload_b))
        recovered;
      Store.Tenant.close t2;
      Store.Tenant.close t)

(* The exhaustive crash matrix: truncate the journal at every byte
   offset.  Recovery must come back with exactly the requests whose
   frames survived whole — for a cut inside record m+1, that is the
   reference state after the first m requests. *)
let test_tenant_truncated_at_every_offset () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let ns = "torn" in
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      serve t st workload_a;
      Store.Tenant.sync t;
      Store.Tenant.close t;
      let dir = Store.Tenant.tenant_dir ~data_dir ns in
      let wal = Store.Tenant.wal_path ~dir ~gen:0 in
      let full =
        match Store.Fsio.read_file wal with
        | Some s -> s
        | None -> Alcotest.fail "journal file missing"
      in
      (* Frame sizes are canonical, so boundaries are computable. *)
      let frames = List.map Wire.request_size workload_a in
      let bounds = boundaries (List.map (fun n -> String.make n ' ') frames) in
      Alcotest.(check int) "journal length matches canonical frame sizes"
        (List.nth bounds (List.length bounds - 1))
        (String.length full);
      let refs = Array.make (List.length workload_a + 1) (Handler.create_state ()) in
      List.iteri
        (fun i _ ->
          let st = Handler.create_state () in
          List.iteri (fun j r -> if j <= i then Handler.replay st r) workload_a;
          refs.(i + 1) <- st)
        workload_a;
      for cut = 0 to String.length full do
        Store.Fsio.write_file_atomic ~path:wal (String.sub full 0 cut);
        let m = List.length (List.filter (fun b -> b <> 0 && b <= cut) bounds) in
        let t2, recovered = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
        Alcotest.(check bool)
          (Printf.sprintf "cut at byte %d recovers first %d requests" cut m)
          true
          (fingerprint recovered = fingerprint refs.(m));
        Store.Tenant.close t2
      done)

(* Recovery truncates a torn tail and appends over it: journaling past a
   crash, then recovering again, must not resurrect the garbage. *)
let test_tenant_journal_past_torn_tail () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let ns = "regrown" in
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      serve t st workload_a;
      Store.Tenant.sync t;
      Store.Tenant.close t;
      let dir = Store.Tenant.tenant_dir ~data_dir ns in
      let wal = Store.Tenant.wal_path ~dir ~gen:0 in
      (match Store.Fsio.read_file wal with
      | Some s -> Store.Fsio.write_file_atomic ~path:wal (s ^ "\x99\x00\x00\x00garbage")
      | None -> Alcotest.fail "journal file missing");
      let t2, st2 = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      check_identical "garbage tail discarded" (reference workload_a) st2;
      serve t2 st2 workload_b;
      Store.Tenant.sync t2;
      Store.Tenant.close t2;
      let t3, st3 = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      check_identical "appends after a torn tail recover cleanly"
        (reference (workload_a @ workload_b))
        st3;
      Store.Tenant.close t3)

let test_tenant_corrupt_snapshot_refused () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let ns = "damaged" in
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      serve t st workload_a;
      Store.Tenant.snapshot t st;
      Store.Tenant.close t;
      let dir = Store.Tenant.tenant_dir ~data_dir ns in
      let snap = Store.Tenant.snapshot_path ~dir in
      (match Store.Fsio.read_file snap with
      | Some s -> Store.Fsio.write_file_atomic ~path:snap (String.sub s 0 (String.length s / 2))
      | None -> Alcotest.fail "snapshot missing");
      Alcotest.(check bool) "half a snapshot is Corrupt, not silently wrong state" true
        (match Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns with
        | exception Store.Tenant.Corrupt _ -> true
        | _ -> false))

let test_ns_encoding () =
  Alcotest.(check string) "safe names pass through" "t-alice.prod-1"
    (Store.Tenant.encode_ns "alice.prod-1");
  let hexed = Store.Tenant.encode_ns "a/b:c" in
  Alcotest.(check bool) "unsafe names hex-escape" true
    (String.length hexed > 2 && String.sub hexed 0 2 = "x-");
  Alcotest.(check bool) "empty name hex-escapes" true
    (String.sub (Store.Tenant.encode_ns "") 0 2 = "x-");
  (* The two forms cannot collide: a safe name that looks like an escape
     still gets the t- prefix. *)
  Alcotest.(check string) "prefixes disjoint" "t-x-6162" (Store.Tenant.encode_ns "x-6162")

(* {2 Session registry: LRU eviction and rehydration} *)

let test_session_evict_rehydrate () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let evicted = ref [] in
      let reg =
        Service.Session.create
          ~config:
            { Service.Session.default_config with
              data_dir = Some data_dir;
              max_resident = 1;
              on_evict = (fun ns -> evicted := ns :: !evicted) }
          ()
      in
      let serve_session ns reqs =
        let tenant = Service.Session.attach reg ns in
        List.iter
          (fun req ->
            Handler.replay tenant.Service.Session.handler req;
            Service.Session.journal reg tenant req)
          reqs;
        Service.Session.release reg tenant
      in
      serve_session "cold" workload_a;
      Alcotest.(check int) "one resident tenant" 1 (Service.Session.count reg);
      (* Attaching a second tenant pushes "cold" out... *)
      serve_session "hot" workload_b;
      Alcotest.(check bool) "cold tenant was evicted" true (List.mem "cold" !evicted);
      Alcotest.(check bool) "evicted tenant left memory" true
        (Service.Session.find reg "cold" = None);
      (* ...and the next Hello rehydrates it, bit-identically. *)
      let back = Service.Session.attach reg "cold" in
      check_identical "rehydrated tenant" (reference workload_a)
        back.Service.Session.handler;
      Service.Session.release reg back;
      (* A pinned tenant is never evicted, even over the cap. *)
      let pinned = Service.Session.attach reg "hot" in
      let other = Service.Session.attach reg "cold" in
      Alcotest.(check bool) "pinned tenants both resident" true
        (Service.Session.find reg "hot" <> None
        && Service.Session.find reg "cold" <> None);
      Service.Session.release reg pinned;
      Service.Session.release reg other;
      Service.Session.shutdown reg;
      Alcotest.(check int) "shutdown empties the registry" 0 (Service.Session.count reg))

(* {2 Daemon: restart and eviction end-to-end} *)

let with_daemon ?data_dir ?(max_resident = 0) ?(domains = 1) f =
  let path = Filename.temp_file "store-test" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        domains;
        data_dir;
        max_resident }
  in
  let th = Thread.create Service.Daemon.run daemon in
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () -> f path)

let with_client ?namespace path f =
  let conn = Servsim.Remote.connect_unix ?namespace path in
  Fun.protect
    ~finally:(fun () ->
      ((try Servsim.Remote.close conn with _ -> ()) [@lint.allow "exception-hygiene"]))
    (fun () -> f conn)

let client_batch_a conn =
  ignore (Servsim.Remote.call conn (Wire.Create_store "s"));
  ignore (Servsim.Remote.call conn (Wire.Ensure ("s", 16)));
  for i = 0 to 15 do
    ignore (Servsim.Remote.call conn (Wire.Put ("s", i, String.make 48 'p')))
  done;
  ignore (Servsim.Remote.call conn (Wire.Get ("s", 7)))

let client_batch_b conn =
  for i = 0 to 15 do
    ignore (Servsim.Remote.call conn (Wire.Put ("s", i, String.make 32 'q')))
  done;
  (match Servsim.Remote.call conn (Wire.Get ("s", 3)) with
  | Wire.Value v -> Alcotest.(check string) "value survived restart" (String.make 32 'q') v
  | _ -> Alcotest.fail "get after restart");
  let stats = Servsim.Remote.stats conn in
  (Servsim.Remote.server_digests conn, stats.Wire.frames)

let test_daemon_restart_bit_identical () =
  (* Reference: one daemon, no restart. *)
  (* Two connections, like the restarted run, so the Bye between the
     batches lands in both ledgers. *)
  let expected =
    with_daemon (fun path ->
        with_client ~namespace:"phoenix" path client_batch_a;
        with_client ~namespace:"phoenix" path client_batch_b)
  in
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let recovered =
        with_daemon ~data_dir (fun path ->
            with_client ~namespace:"phoenix" path client_batch_a);
        (* First daemon fully stopped (with_daemon joined it); a second
           one picks the tenant up from disk. *)
        with_daemon ~data_dir (fun path ->
            with_client ~namespace:"phoenix" path client_batch_b)
      in
      Alcotest.(check bool)
        "digests and session ledger survive a daemon restart" true (recovered = expected))

let test_daemon_eviction_under_load () =
  (* Reference: unlimited residency. *)
  let digests_of ~max_resident data_dir =
    with_daemon ~data_dir ~max_resident (fun path ->
        (* Interleave three tenants so each reconnect forces the previous
           tenant out (cap 1) and rehydrates this one. *)
        for round = 1 to 3 do
          List.iter
            (fun ns ->
              with_client ~namespace:ns path (fun conn ->
                  if round = 1 then begin
                    ignore (Servsim.Remote.call conn (Wire.Create_store "s"));
                    ignore (Servsim.Remote.call conn (Wire.Ensure ("s", 4)))
                  end;
                  ignore (Servsim.Remote.call conn (Wire.Put ("s", round mod 4, ns)));
                  ignore (Servsim.Remote.call conn (Wire.Get ("s", round mod 4)))))
            [ "ev-a"; "ev-b"; "ev-c" ]
        done;
        List.map
          (fun ns ->
            with_client ~namespace:ns path (fun conn ->
                (ns, Servsim.Remote.server_digests conn)))
          [ "ev-a"; "ev-b"; "ev-c" ])
  in
  let unlimited = with_tmp_dir "sfdd-ref" (digests_of ~max_resident:0) in
  let churned = with_tmp_dir "sfdd-churn" (digests_of ~max_resident:1) in
  List.iter2
    (fun (ns, d0) (_, d1) ->
      Alcotest.(check bool)
        (ns ^ " digests identical under eviction churn")
        true (d0 = d1))
    unlimited churned

(* {2 Dynamic sessions: persistence by update-history replay}

   A dynamic session is persisted as its update history (the successful
   [Begin_dynamic] plus every update served after it, rejected ones
   included) — snapshot and journal replay both re-dispatch it, so the
   rehydrated engine's ORAM state and trace digests are rebuilt
   bit-identically.  The probe is a served [Revalidate]: its [Fds_reply]
   carries the engine's FD statuses and trace digests, which is exactly
   the adversary-visible state that must not fork. *)

let enc_row ints =
  Dynserve.encode_row (Array.of_list (List.map (fun i -> Relation.Value.Int i) ints))

let dyn_begin =
  Wire.Begin_dynamic
    {
      seed = 7L;
      capacity = 64;
      max_lhs = 0;
      cols = 3;
      rows = List.map enc_row [ [ 1; 10; 100 ]; [ 1; 10; 200 ]; [ 2; 20; 100 ]; [ 3; 20; 200 ] ];
    }

let dyn_workload_1 =
  [
    dyn_begin;
    Wire.Insert_row (enc_row [ 2; 3; 1 ]);
    Wire.Insert_row (enc_row [ 3; 1; 1 ]);
    Wire.Insert_row (enc_row [ 1; 2 ]) (* rejected: arity; still journaled *);
    Wire.Delete_row 2;
  ]

let dyn_workload_2 = [ Wire.Insert_row (enc_row [ 9; 9; 9 ]); Wire.Revalidate ]

let dyn_probe st =
  match Handler.handle st Wire.Revalidate with
  | Wire.Fds_reply r -> (r, Handler.dyn_counters st)
  | _ -> Alcotest.fail "probe: expected Fds_reply"

let test_tenant_dyn_recovery () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let ns = "dynr" in
      let t, st = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      serve t st dyn_workload_1;
      (* Crash mid-update-stream: journal-only recovery re-dispatches the
         history... *)
      let t2, st2 = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      Alcotest.(check bool) "journal-only recovery restores the engine" true
        (dyn_probe st2 = dyn_probe (reference dyn_workload_1));
      (* ...and the session is live: keep streaming, snapshot (which
         persists the full history), reopen from the snapshot alone. *)
      serve t2 st2 dyn_workload_2;
      Store.Tenant.snapshot t2 st2;
      let t3, st3 = Store.Tenant.open_ ~data_dir ~snapshot_every:0 ns in
      (* The probes above are served requests, so mirror them in the
         reference before comparing. *)
      let ref_st = reference dyn_workload_1 in
      ignore (dyn_probe ref_st);
      List.iter (Handler.replay ref_st) dyn_workload_2;
      Alcotest.(check bool) "snapshot recovery after more updates" true
        (dyn_probe st3 = dyn_probe ref_st);
      Store.Tenant.close t3;
      Store.Tenant.close t2;
      Store.Tenant.close t)

let test_session_dyn_evict_rehydrate () =
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let reg =
        Service.Session.create
          ~config:
            { Service.Session.default_config with
              data_dir = Some data_dir;
              max_resident = 1 }
          ()
      in
      let serve_session ns reqs =
        let tenant = Service.Session.attach reg ns in
        List.iter
          (fun req ->
            Handler.replay tenant.Service.Session.handler req;
            Service.Session.journal reg tenant req)
          reqs;
        Service.Session.release reg tenant
      in
      serve_session "dcold" dyn_workload_1;
      Alcotest.(check int) "dynamic session resident" 1 (Service.Session.dyn_resident reg);
      (* Evict the tenant mid-session (its ORAM structures are freed)... *)
      serve_session "dhot" workload_b;
      Alcotest.(check bool) "dyn tenant evicted" true
        (Service.Session.find reg "dcold" = None);
      Alcotest.(check int) "gauge follows the eviction" 0 (Service.Session.dyn_resident reg);
      (* ...and rehydration rebuilds the live engine bit-identically. *)
      let back = Service.Session.attach reg "dcold" in
      Alcotest.(check int) "gauge follows rehydration" 1 (Service.Session.dyn_resident reg);
      Alcotest.(check bool) "rehydrated engine bit-identical" true
        (dyn_probe back.Service.Session.handler = dyn_probe (reference dyn_workload_1));
      Service.Session.release reg back;
      Service.Session.shutdown reg)

let dyn_client_a conn =
  ignore
    (Servsim.Remote.begin_dynamic conn ~capacity:64 ~seed:7L ~cols:3
       (List.map enc_row [ [ 1; 10; 100 ]; [ 1; 10; 200 ]; [ 2; 20; 100 ]; [ 3; 20; 200 ] ]));
  ignore (Servsim.Remote.insert_rows conn [ enc_row [ 2; 3; 1 ]; enc_row [ 3; 1; 1 ] ]);
  Servsim.Remote.delete_row conn ~id:2

let dyn_client_b conn =
  ignore (Servsim.Remote.insert_rows conn [ enc_row [ 9; 9; 9 ] ]);
  let r = Servsim.Remote.revalidate conn in
  let st = Servsim.Remote.stats conn in
  (r, st.Wire.inserts, st.Wire.deletes, st.Wire.revalidates)

let test_daemon_dyn_restart_bit_identical () =
  (* Reference: one daemon, no restart, same two-connection shape. *)
  let expected =
    with_daemon (fun path ->
        with_client ~namespace:"dphoenix" path dyn_client_a;
        with_client ~namespace:"dphoenix" path dyn_client_b)
  in
  with_tmp_dir "sfdd-store" (fun data_dir ->
      let recovered =
        with_daemon ~data_dir (fun path ->
            with_client ~namespace:"dphoenix" path dyn_client_a);
        (* Daemon killed mid-update-stream; a fresh one picks the session
           up from disk and the stream continues. *)
        with_daemon ~data_dir (fun path ->
            with_client ~namespace:"dphoenix" path dyn_client_b)
      in
      Alcotest.(check bool)
        "FD statuses, digests and verb counters survive a daemon restart" true
        (recovered = expected))

let suite =
  [
    Alcotest.test_case "crc32 known answers and streaming" `Quick test_crc32_kat;
    Alcotest.test_case "segment round-trip" `Quick test_segment_roundtrip;
    Alcotest.test_case "segment torn at every offset" `Quick test_segment_torn_at_every_offset;
    Alcotest.test_case "segment corrupt record" `Quick test_segment_crc_flip;
    Alcotest.test_case "tenant journal-only recovery" `Quick test_tenant_reopen_without_close;
    Alcotest.test_case "tenant snapshot rotation" `Quick test_tenant_snapshot_midway;
    Alcotest.test_case "tenant auto-snapshot" `Quick test_tenant_auto_snapshot;
    Alcotest.test_case "tenant journal truncated at every offset" `Slow
      test_tenant_truncated_at_every_offset;
    Alcotest.test_case "tenant journals past a torn tail" `Quick
      test_tenant_journal_past_torn_tail;
    Alcotest.test_case "tenant corrupt snapshot refused" `Quick
      test_tenant_corrupt_snapshot_refused;
    Alcotest.test_case "namespace directory encoding" `Quick test_ns_encoding;
    Alcotest.test_case "session evict and rehydrate" `Quick test_session_evict_rehydrate;
    Alcotest.test_case "daemon restart bit-identical" `Quick
      test_daemon_restart_bit_identical;
    Alcotest.test_case "daemon eviction churn bit-identical" `Quick
      test_daemon_eviction_under_load;
    Alcotest.test_case "tenant dynamic-session recovery" `Quick test_tenant_dyn_recovery;
    Alcotest.test_case "session dynamic evict and rehydrate" `Quick
      test_session_dyn_evict_rehydrate;
    Alcotest.test_case "daemon dynamic restart bit-identical" `Quick
      test_daemon_dyn_restart_bit_identical;
  ]
