(* Crypto substrate tests: FIPS-197 / NIST known-answer vectors, CBC
   round-trips, PRG behaviour, RNG distribution sanity. *)

open Crypto

let test_fips197_appendix_b () =
  (* FIPS-197 Appendix B worked example. *)
  let key = Hex.decode "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = Hex.decode "3243f6a8885a308d313198a2e0370734" in
  let k = Aes128.expand key in
  let dst = Bytes.create 16 in
  Aes128.encrypt_block k ~src:(Bytes.of_string pt) ~src_off:0 ~dst ~dst_off:0;
  Alcotest.(check string)
    "ciphertext" "3925841d02dc09fbdc118597196a0b32"
    (Hex.encode (Bytes.to_string dst))

let test_fips197_appendix_c () =
  let key = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.decode "00112233445566778899aabbccddeeff" in
  let k = Aes128.expand key in
  let dst = Bytes.create 16 in
  Aes128.encrypt_block k ~src:(Bytes.of_string pt) ~src_off:0 ~dst ~dst_off:0;
  Alcotest.(check string)
    "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Hex.encode (Bytes.to_string dst));
  let back = Bytes.create 16 in
  Aes128.decrypt_block k ~src:dst ~src_off:0 ~dst:back ~dst_off:0;
  Alcotest.(check string) "decrypt" (Hex.encode pt) (Hex.encode (Bytes.to_string back))

(* Run one AESAVS entry through the fast path (encrypt + invert) and the
   byte-wise Reference oracle, so every known answer also cross-checks the
   two implementations. *)
let check_kat_entry ~key ~pt ~expect label =
  let k = Aes128.expand key in
  let kr = Aes128.Reference.expand key in
  let src = Bytes.of_string pt in
  let ct = Bytes.create 16 and back = Bytes.create 16 in
  Aes128.encrypt_block k ~src ~src_off:0 ~dst:ct ~dst_off:0;
  Alcotest.(check string) label expect (Hex.encode (Bytes.to_string ct));
  Aes128.decrypt_block k ~src:ct ~src_off:0 ~dst:back ~dst_off:0;
  Alcotest.(check string) (label ^ " inverse") (Hex.encode pt)
    (Hex.encode (Bytes.to_string back));
  Aes128.Reference.encrypt_block kr ~src ~src_off:0 ~dst:ct ~dst_off:0;
  Alcotest.(check string) (label ^ " ref") expect (Hex.encode (Bytes.to_string ct));
  Aes128.Reference.decrypt_block kr ~src:ct ~src_off:0 ~dst:back ~dst_off:0;
  Alcotest.(check string) (label ^ " ref inverse") (Hex.encode pt)
    (Hex.encode (Bytes.to_string back))

(* Full NIST AESAVS known-answer sets (appendices B-D of the AESAVS). *)
let test_aesavs_gfsbox () =
  let zero_key = String.make 16 '\000' in
  List.iter
    (fun (pt, expect) -> check_kat_entry ~key:zero_key ~pt:(Hex.decode pt) ~expect pt)
    Aes_kat.gfsbox

let test_aesavs_keysbox () =
  let zero_pt = String.make 16 '\000' in
  List.iter
    (fun (key, expect) -> check_kat_entry ~key:(Hex.decode key) ~pt:zero_pt ~expect key)
    Aes_kat.keysbox

let test_aesavs_vartxt () =
  let zero_key = String.make 16 '\000' in
  List.iter
    (fun (pt, expect) -> check_kat_entry ~key:zero_key ~pt:(Hex.decode pt) ~expect pt)
    Aes_kat.vartxt

(* CAVP-style Monte Carlo: 1000 chained encryptions; the expected final
   ciphertext was generated with an independent AES implementation
   validated against FIPS-197 and SP 800-38A.  Run on both the fast path
   and the Reference oracle. *)
let test_monte_carlo () =
  let key = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let seed = Hex.decode "00112233445566778899aabbccddeeff" in
  let expect = "b7449c8da15defeb78dbc57ea81db8ee" in
  let k = Aes128.expand key in
  let buf = Bytes.of_string seed in
  for _ = 1 to 1000 do
    Aes128.encrypt_block k ~src:buf ~src_off:0 ~dst:buf ~dst_off:0
  done;
  Alcotest.(check string) "MCT(1000)" expect (Hex.encode (Bytes.to_string buf));
  let kr = Aes128.Reference.expand key in
  let buf = Bytes.of_string seed in
  for _ = 1 to 1000 do
    Aes128.Reference.encrypt_block kr ~src:buf ~src_off:0 ~dst:buf ~dst_off:0
  done;
  Alcotest.(check string) "MCT(1000) ref" expect (Hex.encode (Bytes.to_string buf))

let test_encrypt_decrypt_random_blocks () =
  let rng = Rng.create 42 in
  for _ = 1 to 50 do
    let key = Bytes.to_string (Rng.bytes rng 16) in
    let k = Aes128.expand key in
    let pt = Rng.bytes rng 16 in
    let ct = Bytes.create 16 and back = Bytes.create 16 in
    Aes128.encrypt_block k ~src:pt ~src_off:0 ~dst:ct ~dst_off:0;
    Aes128.decrypt_block k ~src:ct ~src_off:0 ~dst:back ~dst_off:0;
    Alcotest.(check string) "roundtrip" (Bytes.to_string pt) (Bytes.to_string back)
  done

let test_key_length_checked () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes128.expand: key must be 16 bytes")
    (fun () -> ignore (Aes128.expand "short"))

let test_hex_roundtrip () =
  Alcotest.(check string) "decode-encode" "deadbeef" (Hex.encode (Hex.decode "DEADBEEF"));
  Alcotest.(check string) "empty" "" (Hex.encode (Hex.decode ""));
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"))

let test_cbc_roundtrip_lengths () =
  let k = Aes128.expand (Hex.decode "000102030405060708090a0b0c0d0e0f") in
  let iv = String.make 16 '\007' in
  List.iter
    (fun len ->
      let pt = String.init len (fun i -> Char.chr ((i * 7) land 0xff)) in
      let ct = Cbc.encrypt k ~iv pt in
      Alcotest.(check int) "padded length" ((len / 16 * 16) + 16) (String.length ct);
      Alcotest.(check string) "roundtrip" pt (Cbc.decrypt k ~iv ct))
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100 ]

let test_cbc_nist_vector () =
  (* NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block (we add PKCS#7,
     so compare only the first 16 ciphertext bytes). *)
  let k = Aes128.expand (Hex.decode "2b7e151628aed2a6abf7158809cf4f3c") in
  let iv = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.decode "6bc1bee22e409f96e93d7e117393172a" in
  let ct = Cbc.encrypt k ~iv pt in
  Alcotest.(check string)
    "first block" "7649abac8119b246cee98e9b12e9197d"
    (Hex.encode (String.sub ct 0 16))

let test_cbc_bad_padding_rejected () =
  let k = Aes128.expand (String.make 16 'k') in
  let iv = String.make 16 '\000' in
  let garbage = String.make 16 'x' in
  match Cbc.decrypt k ~iv garbage with
  | exception Invalid_argument _ -> ()
  | _ ->
      (* Random garbage can decode to valid padding with probability
         ~2^-8 per trailing byte; accept but flag the rarity. *)
      ()

let test_cell_cipher_semantic () =
  let c = Cell_cipher.create (String.make 16 'K') in
  let ct1 = Cell_cipher.encrypt c "hello world" in
  let ct2 = Cell_cipher.encrypt c "hello world" in
  Alcotest.(check bool) "distinct ciphertexts" false (String.equal ct1 ct2);
  Alcotest.(check string) "decrypt 1" "hello world" (Cell_cipher.decrypt c ct1);
  Alcotest.(check string) "decrypt 2" "hello world" (Cell_cipher.decrypt c ct2)

let test_cell_cipher_lengths () =
  let c = Cell_cipher.create (String.make 16 'K') in
  List.iter
    (fun len ->
      let pt = String.make len 'a' in
      let ct = Cell_cipher.encrypt c pt in
      Alcotest.(check int)
        (Printf.sprintf "predicted length for %d" len)
        (Cell_cipher.ciphertext_len ~plaintext_len:len)
        (String.length ct))
    [ 0; 1; 15; 16; 24; 32 ]

let test_ctr_prg_deterministic () =
  let a = Ctr_prg.create (String.make 16 's') in
  let b = Ctr_prg.create (String.make 16 's') in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Ctr_prg.next64 a) (Ctr_prg.next64 b)
  done;
  let c = Ctr_prg.create (String.make 16 't') in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Ctr_prg.next64 a) (Ctr_prg.next64 c)) then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_rng_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next64 a) (Rng.next64 b) then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_rng_uniformity_coarse () =
  (* Chi-square-ish sanity: 8 buckets over 8000 draws, each within 3x. *)
  let rng = Rng.create 99 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket balanced" true (c > 700 && c < 1300))
    buckets

(* The block primitives must produce/consume exactly the same bytes as the
   string API they replaced. *)
let test_cbc_blocks_match_string_api () =
  let key = Hex.decode "2b7e151628aed2a6abf7158809cf4f3c" in
  let k = Aes128.expand key in
  let iv = String.init 16 (fun i -> Char.chr (17 * i land 0xff)) in
  List.iter
    (fun len ->
      let pt = String.init len (fun i -> Char.chr ((i * 13) land 0xff)) in
      let expect = Cbc.encrypt k ~iv pt in
      (* encrypt_blocks over a hand-laid-out iv ‖ padded-body buffer *)
      let pad = 16 - (len mod 16) in
      let buf = Bytes.create (16 + len + pad) in
      Bytes.blit_string iv 0 buf 0 16;
      Bytes.blit_string pt 0 buf 16 len;
      Bytes.fill buf (16 + len) pad (Char.chr pad);
      Cbc.encrypt_blocks k buf ~iv_off:0 ~off:16 ~nblocks:((len + pad) / 16);
      Alcotest.(check string)
        (Printf.sprintf "encrypt_blocks len %d" len)
        (Hex.encode expect)
        (Hex.encode (Bytes.sub_string buf 16 (len + pad)));
      let out = Bytes.create (len + pad) in
      Cbc.decrypt_blocks k
        ~src:(Bytes.unsafe_of_string expect [@lint.allow "no-unsafe-casts"])
        ~src_off:0
        ~iv:(Bytes.unsafe_of_string iv [@lint.allow "no-unsafe-casts"])
        ~iv_off:0 ~dst:out ~dst_off:0
        ~nblocks:((len + pad) / 16);
      let n = Cbc.unpad_len out ~off:0 ~len:(len + pad) in
      Alcotest.(check string)
        (Printf.sprintf "decrypt_blocks len %d" len)
        pt (Bytes.sub_string out 0 n))
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100 ]

(* encrypt_to/decrypt_to at a nonzero offset must equal the string API. *)
let test_cell_to_offsets () =
  let mk () = Cell_cipher.create (String.make 16 'K') in
  List.iter
    (fun len ->
      let pt = String.init len (fun i -> Char.chr ((i * 31) land 0xff)) in
      let expect = Cell_cipher.encrypt (mk ()) pt in
      let ctlen = Cell_cipher.ciphertext_len ~plaintext_len:len in
      let buf = Bytes.make (ctlen + 7) 'z' in
      let wrote = Cell_cipher.encrypt_to (mk ()) pt buf 7 in
      Alcotest.(check int) "encrypt_to length" ctlen wrote;
      Alcotest.(check string)
        (Printf.sprintf "encrypt_to len %d" len)
        (Hex.encode expect)
        (Hex.encode (Bytes.sub_string buf 7 ctlen));
      let out = Bytes.make (ctlen - 16 + 3) '\000' in
      let n = Cell_cipher.decrypt_to (mk ()) expect out 3 in
      Alcotest.(check string)
        (Printf.sprintf "decrypt_to len %d" len)
        pt (Bytes.sub_string out 3 n))
    [ 0; 1; 15; 16; 17; 31; 32; 33 ]

(* The bulk entry points must consume the same IV stream and produce the
   same bytes as a sequence of single calls on an identically-keyed
   cipher. *)
let test_cell_many_match_singles () =
  let pts = [ ""; "a"; String.make 15 'b'; String.make 16 'c'; String.make 33 'd' ] in
  let singles = List.map (Cell_cipher.encrypt (Cell_cipher.create (String.make 16 'M'))) pts in
  let bulk = Cell_cipher.encrypt_many (Cell_cipher.create (String.make 16 'M')) pts in
  List.iter2
    (fun a b -> Alcotest.(check string) "encrypt_many" (Hex.encode a) (Hex.encode b))
    singles bulk;
  let c = Cell_cipher.create (String.make 16 'M') in
  List.iter2
    (fun pt ct -> Alcotest.(check string) "decrypt_many" pt ct)
    pts
    (Cell_cipher.decrypt_many c bulk)

let test_cell_decrypt_rejects_malformed () =
  let c = Cell_cipher.create (String.make 16 'K') in
  List.iter
    (fun ct ->
      match Cell_cipher.decrypt c ct with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed ciphertext of length %d" (String.length ct))
    [ ""; "short"; String.make 31 'x'; String.make 40 'y' ]

let qcheck_ttable_vs_reference =
  QCheck.Test.make ~name:"T-table vs Reference (random key/block)" ~count:300
    QCheck.(pair (string_of_size (Gen.return 16)) (string_of_size (Gen.return 16)))
    (fun (key, pt) ->
      let k = Aes128.expand key in
      let kr = Aes128.Reference.expand key in
      let src = Bytes.of_string pt in
      let a = Bytes.create 16 and b = Bytes.create 16 in
      Aes128.encrypt_block k ~src ~src_off:0 ~dst:a ~dst_off:0;
      Aes128.Reference.encrypt_block kr ~src ~src_off:0 ~dst:b ~dst_off:0;
      let enc_ok = Bytes.equal a b in
      Aes128.decrypt_block k ~src:a ~src_off:0 ~dst:b ~dst_off:0;
      enc_ok && Bytes.equal b src)

let qcheck_cbc_roundtrip =
  QCheck.Test.make ~name:"cbc roundtrip (arbitrary strings)" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun pt ->
      let k = Aes128.expand (String.make 16 'q') in
      let iv = String.make 16 '\001' in
      String.equal pt (Cbc.decrypt k ~iv (Cbc.encrypt k ~iv pt)))

let qcheck_cell_roundtrip =
  QCheck.Test.make ~name:"cell cipher roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun pt ->
      let c = Cell_cipher.create (String.make 16 'w') in
      String.equal pt (Cell_cipher.decrypt c (Cell_cipher.encrypt c pt)))

(* Ct.equal must agree with the variable-time library equality on
   every input pair — it only changes *how long* the answer takes, never
   the answer. *)
let qcheck_ct_equal_agrees =
  QCheck.Test.make ~name:"Ct.equal agrees with Bytes.equal" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 64)) (string_of_size Gen.(0 -- 64)))
    (fun (a, b) ->
      let direct = Crypto.Ct.equal a b = String.equal a b in
      let as_bytes =
        Crypto.Ct.equal_bytes (Bytes.of_string a) (Bytes.of_string b)
        = Bytes.equal (Bytes.of_string a) (Bytes.of_string b)
      in
      (* Also exercise the all-but-last-byte-equal corner, where a lazy
         implementation would bail early. *)
      let tweaked =
        let b' = Bytes.of_string a in
        if Bytes.length b' = 0 then true
        else begin
          let last = Bytes.length b' - 1 in
          Bytes.set b' last (Char.chr (Char.code (Bytes.get b' last) lxor 1));
          not (Crypto.Ct.equal a (Bytes.to_string b'))
        end
      in
      direct && as_bytes && tweaked)

let test_ct_equal_basics () =
  Alcotest.(check bool) "empty equal" true (Crypto.Ct.equal "" "");
  Alcotest.(check bool) "equal" true (Crypto.Ct.equal "secret-tag" "secret-tag");
  Alcotest.(check bool) "first byte differs" false (Crypto.Ct.equal "Xecret" "secret");
  Alcotest.(check bool) "last byte differs" false (Crypto.Ct.equal "secreT" "secret");
  Alcotest.(check bool) "length differs" false (Crypto.Ct.equal "secret" "secret!")

let suite =
  [
    Alcotest.test_case "FIPS-197 appendix B" `Quick test_fips197_appendix_b;
    Alcotest.test_case "FIPS-197 appendix C" `Quick test_fips197_appendix_c;
    Alcotest.test_case "NIST AESAVS GFSbox" `Quick test_aesavs_gfsbox;
    Alcotest.test_case "NIST AESAVS KeySbox" `Quick test_aesavs_keysbox;
    Alcotest.test_case "NIST AESAVS VarTxt" `Quick test_aesavs_vartxt;
    Alcotest.test_case "Monte Carlo 1000 iterations" `Quick test_monte_carlo;
    Alcotest.test_case "random block roundtrips" `Quick test_encrypt_decrypt_random_blocks;
    Alcotest.test_case "key length validation" `Quick test_key_length_checked;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "CBC roundtrip lengths" `Quick test_cbc_roundtrip_lengths;
    Alcotest.test_case "CBC NIST SP800-38A" `Quick test_cbc_nist_vector;
    Alcotest.test_case "CBC bad padding" `Quick test_cbc_bad_padding_rejected;
    Alcotest.test_case "CBC block primitives match string API" `Quick
      test_cbc_blocks_match_string_api;
    Alcotest.test_case "cell encrypt_to/decrypt_to offsets" `Quick test_cell_to_offsets;
    Alcotest.test_case "cell bulk APIs match singles" `Quick test_cell_many_match_singles;
    Alcotest.test_case "cell decrypt rejects malformed" `Quick
      test_cell_decrypt_rejects_malformed;
    Alcotest.test_case "cell cipher semantic security shape" `Quick test_cell_cipher_semantic;
    Alcotest.test_case "cell cipher length prediction" `Quick test_cell_cipher_lengths;
    Alcotest.test_case "CTR PRG determinism" `Quick test_ctr_prg_deterministic;
    Alcotest.test_case "rng range" `Quick test_rng_range;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng coarse uniformity" `Quick test_rng_uniformity_coarse;
    Alcotest.test_case "Ct.equal basics" `Quick test_ct_equal_basics;
    QCheck_alcotest.to_alcotest qcheck_ttable_vs_reference;
    QCheck_alcotest.to_alcotest qcheck_cbc_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_cell_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ct_equal_agrees;
  ]
