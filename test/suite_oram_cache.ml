(* Treetop caching (ORAM client fast path): cache-off runs must be
   bit-identical to the pre-cache implementation (digests, byte counters,
   round trips AND ciphertext contents are pinned below); cache-on runs
   must stay correct, data-independent, and properly charged to the
   client-memory ledger; the FD methods must return identical results at
   every cache setting, statically and under streaming updates. *)

let cipher () = Crypto.Cell_cipher.create (String.make 16 'K')

let enc_key i = Relation.Codec.encode_int i
let enc_val i = Relation.Codec.encode_int i

let content_hash server =
  let names = List.sort String.compare (Servsim.Server.store_names server) in
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let st = Servsim.Server.find_store server name in
      Buffer.add_string buf name;
      for i = 0 to Servsim.Block_store.length st - 1 do
        Buffer.add_string buf (Servsim.Block_store.read st i)
      done)
    names;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* {2 Cache-off bit-identity: golden values captured on the pre-cache
      implementation.  Every digest, byte counter and ciphertext hash
      below predates the fast path; changing any of them means the
      cache-off wire behaviour regressed.} *)

let check_golden server ~full ~shape ~count ~to_server ~to_client ~trips ~content =
  let tr = Servsim.Server.trace server in
  Alcotest.(check int64) "full digest" full (Servsim.Trace.full_digest tr);
  Alcotest.(check int64) "shape digest" shape (Servsim.Trace.shape_digest tr);
  Alcotest.(check int) "event count" count (Servsim.Trace.count tr);
  let c = Servsim.Cost.snapshot (Servsim.Server.cost server) in
  Alcotest.(check int) "bytes to server" to_server c.Servsim.Cost.bytes_to_server;
  Alcotest.(check int) "bytes to client" to_client c.Servsim.Cost.bytes_to_client;
  Alcotest.(check int) "round trips" trips c.Servsim.Cost.round_trips;
  (* Content last: reading the stores adds trace events. *)
  Alcotest.(check string) "ciphertext content" content (content_hash server)

let test_golden_path () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 1 in
  let o =
    Oram.Path_oram.setup ~name:"g-path"
      { capacity = 64; key_len = 8; payload_len = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 19 do
    Oram.Path_oram.write o ~key:(enc_key i) (enc_val (i * 3))
  done;
  for i = 0 to 19 do
    ignore (Oram.Path_oram.read o ~key:(enc_key i))
  done;
  Oram.Path_oram.remove o ~key:(enc_key 5);
  check_golden server ~full:0x78fae49dc16d03c1L ~shape:0x329acab8edb94975L ~count:2804
    ~to_server:79488 ~to_client:55104 ~trips:85
    ~content:"5c6c0c3c0693ded1abe7146b86d4d952"

let test_golden_recursive () =
  let pad24 i =
    let b = Bytes.make 24 '\000' in
    Relation.Codec.put_int64 b 0 (Int64.of_int i);
    Relation.Codec.put_int64 b 8 (Int64.of_int (i * 7));
    Bytes.to_string b
  in
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 5 in
  let o =
    Oram.Recursive_path_oram.setup ~name:"g-rec"
      { capacity = 128; payload_len = 24; fanout = 16; top_cutoff = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 19 do
    Oram.Recursive_path_oram.write o ~key:i (pad24 i)
  done;
  for i = 0 to 19 do
    ignore (Oram.Recursive_path_oram.read o ~key:i)
  done;
  Oram.Recursive_path_oram.remove o ~key:5;
  Alcotest.(check int) "client bytes (top map only)" 64
    (Oram.Recursive_path_oram.client_state_bytes o);
  check_golden server ~full:0x50d73f26870f433dL ~shape:0x4d1d65557d0ff665L ~count:5016
    ~to_server:275264 ~to_client:199424 ~trips:170
    ~content:"ccc7569fd66c1527445f5969a089c5c5"

let test_golden_linear () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 3 in
  let o =
    Oram.Linear_oram.setup ~name:"g-lin"
      { capacity = 16; key_len = 8; payload_len = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 9 do
    Oram.Linear_oram.write o ~key:(enc_key i) (enc_val i)
  done;
  ignore (Oram.Linear_oram.read o ~key:(enc_key 3));
  Oram.Linear_oram.remove o ~key:(enc_key 7);
  check_golden server ~full:0x604b614fee866265L ~shape:0xc0494717b821b75L ~count:400
    ~to_server:9984 ~to_client:9216 ~trips:27
    ~content:"b38fc84d24c4a2be62484a64ac55ea1a"

(* {2 Model equality with the cache on}: random workloads against a
   Hashtbl, at a mid-tree and an over-deep (clamped to max) setting. *)

let random_ops ~capacity ~steps ~seed f =
  let rng = Crypto.Rng.create seed in
  for _ = 1 to steps do
    let k = Crypto.Rng.int rng capacity in
    f k (Crypto.Rng.int rng 3) (Crypto.Rng.int rng 1000)
  done

let test_path_model_cached cache_levels () =
  let capacity = 64 in
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 11 in
  let o =
    Oram.Path_oram.setup ~name:"mc-path" ~cache_levels
      { capacity; key_len = 8; payload_len = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  let model = Hashtbl.create 64 in
  random_ops ~capacity ~steps:600 ~seed:77 (fun k op v ->
      let key = enc_key k in
      match op with
      | 0 ->
          Oram.Path_oram.write o ~key (enc_val v);
          Hashtbl.replace model k v
      | 1 ->
          Oram.Path_oram.remove o ~key;
          Hashtbl.remove model k
      | _ ->
          Alcotest.(check (option string))
            "read agrees"
            (Option.map enc_val (Hashtbl.find_opt model k))
            (Oram.Path_oram.read o ~key));
  Alcotest.(check int) "live blocks" (Hashtbl.length model) (Oram.Path_oram.live_blocks o);
  Alcotest.(check int) "no stash overflow" 0 (Oram.Path_oram.stash_overflows o)

let test_recursive_model_cached cache_levels () =
  let capacity = 96 in
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 13 in
  let o =
    Oram.Recursive_path_oram.setup ~name:"mc-rec" ~cache_levels
      { capacity; payload_len = 8; fanout = 8; top_cutoff = 4 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  let model = Hashtbl.create 64 in
  random_ops ~capacity ~steps:400 ~seed:78 (fun k op v ->
      match op with
      | 0 ->
          Oram.Recursive_path_oram.write o ~key:k (enc_val v);
          Hashtbl.replace model k v
      | 1 ->
          Oram.Recursive_path_oram.remove o ~key:k;
          Hashtbl.remove model k
      | _ ->
          Alcotest.(check (option string))
            "read agrees"
            (Option.map enc_val (Hashtbl.find_opt model k))
            (Oram.Recursive_path_oram.read o ~key:k));
  Alcotest.(check int) "live blocks" (Hashtbl.length model)
    (Oram.Recursive_path_oram.live_blocks o)

let test_linear_flag_ignored () =
  (* The linear scan accepts the flag for interface parity and behaves
     identically: digests equal at 0 and 3. *)
  let run cache_levels =
    let server = Servsim.Server.create () in
    let rng = Crypto.Rng.create 9 in
    let o =
      Oram.Linear_oram.setup ~name:"lin-flag" ~cache_levels
        { capacity = 8; key_len = 8; payload_len = 8 }
        server (cipher ()) (Crypto.Rng.int rng)
    in
    for i = 0 to 5 do
      Oram.Linear_oram.write o ~key:(enc_key i) (enc_val i)
    done;
    Oram.Linear_oram.flush o;
    Servsim.Trace.full_digest (Servsim.Server.trace server)
  in
  Alcotest.(check int64) "identical" (run 0) (run 3)

(* {2 Data-independence (QCheck)}: two workloads of the same shape (same
   op kinds, same key indices) but different payload bytes must leave
   bit-identical full trace digests — at every cache setting.  The
   payloads feed the encrypt path, so this also proves the reused path
   buffers never leak data into addresses, sizes or event order. *)

type variant = Path | Recursive | Linear

let variant_name = function Path -> "path" | Recursive -> "recursive" | Linear -> "linear"

let run_workload variant ~cache_levels ~ops ~payload =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 21 in
  let c = cipher () in
  let digest () = Servsim.Trace.full_digest (Servsim.Server.trace server) in
  match variant with
  | Path ->
      let o =
        Oram.Path_oram.setup ~name:"di" ~cache_levels
          { capacity = 32; key_len = 8; payload_len = 8 }
          server c (Crypto.Rng.int rng)
      in
      List.iter
        (fun (k, op) ->
          match op mod 3 with
          | 0 -> Oram.Path_oram.write o ~key:(enc_key k) (payload k)
          | 1 -> ignore (Oram.Path_oram.read o ~key:(enc_key k))
          | _ -> Oram.Path_oram.remove o ~key:(enc_key k))
        ops;
      Oram.Path_oram.flush o;
      digest ()
  | Recursive ->
      let o =
        Oram.Recursive_path_oram.setup ~name:"di" ~cache_levels
          { capacity = 32; payload_len = 8; fanout = 8; top_cutoff = 4 }
          server c (Crypto.Rng.int rng)
      in
      List.iter
        (fun (k, op) ->
          match op mod 3 with
          | 0 -> Oram.Recursive_path_oram.write o ~key:k (payload k)
          | 1 -> ignore (Oram.Recursive_path_oram.read o ~key:k)
          | _ -> Oram.Recursive_path_oram.remove o ~key:k)
        ops;
      Oram.Recursive_path_oram.flush o;
      digest ()
  | Linear ->
      let o =
        Oram.Linear_oram.setup ~name:"di" ~cache_levels
          { capacity = 32; key_len = 8; payload_len = 8 }
          server c (Crypto.Rng.int rng)
      in
      List.iter
        (fun (k, op) ->
          match op mod 3 with
          | 0 -> Oram.Linear_oram.write o ~key:(enc_key k) (payload k)
          | 1 -> ignore (Oram.Linear_oram.read o ~key:(enc_key k))
          | _ -> Oram.Linear_oram.remove o ~key:(enc_key k))
        ops;
      Oram.Linear_oram.flush o;
      digest ()

let qcheck_data_independence variant cache_levels =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s cache=%d: same shape, different data => same trace"
         (variant_name variant) cache_levels)
    ~count:15
    QCheck.(
      make
        Gen.(list_size (1 -- 40) (pair (int_bound 31) (int_bound 2))))
    (fun ops ->
      let d1 =
        run_workload variant ~cache_levels ~ops ~payload:(fun k -> enc_val (k * 3))
      in
      let d2 =
        run_workload variant ~cache_levels ~ops ~payload:(fun k -> enc_val (1000 - k))
      in
      Int64.equal d1 d2)

(* {2 FD results are cache-invariant}: static discovery and the
   streaming engine must return the same dependencies at every cache
   setting — the fast path may only change performance. *)

let fd_testable = Alcotest.testable Fdbase.Fd.pp Fdbase.Fd.equal

let sorted_fds fds = List.sort compare fds

let test_discover_cache_invariant method_ () =
  let table = Datasets.Adult_like.generate ~seed:3 ~rows:24 () in
  let base = Core.Protocol.discover ~seed:7 ~oram_cache_levels:0 method_ table in
  let cached = Core.Protocol.discover ~seed:7 ~oram_cache_levels:2 method_ table in
  Alcotest.(check (list fd_testable))
    "same FDs"
    (sorted_fds base.Core.Protocol.fds)
    (sorted_fds cached.Core.Protocol.fds)

let test_dynamic_cache_invariant () =
  let table = Datasets.Examples.fig1 () in
  let stream oram_cache_levels =
    let dyn = Core.Dynamic.start ~seed:5 ~oram_cache_levels table in
    let id = Core.Dynamic.insert dyn (Relation.Table.row table 0) in
    ignore (Core.Dynamic.insert dyn (Relation.Table.row table 1));
    Core.Dynamic.delete dyn ~id;
    Core.Dynamic.delete dyn ~id:0;
    let statuses = Core.Dynamic.revalidate dyn in
    Core.Dynamic.release dyn;
    List.sort compare (List.map (fun (fd, v) -> (Relation.Attrset.to_int fd.Fdbase.Fd.lhs, fd.Fdbase.Fd.rhs, v)) statuses)
  in
  Alcotest.(check (list (triple int int bool))) "same statuses" (stream 0) (stream 2)

(* {2 Client-memory ledger}: stash, position map and treetop cache all
   flow into the tagged client ledger; the snapshot must equal the
   structure's own accounting after a known workload. *)

let test_path_ledger () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 4 in
  let o =
    Oram.Path_oram.setup ~name:"led-path" ~cache_levels:2
      { capacity = 64; key_len = 8; payload_len = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 15 do
    Oram.Path_oram.write o ~key:(enc_key i) (enc_val i)
  done;
  let c = Servsim.Cost.snapshot (Servsim.Server.cost server) in
  Alcotest.(check int) "ledger = structure accounting"
    (Oram.Path_oram.client_state_bytes o)
    c.Servsim.Cost.client_current_bytes;
  (* The treetop cache is charged at capacity: (2^2 - 1) * 4 slots of
     (key_len + payload_len) bytes each. *)
  Alcotest.(check bool) "cache slots charged" true
    (c.Servsim.Cost.client_current_bytes >= 12 * 16);
  (* 16 live keys: position map 16*(8+8) = 256 on top of stash+cache. *)
  Alcotest.(check bool) "position map charged" true
    (c.Servsim.Cost.client_current_bytes >= 256 + (12 * 16))

let test_recursive_ledger () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 6 in
  let o =
    Oram.Recursive_path_oram.setup ~name:"led-rec" ~cache_levels:2
      { capacity = 64; payload_len = 8; fanout = 8; top_cutoff = 4 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 15 do
    Oram.Recursive_path_oram.write o ~key:i (enc_val i)
  done;
  let c = Servsim.Cost.snapshot (Servsim.Server.cost server) in
  Alcotest.(check int) "ledger = structure accounting"
    (Oram.Recursive_path_oram.client_state_bytes o)
    c.Servsim.Cost.client_current_bytes;
  Oram.Recursive_path_oram.destroy o;
  let c = Servsim.Cost.snapshot (Servsim.Server.cost server) in
  Alcotest.(check int) "ledger cleared on destroy" 0 c.Servsim.Cost.client_current_bytes

(* {2 Flush}: the checkpoint writes exactly the cached prefix — one
   event per cached slot, through the normal traced write path — and is
   a no-op with the cache off. *)

let test_path_flush_events () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 8 in
  let o =
    Oram.Path_oram.setup ~name:"fl-path" ~cache_levels:2
      { capacity = 64; key_len = 8; payload_len = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 9 do
    Oram.Path_oram.write o ~key:(enc_key i) (enc_val i)
  done;
  let tr = Servsim.Server.trace server in
  let before = Servsim.Trace.count tr in
  Oram.Path_oram.flush o;
  Alcotest.(check int) "one event per cached slot: (2^2-1)*4" 12
    (Servsim.Trace.count tr - before);
  (* Reads still served correctly after the checkpoint. *)
  Alcotest.(check (option string)) "read after flush" (Some (enc_val 3))
    (Oram.Path_oram.read o ~key:(enc_key 3))

let test_path_flush_noop_uncached () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 8 in
  let o =
    Oram.Path_oram.setup ~name:"fl0-path"
      { capacity = 64; key_len = 8; payload_len = 8 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  Oram.Path_oram.write o ~key:(enc_key 1) (enc_val 1);
  let tr = Servsim.Server.trace server in
  let before = Servsim.Trace.count tr in
  Oram.Path_oram.flush o;
  Alcotest.(check int) "no events" 0 (Servsim.Trace.count tr - before)

let test_recursive_flush_one_frame () =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 8 in
  let o =
    Oram.Recursive_path_oram.setup ~name:"fl-rec" ~cache_levels:2
      { capacity = 96; payload_len = 8; fanout = 8; top_cutoff = 4 }
      server (cipher ()) (Crypto.Rng.int rng)
  in
  for i = 0 to 9 do
    Oram.Recursive_path_oram.write o ~key:i (enc_val i)
  done;
  let cost = Servsim.Server.cost server in
  let before = (Servsim.Cost.snapshot cost).Servsim.Cost.round_trips in
  Oram.Recursive_path_oram.flush o;
  (* All trees' cached prefixes ride in a single Scatter_put frame. *)
  Alcotest.(check int) "one round trip" 1
    ((Servsim.Cost.snapshot cost).Servsim.Cost.round_trips - before);
  Alcotest.(check (option string)) "read after flush" (Some (enc_val 3))
    (Oram.Recursive_path_oram.read o ~key:3)

(* {2 Remote parity}: the deferred-eviction fast path speaks
   [Scatter_put] over the real wire; a remote run must agree with the
   local run on results, client-side digests and round-trip ledger. *)

let test_remote_scatter_parity () =
  let run server =
    let rng = Crypto.Rng.create 17 in
    let o =
      Oram.Recursive_path_oram.setup ~name:"rp-rec" ~cache_levels:2
        { capacity = 64; payload_len = 8; fanout = 8; top_cutoff = 4 }
        server (cipher ()) (Crypto.Rng.int rng)
    in
    for i = 0 to 15 do
      Oram.Recursive_path_oram.write o ~key:i (enc_val (i * 5))
    done;
    let reads = List.init 16 (fun i -> Oram.Recursive_path_oram.read o ~key:i) in
    Oram.Recursive_path_oram.flush o;
    let tr = Servsim.Server.trace server in
    let c = Servsim.Cost.snapshot (Servsim.Server.cost server) in
    (reads, Servsim.Trace.full_digest tr, c.Servsim.Cost.round_trips)
  in
  let local = run (Servsim.Server.create ()) in
  let fd, pid = Servsim.Remote_server.fork_server () in
  let conn = Servsim.Remote.connect_fd ~pid fd in
  let remote =
    Fun.protect
      ~finally:(fun () -> Servsim.Remote.close conn)
      (fun () -> run (Servsim.Server.create ~remote:conn ()))
  in
  let reads_l, full_l, trips_l = local and reads_r, full_r, trips_r = remote in
  Alcotest.(check (list (option string))) "same values" reads_l reads_r;
  Alcotest.(check int64) "same digest" full_l full_r;
  Alcotest.(check int) "same round trips" trips_l trips_r

let suite =
  List.map QCheck_alcotest.to_alcotest
    (List.concat_map
       (fun v -> List.map (qcheck_data_independence v) [ 0; 2; 8 ])
       [ Path; Recursive; Linear ])
  @ [
      Alcotest.test_case "golden path digests (cache off)" `Quick test_golden_path;
      Alcotest.test_case "golden recursive digests (cache off)" `Quick test_golden_recursive;
      Alcotest.test_case "golden linear digests (cache off)" `Quick test_golden_linear;
      Alcotest.test_case "path model, cache=2" `Quick (test_path_model_cached 2);
      Alcotest.test_case "path model, cache=99 (clamped)" `Quick (test_path_model_cached 99);
      Alcotest.test_case "recursive model, cache=2" `Quick (test_recursive_model_cached 2);
      Alcotest.test_case "recursive model, cache=99 (clamped)" `Quick
        (test_recursive_model_cached 99);
      Alcotest.test_case "linear ignores the flag" `Quick test_linear_flag_ignored;
      Alcotest.test_case "discover Or-ORAM cache-invariant" `Quick
        (test_discover_cache_invariant Core.Protocol.Or_oram);
      Alcotest.test_case "discover Ex-ORAM cache-invariant" `Quick
        (test_discover_cache_invariant Core.Protocol.Ex_oram);
      Alcotest.test_case "discover Sort cache-invariant" `Quick
        (test_discover_cache_invariant Core.Protocol.Sort);
      Alcotest.test_case "dynamic stream cache-invariant" `Quick test_dynamic_cache_invariant;
      Alcotest.test_case "path ledger includes cache" `Quick test_path_ledger;
      Alcotest.test_case "recursive ledger syncs and clears" `Quick test_recursive_ledger;
      Alcotest.test_case "path flush writes the cached prefix" `Quick test_path_flush_events;
      Alcotest.test_case "flush is a no-op uncached" `Quick test_path_flush_noop_uncached;
      Alcotest.test_case "recursive flush is one frame" `Quick test_recursive_flush_one_frame;
      Alcotest.test_case "remote Scatter_put parity" `Quick test_remote_scatter_parity;
    ]
