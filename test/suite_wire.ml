(* Wire protocol v6: property tests for the codec (including the batch,
   session and dynamic-update frames), malformed-prefix hardening, the
   version handshake, and remote-vs-local equivalence of a PathORAM
   workload — same trace shape, same server digests, and a round-trip
   ledger that matches the actual number of wire frames. *)

open Relation

let with_remote f =
  let fd, pid = Servsim.Remote_server.fork_server () in
  let conn = Servsim.Remote.connect_fd ~pid fd in
  Fun.protect ~finally:(fun () -> Servsim.Remote.close conn) (fun () -> f conn)

(* Codec tests leave half-written frames in [oc]'s buffer; closing the
   write end while the read end is still open (and SIGPIPE ignored below)
   keeps the implicit flush from killing the process. *)
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let with_pipe f =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w and ic = Unix.in_channel_of_descr r in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () -> f ic oc)

(* {2 Codec property tests} *)

let roundtrip_request req =
  with_pipe (fun ic oc ->
      Servsim.Wire.write_request oc req;
      Servsim.Wire.read_request ic = req)

let roundtrip_response resp =
  with_pipe (fun ic oc ->
      Servsim.Wire.write_response oc resp;
      Servsim.Wire.read_response ic = resp)

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Servsim.Wire.Create_store s) (string_size (0 -- 30));
        map (fun s -> Servsim.Wire.Drop_store s) (string_size (0 -- 30));
        map2 (fun s n -> Servsim.Wire.Ensure (s, n)) (string_size (0 -- 20)) (int_bound 100000);
        map2 (fun s i -> Servsim.Wire.Get (s, i)) (string_size (0 -- 20)) (int_bound 100000);
        map3
          (fun s i v -> Servsim.Wire.Put (s, i, v))
          (string_size (0 -- 20))
          (int_bound 100000) (string_size (0 -- 200));
        map2
          (fun s idxs -> Servsim.Wire.Multi_get (s, idxs))
          (string_size (0 -- 20))
          (list_size (0 -- 40) (int_bound 100000));
        map2
          (fun s items -> Servsim.Wire.Multi_put (s, items))
          (string_size (0 -- 20))
          (list_size (0 -- 40) (pair (int_bound 100000) (string_size (0 -- 50))));
        map
          (fun groups -> Servsim.Wire.Scatter_put groups)
          (list_size (0 -- 6)
             (pair
                (string_size (0 -- 20))
                (list_size (0 -- 10) (pair (int_bound 100000) (string_size (0 -- 50))))));
        map (fun ns -> Servsim.Wire.Hello ns) (string_size (0 -- 40));
        return Servsim.Wire.Ping;
        return Servsim.Wire.Stats;
        (* Dynamic verbs (v5): [Begin_dynamic] rows must all carry
           exactly [cols] cells, so generate the arity first. *)
        (int_range 1 6 >>= fun cols ->
         map3
           (fun seed caps rows ->
             let capacity, max_lhs = caps in
             Servsim.Wire.Begin_dynamic
               { seed = Int64.of_int seed; capacity; max_lhs; cols; rows })
           (int_bound 1000000)
           (pair (int_bound 4096) (int_bound 8))
           (list_size (0 -- 10) (list_repeat cols (string_size (0 -- 12)))));
        map
          (fun cells -> Servsim.Wire.Insert_row cells)
          (list_size (0 -- Servsim.Wire.max_row_cells) (string_size (0 -- 12)));
        map (fun id -> Servsim.Wire.Delete_row id) (int_bound 1000000);
        return Servsim.Wire.Revalidate;
        return Servsim.Wire.Digest;
        return Servsim.Wire.Total_bytes;
      ])

let stats_gen =
  QCheck.Gen.(
    map2
      (fun (((uptime, sessions, frames), (bytes_in, bytes_out), (p50, p95, p99)),
            (reads, writes, (wakeups, rounds)))
           ((inserts, deletes), (revalidates, dyn_sessions)) ->
        Servsim.Wire.Stats_reply
          {
            uptime_us = Int64.of_int uptime;
            sessions;
            frames;
            bytes_in;
            bytes_out;
            p50_us = p50;
            p95_us = p95;
            p99_us = p99;
            loop_reads = reads;
            loop_writes = writes;
            loop_wakeups = wakeups;
            loop_rounds = rounds;
            inserts;
            deletes;
            revalidates;
            dyn_sessions;
          })
      (pair
         (triple
            (triple (int_bound 1000000000) (int_bound 1000) (int_bound 1000000))
            (pair (int_bound 1000000) (int_bound 1000000))
            (triple (int_bound 100000) (int_bound 100000) (int_bound 100000)))
         (triple (int_bound 10000000) (int_bound 10000000)
            (pair (int_bound 10000000) (int_bound 10000000))))
      (pair
         (pair (int_bound 1000000) (int_bound 1000000))
         (pair (int_bound 1000000) (int_bound 1000))))

let fds_reply_gen =
  QCheck.Gen.(
    map3
      (fun fds (full, shape) events ->
        Servsim.Wire.Fds_reply
          {
            fds =
              List.map
                (fun ((lhs, rhs), valid) ->
                  { Servsim.Wire.fd_lhs = Int64.of_int lhs; fd_rhs = rhs; fd_valid = valid })
                fds;
            dyn_full = Int64.of_int full;
            dyn_shape = Int64.of_int shape;
            dyn_events = events;
          })
      (list_size (0 -- 12) (pair (pair (int_bound 0xFFFF) (int_bound 61)) bool))
      (pair int int) (int_bound 1000000))

let response_gen =
  QCheck.Gen.(
    oneof
      [
        return Servsim.Wire.Ok;
        map (fun v -> Servsim.Wire.Value v) (string_size (0 -- 200));
        map (fun vs -> Servsim.Wire.Values vs) (list_size (0 -- 40) (string_size (0 -- 60)));
        map3
          (fun a b c ->
            Servsim.Wire.Digests { full = Int64.of_int a; shape = Int64.of_int b; count = c })
          int int (int_bound 1000000);
        map (fun n -> Servsim.Wire.Bytes_total n) (int_bound 1000000);
        return Servsim.Wire.Pong;
        stats_gen;
        map (fun id -> Servsim.Wire.Row_id id) (int_bound 1000000);
        fds_reply_gen;
        map (fun m -> Servsim.Wire.Error m) (string_size (0 -- 50));
      ])

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"wire v6 request roundtrip" ~count:300 (QCheck.make request_gen)
    roundtrip_request

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"wire v5 response roundtrip" ~count:300 (QCheck.make response_gen)
    roundtrip_response

(* {2 Malformed / hostile prefixes} *)

let raises_protocol_error f =
  match f () with
  | _ -> false
  | exception Servsim.Wire.Protocol_error _ -> true

let put_u32_raw oc v =
  for k = 0 to 3 do
    output_char oc (Char.chr ((v lsr (k * 8)) land 0xff))
  done

let test_huge_string_prefix () =
  (* A Create_store whose length prefix claims more than the frame cap
     must fail with Protocol_error, not feed really_input_string a
     near-4GiB allocation. *)
  with_pipe (fun ic oc ->
      output_char oc '\001';
      put_u32_raw oc 0xFFFFFFFF;
      flush oc;
      Alcotest.(check bool) "oversized string prefix rejected" true
        (raises_protocol_error (fun () -> Servsim.Wire.read_request ic)))

let test_huge_list_prefix () =
  with_pipe (fun ic oc ->
      output_char oc '\009';
      (* store name "s" *)
      put_u32_raw oc 1;
      output_char oc 's';
      (* batch count beyond the cap *)
      put_u32_raw oc (Servsim.Wire.max_list_len + 1);
      flush oc;
      Alcotest.(check bool) "oversized batch count rejected" true
        (raises_protocol_error (fun () -> Servsim.Wire.read_request ic)))

let test_put_u32_range () =
  with_pipe (fun _ic oc ->
      Alcotest.(check bool) "negative int rejected" true
        (raises_protocol_error (fun () ->
             Servsim.Wire.write_request oc (Servsim.Wire.Get ("s", -1))));
      Alcotest.(check bool) "int above 32 bits rejected" true
        (raises_protocol_error (fun () ->
             Servsim.Wire.write_request oc (Servsim.Wire.Ensure ("s", 1 lsl 40)))))

let test_bad_tag () =
  with_pipe (fun ic oc ->
      output_char oc '\042';
      flush oc;
      Alcotest.(check bool) "bad request tag rejected" true
        (raises_protocol_error (fun () -> Servsim.Wire.read_request ic)))

let test_oversized_namespace () =
  let long = String.make (Servsim.Wire.max_namespace_len + 1) 'n' in
  (* Separate pipes: the rejected write leaves a half-written frame (the
     tag byte) buffered in [oc], which would corrupt a later read. *)
  with_pipe (fun _ic oc ->
      Alcotest.(check bool) "oversized namespace rejected on write" true
        (raises_protocol_error (fun () ->
             Servsim.Wire.write_request oc (Servsim.Wire.Hello long))));
  (* And a hostile peer sending one on the wire is rejected on read. *)
  with_pipe (fun ic oc ->
      output_char oc '\011';
      put_u32_raw oc (String.length long);
      output_string oc long;
      flush oc;
      Alcotest.(check bool) "oversized namespace rejected on read" true
        (raises_protocol_error (fun () -> Servsim.Wire.read_request ic)))

let test_oversized_row () =
  (* Writer side: a row claiming more cells than the cap never leaves
     the client... *)
  let big = List.init (Servsim.Wire.max_row_cells + 1) (fun _ -> "c") in
  with_pipe (fun _ic oc ->
      Alcotest.(check bool) "oversized Insert_row rejected on write" true
        (raises_protocol_error (fun () ->
             Servsim.Wire.write_request oc (Servsim.Wire.Insert_row big))));
  (* ...and a hostile peer claiming one on the wire is rejected before
     any cell is read. *)
  with_pipe (fun ic oc ->
      output_char oc '\015';
      put_u32_raw oc (Servsim.Wire.max_row_cells + 1);
      flush oc;
      Alcotest.(check bool) "oversized row count rejected on read" true
        (raises_protocol_error (fun () -> Servsim.Wire.read_request ic)))

let test_begin_dynamic_arity_mismatch () =
  let begin_dyn rows =
    Servsim.Wire.Begin_dynamic { seed = 7L; capacity = 0; max_lhs = 0; cols = 2; rows }
  in
  (* Writer side: a row that disagrees with the declared arity. *)
  with_pipe (fun _ic oc ->
      Alcotest.(check bool) "arity mismatch rejected on write" true
        (raises_protocol_error (fun () ->
             Servsim.Wire.write_request oc (begin_dyn [ [ "a"; "b" ]; [ "only" ] ]))));
  (* Declared arity outside 1..max_row_cells. *)
  with_pipe (fun _ic oc ->
      Alcotest.(check bool) "zero arity rejected on write" true
        (raises_protocol_error (fun () ->
             Servsim.Wire.write_request oc
               (Servsim.Wire.Begin_dynamic
                  { seed = 7L; capacity = 0; max_lhs = 0; cols = 0; rows = [] }))));
  (* Reader side: hand-craft a frame whose second row is one cell short. *)
  with_pipe (fun ic oc ->
      output_char oc '\014';
      for _ = 1 to 8 do output_char oc '\000' done; (* seed *)
      put_u32_raw oc 0; (* capacity *)
      put_u32_raw oc 0; (* max_lhs *)
      put_u32_raw oc 2; (* cols *)
      put_u32_raw oc 2; (* row count *)
      (* row 0: 2 cells *)
      put_u32_raw oc 2;
      put_u32_raw oc 1; output_char oc 'a';
      put_u32_raw oc 1; output_char oc 'b';
      (* row 1: claims 1 cell *)
      put_u32_raw oc 1;
      put_u32_raw oc 1; output_char oc 'c';
      flush oc;
      Alcotest.(check bool) "arity mismatch rejected on read" true
        (raises_protocol_error (fun () -> Servsim.Wire.read_request ic)))

(* {2 Version handshake} *)

let test_hello_roundtrip () =
  with_pipe (fun ic oc ->
      Servsim.Wire.write_hello oc;
      Alcotest.(check int) "hello carries current version" Servsim.Wire.protocol_version
        (Servsim.Wire.read_hello ic))

let test_client_rejects_version_mismatch () =
  (* Fake server endpoint: pre-buffer a wrong version byte in the peer's
     direction, then connect — the handshake must fail loudly. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let oc_b = Unix.out_channel_of_descr b in
  output_char oc_b '\001';
  flush oc_b;
  Alcotest.(check bool) "mismatched server version rejected" true
    (raises_protocol_error (fun () -> Servsim.Remote.connect_fd a));
  close_out_noerr oc_b;
  (try Unix.close a with Unix.Unix_error _ -> ())

let test_server_rejects_version_mismatch () =
  (* A stale client against a new server: the server answers with its own
     version byte (so the client can diagnose) and hangs up instead of
     misreading the stream as requests. *)
  let fd, pid = Servsim.Remote_server.fork_server () in
  let oc = Unix.out_channel_of_descr fd and ic = Unix.in_channel_of_descr fd in
  output_char oc '\077';
  flush oc;
  Alcotest.(check int) "server announces its version" Servsim.Wire.protocol_version
    (Servsim.Wire.read_hello ic);
  Alcotest.(check bool) "server hangs up after mismatch" true
    (match input_char ic with
    | _ -> false
    | exception End_of_file -> true);
  close_out_noerr oc;
  ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

(* {2 Batch frames end-to-end} *)

let test_multi_roundtrip_server () =
  with_remote (fun conn ->
      ignore (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
      ignore (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", 8)));
      Servsim.Remote.multi_put conn ~store:"s" [ (0, "a"); (3, "bb"); (7, "ccc") ];
      Alcotest.(check (list string)) "multi_get returns in index order" [ "ccc"; "a"; "bb"; "" ]
        (Servsim.Remote.multi_get conn ~store:"s" [ 7; 0; 3; 5 ]);
      (* All-or-nothing: one bad index fails the whole batch... *)
      Alcotest.(check bool) "multi_put out of bounds rejected" true
        (raises_protocol_error (fun () ->
             Servsim.Remote.multi_put conn ~store:"s" [ (1, "x"); (99, "y") ]));
      (* ...and leaves the valid slots untouched. *)
      Alcotest.(check (list string)) "no partial application" [ "" ]
        (Servsim.Remote.multi_get conn ~store:"s" [ 1 ]);
      match Servsim.Remote.call conn Servsim.Wire.Total_bytes with
      | Servsim.Wire.Bytes_total n -> Alcotest.(check int) "server bytes" 6 n
      | _ -> Alcotest.fail "total")

(* {2 Remote vs local equivalence + honest round-trip ledger} *)

let oram_workload server =
  let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
  let rng = Crypto.Rng.create 11 in
  let o =
    Oram.Path_oram.setup ~name:"o" { capacity = 32; key_len = 8; payload_len = 8 } server cipher
      (Crypto.Rng.int rng)
  in
  for i = 0 to 15 do
    Oram.Path_oram.write o ~key:(Codec.encode_int i) (Codec.encode_int (i * 7))
  done;
  for i = 0 to 15 do
    ignore (Oram.Path_oram.read o ~key:(Codec.encode_int i))
  done;
  o

let test_remote_local_equivalence () =
  let digest_of server =
    let trace = Servsim.Server.trace server in
    ( Servsim.Trace.full_digest trace,
      Servsim.Trace.shape_digest trace,
      Servsim.Trace.count trace,
      Servsim.Cost.snapshot (Servsim.Server.cost server) )
  in
  (* Local run. *)
  let local_server = Servsim.Server.create () in
  ignore (oram_workload local_server);
  let lf, ls, lc, lcost = digest_of local_server in
  (* Remote run, same seeds. *)
  with_remote (fun conn ->
      let server = Servsim.Server.create ~remote:conn () in
      ignore (oram_workload server);
      let rf, rs, rc, rcost = digest_of server in
      Alcotest.(check int64) "identical full trace digest" lf rf;
      Alcotest.(check int64) "identical trace shape" ls rs;
      Alcotest.(check int) "identical trace count" lc rc;
      Alcotest.(check int) "identical round-trip ledger" lcost.Servsim.Cost.round_trips
        rcost.Servsim.Cost.round_trips;
      Alcotest.(check int) "no client-memory underflows" 0
        rcost.Servsim.Cost.client_underflows;
      (* The adversary's own recording agrees with the client's mirror. *)
      Alcotest.(check bool) "server digests match client mirror" true
        (Servsim.Remote.digests conn ~full:rf ~shape:rs ~count:rc))

let test_frames_match_ledger () =
  with_remote (fun conn ->
      let server = Servsim.Server.create ~remote:conn () in
      let cipher = Crypto.Cell_cipher.create (String.make 16 'K') in
      let rng = Crypto.Rng.create 3 in
      let trips () =
        (Servsim.Cost.snapshot (Servsim.Server.cost server)).Servsim.Cost.round_trips
      in
      let f0 = Servsim.Remote.frames conn and t0 = trips () in
      let o =
        Oram.Path_oram.setup ~name:"o" { capacity = 16; key_len = 8; payload_len = 8 } server
          cipher (Crypto.Rng.int rng)
      in
      let f1 = Servsim.Remote.frames conn and t1 = trips () in
      (* Setup = Create_store + Ensure + one Multi_put of every slot. *)
      Alcotest.(check int) "setup wire frames" 3 (f1 - f0);
      Alcotest.(check int) "setup ledger matches frames" (f1 - f0) (t1 - t0);
      Oram.Path_oram.write o ~key:(Codec.encode_int 1) (Codec.encode_int 42);
      let f2 = Servsim.Remote.frames conn and t2 = trips () in
      (* One logical access = one Multi_get + one Multi_put, nothing else. *)
      Alcotest.(check int) "access is exactly 2 wire frames" 2 (f2 - f1);
      Alcotest.(check int) "access ledger matches frames" (f2 - f1) (t2 - t1);
      ignore (Oram.Path_oram.read o ~key:(Codec.encode_int 1));
      let f3 = Servsim.Remote.frames conn and t3 = trips () in
      Alcotest.(check int) "read access is exactly 2 wire frames" 2 (f3 - f2);
      Alcotest.(check int) "read ledger matches frames" (f3 - f2) (t3 - t2))

(* {2 Cost underflow counter} *)

(* Pinned FNV-1a digest vectors, computed independently (64-bit FNV-1a
   over the documented event serialisation: store bytes, then op tag,
   addr, len as 8 little-endian bytes each; addr excluded from the shape).
   Guards the digest encoding itself: the unboxed two-half fold must stay
   bit-compatible with plain 64-bit FNV-1a, and [record_name] with
   [record], or historical cross-run comparisons silently break. *)
let test_trace_digest_pinned () =
  let run record_via =
    let t = Servsim.Trace.create () in
    let ev store op addr len = record_via t store op addr len in
    ev "db-1" Servsim.Trace.Read 0 48;
    ev "db-1" Servsim.Trace.Write 3 48;
    ev "sort-2" Servsim.Trace.Read 7 33;
    Servsim.Trace.mark t "phase";
    ev "sort-2" Servsim.Trace.Write 123456789 64;
    (Servsim.Trace.full_digest t, Servsim.Trace.shape_digest t, Servsim.Trace.count t)
  in
  let check_pins label (full, shape, count) =
    Alcotest.(check int64) (label ^ " full") 0xca7865772a5e97cdL full;
    Alcotest.(check int64) (label ^ " shape") 0xfe3271136782973dL shape;
    Alcotest.(check int) (label ^ " count") 4 count
  in
  check_pins "record"
    (run (fun t store op addr len ->
         Servsim.Trace.record t { Servsim.Trace.store; op; addr; len }));
  check_pins "record_name"
    (run (fun t store op addr len ->
         Servsim.Trace.record_name t (Servsim.Trace.name store) op ~addr ~len))

let qcheck_trace_record_name_equiv =
  let event_gen =
    QCheck.Gen.(
      quad (oneofl [ "db"; "s-1"; "a much longer store name" ])
        (oneofl [ Servsim.Trace.Read; Servsim.Trace.Write ])
        (int_bound 1_000_000) (int_bound 4096))
  in
  QCheck.Test.make ~name:"record_name digests equal record digests" ~count:100
    (QCheck.make QCheck.Gen.(list_size (1 -- 40) event_gen))
    (fun events ->
      let a = Servsim.Trace.create () in
      List.iter
        (fun (store, op, addr, len) ->
          Servsim.Trace.record a { Servsim.Trace.store; op; addr; len })
        events;
      let b = Servsim.Trace.create () in
      let names = Hashtbl.create 4 in
      List.iter
        (fun (store, op, addr, len) ->
          let nm =
            match Hashtbl.find_opt names store with
            | Some nm -> nm
            | None ->
                let nm = Servsim.Trace.name store in
                Hashtbl.add names store nm;
                nm
          in
          Servsim.Trace.record_name b nm op ~addr ~len)
        events;
      Int64.equal (Servsim.Trace.full_digest a) (Servsim.Trace.full_digest b)
      && Int64.equal (Servsim.Trace.shape_digest a) (Servsim.Trace.shape_digest b))

let test_cost_underflow_counter () =
  let c = Servsim.Cost.create () in
  Servsim.Cost.client_alloc c 10;
  Servsim.Cost.client_free c 4;
  Alcotest.(check int) "no underflow on balanced free" 0
    (Servsim.Cost.snapshot c).Servsim.Cost.client_underflows;
  Servsim.Cost.client_free c 10;
  let s = Servsim.Cost.snapshot c in
  Alcotest.(check int) "over-free detected" 1 s.Servsim.Cost.client_underflows;
  Alcotest.(check int) "ledger still clamped at zero" 0 s.Servsim.Cost.client_current_bytes

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    Alcotest.test_case "huge string prefix" `Quick test_huge_string_prefix;
    Alcotest.test_case "huge list prefix" `Quick test_huge_list_prefix;
    Alcotest.test_case "put_u32 range check" `Quick test_put_u32_range;
    Alcotest.test_case "bad tag" `Quick test_bad_tag;
    Alcotest.test_case "oversized namespace" `Quick test_oversized_namespace;
    Alcotest.test_case "oversized dynamic row" `Quick test_oversized_row;
    Alcotest.test_case "Begin_dynamic arity mismatch" `Quick test_begin_dynamic_arity_mismatch;
    Alcotest.test_case "hello roundtrip" `Quick test_hello_roundtrip;
    Alcotest.test_case "client rejects version mismatch" `Quick
      test_client_rejects_version_mismatch;
    Alcotest.test_case "server rejects version mismatch" `Quick
      test_server_rejects_version_mismatch;
    Alcotest.test_case "multi get/put end-to-end" `Quick test_multi_roundtrip_server;
    Alcotest.test_case "remote-local equivalence" `Quick test_remote_local_equivalence;
    Alcotest.test_case "frames match ledger" `Quick test_frames_match_ledger;
    Alcotest.test_case "cost underflow counter" `Quick test_cost_underflow_counter;
    Alcotest.test_case "trace digests pinned" `Quick test_trace_digest_pinned;
    QCheck_alcotest.to_alcotest qcheck_trace_record_name_equiv;
  ]
