let () =
  (* If this process is a re-exec'd remote-server child, serve and exit. *)
  Servsim.Remote_server.maybe_serve_child ();
  (* Link the dynamic-FD engine into the handler, as the daemon does. *)
  Dynserve.install ();
  Alcotest.run "sfdd"
    [
      ("crypto", Suite_crypto.suite);
      ("relation", Suite_relation.suite);
      ("fdbase", Suite_fdbase.suite);
      ("oram", Suite_oram.suite);
      ("oram-cache", Suite_oram_cache.suite);
      ("osort", Suite_osort.suite);
      ("datasets", Suite_datasets.suite);
      ("stats", Suite_stats.suite);
      ("core-methods", Suite_core_methods.suite);
      ("core-oblivious", Suite_core_oblivious.suite);
      ("core-dynamic", Suite_core_dynamic.suite);
      ("baseline", Suite_baseline.suite);
      ("recursive-oram", Suite_recursive_oram.suite);
      ("approx", Suite_approx.suite);
      ("remote", Suite_remote.suite);
      ("wire", Suite_wire.suite);
      ("omap", Suite_omap.suite);
      ("fastfds", Suite_fastfds.suite);
      ("lm-oram", Suite_lm_oram.suite);
      ("failure", Suite_failure.suite);
      ("bucket-sort", Suite_bucket_sort.suite);
      ("edge", Suite_edge.suite);
      ("service", Suite_service.suite);
      ("store", Suite_store.suite);
      ("lint", Suite_lint.suite);
    ]
