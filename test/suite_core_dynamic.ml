(* Dynamic maintenance (§V): Ex-ORAM cardinalities and FD re-validation
   must track a shadow plaintext table through arbitrary insert/delete
   sequences. *)

open Relation
open Core

let v x = Value.Int x

let small_table () =
  let schema = Schema.make [| "A"; "B"; "C" |] in
  Table.make schema
    [|
      [| v 1; v 10; v 100 |];
      [| v 1; v 10; v 200 |];
      [| v 2; v 20; v 100 |];
      [| v 3; v 20; v 200 |];
    |]

let test_start_matches_tane () =
  let t = small_table () in
  let d = Dynamic.start ~capacity:32 t in
  let pp_fds fds = String.concat ";" (List.map (Format.asprintf "%a" Fdbase.Fd.pp) fds) in
  Alcotest.(check string) "initial FDs" (pp_fds (Fdbase.Tane.fds t)) (pp_fds (Dynamic.fds d));
  Alcotest.(check int) "live" 4 (Dynamic.live_records d);
  Dynamic.release d

let test_insert_updates_cardinalities () =
  let t = small_table () in
  let d = Dynamic.start ~capacity:32 t in
  let card x = Option.get (Dynamic.cardinality d (Attrset.of_list x)) in
  Alcotest.(check int) "|π_A| before" 3 (card [ 0 ]);
  ignore (Dynamic.insert d [| v 9; v 10; v 100 |]);
  Alcotest.(check int) "|π_A| after" 4 (card [ 0 ]);
  Alcotest.(check int) "|π_B| unchanged" 2 (card [ 1 ]);
  (* AB pairs now {(1,10), (2,20), (3,20), (9,10)}. *)
  Alcotest.(check int) "|π_AB| after" 4 (card [ 0; 1 ]);
  Alcotest.(check int) "live" 5 (Dynamic.live_records d);
  Dynamic.release d

let test_insert_breaks_fd () =
  (* A → B holds initially; inserting (1, 99, _) breaks it. *)
  let t = small_table () in
  let d = Dynamic.start ~capacity:32 t in
  let fd_ab = { Fdbase.Fd.lhs = Attrset.singleton 0; rhs = 1 } in
  let status fd l = List.assoc fd (List.map (fun (f, b) -> (f, b)) l) in
  let before = Dynamic.revalidate d in
  Alcotest.(check bool) "A→B holds initially" true (status fd_ab before);
  ignore (Dynamic.insert d [| v 1; v 99; v 1 |]);
  let after = Dynamic.revalidate d in
  Alcotest.(check bool) "A→B broken by insert" false (status fd_ab after);
  Dynamic.release d

let test_delete_restores_fd () =
  let t = small_table () in
  let d = Dynamic.start ~capacity:32 t in
  let fd_ab = { Fdbase.Fd.lhs = Attrset.singleton 0; rhs = 1 } in
  let id = Dynamic.insert d [| v 1; v 99; v 1 |] in
  Alcotest.(check bool) "broken" false (List.assoc fd_ab (Dynamic.revalidate d));
  Dynamic.delete d ~id;
  Alcotest.(check bool) "restored" true (List.assoc fd_ab (Dynamic.revalidate d));
  Alcotest.(check int) "live back to 4" 4 (Dynamic.live_records d);
  Dynamic.release d

let test_delete_updates_cardinality () =
  let t = small_table () in
  let d = Dynamic.start ~capacity:32 t in
  let card x = Option.get (Dynamic.cardinality d (Attrset.of_list x)) in
  (* Delete row 3 (A=3): |π_A| drops from 3 to 2. *)
  Dynamic.delete d ~id:3;
  Alcotest.(check int) "|π_A|" 2 (card [ 0 ]);
  (* Delete row 0 (A=1 shared with row 1): |π_A| stays 2. *)
  Dynamic.delete d ~id:0;
  Alcotest.(check int) "|π_A| shared value" 2 (card [ 0 ]);
  Alcotest.(check int) "live" 2 (Dynamic.live_records d);
  Dynamic.release d

let test_delete_absent_id_noop () =
  let t = small_table () in
  let d = Dynamic.start ~capacity:32 t in
  Dynamic.delete d ~id:77;
  Alcotest.(check int) "live unchanged" 4 (Dynamic.live_records d);
  let card x = Option.get (Dynamic.cardinality d (Attrset.of_list x)) in
  Alcotest.(check int) "|π_A| unchanged" 3 (card [ 0 ]);
  Dynamic.release d

let shadow_check d table =
  (* Compare every retained cardinality against the shadow table. *)
  let m = Table.cols table in
  for a = 0 to m - 1 do
    let x = Attrset.singleton a in
    match Dynamic.cardinality d x with
    | None -> ()
    | Some c ->
        let expect = Fdbase.Partition.cardinality (Fdbase.Partition.of_table table x) in
        Alcotest.(check int) (Format.asprintf "|π_%a|" Attrset.pp x) expect c
  done

let test_random_update_sequence_vs_shadow () =
  let rng = Crypto.Rng.create 77 in
  let t = Datasets.Rnd.generate_with_domain ~seed:50 ~rows:12 ~cols:3 ~domain:3 () in
  let d = Dynamic.start ~capacity:128 t in
  let shadow = ref t in
  let ids = ref (List.init 12 Fun.id) in
  (* Map our ids to shadow row positions. *)
  let id_list () = !ids in
  for _step = 1 to 40 do
    if Crypto.Rng.bool rng || List.length (id_list ()) = 0 then begin
      let row = Array.init 3 (fun _ -> v (1 + Crypto.Rng.int rng 3)) in
      let id = Dynamic.insert d row in
      shadow := Table.append_row !shadow row;
      ids := !ids @ [ id ]
    end
    else begin
      let pos = Crypto.Rng.int rng (List.length (id_list ())) in
      let id = List.nth !ids pos in
      Dynamic.delete d ~id;
      shadow := Table.remove_row !shadow pos;
      ids := List.filteri (fun i _ -> i <> pos) !ids
    end
  done;
  Alcotest.(check int) "live matches shadow" (Table.rows !shadow) (Dynamic.live_records d);
  shadow_check d !shadow;
  (* Re-validated FD statuses must match direct validation on the shadow. *)
  List.iter
    (fun (fd, ok) ->
      Alcotest.(check bool)
        (Format.asprintf "%a" Fdbase.Fd.pp fd)
        (Fdbase.Validator.holds_fd !shadow fd)
        ok)
    (Dynamic.revalidate d);
  Dynamic.release d

let test_label_reuse_after_churn () =
  (* Regression: when the last record of a key is deleted the key's
     label is retired; a later fresh key must not be given a label a
     live key still holds.  (Allocating labels from [card] — the static
     formulation — collides here: C=200 dies freeing nothing reusable,
     C=3 arrives and got C=1's label, conflating AC pairs (2,1)/(2,3).) *)
  let t = small_table () in
  let d = Dynamic.start ~capacity:64 t in
  let card x = Option.get (Dynamic.cardinality d (Attrset.of_list x)) in
  Dynamic.delete d ~id:3;
  ignore (Dynamic.insert d [| v 2; v 3; v 1 |]);
  ignore (Dynamic.insert d [| v 3; v 1; v 1 |]);
  Dynamic.delete d ~id:2;
  Dynamic.delete d ~id:1;
  ignore (Dynamic.insert d [| v 2; v 1; v 3 |]);
  (* Live rows: (1,10,100) (2,3,1) (3,1,1) (2,1,3) — every pair
     projection is 4 distinct values. *)
  Alcotest.(check int) "|π_AB|" 4 (card [ 0; 1 ]);
  Alcotest.(check int) "|π_AC|" 4 (card [ 0; 2 ]);
  Alcotest.(check int) "|π_BC|" 4 (card [ 1; 2 ]);
  Dynamic.release d

(* {2 §V obliviousness: deleting a dead record looks like deleting a
   live one}

   Algorithm 5 performs the same number and kind of ORAM accesses
   whether the ID is present, already deleted, or never existed — the
   absent branch substitutes dummy accesses one-for-one.  ORAM paths are
   (seeded-)random, so the assertion is on the {e shape} digest (op
   kinds, stores, lengths — the repo's standard for ORAM-based methods),
   which must not depend on liveness; the event count pins the
   one-for-one substitution. *)
let shape_after f =
  let d = Dynamic.start ~seed:123 ~capacity:32 (small_table ()) in
  f d;
  let tr = Session.trace (Dynamic.session d) in
  let r = (Servsim.Trace.shape_digest tr, Servsim.Trace.count tr) in
  Dynamic.release d;
  r

let test_delete_dead_vs_live_trace () =
  (* Never-inserted ID vs a live one... *)
  let live_s, live_n = shape_after (fun d -> Dynamic.delete d ~id:0) in
  let dead_s, dead_n = shape_after (fun d -> Dynamic.delete d ~id:77) in
  Alcotest.(check int) "absent id: same access count" live_n dead_n;
  Alcotest.(check int64) "absent id: same trace shape" live_s dead_s;
  (* ...and an already-deleted ID vs a live one, after an identical
     prefix (both sessions delete id 0 first). *)
  let live_s, live_n =
    shape_after (fun d ->
        Dynamic.delete d ~id:0;
        Dynamic.delete d ~id:1)
  in
  let dead_s, dead_n =
    shape_after (fun d ->
        Dynamic.delete d ~id:0;
        Dynamic.delete d ~id:0)
  in
  Alcotest.(check int) "re-deleted id: same access count" live_n dead_n;
  Alcotest.(check int64) "re-deleted id: same trace shape" live_s dead_s

(* {2 QCheck: random update sequences ≡ fresh Ex-ORAM discovery}

   Any insert/delete sequence, applied through the maintained lattice,
   must agree with a from-scratch Ex-ORAM discovery over the resulting
   table: an initial FD revalidates as valid exactly when the fresh
   run's (minimal) FD set implies it.  The same sequence run twice with
   the same seed must also be bit-identical — trace digests included —
   which is the determinism the service layer's journal replay and the
   per-tenant digest parity checks stand on. *)
let ops_gen =
  QCheck.Gen.(
    pair (int_bound 10000)
      (list_size (2 -- 10) (pair bool (triple (int_bound 2) (int_bound 2) (int_bound 2)))))

let apply_ops ~seed ops =
  let t = small_table () in
  let d = Dynamic.start ~seed ~capacity:64 t in
  let shadow = ref t and ids = ref (List.init 4 Fun.id) in
  List.iter
    (fun (ins, (a, b, c)) ->
      if ins || !ids = [] then begin
        let row = [| v (a + 1); v (b + 1); v (c + 1) |] in
        let id = Dynamic.insert d row in
        shadow := Table.append_row !shadow row;
        ids := !ids @ [ id ]
      end
      else begin
        let pos = (a * 7 + (b * 3) + c) mod List.length !ids in
        Dynamic.delete d ~id:(List.nth !ids pos);
        shadow := Table.remove_row !shadow pos;
        ids := List.filteri (fun i _ -> i <> pos) !ids
      end)
    ops;
  let reval = Dynamic.revalidate d in
  let tr = Session.trace (Dynamic.session d) in
  let digests =
    (Servsim.Trace.full_digest tr, Servsim.Trace.shape_digest tr, Servsim.Trace.count tr)
  in
  Dynamic.release d;
  (!shadow, reval, digests)

let qcheck_dynamic_vs_fresh_discovery =
  QCheck.Test.make ~name:"random updates = fresh Ex-ORAM discovery, deterministic digests"
    ~count:6 (QCheck.make ops_gen)
    (fun (seed, ops) ->
      let shadow, reval, digests = apply_ops ~seed ops in
      let shadow2, reval2, digests2 = apply_ops ~seed ops in
      if not (Table.equal shadow shadow2 && reval = reval2 && digests = digests2) then
        QCheck.Test.fail_report "two identical runs diverged";
      if Table.rows shadow = 0 then true
      else begin
        let fresh = Dynamic.start ~seed:(seed + 1) ~capacity:64 shadow in
        let fresh_fds = Dynamic.fds fresh in
        Dynamic.release fresh;
        let m = Table.cols shadow in
        List.for_all
          (fun (fd, valid) ->
            valid
            = Fdbase.Fd.implies ~m fresh_fds ~lhs:fd.Fdbase.Fd.lhs
                ~rhs:(Attrset.singleton fd.Fdbase.Fd.rhs))
          reval
      end)

let test_reinsert_same_id_space () =
  (* Values equal to deleted ones must be re-countable. *)
  let schema = Schema.make [| "A" |] in
  let t = Table.make schema [| [| v 5 |]; [| v 6 |] |] in
  let d = Dynamic.start ~capacity:16 t in
  let card () = Option.get (Dynamic.cardinality d (Attrset.singleton 0)) in
  Alcotest.(check int) "2 distinct" 2 (card ());
  Dynamic.delete d ~id:0;
  Alcotest.(check int) "1 distinct" 1 (card ());
  ignore (Dynamic.insert d [| v 5 |]);
  Alcotest.(check int) "back to 2" 2 (card ());
  ignore (Dynamic.insert d [| v 5 |]);
  Alcotest.(check int) "duplicate adds nothing" 2 (card ());
  Dynamic.release d

let test_capacity_enforced () =
  let schema = Schema.make [| "A" |] in
  let t = Table.make schema [| [| v 1 |] |] in
  let d = Dynamic.start ~capacity:16 t in
  Alcotest.(check bool) "overflow rejected" true
    (try
       for i = 0 to 20 do
         ignore (Dynamic.insert d [| v i |])
       done;
       false
     with Invalid_argument _ -> true);
  Dynamic.release d

let test_grow_small_table () =
  (* Start from a 4-row table with no FDs (so the whole 2-attribute
     lattice is materialised), then grow it. *)
  let schema = Schema.make [| "A"; "B" |] in
  let t =
    Table.make schema [| [| v 1; v 1 |]; [| v 1; v 2 |]; [| v 2; v 1 |]; [| v 2; v 2 |] |]
  in
  let d = Dynamic.start ~capacity:16 t in
  ignore (Dynamic.insert d [| v 3; v 1 |]);
  ignore (Dynamic.insert d [| v 3; v 2 |]);
  let card x = Option.get (Dynamic.cardinality d (Attrset.of_list x)) in
  Alcotest.(check int) "|π_A|" 3 (card [ 0 ]);
  Alcotest.(check int) "|π_B|" 2 (card [ 1 ]);
  Alcotest.(check int) "|π_AB|" 6 (card [ 0; 1 ]);
  Dynamic.release d

let test_non_lattice_set_not_tracked () =
  (* A degenerate table where every column is a key: the pair {A,B} is
     key-pruned at level 1 and hence not materialised — [cardinality]
     reports None rather than a stale number. *)
  let schema = Schema.make [| "A"; "B" |] in
  let t = Table.make schema [| [| v 1; v 9 |]; [| v 2; v 8 |] |] in
  let d = Dynamic.start ~capacity:16 t in
  Alcotest.(check (option int)) "AB not retained" None
    (Dynamic.cardinality d (Attrset.of_list [ 0; 1 ]));
  Alcotest.(check (option int)) "A retained" (Some 2)
    (Dynamic.cardinality d (Attrset.of_list [ 0 ]));
  Dynamic.release d

let suite =
  [
    Alcotest.test_case "start matches TANE" `Quick test_start_matches_tane;
    Alcotest.test_case "insert updates cardinalities" `Quick test_insert_updates_cardinalities;
    Alcotest.test_case "insert breaks FD" `Quick test_insert_breaks_fd;
    Alcotest.test_case "delete restores FD" `Quick test_delete_restores_fd;
    Alcotest.test_case "delete updates cardinality" `Quick test_delete_updates_cardinality;
    Alcotest.test_case "delete of absent id is a no-op" `Quick test_delete_absent_id_noop;
    Alcotest.test_case "random updates vs shadow table" `Slow test_random_update_sequence_vs_shadow;
    Alcotest.test_case "label reuse after churn" `Quick test_label_reuse_after_churn;
    Alcotest.test_case "delete of dead id is trace-indistinguishable" `Quick
      test_delete_dead_vs_live_trace;
    QCheck_alcotest.to_alcotest qcheck_dynamic_vs_fresh_discovery;
    Alcotest.test_case "reinsertion of deleted values" `Quick test_reinsert_same_id_space;
    Alcotest.test_case "capacity enforced" `Quick test_capacity_enforced;
    Alcotest.test_case "grow a small table" `Quick test_grow_small_table;
    Alcotest.test_case "pruned sets are not tracked" `Quick test_non_lattice_set_not_tracked;
  ]
