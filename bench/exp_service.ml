(* Service load harness: throughput and latency of the multi-tenant
   daemon under concurrent clients.

   The daemon and every load client run as separate OS processes so the
   measurement crosses real Unix-domain sockets and the daemon's select
   loop, not in-process function calls.  OCaml 5 forbids [Unix.fork]
   once domains have run, so children are [Unix.create_process] re-execs
   of this very benchmark binary with hidden argv modes
   ([service-daemon] / [service-client]) dispatched in [main] before
   normal argument parsing.

   Emits BENCH_service.json: ops/s and service-latency percentiles for
   each (worker domains x client count) point.  The speedup from the
   domains axis only shows on a multicore host; [host_cores] is recorded
   alongside so a flat sweep on a 1-core box reads as parity, not a
   regression (EXPERIMENTS.md). *)

let block = String.make 64 '\xAB'

(* {2 Child: daemon} *)

let daemon_main path domains =
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with unix_path = Some path; max_conns = 64; domains }
  in
  Service.Daemon.install_stop_signals daemon;
  Service.Daemon.run daemon;
  0

(* {2 Child: load client}

   Connects into its own namespace, performs [ops] Put/Get exchanges
   recording per-op wall-clock latency, asserts the server-side
   per-session ledger agrees with its own frame counter, and writes
   "<elapsed_s>\n<lat_us> <lat_us> ...\n" to [out]. *)

let client_main path namespace ops out =
  let open Servsim in
  (* The daemon may still be binding its socket: retry briefly. *)
  let rec connect tries =
    match Remote.connect_unix ~namespace path with
    | conn -> conn
    | exception (Unix.Unix_error _ | Wire.Protocol_error _) when tries > 0 ->
        Unix.sleepf 0.05;
        connect (tries - 1)
  in
  let conn = connect 100 in
  let expect_ok = function
    | Wire.Ok -> ()
    | r -> failwith (match r with Wire.Error e -> e | _ -> "unexpected response")
  in
  (* Tenant state persists across connections; start each round clean. *)
  expect_ok (Remote.call conn (Wire.Drop_store "bench"));
  expect_ok (Remote.call conn (Wire.Create_store "bench"));
  expect_ok (Remote.call conn (Wire.Ensure ("bench", 64)));
  let lats = Array.make ops 0. in
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    let u0 = Unix.gettimeofday () in
    (match Remote.call conn (if i land 1 = 0 then Wire.Put ("bench", i mod 64, block)
                             else Wire.Get ("bench", i mod 64)) with
    | Wire.Ok | Wire.Value _ -> ()
    | _ -> failwith "unexpected response");
    lats.(i) <- Unix.gettimeofday () -. u0
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Remote.stats conn in
  if stats.Wire.frames <> Remote.frames conn then
    failwith
      (Printf.sprintf "ledger mismatch: server %d, client %d" stats.Wire.frames
         (Remote.frames conn));
  Remote.close conn;
  let oc = open_out out in
  Printf.fprintf oc "%.6f\n" elapsed;
  Array.iter (fun l -> Printf.fprintf oc "%d " (int_of_float (l *. 1e6))) lats;
  output_char oc '\n';
  close_out oc;
  0

(* {2 Parent: orchestration} *)

let spawn args =
  Unix.create_process Sys.executable_name
    (Array.append [| Sys.executable_name |] args)
    Unix.stdin Unix.stdout Unix.stderr

let wait_exit pid what =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> failwith (Printf.sprintf "%s exited %d" what c)
  | Unix.WSIGNALED s -> failwith (Printf.sprintf "%s killed by signal %d" what s)
  | Unix.WSTOPPED _ -> failwith (what ^ " stopped")

let read_client_file file =
  let ic = open_in file in
  let elapsed = float_of_string (String.trim (input_line ic)) in
  let lats =
    input_line ic |> String.split_on_char ' '
    |> List.filter_map (fun s -> if s = "" then None else Some (float_of_string s))
  in
  close_in ic;
  (elapsed, lats)

let run_round ~path ~domains ~clients ~ops =
  let outs =
    List.init clients (fun i -> Filename.temp_file (Printf.sprintf "svc%d" i) ".lat")
  in
  (* One fresh namespace per (round, client): the server's cost ledger is
     per-tenant and outlives connections, and each client asserts it
     against its own per-connection frame counter — exact only on a
     tenant's first connection.  (Each domains point gets a fresh daemon
     process, so namespaces may repeat across the outer sweep.) *)
  let pids =
    List.mapi
      (fun i out ->
        spawn
          [|
            "service-client"; path;
            Printf.sprintf "d%02d-round%02d-tenant-%02d" domains clients i;
            string_of_int ops; out;
          |])
      outs
  in
  List.iteri (fun i pid -> wait_exit pid (Printf.sprintf "client %d" i)) pids;
  let per_client = List.map read_client_file outs in
  List.iter Sys.remove outs;
  let wall = List.fold_left (fun m (e, _) -> max m e) 0. per_client in
  let lats = List.concat_map snd per_client in
  let p50, p95, p99 = Service.Metrics.percentiles lats in
  let total_ops = clients * ops in
  (float_of_int total_ops /. wall, p50, p95, p99)

(* One daemon process per domains setting; the client sweep runs against
   it, then SIGTERM — the graceful drain across every worker domain is
   part of what the harness exercises. *)
let sweep_domain ~domains ~counts ~ops =
  let path = Filename.temp_file "fdserved-bench" ".sock" in
  Sys.remove path;
  let daemon_pid = spawn [| "service-daemon"; path; string_of_int domains |] in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then failwith "daemon did not come up"
      else begin
        Unix.sleepf 0.05;
        await (tries - 1)
      end
  in
  await 100;
  Fun.protect
    ~finally:(fun () ->
      Unix.kill daemon_pid Sys.sigterm;
      wait_exit daemon_pid "daemon")
    (fun () ->
      List.map
        (fun clients ->
          let ops_s, p50, p95, p99 = run_round ~path ~domains ~clients ~ops in
          Printf.printf
            "  %d domain(s) x %2d client(s) x %d ops: %8.0f ops/s   p50 %5.0f us   \
             p95 %5.0f us   p99 %5.0f us\n%!"
            domains clients ops ops_s p50 p95 p99;
          (domains, clients, ops_s, p50, p95, p99))
        counts)

let run (opts : Bench_util.opts) =
  Bench_util.header "SERVICE: multi-tenant daemon under concurrent load";
  let ops = if opts.smoke then 200 else 2000 in
  let counts = if opts.full then [ 1; 2; 4; 8; 16 ] else [ 1; 2; 8 ] in
  let domain_counts = if opts.full then [ 1; 2; 4 ] else [ 1; 2 ] in
  let series =
    List.concat_map (fun domains -> sweep_domain ~domains ~counts ~ops) domain_counts
  in
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"sfdd-bench-service/2\",\n\
    \  \"smoke\": %b,\n\
    \  \"transport\": \"unix-domain socket\",\n\
    \  \"host_cores\": %d,\n\
    \  \"ops_per_client\": %d,\n\
    \  \"series\": [\n"
    opts.smoke
    (Domain.recommended_domain_count ())
    ops;
  List.iteri
    (fun i (domains, clients, ops_s, p50, p95, p99) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"clients\": %d, \"ops_per_s\": %.0f, \"p50_us\": %.0f, \
         \"p95_us\": %.0f, \"p99_us\": %.0f }%s\n"
        domains clients ops_s p50 p95 p99
        (if i = List.length series - 1 then "" else ","))
    series;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  (written to BENCH_service.json)\n%!"
