(* Service load harness: throughput and latency of the multi-tenant
   daemon under concurrent clients, across readiness backends and client
   pipelining depths.

   The daemon and every load client run as separate OS processes so the
   measurement crosses real Unix-domain sockets and the daemon's event
   loop, not in-process function calls.  OCaml 5 forbids [Unix.fork]
   once domains have run, so children are [Unix.create_process] re-execs
   of this very benchmark binary with hidden argv modes
   ([service-daemon] / [service-client]) dispatched in [main] before
   normal argument parsing.

   Emits BENCH_service.json (schema v3): ops/s, service-latency
   percentiles and daemon-side syscalls-per-op for each (backend x
   client count x pipeline depth) point.  Syscalls-per-op comes from a
   probe connection reading the daemon's loop counters (read(2) +
   write(2) attempts) before and after each round — the direct measure
   of what response coalescing and client pipelining batch away.  The
   speedup from worker domains only shows on a multicore host;
   [host_cores] is recorded alongside so a flat sweep on a 1-core box
   reads as parity, not a regression (EXPERIMENTS.md). *)

let block = String.make 64 '\xAB'

(* {2 Child: daemon} *)

let daemon_main path domains backend =
  let backend =
    match Service.Evloop.of_string backend with
    | Ok b -> b
    | Error msg -> failwith msg
  in
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        max_conns = 64;
        domains;
        backend }
  in
  Service.Daemon.install_stop_signals daemon;
  Service.Daemon.run daemon;
  0

(* {2 Child: load client}

   Connects into its own namespace at the given pipelining depth,
   performs [ops] Put/Get exchanges keeping up to [depth] frames in
   flight (depth 1 degrades to the classic strict request/response
   loop), records per-op send-to-response latency, asserts the
   server-side per-session ledger agrees with its own frame counter, and
   writes "<elapsed_s>\n<lat_us> <lat_us> ...\n" to [out]. *)

let client_main path namespace ops depth out =
  let open Servsim in
  (* The daemon may still be binding its socket: retry briefly. *)
  let rec connect tries =
    match Remote.connect_unix ~namespace ~depth path with
    | conn -> conn
    | exception (Unix.Unix_error _ | Wire.Protocol_error _) when tries > 0 ->
        Unix.sleepf 0.05;
        connect (tries - 1)
  in
  let conn = connect 100 in
  let expect_ok = function
    | Wire.Ok -> ()
    | r -> failwith (match r with Wire.Error e -> e | _ -> "unexpected response")
  in
  (* Tenant state persists across connections; start each round clean. *)
  expect_ok (Remote.call conn (Wire.Drop_store "bench"));
  expect_ok (Remote.call conn (Wire.Create_store "bench"));
  expect_ok (Remote.call conn (Wire.Ensure ("bench", 64)));
  let req i =
    if i land 1 = 0 then Wire.Put ("bench", i mod 64, block) else Wire.Get ("bench", i mod 64)
  in
  let lats = Array.make ops 0. in
  let sent_at = Array.make ops 0. in
  let t0 = Unix.gettimeofday () in
  let sent = ref 0 and recvd = ref 0 in
  while !recvd < ops do
    while !sent < ops && !sent - !recvd < depth do
      sent_at.(!sent) <- Unix.gettimeofday ();
      Remote.send conn (req !sent);
      incr sent
    done;
    (match Remote.recv conn with
    | Wire.Ok | Wire.Value _ -> ()
    | Wire.Error e -> failwith e
    | _ -> failwith "unexpected response");
    lats.(!recvd) <- Unix.gettimeofday () -. sent_at.(!recvd);
    incr recvd
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Remote.stats conn in
  if stats.Wire.frames <> Remote.frames conn then
    failwith
      (Printf.sprintf "ledger mismatch: server %d, client %d" stats.Wire.frames
         (Remote.frames conn));
  Remote.close conn;
  let oc = open_out out in
  Printf.fprintf oc "%.6f\n" elapsed;
  Array.iter (fun l -> Printf.fprintf oc "%d " (int_of_float (l *. 1e6))) lats;
  output_char oc '\n';
  close_out oc;
  0

(* {2 Parent: orchestration} *)

let spawn args =
  Unix.create_process Sys.executable_name
    (Array.append [| Sys.executable_name |] args)
    Unix.stdin Unix.stdout Unix.stderr

let wait_exit pid what =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> failwith (Printf.sprintf "%s exited %d" what c)
  | Unix.WSIGNALED s -> failwith (Printf.sprintf "%s killed by signal %d" what s)
  | Unix.WSTOPPED _ -> failwith (what ^ " stopped")

let read_client_file file =
  let ic = open_in file in
  let elapsed = float_of_string (String.trim (input_line ic)) in
  let lats =
    input_line ic |> String.split_on_char ' '
    |> List.filter_map (fun s -> if s = "" then None else Some (float_of_string s))
  in
  close_in ic;
  (elapsed, lats)

(* Daemon-side read(2)+write(2) attempts, via the loop counters a Stats
   reply carries.  The probe's own two Stats exchanges cost a handful of
   syscalls; against thousands of measured ops that noise is below the
   reporting precision. *)
let loop_syscalls probe =
  let s = Servsim.Remote.stats probe in
  s.Servsim.Wire.loop_reads + s.Servsim.Wire.loop_writes

let run_round ~path ~probe ~backend ~clients ~depth ~ops =
  let outs =
    List.init clients (fun i -> Filename.temp_file (Printf.sprintf "svc%d" i) ".lat")
  in
  let sys0 = loop_syscalls probe in
  (* One fresh namespace per (round, client): the server's cost ledger is
     per-tenant and outlives connections, and each client asserts it
     against its own per-connection frame counter — exact only on a
     tenant's first connection.  (Each backend point gets a fresh daemon
     process, so namespaces may repeat across the outer sweep.) *)
  let pids =
    List.mapi
      (fun i out ->
        spawn
          [|
            "service-client"; path;
            Printf.sprintf "%s-c%02d-d%02d-tenant-%02d" backend clients depth i;
            string_of_int ops; string_of_int depth; out;
          |])
      outs
  in
  List.iteri (fun i pid -> wait_exit pid (Printf.sprintf "client %d" i)) pids;
  let sys1 = loop_syscalls probe in
  let per_client = List.map read_client_file outs in
  List.iter Sys.remove outs;
  let wall = List.fold_left (fun m (e, _) -> max m e) 0. per_client in
  let lats = List.concat_map snd per_client in
  let p50, p95, p99 = Service.Metrics.percentiles lats in
  let total_ops = clients * ops in
  let syscalls_per_op = float_of_int (sys1 - sys0) /. float_of_int total_ops in
  (float_of_int total_ops /. wall, p50, p95, p99, syscalls_per_op)

(* One daemon process per backend; the clients x depth sweep runs
   against it, then SIGTERM — the graceful drain on every backend is
   part of what the harness exercises.  The domains axis stays at 1
   here: the backend/pipelining comparison is a single-core story, and
   the loop counters of one worker are then the whole daemon's. *)
let sweep_backend ~backend ~counts ~depths ~ops =
  let path = Filename.temp_file "fdserved-bench" ".sock" in
  Sys.remove path;
  let daemon_pid = spawn [| "service-daemon"; path; "1"; backend |] in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then failwith "daemon did not come up"
      else begin
        Unix.sleepf 0.05;
        await (tries - 1)
      end
  in
  await 100;
  Fun.protect
    ~finally:(fun () ->
      Unix.kill daemon_pid Sys.sigterm;
      wait_exit daemon_pid "daemon")
    (fun () ->
      let probe = Servsim.Remote.connect_unix ~namespace:"probe" path in
      Fun.protect
        ~finally:(fun () -> Servsim.Remote.close probe)
        (fun () ->
          List.concat_map
            (fun clients ->
              List.map
                (fun depth ->
                  let ops_s, p50, p95, p99, spo =
                    run_round ~path ~probe ~backend ~clients ~depth ~ops
                  in
                  Printf.printf
                    "  %-6s x %2d client(s) x depth %2d x %d ops: %8.0f ops/s   \
                     p50 %5.0f us   p99 %5.0f us   %5.2f syscalls/op\n%!"
                    backend clients depth ops ops_s p50 p99 spo;
                  (backend, clients, depth, ops_s, p50, p95, p99, spo))
                depths)
            counts))

let run (opts : Bench_util.opts) =
  Bench_util.header "SERVICE: multi-tenant daemon under concurrent load";
  let ops = if opts.smoke then 200 else 2000 in
  let counts = if opts.full then [ 1; 2; 4; 8; 16 ] else if opts.smoke then [ 1; 2 ] else [ 1; 4; 16 ] in
  let depths = [ 1; 8 ] in
  let backends = List.map Service.Evloop.to_string (Service.Evloop.available ()) in
  let series =
    List.concat_map (fun backend -> sweep_backend ~backend ~counts ~depths ~ops) backends
  in
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"sfdd-bench-service/3\",\n\
    \  \"smoke\": %b,\n\
    \  \"transport\": \"unix-domain socket\",\n\
    \  \"host_cores\": %d,\n\
    \  \"domains\": 1,\n\
    \  \"ops_per_client\": %d,\n\
    \  \"series\": [\n"
    opts.smoke
    (Domain.recommended_domain_count ())
    ops;
  List.iteri
    (fun i (backend, clients, depth, ops_s, p50, p95, p99, spo) ->
      Printf.fprintf oc
        "    { \"backend\": \"%s\", \"clients\": %d, \"pipeline_depth\": %d, \
         \"ops_per_s\": %.0f, \"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, \
         \"syscalls_per_op\": %.3f }%s\n"
        backend clients depth ops_s p50 p95 p99 spo
        (if i = List.length series - 1 then "" else ","))
    series;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  (written to BENCH_service.json)\n%!"
