(* Shared helpers for the experiment harness.

   Every experiment prints the rows/series of the corresponding paper
   table or figure.  Default sizes are scaled down from the paper's
   (their testbed is two 16-core machines; ours is a single-process
   simulation doing real AES for every block) — pass --full for larger
   sweeps.  Shapes, not absolute numbers, are the reproduction target;
   see EXPERIMENTS.md. *)

type opts = {
  full : bool; (* larger sweeps *)
  smoke : bool; (* tiny sizes: exercise every harness path in seconds *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let time_unit f = snd (time f)

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let subheader t = Printf.printf "\n--- %s ---\n%!" t

let pow2 k = 1 lsl k

let pretty_bytes b =
  if b >= 10 * 1024 * 1024 then Printf.sprintf "%.1f MB" (float_of_int b /. 1048576.0)
  else if b >= 10 * 1024 then Printf.sprintf "%.1f KB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%d B" b

let pretty_time s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1000.0)
  else Printf.sprintf "%.1f us" (s *. 1e6)

(* The three real-world stand-ins at a given sample size, plus RND. *)
let sampled_dataset ~rng ~rows = function
  | `Adult ->
      Relation.Table.sample_rows
        (Datasets.Adult_like.generate ~rows:(2 * rows) ())
        (Crypto.Rng.int rng) rows
  | `Letter ->
      Relation.Table.sample_rows
        (Datasets.Letter_like.generate ~rows:(2 * rows) ())
        (Crypto.Rng.int rng) rows
  | `Flight ->
      Relation.Table.sample_rows
        (Datasets.Flight_like.generate ~rows:(2 * rows) ())
        (Crypto.Rng.int rng) rows
  | `Rnd -> Datasets.Rnd.generate ~seed:(Crypto.Rng.int rng 100000) ~rows ~cols:10 ()

let dataset_name = function
  | `Adult -> "Adult"
  | `Letter -> "Letter"
  | `Flight -> "Flight"
  | `Rnd -> "RND"

let all_methods = [ Core.Protocol.Or_oram; Core.Protocol.Ex_oram; Core.Protocol.Sort ]
