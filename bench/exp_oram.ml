(* ORAM client fast path: variant x capacity x cache_levels sweep.

   For each configuration this harness drives a fixed write/read mix and
   reports, per access: blocks touched (trace events), bytes moved (both
   directions), wall-clock ns, round trips, and the modeled network time
   at WAN latency (the same rtt/gbps model as
   [Core.Protocol.modeled_network_seconds]) — plus the client-side bytes
   the treetop cache costs.  Everything is written to BENCH_oram.json so
   the perf trajectory of the cache is tracked across PRs.

   Two properties are asserted, not just reported, so `--smoke` on every
   `dune runtest` catches regressions:

   - the offset-view block codec keeps the decode side allocation-free:
     the only per-block allocation of a path access is the outgoing
     ciphertext freeze, bounded here at 24 minor words/block (the old
     String.sub/encode codec cost several times that);

   - treetop caching pays: at cache_levels = 2 the recursive variant at
     capacity 128 must move >= 30% fewer bytes per access than the same
     workload with the cache off. *)

let cipher = lazy (Crypto.Cell_cipher.create (String.make 16 'K'))

type row = {
  variant : string;
  capacity : int;
  cache_levels : int; (* requested; trees clamp internally *)
  path_levels : int; (* data-tree levels+1, or store slots for linear *)
  accesses : int;
  blocks_per_access : float;
  bytes_per_access : float;
  ns_per_access : float;
  round_trips_per_access : float;
  modeled_network_s_per_access : float;
  client_bytes : int;
  minor_words_per_access : float;
}

(* The modeled WAN: same defaults as Core.Protocol.modeled_network_seconds. *)
let modeled ~trips ~bytes =
  (trips *. 2e-4) +. (bytes *. 8.0 /. 1e9)

let measure ~variant ~capacity ~cache_levels ~path_levels ~accesses ~client_bytes f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let ev, bytes, trips = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let n = float_of_int accesses in
  {
    variant;
    capacity;
    cache_levels;
    path_levels;
    accesses;
    blocks_per_access = float_of_int ev /. n;
    bytes_per_access = float_of_int bytes /. n;
    ns_per_access = dt *. 1e9 /. n;
    round_trips_per_access = float_of_int trips /. n;
    modeled_network_s_per_access =
      modeled ~trips:(float_of_int trips /. n) ~bytes:(float_of_int bytes /. n);
    client_bytes;
    minor_words_per_access = words /. n;
  }

(* Run [accesses] operations (2/3 writes, 1/3 reads over a uniform key
   mix), counting only the steady-state traffic: setup is excluded. *)
let deltas server f =
  let tr = Servsim.Server.trace server in
  let cost = Servsim.Server.cost server in
  let ev0 = Servsim.Trace.count tr in
  let c0 = Servsim.Cost.snapshot cost in
  f ();
  let c1 = Servsim.Cost.snapshot cost in
  ( Servsim.Trace.count tr - ev0,
    c1.Servsim.Cost.bytes_to_server - c0.Servsim.Cost.bytes_to_server
    + c1.Servsim.Cost.bytes_to_client - c0.Servsim.Cost.bytes_to_client,
    c1.Servsim.Cost.round_trips - c0.Servsim.Cost.round_trips )

let run_path ~capacity ~cache_levels ~accesses =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 7 in
  let o =
    Oram.Path_oram.setup ~name:"bench" ~cache_levels
      { capacity; key_len = 8; payload_len = 8 }
      server (Lazy.force cipher) (Crypto.Rng.int rng)
  in
  let key i = Relation.Codec.encode_int (i mod capacity) in
  (* Warm the tree (and the treetop cache) before measuring. *)
  for i = 0 to (capacity / 2) - 1 do
    Oram.Path_oram.write o ~key:(key i) (Relation.Codec.encode_int i)
  done;
  let row =
    measure ~variant:"path" ~capacity ~cache_levels
      ~path_levels:(Oram.Path_oram.levels o + 1)
      ~accesses
      ~client_bytes:(Oram.Path_oram.client_state_bytes o)
      (fun () ->
        deltas server (fun () ->
            for i = 0 to accesses - 1 do
              if i mod 3 = 2 then ignore (Oram.Path_oram.read o ~key:(key i))
              else Oram.Path_oram.write o ~key:(key i) (Relation.Codec.encode_int i)
            done))
  in
  assert (Oram.Path_oram.stash_overflows o = 0);
  row

let run_recursive ~capacity ~cache_levels ~accesses =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 7 in
  let o =
    Oram.Recursive_path_oram.setup ~name:"bench" ~cache_levels
      { capacity; payload_len = 8; fanout = 16; top_cutoff = 8 }
      server (Lazy.force cipher) (Crypto.Rng.int rng)
  in
  for i = 0 to (capacity / 2) - 1 do
    Oram.Recursive_path_oram.write o ~key:i (Relation.Codec.encode_int i)
  done;
  measure ~variant:"recursive" ~capacity ~cache_levels
    ~path_levels:(Oram.Recursive_path_oram.recursion_depth o)
    ~accesses
    ~client_bytes:(Oram.Recursive_path_oram.client_state_bytes o)
    (fun () ->
      deltas server (fun () ->
          for i = 0 to accesses - 1 do
            let k = i mod capacity in
            if i mod 3 = 2 then ignore (Oram.Recursive_path_oram.read o ~key:k)
            else Oram.Recursive_path_oram.write o ~key:k (Relation.Codec.encode_int i)
          done))

let run_linear ~capacity ~cache_levels ~accesses =
  let server = Servsim.Server.create () in
  let rng = Crypto.Rng.create 7 in
  let o =
    Oram.Linear_oram.setup ~name:"bench" ~cache_levels
      { capacity; key_len = 8; payload_len = 8 }
      server (Lazy.force cipher) (Crypto.Rng.int rng)
  in
  let key i = Relation.Codec.encode_int (i mod capacity) in
  for i = 0 to (capacity / 2) - 1 do
    Oram.Linear_oram.write o ~key:(key i) (Relation.Codec.encode_int i)
  done;
  measure ~variant:"linear" ~capacity ~cache_levels ~path_levels:capacity ~accesses
    ~client_bytes:(Oram.Linear_oram.client_state_bytes o)
    (fun () ->
      deltas server (fun () ->
          for i = 0 to accesses - 1 do
            if i mod 3 = 2 then ignore (Oram.Linear_oram.read o ~key:(key i))
            else Oram.Linear_oram.write o ~key:(key i) (Relation.Codec.encode_int i)
          done))

let print_row r =
  Printf.printf "  %-9s n=%-5d k=%-3d %6.1f blk/acc  %8.0f B/acc  %9.0f ns/acc  %5.2f rt/acc  %7.3f ms net  %s client\n%!"
    r.variant r.capacity r.cache_levels r.blocks_per_access r.bytes_per_access r.ns_per_access
    r.round_trips_per_access
    (r.modeled_network_s_per_access *. 1e3)
    (Bench_util.pretty_bytes r.client_bytes)

let json_row oc r ~last =
  Printf.fprintf oc
    "    {\"variant\": \"%s\", \"capacity\": %d, \"cache_levels\": %d, \"path_levels\": %d,\n\
    \     \"accesses\": %d, \"blocks_per_access\": %.3f, \"bytes_per_access\": %.1f,\n\
    \     \"ns_per_access\": %.1f, \"round_trips_per_access\": %.3f,\n\
    \     \"modeled_network_s_per_access\": %.6f, \"client_bytes\": %d,\n\
    \     \"minor_words_per_access\": %.1f}%s\n"
    r.variant r.capacity r.cache_levels r.path_levels r.accesses r.blocks_per_access
    r.bytes_per_access r.ns_per_access r.round_trips_per_access r.modeled_network_s_per_access
    r.client_bytes r.minor_words_per_access
    (if last then "" else ",")

let uncached rows r =
  List.find
    (fun u -> u.variant = r.variant && u.capacity = r.capacity && u.cache_levels = 0)
    rows

let run (opts : Bench_util.opts) =
  Bench_util.header "ORAM fast path: treetop cache sweep (variant x capacity x cache_levels)";
  let accesses = if opts.Bench_util.smoke then 120 else 1500 in
  let cache_sweep = [ 0; 2; 4; 99 (* clamped to the whole tree *) ] in
  let path_caps = if opts.Bench_util.full then [ 64; 256; 1024 ] else [ 64; 256 ] in
  let rec_caps = if opts.Bench_util.full then [ 128; 512; 2048 ] else [ 128 ] in
  let lin_caps = [ 32 ] in
  let rows =
    List.concat
      [
        List.concat_map
          (fun capacity ->
            List.map (fun k -> run_path ~capacity ~cache_levels:k ~accesses) cache_sweep)
          path_caps;
        List.concat_map
          (fun capacity ->
            List.map (fun k -> run_recursive ~capacity ~cache_levels:k ~accesses) cache_sweep)
          rec_caps;
        (* The linear scan ignores the flag; two points prove that. *)
        List.concat_map
          (fun capacity ->
            List.map
              (fun k -> run_linear ~capacity ~cache_levels:k ~accesses:(accesses / 4))
              [ 0; 2 ])
          lin_caps;
      ]
  in
  List.iter print_row rows;

  (* Allocation bars.  First the codec primitive itself: decrypting a
     block into the reused path buffer and reading its header fields
     must allocate nothing (the old codec paid a String.sub pair plus
     re-encoded strings per block). *)
  let decode_words =
    let c = Lazy.force cipher in
    let pt = String.make 17 'x' in
    let ct = Crypto.Cell_cipher.encrypt c pt in
    let buf = Bytes.create 32 in
    let iters = 10_000 in
    let sink = ref 0 in
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      let n = Crypto.Cell_cipher.decrypt_to c ct buf 0 in
      sink := !sink + n + Char.code (Bytes.get buf 0)
    done;
    ignore (Sys.opaque_identity !sink);
    (Gc.minor_words () -. w0) /. float_of_int iters
  in
  Printf.printf "\n  block decode: %.3f minor words/block (bar: < 1 — allocation-free)\n%!"
    decode_words;
  assert (decode_words < 1.0);
  (* Then the whole access pipeline (client codec + in-process server
     emulation + trace events), as a regression guard: the only real
     per-block client allocation left is the outgoing ciphertext
     freeze. *)
  let p = uncached rows { (List.hd rows) with variant = "path"; capacity = List.hd path_caps } in
  let words_per_block = p.minor_words_per_access /. p.blocks_per_access in
  Printf.printf "  path access pipeline: %.1f minor words/block (bar: < 40)\n%!" words_per_block;
  assert (words_per_block < 40.0);

  (* Perf bar: the recursive stack at k = 2 must beat its uncached self
     by >= 30% bytes/access (all position-map trees lose their top). *)
  let r2 =
    List.find
      (fun r -> r.variant = "recursive" && r.capacity = List.hd rec_caps && r.cache_levels = 2)
      rows
  in
  let r0 = uncached rows r2 in
  let reduction = 1.0 -. (r2.bytes_per_access /. r0.bytes_per_access) in
  Printf.printf "  recursive n=%d, k=2: %.1f%% fewer bytes/access than uncached (bar: >= 30%%)\n%!"
    r2.capacity (100.0 *. reduction);
  assert (reduction >= 0.30);

  let oc = open_out "BENCH_oram.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"sfdd-bench-oram/1\",\n\
    \  \"smoke\": %b,\n\
    \  \"workload\": \"2/3 writes, 1/3 reads, uniform keys, warm tree\",\n\
    \  \"recursive_bytes_reduction_at_k2\": %.3f,\n\
    \  \"path_codec_minor_words_per_block\": %.2f,\n\
    \  \"rows\": [\n"
    opts.Bench_util.smoke reduction words_per_block;
  List.iteri (fun i r -> json_row oc r ~last:(i = List.length rows - 1)) rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  (written to BENCH_oram.json)\n%!"
