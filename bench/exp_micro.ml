(* Bechamel micro-benchmarks: one Test.make per table/figure family,
   measuring the primitive that dominates that experiment. *)

open Bechamel
open Toolkit

let cell_cipher = Crypto.Cell_cipher.create (String.make 16 'K')

let cipher_of_fixture = Crypto.Cell_cipher.create (String.make 16 'M')

let oram_fixture =
  lazy
    (let server = Servsim.Server.create () in
     let rng = Crypto.Rng.create 3 in
     Oram.Path_oram.setup ~name:"micro"
       { capacity = 256; key_len = 8; payload_len = 8 }
       server cipher_of_fixture (Crypto.Rng.int rng))

let sort_fixture =
  lazy
    (let session = Core.Session.create ~n:256 ~m:1 () in
     Servsim.Trace.set_enabled (Core.Session.trace session) false;
     let b = Core.Sort_backend.encrypted session ~n:256 in
     for i = 0 to 255 do
       b.Core.Sort_backend.write i { Core.Sort_backend.key = Core.Sort_backend.L i; id = i }
     done;
     b)

let partition_fixture =
  lazy
    (let t = Datasets.Rnd.generate_with_domain ~seed:1 ~rows:1024 ~cols:2 ~domain:64 () in
     ( Fdbase.Partition.of_column (Relation.Table.column t 0),
       Fdbase.Partition.of_column (Relation.Table.column t 1) ))

let tests =
  [
    (* Table I is static; its cost driver is dataset generation. *)
    Test.make ~name:"table1/dataset-row-gen"
      (Staged.stage (fun () -> Datasets.Adult_like.generate ~rows:32 ()));
    (* Table II / semantic security: one cell encrypt+decrypt. *)
    Test.make ~name:"table2/cell-encrypt-decrypt"
      (Staged.stage (fun () ->
           Crypto.Cell_cipher.decrypt cell_cipher
             (Crypto.Cell_cipher.encrypt cell_cipher "0123456789abcdef01234567")));
    (* Table III / Fig. 4 ORAM curve: one PathORAM access at n = 256. *)
    Test.make ~name:"table3-fig4/path-oram-access"
      (Staged.stage (fun () ->
           let o = Lazy.force oram_fixture in
           Oram.Path_oram.write o ~key:(Relation.Codec.encode_int 7)
             (Relation.Codec.encode_int 7)));
    (* Fig. 4/6 Sort curve: one encrypted compare-exchange. *)
    Test.make ~name:"fig4-fig6/sort-compare-exchange"
      (Staged.stage (fun () ->
           let b = Lazy.force sort_fixture in
           let a = b.Core.Sort_backend.read 3 and c = b.Core.Sort_backend.read 200 in
           let lo, hi = if Core.Sort_backend.compare_by_key a c <= 0 then (a, c) else (c, a) in
           b.Core.Sort_backend.write 3 lo;
           b.Core.Sort_backend.write 200 hi));
    (* Fig. 5 storage accounting driver: partition product (plaintext). *)
    Test.make ~name:"fig5/partition-product"
      (Staged.stage (fun () ->
           let p1, p2 = Lazy.force partition_fixture in
           Fdbase.Partition.product p1 p2));
    (* Fig. 6(b): enclave-side comparator network execution, n = 256. *)
    Test.make ~name:"fig6b/enclave-sort-n256"
      (Staged.stage
         (let net = Osort.Network.bitonic 256 in
          fun () ->
            let b = Core.Sort_backend.enclave ~n:256 in
            for i = 0 to 255 do
              b.Core.Sort_backend.write i
                { Core.Sort_backend.key = Core.Sort_backend.L (255 - i); id = i }
            done;
            Osort.Driver.run net ~exchange:(fun ~up i j ->
                let x = b.Core.Sort_backend.read i and y = b.Core.Sort_backend.read j in
                let lo, hi =
                  if Core.Sort_backend.compare_by_key x y <= 0 then (x, y) else (y, x)
                in
                if up then begin
                  b.Core.Sort_backend.write i lo;
                  b.Core.Sort_backend.write j hi
                end
                else begin
                  b.Core.Sort_backend.write i hi;
                  b.Core.Sort_backend.write j lo
                end)));
    (* Fig. 7: one Ex-ORAM insert+delete pair. *)
    Test.make ~name:"fig7/ex-oram-insert-delete"
      (Staged.stage
         (let session = Core.Session.create ~n:256 ~m:1 () in
          let h =
            Core.Ex_oram_method.create session (Relation.Attrset.singleton 0) ~capacity:256
          in
          let i = ref 0 in
          fun () ->
            let id = !i mod 200 in
            incr i;
            Core.Ex_oram_method.insert_value h ~row:id (Relation.Value.Int id);
            Core.Ex_oram_method.delete h ~row:id));
  ]

(* Wire protocol v2: frames per PathORAM access over a real forked server
   process.  v1 sent one synchronous frame per block — 2·(levels+1)·Z of
   them per access; v2 batches the whole path into one Multi_get plus one
   Multi_put. *)
let remote_frames_report ~accesses () =
  let fd, pid = Servsim.Remote_server.fork_server () in
  let conn = Servsim.Remote.connect_fd ~pid fd in
  Fun.protect
    ~finally:(fun () -> Servsim.Remote.close conn)
    (fun () ->
      let server = Servsim.Server.create ~remote:conn () in
      let rng = Crypto.Rng.create 5 in
      let o =
        Oram.Path_oram.setup ~name:"rt"
          { capacity = 256; key_len = 8; payload_len = 8 }
          server cipher_of_fixture (Crypto.Rng.int rng)
      in
      let f0 = Servsim.Remote.frames conn in
      let t0 = Unix.gettimeofday () in
      for i = 0 to accesses - 1 do
        Oram.Path_oram.write o ~key:(Relation.Codec.encode_int i) (Relation.Codec.encode_int i)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let frames = Servsim.Remote.frames conn - f0 in
      let v1_frames = 2 * (Oram.Path_oram.levels o + 1) * 4 (* Z = 4 *) in
      Printf.printf
        "  remote PathORAM (n = 256): %.1f wire frames per access, %s/access\n\
        \  (protocol v1 sent %d frames per access — one per path block)\n%!"
        (float_of_int frames /. float_of_int accesses)
        (Bench_util.pretty_time (dt /. float_of_int accesses))
        v1_frames)

(* {2 Crypto fast path}

   Measured with a plain timing loop rather than Bechamel so the report
   can also include per-operation allocation (minor words), and emitted
   as machine-readable BENCH_crypto.json so the perf trajectory is
   tracked across PRs.  The acceptance bar for the T-table rewrite is
   >= 4x AES-128 block throughput over [Aes128.Reference]. *)

let measure ~iters f =
  f ();
  (* warm-up: table/page faults out of the timed region *)
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ( dt /. float_of_int iters,
    (Gc.minor_words () -. w0) /. float_of_int iters )

let mb_per_s ~bytes ns = float_of_int bytes /. (ns /. 1e9) /. 1048576.0

let crypto_report (opts : Bench_util.opts) =
  (* Smoke mode shrinks every loop ~200x: same code paths, seconds total. *)
  let it n = if opts.Bench_util.smoke then max 100 (n / 200) else n in
  let raw_key = String.init 16 (fun i -> Char.chr (i * 11 land 0xff)) in
  let src = Bytes.init 16 (fun i -> Char.chr (i * 7 land 0xff)) in
  let dst = Bytes.create 16 in
  (* AES block: T-table fast path vs byte-wise reference. *)
  let k = Crypto.Aes128.expand raw_key in
  let tt_ns, tt_words =
    let f () = Crypto.Aes128.encrypt_block k ~src ~src_off:0 ~dst ~dst_off:0 in
    let s, w = measure ~iters:(it 2_000_000) f in
    (s *. 1e9, w)
  in
  let kr = Crypto.Aes128.Reference.expand raw_key in
  let ref_ns =
    let f () = Crypto.Aes128.Reference.encrypt_block kr ~src ~src_off:0 ~dst ~dst_off:0 in
    let s, _ = measure ~iters:(it 100_000) f in
    s *. 1e9
  in
  let speedup = ref_ns /. tt_ns in
  (* CBC$ cell: encrypt+decrypt of one 24-byte cell (a Sort element /
     typical attribute value after encoding). *)
  let cell = Crypto.Cell_cipher.create raw_key in
  let cell_pt = String.init 24 (fun i -> Char.chr (i * 5 land 0xff)) in
  let cell_ns, cell_words =
    let f () = ignore (Crypto.Cell_cipher.decrypt cell (Crypto.Cell_cipher.encrypt cell cell_pt)) in
    let s, w = measure ~iters:(it 200_000) f in
    (s *. 1e9, w)
  in
  (* Bulk path: one PathORAM path at n = 256 is Z*(L+1) = 36 cells of 48
     ciphertext bytes; encrypt_many + decrypt_many of the whole batch. *)
  let path_cells = 36 in
  let path_pt_len = 17 in
  (* 1 + 8 + 8, the ORAM block layout at key_len = payload_len = 8 *)
  let path_pts = List.init path_cells (fun i -> String.make path_pt_len (Char.chr (i land 0xff))) in
  let path_ns =
    let f () =
      ignore (Crypto.Cell_cipher.decrypt_many cell (Crypto.Cell_cipher.encrypt_many cell path_pts))
    in
    let s, _ = measure ~iters:(it 20_000) f in
    s *. 1e9
  in
  let path_ct_bytes = path_cells * Crypto.Cell_cipher.ciphertext_len ~plaintext_len:path_pt_len in
  Printf.printf "  %-42s %10.1f ns/block  %8.1f MB/s  %5.1f minor words/op\n"
    "aes128-block/t-table" tt_ns (mb_per_s ~bytes:16 tt_ns) tt_words;
  Printf.printf "  %-42s %10.1f ns/block  %8.1f MB/s\n" "aes128-block/reference" ref_ns
    (mb_per_s ~bytes:16 ref_ns);
  Printf.printf "  %-42s %10.2fx\n" "t-table speedup vs reference" speedup;
  Printf.printf "  %-42s %10.1f ns/cell   %8.1f MB/s  %5.1f minor words/op\n"
    "cbc-cell/encrypt+decrypt (24 B)" cell_ns
    (mb_per_s ~bytes:(2 * Crypto.Cell_cipher.ciphertext_len ~plaintext_len:24) cell_ns)
    cell_words;
  Printf.printf "  %-42s %10.1f ns/cell   %8.1f MB/s\n"
    (Printf.sprintf "bulk-path/%d-cell enc+dec" path_cells)
    (path_ns /. float_of_int path_cells)
    (mb_per_s ~bytes:(2 * path_ct_bytes) path_ns);
  (* Machine-readable trajectory record (overwritten on every run). *)
  let oc = open_out "BENCH_crypto.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"sfdd-bench-crypto/1\",\n\
    \  \"smoke\": %b,\n\
    \  \"aes_block\": {\n\
    \    \"ttable_ns_per_block\": %.2f,\n\
    \    \"ttable_mb_per_s\": %.2f,\n\
    \    \"ttable_minor_words_per_block\": %.3f,\n\
    \    \"reference_ns_per_block\": %.2f,\n\
    \    \"reference_mb_per_s\": %.2f,\n\
    \    \"speedup_vs_reference\": %.2f\n\
    \  },\n\
    \  \"cbc_cell\": {\n\
    \    \"plaintext_bytes\": 24,\n\
    \    \"encrypt_decrypt_ns_per_cell\": %.2f,\n\
    \    \"mb_per_s\": %.2f,\n\
    \    \"minor_words_per_op\": %.3f\n\
    \  },\n\
    \  \"bulk_path\": {\n\
    \    \"cells\": %d,\n\
    \    \"plaintext_bytes_per_cell\": %d,\n\
    \    \"encrypt_decrypt_ns_per_cell\": %.2f,\n\
    \    \"mb_per_s\": %.2f\n\
    \  }\n\
     }\n"
    opts.Bench_util.smoke tt_ns (mb_per_s ~bytes:16 tt_ns) tt_words ref_ns
    (mb_per_s ~bytes:16 ref_ns)
    speedup cell_ns
    (mb_per_s ~bytes:(2 * Crypto.Cell_cipher.ciphertext_len ~plaintext_len:24) cell_ns)
    cell_words path_cells path_pt_len
    (path_ns /. float_of_int path_cells)
    (mb_per_s ~bytes:(2 * path_ct_bytes) path_ns);
  close_out oc;
  Printf.printf "  (written to BENCH_crypto.json)\n%!"

let run (opts : Bench_util.opts) =
  Bench_util.header "Crypto fast path (T-table AES + allocation-free cells)";
  crypto_report opts;
  Bench_util.header "Bechamel micro-benchmarks (ns per run, OLS fit)";
  let quota = if opts.Bench_util.smoke then 0.05 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"sfdd" tests) in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) ols [] in
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with Some [ e ] -> e | Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "  %-42s %14s\n" name (Bench_util.pretty_time (est /. 1e9)))
    (List.sort compare rows);
  Bench_util.header "Wire protocol v2: batched path I/O";
  remote_frames_report ~accesses:(if opts.Bench_util.smoke then 8 else 64) ();
  Printf.printf "%!"
