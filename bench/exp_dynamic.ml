(* Streaming dynamic-FD load harness: many tenants drive interleaved
   Insert_row / Delete_row / Revalidate streams against one daemon, the
   inserts pipelined up to the connection's depth.  Halfway through the
   run the daemon is stopped and restarted on the same --data-dir, so
   the second half exercises rehydration of every dynamic session from
   its persisted update history.

   Every tenant's stream is deterministic (seeded), so after the drain
   the harness replays the identical operation sequence through
   [Core.Dynamic] directly and requires the wire run's final FD
   statuses AND trace digests to match bit-for-bit — the service path
   must be indistinguishable from a one-shot library run, restart
   included.

   A separate microbenchmark times one full [Dynamic.start] discovery
   against the average incremental insert/delete, the §V motivation for
   maintaining the lattice online instead of re-running Algorithm 1.

   Emits BENCH_dynamic.json: updates/s across the fleet, revalidate
   latency percentiles, parity verdict, and the incremental-vs-rerun
   speedup. *)

open Relation

let cols = 3
let domain = 16

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let with_daemon ~data_dir f =
  let path = Filename.temp_file "dyn-bench" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        max_conns = 32;
        domains = 1;
        data_dir = Some data_dir }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then failwith "dynamic bench daemon did not come up"
      else begin
        Unix.sleepf 0.02;
        await (tries - 1)
      end
  in
  await 200;
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () -> f path)

(* One operation of a tenant's stream.  [Del] carries a raw draw that
   both runners reduce mod the current live count, so the choice of
   victim is a pure function of the stream position. *)
type op = Ins of int array | Del of int | Reval

let gen_ops ~seed ~count =
  let rng = Crypto.Rng.create seed in
  List.init count (fun _ ->
      let r = Crypto.Rng.int rng 10 in
      if r < 6 then Ins (Array.init cols (fun _ -> 1 + Crypto.Rng.int rng domain))
      else if r < 9 then Del (Crypto.Rng.int rng 0x3FFFFFFF)
      else Reval)

let value_row a = Array.map (fun i -> Value.Int i) a
let wire_row a = Dynserve.encode_row (value_row a)

let table_wire_rows table =
  List.init (Table.rows table) (fun r -> Dynserve.encode_row (Table.row table r))

(* Deterministic victim selection shared by both runners. *)
let pick_victim ids k =
  match ids with
  | [] -> None
  | live ->
      let i = k mod List.length live in
      Some (i, List.nth live i)

let drop_nth i l = List.filteri (fun j _ -> j <> i) l

(* The one-shot library run of the same stream: final revalidate plus
   the engine trace digests, in the exact shape [Wire.Fds_reply]
   carries them. *)
let library_final ~seed ~capacity ~table ops =
  let d = Core.Dynamic.start ~seed ~capacity table in
  let ids = ref (List.init (Table.rows table) Fun.id) in
  List.iter
    (fun op ->
      match op with
      | Ins a -> ids := !ids @ [ Core.Dynamic.insert d (value_row a) ]
      | Del k -> (
          match pick_victim !ids k with
          | None -> ()
          | Some (i, id) ->
              Core.Dynamic.delete d ~id;
              ids := drop_nth i !ids)
      | Reval -> ignore (Core.Dynamic.revalidate d))
    ops;
  let reval = Core.Dynamic.revalidate d in
  let tr = Core.Session.trace (Core.Dynamic.session d) in
  let fds =
    List.map
      (fun (fd, ok) -> (Int64.of_int (Attrset.to_int fd.Fdbase.Fd.lhs), fd.Fdbase.Fd.rhs, ok))
      reval
  in
  let digests =
    (Servsim.Trace.full_digest tr, Servsim.Trace.shape_digest tr, Servsim.Trace.count tr)
  in
  Core.Dynamic.release d;
  (fds, digests)

type tenant = {
  ns : string;
  seed : int;
  capacity : int;
  table : Table.t;
  ops : op list; (* the full stream, for the parity replay *)
  mutable pending : op list;
  mutable ids : int list;
  mutable conn : Servsim.Remote.t option;
  mutable begun : bool;
  mutable updates : int; (* inserts + deletes actually issued *)
  mutable reval_lats : float list;
}

let connect ~depth path t =
  let conn = Servsim.Remote.connect_unix ~namespace:t.ns ~depth path in
  t.conn <- Some conn;
  if not t.begun then begin
    ignore
      (Servsim.Remote.begin_dynamic conn ~capacity:t.capacity ~seed:(Int64.of_int t.seed)
         ~cols (table_wire_rows t.table));
    t.begun <- true
  end

let close_all ts =
  Array.iter
    (fun t ->
      match t.conn with
      | Some c ->
          Servsim.Remote.close c;
          t.conn <- None
      | None -> ())
    ts

(* Serve up to [budget] ops of [t]'s pending stream.  Runs of
   consecutive inserts go out as one pipelined burst. *)
let step t budget =
  let conn = Option.get t.conn in
  let rec go budget =
    if budget > 0 then
      match t.pending with
      | [] -> ()
      | Ins _ :: _ ->
          let rec take acc k ops =
            match ops with
            | Ins a :: tl when k > 0 -> take (a :: acc) (k - 1) tl
            | _ -> (List.rev acc, ops)
          in
          let rows, rest = take [] budget t.pending in
          t.pending <- rest;
          let ids = Servsim.Remote.insert_rows conn (List.map wire_row rows) in
          t.ids <- t.ids @ ids;
          t.updates <- t.updates + List.length rows;
          go (budget - List.length rows)
      | Del k :: tl ->
          t.pending <- tl;
          (match pick_victim t.ids k with
          | None -> ()
          | Some (i, id) ->
              Servsim.Remote.delete_row conn ~id;
              t.ids <- drop_nth i t.ids;
              t.updates <- t.updates + 1);
          go (budget - 1)
      | Reval :: tl ->
          t.pending <- tl;
          let u0 = Unix.gettimeofday () in
          ignore (Servsim.Remote.revalidate conn);
          t.reval_lats <- (Unix.gettimeofday () -. u0) :: t.reval_lats;
          go (budget - 1)
  in
  go budget

(* Round-robin the fleet in [chunk]-op slices until every pending
   stream drains — the interleaving the acceptance criterion asks for. *)
let drain ts ~chunk =
  let busy = ref true in
  while !busy do
    busy := false;
    Array.iter
      (fun t ->
        if t.pending <> [] then begin
          step t chunk;
          if t.pending <> [] then busy := true
        end)
      ts
  done

(* Full re-discovery vs incremental maintenance at n rows: the cost a
   dynamic session avoids on every update. *)
let speedup ~n =
  let table = Datasets.Rnd.generate_with_domain ~seed:9 ~rows:n ~cols ~domain () in
  let t0 = Unix.gettimeofday () in
  let d = Core.Dynamic.start ~seed:5 ~capacity:(n + 64) table in
  let full_s = Unix.gettimeofday () -. t0 in
  let pairs = 16 in
  let t1 = Unix.gettimeofday () in
  for j = 0 to pairs - 1 do
    let row = Array.init cols (fun c -> Value.Int (1 + ((j + c) mod domain))) in
    let id = Core.Dynamic.insert d row in
    Core.Dynamic.delete d ~id
  done;
  let update_s = (Unix.gettimeofday () -. t1) /. float_of_int (2 * pairs) in
  Core.Dynamic.release d;
  (full_s, update_s)

let run (opts : Bench_util.opts) =
  Bench_util.header "DYNAMIC: streaming Ex-ORAM insert/delete over the wire";
  let tenants = if opts.smoke then 2 else 8 in
  let ops_per_tenant = if opts.smoke then 48 else if opts.full then 2000 else 1000 in
  let initial_rows = if opts.smoke then 8 else 24 in
  let depth = 8 in
  let chunk = 32 in
  let reval_n = if opts.smoke then 128 else if opts.full then 2048 else 1024 in
  let ts =
    Array.init tenants (fun i ->
        let table =
          Datasets.Rnd.generate_with_domain ~seed:(100 + i) ~rows:initial_rows ~cols ~domain ()
        in
        {
          ns = Printf.sprintf "dyn-%02d" i;
          seed = 7000 + i;
          capacity = initial_rows + ops_per_tenant + 16;
          table;
          ops = gen_ops ~seed:(500 + i) ~count:ops_per_tenant;
          pending = [];
          ids = List.init initial_rows Fun.id;
          conn = None;
          begun = false;
          updates = 0;
          reval_lats = [];
        })
  in
  let split_at n l = (List.filteri (fun i _ -> i < n) l, List.filteri (fun i _ -> i >= n) l) in
  let finals = Array.make tenants ([], (0L, 0L, 0)) in
  let data_dir = tmp_dir "sfdd-bench-dyn" in
  let wall = ref 0.0 in
  Fun.protect
    ~finally:(fun () -> rm_rf data_dir)
    (fun () ->
      (* Phase 1: Begin every session, serve the first half of every
         stream, then stop the daemon mid-run. *)
      with_daemon ~data_dir (fun path ->
          Array.iter
            (fun t ->
              t.pending <- fst (split_at (ops_per_tenant / 2) t.ops);
              connect ~depth path t)
            ts;
          let t0 = Unix.gettimeofday () in
          drain ts ~chunk;
          wall := !wall +. (Unix.gettimeofday () -. t0);
          close_all ts);
      (* Phase 2: a fresh daemon on the same data-dir rehydrates every
         session from its journaled update history; the streams
         continue where they left off. *)
      with_daemon ~data_dir (fun path ->
          Array.iter
            (fun t ->
              t.pending <- snd (split_at (ops_per_tenant / 2) t.ops);
              connect ~depth path t)
            ts;
          let t0 = Unix.gettimeofday () in
          drain ts ~chunk;
          Array.iteri
            (fun i t ->
              let r = Servsim.Remote.revalidate (Option.get t.conn) in
              finals.(i) <-
                ( List.map
                    (fun s -> (s.Servsim.Wire.fd_lhs, s.Servsim.Wire.fd_rhs, s.Servsim.Wire.fd_valid))
                    r.Servsim.Wire.fds,
                  (r.Servsim.Wire.dyn_full, r.Servsim.Wire.dyn_shape, r.Servsim.Wire.dyn_events) ))
            ts;
          wall := !wall +. (Unix.gettimeofday () -. t0);
          close_all ts));
  (* Parity: replay each stream through Core.Dynamic directly and
     compare FD statuses and trace digests bit-for-bit. *)
  let parity = ref true in
  Array.iteri
    (fun i t ->
      let lib = library_final ~seed:t.seed ~capacity:t.capacity ~table:t.table t.ops in
      if finals.(i) <> lib then begin
        parity := false;
        Printf.printf "  PARITY FAIL %s: wire run diverged from library run\n%!" t.ns
      end)
    ts;
  if not !parity then failwith "dynamic: wire/library parity failed";
  let total_updates = Array.fold_left (fun acc t -> acc + t.updates) 0 ts in
  let reval_lats = Array.fold_left (fun acc t -> List.rev_append t.reval_lats acc) [] ts in
  let p50, p95, p99 = Service.Metrics.percentiles reval_lats in
  let us x = x *. 1e6 in
  Printf.printf
    "  %d tenants x %d ops (pipelined depth %d, daemon restarted mid-stream):\n\
    \    %8.0f updates/s   revalidate p50 %6.0f us  p95 %6.0f us  p99 %6.0f us\n\
    \    parity: every tenant's final FDs + trace digests match the one-shot library run\n\
     %!"
    tenants ops_per_tenant depth
    (float_of_int total_updates /. !wall)
    (us p50) (us p95) (us p99);
  let full_s, update_s = speedup ~n:reval_n in
  let ratio = full_s /. update_s in
  Printf.printf
    "  incremental vs re-discovery at n = %d: full run %s, one update %s  (%.0fx)\n%!" reval_n
    (Bench_util.pretty_time full_s)
    (Bench_util.pretty_time update_s)
    ratio;
  let oc = open_out "BENCH_dynamic.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"sfdd-bench-dynamic/1\",\n\
    \  \"smoke\": %b,\n\
    \  \"transport\": \"unix-domain socket\",\n\
    \  \"tenants\": %d,\n\
    \  \"ops_per_tenant\": %d,\n\
    \  \"pipeline_depth\": %d,\n\
    \  \"restart_mid_stream\": true,\n\
    \  \"updates_total\": %d,\n\
    \  \"updates_per_s\": %.0f,\n\
    \  \"revalidate_p50_us\": %.0f,\n\
    \  \"revalidate_p95_us\": %.0f,\n\
    \  \"revalidate_p99_us\": %.0f,\n\
    \  \"parity_vs_library\": %b,\n\
    \  \"rediscovery_n\": %d,\n\
    \  \"rediscovery_s\": %.6f,\n\
    \  \"update_s\": %.6f,\n\
    \  \"incremental_speedup\": %.1f\n\
     }\n"
    opts.smoke tenants ops_per_tenant depth total_updates
    (float_of_int total_updates /. !wall)
    (us p50) (us p95) (us p99) !parity reval_n full_s update_s ratio;
  close_out oc;
  Printf.printf "  (written to BENCH_dynamic.json)\n%!"
