(* Durable-store churn harness: the disk-backed daemon serving a tenant
   working set 10x its resident cache, so nearly every [Hello] is a cold
   attach — snapshot the LRU victim out, rehydrate the newcomer from its
   snapshot + journal.  This is the cost model of the outsourced setting
   with many clients: the server keeps hot sessions in memory and pages
   cold ciphertext stores to disk.

   The daemon runs in-process (one worker domain, a background thread)
   because the measured work — segment framing, snapshot writes,
   recovery replay — is server-side disk traffic; the socket hop is kept
   so the request path is the production one.

   Emits BENCH_store.json: steady-state ops/s, per-op service latency
   percentiles, and the cold-attach (rehydration) latency distribution. *)

let block_len = 64
let block = String.make block_len '\xCD'

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let with_store_daemon ~max_resident ~data_dir f =
  let path = Filename.temp_file "store-bench" ".sock" in
  Sys.remove path;
  let daemon =
    Service.Daemon.create
      { Service.Daemon.default_config with
        unix_path = Some path;
        max_conns = 16;
        domains = 1;
        data_dir = Some data_dir;
        max_resident }
  in
  let th = Thread.create Service.Daemon.run daemon in
  let rec await tries =
    if not (Sys.file_exists path) then
      if tries = 0 then failwith "store bench daemon did not come up"
      else begin
        Unix.sleepf 0.02;
        await (tries - 1)
      end
  in
  await 200;
  Fun.protect
    ~finally:(fun () ->
      Service.Daemon.stop daemon;
      Thread.join th)
    (fun () -> f path)

let ns_of i = Printf.sprintf "store-tenant-%03d" i

let expect_ok = function
  | Servsim.Wire.Ok -> ()
  | Servsim.Wire.Error e -> failwith e
  | _ -> failwith "unexpected response"

(* Seed every tenant's store once: [blocks] Puts through a fresh
   session.  With the cap at [max_resident] this already runs the
   eviction path [tenants - max_resident] times. *)
let seed ~path ~tenants ~blocks =
  for i = 0 to tenants - 1 do
    let conn = Servsim.Remote.connect_unix ~namespace:(ns_of i) path in
    expect_ok (Servsim.Remote.call conn (Servsim.Wire.Create_store "s"));
    expect_ok (Servsim.Remote.call conn (Servsim.Wire.Ensure ("s", blocks)));
    for b = 0 to blocks - 1 do
      expect_ok (Servsim.Remote.call conn (Servsim.Wire.Put ("s", b, block)))
    done;
    Servsim.Remote.close conn
  done

(* One cold visit: connect (forcing rehydration — the round-robin order
   guarantees this tenant left the cache [tenants - 1] attaches ago),
   then a short burst of Get/Put ops.  Returns the attach latency and
   the per-op latencies. *)
let visit ~path ~ns ~blocks ~ops_per_visit =
  let a0 = Unix.gettimeofday () in
  let conn = Servsim.Remote.connect_unix ~namespace:ns path in
  let attach_s = Unix.gettimeofday () -. a0 in
  let lats = Array.make ops_per_visit 0. in
  for o = 0 to ops_per_visit - 1 do
    let u0 = Unix.gettimeofday () in
    (match
       Servsim.Remote.call conn
         (if o land 1 = 0 then Servsim.Wire.Get ("s", o mod blocks)
          else Servsim.Wire.Put ("s", o mod blocks, block))
     with
    | Servsim.Wire.Ok | Servsim.Wire.Value _ -> ()
    | _ -> failwith "unexpected response");
    lats.(o) <- Unix.gettimeofday () -. u0
  done;
  Servsim.Remote.close conn;
  (attach_s, Array.to_list lats)

let run (opts : Bench_util.opts) =
  Bench_util.header "STORE: disk-backed tenants, working set 10x resident cache";
  let max_resident = if opts.full then 16 else 4 in
  let tenants = 10 * max_resident in
  let blocks = if opts.full then 64 else 32 in
  let rounds = if opts.full then 5 else 2 in
  let ops_per_visit = 16 in
  let data_dir = tmp_dir "sfdd-bench-store" in
  Fun.protect
    ~finally:(fun () -> rm_rf data_dir)
    (fun () ->
      let attach_lats = ref [] and op_lats = ref [] in
      let wall =
        with_store_daemon ~max_resident ~data_dir (fun path ->
            seed ~path ~tenants ~blocks;
            let t0 = Unix.gettimeofday () in
            for _round = 1 to rounds do
              for i = 0 to tenants - 1 do
                let attach_s, lats =
                  visit ~path ~ns:(ns_of i) ~blocks ~ops_per_visit
                in
                attach_lats := attach_s :: !attach_lats;
                op_lats := List.rev_append lats !op_lats
              done
            done;
            Unix.gettimeofday () -. t0)
      in
      let visits = rounds * tenants in
      let total_ops = visits * ops_per_visit in
      let p50, p95, p99 = Service.Metrics.percentiles !op_lats in
      let a50, a95, a99 = Service.Metrics.percentiles !attach_lats in
      let us x = x *. 1e6 in
      Printf.printf
        "  %d tenants / %d resident x %d rounds: %8.0f ops/s   op p50 %5.0f us  p99 \
         %5.0f us   cold attach p50 %6.0f us  p99 %6.0f us\n\
         %!"
        tenants max_resident rounds
        (float_of_int total_ops /. wall)
        (us p50) (us p99) (us a50) (us a99);
      let oc = open_out "BENCH_store.json" in
      Printf.fprintf oc
        "{\n\
        \  \"schema\": \"sfdd-bench-store/1\",\n\
        \  \"smoke\": %b,\n\
        \  \"transport\": \"unix-domain socket\",\n\
        \  \"tenants\": %d,\n\
        \  \"max_resident\": %d,\n\
        \  \"blocks_per_tenant\": %d,\n\
        \  \"block_bytes\": %d,\n\
        \  \"rounds\": %d,\n\
        \  \"ops_per_visit\": %d,\n\
        \  \"ops_per_s\": %.0f,\n\
        \  \"op_p50_us\": %.0f,\n\
        \  \"op_p95_us\": %.0f,\n\
        \  \"op_p99_us\": %.0f,\n\
        \  \"cold_attach_p50_us\": %.0f,\n\
        \  \"cold_attach_p95_us\": %.0f,\n\
        \  \"cold_attach_p99_us\": %.0f\n\
         }\n"
        opts.smoke tenants max_resident blocks block_len rounds ops_per_visit
        (float_of_int total_ops /. wall)
        (us p50) (us p95) (us p99) (us a50) (us a95) (us a99);
      close_out oc;
      Printf.printf "  (written to BENCH_store.json)\n%!")
