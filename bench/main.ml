(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VII).

     dune exec bench/main.exe                 # all experiments, scaled sizes
     dune exec bench/main.exe -- fig4 fig7    # a subset
     dune exec bench/main.exe -- --full       # larger sweeps (slower)
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks
     dune exec bench/main.exe -- micro --smoke  # seconds-long harness check *)

let experiments =
  [
    ("table1", "dataset summary", Exp_table1.run);
    ("table2", "obliviousness KS tests + storage", Exp_table2.run);
    ("table3", "complexity summary + ORAM ablation", Exp_table3.run);
    ("fig4", "runtime scalability", Exp_fig4.run);
    ("fig5", "storage and client memory scalability", Exp_fig5.run);
    ("fig6a", "Sort parallelism", Exp_fig6.run_fig6a);
    ("fig6b", "Sort in a secure enclave", Exp_fig6.run_fig6b);
    ("fig7", "Ex-ORAM insertion/deletion", Exp_fig7.run);
    ("ablation", "baseline frontier, recursive ORAM, compression", Exp_ablation.run);
    ("micro", "Bechamel micro-benchmarks", Exp_micro.run);
    ("service", "multi-tenant daemon load harness", Exp_service.run);
    ("store", "disk-backed tenant store churn harness", Exp_store.run);
    ("dynamic", "streaming dynamic-FD session load harness", Exp_dynamic.run);
    ("oram", "ORAM treetop-cache sweep", Exp_oram.run);
  ]

let default_set =
  [ "table1"; "table2"; "table3"; "fig4"; "fig5"; "fig6a"; "fig6b"; "fig7"; "ablation"; "micro";
    "service"; "store"; "dynamic"; "oram" ]

let usage () =
  prerr_endline "usage: main.exe [--full] [--smoke] [experiment ...]";
  prerr_endline "experiments:";
  List.iter (fun (n, d, _) -> Printf.eprintf "  %-8s %s\n" n d) experiments;
  exit 2

(* Hidden re-exec entry points: the service harness runs its daemon and
   load clients as child processes of this same binary, because
   [Unix.fork] is unavailable once OCaml 5 domains have run. *)
(* Link the dynamic-FD engine into the request handler, as fdserved
   does: the service and dynamic harnesses run daemons in this
   process (or re-exec'd children of it). *)
let () = Dynserve.install ()

let () =
  match Array.to_list Sys.argv with
  | _ :: "service-daemon" :: path :: domains :: backend :: _ ->
      exit (Exp_service.daemon_main path (int_of_string domains) backend)
  | _ :: "service-client" :: path :: ns :: ops :: depth :: out :: _ ->
      exit (Exp_service.client_main path ns (int_of_string ops) (int_of_string depth) out)
  | _ -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let names = List.filter (fun a -> a <> "--full" && a <> "--smoke") args in
  let names = if names = [] then default_set else names in
  List.iter
    (fun a ->
      if a = "--help" || a = "-h" || not (List.mem_assoc a (List.map (fun (n, d, f) -> (n, (d, f))) experiments))
      then usage ())
    names;
  let opts = { Bench_util.full; smoke } in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let _, _, f = List.find (fun (n, _, _) -> n = name) experiments in
      f opts)
    names;
  Printf.printf "\nTotal bench time: %.1f s\n%!" (Unix.gettimeofday () -. t0)
