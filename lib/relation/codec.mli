(** Fixed-width binary codecs.

    Everything stored in an ORAM block or a sorting-network element must
    have a width that depends only on public parameters (it is encrypted,
    but the ciphertext length is visible), so values and integers are
    encoded into fixed-width fields here.

    The value encoding is injective — attribute compression (§IV-B of the
    paper) relies on distinct values mapping to distinct keys. *)

val put_int64 : Bytes.t -> int -> int64 -> unit
val get_int64 : string -> int -> int64

val get_int64_bytes : Bytes.t -> int -> int64
(** {!get_int64} reading from a [Bytes.t] region directly (no
    intermediate string copy). *)

val encode_int : int -> string
(** 8-byte little-endian two's-complement encoding. *)

val decode_int : string -> int
(** Inverse of {!encode_int} on its image (reads the first 8 bytes). *)

val value_width : int
(** Fixed byte width of an encoded cell value (tag + 8-byte int, or tag +
    length byte + up to {!max_str_len} string bytes). *)

val max_str_len : int
(** Longest string value that fits the fixed width. *)

val encode_value : Value.t -> string
(** Fixed-width injective encoding; the encoding also preserves
    {!Value.compare} order under lexicographic byte comparison
    for values of the same kind.
    @raise Invalid_argument if a string value exceeds {!max_str_len}. *)

val decode_value : string -> Value.t
(** @raise Invalid_argument on malformed input. *)
