let put_int64 b off v =
  for k = 0 to 7 do
    Bytes.set b (off + k) (Char.chr (Int64.to_int (Int64.shift_right_logical v (k * 8)) land 0xff))
  done

let get_int64 s off =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + k]))
  done;
  !v

(* [get_int64] over a [Bytes.t] without an intermediate string — the ORAM
   block codec decodes fields straight out of its reused path buffer. *)
let get_int64_bytes b off =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b (off + k))))
  done;
  !v

let encode_int v =
  let b = Bytes.create 8 in
  put_int64 b 0 (Int64.of_int v);
  Bytes.to_string b

let decode_int s = Int64.to_int (get_int64 s 0)

(* Layout: 1 tag byte; Int -> 8 bytes LE + zero padding; Str -> 1 length
   byte + bytes + zero padding.  22 string bytes keeps the whole encoding
   at 24 bytes, which pads to one extra AES block beyond the IV. *)
let max_str_len = 22
let value_width = 2 + max_str_len

let encode_value (v : Value.t) =
  let b = Bytes.make value_width '\000' in
  (match v with
  | Value.Int x ->
      Bytes.set b 0 '\001';
      (* Big-endian with sign bit flipped, so byte order matches integer
         order (useful property, relied on by tests). *)
      let u = Int64.logxor (Int64.of_int x) Int64.min_int in
      for k = 0 to 7 do
        Bytes.set b (1 + k) (Char.chr (Int64.to_int (Int64.shift_right_logical u ((7 - k) * 8)) land 0xff))
      done
  | Value.Str s ->
      let len = String.length s in
      if len > max_str_len then
        invalid_arg (Printf.sprintf "Codec.encode_value: string longer than %d bytes" max_str_len);
      Bytes.set b 0 '\002';
      Bytes.blit_string s 0 b 1 len;
      Bytes.set b (value_width - 1) (Char.chr len));
  Bytes.to_string b

(* Strict decoding: padding bytes must be exactly as {!encode_value}
   writes them, so any bit flip anywhere in an encoded value is rejected
   rather than silently ignored (ciphertext-corruption detection relies
   on this). *)
let check_zero_padding s ~from ~upto =
  for k = from to upto do
    if s.[k] <> '\000' then invalid_arg "Codec.decode_value: corrupt padding"
  done

let decode_value s =
  if String.length s <> value_width then invalid_arg "Codec.decode_value: bad width";
  match s.[0] with
  | '\001' ->
      check_zero_padding s ~from:9 ~upto:(value_width - 1);
      let u = ref 0L in
      for k = 0 to 7 do
        u := Int64.logor (Int64.shift_left !u 8) (Int64.of_int (Char.code s.[1 + k]))
      done;
      Value.Int (Int64.to_int (Int64.logxor !u Int64.min_int))
  | '\002' ->
      let len = Char.code s.[value_width - 1] in
      if len > max_str_len then invalid_arg "Codec.decode_value: bad string length";
      check_zero_padding s ~from:(1 + len) ~upto:(value_width - 2);
      Value.Str (String.sub s 1 len)
  | _ -> invalid_arg "Codec.decode_value: bad tag"
