(* Non-recursive PathORAM.  Bucket b (heap order, root = 0) occupies slots
   [b*z .. b*z+z-1] of the block store; every slot always holds a
   ciphertext of the same fixed-width plaintext [flag | key | payload].

   Treetop caching (Stefanov et al. §6.1): with [cache_levels] = k > 0
   the top k levels of the tree — buckets 0 .. 2^k-2, a fixed prefix of
   the store — are held decrypted client-side and act as an extension of
   the stash.  An access then reads and rewrites only the path *suffix*,
   levels k..L, on the uniformly random leaf; the cached prefix is
   refilled client-side with no I/O.  The residual trace (suffix slots of
   a uniform leaf) is still independent of the key and operation, and the
   cached bytes are charged to the client ledger like the stash.  With
   k = 0 the code path, the trace, the IV stream and the ciphertexts are
   bit-identical to the pre-cache implementation. *)

let z = 4

type config = {
  capacity : int;
  key_len : int;
  payload_len : int;
}

type t = {
  cfg : config;
  levels : int; (* L: leaves = 2^L *)
  leaves : int;
  store : Servsim.Block_store.t;
  server : Servsim.Server.t;
  name : string;
  cipher : Crypto.Cell_cipher.t;
  rand_int : int -> int;
  pos : (string, int) Hashtbl.t; (* key -> leaf *)
  stash : (string, string) Hashtbl.t; [@secret] (* key -> payload; decrypted block plaintext *)
  cache_levels : int; (* effective k: top k levels held client-side; 0 = off *)
  topcache : (string * string) option array; [@secret]
      (* (2^k - 1) * z slots, indexed like the store prefix: decrypted
         (key, payload) residents of the cached buckets *)
  pbuf : Bytes.t; [@secret]
      (* reused plaintext path buffer, (L+1)*z blocks wide: fetch decrypts
         into it, evict encodes into it — no per-block plaintext copies *)
  mutable max_stash : int;
  mutable overflows : int;
  mutable accesses : int;
}

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let block_pt_len cfg = 1 + cfg.key_len + cfg.payload_len

(* Path-buffer slot width: [decrypt_to] needs room for the padded CBC
   body, which is also plenty for encoding the plaintext on the way out. *)
let slot_stride cfg = (block_pt_len cfg / 16 * 16) + 16

(* Bucket index at level [lev] (root = level 0) on the path to [leaf]. *)
let node_at t ~leaf ~lev = (1 lsl lev) - 1 + (leaf lsr (t.levels - lev))

let stash_limit t = 7 * max 1 (ceil_log2 t.cfg.capacity)

let client_state_bytes t =
  let pos_bytes = Hashtbl.length t.pos * (t.cfg.key_len + 8) in
  let stash_bytes = Hashtbl.length t.stash * (t.cfg.key_len + t.cfg.payload_len) in
  (* The treetop cache is charged at capacity: every cached slot may hold
     a decrypted block, and the array itself is resident either way. *)
  let cache_bytes = Array.length t.topcache * (t.cfg.key_len + t.cfg.payload_len) in
  pos_bytes + stash_bytes + cache_bytes

let sync_client_cost t =
  Servsim.Cost.client_set (Servsim.Server.cost t.server) ~tag:t.name (client_state_bytes t)

let setup ~name ?(cache_levels = 0) cfg server cipher rand_int =
  if cfg.capacity < 1 then invalid_arg "Path_oram.setup: capacity must be >= 1";
  if cache_levels < 0 then invalid_arg "Path_oram.setup: cache_levels must be >= 0";
  let levels = max 1 (ceil_log2 cfg.capacity) in
  let leaves = 1 lsl levels in
  let buckets = (2 * leaves) - 1 in
  let store = Servsim.Server.create_store server name in
  Servsim.Block_store.ensure store (buckets * z);
  let dummy = String.make (block_pt_len cfg) '\000' in
  let cts = Crypto.Cell_cipher.encrypt_many cipher (List.init (buckets * z) (fun _ -> dummy)) in
  Servsim.Block_store.write_many store (List.mapi (fun slot ct -> (slot, ct)) cts);
  (* Clamp so the leaf level always stays on the server: every access
     keeps a non-empty, uniformly distributed server-visible suffix. *)
  let cache_levels = min cache_levels levels in
  let t =
    {
      cfg;
      levels;
      leaves;
      store;
      server;
      name;
      cipher;
      rand_int;
      pos = Hashtbl.create (2 * cfg.capacity);
      stash = Hashtbl.create 64;
      cache_levels;
      topcache = Array.make (((1 lsl cache_levels) - 1) * z) None;
      pbuf = Bytes.create ((levels + 1) * z * slot_stride cfg);
      max_stash = 0;
      overflows = 0;
      accesses = 0;
    }
  in
  if cache_levels > 0 then sync_client_cost t;
  t

(* Slots of the path suffix (levels [cache_levels]..L) to [leaf], root to
   leaf — with the cache off this is the whole path in the order the
   per-slot loop used to visit it, so the trace shape is unchanged. *)
let path_slots t leaf =
  List.concat_map
    (fun i ->
      let lev = t.cache_levels + i in
      let bucket = node_at t ~leaf ~lev in
      List.init z (fun s -> (bucket * z) + s))
    (List.init (t.levels + 1 - t.cache_levels) Fun.id)

(* Read the path to [leaf] into the stash.  Cached levels move their
   residents into the stash with no I/O; the suffix is one batched round
   trip (a single Multi_get frame in remote mode) decrypted into the
   reused path buffer — per-block work allocates only for live blocks
   entering the stash, never for dummies. *)
let fetch_path t leaf =
  for lev = 0 to t.cache_levels - 1 do
    let bucket = node_at t ~leaf ~lev in
    for s = 0 to z - 1 do
      let j = (bucket * z) + s in
      (match
         (t.topcache.(j)
         [@lint.declassify
           "client-local treetop cache refill: every resident of the cached path \
            buckets moves to the stash; no server I/O is involved"])
       with
      | None -> ()
      | Some (key, payload) -> Hashtbl.replace t.stash key payload);
      t.topcache.(j) <- None
    done
  done;
  let pt_len = block_pt_len t.cfg in
  let stride = slot_stride t.cfg in
  List.iteri
    (fun j ct ->
      let off = j * stride in
      if
        Crypto.Cell_cipher.decrypt_to t.cipher ct
          (t.pbuf
          [@lint.declassify
            "client-local CBC unpadding branches on decrypted plaintext inside the \
             trusted client; the server-visible trace is the fixed path-slot schedule"])
          off
        <> pt_len
      then invalid_arg "Path_oram: corrupt block";
      if
        ((Bytes.get t.pbuf off = '\001')
        [@lint.declassify
          "client-local stash refill: every block of the fetched path is decoded; \
           the trace is the fixed path-slot schedule"])
      then begin
        let key = Bytes.sub_string t.pbuf (off + 1) t.cfg.key_len in
        let payload = Bytes.sub_string t.pbuf (off + 1 + t.cfg.key_len) t.cfg.payload_len in
        Hashtbl.replace t.stash key payload
      end)
    (Servsim.Block_store.read_many t.store (path_slots t leaf))

(* Greedy eviction along the path to [leaf]: deepest buckets first.
   Suffix blocks are encoded into the path buffer and encrypted out of it
   (one ciphertext allocation per block, nothing else), then flushed as
   one batched round trip in the same leaf-to-root slot order — and the
   same IV stream — the per-slot loop used.  Cached levels are refilled
   client-side with no I/O. *)
let evict_path t leaf =
  let pt_len = block_pt_len t.cfg in
  let stride = slot_stride t.cfg in
  let k = t.cache_levels in
  let nsuffix = (t.levels + 1 - k) * z in
  let slots = Array.make nsuffix 0 in
  let idx = ref 0 in
  for lev = t.levels downto 0 do
    let bucket = node_at t ~leaf ~lev in
    (* Stash blocks whose assigned leaf passes through [bucket]. *)
    let chosen = ref [] in
    let count = ref 0 in
    (try
       Hashtbl.iter
         (fun key payload ->
           if !count >= z then raise Exit;
           match
             (Hashtbl.find_opt t.pos key
             [@lint.declassify
               "greedy eviction fills the fetched path's fixed Z slots per bucket; the written \
                slot set is the whole path regardless of which stash blocks are chosen"])
           with
           | Some l when node_at t ~leaf:l ~lev = bucket ->
               chosen := (key, payload) :: !chosen;
               incr count
           | Some _ | None -> ())
         t.stash
     with Exit -> ());
    List.iter (fun (key, _) -> Hashtbl.remove t.stash key) !chosen;
    let blocks = Array.make z None in
    List.iteri (fun i kp -> blocks.(i) <- Some kp) !chosen;
    if lev >= k then
      for s = 0 to z - 1 do
        let off = !idx * stride in
        Bytes.fill t.pbuf off pt_len '\000';
        (match
           (blocks.(s)
           [@lint.declassify
             "eviction writes all Z slots of every path bucket: dummy vs resident \
              only changes the encrypted plaintext, never the slot schedule"])
         with
        | None -> ()
        | Some (key, payload) ->
            Bytes.set t.pbuf off '\001';
            Bytes.blit_string key 0 t.pbuf (off + 1) t.cfg.key_len;
            Bytes.blit_string payload 0 t.pbuf (off + 1 + t.cfg.key_len) t.cfg.payload_len);
        slots.(!idx) <- (bucket * z) + s;
        incr idx
      done
    else
      for s = 0 to z - 1 do
        t.topcache.((bucket * z) + s) <- blocks.(s)
      done
  done;
  (* Encrypt in append (leaf-to-root) order — the order the per-slot loop
     used, so the IV stream and the trace are both unchanged with the
     cache off; the whole suffix is one round trip. *)
  let ct_len = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:pt_len in
  Servsim.Block_store.write_many t.store
    (List.init nsuffix (fun j ->
         let ct = Bytes.create ct_len in
         let _ = Crypto.Cell_cipher.encrypt_from t.cipher t.pbuf ~off:(j * stride) ~len:pt_len ct 0 in
         (* [ct] is freshly allocated and never written again: freezing it
            avoids one copy per block. *)
         (slots.(j), (Bytes.unsafe_to_string ct [@lint.allow "R2:bytes-unsafe"]))))

let finish_access t =
  let occupancy = Hashtbl.length t.stash in
  if occupancy > t.max_stash then t.max_stash <- occupancy;
  if occupancy > stash_limit t then t.overflows <- t.overflows + 1;
  t.accesses <- t.accesses + 1;
  (* Round trips are counted by the block store: one for the batched
     fetch, one for the batched evict — exactly the two wire frames a
     remote access performs. *)
  sync_client_cost t

let access t ~key update =
  if String.length key <> t.cfg.key_len then
    invalid_arg
      (Printf.sprintf "Path_oram.access: key length %d, expected %d (store %s)"
         (String.length key) t.cfg.key_len t.name);
  let leaf =
    match Hashtbl.find_opt t.pos key with
    | Some l -> l
    | None -> t.rand_int t.leaves
  in
  fetch_path t leaf;
  let old =
    (Hashtbl.find_opt t.stash key
    [@lint.declassify
      "client-local stash hit check; the surrounding fetch/evict trace is one full\
        path either way"])
  in
  (match update old with
  | Some v ->
      if String.length v <> t.cfg.payload_len then
        invalid_arg
          (Printf.sprintf "Path_oram.access: payload length %d, expected %d (store %s)"
             (String.length v) t.cfg.payload_len t.name);
      Hashtbl.replace t.stash key v;
      Hashtbl.replace t.pos key (t.rand_int t.leaves)
  | None ->
      Hashtbl.remove t.stash key;
      Hashtbl.remove t.pos key);
  evict_path t leaf;
  finish_access t;
  old

let dummy_access t =
  let leaf = t.rand_int t.leaves in
  fetch_path t leaf;
  evict_path t leaf;
  finish_access t

(* Write the cached buckets back through the normal encrypted write path
   (one batched round trip), so the server-side tree is a complete
   checkpoint of the ORAM state (modulo the stash, which persists
   client-side like the position map).  The cache stays authoritative —
   subsequent accesses keep serving the treetop client-side.  A no-op
   with the cache off: the trace and digests are untouched. *)
let flush t =
  let n = Array.length t.topcache in
  if n > 0 then begin
    let pt_len = block_pt_len t.cfg in
    let ct_len = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:pt_len in
    Servsim.Block_store.write_many t.store
      (List.init n (fun j ->
           Bytes.fill t.pbuf 0 pt_len '\000';
           (match
              (t.topcache.(j)
              [@lint.declassify
                "flush writes every cached slot, resident or dummy: the written slot \
                 set is the fixed cache prefix regardless of contents"])
            with
           | None -> ()
           | Some (key, payload) ->
               Bytes.set t.pbuf 0 '\001';
               Bytes.blit_string key 0 t.pbuf 1 t.cfg.key_len;
               Bytes.blit_string payload 0 t.pbuf (1 + t.cfg.key_len) t.cfg.payload_len);
           let ct = Bytes.create ct_len in
           let _ = Crypto.Cell_cipher.encrypt_from t.cipher t.pbuf ~off:0 ~len:pt_len ct 0 in
           (j, (Bytes.unsafe_to_string ct [@lint.allow "R2:bytes-unsafe"]))))
  end

let read t ~key = access t ~key (fun old -> old)
let write t ~key v = ignore (access t ~key (fun _ -> Some v))
let remove t ~key = ignore (access t ~key (fun _ -> None))

let live_blocks t = Hashtbl.length t.pos
let levels t = t.levels
let cache_levels t = t.cache_levels
let max_stash_seen t = t.max_stash
let stash_overflows t = t.overflows
let access_count t = t.accesses

let destroy t =
  Servsim.Server.drop_store t.server t.name;
  Servsim.Cost.client_set (Servsim.Server.cost t.server) ~tag:t.name 0
