(* Non-recursive PathORAM.  Bucket b (heap order, root = 0) occupies slots
   [b*z .. b*z+z-1] of the block store; every slot always holds a
   ciphertext of the same fixed-width plaintext [flag | key | payload]. *)

let z = 4

type config = {
  capacity : int;
  key_len : int;
  payload_len : int;
}

type t = {
  cfg : config;
  levels : int; (* L: leaves = 2^L *)
  leaves : int;
  store : Servsim.Block_store.t;
  server : Servsim.Server.t;
  name : string;
  cipher : Crypto.Cell_cipher.t;
  rand_int : int -> int;
  pos : (string, int) Hashtbl.t; (* key -> leaf *)
  stash : (string, string) Hashtbl.t; [@secret] (* key -> payload; decrypted block plaintext *)
  mutable max_stash : int;
  mutable overflows : int;
  mutable accesses : int;
}

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let block_pt_len cfg = 1 + cfg.key_len + cfg.payload_len

let encode_dummy cfg = String.make (block_pt_len cfg) '\000'

let encode_block cfg ~key ~payload =
  assert (String.length key = cfg.key_len);
  assert (String.length payload = cfg.payload_len);
  let b = Bytes.create (block_pt_len cfg) in
  Bytes.set b 0 '\001';
  Bytes.blit_string key 0 b 1 cfg.key_len;
  Bytes.blit_string payload 0 b (1 + cfg.key_len) cfg.payload_len;
  Bytes.to_string b

let decode_block cfg pt =
  if String.length pt <> block_pt_len cfg then invalid_arg "Path_oram: corrupt block";
  if pt.[0] = '\000' then None
  else
    let key = String.sub pt 1 cfg.key_len in
    let payload = String.sub pt (1 + cfg.key_len) cfg.payload_len in
    Some (key, payload)

(* Bucket index at level [lev] (root = level 0) on the path to [leaf]. *)
let node_at t ~leaf ~lev = (1 lsl lev) - 1 + (leaf lsr (t.levels - lev))

let stash_limit t = 7 * max 1 (ceil_log2 t.cfg.capacity)

let client_state_bytes t =
  let pos_bytes = Hashtbl.length t.pos * (t.cfg.key_len + 8) in
  let stash_bytes = Hashtbl.length t.stash * (t.cfg.key_len + t.cfg.payload_len) in
  pos_bytes + stash_bytes

let sync_client_cost t =
  Servsim.Cost.client_set (Servsim.Server.cost t.server) ~tag:t.name (client_state_bytes t)

let setup ~name cfg server cipher rand_int =
  if cfg.capacity < 1 then invalid_arg "Path_oram.setup: capacity must be >= 1";
  let levels = max 1 (ceil_log2 cfg.capacity) in
  let leaves = 1 lsl levels in
  let buckets = (2 * leaves) - 1 in
  let store = Servsim.Server.create_store server name in
  Servsim.Block_store.ensure store (buckets * z);
  let dummy = encode_dummy cfg in
  let cts = Crypto.Cell_cipher.encrypt_many cipher (List.init (buckets * z) (fun _ -> dummy)) in
  Servsim.Block_store.write_many store (List.mapi (fun slot ct -> (slot, ct)) cts);
  {
    cfg;
    levels;
    leaves;
    store;
    server;
    name;
    cipher;
    rand_int;
    pos = Hashtbl.create (2 * cfg.capacity);
    stash = Hashtbl.create 64;
    max_stash = 0;
    overflows = 0;
    accesses = 0;
  }

(* Slots of the path to [leaf], root to leaf — the order the per-slot loop
   used to visit them, so the trace shape is unchanged. *)
let path_slots t leaf =
  List.concat_map
    (fun lev ->
      let bucket = node_at t ~leaf ~lev in
      List.init z (fun s -> (bucket * z) + s))
    (List.init (t.levels + 1) Fun.id)

(* Read every block of the path to [leaf] into the stash: one batched
   round trip (a single Multi_get frame in remote mode) and one bulk
   cipher call for the whole path. *)
let fetch_path t leaf =
  let cs = Servsim.Block_store.read_many t.store (path_slots t leaf) in
  List.iter
    (fun pt ->
      match
        decode_block t.cfg
          (pt
          [@lint.declassify
            "client-local stash refill: every block of the fetched path is decoded; \
             the trace is the fixed path-slot schedule"])
      with
      | None -> ()
      | Some (key, payload) -> Hashtbl.replace t.stash key payload)
    (Crypto.Cell_cipher.decrypt_many t.cipher cs)

(* Greedy eviction along the path to [leaf]: deepest buckets first.  All
   slot writes are collected and flushed as one batched round trip (a
   single Multi_put frame in remote mode), in the same slot order the
   per-slot loop used, so the trace shape is unchanged. *)
let evict_path t leaf =
  let dummy = encode_dummy t.cfg in
  let slots = ref [] in
  let pts = ref [] in
  for lev = t.levels downto 0 do
    let bucket = node_at t ~leaf ~lev in
    (* Stash blocks whose assigned leaf passes through [bucket]. *)
    let chosen = ref [] in
    let count = ref 0 in
    (try
       Hashtbl.iter
         (fun key payload ->
           if !count >= z then raise Exit;
           match
             (Hashtbl.find_opt t.pos key
             [@lint.declassify
               "greedy eviction fills the fetched path's fixed Z slots per bucket; the written \
                slot set is the whole path regardless of which stash blocks are chosen"])
           with
           | Some l when node_at t ~leaf:l ~lev = bucket ->
               chosen := (key, payload) :: !chosen;
               incr count
           | Some _ | None -> ())
         t.stash
     with Exit -> ());
    List.iter (fun (key, _) -> Hashtbl.remove t.stash key) !chosen;
    let blocks = Array.make z dummy in
    List.iteri
      (fun i (key, payload) -> blocks.(i) <- encode_block t.cfg ~key ~payload)
      !chosen;
    for s = 0 to z - 1 do
      slots := ((bucket * z) + s) :: !slots;
      pts := blocks.(s) :: !pts
    done
  done;
  (* [List.rev] restores push order — the order the per-slot loop used to
     encrypt and write — so the IV stream and the trace are both
     unchanged; the whole path is one cipher call and one round trip. *)
  let cts = Crypto.Cell_cipher.encrypt_many t.cipher (List.rev !pts) in
  Servsim.Block_store.write_many t.store (List.combine (List.rev !slots) cts)

let finish_access t =
  let occupancy = Hashtbl.length t.stash in
  if occupancy > t.max_stash then t.max_stash <- occupancy;
  if occupancy > stash_limit t then t.overflows <- t.overflows + 1;
  t.accesses <- t.accesses + 1;
  (* Round trips are counted by the block store: one for the batched
     fetch, one for the batched evict — exactly the two wire frames a
     remote access performs. *)
  sync_client_cost t

let access t ~key update =
  if String.length key <> t.cfg.key_len then
    invalid_arg
      (Printf.sprintf "Path_oram.access: key length %d, expected %d (store %s)"
         (String.length key) t.cfg.key_len t.name);
  let leaf =
    match Hashtbl.find_opt t.pos key with
    | Some l -> l
    | None -> t.rand_int t.leaves
  in
  fetch_path t leaf;
  let old =
    (Hashtbl.find_opt t.stash key
    [@lint.declassify
      "client-local stash hit check; the surrounding fetch/evict trace is one full\
        path either way"])
  in
  (match update old with
  | Some v ->
      if String.length v <> t.cfg.payload_len then
        invalid_arg
          (Printf.sprintf "Path_oram.access: payload length %d, expected %d (store %s)"
             (String.length v) t.cfg.payload_len t.name);
      Hashtbl.replace t.stash key v;
      Hashtbl.replace t.pos key (t.rand_int t.leaves)
  | None ->
      Hashtbl.remove t.stash key;
      Hashtbl.remove t.pos key);
  evict_path t leaf;
  finish_access t;
  old

let dummy_access t =
  let leaf = t.rand_int t.leaves in
  fetch_path t leaf;
  evict_path t leaf;
  finish_access t

let read t ~key = access t ~key (fun old -> old)
let write t ~key v = ignore (access t ~key (fun _ -> Some v))
let remove t ~key = ignore (access t ~key (fun _ -> None))

let live_blocks t = Hashtbl.length t.pos
let levels t = t.levels
let max_stash_seen t = t.max_stash
let stash_overflows t = t.overflows
let access_count t = t.accesses

let destroy t =
  Servsim.Server.drop_store t.server t.name;
  Servsim.Cost.client_set (Servsim.Server.cost t.server) ~tag:t.name 0
