(** Recursive PathORAM over integer keys.

    The paper's methods keep a client-side position map of O(n) entries
    per ORAM and note (§VII-C) that "the storage requirement can be
    reduced by adopting more advanced ORAMs at the cost of runtime".
    This module is that trade-off, concretely: positions of the data tree
    are packed [fanout] to a block and stored in a smaller PathORAM,
    recursively, until the top-level map fits under [top_cutoff] entries,
    which the client holds directly.  Client state shrinks from O(n) to
    O(log n) blocks (top map + stashes); every logical access costs one
    path per recursion level instead of one.

    Keys are integers in [0, capacity) — sufficient for the ID-keyed
    ORAMs of the FD methods (r[ID] is a row number).  The value-keyed
    Key-Label ORAMs would additionally need an oblivious map on top; that
    is out of the paper's scope and ours.

    Each server-side block stores its own assigned leaf alongside the
    payload, so eviction never needs map lookups for stash residents. *)

type t

type config = {
  capacity : int;
  payload_len : int;
  fanout : int;  (** positions packed per map block (e.g. 16) *)
  top_cutoff : int;  (** max entries of the client-held top map (e.g. 64) *)
}

val setup :
  name:string ->
  ?cache_levels:int ->
  config -> Servsim.Server.t -> Crypto.Cell_cipher.t -> (int -> int) -> t
(** [cache_levels] (default 0) asks every tree of the recursion — data
    and position-map trees alike — to keep its top
    [min cache_levels levels] levels decrypted client-side: accesses
    read/write only the path suffix below the cached prefix, and all
    trees' evictions for one logical access are deferred and flushed as
    a single cross-store write frame.  With [cache_levels = 0] the wire
    schedule, trace, and ciphertext stream are bit-identical to the
    uncached implementation. *)

val access : t -> key:int -> (string option -> string option) -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val read : t -> key:int -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val write : t -> key:int -> string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val remove : t -> key:int -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]

val recursion_depth : t -> int
(** Number of ORAM trees (data tree + map trees). *)

val flush : t -> unit
(** Write every tree's cached top levels back to the server through the
    normal encrypted write path (one cross-store frame) so the
    server-side trees form a complete checkpoint.  The caches stay
    authoritative; no-op when [cache_levels = 0]. *)

val cache_levels : t -> int
(** The largest effective treetop-cache depth across the recursion's
    trees (0 when caching is off). *)

val client_state_bytes : t -> int
val live_blocks : t -> int
val destroy : t -> unit
