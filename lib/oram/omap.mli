(** Oblivious map: an AVL tree laid over an ORAM (the OMAP construction
    of Oblix [36] / Wang et al.), mapping fixed-width {e value} keys to
    fixed-width payloads.

    Why it exists here: PathORAM needs a client-side position map, and
    for the paper's Key-Label ORAMs the keys are attribute values, so the
    map costs O(n) client memory (the paper accepts this, Fig. 5).  An
    OMAP stores the tree {e nodes} in an integer-addressed ORAM — which
    can itself be the recursive construction — leaving the client with
    only the root pointer and stashes: polylogarithmic memory for
    value-keyed state.

    Obliviousness: every operation performs a {e fixed} number of ORAM
    accesses for a given capacity (real accesses padded with dummies up
    to the worst-case AVL path/rebalance counts), so the server's view
    depends only on (capacity, operation count).

    The node ORAM is abstracted as a record of functions so both
    {!Path_oram} (fast) and {!Recursive_path_oram} (small client) can
    back it. *)

type backing = {
  read : int -> string option;
  write : int -> string -> unit;
  remove : int -> unit;
  dummy : unit -> unit;
  client_bytes : unit -> int;
  flush : unit -> unit;
      (** checkpoint any client-cached tree levels to the server *)
  destroy : unit -> unit;
}

val path_oram_backing :
  name:string -> capacity:int -> node_len:int -> ?cache_levels:int ->
  Servsim.Server.t -> Crypto.Cell_cipher.t -> (int -> int) -> backing

val recursive_backing :
  name:string -> capacity:int -> node_len:int -> ?cache_levels:int ->
  Servsim.Server.t -> Crypto.Cell_cipher.t -> (int -> int) -> backing
(** [cache_levels] (default 0) is the treetop-cache depth handed to the
    node ORAM — see {!Path_oram.setup} and {!Recursive_path_oram.setup}. *)

type t

type config = {
  capacity : int;  (** maximum number of live keys *)
  key_len : int;
  value_len : int;
}

val node_len : config -> int
(** Byte width of a serialised tree node for this configuration — what
    the backing ORAM must be built with. *)

val create : config -> backing -> t

val find : t -> string -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val insert : t -> string -> string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
(** Insert or replace. *)

val delete : t -> string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val size : t -> int
val client_state_bytes : t -> int

val accesses_per_op : t -> int
(** The fixed per-operation ORAM access budget (padding target). *)

val check_invariants : t -> bool
(** Walks the whole tree (test use): BST order, AVL balance, size. *)

val to_sorted_list : t -> (string * string) list [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
(** In-order contents (test use; not oblivious). *)

val flush : t -> unit
(** Checkpoint the backing ORAM's cached tree levels to the server (see
    {!Path_oram.flush}); no-op when caching is off. *)

val destroy : t -> unit
