(* Recursive PathORAM.  Tree 0 holds the data blocks; tree i >= 1 holds
   the position map of tree i-1, [fanout] positions per block; the top
   map (positions of the last tree) is a small client-side array.

   Block plaintext layout (uniform within a tree):
     flag (1) | id (8) | leaf (8) | payload (payload_len)
   The assigned leaf rides inside the block so eviction can place stash
   residents without consulting the maps. *)

let z = 4

type config = {
  capacity : int;
  payload_len : int;
  fanout : int;
  top_cutoff : int;
}

type tree = {
  store : Servsim.Block_store.t;
  name : string;
  levels : int;
  leaves : int;
  payload_len : int; (* payload bytes for this tree's blocks *)
  stash : (int, int * Bytes.t) Hashtbl.t; [@secret] (* id -> (leaf, payload) plaintext *)
}

type t = {
  cfg : config;
  server : Servsim.Server.t;
  cipher : Crypto.Cell_cipher.t;
  rand_int : int -> int;
  trees : tree array; (* trees.(0) = data; trees.(i) = map of tree i-1 *)
  top : int array; (* positions of the last tree's blocks *)
  session_name : string;
  mutable live : int;
}

let invalid_pos = -1

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let block_pt_len tree = 1 + 8 + 8 + tree.payload_len

let node_at tree ~leaf ~lev = (1 lsl lev) - 1 + (leaf lsr (tree.levels - lev))

let make_tree server cipher ~name ~capacity ~payload_len =
  let levels = max 1 (ceil_log2 capacity) in
  let leaves = 1 lsl levels in
  let buckets = (2 * leaves) - 1 in
  let store = Servsim.Server.create_store server name in
  Servsim.Block_store.ensure store (buckets * z);
  let tree = { store; name; levels; leaves; payload_len; stash = Hashtbl.create 32 } in
  let dummy = String.make (block_pt_len tree) '\000' in
  let cts = Crypto.Cell_cipher.encrypt_many cipher (List.init (buckets * z) (fun _ -> dummy)) in
  Servsim.Block_store.write_many store (List.mapi (fun slot ct -> (slot, ct)) cts);
  tree

let setup ~name cfg server cipher rand_int =
  if cfg.capacity < 1 then invalid_arg "Recursive_path_oram.setup: capacity must be >= 1";
  if cfg.fanout < 2 then invalid_arg "Recursive_path_oram.setup: fanout must be >= 2";
  (* Sizes of the recursion levels: n, ceil(n/f), ceil(n/f^2), ... *)
  let sizes = ref [ cfg.capacity ] in
  while List.hd !sizes > cfg.top_cutoff do
    sizes := ((List.hd !sizes + cfg.fanout - 1) / cfg.fanout) :: !sizes
  done;
  let sizes = Array.of_list (List.rev !sizes) in
  (* sizes.(0) = capacity = data tree; sizes.(i) = block count of map tree
     i (which packs the positions of tree i-1).  A tree exists for every
     entry; the client's top map holds the positions of the last tree —
     sizes.(last) entries, <= top_cutoff by construction. *)
  let ntrees = Array.length sizes in
  let trees =
    Array.init ntrees (fun i ->
        let payload_len = if i = 0 then cfg.payload_len else cfg.fanout * 8 in
        make_tree server cipher
          ~name:(Printf.sprintf "%s-t%d" name i)
          ~capacity:sizes.(i) ~payload_len)
  in
  let top_size = sizes.(ntrees - 1) in
  {
    cfg;
    server;
    cipher;
    rand_int;
    trees;
    top = Array.make top_size invalid_pos;
    session_name = name;
    live = 0;
  }

let encode_block tree ~id ~leaf payload =
  let b = Bytes.make (block_pt_len tree) '\000' in
  Bytes.set b 0 '\001';
  Relation.Codec.put_int64 b 1 (Int64.of_int id);
  Relation.Codec.put_int64 b 9 (Int64.of_int leaf);
  Bytes.blit payload 0 b 17 tree.payload_len;
  Bytes.to_string b

let decode_block tree pt =
  if pt.[0] = '\000' then None
  else
    let id = Int64.to_int (Relation.Codec.get_int64 pt 1) in
    let leaf = Int64.to_int (Relation.Codec.get_int64 pt 9) in
    let payload = Bytes.of_string (String.sub pt 17 tree.payload_len) in
    Some (id, leaf, payload)

(* Slots of the path to [leaf], root to leaf, in the per-slot loop order. *)
let path_slots tree leaf =
  List.concat_map
    (fun lev ->
      let bucket = node_at tree ~leaf ~lev in
      List.init z (fun s -> (bucket * z) + s))
    (List.init (tree.levels + 1) Fun.id)

(* One batched round trip per path fetch (a single Multi_get frame) and
   one bulk cipher call for the whole path. *)
let fetch_path t tree leaf =
  List.iter
    (fun pt ->
      match
        decode_block tree
          (pt
          [@lint.declassify
            "client-local stash refill: every block of the fetched path is decoded; \
             the trace is the fixed path-slot schedule"])
      with
      | None -> ()
      | Some (id, l, payload) -> Hashtbl.replace tree.stash id (l, payload))
    (Crypto.Cell_cipher.decrypt_many t.cipher
       (Servsim.Block_store.read_many tree.store (path_slots tree leaf)))

(* One batched round trip per path eviction (a single Multi_put frame),
   slot order identical to the historical per-slot loop. *)
let evict_path t tree leaf =
  let dummy = String.make (block_pt_len tree) '\000' in
  let slots = ref [] in
  let pts = ref [] in
  for lev = tree.levels downto 0 do
    let bucket = node_at tree ~leaf ~lev in
    let chosen = ref [] in
    let count = ref 0 in
    (try
       Hashtbl.iter
         (fun id (l, payload) ->
           if !count >= z then raise Exit;
           if
             ((node_at tree ~leaf:l ~lev = bucket)
             [@lint.declassify
               "greedy eviction fills the fetched path's fixed Z slots per bucket; the \
                written slot set is the whole path regardless of the choice"])
           then begin
             chosen := (id, l, payload) :: !chosen;
             incr count
           end)
         tree.stash
     with Exit -> ());
    List.iter (fun (id, _, _) -> Hashtbl.remove tree.stash id) !chosen;
    let blocks = Array.make z dummy in
    List.iteri (fun i (id, l, payload) -> blocks.(i) <- encode_block tree ~id ~leaf:l payload) !chosen;
    for s = 0 to z - 1 do
      slots := ((bucket * z) + s) :: !slots;
      pts := blocks.(s) :: !pts
    done
  done;
  (* [List.rev] restores push order — the order the per-slot loop used to
     encrypt and write — so the IV stream and the trace are unchanged. *)
  let cts = Crypto.Cell_cipher.encrypt_many t.cipher (List.rev !pts) in
  Servsim.Block_store.write_many tree.store (List.combine (List.rev !slots) cts)

(* Read-and-reassign the position of block [idx] of tree [lvl - 1]:
   returns its old leaf and records [new_leaf].  For lvl = depth the
   positions live in the client's top map; otherwise in tree [lvl]. *)
let rec update_position t ~lvl ~idx ~new_leaf =
  if lvl >= Array.length t.trees then begin
    let old = t.top.(idx) in
    t.top.(idx) <- new_leaf;
    old
  end
  else begin
    let tree = t.trees.(lvl) in
    let blk = idx / t.cfg.fanout and slot = idx mod t.cfg.fanout in
    let my_new = t.rand_int tree.leaves in
    let my_old = update_position t ~lvl:(lvl + 1) ~idx:blk ~new_leaf:my_new in
    let my_old =
      if
        ((my_old = invalid_pos)
        [@lint.declassify
          "fresh map blocks get a uniformly random leaf, so the fetched leaf is \
           uniform either way; the trace is one path fetch"])
      then t.rand_int tree.leaves
      else my_old
    in
    fetch_path t tree
      (my_old
      [@lint.declassify
        "Path ORAM invariant: the fetched leaf is uniformly random and independent \
         of the access sequence"]);
    let payload =
      match
        (Hashtbl.find_opt tree.stash blk
        [@lint.declassify
          "client-local stash lookup; both branches produce the same single \
           fetch/evict of one path"])
      with
      | Some (_, payload) -> payload
      | None ->
          (* Fresh map block: all positions invalid. *)
          let b = Bytes.create tree.payload_len in
          for s = 0 to t.cfg.fanout - 1 do
            Relation.Codec.put_int64 b (s * 8) (Int64.of_int invalid_pos)
          done;
          b
    in
    let old = Int64.to_int (Relation.Codec.get_int64 (Bytes.to_string payload) (slot * 8)) in
    Relation.Codec.put_int64 payload (slot * 8) (Int64.of_int new_leaf);
    Hashtbl.replace tree.stash blk (my_new, payload);
    evict_path t tree
      (my_old
      [@lint.declassify
        "Path ORAM invariant: the fetched leaf is uniformly random and independent \
         of the access sequence"]);
    old
  end

let access t ~key update =
  if key < 0 || key >= t.cfg.capacity then
    invalid_arg "Recursive_path_oram.access: key out of [0, capacity)";
  let data = t.trees.(0) in
  let new_leaf = t.rand_int data.leaves in
  let old_leaf = update_position t ~lvl:1 ~idx:key ~new_leaf in
  let old_leaf =
    if
      ((old_leaf = invalid_pos)
      [@lint.declassify
        "fresh blocks get a uniformly random leaf, so the fetched leaf is uniform \
         either way; the trace is one path fetch"])
    then t.rand_int data.leaves
    else old_leaf
  in
  fetch_path t data
    (old_leaf
    [@lint.declassify
      "Path ORAM invariant: the fetched leaf is uniformly random and independent \
       of the access sequence"]);
  let old =
    (Option.map (fun (_, p) -> Bytes.to_string p) (Hashtbl.find_opt data.stash key)
    [@lint.declassify
      "client-local stash hit check; the surrounding fetch/evict trace is one full \
       path either way"])
  in
  (match update old with
  | Some v ->
      if String.length v <> t.cfg.payload_len then
        invalid_arg "Recursive_path_oram.access: bad payload length";
      if old = None then t.live <- t.live + 1;
      Hashtbl.replace data.stash key (new_leaf, Bytes.of_string v)
  | None ->
      if old <> None then t.live <- t.live - 1;
      Hashtbl.remove data.stash key);
  evict_path t data
    (old_leaf
    [@lint.declassify
      "Path ORAM invariant: the fetched leaf is uniformly random and independent \
       of the access sequence"]);
  old

let read t ~key = access t ~key (fun old -> old)
let write t ~key v = ignore (access t ~key (fun _ -> Some v))
let remove t ~key = ignore (access t ~key (fun _ -> None))

let recursion_depth t = Array.length t.trees

let client_state_bytes t =
  let stash_bytes =
    Array.fold_left
      (fun acc tree -> acc + (Hashtbl.length tree.stash * (16 + tree.payload_len)))
      0 t.trees
  in
  (Array.length t.top * 8) + stash_bytes

let live_blocks t = t.live

let destroy t =
  Array.iter (fun tree -> Servsim.Server.drop_store t.server tree.name) t.trees
