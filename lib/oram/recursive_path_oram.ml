(* Recursive PathORAM.  Tree 0 holds the data blocks; tree i >= 1 holds
   the position map of tree i-1, [fanout] positions per block; the top
   map (positions of the last tree) is a small client-side array.

   Block plaintext layout (uniform within a tree):
     flag (1) | id (8) | leaf (8) | payload (payload_len)
   The assigned leaf rides inside the block so eviction can place stash
   residents without consulting the maps.

   Treetop caching: with [cache_levels] = k > 0 every tree (data and map
   trees alike) keeps its top min(k, levels) levels decrypted
   client-side; an access reads only the path suffix of each tree, and
   all trees' suffix evictions are deferred and flushed in one
   cross-store [Scatter_put] frame at the end of the access — one write
   frame per logical access instead of one per tree.  The fetches stay
   one frame per tree: the leaf of tree i-1 is stored inside tree i's
   blocks, so the reads form a data-dependent chain that cannot be
   batched without a different construction.  With k = 0 the code path,
   trace, IV stream and ciphertexts are bit-identical to the pre-cache
   implementation. *)

let z = 4

type config = {
  capacity : int;
  payload_len : int;
  fanout : int;
  top_cutoff : int;
}

type tree = {
  store : Servsim.Block_store.t;
  name : string;
  levels : int;
  leaves : int;
  payload_len : int; (* payload bytes for this tree's blocks *)
  stash : (int, int * Bytes.t) Hashtbl.t; [@secret] (* id -> (leaf, payload) plaintext *)
  cache_levels : int; (* effective k for this tree: min(requested, levels) *)
  topcache : (int * int * Bytes.t) option array; [@secret]
      (* (2^k - 1) * z slots: decrypted (id, leaf, payload) residents of
         the cached buckets *)
  pbuf : Bytes.t; [@secret] (* reused plaintext path buffer *)
}

type t = {
  cfg : config;
  server : Servsim.Server.t;
  cipher : Crypto.Cell_cipher.t;
  rand_int : int -> int;
  trees : tree array; (* trees.(0) = data; trees.(i) = map of tree i-1 *)
  top : int array; (* positions of the last tree's blocks *)
  session_name : string;
  defer : bool; (* cache on: defer evictions into one Scatter_put per access *)
  mutable pending : (Servsim.Block_store.t * (int * string) list) list;
      (* deferred suffix evictions of the in-flight access, newest first *)
  mutable live : int;
}

let invalid_pos = -1

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let block_pt_len tree = 1 + 8 + 8 + tree.payload_len
let slot_stride tree = (block_pt_len tree / 16 * 16) + 16

let node_at tree ~leaf ~lev = (1 lsl lev) - 1 + (leaf lsr (tree.levels - lev))

let make_tree server cipher ~name ~capacity ~payload_len ~cache_levels =
  let levels = max 1 (ceil_log2 capacity) in
  let leaves = 1 lsl levels in
  let buckets = (2 * leaves) - 1 in
  let store = Servsim.Server.create_store server name in
  Servsim.Block_store.ensure store (buckets * z);
  (* Clamp per tree so the leaf level always stays on the server. *)
  let cache_levels = min cache_levels levels in
  let tree =
    {
      store;
      name;
      levels;
      leaves;
      payload_len;
      stash = Hashtbl.create 32;
      cache_levels;
      topcache = Array.make (((1 lsl cache_levels) - 1) * z) None;
      pbuf = Bytes.create ((levels + 1) * z * (((1 + 8 + 8 + payload_len) / 16 * 16) + 16));
    }
  in
  let dummy = String.make (block_pt_len tree) '\000' in
  let cts = Crypto.Cell_cipher.encrypt_many cipher (List.init (buckets * z) (fun _ -> dummy)) in
  Servsim.Block_store.write_many store (List.mapi (fun slot ct -> (slot, ct)) cts);
  tree

let client_state_bytes t =
  let per_tree =
    Array.fold_left
      (fun acc tree ->
        acc
        + (Hashtbl.length tree.stash * (16 + tree.payload_len))
        (* treetop cache charged at capacity, like the path ORAM's *)
        + (Array.length tree.topcache * (16 + tree.payload_len)))
      0 t.trees
  in
  (Array.length t.top * 8) + per_tree

let sync_client_cost t =
  Servsim.Cost.client_set (Servsim.Server.cost t.server) ~tag:t.session_name
    (client_state_bytes t)

let setup ~name ?(cache_levels = 0) cfg server cipher rand_int =
  if cfg.capacity < 1 then invalid_arg "Recursive_path_oram.setup: capacity must be >= 1";
  if cfg.fanout < 2 then invalid_arg "Recursive_path_oram.setup: fanout must be >= 2";
  if cache_levels < 0 then invalid_arg "Recursive_path_oram.setup: cache_levels must be >= 0";
  (* Sizes of the recursion levels: n, ceil(n/f), ceil(n/f^2), ... *)
  let sizes = ref [ cfg.capacity ] in
  while List.hd !sizes > cfg.top_cutoff do
    sizes := ((List.hd !sizes + cfg.fanout - 1) / cfg.fanout) :: !sizes
  done;
  let sizes = Array.of_list (List.rev !sizes) in
  (* sizes.(0) = capacity = data tree; sizes.(i) = block count of map tree
     i (which packs the positions of tree i-1).  A tree exists for every
     entry; the client's top map holds the positions of the last tree —
     sizes.(last) entries, <= top_cutoff by construction. *)
  let ntrees = Array.length sizes in
  let trees =
    Array.init ntrees (fun i ->
        let payload_len = if i = 0 then cfg.payload_len else cfg.fanout * 8 in
        make_tree server cipher
          ~name:(Printf.sprintf "%s-t%d" name i)
          ~capacity:sizes.(i) ~payload_len ~cache_levels)
  in
  let top_size = sizes.(ntrees - 1) in
  let t =
    {
      cfg;
      server;
      cipher;
      rand_int;
      trees;
      top = Array.make top_size invalid_pos;
      session_name = name;
      defer = cache_levels > 0;
      pending = [];
      live = 0;
    }
  in
  if cache_levels > 0 then sync_client_cost t;
  t

(* Slots of the path suffix (levels [tree.cache_levels]..L) to [leaf],
   root to leaf — the whole path, in the per-slot loop order, with the
   cache off. *)
let path_slots tree leaf =
  List.concat_map
    (fun i ->
      let lev = tree.cache_levels + i in
      let bucket = node_at tree ~leaf ~lev in
      List.init z (fun s -> (bucket * z) + s))
    (List.init (tree.levels + 1 - tree.cache_levels) Fun.id)

(* One batched round trip per path fetch (a single Multi_get frame),
   decrypted into the tree's reused path buffer; cached levels move
   their residents to the stash with no I/O. *)
let fetch_path t tree leaf =
  for lev = 0 to tree.cache_levels - 1 do
    let bucket = node_at tree ~leaf ~lev in
    for s = 0 to z - 1 do
      let j = (bucket * z) + s in
      (match
         (tree.topcache.(j)
         [@lint.declassify
           "client-local treetop cache refill: every resident of the cached path \
            buckets moves to the stash; no server I/O is involved"])
       with
      | None -> ()
      | Some (id, l, payload) -> Hashtbl.replace tree.stash id (l, payload));
      tree.topcache.(j) <- None
    done
  done;
  let pt_len = block_pt_len tree in
  let stride = slot_stride tree in
  List.iteri
    (fun j ct ->
      let off = j * stride in
      if
        Crypto.Cell_cipher.decrypt_to t.cipher ct
          (tree.pbuf
          [@lint.declassify
            "client-local CBC unpadding branches on decrypted plaintext inside the \
             trusted client; the server-visible trace is the fixed path-slot schedule"])
          off
        <> pt_len
      then invalid_arg "Recursive_path_oram: corrupt block";
      if
        ((Bytes.get tree.pbuf off = '\001')
        [@lint.declassify
          "client-local stash refill: every block of the fetched path is decoded; \
           the trace is the fixed path-slot schedule"])
      then begin
        let id = Int64.to_int (Relation.Codec.get_int64_bytes tree.pbuf (off + 1)) in
        let l = Int64.to_int (Relation.Codec.get_int64_bytes tree.pbuf (off + 9)) in
        let payload = Bytes.sub tree.pbuf (off + 17) tree.payload_len in
        Hashtbl.replace tree.stash id (l, payload)
      end)
    (Servsim.Block_store.read_many tree.store (path_slots tree leaf))

(* Greedy eviction along the path to [leaf], deepest buckets first:
   suffix blocks are encoded into the path buffer and encrypted out of it
   in the same leaf-to-root slot order — and the same IV stream — the
   per-slot loop used; cached levels are refilled client-side.  Returns
   the suffix (slot, ciphertext) writes instead of performing them, so
   the caller can either flush immediately (cache off: one Multi_put per
   tree, the historical wire schedule) or defer the whole access into a
   single cross-store Scatter_put. *)
let evict_collect t tree leaf =
  let pt_len = block_pt_len tree in
  let stride = slot_stride tree in
  let k = tree.cache_levels in
  let nsuffix = (tree.levels + 1 - k) * z in
  let slots = Array.make nsuffix 0 in
  let idx = ref 0 in
  for lev = tree.levels downto 0 do
    let bucket = node_at tree ~leaf ~lev in
    let chosen = ref [] in
    let count = ref 0 in
    (try
       Hashtbl.iter
         (fun id (l, payload) ->
           if !count >= z then raise Exit;
           if
             ((node_at tree ~leaf:l ~lev = bucket)
             [@lint.declassify
               "greedy eviction fills the fetched path's fixed Z slots per bucket; the \
                written slot set is the whole path regardless of the choice"])
           then begin
             chosen := (id, l, payload) :: !chosen;
             incr count
           end)
         tree.stash
     with Exit -> ());
    List.iter (fun (id, _, _) -> Hashtbl.remove tree.stash id) !chosen;
    let blocks = Array.make z None in
    List.iteri (fun i b -> blocks.(i) <- Some b) !chosen;
    if lev >= k then
      for s = 0 to z - 1 do
        let off = !idx * stride in
        Bytes.fill tree.pbuf off pt_len '\000';
        (match
           (blocks.(s)
           [@lint.declassify
             "eviction writes all Z slots of every path bucket: dummy vs resident \
              only changes the encrypted plaintext, never the slot schedule"])
         with
        | None -> ()
        | Some (id, l, payload) ->
            Bytes.set tree.pbuf off '\001';
            Relation.Codec.put_int64 tree.pbuf (off + 1) (Int64.of_int id);
            Relation.Codec.put_int64 tree.pbuf (off + 9) (Int64.of_int l);
            Bytes.blit payload 0 tree.pbuf (off + 17) tree.payload_len);
        slots.(!idx) <- (bucket * z) + s;
        incr idx
      done
    else
      for s = 0 to z - 1 do
        tree.topcache.((bucket * z) + s) <- blocks.(s)
      done
  done;
  let ct_len = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:pt_len in
  List.init nsuffix (fun j ->
      let ct = Bytes.create ct_len in
      let _ = Crypto.Cell_cipher.encrypt_from t.cipher tree.pbuf ~off:(j * stride) ~len:pt_len ct 0 in
      (* [ct] is freshly allocated and never written again: freezing it
         avoids one copy per block. *)
      (slots.(j), (Bytes.unsafe_to_string ct [@lint.allow "R2:bytes-unsafe"])))

let evict_path t tree leaf =
  let items = evict_collect t tree leaf in
  if t.defer then t.pending <- (tree.store, items) :: t.pending
  else Servsim.Block_store.write_many tree.store items

(* Flush the access's deferred evictions: all trees' path suffixes in one
   cross-store frame, groups in eviction order (deepest map tree first,
   data tree last). *)
let flush_pending t =
  if t.pending <> [] then begin
    Servsim.Block_store.write_scatter (List.rev t.pending);
    t.pending <- []
  end

(* Read-and-reassign the position of block [idx] of tree [lvl - 1]:
   returns its old leaf and records [new_leaf].  For lvl = depth the
   positions live in the client's top map; otherwise in tree [lvl]. *)
let rec update_position t ~lvl ~idx ~new_leaf =
  if lvl >= Array.length t.trees then begin
    let old = t.top.(idx) in
    t.top.(idx) <- new_leaf;
    old
  end
  else begin
    let tree = t.trees.(lvl) in
    let blk = idx / t.cfg.fanout and slot = idx mod t.cfg.fanout in
    let my_new = t.rand_int tree.leaves in
    let my_old = update_position t ~lvl:(lvl + 1) ~idx:blk ~new_leaf:my_new in
    let my_old =
      if
        ((my_old = invalid_pos)
        [@lint.declassify
          "fresh map blocks get a uniformly random leaf, so the fetched leaf is \
           uniform either way; the trace is one path fetch"])
      then t.rand_int tree.leaves
      else my_old
    in
    fetch_path t tree
      (my_old
      [@lint.declassify
        "Path ORAM invariant: the fetched leaf is uniformly random and independent \
         of the access sequence"]);
    let payload =
      match
        (Hashtbl.find_opt tree.stash blk
        [@lint.declassify
          "client-local stash lookup; both branches produce the same single \
           fetch/evict of one path"])
      with
      | Some (_, payload) -> payload
      | None ->
          (* Fresh map block: all positions invalid. *)
          let b = Bytes.create tree.payload_len in
          for s = 0 to t.cfg.fanout - 1 do
            Relation.Codec.put_int64 b (s * 8) (Int64.of_int invalid_pos)
          done;
          b
    in
    let old = Int64.to_int (Relation.Codec.get_int64_bytes payload (slot * 8)) in
    Relation.Codec.put_int64 payload (slot * 8) (Int64.of_int new_leaf);
    Hashtbl.replace tree.stash blk (my_new, payload);
    evict_path t tree
      (my_old
      [@lint.declassify
        "Path ORAM invariant: the fetched leaf is uniformly random and independent \
         of the access sequence"]);
    old
  end

let access t ~key update =
  if key < 0 || key >= t.cfg.capacity then
    invalid_arg "Recursive_path_oram.access: key out of [0, capacity)";
  let data = t.trees.(0) in
  let new_leaf = t.rand_int data.leaves in
  let old_leaf = update_position t ~lvl:1 ~idx:key ~new_leaf in
  let old_leaf =
    if
      ((old_leaf = invalid_pos)
      [@lint.declassify
        "fresh blocks get a uniformly random leaf, so the fetched leaf is uniform \
         either way; the trace is one path fetch"])
    then t.rand_int data.leaves
    else old_leaf
  in
  fetch_path t data
    (old_leaf
    [@lint.declassify
      "Path ORAM invariant: the fetched leaf is uniformly random and independent \
       of the access sequence"]);
  let old =
    (Option.map (fun (_, p) -> Bytes.to_string p) (Hashtbl.find_opt data.stash key)
    [@lint.declassify
      "client-local stash hit check; the surrounding fetch/evict trace is one full \
       path either way"])
  in
  (match update old with
  | Some v ->
      if String.length v <> t.cfg.payload_len then
        invalid_arg "Recursive_path_oram.access: bad payload length";
      if old = None then t.live <- t.live + 1;
      Hashtbl.replace data.stash key (new_leaf, Bytes.of_string v)
  | None ->
      if old <> None then t.live <- t.live - 1;
      Hashtbl.remove data.stash key);
  evict_path t data
    (old_leaf
    [@lint.declassify
      "Path ORAM invariant: the fetched leaf is uniformly random and independent \
       of the access sequence"]);
  flush_pending t;
  sync_client_cost t;
  old

let read t ~key = access t ~key (fun old -> old)
let write t ~key v = ignore (access t ~key (fun _ -> Some v))
let remove t ~key = ignore (access t ~key (fun _ -> None))

(* Write every tree's cached buckets back through the normal encrypted
   write path — one cross-store frame — so the server-side trees are a
   complete checkpoint (modulo stashes and the top map, which persist
   client-side).  The caches stay authoritative.  A no-op with the cache
   off. *)
let flush t =
  let groups =
    Array.to_list t.trees
    |> List.map (fun tree ->
           let n = Array.length tree.topcache in
           let pt_len = block_pt_len tree in
           let ct_len = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:pt_len in
           ( tree.store,
             List.init n (fun j ->
                 Bytes.fill tree.pbuf 0 pt_len '\000';
                 (match
                    (tree.topcache.(j)
                    [@lint.declassify
                      "flush writes every cached slot, resident or dummy: the written \
                       slot set is the fixed cache prefix regardless of contents"])
                  with
                 | None -> ()
                 | Some (id, l, payload) ->
                     Bytes.set tree.pbuf 0 '\001';
                     Relation.Codec.put_int64 tree.pbuf 1 (Int64.of_int id);
                     Relation.Codec.put_int64 tree.pbuf 9 (Int64.of_int l);
                     Bytes.blit payload 0 tree.pbuf 17 tree.payload_len);
                 let ct = Bytes.create ct_len in
                 let _ = Crypto.Cell_cipher.encrypt_from t.cipher tree.pbuf ~off:0 ~len:pt_len ct 0 in
                 (j, (Bytes.unsafe_to_string ct [@lint.allow "R2:bytes-unsafe"]))) ))
  in
  Servsim.Block_store.write_scatter groups

let recursion_depth t = Array.length t.trees

let cache_levels t = Array.fold_left (fun acc tree -> max acc tree.cache_levels) 0 t.trees

let live_blocks t = t.live

let destroy t =
  Array.iter (fun tree -> Servsim.Server.drop_store t.server tree.name) t.trees;
  Servsim.Cost.client_set (Servsim.Server.cost t.server) ~tag:t.session_name 0
