(** Trivial linear-scan ORAM: every access reads and re-encrypts the whole
    array.  Obviously oblivious (the access pattern is the full scan,
    whatever the key), with O(n) access cost and O(1) client state.

    Serves two purposes: a simple correctness oracle for {!Path_oram} in
    the tests, and the ablation baseline for Table III ("what does the
    tree buy us"). *)

type t

type config = {
  capacity : int;
  key_len : int;
  payload_len : int;
}

val setup :
  name:string ->
  ?cache_levels:int ->
  config -> Servsim.Server.t -> Crypto.Cell_cipher.t -> (int -> int) -> t
(** The random source is accepted for interface parity and unused, as is
    [cache_levels] (a linear scan has no tree top to cache). *)

val access : t -> key:string -> (string option -> string option) -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val dummy_access : t -> unit
val read : t -> key:string -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val write : t -> key:string -> string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val remove : t -> key:string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]

val flush : t -> unit
(** No-op: the linear ORAM holds no client-side cache. *)

val live_blocks : t -> int
val client_state_bytes : t -> int
val access_count : t -> int
val destroy : t -> unit
