(** Common interface of key-value ORAM constructions (Definition 4 of the
    paper).

    An ORAM stores encrypted (key, value) pairs on the server such that
    the server's view of an access is independent of the key accessed and
    of whether the access is a read, a write, or a removal.  All three
    logical operations are implemented by one physical [access]
    procedure; the [update] function runs inside the client and decides,
    invisibly to the server, what happens to the stored value.

    {!Path_oram} and {!Linear_oram} satisfy this signature (checked
    below); {!Recursive_path_oram} and {!Omap} have integer- and
    budgeted-value-keyed variants of the same shape. *)

module type S = sig
  type t

  type config = {
    capacity : int;  (** maximum number of live (key, value) pairs *)
    key_len : int;  (** fixed byte width of keys *)
    payload_len : int;  (** fixed byte width of values *)
  }

  val setup :
    name:string ->
    ?cache_levels:int ->
    config -> Servsim.Server.t -> Crypto.Cell_cipher.t -> (int -> int) -> t
  (** [setup ~name cfg server cipher rand_int] initialises the
      server-side encrypted memory in a block store called [name] and the
      client-side secret state.  [rand_int bound] must return a uniform
      integer in [[0, bound)].  [cache_levels] (default 0) asks for
      treetop caching: the top k tree levels are held decrypted
      client-side and accesses touch only the path suffix below them.
      Constructions without a tree top (the linear scan) ignore it. *)

  val access : t -> key:string -> (string option -> string option) -> string option
  (** One oblivious access: the previous value bound to [key] (or [None])
      is passed to [update]; the result replaces it ([None] removes the
      binding).  Returns the previous value.  The server-visible behaviour
      is identical for all keys and all [update] functions. *)

  val dummy_access : t -> unit
  (** A physical access carrying no logical operation, indistinguishable
      from {!access} to the server. *)

  val read : t -> key:string -> string option
  val write : t -> key:string -> string -> unit
  val remove : t -> key:string -> unit

  val flush : t -> unit
  (** Write any client-side cached tree levels back to the server through
      the normal encrypted write path (checkpoint before persist/close).
      No-op when nothing is cached. *)

  val live_blocks : t -> int
  val client_state_bytes : t -> int
  val access_count : t -> int
  val destroy : t -> unit
end

(* Compile-time conformance checks. *)
module Check_path : S = Path_oram
module Check_linear : S = Linear_oram
