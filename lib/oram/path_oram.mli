(** Non-recursive PathORAM (Stefanov et al., JACM 2018) — the construction
    the paper adopts (§III-C, Definition 4), with Z = 4 blocks per bucket
    and the client-side stash capped at 7·⌈log2 n⌉ blocks for reporting
    purposes (the paper's setting, §VII-A).

    The server holds a complete binary tree of buckets in one block store;
    every bucket slot always contains a ciphertext of the same length, and
    every access reads and rewrites exactly one root-to-leaf path, so the
    server's view of an access is (path ciphertexts, fresh re-encryptions)
    for a uniformly random leaf — independent of the key and operation.

    The client holds the position map and the stash; their byte sizes are
    charged to the cost ledger (this is the O(n) client memory of the
    paper's Fig. 5). *)

type t

type config = {
  capacity : int;
  key_len : int;
  payload_len : int;
}

val setup :
  name:string ->
  ?cache_levels:int ->
  config -> Servsim.Server.t -> Crypto.Cell_cipher.t -> (int -> int) -> t
(** [setup ~name cfg server cipher rand_int] builds the encrypted tree on
    [server] in a fresh store [name].  [rand_int bound] must return a
    uniform integer in [[0, bound)] — pass {!Crypto.Rng.int} or
    {!Crypto.Ctr_prg.int} partially applied.

    [cache_levels] (default 0) keeps the top k levels of the tree
    decrypted client-side (treetop caching): accesses then read and
    rewrite only the path suffix below the cache, cutting per-access
    bandwidth by k/(L+1) while the server-visible suffix trace stays
    independent of keys and operations.  Clamped to [levels t], so the
    leaf level is always served by the server.  The cached bytes are
    charged to the client-memory ledger.  With 0 the behaviour — trace,
    IV stream, ciphertexts — is bit-identical to the uncached
    implementation. *)

val access : t -> key:string -> (string option -> string option) -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val dummy_access : t -> unit
val read : t -> key:string -> string option [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val write : t -> key:string -> string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]
val remove : t -> key:string -> unit [@@lint.declassify "ORAM boundary: the server-visible trace is independent of key and payload (audited in the implementation); results are the trusted client's own plaintext"]

val flush : t -> unit
(** Write the treetop cache back to the server through the normal
    encrypted write path (one batched round trip), making the server-side
    tree a complete checkpoint.  The cache stays authoritative for
    subsequent accesses.  No-op (no I/O, no trace events) when
    [cache_levels] is 0. *)

val live_blocks : t -> int
val client_state_bytes : t -> int
val destroy : t -> unit

(** {2 Introspection (tests and benches)} *)

val levels : t -> int
(** Tree height L; the tree has 2^L leaves and 2^(L+1)-1 buckets. *)

val cache_levels : t -> int
(** Effective treetop-cache depth k (after clamping); 0 = cache off. *)

val max_stash_seen : t -> int
(** High-water mark of stash occupancy (blocks), measured after eviction. *)

val stash_limit : t -> int
(** The paper's 7·⌈log2 capacity⌉ cap. *)

val stash_overflows : t -> int
(** Number of accesses after which the stash exceeded {!stash_limit}. *)

val access_count : t -> int
(** Total physical accesses (including dummy accesses and setup writes are
    excluded; one per {!access}/{!dummy_access} call). *)
