(* AVL tree over an integer-addressed ORAM.

   Per operation, nodes are read through a transient client cache (each
   distinct node costs one ORAM access), mutations are buffered and
   flushed as ORAM writes, and the access count is padded with dummy
   accesses to a fixed per-operation budget, so the server observes
   (capacity, op count) and nothing else. *)

type backing = {
  read : int -> string option;
  write : int -> string -> unit;
  remove : int -> unit;
  dummy : unit -> unit;
  client_bytes : unit -> int;
  flush : unit -> unit;
  destroy : unit -> unit;
}

let path_oram_backing ~name ~capacity ~node_len ?(cache_levels = 0) server cipher rand =
  let o =
    Path_oram.setup ~name ~cache_levels
      { capacity; key_len = 8; payload_len = node_len } server cipher rand
  in
  {
    read = (fun id -> Path_oram.read o ~key:(Relation.Codec.encode_int id));
    write = (fun id v -> Path_oram.write o ~key:(Relation.Codec.encode_int id) v);
    remove = (fun id -> Path_oram.remove o ~key:(Relation.Codec.encode_int id));
    dummy = (fun () -> Path_oram.dummy_access o);
    client_bytes = (fun () -> Path_oram.client_state_bytes o);
    flush = (fun () -> Path_oram.flush o);
    destroy = (fun () -> Path_oram.destroy o);
  }

let recursive_backing ~name ~capacity ~node_len ?(cache_levels = 0) server cipher rand =
  let o =
    Recursive_path_oram.setup ~name ~cache_levels
      { capacity; payload_len = node_len; fanout = 16; top_cutoff = 16 }
      server cipher rand
  in
  {
    read = (fun id -> Recursive_path_oram.read o ~key:id);
    write = (fun id v -> Recursive_path_oram.write o ~key:id v);
    remove = (fun id -> Recursive_path_oram.remove o ~key:id);
    dummy =
      (fun () ->
        (* A read of a fixed slot is physically indistinguishable from any
           other access. *)
        ignore (Recursive_path_oram.read o ~key:0));
    client_bytes = (fun () -> Recursive_path_oram.client_state_bytes o);
    flush = (fun () -> Recursive_path_oram.flush o);
    destroy = (fun () -> Recursive_path_oram.destroy o);
  }

type config = {
  capacity : int;
  key_len : int;
  value_len : int;
}

let node_len cfg = cfg.key_len + cfg.value_len + 24

type node = {
  key : string;
  value : string;
  left : int;
  right : int;
  height : int;
}

let nil = -1

type t = {
  cfg : config;
  backing : backing;
  mutable root : int;
  mutable size : int;
  mutable next_id : int;
  mutable free : int list;
  (* Per-operation transient state: *)
  cache : (int, node) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  removed : (int, unit) Hashtbl.t;
  mutable op_accesses : int;
}

let create cfg backing =
  {
    cfg;
    backing;
    root = nil;
    size = 0;
    next_id = 0;
    free = [];
    cache = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    removed = Hashtbl.create 16;
    op_accesses = 0;
  }

let encode_node t nd =
  let b = Bytes.create (node_len t.cfg) in
  Bytes.blit_string nd.key 0 b 0 t.cfg.key_len;
  Bytes.blit_string nd.value 0 b t.cfg.key_len t.cfg.value_len;
  let base = t.cfg.key_len + t.cfg.value_len in
  Relation.Codec.put_int64 b base (Int64.of_int nd.left);
  Relation.Codec.put_int64 b (base + 8) (Int64.of_int nd.right);
  Relation.Codec.put_int64 b (base + 16) (Int64.of_int nd.height);
  Bytes.to_string b

let decode_node t s =
  let base = t.cfg.key_len + t.cfg.value_len in
  {
    key = String.sub s 0 t.cfg.key_len;
    value = String.sub s t.cfg.key_len t.cfg.value_len;
    left = Int64.to_int (Relation.Codec.get_int64 s base);
    right = Int64.to_int (Relation.Codec.get_int64 s (base + 8));
    height = Int64.to_int (Relation.Codec.get_int64 s (base + 16));
  }

let read_node t id =
  match Hashtbl.find_opt t.cache id with
  | Some nd -> nd
  | None -> (
      t.op_accesses <- t.op_accesses + 1;
      match t.backing.read id with
      | Some s ->
          let nd = decode_node t s in
          Hashtbl.replace t.cache id nd;
          nd
      | None -> failwith (Printf.sprintf "Omap: dangling node id %d" id))

let write_node t id nd =
  Hashtbl.replace t.cache id nd;
  Hashtbl.replace t.dirty id ();
  Hashtbl.remove t.removed id

let alloc_node t nd =
  let id =
    match t.free with
    | id :: rest ->
        t.free <- rest;
        id
    | [] ->
        let id = t.next_id in
        if id >= t.cfg.capacity then failwith "Omap: capacity exceeded";
        t.next_id <- id + 1;
        id
  in
  write_node t id nd;
  id

let free_node t id =
  Hashtbl.remove t.cache id;
  Hashtbl.remove t.dirty id;
  Hashtbl.replace t.removed id ();
  t.free <- id :: t.free

let height t id = if id = nil then 0 else (read_node t id).height

let with_height t nd =
  { nd with height = 1 + max (height t nd.left) (height t nd.right) }

let balance_factor t nd = height t nd.left - height t nd.right

(* Rotations return the id of the new subtree root. *)
let rotate_right t id =
  let nd = read_node t id in
  let lid = nd.left in
  let l = read_node t lid in
  let nd' = with_height t { nd with left = l.right } in
  write_node t id nd';
  let l' = with_height t { l with right = id } in
  write_node t lid l';
  lid

let rotate_left t id =
  let nd = read_node t id in
  let rid = nd.right in
  let r = read_node t rid in
  let nd' = with_height t { nd with right = r.left } in
  write_node t id nd';
  let r' = with_height t { r with left = id } in
  write_node t rid r';
  rid

let rebalance t id =
  let nd = with_height t (read_node t id) in
  write_node t id nd;
  let bf = balance_factor t nd in
  if bf > 1 then begin
    let l = read_node t nd.left in
    if height t l.left >= height t l.right then rotate_right t id
    else begin
      let new_left = rotate_left t nd.left in
      write_node t id { nd with left = new_left };
      rotate_right t id
    end
  end
  else if bf < -1 then begin
    let r = read_node t nd.right in
    if height t r.right >= height t r.left then rotate_left t id
    else begin
      let new_right = rotate_right t nd.right in
      write_node t id { nd with right = new_right };
      rotate_left t id
    end
  end
  else id

(* Fixed access budgets: the AVL height bound is 1.44·log2(n+2). *)
let max_depth t =
  let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
  (144 * (log2 0 (t.cfg.capacity + 2) + 2) / 100) + 2

let find_budget t = max_depth t + 1
let insert_budget t = (4 * max_depth t) + 8
let delete_budget t = (6 * max_depth t) + 16

let begin_op t = t.op_accesses <- 0

let finish_op t ~budget =
  (* Flush buffered writes and removals, then pad to the fixed budget. *)
  Hashtbl.iter
    (fun id () ->
      t.op_accesses <- t.op_accesses + 1;
      t.backing.write id (encode_node t (Hashtbl.find t.cache id)))
    t.dirty;
  Hashtbl.iter
    (fun id () ->
      t.op_accesses <- t.op_accesses + 1;
      t.backing.remove id)
    t.removed;
  if t.op_accesses > budget then
    failwith
      (Printf.sprintf "Omap: access budget exceeded (%d > %d)" t.op_accesses budget);
  while t.op_accesses < budget do
    t.backing.dummy ();
    t.op_accesses <- t.op_accesses + 1
  done;
  Hashtbl.reset t.cache;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.removed

let check_key t key =
  if String.length key <> t.cfg.key_len then invalid_arg "Omap: bad key length"

let find t key =
  check_key t key;
  begin_op t;
  let rec go id =
    if id = nil then None
    else
      let nd = read_node t id in
      let c =
        String.compare key
          (nd.key
          [@lint.declassify
            "client-side AVL navigation; every node touch is an oblivious backing-ORAM \
             access and the op is padded to a fixed budget by finish_op"])
      in
      if c = 0 then Some nd.value else if c < 0 then go nd.left else go nd.right
  in
  let res = go t.root in
  finish_op t ~budget:(find_budget t);
  res

let insert t key value =
  check_key t key;
  if String.length value <> t.cfg.value_len then invalid_arg "Omap: bad value length";
  begin_op t;
  let rec go id =
    if id = nil then begin
      t.size <- t.size + 1;
      alloc_node t { key; value; left = nil; right = nil; height = 1 }
    end
    else
      let nd = read_node t id in
      let c =
        String.compare key
          (nd.key
          [@lint.declassify
            "client-side AVL navigation; every node touch is an oblivious backing-ORAM \
             access and the op is padded to a fixed budget by finish_op"])
      in
      if c = 0 then begin
        write_node t id { nd with value };
        id
      end
      else if c < 0 then begin
        let new_left = go nd.left in
        write_node t id { (read_node t id) with left = new_left };
        rebalance t id
      end
      else begin
        let new_right = go nd.right in
        write_node t id { (read_node t id) with right = new_right };
        rebalance t id
      end
  in
  t.root <- go t.root;
  finish_op t ~budget:(insert_budget t)

let delete t key =
  check_key t key;
  begin_op t;
  let rec min_node id =
    let nd = read_node t id in
    if nd.left = nil then nd else min_node nd.left
  in
  let rec go id key =
    if id = nil then nil
    else
      let nd = read_node t id in
      let c =
        String.compare key
          (nd.key
          [@lint.declassify
            "client-side AVL navigation; every node touch is an oblivious backing-ORAM \
             access and the op is padded to a fixed budget by finish_op"])
      in
      if c < 0 then begin
        let new_left = go nd.left key in
        write_node t id { (read_node t id) with left = new_left };
        rebalance t id
      end
      else if c > 0 then begin
        let new_right = go nd.right key in
        write_node t id { (read_node t id) with right = new_right };
        rebalance t id
      end
      else begin
        t.size <- t.size - 1;
        if nd.left = nil then begin
          free_node t id;
          nd.right
        end
        else if nd.right = nil then begin
          free_node t id;
          nd.left
        end
        else begin
          let succ = min_node nd.right in
          (* Replace this node's contents with the successor's, then
             delete the successor from the right subtree.  The recursive
             deletion re-increments nothing: compensate the size. *)
          t.size <- t.size + 1;
          let new_right = go nd.right succ.key in
          write_node t id
            { (read_node t id) with key = succ.key; value = succ.value; right = new_right };
          rebalance t id
        end
      end
  in
  t.root <- go t.root key;
  finish_op t ~budget:(delete_budget t)

let size t = t.size

let client_state_bytes t = t.backing.client_bytes () + 24 + (8 * List.length t.free)

let accesses_per_op t = delete_budget t

let check_invariants t =
  let ok = ref true in
  let rec walk id lo hi =
    if id = nil then 0
    else begin
      let nd =
        (match t.backing.read id with
         | Some s -> decode_node t s
         | None ->
             ok := false;
             { key = ""; value = ""; left = nil; right = nil; height = 0 })
        [@lint.declassify
          "client-local invariant checker (tests only): it walks the whole tree \
           through the oblivious backing ORAM"]
      in
      let ndkey =
        (nd.key
        [@lint.declassify
          "client-local invariant checker (tests only): it walks the whole tree \
           through the oblivious backing ORAM"])
      in
      (match lo with Some l when String.compare ndkey l <= 0 -> ok := false | _ -> ());
      (match hi with Some h when String.compare ndkey h >= 0 -> ok := false | _ -> ());
      let hl = walk nd.left lo (Some ndkey) in
      let hr = walk nd.right (Some ndkey) hi in
      if abs (hl - hr) > 1 then ok := false;
      if nd.height <> 1 + max hl hr then ok := false;
      1 + max hl hr
    end
  in
  ignore (walk t.root None None);
  (* Size check. *)
  let rec count id =
    if id = nil then 0
    else
      match t.backing.read id with
      | Some s ->
          let nd = decode_node t s in
          1 + count nd.left + count nd.right
      | None -> 0
  in
  !ok && count t.root = t.size

let to_sorted_list t =
  let rec go id acc =
    if id = nil then acc
    else
      match t.backing.read id with
      | Some s ->
          let nd = decode_node t s in
          go nd.left ((nd.key, nd.value) :: go nd.right acc)
      | None -> acc
  in
  go t.root []

let flush t = t.backing.flush ()

let destroy t = t.backing.destroy ()
