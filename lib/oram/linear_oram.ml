type config = {
  capacity : int;
  key_len : int;
  payload_len : int;
}

type t = {
  cfg : config;
  store : Servsim.Block_store.t;
  server : Servsim.Server.t;
  name : string;
  cipher : Crypto.Cell_cipher.t;
  sbuf : Bytes.t; [@secret]
      (* reused plaintext scan buffer, [capacity] blocks wide: every access
         decrypts the whole array into it and re-encrypts out of it *)
  mutable live : int;
  mutable accesses : int;
}

let block_pt_len cfg = 1 + cfg.key_len + cfg.payload_len

(* Scan-buffer slot width: [decrypt_to] needs room for the padded CBC
   body, which is also plenty for encoding the plaintext on the way out. *)
let slot_stride cfg = (block_pt_len cfg / 16 * 16) + 16

(* [cache_levels] is accepted for interface parity with the tree ORAMs
   and ignored: a linear scan has no tree top to cache, and its trace
   (the full store, every access) is already canonical. *)
let setup ~name ?cache_levels:_ cfg server cipher _rand =
  if cfg.capacity < 1 then invalid_arg "Linear_oram.setup: capacity must be >= 1";
  let store = Servsim.Server.create_store server name in
  Servsim.Block_store.ensure store cfg.capacity;
  let dummy = String.make (block_pt_len cfg) '\000' in
  let cts = Crypto.Cell_cipher.encrypt_many cipher (List.init cfg.capacity (fun _ -> dummy)) in
  Servsim.Block_store.write_many store (List.mapi (fun slot ct -> (slot, ct)) cts);
  {
    cfg;
    store;
    server;
    name;
    cipher;
    sbuf = Bytes.create (cfg.capacity * slot_stride cfg);
    live = 0;
    accesses = 0;
  }

(* One full scan: decrypt every slot into the reused buffer, apply the
   logical operation to the matching slot (or claim the first free slot
   on insert) in place, re-encrypt all.  The scan is two batched round
   trips: one Multi_get for the whole array, one Multi_put to rewrite it.
   Per-block work is offset views into the buffer — the only per-block
   allocation is each outgoing ciphertext. *)
let access t ~key update =
  if String.length key <> t.cfg.key_len then invalid_arg "Linear_oram.access: bad key length";
  let n = t.cfg.capacity in
  let pt_len = block_pt_len t.cfg in
  let stride = slot_stride t.cfg in
  List.iteri
    (fun i ct ->
      if
        Crypto.Cell_cipher.decrypt_to t.cipher ct
          (t.sbuf
          [@lint.declassify
            "client-local CBC unpadding branches on decrypted plaintext inside the \
             trusted client; the server-visible trace is always the full store"])
          (i * stride)
        <> pt_len
      then invalid_arg "Linear_oram: corrupt block")
    (Servsim.Block_store.read_many t.store (List.init n Fun.id));
  let slot_matches off =
    Bytes.get t.sbuf off = '\001'
    &&
    let rec go i = i >= t.cfg.key_len || (Bytes.get t.sbuf (off + 1 + i) = key.[i] && go (i + 1)) in
    go 0
  in
  let found = ref None in
  let found_at = ref (-1) in
  for i = 0 to n - 1 do
    let off = i * stride in
    if
      ((!found_at < 0 && slot_matches off)
      [@lint.declassify
        "linear ORAM reads and rewrites every slot on every access: the server-visible \
         trace is the full store regardless of key or contents"])
    then begin
      found :=
        Some
          ((Bytes.sub_string t.sbuf (off + 1 + t.cfg.key_len) t.cfg.payload_len)
          [@lint.declassify
            "linear ORAM reads and rewrites every slot on every access: the \
             server-visible trace is the full store regardless of key or contents"]);
      found_at := i
    end
  done;
  (match update !found with
  | Some v ->
      if String.length v <> t.cfg.payload_len then
        invalid_arg "Linear_oram.access: bad payload length";
      let slot =
        if !found_at >= 0 then !found_at
        else begin
          let free = ref (-1) in
          for i = n - 1 downto 0 do
            if
              ((Bytes.get t.sbuf (i * stride) = '\000')
              [@lint.declassify
                "linear ORAM reads and rewrites every slot on every access: the \
                 server-visible trace is the full store regardless of key or contents"])
            then free := i
          done;
          if !free < 0 then failwith "Linear_oram: capacity exceeded";
          t.live <- t.live + 1;
          !free
        end
      in
      let off = slot * stride in
      Bytes.set t.sbuf off '\001';
      Bytes.blit_string key 0 t.sbuf (off + 1) t.cfg.key_len;
      Bytes.blit_string v 0 t.sbuf (off + 1 + t.cfg.key_len) t.cfg.payload_len
  | None ->
      if !found_at >= 0 then begin
        Bytes.fill t.sbuf (!found_at * stride) pt_len '\000';
        t.live <- t.live - 1
      end);
  let ct_len = Crypto.Cell_cipher.ciphertext_len ~plaintext_len:pt_len in
  Servsim.Block_store.write_many t.store
    (List.init n (fun i ->
         let ct = Bytes.create ct_len in
         let _ = Crypto.Cell_cipher.encrypt_from t.cipher t.sbuf ~off:(i * stride) ~len:pt_len ct 0 in
         (* [ct] is freshly allocated and never written again: freezing it
            avoids one copy per block. *)
         (i, (Bytes.unsafe_to_string ct [@lint.allow "R2:bytes-unsafe"]))));
  t.accesses <- t.accesses + 1;
  !found

let dummy_access t =
  (* A scan keyed on a reserved key no caller can use (wrong length is not
     allowed, so use all-0xff, which value codecs never produce). *)
  ignore (access t ~key:(String.make t.cfg.key_len '\xff') (fun old -> old))

let read t ~key = access t ~key (fun old -> old)
let write t ~key v = ignore (access t ~key (fun _ -> Some v))
let remove t ~key = ignore (access t ~key (fun _ -> None))

let flush _ = ()

let live_blocks t = t.live
let client_state_bytes _ = 0
let access_count t = t.accesses

let destroy t = Servsim.Server.drop_store t.server t.name
