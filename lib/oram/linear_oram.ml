type config = {
  capacity : int;
  key_len : int;
  payload_len : int;
}

type t = {
  cfg : config;
  store : Servsim.Block_store.t;
  server : Servsim.Server.t;
  name : string;
  cipher : Crypto.Cell_cipher.t;
  mutable live : int;
  mutable accesses : int;
}

let block_pt_len cfg = 1 + cfg.key_len + cfg.payload_len
let encode_dummy cfg = String.make (block_pt_len cfg) '\000'

let encode_block cfg ~key ~payload =
  let b = Bytes.create (block_pt_len cfg) in
  Bytes.set b 0 '\001';
  Bytes.blit_string key 0 b 1 cfg.key_len;
  Bytes.blit_string payload 0 b (1 + cfg.key_len) cfg.payload_len;
  Bytes.to_string b

let decode_block cfg pt =
  if pt.[0] = '\000' then None
  else Some (String.sub pt 1 cfg.key_len, String.sub pt (1 + cfg.key_len) cfg.payload_len)

let setup ~name cfg server cipher _rand =
  if cfg.capacity < 1 then invalid_arg "Linear_oram.setup: capacity must be >= 1";
  let store = Servsim.Server.create_store server name in
  Servsim.Block_store.ensure store cfg.capacity;
  let dummy = encode_dummy cfg in
  let cts = Crypto.Cell_cipher.encrypt_many cipher (List.init cfg.capacity (fun _ -> dummy)) in
  Servsim.Block_store.write_many store (List.mapi (fun slot ct -> (slot, ct)) cts);
  { cfg; store; server; name; cipher; live = 0; accesses = 0 }

(* One full scan: decrypt every slot, apply the logical operation to the
   matching slot (or claim the first free slot on insert), re-encrypt all.
   The scan is two batched round trips: one Multi_get for the whole array,
   one Multi_put to rewrite it. *)
let access t ~key update =
  if String.length key <> t.cfg.key_len then invalid_arg "Linear_oram.access: bad key length";
  let n = t.cfg.capacity in
  let plain =
    (Array.of_list
       (List.map (decode_block t.cfg)
          (Crypto.Cell_cipher.decrypt_many t.cipher
             (Servsim.Block_store.read_many t.store (List.init n Fun.id))))
    [@lint.declassify
      "linear ORAM reads and rewrites every slot on every access: the server-visible \
       trace is the full store regardless of key or contents"])
  in
  let found = ref None in
  let found_at = ref (-1) in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (k, payload) when k = key && !found_at < 0 ->
          found := Some payload;
          found_at := i
      | Some _ | None -> ())
    plain;
  (match update !found with
  | Some v ->
      if String.length v <> t.cfg.payload_len then
        invalid_arg "Linear_oram.access: bad payload length";
      let slot =
        if !found_at >= 0 then !found_at
        else begin
          let free = ref (-1) in
          Array.iteri (fun i s -> if s = None && !free < 0 then free := i) plain;
          if !free < 0 then failwith "Linear_oram: capacity exceeded";
          t.live <- t.live + 1;
          !free
        end
      in
      plain.(slot) <- Some (key, v)
  | None ->
      if !found_at >= 0 then begin
        plain.(!found_at) <- None;
        t.live <- t.live - 1
      end);
  let dummy = encode_dummy t.cfg in
  let pts =
    List.init n (fun i ->
        match plain.(i) with
        | None -> dummy
        | Some (k, payload) -> encode_block t.cfg ~key:k ~payload)
  in
  Servsim.Block_store.write_many t.store
    (List.mapi (fun i ct -> (i, ct)) (Crypto.Cell_cipher.encrypt_many t.cipher pts));
  t.accesses <- t.accesses + 1;
  !found

let dummy_access t =
  (* A scan keyed on a reserved key no caller can use (wrong length is not
     allowed, so use all-0xff, which value codecs never produce). *)
  ignore (access t ~key:(String.make t.cfg.key_len '\xff') (fun old -> old))

let read t ~key = access t ~key (fun old -> old)
let write t ~key v = ignore (access t ~key (fun _ -> Some v))
let remove t ~key = ignore (access t ~key (fun _ -> None))

let live_blocks t = t.live
let client_state_bytes _ = 0
let access_count t = t.accesses

let destroy t = Servsim.Server.drop_store t.server t.name
