open Relation
module Wire = Servsim.Wire
module Handler = Servsim.Handler
module Trace = Servsim.Trace

(* The engine side of the daemon's dynamic FD sessions: adapts
   [Core.Dynamic] to the closure interface [Servsim.Handler] dispatches
   through.  Servsim sits below core in the library graph (the engine's
   block stores are servsim stores), so this glue lives in its own
   library and registers itself at executable startup ({!install}).

   Determinism is the load-bearing property here: [Store.Tenant]
   persists a dynamic session as its update history alone and rebuilds
   it by re-dispatching that history through a fresh provider, so every
   response — errors included — and every trace event must be a pure
   function of the [Begin_dynamic] request and the updates after it.
   [Core.Dynamic] gives us that: all client randomness derives from the
   session seed, and rejected updates raise before touching any ORAM. *)

let encode_row values = Array.to_list (Array.map Codec.encode_value values)

let decode_row cells =
  try Result.Ok (Array.of_list (List.map Codec.decode_value cells))
  with Invalid_argument msg -> Result.Error ("malformed cell: " ^ msg)

let fd_status (fd, valid) =
  {
    Wire.fd_lhs = Int64.of_int (Attrset.to_int fd.Fdbase.Fd.lhs);
    fd_rhs = fd.Fdbase.Fd.rhs;
    fd_valid = valid;
  }

let fd_of_status { Wire.fd_lhs; fd_rhs; fd_valid } =
  ({ Fdbase.Fd.lhs = Attrset.of_int (Int64.to_int fd_lhs); rhs = fd_rhs }, fd_valid)

let fds_reply dyn statuses =
  let trace = Core.Session.trace (Core.Dynamic.session dyn) in
  Wire.Fds_reply
    {
      fds = List.map fd_status statuses;
      dyn_full = Trace.full_digest trace;
      dyn_shape = Trace.shape_digest trace;
      dyn_events = Trace.count trace;
    }

let dispatch dyn req =
  match req with
  | Wire.Insert_row cells -> (
      match decode_row cells with
      | Result.Error msg -> Wire.Error msg
      | Result.Ok values -> (
          match Core.Dynamic.insert dyn values with
          | id -> Wire.Row_id id
          | exception Invalid_argument msg -> Wire.Error msg))
  | Wire.Delete_row id ->
      Core.Dynamic.delete dyn ~id;
      Wire.Ok
  | Wire.Revalidate -> fds_reply dyn (Core.Dynamic.revalidate dyn)
  | _ -> Wire.Error "not a dynamic update verb"

let begin_dynamic ?oram_cache_levels req =
  match req with
  | Wire.Begin_dynamic { seed; capacity; max_lhs; cols; rows } -> (
      if rows = [] then Result.Error "Begin_dynamic: empty table"
      else if cols > Attrset.max_attrs then
        Result.Error
          (Printf.sprintf "Begin_dynamic: arity %d exceeds the %d-column relation model" cols
             Attrset.max_attrs)
      else
        let decoded =
          List.fold_left
            (fun acc row ->
              match (acc, decode_row row) with
              | Result.Error _, _ -> acc
              | _, (Result.Error _ as e) -> e
              | Result.Ok rs, Result.Ok r -> Result.Ok (r :: rs))
            (Result.Ok []) rows
        in
        match decoded with
        | Result.Error msg -> Result.Error msg
        | Result.Ok rev_rows -> (
            let table =
              try
                let schema = Schema.make (Array.init cols (Printf.sprintf "c%d")) in
                Result.Ok (Table.make schema (Array.of_list (List.rev rev_rows)))
              with Invalid_argument msg -> Result.Error msg
            in
            match table with
            | Result.Error msg -> Result.Error msg
            | Result.Ok table -> (
                let capacity = if capacity = 0 then None else Some capacity in
                let max_lhs = if max_lhs = 0 then None else Some max_lhs in
                match
                  Core.Dynamic.start ~seed:(Int64.to_int seed) ?capacity ?max_lhs
                    ?oram_cache_levels table
                with
                | dyn ->
                    let d =
                      {
                        Handler.dyn_dispatch = dispatch dyn;
                        dyn_release = (fun () -> Core.Dynamic.release dyn);
                      }
                    in
                    let initial = List.map (fun fd -> (fd, true)) (Core.Dynamic.fds dyn) in
                    Result.Ok (d, fds_reply dyn initial)
                | exception Invalid_argument msg -> Result.Error msg)))
  | _ -> Result.Error "not a Begin_dynamic request"

let install ?oram_cache_levels () =
  Handler.set_dyn_provider (begin_dynamic ?oram_cache_levels)
