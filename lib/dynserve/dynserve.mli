(** Serving glue for dynamic FD sessions (§V over the wire).

    Adapts {!Core.Dynamic} — the Ex-ORAM maintenance engine that keeps
    every lattice structure alive so an update costs
    O(log n · polyloglog n) instead of a re-discovery — to the provider
    hook of {!Servsim.Handler}, which dispatches the protocol-v5 verbs
    [Begin_dynamic]/[Insert_row]/[Delete_row]/[Revalidate].

    Everything served through this module is deterministic in the
    [Begin_dynamic] seed and the update sequence: {!Store.Tenant}
    persists a session as its update history and rebuilds it by
    re-dispatching that history through a fresh provider, and the load
    harness asserts the daemon's [Fds_reply] digests bit-equal a
    one-shot library run of the same sequence. *)

val install : ?oram_cache_levels:int -> unit -> unit
(** Register this engine as the process's dynamic-session provider
    (see {!Servsim.Handler.set_dyn_provider}).  Idempotent; call once
    at executable startup, before any request is served or replayed.

    [oram_cache_levels] (default 0) is applied to every dynamic session
    this daemon starts — it is a daemon configuration, not part of the
    wire request, and it is {e not} journaled: a tenant rebuilt after a
    restart with a different setting produces different trace digests
    (the FD answers are unchanged).  Keep the flag stable across
    restarts of a daemon whose clients compare digests. *)

val encode_row : Relation.Value.t array -> string list
(** Cells in wire form: the fixed-width injective
    {!Relation.Codec.encode_value} encoding, one string per column. *)

val decode_row : string list -> (Relation.Value.t array, string) result
(** Inverse of {!encode_row}; [Error] names the first malformed cell. *)

val fd_of_status : Servsim.Wire.fd_status -> Fdbase.Fd.t * bool
(** Decode one [Fds_reply] entry back to the library's FD type. *)

val begin_dynamic :
  ?oram_cache_levels:int ->
  Servsim.Wire.request ->
  (Servsim.Handler.dyn * Servsim.Wire.response, string) result
(** The provider function itself ({!install} registers exactly this):
    run initial discovery for a [Begin_dynamic] request and return the
    live session plus its initial [Fds_reply].  Exposed for tests that
    drive the provider without a server. *)
