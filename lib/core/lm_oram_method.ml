open Relation

type handle = {
  attrs : Attrset.t;
  kl : Oram.Omap.t; (* key_X -> label_X, value-keyed *)
  il : Oram.Recursive_path_oram.t; (* r[ID] -> label_X *)
  mutable card : int;
  key_len : int;
  session : Session.t;
}

let attrs h = h.attrs
let cardinality h = h.card

let make session x ~key_len =
  let n = session.Session.n in
  let cfg = { Oram.Omap.capacity = n; key_len; value_len = 8 } in
  let backing =
    Oram.Omap.recursive_backing
      ~name:(Session.fresh_name session "lm-kl")
      ~capacity:n ~node_len:(Oram.Omap.node_len cfg)
      ~cache_levels:session.Session.oram_cache_levels session.Session.server
      session.Session.cipher (Session.rand_int session)
  in
  let kl = Oram.Omap.create cfg backing in
  let il =
    Oram.Recursive_path_oram.setup
      ~name:(Session.fresh_name session "lm-il")
      ~cache_levels:session.Session.oram_cache_levels
      { capacity = n; payload_len = 8; fanout = 16; top_cutoff = 16 }
      session.Session.server session.Session.cipher (Session.rand_int session)
  in
  { attrs = x; kl; il; card = 0; key_len; session }

(* Algorithm 1's inner step with the low-memory structures: one Omap find,
   one recursive-ORAM write, one Omap insert — all fixed-cost. *)
let process_key h ~row key =
  let prev = Oram.Omap.find h.kl key in
  let fresh = prev = None in
  let label = match prev with Some p -> Codec.decode_int p | None -> h.card in
  Oram.Recursive_path_oram.write h.il ~key:row (Codec.encode_int label);
  Oram.Omap.insert h.kl key (Codec.encode_int label);
  if fresh then h.card <- h.card + 1

let single db col =
  let session = Enc_db.session db in
  let h = make session (Attrset.singleton col) ~key_len:Compression.single_key_len in
  for row = 0 to session.Session.n - 1 do
    let v = Enc_db.read_cell db ~row ~col in
    process_key h ~row
      (Compression.key_of_value
         (v
         [@lint.declassify
           "trusted-client FD state; the server sees only the oblivious LM-ORAM \
            accesses and the result reveals only FD(DB)"]))
  done;
  h

let label_of_row h ~row =
  match Oram.Recursive_path_oram.read h.il ~key:row with
  | Some p -> Codec.decode_int p
  | None -> invalid_arg "Lm_oram_method.label_of_row: record not present"

let combine session x h1 h2 =
  let h = make session x ~key_len:Compression.multi_key_len in
  for row = 0 to session.Session.n - 1 do
    let l1 = label_of_row h1 ~row and l2 = label_of_row h2 ~row in
    process_key h ~row (Compression.key_of_labels ~n:session.Session.n l1 l2)
  done;
  h

let client_state_bytes h =
  Oram.Omap.client_state_bytes h.kl + Oram.Recursive_path_oram.client_state_bytes h.il

let release h =
  Oram.Omap.destroy h.kl;
  Oram.Recursive_path_oram.destroy h.il

let oracle session db =
  {
    Fdbase.Lattice.single =
      (fun col ->
        let h = single db col in
        (h, h.card));
    combine =
      (fun x h1 h2 ->
        let h = combine session x h1 h2 in
        (h, h.card));
    release;
  }
