open Relation

let backend ~n = Sort_backend.enclave ~n

let oracle session db = Sort_method.oracle ~backend session db

let discover ?seed ?max_lhs table =
  let n = Table.rows table and m = Table.cols table in
  let session = Session.create ?seed ~n ~m () in
  let db = Enc_db.outsource session table in
  let t0 = Unix.gettimeofday () in
  let result = Fdbase.Lattice.discover ~m ~n ?max_lhs (oracle session db) in
  let trace = Session.trace session in
  let cost = Servsim.Cost.snapshot (Session.cost session) in
  {
    Protocol.fds = result.Fdbase.Lattice.fds;
    sets_checked = result.Fdbase.Lattice.sets_checked;
    plan = result.Fdbase.Lattice.plan;
    cost;
    elapsed_s = Unix.gettimeofday () -. t0;
    trace_full = Servsim.Trace.full_digest trace;
    trace_shape = Servsim.Trace.shape_digest trace;
    trace_count = Servsim.Trace.count trace;
    step_round_trips = cost.Servsim.Cost.round_trips;
    step_bytes = cost.Servsim.Cost.bytes_to_server + cost.Servsim.Cost.bytes_to_client;
  }

(* The enclave keeps the (decrypted) column data in secure memory after a
   one-time load, so the timed unit is Algorithm 3 itself — exactly what
   the paper's Fig. 6(b) measures, where the curves for |X| = 1 and
   |X| >= 2 overlap because both run the same network over resident
   data. *)
let partition_cardinality ?seed table x =
  ignore seed;
  let n = Table.rows table in
  let rec build x =
    let b = Sort_backend.enclave ~n in
    match Attrset.elements x with
    | [] -> invalid_arg "Enclave.partition_cardinality: empty attribute set"
    | [ a ] ->
        (* Untimed: column already resident in enclave memory. *)
        for row = 0 to n - 1 do
          b.Sort_backend.write row
            { Sort_backend.key = Sort_backend.V (Table.cell table ~row ~col:a); id = row }
        done;
        let t0 = Unix.gettimeofday () in
        let h = Sort_method.compute b x in
        (h, Unix.gettimeofday () -. t0)
    | _ ->
        let x1, x2 = Attrset.choose_two_generators x in
        let h1, _ = build x1 and h2, _ = build x2 in
        for row = 0 to n - 1 do
          let l1 = Sort_method.label_of_row h1 ~row and l2 = Sort_method.label_of_row h2 ~row in
          b.Sort_backend.write row
            {
              Sort_backend.key =
                Sort_backend.L
                  (Compression.combined_key_int ~n
                     (l1
                     [@lint.declassify
                       "trusted-client label combine; the write-back schedule is fixed \
                        and the result reveals only FD(DB)"])
                     (l2
                     [@lint.declassify
                       "trusted-client label combine; the write-back schedule is fixed \
                        and the result reveals only FD(DB)"]));
              id = row;
            }
        done;
        let t0 = Unix.gettimeofday () in
        let h = Sort_method.compute b x in
        (h, Unix.gettimeofday () -. t0)
  in
  let h, dt = build x in
  (Sort_method.cardinality h, dt)
