open Relation

type method_ =
  | Or_oram
  | Ex_oram
  | Sort

let method_name = function
  | Or_oram -> "Or-ORAM"
  | Ex_oram -> "Ex-ORAM"
  | Sort -> "Sort"

type report = {
  fds : Fdbase.Fd.t list;
  sets_checked : int;
  plan : Attrset.t list;
  cost : Servsim.Cost.snapshot;
  elapsed_s : float;
  trace_full : int64;
  trace_shape : int64;
  trace_count : int;
  step_round_trips : int;
  step_bytes : int;
}

let modeled_network_seconds ?(rtt_s = 2e-4) ?(gbps = 1.0) r =
  (float_of_int r.step_round_trips *. rtt_s)
  +. (float_of_int r.step_bytes *. 8.0 /. (gbps *. 1e9))

let now () = Unix.gettimeofday ()

let bytes_moved (s : Servsim.Cost.snapshot) =
  s.Servsim.Cost.bytes_to_server + s.Servsim.Cost.bytes_to_client

let finish session (result : Fdbase.Lattice.result) ~t0 =
  let trace = Session.trace session in
  let cost = Servsim.Cost.snapshot (Session.cost session) in
  {
    fds = result.Fdbase.Lattice.fds;
    sets_checked = result.Fdbase.Lattice.sets_checked;
    plan = result.Fdbase.Lattice.plan;
    cost;
    elapsed_s = now () -. t0;
    trace_full = Servsim.Trace.full_digest trace;
    trace_shape = Servsim.Trace.shape_digest trace;
    trace_count = Servsim.Trace.count trace;
    step_round_trips = cost.Servsim.Cost.round_trips;
    step_bytes = bytes_moved cost;
  }

let discover ?seed ?max_lhs ?keep_events ?remote ?oram_cache_levels method_ table =
  let n = Table.rows table and m = Table.cols table in
  Log.info (fun f -> f "discover: method=%s n=%d m=%d" (method_name method_) n m);
  let session = Session.create ?seed ?keep_events ?remote ?oram_cache_levels ~n ~m () in
  let db = Enc_db.outsource session table in
  let check = Set_level.check session in
  let t0 = now () in
  let result =
    match method_ with
    | Or_oram -> Fdbase.Lattice.discover ~m ~n ?max_lhs ~check (Or_oram_method.oracle session db)
    | Ex_oram -> Fdbase.Lattice.discover ~m ~n ?max_lhs ~check (Ex_oram_method.oracle session db)
    | Sort -> Fdbase.Lattice.discover ~m ~n ?max_lhs ~check (Sort_method.oracle session db)
  in
  let report = finish session result ~t0 in
  Log.info (fun f ->
      f "discover: %d FDs, %d lattice nodes, %.3fs, %d accesses"
        (List.length report.fds) report.sets_checked report.elapsed_s report.trace_count);
  report

(* Build the partitions of [x]'s Property-1 generators bottom-up (not
   timed), then run the final single/combine step — the unit the paper's
   §VII benchmarks measure — and report its time, round trips and bytes
   in isolation. *)
let partition_cardinality ?seed ?oram_cache_levels method_ table x =
  let n = Table.rows table and m = Table.cols table in
  let session = Session.create ?seed ?oram_cache_levels ~n ~m () in
  let db = Enc_db.outsource session table in
  let oracle_run (type h) (oracle : h Fdbase.Lattice.oracle) =
    let rec build_generators x =
      match Attrset.elements x with
      | [] -> invalid_arg "Protocol.partition_cardinality: empty attribute set"
      | [ a ] -> fst (oracle.Fdbase.Lattice.single a)
      | _ ->
          let x1, x2 = Attrset.choose_two_generators x in
          let h1 = build_generators x1 and h2 = build_generators x2 in
          let h = fst (oracle.Fdbase.Lattice.combine x h1 h2) in
          oracle.Fdbase.Lattice.release h1;
          oracle.Fdbase.Lattice.release h2;
          h
    in
    let card, dt, before =
      match Attrset.elements x with
      | [] -> invalid_arg "Protocol.partition_cardinality: empty attribute set"
      | [ a ] ->
          let before = Servsim.Cost.snapshot (Session.cost session) in
          let t0 = now () in
          let _, card = oracle.Fdbase.Lattice.single a in
          (card, now () -. t0, before)
      | _ ->
          let x1, x2 = Attrset.choose_two_generators x in
          let h1 = build_generators x1 and h2 = build_generators x2 in
          let before = Servsim.Cost.snapshot (Session.cost session) in
          let t0 = now () in
          let _, card = oracle.Fdbase.Lattice.combine x h1 h2 in
          let dt = now () -. t0 in
          oracle.Fdbase.Lattice.release h1;
          oracle.Fdbase.Lattice.release h2;
          (card, dt, before)
    in
    let after = Servsim.Cost.snapshot (Session.cost session) in
    let trace = Session.trace session in
    ( card,
      {
        fds = [];
        sets_checked = Attrset.cardinal x * 2;
        plan = [ x ];
        cost = after;
        elapsed_s = dt;
        trace_full = Servsim.Trace.full_digest trace;
        trace_shape = Servsim.Trace.shape_digest trace;
        trace_count = Servsim.Trace.count trace;
        step_round_trips = after.Servsim.Cost.round_trips - before.Servsim.Cost.round_trips;
        step_bytes = bytes_moved after - bytes_moved before;
      } )
  in
  match method_ with
  | Or_oram -> oracle_run (Or_oram_method.oracle session db)
  | Ex_oram -> oracle_run (Ex_oram_method.oracle session db)
  | Sort -> oracle_run (Sort_method.oracle session db)

let discover_approx ?seed ?max_lhs ?oram_cache_levels ~epsilon method_ table =
  let n = Table.rows table and m = Table.cols table in
  let session = Session.create ?seed ?oram_cache_levels ~n ~m () in
  let db = Enc_db.outsource session table in
  match method_ with
  | Or_oram -> Fdbase.Approx.discover ~m ~n ~epsilon ?max_lhs (Or_oram_method.oracle session db)
  | Ex_oram -> Fdbase.Approx.discover ~m ~n ~epsilon ?max_lhs (Ex_oram_method.oracle session db)
  | Sort -> Fdbase.Approx.discover ~m ~n ~epsilon ?max_lhs (Sort_method.oracle session db)

let pp_report schema ppf r =
  Format.fprintf ppf "@[<v>discovered %d FDs (%d lattice nodes, %.3fs):@,"
    (List.length r.fds) r.sets_checked r.elapsed_s;
  List.iter (fun fd -> Format.fprintf ppf "  %a@," (Fdbase.Fd.pp_named schema) fd) r.fds;
  Format.fprintf ppf "%a@]" Servsim.Cost.pp_snapshot r.cost
