(** A protocol session between the client C and the server S.

    Bundles the client's secrets (cell cipher, randomness) with the
    simulated server and the public database dimensions, and hands out
    fresh store names for the per-attribute-set structures the methods
    allocate. *)

type t = {
  server : Servsim.Server.t;
  raw_key : string;  (** client's 16-byte secret key; S never sees it *)
  cipher : Crypto.Cell_cipher.t;
  rng : Crypto.Rng.t;  (** client randomness (ORAM leaves) *)
  n : int;  (** number of rows — public *)
  m : int;  (** number of columns — public *)
  oram_cache_levels : int;
      (** treetop-cache depth handed to every ORAM the methods build *)
  mutable counter : int;
}

val create :
  ?seed:int -> ?keep_events:bool -> ?remote:Servsim.Remote.t ->
  ?oram_cache_levels:int -> n:int -> m:int -> unit -> t
(** Fresh session with a fresh server.  [seed] drives all client
    randomness (key, IVs, ORAM leaves) so runs are reproducible.  With
    [?remote] the server side lives in a separate process (see
    {!Servsim.Remote_server}); every block access is a real wire round
    trip.  [oram_cache_levels] (default 0) turns on treetop caching in
    the ORAM-based methods: the top k levels of every ORAM tree are kept
    decrypted client-side, trading client memory for fewer and smaller
    wire frames (see {!Oram.Path_oram.setup}). *)

val fresh_name : t -> string -> string
(** [fresh_name t prefix] returns a store name unused in this session. *)

val rand_int : t -> int -> int
val cost : t -> Servsim.Cost.t
val trace : t -> Servsim.Trace.t

val clone_cipher : t -> seed:int -> Crypto.Cell_cipher.t
(** A cipher under the same secret key with an independent IV stream —
    one per worker domain in parallel sorting, so no mutable cipher state
    is shared across domains. *)
