open Relation

type handle = {
  attrs : Attrset.t;
  klf : Oram.Path_oram.t; (* key_X -> (label_X, fre_X) *)
  ikl : Oram.Path_oram.t; (* r[ID]  -> (key_X, label_X) *)
  mutable card : int;
  mutable live : int;
  (* Label allocator: labels of fully-deleted keys return to [free_labels]
     and are reused before [next_label] grows, so every label stays below
     the peak number of concurrently-live distinct keys — and therefore
     below [base], which {!Compression.key_of_labels} requires.  Using
     [card] as the next label (as the static formulation can) is wrong
     under churn: a delete that retires a key decrements [card], and the
     next fresh key would collide with a live key's label. *)
  mutable next_label : int;
  mutable free_labels : int list;
  key_len : int;
  base : int; (* public multiplier for combined keys: the ORAM capacity *)
  session : Session.t;
}

let attrs h = h.attrs
let cardinality h = h.card
let live_records h = h.live

(* Payload codecs. *)
let klf_payload ~label ~fre = Codec.encode_int label ^ Codec.encode_int fre

let klf_decode p = (Codec.decode_int (String.sub p 0 8), Codec.decode_int (String.sub p 8 8))

let ikl_payload ~key ~label = key ^ Codec.encode_int label

let ikl_decode ~key_len p =
  (String.sub p 0 key_len, Codec.decode_int (String.sub p key_len 8))

let create session x ~capacity =
  let key_len =
    if Attrset.cardinal x <= 1 then Compression.single_key_len else Compression.multi_key_len
  in
  let klf =
    Oram.Path_oram.setup
      ~name:(Session.fresh_name session "ex-klf")
      ~cache_levels:session.Session.oram_cache_levels
      { capacity; key_len; payload_len = 16 }
      session.Session.server session.Session.cipher (Session.rand_int session)
  in
  let ikl =
    Oram.Path_oram.setup
      ~name:(Session.fresh_name session "ex-ikl")
      ~cache_levels:session.Session.oram_cache_levels
      { capacity; key_len = 8; payload_len = key_len + 8 }
      session.Session.server session.Session.cipher (Session.rand_int session)
  in
  {
    attrs = x;
    klf;
    ikl;
    card = 0;
    live = 0;
    next_label = 0;
    free_labels = [];
    key_len;
    base = capacity;
    session;
  }

let alloc_label h =
  match h.free_labels with
  | l :: tl ->
      h.free_labels <- tl;
      l
  | [] ->
      let l = h.next_label in
      h.next_label <- l + 1;
      l

(* Algorithm 4 inner step: one O^KLF read, one O^IKL write, one O^KLF
   write — unconditional, as in the paper's branch-free formulation. *)
let process_key h ~row key =
  let prev = Oram.Path_oram.read h.klf ~key in
  let fresh = prev = None in
  let label, fre =
    match prev with Some p -> klf_decode p | None -> (alloc_label h, 0)
  in
  let fre = fre + 1 in
  Oram.Path_oram.write h.ikl ~key:(Codec.encode_int row) (ikl_payload ~key ~label);
  Oram.Path_oram.write h.klf ~key (klf_payload ~label ~fre);
  if fresh then h.card <- h.card + 1;
  h.live <- h.live + 1

let insert_value h ~row v =
  if Attrset.cardinal h.attrs <> 1 then
    invalid_arg "Ex_oram_method.insert_value: handle is not single-attribute";
  process_key h ~row (Compression.key_of_value v)

let insert_single h db ~row =
  let v = Enc_db.read_cell db ~row ~col:(Attrset.min_elt h.attrs) in
  insert_value h ~row
    (v
    [@lint.declassify
      "trusted-client FD state; the server sees only the oblivious Ex-ORAM accesses \
       and the result reveals only FD(DB)"])

let label_of_row h ~row =
  match Oram.Path_oram.read h.ikl ~key:(Codec.encode_int row) with
  | Some p -> Some (snd (ikl_decode ~key_len:h.key_len p))
  | None -> None

let insert_combined h ~gen1 ~gen2 ~row =
  let l1 =
    match label_of_row gen1 ~row with
    | Some l -> l
    | None -> invalid_arg "Ex_oram_method.insert_combined: record missing in generator 1"
  in
  let l2 =
    match label_of_row gen2 ~row with
    | Some l -> l
    | None -> invalid_arg "Ex_oram_method.insert_combined: record missing in generator 2"
  in
  process_key h ~row (Compression.key_of_labels ~n:h.base l1 l2)

let single db ?capacity col =
  let session = Enc_db.session db in
  let capacity = Option.value ~default:session.Session.n capacity in
  let h = create session (Attrset.singleton col) ~capacity in
  for row = 0 to session.Session.n - 1 do
    insert_single h db ~row
  done;
  h

let combine session ?capacity x h1 h2 =
  let capacity = Option.value ~default:session.Session.n capacity in
  let h = create session x ~capacity in
  for row = 0 to session.Session.n - 1 do
    insert_combined h ~gen1:h1 ~gen2:h2 ~row
  done;
  h

(* Algorithm 5: two reads then two writes; the fre = 1 / fre > 1 branch
   only changes the plaintext written, never the access pattern. *)
let delete h ~row =
  let id_key = Codec.encode_int row in
  match Oram.Path_oram.read h.ikl ~key:id_key with
  | None ->
      (* Record absent: keep the physical pattern identical anyway. *)
      Oram.Path_oram.dummy_access h.klf;
      Oram.Path_oram.dummy_access h.klf;
      Oram.Path_oram.dummy_access h.ikl
  | Some p ->
      let key, _label = ikl_decode ~key_len:h.key_len p in
      let label, fre =
        match Oram.Path_oram.read h.klf ~key with
        | Some q -> klf_decode q
        | None -> invalid_arg "Ex_oram_method.delete: KLF entry missing (corrupt state)"
      in
      ignore
        (Oram.Path_oram.access h.klf ~key (fun prev ->
             match prev with
             | None -> None
             | Some q ->
                 let label, fre = klf_decode q in
                 if fre > 1 then Some (klf_payload ~label ~fre:(fre - 1)) else None));
      ignore (Oram.Path_oram.access h.ikl ~key:id_key (fun _ -> None));
      if fre = 1 then begin
        h.card <- h.card - 1;
        h.free_labels <- label :: h.free_labels
      end;
      h.live <- h.live - 1

let release h =
  Oram.Path_oram.destroy h.klf;
  Oram.Path_oram.destroy h.ikl

let oracle session db =
  {
    Fdbase.Lattice.single =
      (fun col ->
        let h = single db col in
        (h, h.card));
    combine =
      (fun x h1 h2 ->
        let h = combine session x h1 h2 in
        (h, h.card));
    release;
  }
