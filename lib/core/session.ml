type t = {
  server : Servsim.Server.t;
  raw_key : string;
  cipher : Crypto.Cell_cipher.t;
  rng : Crypto.Rng.t;
  n : int;
  m : int;
  oram_cache_levels : int;
  mutable counter : int;
}

let create ?(seed = 0x5EC5E55) ?keep_events ?remote ?(oram_cache_levels = 0) ~n ~m () =
  if oram_cache_levels < 0 then
    invalid_arg "Session.create: oram_cache_levels must be >= 0";
  let key_rng = Crypto.Rng.create seed in
  let raw_key = Bytes.to_string (Crypto.Rng.bytes key_rng 16) in
  let iv_rng = Crypto.Rng.split key_rng in
  let cipher =
    Crypto.Cell_cipher.create ~iv_rng:(fun b -> Crypto.Rng.fill_bytes iv_rng b) raw_key
  in
  {
    server = Servsim.Server.create ?keep_events ?remote ();
    raw_key;
    cipher;
    rng = Crypto.Rng.split key_rng;
    n;
    m;
    oram_cache_levels;
    counter = 0;
  }

let clone_cipher t ~seed =
  let iv_rng = Crypto.Rng.create seed in
  Crypto.Cell_cipher.create ~iv_rng:(fun b -> Crypto.Rng.fill_bytes iv_rng b) t.raw_key

let fresh_name t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s-%d" prefix t.counter

let rand_int t bound = Crypto.Rng.int t.rng bound
let cost t = Servsim.Server.cost t.server
let trace t = Servsim.Server.trace t.server
