open Relation

type t = {
  session : Session.t;
  store : Servsim.Block_store.t;
  name : string;
  n : int;
  m : int;
}

let outsource (session : Session.t) table =
  let n = Table.rows table and m = Table.cols table in
  if n <> session.Session.n || m <> session.Session.m then
    invalid_arg "Enc_db.outsource: table dimensions disagree with session";
  let name = Session.fresh_name session "db" in
  let store = Servsim.Server.create_store session.Session.server name in
  Servsim.Block_store.ensure store (n * m);
  (* The whole upload is one bulk cipher call and one Multi_put frame /
     round trip. *)
  let pts =
    List.init (n * m) (fun slot ->
        Codec.encode_value (Table.cell table ~row:(slot / m) ~col:(slot mod m)))
  in
  Servsim.Block_store.write_many store
    (List.mapi
       (fun slot ct -> (slot, ct))
       (Crypto.Cell_cipher.encrypt_many session.Session.cipher pts));
  { session; store; name; n; m }

let read_cell t ~row ~col =
  if row < 0 || row >= t.n || col < 0 || col >= t.m then
    invalid_arg "Enc_db.read_cell: out of bounds";
  let c = Servsim.Block_store.read t.store ((row * t.m) + col) in
  Codec.decode_value
    (Crypto.Cell_cipher.decrypt t.session.Session.cipher c
    [@lint.declassify
      "client-side decode of the fetched plaintext; its shape depends only on the \
       plaintext length, public under Size(DB)"])

let n t = t.n
let m t = t.m
let store_name t = t.name
let session t = t.session
