open Relation
open Sort_backend

type network =
  | Bitonic
  | Odd_even_merge

type handle = {
  attrs : Attrset.t;
  backend : Sort_backend.t;
  card : int;
}

let attrs h = h.attrs
let cardinality h = h.card

let network_for kind n =
  match kind with
  | Bitonic -> Osort.Network.bitonic n
  | Odd_even_merge -> Osort.Network.odd_even_merge n

(* One compare-exchange; both slots are always rewritten so the server
   cannot tell whether a swap happened.  The serial path batches the two
   fetches into one frame and the two write-backs into another, so an
   exchange is two round trips on the wire (the ledger is maintained by
   the block store). *)
let exchange_batched ~compare ~read_batch ~write_batch ~up i j =
  match read_batch [ i; j ] with
  | [ a; b ] ->
      let lo, hi = if compare a b <= 0 then (a, b) else (b, a) in
      write_batch (if up then [ (i, lo); (j, hi) ] else [ (i, hi); (j, lo) ])
  | _ -> assert false

(* Worker variant over thread-private single-slot closures (cost and trace
   are suspended in multi-domain sections). *)
let exchange_with ~compare read write ~up i j =
  let a = read i and b = read j in
  let lo, hi = if compare a b <= 0 then (a, b) else (b, a) in
  if up then begin
    write i lo;
    write j hi
  end
  else begin
    write i hi;
    write j lo
  end

let oblivious_sort ?(domains = 1) net backend ~compare =
  if domains <= 1 then
    Osort.Driver.run net
      ~exchange:
        (exchange_batched ~compare ~read_batch:backend.read_batch
           ~write_batch:backend.write_batch)
  else begin
    let counter = ref 0 in
    Osort.Driver.run_parallel net ~domains ~make_exchange:(fun () ->
        let w = !counter in
        incr counter;
        let read, write = backend.make_worker w in
        exchange_with ~compare read write)
  end

(* Algorithm 3. *)
let compute ?(network = Bitonic) ?domains backend x =
  let net = network_for network backend.length in
  (* 1. Sort by key_X: equal keys become consecutive. *)
  oblivious_sort ?domains net backend ~compare:compare_by_key;
  (* 2. Linear pass: replace key_X by its run index (the label).  Kept
     element-at-a-time — O(1) client memory, per §IV-D(c); each element is
     one fetch frame and one write-back frame. *)
  let tmp = ref Pad in
  let card = ref 0 in
  for i = 0 to backend.n - 1 do
    let e = backend.read i in
    let flag = i > 0 && compare_skey e.key !tmp <> 0 in
    tmp := e.key;
    if
      (flag
      [@lint.declassify
        "post-sort labeling scan: the read/write schedule is fixed; the branch only \
         selects the label value, i.e. the FD(DB) cardinality structure"])
    then incr card;
    backend.write i { key = L !card; id = e.id }
  done;
  (* 3. Sort back by r[ID]. *)
  oblivious_sort ?domains net backend ~compare:compare_by_id;
  { attrs = x; backend; card = !card + 1 }

let fill_pads backend ~from =
  List.init (backend.length - from) (fun k -> (from + k, pad_elt))

let single ?network ?domains ?backend db col =
  let session = Enc_db.session db in
  let n = session.Session.n in
  let make = Option.value ~default:(fun ~n -> Sort_backend.encrypted session ~n) backend in
  let b = make ~n in
  (* One frame for the whole initial load (real rows + pads). *)
  b.write_batch
    (List.init n (fun row -> (row, { key = V (Enc_db.read_cell db ~row ~col); id = row }))
    @ fill_pads b ~from:n);
  compute ?network ?domains b (Attrset.singleton col)

let label_of_row h ~row =
  match
    ((h.backend.read row).key
    [@lint.declassify
      "client-side decode of the label array; the tag check is fail-stop validation \
       and by construction always takes the L branch"])
  with
  | L l -> l
  | V _ | Pad -> invalid_arg "Sort_method.label_of_row: array does not hold labels"

let labels h =
  (* Whole label array in one Multi_get frame. *)
  h.backend.read_batch (List.init h.backend.n Fun.id)
  |> List.map (fun e ->
         match
           (e.key
           [@lint.declassify
             "client-side decode of the label array; the tag check is fail-stop \
              validation and by construction always takes the L branch"])
         with
         | L l -> l
         | V _ | Pad -> invalid_arg "Sort_method.labels: array does not hold labels")
  |> Array.of_list

let combine ?network ?domains ?backend session x h1 h2 =
  let n = session.Session.n in
  let make = Option.value ~default:(fun ~n -> Sort_backend.encrypted session ~n) backend in
  let b = make ~n in
  (* Two fetch frames (one per generator) and one write-back frame,
     instead of 3n single-block exchanges. *)
  let l1s = labels h1 and l2s = labels h2 in
  b.write_batch
    (List.init n (fun row ->
         ( row,
           {
             key =
               L
                 (Compression.combined_key_int ~n
                    (l1s.(row)
                    [@lint.declassify
                      "trusted-client label combine; the write-back schedule is fixed \
                       and the result reveals only FD(DB)"])
                    (l2s.(row)
                    [@lint.declassify
                      "trusted-client label combine; the write-back schedule is fixed \
                       and the result reveals only FD(DB)"]));
             id = row;
           } ))
    @ fill_pads b ~from:n);
  compute ?network ?domains b x

let release h = h.backend.destroy ()

let oracle ?network ?domains ?backend session db =
  {
    Fdbase.Lattice.single =
      (fun col ->
        let h = single ?network ?domains ?backend db col in
        (h, h.card));
    combine =
      (fun x h1 h2 ->
        let h = combine ?network ?domains ?backend session x h1 h2 in
        (h, h.card));
    release;
  }
