open Relation

type handle = {
  attrs : Attrset.t;
  kl : Oram.Path_oram.t; (* key_X -> label_X *)
  il : Oram.Path_oram.t; (* r[ID] -> label_X *)
  mutable card : int;
  session : Session.t;
}

let attrs h = h.attrs
let cardinality h = h.card

let make_orams session attrs ~key_len =
  let n = session.Session.n in
  let kl =
    Oram.Path_oram.setup
      ~name:(Session.fresh_name session "or-kl")
      ~cache_levels:session.Session.oram_cache_levels
      { capacity = n; key_len; payload_len = 8 }
      session.Session.server session.Session.cipher (Session.rand_int session)
  in
  let il =
    Oram.Path_oram.setup
      ~name:(Session.fresh_name session "or-il")
      ~cache_levels:session.Session.oram_cache_levels
      { capacity = n; key_len = 8; payload_len = 8 }
      session.Session.server session.Session.cipher (Session.rand_int session)
  in
  { attrs; kl; il; card = 0; session }

(* The shared inner step of Algorithms 1 and 2 (lines 5-10 / 7-12): one
   O^KL read, one O^IL write, one O^KL write — unconditionally, so the
   server's view does not depend on whether key_X was seen before. *)
let process_key h ~row key =
  let prev = Oram.Path_oram.read h.kl ~key in
  let fresh = prev = None in
  let label =
    match prev with Some p -> Compression.label_of_payload p | None -> h.card
  in
  Oram.Path_oram.write h.il ~key:(Codec.encode_int row) (Compression.payload_of_label label);
  Oram.Path_oram.write h.kl ~key (Compression.payload_of_label label);
  if fresh then h.card <- h.card + 1

let insert_single h db ~row =
  let v = Enc_db.read_cell db ~row ~col:(Attrset.min_elt h.attrs) in
  process_key h ~row
    (Compression.key_of_value
       (v
       [@lint.declassify
         "trusted-client FD state; the server sees only the oblivious OR-ORAM \
          accesses and the result reveals only FD(DB)"]))

let single db col =
  let session = Enc_db.session db in
  let h = make_orams session (Attrset.singleton col) ~key_len:Compression.single_key_len in
  for row = 0 to session.Session.n - 1 do
    insert_single h db ~row
  done;
  h

let label_of_row h ~row =
  match Oram.Path_oram.read h.il ~key:(Codec.encode_int row) with
  | Some p -> Compression.label_of_payload p
  | None -> invalid_arg "Or_oram_method.label_of_row: record not present"

let insert_combined session h ~gen1 ~gen2 ~row =
  let l1 = label_of_row gen1 ~row in
  let l2 = label_of_row gen2 ~row in
  process_key h ~row (Compression.key_of_labels ~n:session.Session.n l1 l2)

let combine session x h1 h2 =
  let h = make_orams session x ~key_len:Compression.multi_key_len in
  for row = 0 to session.Session.n - 1 do
    insert_combined session h ~gen1:h1 ~gen2:h2 ~row
  done;
  h

let release h =
  Oram.Path_oram.destroy h.kl;
  Oram.Path_oram.destroy h.il

let oracle session db =
  {
    Fdbase.Lattice.single =
      (fun col ->
        ignore session;
        let h = single db col in
        (h, h.card));
    combine =
      (fun x h1 h2 ->
        let h = combine session x h1 h2 in
        (h, h.card));
    release;
  }
