(** The outsourced encrypted database DB̂.

    Cell-level semantically secure encryption (§II-A): every attribute
    value of every record is individually encrypted (fixed-width encoding,
    so all cell ciphertexts have one public length) and stored in a server
    block store.  Only the client can decrypt; reads are traced as part of
    the adversary's view. *)

open Relation

type t

val outsource : Session.t -> Table.t -> t
(** Encrypt the client's table cell by cell and upload it.
    @raise Invalid_argument if the table's dimensions disagree with the
    session's public (n, m). *)

val read_cell : t -> row:int -> col:int -> Value.t [@@secret]
(** Client-side: fetch the ciphertext of one cell from S and decrypt. *)

val n : t -> int
val m : t -> int
val store_name : t -> string
val session : t -> Session.t
