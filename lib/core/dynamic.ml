open Relation

type t = {
  session : Session.t;
  m : int;
  capacity : int;
  handles : (Attrset.t, Ex_oram_method.handle) Hashtbl.t;
  order : Attrset.t list; (* lattice plan order: generators before supersets *)
  fds : Fdbase.Fd.t list;
  live_ids : (int, unit) Hashtbl.t;
  mutable next_id : int;
}

let session t = t.session
let fds t = t.fds
let live_records t = Hashtbl.length t.live_ids

let start ?seed ?capacity ?max_lhs ?oram_cache_levels table =
  let n = Table.rows table and m = Table.cols table in
  let capacity = max 16 (Option.value ~default:(4 * n) capacity) in
  let session = Session.create ?seed ?oram_cache_levels ~n ~m () in
  let db = Enc_db.outsource session table in
  let handles = Hashtbl.create 64 in
  let register h =
    Hashtbl.replace handles (Ex_oram_method.attrs h) h;
    (h, Ex_oram_method.cardinality h)
  in
  let oracle =
    {
      Fdbase.Lattice.single = (fun col -> register (Ex_oram_method.single db ~capacity col));
      combine = (fun x h1 h2 -> register (Ex_oram_method.combine session ~capacity x h1 h2));
      release = (fun _ -> ()); (* structures are retained for maintenance *)
    }
  in
  let result =
    Fdbase.Lattice.discover ~m ~n ?max_lhs ~check:(Set_level.check session) oracle
  in
  let live_ids = Hashtbl.create (2 * n) in
  for id = 0 to n - 1 do
    Hashtbl.replace live_ids id ()
  done;
  {
    session;
    m;
    capacity;
    handles;
    order = result.Fdbase.Lattice.plan;
    fds = result.Fdbase.Lattice.fds;
    live_ids;
    next_id = n;
  }

let cardinality t x =
  if Attrset.is_empty x then Some (min 1 (live_records t))
  else Option.map Ex_oram_method.cardinality (Hashtbl.find_opt t.handles x)

let generator_handles t x =
  let x1, x2 = Attrset.choose_two_generators x in
  match (Hashtbl.find_opt t.handles x1, Hashtbl.find_opt t.handles x2) with
  | Some h1, Some h2 -> (h1, h2)
  | _ ->
      invalid_arg
        (Format.asprintf "Dynamic: generators of %a not materialised" Attrset.pp x)

let insert t values =
  if Array.length values <> t.m then invalid_arg "Dynamic.insert: arity mismatch";
  if live_records t >= t.capacity then invalid_arg "Dynamic.insert: capacity exceeded";
  let id = t.next_id in
  Log.debug (fun f -> f "dynamic insert: id=%d (%d sets to update)" id (List.length t.order));
  t.next_id <- id + 1;
  List.iter
    (fun x ->
      let h = Hashtbl.find t.handles x in
      match Attrset.elements x with
      | [ col ] -> Ex_oram_method.insert_value h ~row:id values.(col)
      | _ ->
          let gen1, gen2 = generator_handles t x in
          Ex_oram_method.insert_combined h ~gen1 ~gen2 ~row:id)
    t.order;
  Hashtbl.replace t.live_ids id ();
  id

let delete t ~id =
  Log.debug (fun f -> f "dynamic delete: id=%d" id);
  (* Deletions for distinct attribute sets are independent (§V-C); we run
     them sequentially in plan order. *)
  List.iter (fun x -> Ex_oram_method.delete (Hashtbl.find t.handles x) ~row:id) t.order;
  Hashtbl.remove t.live_ids id

(* Materialise π_X for a set outside the retained lattice (needed when a
   key-pruned FD must be re-checked after its LHS stopped being a key). *)
let rec ensure t x =
  match Hashtbl.find_opt t.handles x with
  | Some h -> h
  | None ->
      if Attrset.cardinal x < 2 then
        invalid_arg "Dynamic.ensure: single attributes are always materialised";
      let x1, x2 = Attrset.choose_two_generators x in
      let gen1 = ensure t x1 and gen2 = ensure t x2 in
      let h = Ex_oram_method.create t.session x ~capacity:t.capacity in
      Hashtbl.iter
        (fun id () -> Ex_oram_method.insert_combined h ~gen1 ~gen2 ~row:id)
        t.live_ids;
      Hashtbl.replace t.handles x h;
      h

let revalidate t =
  List.map
    (fun fd ->
      let { Fdbase.Fd.lhs; rhs } = fd in
      let x = Attrset.add lhs rhs in
      let lhs_card =
        match cardinality t lhs with
        | Some c -> c
        | None -> Ex_oram_method.cardinality (ensure t lhs)
      in
      (* Superkey LHS still determines everything: skip materialising X. *)
      if lhs_card = live_records t && lhs_card > 0 then (fd, true)
      else
        let x_card =
          match cardinality t x with
          | Some c -> c
          | None -> Ex_oram_method.cardinality (ensure t x)
        in
        (fd, Set_level.check t.session lhs_card x_card))
    t.fds

let release t =
  Hashtbl.iter (fun _ h -> Ex_oram_method.release h) t.handles;
  Hashtbl.reset t.handles
