(** Dynamic maintenance session (§V): keep the Ex-ORAM partition
    structures of every lattice node alive so that insertions and
    deletions cost O(log n · polyloglog n) per attribute set instead of a
    full re-run — the paper's "non-trivial" criterion (Definition 5).

    [insert] cascades a new record through the retained attribute sets in
    lattice order (single attributes first, so Property 1's generators are
    always up to date); [delete] removes a record from every set (these
    could run in parallel, §V-C).  [revalidate] re-checks each currently
    tracked FD from the maintained cardinalities.

    Deletions can create {e new} FDs that were invalid before; finding
    those requires re-running discovery over the pruned parts of the
    lattice (the trivial fallback of §V-A) — [revalidate] only reports the
    status of known FDs, faithfully to the paper's scope. *)

open Relation

type t

val start : ?seed:int -> ?capacity:int -> ?max_lhs:int -> ?oram_cache_levels:int -> Table.t -> t
(** Run Ex-ORAM discovery, retaining every attribute-set structure.
    [capacity] bounds the total records ever live (default 4·n, minimum
    16); the ORAM trees are sized for it up front.  [oram_cache_levels]
    (default 0) enables treetop caching in every retained ORAM (see
    {!Session.create}). *)

val fds : t -> Fdbase.Fd.t list
(** The FDs as of the initial discovery (use {!revalidate} after
    updates). *)

val live_records : t -> int

val insert : t -> Value.t array -> int
(** Insert a record (arity m); returns its assigned ID.
    @raise Invalid_argument on arity mismatch or capacity overflow. *)

val delete : t -> id:int -> unit
(** Delete a record by ID (no-op, with identical access patterns, if the
    ID is not present). *)

val revalidate : t -> (Fdbase.Fd.t * bool) list
(** Status of every initially discovered FD against the current data. *)

val cardinality : t -> Attrset.t -> int option
(** |π_X| if X is one of the retained lattice nodes. *)

val session : t -> Session.t
val release : t -> unit
