(** End-to-end secure FD discovery (the protocol Π of §VI): encrypt and
    outsource the client's table, then run the database-level lattice
    search with one of the three oblivious attribute-level methods.

    The result carries the discovered FDs — which must equal the
    plaintext TANE output exactly — together with the cost snapshot for
    the paper's three metrics and the server's trace digests for
    obliviousness checks. *)

open Relation

type method_ =
  | Or_oram  (** Algorithms 1–2 (§IV-C) *)
  | Ex_oram  (** extended dynamic method (§V) *)
  | Sort  (** Algorithm 3 (§IV-D) *)

val method_name : method_ -> string

type report = {
  fds : Fdbase.Fd.t list;
  sets_checked : int;
  plan : Attrset.t list;
  cost : Servsim.Cost.snapshot;
  elapsed_s : float;
  trace_full : int64;
  trace_shape : int64;
  trace_count : int;
  step_round_trips : int;
      (** round trips of the measured unit alone (the final partition
          computation in {!partition_cardinality}; whole run otherwise) *)
  step_bytes : int;  (** bytes moved (both directions) by the measured unit *)
}

val modeled_network_seconds : ?rtt_s:float -> ?gbps:float -> report -> float
(** [modeled_network_seconds r] is the wall-clock the measured unit would
    add on a network link: [step_round_trips · rtt + step_bytes / rate].
    Defaults model the paper's testbed: 1 Gbps LAN, 0.2 ms RTT.  Add it to
    [elapsed_s] (pure computation) to compare deployments — the paper's
    client-server runtimes are dominated by this term for Sort.

    Since wire protocol v2, [step_round_trips] counts one trip per wire
    frame (batched ORAM paths are one frame each way), so this estimate is
    consistent with the frames an actual remote run performs. *)

val discover :
  ?seed:int ->
  ?max_lhs:int ->
  ?keep_events:bool ->
  ?remote:Servsim.Remote.t ->
  ?oram_cache_levels:int ->
  method_ ->
  Table.t ->
  report
(** Run the whole protocol on a fresh session.  With [?remote] the
    server side lives in a forked process and every store operation is a
    real wire frame (see {!Servsim.Remote}); the report's cost ledger is
    identical to a local run.  [oram_cache_levels] (default 0) enables
    client-side treetop caching in the ORAM methods (see
    {!Session.create}); it trades client memory for fewer, smaller wire
    frames and leaves the discovered FDs unchanged. *)

val partition_cardinality :
  ?seed:int -> ?oram_cache_levels:int -> method_ -> Table.t -> Attrset.t -> int * report
(** Attribute-level only: obliviously compute |π_X| for one attribute set
    (computing generator partitions first per Property 1).  This is the
    unit the paper benchmarks in §VII. *)

val discover_approx :
  ?seed:int -> ?max_lhs:int -> ?oram_cache_levels:int ->
  epsilon:float -> method_ -> Table.t -> Fdbase.Approx.result
(** ε-approximate FD discovery (see {!Fdbase.Approx}) over the same
    oblivious attribute-level oracles.  The leakage grows accordingly: the
    adversary learns the ε-approximate FDs instead of the exact ones. *)

val pp_report : Schema.t -> Format.formatter -> report -> unit
