(** Log source for the secure-FD core; enable with
    [Logs.Src.set_level Core.Log.src (Some Logs.Debug)] or via the CLI's
    [--debug] flag.

    Rule R4 (no-raw-output-in-lib) requires every diagnostic inside
    [lib/] to flow through this module rather than [Printf.printf] and
    friends, so library output is levelled, capturable and silent by
    default. *)

val src : Logs.src

val debug : 'a Logs.log
val info : 'a Logs.log
val warn : 'a Logs.log
