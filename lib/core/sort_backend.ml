open Relation

type skey =
  | V of Value.t
  | L of int
  | Pad

(* The sort key is decrypted cell content (or a label derived from it):
   a secret-flow source for R11, marked explicitly rather than inherited
   from the tree-wide [key] label. *)
type elt = { key : skey; [@secret] id : int }

let compare_skey a b =
  match (a, b) with
  | Pad, Pad -> 0
  | Pad, _ -> 1
  | _, Pad -> -1
  | V x, V y -> Value.compare x y
  | L x, L y -> Int.compare x y
  | L _, V _ -> -1
  | V _, L _ -> 1

let compare_by_key a b =
  match
    compare_skey
      (a.key
      [@lint.declassify
        "oblivious-sort comparator: the network schedule is data-independent, so the \
         comparison decides only which re-encrypted cell lands where"])
      (b.key
      [@lint.declassify
        "oblivious-sort comparator: the network schedule is data-independent, so the \
         comparison decides only which re-encrypted cell lands where"])
  with
  | 0 -> Int.compare a.id b.id
  | c -> c

let compare_by_id a b = Int.compare a.id b.id

let pad_elt = { key = Pad; id = max_int }

(* Layout: tag byte | key field (value_width bytes) | id (8 bytes). *)
let elt_width = 1 + Codec.value_width + 8

let encode_elt e =
  let b = Bytes.make elt_width '\000' in
  (match
     (e.key
     [@lint.declassify
       "client-local serialization into the fixed-width cell; only the re-encrypted \
        cell leaves the client"])
   with
  | Pad -> Bytes.set b 0 '\000'
  | V v ->
      Bytes.set b 0 '\001';
      Bytes.blit_string (Codec.encode_value v) 0 b 1 Codec.value_width
  | L l ->
      Bytes.set b 0 '\002';
      Bytes.blit_string (Codec.encode_int l) 0 b 1 8);
  Bytes.blit_string (Codec.encode_int e.id) 0 b (1 + Codec.value_width) 8;
  Bytes.to_string b

let decode_elt s =
  if String.length s <> elt_width then invalid_arg "Sort_backend.decode_elt: bad width";
  let id = Codec.decode_int (String.sub s (1 + Codec.value_width) 8) in
  let key =
    match s.[0] with
    | '\000' -> Pad
    | '\001' -> V (Codec.decode_value (String.sub s 1 Codec.value_width))
    | '\002' -> L (Codec.decode_int (String.sub s 1 8))
    | _ -> invalid_arg "Sort_backend.decode_elt: bad tag"
  in
  { key; id }

type t = {
  length : int;
  n : int;
  read : int -> elt;
  write : int -> elt -> unit;
  read_batch : int list -> elt list;
  write_batch : (int * elt) list -> unit;
  make_worker : int -> (int -> elt) * (int -> elt -> unit);
  client_bytes : int;
  destroy : unit -> unit;
}

let encrypted (session : Session.t) ~n =
  let length = Osort.Network.ceil_pow2 n in
  let name = Session.fresh_name session "sort" in
  let store = Servsim.Server.create_store session.Session.server name in
  Servsim.Block_store.ensure store length;
  let write_with cipher i e =
    Servsim.Block_store.write store i (Crypto.Cell_cipher.encrypt cipher (encode_elt e))
  in
  let read_with cipher i =
    decode_elt
      (Crypto.Cell_cipher.decrypt cipher (Servsim.Block_store.read store i)
      [@lint.declassify
        "client-side decode of a fixed-width cell; its shape is the constant elt_width"])
  in
  let write_batch items =
    let cts =
      Crypto.Cell_cipher.encrypt_many session.Session.cipher
        (List.map (fun (_, e) -> encode_elt e) items)
    in
    Servsim.Block_store.write_many store
      (List.map2 (fun (i, _) ct -> (i, ct)) items cts)
  in
  let read_batch idxs =
    List.map decode_elt
      (Crypto.Cell_cipher.decrypt_many session.Session.cipher
         (Servsim.Block_store.read_many store idxs))
  in
  write_batch (List.init length (fun i -> (i, pad_elt)));
  (* Constant client memory: two decrypted elements plus the key — the
     paper's O(1)-client-memory claim for Sort (§IV-D(c)).  A
     compare-exchange batches exactly two elements, never more. *)
  let client_bytes = (2 * elt_width) + 16 in
  Servsim.Cost.client_set (Session.cost session) ~tag:name client_bytes;
  {
    length;
    n;
    read = read_with session.Session.cipher;
    write = write_with session.Session.cipher;
    read_batch;
    write_batch;
    make_worker =
      (fun w ->
        let cipher = Session.clone_cipher session ~seed:(0x50D0 + w) in
        (read_with cipher, write_with cipher));
    client_bytes;
    destroy =
      (fun () ->
        Servsim.Server.drop_store session.Session.server name;
        Servsim.Cost.client_set (Session.cost session) ~tag:name 0);
  }

let enclave ~n =
  let length = Osort.Network.ceil_pow2 n in
  let arr = Array.make length pad_elt in
  {
    length;
    n;
    read = (fun i -> arr.(i));
    write = (fun i e -> arr.(i) <- e);
    read_batch = (fun idxs -> List.map (fun i -> arr.(i)) idxs);
    write_batch = (fun items -> List.iter (fun (i, e) -> arr.(i) <- e) items);
    make_worker = (fun _ -> ((fun i -> arr.(i)), fun i e -> arr.(i) <- e));
    client_bytes = length * elt_width;
    destroy = (fun () -> ());
  }
