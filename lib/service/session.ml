type tenant = {
  namespace : string;
  handler : Servsim.Handler.state;
  persist : Store.Tenant.t option;
  mutable pins : int; (* live connections currently serving this tenant *)
  mutable stamp : int; (* LRU clock value at last activity *)
}

type config = {
  data_dir : string option;
  max_resident : int;
  snapshot_every : int;
  on_evict : string -> unit;
}

let default_config = { data_dir = None; max_resident = 0; snapshot_every = 1024; on_evict = ignore }

type registry = {
  cfg : config;
  tbl : (string, tenant) Hashtbl.t;
  mutable clock : int; (* monotonic LRU clock; bumped on attach/journal *)
}

let create ?(config = default_config) () = { cfg = config; tbl = Hashtbl.create 16; clock = 0 }

let touch reg tenant =
  reg.clock <- reg.clock + 1;
  tenant.stamp <- reg.clock

let persist_out tenant =
  (match tenant.persist with
  | None -> ()
  | Some p ->
      Store.Tenant.snapshot p tenant.handler;
      Store.Tenant.close p);
  (* Free the dynamic engine's retained ORAM structures eagerly: the
     handler state is about to be dropped, and rehydration rebuilds the
     session from the update history just snapshotted. *)
  Servsim.Handler.release_dyn tenant.handler

(* Evict the least-recently-active unpinned tenant.  Only reached when a
   data dir is configured, so every candidate has a persistent image to
   land in; a tenant with live connections is never evicted (its state
   would fork from its journal). *)
let evict_one reg =
  let victim =
    Hashtbl.fold
      (fun _ t best ->
        if t.pins > 0 then best
        else
          match best with Some b when b.stamp <= t.stamp -> best | _ -> Some t)
      reg.tbl None
  in
  match victim with
  | None -> false
  | Some t ->
      persist_out t;
      Hashtbl.remove reg.tbl t.namespace;
      reg.cfg.on_evict t.namespace;
      true

let enforce_cap reg =
  if reg.cfg.data_dir <> None && reg.cfg.max_resident > 0 then begin
    let continue_ = ref true in
    while !continue_ && Hashtbl.length reg.tbl > reg.cfg.max_resident do
      continue_ := evict_one reg
    done
  end

let attach reg namespace =
  let tenant =
    match Hashtbl.find_opt reg.tbl namespace with
    | Some tenant -> tenant
    | None ->
        let persist, handler =
          match reg.cfg.data_dir with
          | None -> (None, Servsim.Handler.create_state ())
          | Some data_dir ->
              let p, h =
                Store.Tenant.open_ ~data_dir ~snapshot_every:reg.cfg.snapshot_every namespace
              in
              (Some p, h)
        in
        let tenant = { namespace; handler; persist; pins = 0; stamp = 0 } in
        Hashtbl.replace reg.tbl namespace tenant;
        tenant
  in
  tenant.pins <- tenant.pins + 1;
  touch reg tenant;
  enforce_cap reg;
  tenant

let release reg tenant =
  tenant.pins <- max 0 (tenant.pins - 1);
  enforce_cap reg

let journal reg tenant req =
  touch reg tenant;
  match tenant.persist with
  | None -> ()
  | Some p -> Store.Tenant.journal p ~state:tenant.handler req

let shutdown reg =
  Hashtbl.iter (fun _ tenant -> persist_out tenant) reg.tbl;
  Hashtbl.reset reg.tbl

let find reg namespace = Hashtbl.find_opt reg.tbl namespace
let count reg = Hashtbl.length reg.tbl

let dyn_resident reg =
  Hashtbl.fold (fun _ t n -> if Servsim.Handler.has_dyn t.handler then n + 1 else n) reg.tbl 0
let namespaces reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg.tbl [] |> List.sort compare

(* FNV-1a over the namespace, masked to stay non-negative on 64-bit
   ints.  Deterministic across runs and OCaml versions (unlike
   [Hashtbl.hash]) so a tenant's worker assignment — and therefore which
   shard-local registry holds its stores — is stable for the lifetime of
   a daemon and reproducible in tests. *)
let shard ~shards namespace =
  if shards <= 1 then 0
  else begin
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
      namespace;
    !h mod shards
  end
