type tenant = { namespace : string; handler : Servsim.Handler.state }

type registry = { tbl : (string, tenant) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let attach reg namespace =
  match Hashtbl.find_opt reg.tbl namespace with
  | Some tenant -> tenant
  | None ->
      let tenant = { namespace; handler = Servsim.Handler.create_state () } in
      Hashtbl.replace reg.tbl namespace tenant;
      tenant

let find reg namespace = Hashtbl.find_opt reg.tbl namespace
let count reg = Hashtbl.length reg.tbl
let namespaces reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg.tbl [] |> List.sort compare
