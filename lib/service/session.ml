type tenant = { namespace : string; handler : Servsim.Handler.state }

type registry = { tbl : (string, tenant) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let attach reg namespace =
  match Hashtbl.find_opt reg.tbl namespace with
  | Some tenant -> tenant
  | None ->
      let tenant = { namespace; handler = Servsim.Handler.create_state () } in
      Hashtbl.replace reg.tbl namespace tenant;
      tenant

let find reg namespace = Hashtbl.find_opt reg.tbl namespace
let count reg = Hashtbl.length reg.tbl
let namespaces reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg.tbl [] |> List.sort compare

(* FNV-1a over the namespace, masked to stay non-negative on 64-bit
   ints.  Deterministic across runs and OCaml versions (unlike
   [Hashtbl.hash]) so a tenant's worker assignment — and therefore which
   shard-local registry holds its stores — is stable for the lifetime of
   a daemon and reproducible in tests. *)
let shard ~shards namespace =
  if shards <= 1 then 0
  else begin
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
      namespace;
    !h mod shards
  end
