let reservoir_size = 4096

(* Per-namespace tracking is bounded two ways against tenant churn:
   an evicted tenant's counters are folded into scalar aggregates and
   its entry (with the 4096-float reservoir) is dropped, and past
   [max_tracked] live entries new namespaces share one catch-all bucket
   keyed by [overflow_key] (the empty string, which no session can
   claim — the daemon rejects an empty [Hello]). *)
let max_tracked = 1024

let overflow_key = ""

type ns = {
  mutable frames : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  lat : float array; (* ring of the most recent service latencies, seconds *)
  mutable lat_n : int; (* total latencies ever recorded *)
}

(* Frames-per-wake buckets: 0, 1, 2, 3, 4–7, 8–15, 16–31, 32+.  The
   shape of this histogram is the whole story of syscall batching: a
   select loop serving one frame per wakeup lives in bucket 1; a
   pipelined client against epoll pushes mass to the right. *)
let wake_buckets = [| "0"; "1"; "2"; "3"; "4-7"; "8-15"; "16-31"; "32+" |]

let wake_bucket n =
  if n <= 3 then max 0 n
  else if n <= 7 then 4
  else if n <= 15 then 5
  else if n <= 31 then 6
  else 7

type syscalls = { reads : int; writes : int; wakeups : int; rounds : int }

type t = {
  started : float;
  tbl : (string, ns) Hashtbl.t;
  mutable accepted : int;
  mutable rejected : int;
  mutable live : int;
  mutable evicted_count : int;
  mutable evicted_frames : int;
  mutable evicted_bytes_in : int;
  mutable evicted_bytes_out : int;
  (* Event-loop syscall counters for the loop that owns this [t] —
     daemon-lifetime scalars, deliberately outside the per-namespace
     table so tenant eviction never touches them. *)
  mutable sys_reads : int;
  mutable sys_writes : int;
  mutable sys_wakeups : int;
  mutable sys_rounds : int;
  mutable total_frames : int;
  wake_hist : int array;
}

let create () =
  {
    started = Unix.gettimeofday ();
    tbl = Hashtbl.create 16;
    accepted = 0;
    rejected = 0;
    live = 0;
    evicted_count = 0;
    evicted_frames = 0;
    evicted_bytes_in = 0;
    evicted_bytes_out = 0;
    sys_reads = 0;
    sys_writes = 0;
    sys_wakeups = 0;
    sys_rounds = 0;
    total_frames = 0;
    wake_hist = Array.make (Array.length wake_buckets) 0;
  }

let uptime_s t = Unix.gettimeofday () -. t.started

let on_accept t =
  t.accepted <- t.accepted + 1;
  t.live <- t.live + 1

let on_close t = t.live <- max 0 (t.live - 1)
let on_reject t = t.rejected <- t.rejected + 1
let live t = t.live
let accepted t = t.accepted
let rejected t = t.rejected

let sys_read t = t.sys_reads <- t.sys_reads + 1
let sys_write t = t.sys_writes <- t.sys_writes + 1
let sys_wakeup t = t.sys_wakeups <- t.sys_wakeups + 1
let sys_round t = t.sys_rounds <- t.sys_rounds + 1

let syscalls t =
  { reads = t.sys_reads; writes = t.sys_writes; wakeups = t.sys_wakeups; rounds = t.sys_rounds }

let record_wake_frames t n = t.wake_hist.(wake_bucket n) <- t.wake_hist.(wake_bucket n) + 1

let wake_histogram t =
  Array.to_list (Array.mapi (fun i label -> (label, t.wake_hist.(i))) wake_buckets)

let total_frames t = t.total_frames

let fresh_ns () =
  { frames = 0; bytes_in = 0; bytes_out = 0; lat = Array.make reservoir_size 0.; lat_n = 0 }

let find_ns t name =
  match Hashtbl.find_opt t.tbl name with
  | Some ns -> ns
  | None ->
      let key = if Hashtbl.length t.tbl >= max_tracked then overflow_key else name in
      (match Hashtbl.find_opt t.tbl key with
      | Some ns -> ns
      | None ->
          let ns = fresh_ns () in
          Hashtbl.replace t.tbl key ns;
          ns)

let record t ~namespace ~bytes_in ~bytes_out ~latency_s =
  let ns = find_ns t namespace in
  t.total_frames <- t.total_frames + 1;
  ns.frames <- ns.frames + 1;
  ns.bytes_in <- ns.bytes_in + bytes_in;
  ns.bytes_out <- ns.bytes_out + bytes_out;
  ns.lat.(ns.lat_n mod reservoir_size) <- latency_s;
  ns.lat_n <- ns.lat_n + 1

let evict_ns t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> ()
  | Some ns ->
      t.evicted_count <- t.evicted_count + 1;
      t.evicted_frames <- t.evicted_frames + ns.frames;
      t.evicted_bytes_in <- t.evicted_bytes_in + ns.bytes_in;
      t.evicted_bytes_out <- t.evicted_bytes_out + ns.bytes_out;
      Hashtbl.remove t.tbl name

let tracked t = Hashtbl.length t.tbl
let evicted t = t.evicted_count
let evicted_frames t = t.evicted_frames

let namespaces t =
  Hashtbl.fold (fun k _ acc -> if String.equal k overflow_key then acc else k :: acc) t.tbl []
  |> List.sort compare

(* Nearest-rank percentile over a sorted array. *)
let percentile_sorted a q =
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let percentiles xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  (percentile_sorted a 0.50, percentile_sorted a 0.95, percentile_sorted a 0.99)

type summary = {
  frames : int;
  bytes_in : int;
  bytes_out : int;
  samples : int;
  p50_s : float;
  p95_s : float;
  p99_s : float;
}

let empty_summary =
  { frames = 0; bytes_in = 0; bytes_out = 0; samples = 0; p50_s = 0.; p95_s = 0.; p99_s = 0. }

let ns_summary t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> empty_summary
  | Some ns ->
      let n = min ns.lat_n reservoir_size in
      let a = Array.sub ns.lat 0 n in
      Array.sort compare a;
      {
        frames = ns.frames;
        bytes_in = ns.bytes_in;
        bytes_out = ns.bytes_out;
        samples = n;
        p50_s = percentile_sorted a 0.50;
        p95_s = percentile_sorted a 0.95;
        p99_s = percentile_sorted a 0.99;
      }
