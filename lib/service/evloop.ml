(* The one module allowed to speak raw readiness syscalls (fdlint R10).
   See evloop.mli for the contract and evloop_stubs.c for the C side. *)

type backend = Select | Poll | Epoll

let all = [ Select; Poll; Epoll ]

external have_poll : unit -> bool = "sfdd_ev_have_poll"
external have_epoll : unit -> bool = "sfdd_ev_have_epoll"

external poll_raw : int array -> int array -> int array -> int -> int -> int
  = "sfdd_ev_poll"

external epoll_create_raw : unit -> int = "sfdd_ev_epoll_create"
external epoll_ctl_raw : int -> int -> int -> int -> unit = "sfdd_ev_epoll_ctl"
external epoll_wait_raw : int -> int array -> int array -> int -> int = "sfdd_ev_epoll_wait"

(* On Unix a [file_descr] is the int itself; this is the same identity
   view [Remote_server] uses for fd passing. *)
external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

let compiled_in = function Select -> true | Poll -> have_poll () | Epoll -> have_epoll ()
let available () = List.filter compiled_in all
let best () = if have_epoll () then Epoll else if have_poll () then Poll else Select
let to_string = function Select -> "select" | Poll -> "poll" | Epoll -> "epoll"

let of_string = function
  | "auto" -> Ok (best ())
  | "select" -> Ok Select
  | "poll" -> if have_poll () then Ok Poll else Error "poll backend not compiled in"
  | "epoll" -> if have_epoll () then Ok Epoll else Error "epoll backend not compiled in"
  | s -> Error (Printf.sprintf "unknown backend %S (expected auto|select|poll|epoll)" s)

(* Event bits, shared with the C stubs. *)
let ev_read = 1
let ev_write = 2
let fd_setsize = 1024

type t = {
  backend : backend;
  epfd : int; (* epoll instance; -1 for other backends *)
  slots : (int, int) Hashtbl.t; (* fd -> index into the dense arrays *)
  (* Dense registration arrays, kept in sync by add/set/remove.  The
     poll backend hands them to poll(2) directly; select rebuilds its
     two lists from them; epoll only uses them as bookkeeping. *)
  mutable fds : int array;
  mutable interest : int array;
  mutable scratch : int array; (* poll revents out-array, same capacity *)
  mutable n : int;
  (* Ready-set of the last [wait], exposed via the indexed accessors. *)
  mutable r_fds : int array;
  mutable r_evs : int array;
  mutable r_n : int;
}

let backend t = t.backend
let fd_count t = t.n
let mem t fd = Hashtbl.mem t.slots (fd_int fd)

let create backend =
  if not (compiled_in backend) then
    invalid_arg ("Evloop.create: backend not compiled in: " ^ to_string backend);
  let epfd = match backend with Epoll -> epoll_create_raw () | Select | Poll -> -1 in
  {
    backend;
    epfd;
    slots = Hashtbl.create 64;
    fds = Array.make 64 (-1);
    interest = Array.make 64 0;
    scratch = Array.make 64 0;
    n = 0;
    r_fds = Array.make 64 (-1);
    r_evs = Array.make 64 0;
    r_n = 0;
  }

let close t =
  if t.epfd >= 0 then (try Unix.close (int_fd t.epfd) with Unix.Unix_error _ -> ());
  Hashtbl.reset t.slots;
  t.n <- 0;
  t.r_n <- 0

let compatible t fd =
  match t.backend with Select -> fd_int fd < fd_setsize | Poll | Epoll -> true

let bits ~read ~write = (if read then ev_read else 0) lor (if write then ev_write else 0)

let grow t =
  let cap = Array.length t.fds * 2 in
  let fds = Array.make cap (-1) and interest = Array.make cap 0 in
  Array.blit t.fds 0 fds 0 t.n;
  Array.blit t.interest 0 interest 0 t.n;
  t.fds <- fds;
  t.interest <- interest;
  t.scratch <- Array.make cap 0

(* EPOLL_CTL_DEL after the peer vanished can report ENOENT/EBADF; the
   registration is gone either way, which is all remove promises. *)
let epoll_ctl_quiet t op fd bits =
  try epoll_ctl_raw t.epfd op fd bits
  with Unix.Unix_error ((Unix.ENOENT | Unix.EBADF), _, _) when op = 2 -> ()

let rec add t fd ~read ~write =
  let fdi = fd_int fd in
  match Hashtbl.find_opt t.slots fdi with
  | Some _ -> set t fd ~read ~write
  | None ->
      if t.n >= Array.length t.fds then grow t;
      let b = bits ~read ~write in
      t.fds.(t.n) <- fdi;
      t.interest.(t.n) <- b;
      Hashtbl.replace t.slots fdi t.n;
      t.n <- t.n + 1;
      if t.backend = Epoll then epoll_ctl_raw t.epfd 0 fdi b

and set t fd ~read ~write =
  let fdi = fd_int fd in
  match Hashtbl.find_opt t.slots fdi with
  | None -> add t fd ~read ~write
  | Some i ->
      let b = bits ~read ~write in
      if t.interest.(i) <> b then begin
        t.interest.(i) <- b;
        if t.backend = Epoll then epoll_ctl_quiet t 1 fdi b
      end

let remove t fd =
  let fdi = fd_int fd in
  match Hashtbl.find_opt t.slots fdi with
  | None -> ()
  | Some i ->
      if t.backend = Epoll then epoll_ctl_quiet t 2 fdi 0;
      Hashtbl.remove t.slots fdi;
      let last = t.n - 1 in
      if i <> last then begin
        t.fds.(i) <- t.fds.(last);
        t.interest.(i) <- t.interest.(last);
        Hashtbl.replace t.slots t.fds.(i) i
      end;
      t.fds.(last) <- -1;
      t.n <- last

let ensure_ready_cap t cap =
  if Array.length t.r_fds < cap then begin
    let cap = max cap (Array.length t.r_fds * 2) in
    t.r_fds <- Array.make cap (-1);
    t.r_evs <- Array.make cap 0
  end

let push_ready t fd ev =
  ensure_ready_cap t (t.r_n + 1);
  t.r_fds.(t.r_n) <- fd;
  t.r_evs.(t.r_n) <- ev;
  t.r_n <- t.r_n + 1

let timeout_ms timeout =
  if timeout < 0. then -1
  else if timeout = 0. then 0
  else max 1 (int_of_float (Float.ceil (timeout *. 1000.)))

(* [EINTR] is not retried here: it becomes a zero-event round, so a
   signal handler's self-pipe write is picked up by the very next wait
   with freshly computed deadlines — same behavior the select loops
   had, without the backend needing signal awareness. *)
let wait_select t ~timeout =
  let rds = ref [] and wrs = ref [] in
  for i = 0 to t.n - 1 do
    if t.interest.(i) land ev_read <> 0 then rds := int_fd t.fds.(i) :: !rds;
    if t.interest.(i) land ev_write <> 0 then wrs := int_fd t.fds.(i) :: !wrs
  done;
  match Unix.select !rds !wrs [] timeout with
  | rd_ready, wr_ready, _ ->
      List.iter (fun fd -> push_ready t (fd_int fd) ev_read) rd_ready;
      List.iter (fun fd -> push_ready t (fd_int fd) ev_write) wr_ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
[@@lint.allow "eintr-discipline"]

let wait_poll t ~timeout =
  match poll_raw t.fds t.interest t.scratch t.n (timeout_ms timeout) with
  | _ready ->
      ensure_ready_cap t t.n;
      for i = 0 to t.n - 1 do
        if t.scratch.(i) <> 0 then begin
          t.r_fds.(t.r_n) <- t.fds.(i);
          t.r_evs.(t.r_n) <- t.scratch.(i);
          t.r_n <- t.r_n + 1
        end
      done
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let wait_epoll t ~timeout =
  (* If the ready set filled completely, level-triggering delivers the
     overflow next round; grow so steady state reports in one batch. *)
  ensure_ready_cap t (max 64 (min t.n 4096));
  match epoll_wait_raw t.epfd t.r_fds t.r_evs (timeout_ms timeout) with
  | n -> t.r_n <- n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let wait t ~timeout =
  t.r_n <- 0;
  (match t.backend with
  | Select -> wait_select t ~timeout
  | Poll -> wait_poll t ~timeout
  | Epoll -> wait_epoll t ~timeout);
  t.r_n

let ready_fd t i = int_fd t.r_fds.(i)
let ready_read t i = t.r_evs.(i) land ev_read <> 0
let ready_write t i = t.r_evs.(i) land ev_write <> 0
