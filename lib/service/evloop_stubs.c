/* Readiness-backend stubs for Service.Evloop.
 *
 * Two optional backends, each behind a feature-test macro emitted by
 * config/discover.ml at build time:
 *
 *   -DSFDD_HAVE_POLL    poll(2)   — no FD_SETSIZE wall, O(n) scan
 *   -DSFDD_HAVE_EPOLL   epoll(7)  — Linux, O(ready) wakeups
 *
 * Both are used level-triggered: the OCaml daemon drains sockets to
 * EAGAIN anyway, so level semantics cost nothing and keep the three
 * backends behaviorally identical.  Event bits on the OCaml side are a
 * tiny portable set: 1 = readable (or error/hup — the subsequent read
 * surfaces the condition), 2 = writable.
 *
 * All stubs release the runtime lock around the blocking wait and
 * report failures as Unix_error via caml_uerror; EINTR is retried on
 * the OCaml side so signal delivery (e.g. the daemon's SIGTERM-to-
 * self-pipe handler) behaves exactly as it does with Unix.select. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#ifdef SFDD_HAVE_POLL
#include <poll.h>
#endif
#ifdef SFDD_HAVE_EPOLL
#include <sys/epoll.h>
#endif

#define SFDD_EV_READ 1
#define SFDD_EV_WRITE 2

CAMLprim value sfdd_ev_have_poll(value unit)
{
  (void)unit;
#ifdef SFDD_HAVE_POLL
  return Val_true;
#else
  return Val_false;
#endif
}

CAMLprim value sfdd_ev_have_epoll(value unit)
{
  (void)unit;
#ifdef SFDD_HAVE_EPOLL
  return Val_true;
#else
  return Val_false;
#endif
}

/* poll(fds, interest, revents_out, count, timeout_ms) -> ready count.
 * [fds] and [interest] are parallel int arrays of length >= count;
 * [revents_out] receives the portable event bits (0 = not ready). */
CAMLprim value sfdd_ev_poll(value vfds, value vinterest, value vrevents,
                            value vcount, value vtimeout)
{
#ifdef SFDD_HAVE_POLL
  CAMLparam5(vfds, vinterest, vrevents, vcount, vtimeout);
  long count = Long_val(vcount);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfds = NULL;
  int ret;
  long i;

  if (count < 0 || count > Wosize_val(vfds) || count > Wosize_val(vinterest)
      || count > Wosize_val(vrevents))
    caml_invalid_argument("sfdd_ev_poll: count out of range");
  if (count > 0) {
    pfds = (struct pollfd *)malloc((size_t)count * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < count; i++) {
      long bits = Long_val(Field(vinterest, i));
      pfds[i].fd = (int)Long_val(Field(vfds, i));
      pfds[i].events = 0;
      if (bits & SFDD_EV_READ) pfds[i].events |= POLLIN;
      if (bits & SFDD_EV_WRITE) pfds[i].events |= POLLOUT;
      pfds[i].revents = 0;
    }
  }

  caml_enter_blocking_section();
  ret = poll(pfds, (nfds_t)count, timeout);
  caml_leave_blocking_section();

  if (ret < 0) {
    int saved = errno;
    free(pfds);
    errno = saved;
    uerror("poll", Nothing);
  }
  for (i = 0; i < count; i++) {
    long bits = 0;
    short rev = pfds[i].revents;
    /* Error/hangup conditions surface as readability: the next read
     * returns 0 or the errno, which is the daemon's EOF/error path. */
    if (rev & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) bits |= SFDD_EV_READ;
    if (rev & POLLOUT) bits |= SFDD_EV_WRITE;
    Store_field(vrevents, i, Val_long(bits));
  }
  free(pfds);
  CAMLreturn(Val_int(ret));
#else
  (void)vfds; (void)vinterest; (void)vrevents; (void)vcount; (void)vtimeout;
  caml_failwith("sfdd_ev_poll: poll backend not compiled in");
#endif
}

/* epoll_create1(EPOLL_CLOEXEC) -> epoll fd. */
CAMLprim value sfdd_ev_epoll_create(value unit)
{
#ifdef SFDD_HAVE_EPOLL
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) uerror("epoll_create1", Nothing);
  return Val_int(fd);
#else
  (void)unit;
  caml_failwith("sfdd_ev_epoll_create: epoll backend not compiled in");
#endif
}

/* epoll_ctl(epfd, op, fd, interest): op 0 = ADD, 1 = MOD, 2 = DEL. */
CAMLprim value sfdd_ev_epoll_ctl(value vep, value vop, value vfd, value vinterest)
{
#ifdef SFDD_HAVE_EPOLL
  struct epoll_event ev;
  int op;
  long bits = Long_val(vinterest);
  memset(&ev, 0, sizeof ev);
  ev.events = 0;
  if (bits & SFDD_EV_READ) ev.events |= EPOLLIN;
  if (bits & SFDD_EV_WRITE) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) < 0)
    uerror("epoll_ctl", Nothing);
  return Val_unit;
#else
  (void)vep; (void)vop; (void)vfd; (void)vinterest;
  caml_failwith("sfdd_ev_epoll_ctl: epoll backend not compiled in");
#endif
}

/* epoll_wait(epfd, fds_out, evs_out, timeout_ms) -> ready count; fills
 * the two parallel out-arrays (capped at their length). */
CAMLprim value sfdd_ev_epoll_wait(value vep, value vfds, value vevs, value vtimeout)
{
#ifdef SFDD_HAVE_EPOLL
  CAMLparam4(vep, vfds, vevs, vtimeout);
  long cap = Wosize_val(vfds);
  struct epoll_event *evs;
  int ret;
  long i;

  if (Wosize_val(vevs) < cap) cap = Wosize_val(vevs);
  if (cap <= 0) caml_invalid_argument("sfdd_ev_epoll_wait: empty out-arrays");
  evs = (struct epoll_event *)malloc((size_t)cap * sizeof(struct epoll_event));
  if (evs == NULL) caml_raise_out_of_memory();

  caml_enter_blocking_section();
  ret = epoll_wait(Int_val(vep), evs, (int)cap, Int_val(vtimeout));
  caml_leave_blocking_section();

  if (ret < 0) {
    int saved = errno;
    free(evs);
    errno = saved;
    uerror("epoll_wait", Nothing);
  }
  for (i = 0; i < ret; i++) {
    long bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP))
      bits |= SFDD_EV_READ;
    if (evs[i].events & EPOLLOUT) bits |= SFDD_EV_WRITE;
    Store_field(vfds, i, Val_long((long)evs[i].data.fd));
    Store_field(vevs, i, Val_long(bits));
  }
  free(evs);
  CAMLreturn(Val_int(ret));
#else
  (void)vep; (void)vfds; (void)vevs; (void)vtimeout;
  caml_failwith("sfdd_ev_epoll_wait: epoll backend not compiled in");
#endif
}
