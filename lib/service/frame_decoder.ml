(* Reassembly buffer kept as one growable byte array with an explicit
   consumed offset.  The previous implementation snapshotted the buffer
   to a string and rebuilt it on every decoded frame, which is O(n²)
   across a pipelined burst; here a decoded frame just advances [lo],
   and the surviving bytes are moved only when the dead prefix passes
   [compact_threshold] (or the buffer must grow) — amortized O(1) copies
   per byte regardless of how the frames arrive. *)

type t = {
  mutable buf : bytes;
  mutable lo : int; (* first unconsumed byte *)
  mutable hi : int; (* one past the last valid byte; frames live in [lo, hi) *)
  mutable stuck_at : int;
      (* pending-byte count at the last Incomplete parse; skip
         re-parsing until more bytes arrive *)
  mutable compactions : int; (* diagnostic: times live bytes were moved *)
}

let compact_threshold = 4096

let create () = { buf = Bytes.create 256; lo = 0; hi = 0; stuck_at = -1; compactions = 0 }

let pending_bytes t = t.hi - t.lo
let compactions t = t.compactions

let compact t =
  if t.lo > 0 then begin
    let n = pending_bytes t in
    Bytes.blit t.buf t.lo t.buf 0 n;
    t.lo <- 0;
    t.hi <- n;
    t.compactions <- t.compactions + 1
  end

let feed t bytes ~off ~len =
  if len > 0 then begin
    if t.hi + len > Bytes.length t.buf then begin
      compact t;
      if t.hi + len > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf) in
        while t.hi + len > !cap do
          cap := !cap * 2
        done;
        let buf = Bytes.create !cap in
        Bytes.blit t.buf 0 buf 0 t.hi;
        t.buf <- buf
      end
    end;
    Bytes.blit bytes off t.buf t.hi len;
    t.hi <- t.hi + len
  end

let next t =
  let pending = pending_bytes t in
  if pending = 0 || pending = t.stuck_at then None
  else begin
    let pos = ref t.lo in
    match Servsim.Wire.read_request_src (Servsim.Wire.bytes_source t.buf pos ~limit:t.hi) with
    | req ->
        let consumed = !pos - t.lo in
        t.lo <- !pos;
        if t.lo = t.hi then begin
          (* fully drained: reset for free, no copy *)
          t.lo <- 0;
          t.hi <- 0
        end
        else if t.lo >= compact_threshold then compact t;
        t.stuck_at <- -1;
        Some (req, consumed)
    | exception Servsim.Wire.Incomplete ->
        t.stuck_at <- pending;
        None
  end
