type t = {
  buf : Buffer.t; (* unconsumed bytes, frame-aligned at offset 0 *)
  mutable stuck_at : int;
      (* buffer length at the last Incomplete parse; skip re-parsing
         until more bytes arrive *)
}

let create () = { buf = Buffer.create 256; stuck_at = -1 }

let feed t bytes ~off ~len = Buffer.add_subbytes t.buf bytes off len

let pending_bytes t = Buffer.length t.buf

let next t =
  if Buffer.length t.buf = 0 || Buffer.length t.buf = t.stuck_at then None
  else begin
    let s = Buffer.contents t.buf in
    let pos = ref 0 in
    match Servsim.Wire.read_request_src (Servsim.Wire.string_source s pos) with
    | req ->
        let consumed = !pos in
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s consumed (String.length s - consumed);
        t.stuck_at <- -1;
        Some (req, consumed)
    | exception Servsim.Wire.Incomplete ->
        t.stuck_at <- String.length s;
        None
  end
