type config = {
  unix_path : string option;
  tcp : (string * int) option; (* bind address, port (0 = ephemeral) *)
  max_conns : int;
  idle_timeout : float; (* seconds; <= 0 disables *)
  drain_grace : float; (* seconds to keep serving after a stop request *)
  log : string -> unit;
}

let default_config =
  {
    unix_path = None;
    tcp = None;
    max_conns = 64;
    idle_timeout = 0.;
    drain_grace = 5.;
    log = ignore;
  }

type t = {
  cfg : config;
  registry : Session.registry;
  metrics : Metrics.t;
  mutable listeners : Unix.file_descr list;
  conns : (Unix.file_descr, Conn.t) Hashtbl.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable tcp_port : int option;
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable running : bool;
  mutable next_id : int;
  read_buf : bytes;
}

let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* EINTR-retrying syscall wrappers — the only sites in [lib/service]
   allowed to touch raw Unix I/O (rule R5, eintr-discipline).  Only
   EINTR is retried: in this non-blocking event loop EAGAIN/EWOULDBLOCK
   mean "come back on the next select round" and stay with the caller. *)
let read_retry fd buf off len = retry_intr (fun () -> Unix.read fd buf off len)
[@@lint.allow "eintr-discipline"]

let write_retry fd buf off len = retry_intr (fun () -> Unix.write fd buf off len)
[@@lint.allow "eintr-discipline"]

let accept_retry ?cloexec fd = retry_intr (fun () -> Unix.accept ?cloexec fd)
[@@lint.allow "eintr-discipline"]

let select_retry rds wrs exs timeout = retry_intr (fun () -> Unix.select rds wrs exs timeout)
[@@lint.allow "eintr-discipline"]

let logf t fmt = Printf.ksprintf t.cfg.log fmt

(* Reading a connection whose responses the client refuses to drain would
   grow the output buffer without bound; past this high-water mark we
   stop reading from it until the client catches up. *)
let out_hwm = 8 * 1024 * 1024

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let listen_tcp addr port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound_port)

let create cfg =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Daemon.create: need at least one of unix_path / tcp";
  let listeners = ref [] in
  let tcp_port = ref None in
  (match cfg.unix_path with
  | Some path -> listeners := listen_unix path :: !listeners
  | None -> ());
  (match cfg.tcp with
  | Some (addr, port) ->
      let fd, bound = listen_tcp addr port in
      tcp_port := Some bound;
      listeners := fd :: !listeners
  | None -> ());
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  Unix.set_nonblock stop_w;
  {
    cfg;
    registry = Session.create ();
    metrics = Metrics.create ();
    listeners = !listeners;
    conns = Hashtbl.create 32;
    stop_r;
    stop_w;
    tcp_port = !tcp_port;
    draining = false;
    drain_deadline = infinity;
    running = true;
    next_id = 0;
    read_buf = Bytes.create 65536;
  }

let metrics t = t.metrics
let registry t = t.registry
let tcp_port t = t.tcp_port
let live_conns t = Hashtbl.length t.conns

(* Safe from a signal handler or another thread: one byte down the
   self-pipe wakes the select loop, which drains the pipe and starts the
   graceful drain. *)
let stop t =
  try ignore (write_retry t.stop_w (Bytes.of_string "s") 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) -> ()

let install_stop_signals t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ())

let ctx t =
  { Conn.registry = t.registry; metrics = t.metrics; live_sessions = (fun () -> live_conns t) }

let peer_string = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let close_conn t conn reason =
  let fd = Conn.fd conn in
  if Hashtbl.mem t.conns fd then begin
    Hashtbl.remove t.conns fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Metrics.on_close t.metrics;
    logf t "conn %s closed (%s)" (Conn.peer conn) reason
  end

let flush_conn t conn =
  let rec go () =
    if Conn.wants_write conn then begin
      let buf, off = Conn.output conn in
      match write_retry (Conn.fd conn) buf off (Bytes.length buf - off) with
      | n ->
          Conn.wrote conn n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn t conn "write error"
    end
  in
  go ();
  if Conn.finished conn then close_conn t conn "bye"

let read_conn t conn ~now =
  let rec go () =
    match read_retry (Conn.fd conn) t.read_buf 0 (Bytes.length t.read_buf) with
    | 0 ->
        (* EOF — possibly mid-frame.  Only this connection dies; its
           tenant's state stays consistent because partial frames are
           never dispatched. *)
        close_conn t conn "eof"
    | n ->
        Conn.on_bytes (ctx t) conn t.read_buf ~len:n ~now;
        if Hashtbl.mem t.conns (Conn.fd conn) && not (Conn.closing conn) then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t conn "read error"
  in
  (try go ()
   with e ->
     (* One connection's failure must never take the daemon down. *)
     logf t "conn %s: unexpected %s" (Conn.peer conn) (Printexc.to_string e);
     close_conn t conn "internal error");
  if Hashtbl.mem t.conns (Conn.fd conn) then flush_conn t conn

let accept_all t lfd ~now =
  let rec go () =
    match accept_retry ~cloexec:true lfd with
    | fd, addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        if live_conns t >= t.cfg.max_conns then begin
          (* Over the cap: turn the connection away before it can speak.
             The client sees EOF during its version handshake. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Metrics.on_reject t.metrics;
          logf t "conn %s rejected (cap %d)" (peer_string addr) t.cfg.max_conns
        end
        else begin
          t.next_id <- t.next_id + 1;
          let conn = Conn.create ~id:t.next_id ~peer:(peer_string addr) ~now fd in
          Hashtbl.replace t.conns fd conn;
          Metrics.on_accept t.metrics;
          logf t "conn %s accepted (#%d, %d live)" (peer_string addr) t.next_id (live_conns t)
        end;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let start_drain t =
  if not t.draining then begin
    t.draining <- true;
    t.drain_deadline <- Unix.gettimeofday () +. t.cfg.drain_grace;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
    t.listeners <- [];
    logf t "drain: stopped accepting; %d connection(s) live" (live_conns t)
  end

let sweep_idle t ~now =
  if t.cfg.idle_timeout > 0. then begin
    let idle =
      Hashtbl.fold
        (fun _ conn acc ->
          if now -. Conn.last_active conn > t.cfg.idle_timeout then conn :: acc else acc)
        t.conns []
    in
    List.iter (fun conn -> close_conn t conn "idle timeout") idle
  end

let step t =
  let now = Unix.gettimeofday () in
  sweep_idle t ~now;
  if t.draining && (live_conns t = 0 || now > t.drain_deadline) then begin
    Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
    |> List.iter (fun c -> close_conn t c "drain deadline");
    t.running <- false
  end
  else begin
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [] in
    let readable_conns =
      List.filter
        (fun fd ->
          let conn = Hashtbl.find t.conns fd in
          (not (Conn.closing conn)) && Conn.pending_output conn < out_hwm)
        conn_fds
    in
    let rds = (t.stop_r :: t.listeners) @ readable_conns in
    let wrs = List.filter (fun fd -> Conn.wants_write (Hashtbl.find t.conns fd)) conn_fds in
    match select_retry rds wrs [] 0.25 with
    | rd_ready, wr_ready, _ ->
        if List.mem t.stop_r rd_ready then begin
          let b = Bytes.create 16 in
          (try
             while read_retry t.stop_r b 0 16 > 0 do
               ()
             done
           with Unix.Unix_error _ -> ());
          start_drain t
        end;
        let now = Unix.gettimeofday () in
        List.iter
          (fun fd ->
            if List.mem fd t.listeners then accept_all t fd ~now
            else
              match Hashtbl.find_opt t.conns fd with
              | Some conn -> read_conn t conn ~now
              | None -> ())
          rd_ready;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.conns fd with
            | Some conn -> flush_conn t conn
            | None -> ())
          wr_ready
  end

let run t =
  logf t "serving (max %d connections)" t.cfg.max_conns;
  while t.running do
    step t
  done;
  (* Final cleanup: listeners are already gone if we drained; close
     whatever remains and remove the Unix socket path. *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] |> List.iter (fun c -> close_conn t c "shutdown");
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  (match t.cfg.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  logf t "stopped"
