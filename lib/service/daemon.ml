type config = {
  unix_path : string option;
  tcp : (string * int) option; (* bind address, port (0 = ephemeral) *)
  max_conns : int;
  idle_timeout : float; (* seconds; <= 0 disables *)
  drain_grace : float; (* seconds to keep serving after a stop request *)
  domains : int; (* worker event loops; 1 = serve on the acceptor loop itself *)
  backend : Evloop.backend; (* readiness backend shared by every loop *)
  data_dir : string option; (* root of per-tenant durable images; None = in-memory *)
  max_resident : int; (* LRU tenant cap per worker registry; <= 0 disables *)
  log : string -> unit;
}

let default_config =
  {
    unix_path = None;
    tcp = None;
    max_conns = 64;
    idle_timeout = 0.;
    drain_grace = 5.;
    domains = 1;
    backend = Evloop.Select;
    data_dir = None;
    max_resident = 0;
    log = ignore;
  }

(* One worker domain: an independent event loop exclusively owning its
   shard of tenants.  Everything on the per-frame hot path — [conns],
   [registry], [metrics], [read_buf], the [ev] registration state — is
   touched only by the owning domain, so serving needs no locks; the
   mutex guards only the cold handoff/drain mailbox, entered when the
   acceptor wakes us through the self-pipe. *)
type worker = {
  w_idx : int;
  ev : Evloop.t;
  registry : Session.registry;
  metrics : Metrics.t;
  conns : (Unix.file_descr, Conn.t) Hashtbl.t;
  mu : Mutex.t; (* guards [inbox] and [drain_req] *)
  inbox : Conn.t Queue.t; (* authenticated connections handed off by the acceptor *)
  mutable drain_req : bool;
  wake_r : Unix.file_descr; (* self-pipe: handoff and shutdown wakeups *)
  wake_w : Unix.file_descr;
  read_buf : bytes;
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable w_running : bool;
}

type t = {
  cfg : config;
  ev : Evloop.t; (* the acceptor's loop; also worker 0's when inline *)
  workers : worker array;
  accept_metrics : Metrics.t; (* accept/reject counters; frame metrics are per-worker *)
  live : int Atomic.t; (* connections across the acceptor and every worker *)
  mutable listeners : Unix.file_descr list;
  pre : (Unix.file_descr, Conn.t) Hashtbl.t; (* pre-session conns, acceptor-owned *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable tcp_port : int option;
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable running : bool;
  mutable next_id : int;
  read_buf : bytes;
}

let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* EINTR-retrying syscall wrappers — the only sites in [lib/service]
   outside {!Evloop} allowed to touch raw Unix I/O (rules R5
   eintr-discipline and R10 event-loop-hygiene).  Only EINTR is
   retried: in this non-blocking event loop EAGAIN/EWOULDBLOCK mean
   "come back on the next readiness round" and stay with the caller. *)
let read_retry fd buf off len = retry_intr (fun () -> Unix.read fd buf off len)
[@@lint.allow "eintr-discipline"]

let write_retry fd buf off len = retry_intr (fun () -> Unix.write fd buf off len)
[@@lint.allow "eintr-discipline"]

let accept_retry ?cloexec fd = retry_intr (fun () -> Unix.accept ?cloexec fd)
[@@lint.allow "eintr-discipline"]

let logf t fmt = Printf.ksprintf t.cfg.log fmt

(* Reading a connection whose responses the client refuses to drain would
   grow the output buffer without bound; past this high-water mark we
   stop reading from it until the client catches up. *)
let out_hwm = 8 * 1024 * 1024

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let listen_tcp addr port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound_port)

let make_worker cfg w_idx =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let metrics = Metrics.create () in
  (* Evicting a tenant also folds away its metrics entry, so tenant
     churn cannot grow the per-namespace table without bound. *)
  let registry =
    Session.create
      ~config:
        {
          Session.default_config with
          data_dir = cfg.data_dir;
          max_resident = cfg.max_resident;
          on_evict = Metrics.evict_ns metrics;
        }
      ()
  in
  let ev = Evloop.create cfg.backend in
  Evloop.add ev wake_r ~read:true ~write:false;
  {
    w_idx;
    ev;
    registry;
    metrics;
    conns = Hashtbl.create 32;
    mu = Mutex.create ();
    inbox = Queue.create ();
    drain_req = false;
    wake_r;
    wake_w;
    read_buf = Bytes.create 65536;
    draining = false;
    drain_deadline = infinity;
    w_running = true;
  }

let create cfg =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Daemon.create: need at least one of unix_path / tcp";
  if cfg.domains < 1 then invalid_arg "Daemon.create: domains must be >= 1";
  let listeners = ref [] in
  let tcp_port = ref None in
  (match cfg.unix_path with
  | Some path -> listeners := listen_unix path :: !listeners
  | None -> ());
  (match cfg.tcp with
  | Some (addr, port) ->
      let fd, bound = listen_tcp addr port in
      tcp_port := Some bound;
      listeners := fd :: !listeners
  | None -> ());
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  Unix.set_nonblock stop_w;
  (match cfg.data_dir with Some dir -> Store.Fsio.mkdirs dir | None -> ());
  let ev = Evloop.create cfg.backend in
  Evloop.add ev stop_r ~read:true ~write:false;
  List.iter (fun fd -> Evloop.add ev fd ~read:true ~write:false) !listeners;
  {
    cfg;
    ev;
    workers = Array.init cfg.domains (make_worker cfg);
    accept_metrics = Metrics.create ();
    live = Atomic.make 0;
    listeners = !listeners;
    pre = Hashtbl.create 32;
    stop_r;
    stop_w;
    tcp_port = !tcp_port;
    draining = false;
    drain_deadline = infinity;
    running = true;
    next_id = 0;
    read_buf = Bytes.create 65536;
  }

(* With one worker there is no domain to hand off to: the acceptor loop
   serves worker 0's connections itself, exactly like the single-loop
   daemon this design grew out of. *)
let inline t = Array.length t.workers = 1

let domains t = Array.length t.workers
let backend t = Evloop.backend t.ev
let metrics t = t.accept_metrics
let worker_metrics t = Array.to_list (Array.map (fun w -> w.metrics) t.workers)
let registries t = Array.to_list (Array.map (fun w -> w.registry) t.workers)
let tcp_port t = t.tcp_port
let live_conns t = Atomic.get t.live
let shard_of t ns = Session.shard ~shards:(Array.length t.workers) ns

let ns_summary t ns = Metrics.ns_summary t.workers.(shard_of t ns).metrics ns

(* Preallocated one-byte signal payloads: stop/wake fire on every
   handoff and every drain broadcast, and allocating a fresh [Bytes] per
   signal was measurable churn on the handoff path.  Never mutated. *)
let stop_byte = Bytes.make 1 's'
let wake_byte = Bytes.make 1 'w'

(* Safe from a signal handler or another thread: one byte down the
   self-pipe wakes the acceptor loop, which drains the pipe and starts
   the graceful drain.  Only genuinely-expected errnos are swallowed —
   a full pipe (a wake byte is already pending) or a peer already gone.
   EBADF is *not* expected: the self-pipes live for the daemon's whole
   run, so a bad descriptor here means a double-close or fd-reuse bug
   and is logged instead of masked. *)
let stop t =
  try ignore (write_retry t.stop_w stop_byte 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  | Unix.Unix_error (Unix.EBADF, _, _) ->
      t.cfg.log "stop: EBADF on the stop pipe — double-close or fd-reuse bug"

let install_stop_signals t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ())

(* A full pipe is fine: an unread wake byte is already pending, so the
   worker will wake regardless.  EBADF means the worker's pipe was
   closed under us — a lifecycle bug worth a log line, not silence. *)
let wake t (w : worker) =
  try ignore (write_retry w.wake_w wake_byte 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  | Unix.Unix_error (Unix.EBADF, _, _) ->
      logf t "wake: EBADF on worker %d's pipe — double-close or fd-reuse bug" w.w_idx

let drain_pipe fd =
  let b = Bytes.create 16 in
  try
    while read_retry fd b 0 16 > 0 do
      ()
    done
  with Unix.Unix_error _ -> ()

let w_ctx t (w : worker) =
  {
    Conn.registry = w.registry;
    metrics = w.metrics;
    live_sessions = (fun () -> Atomic.get t.live);
  }

let peer_string = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

(* {2 Connection service, shared by the acceptor (pre-session table) and
   every worker (its own shard table)}

   Each live connection is registered with its loop's {!Evloop} and its
   interest is re-derived after every service step: readable unless
   closing or past the output high-water mark, writable while output is
   pending.  [Evloop.set] is a no-op when nothing changed, so the
   steady-state hot path issues no registration syscalls. *)

let sync_interest ev conn =
  Evloop.set ev (Conn.fd conn)
    ~read:((not (Conn.closing conn)) && Conn.pending_output conn < out_hwm)
    ~write:(Conn.wants_write conn)

(* [registry] is the shard-local registry of worker-owned connections —
   closing one releases its tenant's pin (and may trigger LRU eviction).
   Pre-session connections (acceptor-owned) pass no registry: they never
   attached, so there is no pin to release. *)
let close_conn ?registry t ev conns metrics conn reason =
  let fd = Conn.fd conn in
  if Hashtbl.mem conns fd then begin
    Hashtbl.remove conns fd;
    Evloop.remove ev fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Atomic.decr t.live;
    Metrics.on_close metrics;
    (match (registry, Conn.tenant conn) with
    | Some reg, Some tenant -> Session.release reg tenant
    | _ -> ());
    logf t "conn %s closed (%s)" (Conn.peer conn) reason
  end

let flush_conn ?registry t ev conns metrics conn =
  let rec go () =
    if Conn.wants_write conn then begin
      let buf, off, len = Conn.output conn in
      Metrics.sys_write metrics;
      match write_retry (Conn.fd conn) buf off len with
      | n ->
          Conn.wrote conn n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* Writing to a closed descriptor is a daemon bug (double
             close, fd reuse), not client behavior — log it loudly
             rather than letting it pass as a generic write error. *)
          logf t "conn %s: EBADF on write — double-close or fd-reuse bug" (Conn.peer conn);
          close_conn ?registry t ev conns metrics conn "write EBADF"
      | exception Unix.Unix_error _ -> close_conn ?registry t ev conns metrics conn "write error"
    end
  in
  go ();
  if Conn.finished conn then close_conn ?registry t ev conns metrics conn "bye"
  else if Hashtbl.mem conns (Conn.fd conn) then sync_interest ev conn

let read_conn t (w : worker) ev conn ~now =
  let registry = w.registry in
  let rec go () =
    Metrics.sys_read w.metrics;
    match read_retry (Conn.fd conn) w.read_buf 0 (Bytes.length w.read_buf) with
    | 0 ->
        (* EOF — possibly mid-frame.  Only this connection dies; its
           tenant's state stays consistent because partial frames are
           never dispatched. *)
        close_conn ~registry t ev w.conns w.metrics conn "eof"
    | n ->
        Conn.on_bytes (w_ctx t w) conn w.read_buf ~len:n ~now;
        (* Drain to EAGAIN: responses accumulate in the connection's
           output buffer and flush as one write below. *)
        if Hashtbl.mem w.conns (Conn.fd conn) && not (Conn.closing conn) then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        logf t "conn %s: EBADF on read — double-close or fd-reuse bug" (Conn.peer conn);
        close_conn ~registry t ev w.conns w.metrics conn "read EBADF"
    | exception Unix.Unix_error _ ->
        close_conn ~registry t ev w.conns w.metrics conn "read error"
  in
  (try go ()
   with e ->
     (* One connection's failure must never take the daemon down. *)
     logf t "conn %s: unexpected %s" (Conn.peer conn) (Printexc.to_string e);
     close_conn ~registry t ev w.conns w.metrics conn "internal error");
  if Hashtbl.mem w.conns (Conn.fd conn) then flush_conn ~registry t ev w.conns w.metrics conn

(* Adopt an authenticated connection into a worker's shard: bind its
   tenant in the shard-local registry, serve any frames pipelined behind
   the Hello, and flush the buffered handshake + Ok.  [flush_conn]
   registers the fd with the worker's loop via [sync_interest]. *)
let adopt t (w : worker) ev conn ~now =
  Hashtbl.replace w.conns (Conn.fd conn) conn;
  Conn.touch conn ~now;
  Conn.attach (w_ctx t w) conn;
  flush_conn ~registry:w.registry t ev w.conns w.metrics conn

let sweep_idle ?registry t ev conns metrics ~now =
  if t.cfg.idle_timeout > 0. then begin
    let idle =
      Hashtbl.fold
        (fun _ conn acc ->
          if now -. Conn.last_active conn > t.cfg.idle_timeout then conn :: acc else acc)
        conns []
    in
    List.iter (fun conn -> close_conn ?registry t ev conns metrics conn "idle timeout") idle
  end

let close_all ?registry t ev conns metrics reason =
  Hashtbl.fold (fun _ c acc -> c :: acc) conns []
  |> List.iter (fun c -> close_conn ?registry t ev conns metrics c reason)

(* {2 Readiness plumbing}

   The timeout is derived from the nearest deadline actually pending —
   the drain grace and/or the earliest idle-connection expiry — rather
   than a fixed polling interval: an idle daemon blocks in its
   readiness wait indefinitely (self-pipes deliver stop and handoff
   wakeups), and a loaded one wakes exactly when the next timeout is
   due. *)
let nearest_deadline t ~draining ~drain_deadline tbls =
  let d = if draining then drain_deadline else infinity in
  if t.cfg.idle_timeout <= 0. then d
  else
    List.fold_left
      (fun d tbl ->
        Hashtbl.fold
          (fun _ conn d -> Float.min d (Conn.last_active conn +. t.cfg.idle_timeout))
          tbl d)
      d tbls

let timeout_of_deadline d ~now = if d = infinity then -1. else Float.max 0. (d -. now)

(* {2 The acceptor} *)

let route t conn ns ~now =
  Hashtbl.remove t.pre (Conn.fd conn);
  Evloop.remove t.ev (Conn.fd conn);
  let w = t.workers.(shard_of t ns) in
  if inline t then adopt t w t.ev conn ~now
  else begin
    Mutex.protect w.mu (fun () -> Queue.push conn w.inbox);
    wake t w
  end

let read_pre t conn ~now =
  let rec go () =
    Metrics.sys_read t.accept_metrics;
    match read_retry (Conn.fd conn) t.read_buf 0 (Bytes.length t.read_buf) with
    | 0 -> close_conn t t.ev t.pre t.accept_metrics conn "eof"
    | n ->
        Conn.on_bytes_pre conn t.read_buf ~len:n ~now;
        if
          Hashtbl.mem t.pre (Conn.fd conn)
          && (not (Conn.closing conn))
          && Conn.routed_namespace conn = None
        then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t t.ev t.pre t.accept_metrics conn "read error"
  in
  (try go ()
   with e ->
     logf t "conn %s: unexpected %s" (Conn.peer conn) (Printexc.to_string e);
     close_conn t t.ev t.pre t.accept_metrics conn "internal error");
  if Hashtbl.mem t.pre (Conn.fd conn) then
    match Conn.routed_namespace conn with
    | Some ns when not (Conn.closing conn) ->
        logf t "conn %s -> namespace %S (worker %d)" (Conn.peer conn) ns (shard_of t ns);
        route t conn ns ~now
    | _ -> flush_conn t t.ev t.pre t.accept_metrics conn

let accept_all t lfd ~now =
  let rec go () =
    match accept_retry ~cloexec:true lfd with
    | fd, addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        if Atomic.get t.live >= t.cfg.max_conns then begin
          (* Over the cap: turn the connection away before it can speak.
             The client sees EOF during its version handshake. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Metrics.on_reject t.accept_metrics;
          logf t "conn %s rejected (cap %d)" (peer_string addr) t.cfg.max_conns
        end
        else if not (Evloop.compatible t.ev fd) then begin
          (* The backend cannot watch this descriptor (select's
             FD_SETSIZE wall).  Refusing cleanly here beats corrupting
             the fd sets; poll/epoll never hit this branch. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Metrics.on_reject t.accept_metrics;
          logf t "conn %s rejected (fd beyond %s backend limit)" (peer_string addr)
            (Evloop.to_string (Evloop.backend t.ev))
        end
        else begin
          t.next_id <- t.next_id + 1;
          let conn = Conn.create ~id:t.next_id ~peer:(peer_string addr) ~now fd in
          Hashtbl.replace t.pre fd conn;
          Evloop.add t.ev fd ~read:true ~write:false;
          Atomic.incr t.live;
          Metrics.on_accept t.accept_metrics;
          logf t "conn %s accepted (#%d, %d live)" (peer_string addr) t.next_id
            (Atomic.get t.live)
        end;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let start_drain t ~now =
  if not t.draining then begin
    t.draining <- true;
    t.drain_deadline <- now +. t.cfg.drain_grace;
    List.iter
      (fun fd ->
        Evloop.remove t.ev fd;
        try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    t.listeners <- [];
    if inline t then begin
      let w = t.workers.(0) in
      w.draining <- true;
      w.drain_deadline <- t.drain_deadline
    end
    else
      Array.iter
        (fun w ->
          Mutex.protect w.mu (fun () -> w.drain_req <- true);
          wake t w)
        t.workers;
    logf t "drain: stopped accepting; %d connection(s) live" (Atomic.get t.live)
  end

(* One round of the acceptor loop.  When [inline t], this is also worker
   0's loop: its connections are registered with the same {!Evloop} and
   served on this domain, making a 1-domain daemon behaviorally the
   familiar single-loop one.  Loop-level syscall counters (rounds,
   wakeups, frames-per-wake) are accounted to worker 0's metrics when
   inline — that is the loop actually serving frames — and to the
   acceptor's otherwise. *)
let acceptor_step t =
  let now = Unix.gettimeofday () in
  let w0 = t.workers.(0) in
  let loop_metrics = if inline t then w0.metrics else t.accept_metrics in
  sweep_idle t t.ev t.pre t.accept_metrics ~now;
  if inline t then sweep_idle ~registry:w0.registry t t.ev w0.conns w0.metrics ~now;
  let done_ =
    t.draining
    && (Atomic.get t.live = 0
       || now > t.drain_deadline
       || ((not (inline t)) && Hashtbl.length t.pre = 0))
  in
  if done_ then begin
    close_all t t.ev t.pre t.accept_metrics "drain deadline";
    if inline t then
      close_all ~registry:w0.registry t t.ev w0.conns w0.metrics "drain deadline";
    t.running <- false
  end
  else begin
    let tbls = if inline t then [ t.pre; w0.conns ] else [ t.pre ] in
    let deadline =
      nearest_deadline t ~draining:t.draining ~drain_deadline:t.drain_deadline tbls
    in
    Metrics.sys_round loop_metrics;
    let n = Evloop.wait t.ev ~timeout:(timeout_of_deadline deadline ~now) in
    if n > 0 then begin
      Metrics.sys_wakeup loop_metrics;
      let frames0 = Metrics.total_frames loop_metrics in
      let now = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        let fd = Evloop.ready_fd t.ev i in
        if Evloop.ready_read t.ev i then begin
          if fd = t.stop_r then begin
            drain_pipe t.stop_r;
            start_drain t ~now
          end
          else if List.mem fd t.listeners then accept_all t fd ~now
          else
            match Hashtbl.find_opt t.pre fd with
            | Some conn -> read_pre t conn ~now
            | None -> (
                match if inline t then Hashtbl.find_opt w0.conns fd else None with
                | Some conn -> read_conn t w0 t.ev conn ~now
                | None -> ())
        end;
        if Evloop.ready_write t.ev i then
          match Hashtbl.find_opt t.pre fd with
          | Some conn -> flush_conn t t.ev t.pre t.accept_metrics conn
          | None -> (
              match if inline t then Hashtbl.find_opt w0.conns fd else None with
              | Some conn -> flush_conn ~registry:w0.registry t t.ev w0.conns w0.metrics conn
              | None -> ())
      done;
      Metrics.record_wake_frames loop_metrics (Metrics.total_frames loop_metrics - frames0)
    end
  end

(* {2 Worker loops (only spawned when domains > 1)} *)

let worker_mailbox t (w : worker) ~now =
  drain_pipe w.wake_r;
  let adopted, drain_req =
    Mutex.protect w.mu (fun () ->
        let xs = List.of_seq (Queue.to_seq w.inbox) in
        Queue.clear w.inbox;
        (xs, w.drain_req))
  in
  List.iter (fun conn -> adopt t w w.ev conn ~now) adopted;
  if drain_req && not w.draining then begin
    w.draining <- true;
    w.drain_deadline <- now +. t.cfg.drain_grace
  end

let worker_step t (w : worker) =
  let now = Unix.gettimeofday () in
  sweep_idle ~registry:w.registry t w.ev w.conns w.metrics ~now;
  if w.draining && (Hashtbl.length w.conns = 0 || now > w.drain_deadline) then begin
    close_all ~registry:w.registry t w.ev w.conns w.metrics "drain deadline";
    w.w_running <- false
  end
  else begin
    let deadline =
      nearest_deadline t ~draining:w.draining ~drain_deadline:w.drain_deadline [ w.conns ]
    in
    Metrics.sys_round w.metrics;
    let n = Evloop.wait w.ev ~timeout:(timeout_of_deadline deadline ~now) in
    if n > 0 then begin
      Metrics.sys_wakeup w.metrics;
      let frames0 = Metrics.total_frames w.metrics in
      let now = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        let fd = Evloop.ready_fd w.ev i in
        if Evloop.ready_read w.ev i then begin
          if fd = w.wake_r then worker_mailbox t w ~now
          else
            match Hashtbl.find_opt w.conns fd with
            | Some conn -> read_conn t w w.ev conn ~now
            | None -> ()
        end;
        if Evloop.ready_write w.ev i then
          match Hashtbl.find_opt w.conns fd with
          | Some conn -> flush_conn ~registry:w.registry t w.ev w.conns w.metrics conn
          | None -> ()
      done;
      Metrics.record_wake_frames w.metrics (Metrics.total_frames w.metrics - frames0)
    end
  end

let worker_loop t (w : worker) =
  while w.w_running do
    worker_step t w
  done

let run t =
  logf t "serving (max %d connections, %d worker domain(s), %s backend)" t.cfg.max_conns
    (Array.length t.workers)
    (Evloop.to_string (Evloop.backend t.ev));
  let spawned =
    if inline t then [||]
    else Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) t.workers
  in
  while t.running do
    acceptor_step t
  done;
  Array.iter Domain.join spawned;
  (* Final cleanup: listeners are already gone if we drained; close
     whatever remains and remove the Unix socket path. *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  close_all t t.ev t.pre t.accept_metrics "shutdown";
  Array.iter
    (fun w ->
      close_all ~registry:w.registry t w.ev w.conns w.metrics "shutdown";
      (* A connection routed after its worker passed the drain deadline
         never left the mailbox; with every domain joined and the
         acceptor loop done, nobody pushes anymore — close them here so
         neither the fd nor the live count leaks. *)
      Queue.iter
        (fun conn ->
          (try Unix.close (Conn.fd conn) with Unix.Unix_error _ -> ());
          Atomic.decr t.live)
        w.inbox;
      Queue.clear w.inbox;
      (* Persist every disk-backed tenant before the process goes away:
         a graceful restart then recovers bit-identical state. *)
      Session.shutdown w.registry;
      (try Unix.close w.wake_r with Unix.Unix_error _ -> ());
      (try Unix.close w.wake_w with Unix.Unix_error _ -> ());
      Evloop.close w.ev)
    t.workers;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Evloop.close t.ev;
  (match t.cfg.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  logf t "stopped"
