(** Tenant sessions: the namespace → server-state registry, optionally
    disk-backed with LRU eviction of cold tenants.

    A [Hello ns] binds a connection to the tenant named [ns].  Each
    tenant owns one {!Servsim.Handler.state} — its ciphertext stores,
    its access-pattern trace, and its cost ledger — so nothing an
    adversarial or buggy tenant does can perturb another tenant's
    digests or accounting.  Tenant state survives disconnects: a client
    that reconnects with the same namespace finds its stores (this is a
    database service, not a cache).

    With a {!config.data_dir} set, every tenant is additionally backed
    by a {!Store.Tenant} image (snapshot + write-ahead journal), served
    requests are journaled ({!journal}), and the registry keeps at most
    {!config.max_resident} tenants in memory: attaching one more evicts
    the least-recently-active tenant with no live connections
    (snapshot, close, drop) and the next [Hello] for it rehydrates from
    disk — with trace digests and cost ledgers bit-identical to never
    having been evicted. *)

type tenant = {
  namespace : string;
  handler : Servsim.Handler.state;
  persist : Store.Tenant.t option;
      (** durable image; [None] when the registry has no data dir *)
  mutable pins : int;
      (** live connections serving this tenant; pinned tenants are never
          evicted *)
  mutable stamp : int;  (** LRU clock value at last activity *)
}

type config = {
  data_dir : string option;  (** root of per-namespace durable images *)
  max_resident : int;
      (** LRU-evict beyond this many in-memory tenants; [<= 0] disables
          eviction (only meaningful with [data_dir] set) *)
  snapshot_every : int;  (** see {!Store.Tenant.open_} *)
  on_evict : string -> unit;
      (** called with the namespace after each eviction (the daemon
          hooks {!Metrics.evict_ns} here) *)
}

val default_config : config
(** In-memory only: no data dir, no cap, [snapshot_every = 1024],
    no-op [on_evict]. *)

type registry

val create : ?config:config -> unit -> registry

val attach : registry -> string -> tenant
(** Find the tenant — creating it on first [Hello], or rehydrating it
    from its durable image if it was evicted — and pin it for the
    lifetime of the calling connection.  Balance with {!release}.
    @raise Store.Tenant.Corrupt if the durable image is damaged beyond
    torn-tail recovery. *)

val release : registry -> tenant -> unit
(** Unpin (connection closed).  May trigger eviction if the registry is
    over its cap. *)

val journal : registry -> tenant -> Servsim.Wire.request -> unit
(** Record one served counted frame in the tenant's durable journal (a
    no-op without a data dir) and mark the tenant recently used. *)

val shutdown : registry -> unit
(** Snapshot and close every disk-backed tenant, then empty the
    registry.  The daemon calls this once serving has stopped, making a
    graceful restart bit-identical to an uninterrupted run. *)

val find : registry -> string -> tenant option
val count : registry -> int
val namespaces : registry -> string list

val dyn_resident : registry -> int
(** Resident tenants currently holding a live dynamic FD session — the
    [dyn_sessions] gauge of a [Stats_reply].  Shard-local, like every
    registry: a multi-domain daemon reports the count of the answering
    worker's shard. *)

val shard : shards:int -> string -> int
(** [shard ~shards ns] is the worker index in [0 .. shards-1] that owns
    tenant [ns] — a deterministic FNV-1a hash, so every connection that
    says [Hello ns] lands on the same worker (and the same shard-local
    registry) for the life of the daemon, and the assignment is
    reproducible across runs.  Always [0] when [shards <= 1].  The
    on-disk layout is keyed by namespace alone, so a daemon restarted
    with a different [shards] still finds every tenant's image. *)
