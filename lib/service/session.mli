(** Tenant sessions: the namespace → server-state registry.

    A [Hello ns] binds a connection to the tenant named [ns].  Each
    tenant owns one {!Servsim.Handler.state} — its ciphertext stores,
    its access-pattern trace, and its cost ledger — so nothing an
    adversarial or buggy tenant does can perturb another tenant's
    digests or accounting.  Tenant state survives disconnects: a client
    that reconnects with the same namespace finds its stores (this is a
    database service, not a cache). *)

type tenant = { namespace : string; handler : Servsim.Handler.state }

type registry

val create : unit -> registry

val attach : registry -> string -> tenant
(** Find the tenant, creating it on first [Hello]. *)

val find : registry -> string -> tenant option
val count : registry -> int
val namespaces : registry -> string list
