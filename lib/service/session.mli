(** Tenant sessions: the namespace → server-state registry.

    A [Hello ns] binds a connection to the tenant named [ns].  Each
    tenant owns one {!Servsim.Handler.state} — its ciphertext stores,
    its access-pattern trace, and its cost ledger — so nothing an
    adversarial or buggy tenant does can perturb another tenant's
    digests or accounting.  Tenant state survives disconnects: a client
    that reconnects with the same namespace finds its stores (this is a
    database service, not a cache). *)

type tenant = { namespace : string; handler : Servsim.Handler.state }

type registry

val create : unit -> registry

val attach : registry -> string -> tenant
(** Find the tenant, creating it on first [Hello]. *)

val find : registry -> string -> tenant option
val count : registry -> int
val namespaces : registry -> string list

val shard : shards:int -> string -> int
(** [shard ~shards ns] is the worker index in [0 .. shards-1] that owns
    tenant [ns] — a deterministic FNV-1a hash, so every connection that
    says [Hello ns] lands on the same worker (and the same shard-local
    registry) for the life of the daemon, and the assignment is
    reproducible across runs.  Always [0] when [shards <= 1]. *)
