(* Build-time feature detection for the evloop C stubs: probe the
   OCaml-configured C toolchain for poll(2) and epoll(7) and emit the
   corresponding -D flags into c_flags.sexp (consumed by the
   foreign_stubs rule in ../dune).  A platform lacking both still
   builds — the select backend needs no stubs.

   Deliberately stdlib-only (dune-configurator is not vendored in this
   toolchain): compile a tiny probe program per feature and test the
   compiler's exit status. *)

let probe_poll =
  {c|
#include <poll.h>
int main(void) {
  struct pollfd p;
  p.fd = 0; p.events = POLLIN; p.revents = 0;
  return poll(&p, 1, 0) < -1;
}
|c}

let probe_epoll =
  {c|
#include <sys/epoll.h>
int main(void) {
  int e = epoll_create1(EPOLL_CLOEXEC);
  struct epoll_event ev;
  ev.events = EPOLLIN; ev.data.fd = 0;
  return e < -1 && epoll_ctl(e, EPOLL_CTL_ADD, 0, &ev) < -1;
}
|c}

(* The same C compiler ocamlfind/ocamlc will use for the stubs. *)
let c_compiler () =
  let fallback = "cc" in
  match Unix.open_process_in "ocamlc -config 2>/dev/null" with
  | exception _ -> fallback
  | ic ->
      let cc = ref fallback in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line ':' with
           | Some i when String.sub line 0 i = "c_compiler" ->
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               cc := String.trim v
           | _ -> ()
         done
       with End_of_file -> ());
      ignore (Unix.close_process_in ic);
      if !cc = "" then fallback else !cc

let compiles cc src =
  let base = Filename.temp_file "sfdd_probe" "" in
  let c_file = base ^ ".c" in
  let o_file = base ^ ".o" in
  let oc = open_out c_file in
  output_string oc src;
  close_out oc;
  let cmd =
    Printf.sprintf "%s -c %s -o %s >/dev/null 2>&1" cc (Filename.quote c_file)
      (Filename.quote o_file)
  in
  let ok = Sys.command cmd = 0 in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ base; c_file; o_file ];
  ok

let () =
  let cc = c_compiler () in
  let flags =
    (if compiles cc probe_poll then [ "-DSFDD_HAVE_POLL" ] else [])
    @ (if compiles cc probe_epoll then [ "-DSFDD_HAVE_EPOLL" ] else [])
  in
  let oc = open_out "c_flags.sexp" in
  output_string oc ("(" ^ String.concat " " flags ^ ")\n");
  close_out oc
