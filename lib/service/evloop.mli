(** Pluggable readiness backend for the daemon's event loops.

    One interface, three implementations — [Select] (portable fallback,
    hard-capped at [FD_SETSIZE] = 1024 descriptors), [Poll] and [Epoll]
    (feature-detected at build time, see [config/discover.ml]).  The
    daemon registers descriptors once and updates their interest
    in-place; {!wait} returns an indexed batch of ready events with no
    per-round list allocation on the poll/epoll paths.

    All backends present {e level-triggered} semantics: a descriptor
    stays ready until the condition is consumed.  Epoll is also used in
    level-triggered mode — the daemon drains each socket to [EAGAIN]
    anyway, so edge-triggering would buy nothing and cost a starvation
    footgun.  This is the only module in the tree allowed to touch raw
    readiness syscalls (fdlint R10, event-loop-hygiene).

    Not thread-safe: one [t] per event loop, touched only by its owning
    domain. *)

type backend = Select | Poll | Epoll

val all : backend list
(** Every backend this build knows about, preference order last-wins:
    [Select; Poll; Epoll]. *)

val compiled_in : backend -> bool
(** Whether the backend's syscalls are available in this build
    ([Select] always is). *)

val available : unit -> backend list
(** [all] filtered by {!compiled_in}. *)

val best : unit -> backend
(** The most scalable compiled-in backend: epoll, else poll, else
    select. *)

val to_string : backend -> string

val of_string : string -> (backend, string) result
(** Parse ["auto"|"select"|"poll"|"epoll"]; ["auto"] resolves to
    {!best}.  [Error] explains an unknown name or a backend this build
    lacks. *)

type t

val create : backend -> t
(** May raise [Unix.Unix_error] (epoll instance creation). *)

val backend : t -> backend

val close : t -> unit
(** Release kernel resources (the epoll descriptor).  Registered fds
    are forgotten, not closed. *)

val compatible : t -> Unix.file_descr -> bool
(** Whether the backend can watch this descriptor at all.  Select
    refuses fds >= [FD_SETSIZE]; poll/epoll accept any.  The daemon
    checks at accept time and turns incompatible connections away
    instead of corrupting the fd sets. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a descriptor.  Re-adding an already-registered fd just
    updates its interest. *)

val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Update interest.  No-ops (and issues no syscall) when the interest
    is unchanged — callers may invoke it unconditionally after serving
    a connection.  Adding an unregistered fd this way registers it. *)

val remove : t -> Unix.file_descr -> unit
(** Forget a descriptor.  Call {e before} closing the fd (epoll wants
    the registration gone first; select/poll just drop it from the
    scan).  No-op when not registered. *)

val mem : t -> Unix.file_descr -> bool
val fd_count : t -> int

val wait : t -> timeout:float -> int
(** Block until readiness or [timeout] (seconds; negative = forever),
    returning the number of ready events.  Retries [EINTR] internally
    only around bookkeeping — the wait itself surfaces [EINTR] as a
    zero-event round so signal-driven self-pipe writes get serviced
    promptly.  Results are read with the indexed accessors below and
    are valid until the next {!wait}.  The select backend may report
    one fd as two events (read and write separately); consumers must
    treat events independently. *)

val ready_fd : t -> int -> Unix.file_descr
val ready_read : t -> int -> bool
val ready_write : t -> int -> bool
