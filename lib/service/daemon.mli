(** The event-driven block-service daemon.

    One [Unix.select] loop serves every listener and connection:
    non-blocking accepts, incremental per-connection frame reassembly
    (via {!Conn} / {!Frame_decoder}), buffered writes with a
    high-water-mark backpressure guard, a connection cap enforced at
    accept time, an optional idle timeout, and a graceful drain on
    {!stop} (close listeners, keep serving live connections up to the
    configured grace period).

    All descriptors are close-on-exec; every read/write/accept retries
    on [EINTR].  One misbehaving connection — malformed frames, a
    mid-frame disconnect, an unexpected exception — loses only itself:
    its tenant's state stays consistent because partial frames never
    dispatch, and every other connection keeps its own decoder and
    session. *)

type config = {
  unix_path : string option;  (** serve on this Unix-domain socket path *)
  tcp : (string * int) option;
      (** serve on TCP [(bind_address, port)]; port 0 picks an ephemeral
          port, reported by {!tcp_port} *)
  max_conns : int;  (** accept-and-close beyond this many live connections *)
  idle_timeout : float;  (** close idle connections after this many seconds; <= 0 disables *)
  drain_grace : float;  (** seconds to keep serving live connections after {!stop} *)
  log : string -> unit;  (** receives one line per connection event *)
}

val default_config : config
(** No listeners (callers must set at least one), [max_conns = 64], idle
    timeout disabled, 5 s drain grace, silent log. *)

type t

val create : config -> t
(** Bind and listen on the configured endpoints.  Raises
    [Invalid_argument] if neither [unix_path] nor [tcp] is set, and
    [Unix.Unix_error] if binding fails. *)

val run : t -> unit
(** Serve until a graceful drain completes.  Closes every descriptor and
    unlinks the Unix socket path before returning. *)

val stop : t -> unit
(** Request a graceful drain.  Async-signal-safe and thread-safe: it
    writes one byte to a self-pipe watched by the select loop. *)

val install_stop_signals : t -> unit
(** Route SIGTERM and SIGINT to {!stop}. *)

val metrics : t -> Metrics.t
val registry : t -> Session.registry

val tcp_port : t -> int option
(** The actually-bound TCP port (useful with port 0). *)

val live_conns : t -> int
