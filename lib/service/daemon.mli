(** The event-driven, multicore block-service daemon.

    One {e acceptor} loop owns the listeners, the self-pipe for
    signal-safe shutdown, and every connection's pre-session stage
    (version handshake + the mandatory first [Hello]); each
    authenticated connection is then routed to one of [domains] {e
    worker} event loops by a deterministic hash of its namespace
    ({!Session.shard}).  Every worker runs its own {!Evloop} readiness
    loop (select, poll or epoll — one backend for the whole daemon,
    chosen by [config.backend]) — woken through a private self-pipe for
    connection handoff and drain —
    and exclusively owns its shard of tenants: the per-frame hot path
    (decode → dispatch → trace/cost accounting → respond) touches only
    shard-local state and takes no locks, and a tenant's digests and
    ledgers are bit-identical to a single-domain daemon's because all of
    a namespace's connections serialize on the same worker.

    With [domains = 1] no domain is spawned and the acceptor serves
    connections itself — the familiar single-loop daemon, byte-for-byte
    the same behavior.

    Shared invariants, regardless of domain count: non-blocking accepts
    and reads, buffered writes with an 8 MiB high-water-mark
    backpressure guard, a connection cap enforced at accept time, an
    optional idle timeout, graceful drain on {!stop} (close listeners,
    keep serving live connections up to the grace period, then
    [Domain.join] every worker).  Readiness timeouts are derived from
    the nearest pending deadline (idle expiry or drain grace): an idle
    daemon blocks indefinitely instead of polling.  With the select
    backend, connections whose descriptor would not fit in an [fd_set]
    are refused at accept time; poll/epoll have no such wall.

    All descriptors are close-on-exec; every read/write/accept retries
    on [EINTR].  One misbehaving connection — malformed frames, a
    mid-frame disconnect, an unexpected exception — loses only itself:
    its tenant's state stays consistent because partial frames never
    dispatch, and every other connection keeps its own decoder and
    session. *)

type config = {
  unix_path : string option;  (** serve on this Unix-domain socket path *)
  tcp : (string * int) option;
      (** serve on TCP [(bind_address, port)]; port 0 picks an ephemeral
          port, reported by {!tcp_port} *)
  max_conns : int;  (** accept-and-close beyond this many live connections *)
  idle_timeout : float;  (** close idle connections after this many seconds; <= 0 disables *)
  drain_grace : float;  (** seconds to keep serving live connections after {!stop} *)
  domains : int;
      (** worker event loops; 1 (the default) serves on the acceptor
          loop itself with no domain spawned *)
  backend : Evloop.backend;
      (** readiness backend for the acceptor and every worker loop.
          The default config uses [Select] (always compiled in);
          [fdserved --backend auto] resolves {!Evloop.best} instead.
          {!create} raises [Invalid_argument] if the backend is not
          compiled into this build. *)
  data_dir : string option;
      (** root directory for per-tenant durable images (snapshot +
          write-ahead journal, {!Store.Tenant}).  [None] (the default)
          keeps every tenant purely in memory, exactly the old
          behavior.  The layout is keyed by namespace, not by worker,
          so a restart with a different [domains] count still finds
          every tenant. *)
  max_resident : int;
      (** with [data_dir] set, each worker LRU-evicts cold tenants
          (snapshot to disk, drop from memory) beyond this many resident
          in its shard; the next [Hello] rehydrates transparently with
          bit-identical digests and ledgers.  [<= 0] (the default)
          disables eviction. *)
  log : string -> unit;
      (** receives one line per connection event; called from the
          acceptor and from every worker domain, so it must be
          domain-safe (the default, [ignore], is) *)
}

val default_config : config
(** No listeners (callers must set at least one), [max_conns = 64], idle
    timeout disabled, 5 s drain grace, [domains = 1], in-memory tenants
    (no data dir, no resident cap), silent log. *)

type t

val create : config -> t
(** Bind and listen on the configured endpoints.  Raises
    [Invalid_argument] if neither [unix_path] nor [tcp] is set or
    [domains < 1], and [Unix.Unix_error] if binding fails. *)

val run : t -> unit
(** Serve until a graceful drain completes; with [domains > 1] this
    spawns the worker domains and joins them all before returning.
    Closes every descriptor and unlinks the Unix socket path. *)

val stop : t -> unit
(** Request a graceful drain.  Async-signal-safe and thread-safe: it
    writes one byte to a self-pipe watched by the acceptor loop, which
    closes the listeners and broadcasts the drain to every worker. *)

val install_stop_signals : t -> unit
(** Route SIGTERM and SIGINT to {!stop}. *)

val domains : t -> int
(** Number of worker event loops (the configured [domains]). *)

val backend : t -> Evloop.backend
(** The readiness backend every loop of this daemon runs on. *)

val metrics : t -> Metrics.t
(** Acceptor-side counters: accepts, rejects, uptime. *)

val worker_metrics : t -> Metrics.t list
(** Each worker's shard-local metrics (frame/byte counters and latency
    reservoirs for the namespaces it owns), in worker order. *)

val registries : t -> Session.registry list
(** Each worker's shard-local tenant registry, in worker order. *)

val shard_of : t -> string -> int
(** The worker index that owns a namespace ({!Session.shard}). *)

val ns_summary : t -> string -> Metrics.summary
(** Merged view of one namespace's metrics: looked up on the worker
    that owns the shard (a namespace never spans workers). *)

val tcp_port : t -> int option
(** The actually-bound TCP port (useful with port 0). *)

val live_conns : t -> int
(** Connections currently live across the acceptor and all workers. *)
