(** Daemon-wide service metrics: connection counts, per-namespace frame
    and byte counters, and a bounded reservoir of recent service
    latencies from which p50/p95/p99 are computed on demand.

    "Service latency" is the time from a fully reassembled request frame
    to its serialised response — the server-side cost of one frame,
    excluding network and client think time. *)

type t

val create : unit -> t

val uptime_s : t -> float

val on_accept : t -> unit
val on_close : t -> unit

val on_reject : t -> unit
(** A connection turned away at the connection cap. *)

val live : t -> int
val accepted : t -> int
val rejected : t -> int

(** {2 Event-loop syscall accounting}

    Counters for the event loop that owns this [t] (one per worker, one
    for the acceptor).  They are daemon-lifetime scalars held outside
    the per-namespace table, so {!evict_ns} never touches them;
    dividing their deltas by frames served gives the syscalls-per-op
    figure the bench reports. *)

type syscalls = { reads : int; writes : int; wakeups : int; rounds : int }

val sys_read : t -> unit
(** One [read(2)] issued on a connection (including the read that
    returns [EAGAIN] and ends a drain). *)

val sys_write : t -> unit
(** One [write(2)] issued flushing a connection's output. *)

val sys_wakeup : t -> unit
(** One {!Evloop.wait} return with at least one ready event. *)

val sys_round : t -> unit
(** One event-loop iteration (every {!Evloop.wait} call). *)

val syscalls : t -> syscalls

val record_wake_frames : t -> int -> unit
(** Account one wakeup that served [n] complete frames across all of
    the loop's connections. *)

val wake_histogram : t -> (string * int) list
(** Frames-per-wake histogram as [(bucket_label, wakeups)] pairs in
    bucket order ("0", "1", "2", "3", "4-7", "8-15", "16-31", "32+"). *)

val total_frames : t -> int
(** Frames ever recorded by {!record}, including frames whose
    namespace entry has since been evicted. *)

val record :
  t -> namespace:string -> bytes_in:int -> bytes_out:int -> latency_s:float -> unit
(** Account one served frame to [namespace].  Tracking is bounded: past
    an internal cap of live entries ({!max_tracked}), frames of
    namespaces not already tracked fall into one shared catch-all
    bucket rather than growing the table. *)

val max_tracked : int
(** Cap on individually tracked namespaces (the catch-all bucket sits
    outside the cap). *)

val evict_ns : t -> string -> unit
(** The tenant was evicted: fold its frame and byte counters into the
    daemon-lifetime aggregates ({!evicted_frames}) and drop its entry —
    including the latency reservoir, whose samples are discarded (the
    percentile history of a cold tenant is not worth 32 KiB of floats).
    If the tenant returns, a fresh entry starts from zero; its session
    ledger (which backs [Stats_reply]) lives in the tenant state and is
    unaffected.  No-op for an untracked namespace. *)

val tracked : t -> int
(** Live per-namespace entries (catch-all bucket included). *)

val evicted : t -> int
(** Entries folded away by {!evict_ns} over the daemon's lifetime. *)

val evicted_frames : t -> int
(** Total frames accounted to entries since folded away. *)

val namespaces : t -> string list
(** Tracked namespaces, sorted; the catch-all bucket is excluded. *)

type summary = {
  frames : int;
  bytes_in : int;
  bytes_out : int;
  samples : int;  (** latency samples currently in the reservoir *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
}

val ns_summary : t -> string -> summary
(** Zeros for a namespace that has served nothing. *)

val percentiles : float list -> float * float * float
(** Nearest-rank (p50, p95, p99) of an unsorted sample; (0,0,0) on the
    empty list.  Shared with the load harness so bench and daemon agree
    on the definition. *)
