(** Incremental request-frame reassembly for non-blocking connections.

    Bytes arrive from the socket in arbitrary chunks; {!feed} appends
    them and {!next} parses complete frames off the front using the
    {!Servsim.Wire} codec over a {!Servsim.Wire.string_source}.  A frame
    that has not fully arrived parses to [Incomplete] internally and
    {!next} answers [None] — the decoder remembers the buffer length and
    will not re-attempt until more bytes arrive, so a slow-trickling
    large frame costs one parse attempt per received chunk, not per
    byte. *)

type t

val create : unit -> t

val feed : t -> bytes -> off:int -> len:int -> unit

val next : t -> (Servsim.Wire.request * int) option
(** The next complete request and its exact encoded size in bytes, or
    [None] if no complete frame has arrived yet.
    @raise Servsim.Wire.Protocol_error if the stream is malformed (bad
    tag, oversized prefix) — the connection is beyond resync and should
    be dropped, without affecting any other connection. *)

val pending_bytes : t -> int
(** Bytes buffered but not yet consumed by a complete frame. *)

val compactions : t -> int
(** Times the buffer's live bytes have been physically moved (on growth
    or when the consumed prefix passes an internal threshold).  A burst
    of [n] pipelined frames decodes with O(1) compactions, not O(n) —
    exposed so the regression test can assert that. *)
