open Servsim

type phase =
  | Handshake (* awaiting the client's version byte *)
  | Await_hello (* version agreed; first request must be Hello *)
  | Routed of string (* Hello accepted; awaiting attach on the owning worker *)
  | Serving of Session.tenant
  | Closing (* flush pending output, then close *)

(* A connection that never completes its [Hello] may not buffer input
   without bound: past this many pending bytes in the handshake stage
   the connection is refused.  A [Hello] frame is at most 70 bytes
   (1 tag + 4 length + 64-byte namespace cap), so any legitimate client
   fits with room for a pipelined burst behind it; a client opening
   with a jumbo non-Hello frame is cut off here instead of at the
   64 MiB frame cap. *)
let pre_hello_max = 4096

(* Pending response bytes live in a growable flat buffer with a head
   offset: the daemon writes [buf[lo..hi)] straight from {!output}
   without copying (the old [Buffer.to_bytes] cost one full copy per
   write attempt), and all frames decoded in one wakeup coalesce here
   into a single flush. *)
type outbuf = { mutable buf : bytes; mutable lo : int; mutable hi : int }

type t = {
  fd : Unix.file_descr;
  id : int;
  peer : string;
  decoder : Frame_decoder.t;
  out : outbuf;
  out_sink : Wire.sink; (* cached closure pair appending to [out] *)
  mutable phase : phase;
  mutable bound : Session.tenant option;
      (* set at [attach] and kept through [Closing], so the daemon can
         release the tenant's pin when the connection finally closes *)
  mutable last_active : float;
}

type ctx = {
  registry : Session.registry;
  metrics : Metrics.t;
  live_sessions : unit -> int;
}

let out_reserve o n =
  let len = o.hi - o.lo in
  if o.hi + n > Bytes.length o.buf then
    if len + n <= Bytes.length o.buf && o.lo > 0 then begin
      (* Enough room once the flushed head is dropped: slide in place. *)
      Bytes.blit o.buf o.lo o.buf 0 len;
      o.lo <- 0;
      o.hi <- len
    end
    else begin
      let cap = ref (max 512 (Bytes.length o.buf)) in
      while len + n > !cap do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit o.buf o.lo buf 0 len;
      o.buf <- buf;
      o.lo <- 0;
      o.hi <- len
    end

let out_add_char o c =
  out_reserve o 1;
  Bytes.set o.buf o.hi c;
  o.hi <- o.hi + 1

let out_add_string o s =
  let n = String.length s in
  out_reserve o n;
  Bytes.blit_string s 0 o.buf o.hi n;
  o.hi <- o.hi + n

let create ~id ~peer ~now fd =
  let out = { buf = Bytes.create 512; lo = 0; hi = 0 } in
  {
    fd;
    id;
    peer;
    decoder = Frame_decoder.create ();
    out;
    out_sink = { Wire.put_char = out_add_char out; put_str = out_add_string out };
    phase = Handshake;
    bound = None;
    last_active = now;
  }

let fd t = t.fd
let peer t = t.peer
let last_active t = t.last_active
let touch t ~now = t.last_active <- now

let pending_output t = t.out.hi - t.out.lo
let wants_write t = pending_output t > 0
let closing t = match t.phase with Closing -> true | _ -> false

(* Fully flushed and told to close: the daemon may drop the fd. *)
let finished t = closing t && not (wants_write t)

let namespace t =
  match t.phase with Serving tenant -> Some tenant.Session.namespace | _ -> None

let tenant t = t.bound

let routed_namespace t = match t.phase with Routed ns -> Some ns | _ -> None

let respond t resp =
  Wire.write_response_sink t.out_sink resp;
  t.out.hi - t.out.lo

let build_stats ctx (tenant : Session.tenant) =
  let c = Cost.snapshot (Handler.cost tenant.Session.handler) in
  let inserts, deletes, revalidates = Handler.dyn_counters tenant.Session.handler in
  let summ = Metrics.ns_summary ctx.metrics tenant.Session.namespace in
  let sys = Metrics.syscalls ctx.metrics in
  let us s = min 0xFFFFFFFF (int_of_float (s *. 1e6)) in
  Wire.Stats_reply
    {
      uptime_us = Int64.of_float (Metrics.uptime_s ctx.metrics *. 1e6);
      sessions = ctx.live_sessions ();
      frames = c.Cost.round_trips;
      bytes_in = c.Cost.bytes_to_server;
      bytes_out = c.Cost.bytes_to_client;
      p50_us = us summ.Metrics.p50_s;
      p95_us = us summ.Metrics.p95_s;
      p99_us = us summ.Metrics.p99_s;
      loop_reads = sys.Metrics.reads;
      loop_writes = sys.Metrics.writes;
      loop_wakeups = sys.Metrics.wakeups;
      loop_rounds = sys.Metrics.rounds;
      inserts;
      deletes;
      revalidates;
      dyn_sessions = Session.dyn_resident ctx.registry;
    }

let handle_request ctx t tenant req ~req_bytes =
  let h = tenant.Session.handler in
  let counted = Handler.counted req in
  if counted then Handler.account_request h ~bytes:req_bytes;
  let t0 = Unix.gettimeofday () in
  let resp =
    match req with
    | Wire.Hello _ -> Wire.Error "already in a session"
    | Wire.Stats -> build_stats ctx tenant
    | Wire.Bye ->
        t.phase <- Closing;
        Wire.Ok
    | req -> ( try Handler.handle h req with Wire.Protocol_error msg -> Wire.Error msg)
  in
  let before = pending_output t in
  let after = respond t resp in
  let resp_bytes = after - before in
  if counted then begin
    (* Journal after dispatch so a request the handler rejected mid-way
       is still recorded exactly as served: replay reproduces the same
       dispatch, the same response, the same accounting. *)
    Session.journal ctx.registry tenant req;
    Handler.account_response h ~bytes:resp_bytes;
    Metrics.record ctx.metrics ~namespace:tenant.Session.namespace ~bytes_in:req_bytes
      ~bytes_out:resp_bytes
      ~latency_s:(Unix.gettimeofday () -. t0)
  end

let rec drain_requests ctx t =
  match t.phase with
  | Closing | Handshake | Await_hello | Routed _ -> ()
  | Serving tenant -> (
      match Frame_decoder.next t.decoder with
      | None -> ()
      | Some (req, req_bytes) ->
          handle_request ctx t tenant req ~req_bytes;
          drain_requests ctx t
      | exception Wire.Protocol_error msg ->
          (* This connection's stream is beyond resync.  Report once and
             close it — only it; every other connection keeps its own
             decoder and session untouched. *)
          ignore (respond t (Wire.Error ("unrecoverable: " ^ msg)));
          t.phase <- Closing)

(* The handshake and [Hello] run on the acceptor, before the connection
   has an owning worker — so this stage must not need a registry or
   metrics.  A valid [Hello ns] parks the connection in [Routed ns]
   (with the [Ok] already buffered) and leaves any pipelined frames in
   the decoder for the worker to serve after {!attach}. *)
let on_hello t =
  match t.phase with
  | Handshake | Routed _ | Serving _ | Closing -> ()
  | Await_hello -> (
      match Frame_decoder.next t.decoder with
      | None ->
          if Frame_decoder.pending_bytes t.decoder > pre_hello_max then begin
            ignore (respond t (Wire.Error "handshake: first frame too large"));
            t.phase <- Closing
          end
      | Some (Wire.Hello "", _) ->
          ignore (respond t (Wire.Error "empty namespace"));
          t.phase <- Closing
      | Some (Wire.Hello ns, _) ->
          t.phase <- Routed ns;
          ignore (respond t Wire.Ok)
      | Some (_, _) ->
          ignore (respond t (Wire.Error "expected Hello to establish a session"));
          t.phase <- Closing
      | exception Wire.Protocol_error msg ->
          ignore (respond t (Wire.Error ("unrecoverable: " ^ msg)));
          t.phase <- Closing)

(* A chunk of bytes arrived on a connection the acceptor still owns. *)
let on_bytes_pre t bytes ~len ~now =
  t.last_active <- now;
  let off = ref 0 in
  (match t.phase with
  | Handshake when len > 0 ->
      let client_version = Char.code (Bytes.get bytes 0) in
      off := 1;
      (* Always answer with our own version byte so a mismatched client
         can report the disagreement, then hang up on mismatch. *)
      out_add_char t.out (Char.chr Wire.protocol_version);
      if client_version = Wire.protocol_version then t.phase <- Await_hello
      else t.phase <- Closing
  | _ -> ());
  if not (closing t) && len - !off > 0 then
    Frame_decoder.feed t.decoder bytes ~off:!off ~len:(len - !off);
  on_hello t

(* The owning worker takes over a [Routed] connection: bind the tenant
   in the worker's shard-local registry and serve any frames the client
   pipelined behind its [Hello]. *)
let attach ctx t =
  match t.phase with
  | Routed ns ->
      let tenant = Session.attach ctx.registry ns in
      t.bound <- Some tenant;
      t.phase <- Serving tenant;
      drain_requests ctx t
  | Handshake | Await_hello | Serving _ | Closing -> ()

(* A chunk of bytes arrived from the socket of an attached connection. *)
let on_bytes ctx t bytes ~len ~now =
  t.last_active <- now;
  if len > 0 then Frame_decoder.feed t.decoder bytes ~off:0 ~len;
  drain_requests ctx t

(* The daemon flushed [n] bytes of pending output. *)
let wrote t n =
  t.out.lo <- t.out.lo + n;
  if t.out.lo >= t.out.hi then begin
    t.out.lo <- 0;
    t.out.hi <- 0
  end

let output t = (t.out.buf, t.out.lo, t.out.hi - t.out.lo)
