(** Per-connection state machine: version handshake, session
    establishment, incremental frame reassembly, request dispatch and
    response buffering.  Pure with respect to the socket — the daemon
    owns every syscall and feeds bytes in / shovels bytes out — which
    keeps the machine unit-testable and the failure domain of one
    connection strictly its own.

    The machine runs in two stages so the daemon can shard connections
    across worker domains.  The {e pre-session} stage
    ({!on_bytes_pre}) — version handshake and the mandatory first
    [Hello] — needs no registry or metrics and runs on the acceptor; a
    valid [Hello ns] parks the connection in a routed state carrying
    its namespace.  The owning worker then calls {!attach} to bind the
    tenant in its shard-local registry, after which {!on_bytes} serves
    request frames.  With one worker the two stages run back-to-back on
    the same loop and the observable byte stream is identical. *)

type t

type ctx = {
  registry : Session.registry;
  metrics : Metrics.t;
  live_sessions : unit -> int;
}

val create : id:int -> peer:string -> now:float -> Unix.file_descr -> t

val fd : t -> Unix.file_descr
val peer : t -> string

val on_bytes_pre : t -> bytes -> len:int -> now:float -> unit
(** Feed a received chunk during the pre-session stage: handles the
    version byte and the first frame (which must be [Hello]).  On a
    valid [Hello ns] the connection becomes routed ([Ok] buffered,
    {!routed_namespace} returns [Some ns]) and any pipelined frames
    stay queued in the decoder until {!attach}.  Never raises. *)

val routed_namespace : t -> string option
(** [Some ns] once the pre-session stage has accepted [Hello ns] and
    the connection awaits {!attach} by its owning worker. *)

val attach : ctx -> t -> unit
(** Bind a routed connection to its tenant in [ctx.registry] and serve
    any frames already queued behind the [Hello].  No-op in any other
    phase. *)

val on_bytes : ctx -> t -> bytes -> len:int -> now:float -> unit
(** Feed a received chunk to an attached connection; parses and serves
    every complete frame, appending responses to the output buffer.  A
    malformed stream turns into one final [Error] response and the
    closing state — it never raises. *)

val wants_write : t -> bool
val pending_output : t -> int

val output : t -> bytes * int * int
(** [(buf, off, len)]: the pending output is [buf[off .. off+len)],
    a zero-copy view of the connection's coalesced response buffer —
    every frame served since the last full flush is in it, so one
    [write(2)] drains one wakeup's worth of responses.  Valid until the
    next mutation of the connection; report progress with {!wrote}. *)

val pre_hello_max : int
(** Cap on bytes a connection may buffer before completing its [Hello]
    (the handshake stage is acceptor-owned and unauthenticated, so its
    memory must be bounded tighter than the 64 MiB frame cap).
    Exceeding it closes the connection with an [Error]. *)

val wrote : t -> int -> unit

val closing : t -> bool
(** The connection should accept no further input ([Bye], handshake
    mismatch, or protocol error). *)

val finished : t -> bool
(** Closing and fully flushed: drop the descriptor. *)

val namespace : t -> string option
(** The session's namespace, once established ({!attach} done). *)

val tenant : t -> Session.tenant option
(** The tenant bound at {!attach}, if any — still available in the
    closing phase, so the daemon can release the tenant's pin exactly
    when it drops the descriptor. *)

val last_active : t -> float
val touch : t -> now:float -> unit
