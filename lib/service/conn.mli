(** Per-connection state machine: version handshake, session
    establishment, incremental frame reassembly, request dispatch and
    response buffering.  Pure with respect to the socket — the daemon
    owns every syscall and feeds bytes in / shovels bytes out — which
    keeps the machine unit-testable and the failure domain of one
    connection strictly its own. *)

type t

type ctx = {
  registry : Session.registry;
  metrics : Metrics.t;
  live_sessions : unit -> int;
}

val create : id:int -> peer:string -> now:float -> Unix.file_descr -> t

val fd : t -> Unix.file_descr
val peer : t -> string

val on_bytes : ctx -> t -> bytes -> len:int -> now:float -> unit
(** Feed a received chunk; parses and serves every complete frame,
    appending responses to the output buffer.  A malformed stream turns
    into one final [Error] response and the closing state — it never
    raises. *)

val wants_write : t -> bool
val pending_output : t -> int

val output : t -> bytes * int
(** [(buf, off)]: the pending output is [buf[off ..]].  Report progress
    with {!wrote}. *)

val wrote : t -> int -> unit

val closing : t -> bool
(** The connection should accept no further input ([Bye], handshake
    mismatch, or protocol error). *)

val finished : t -> bool
(** Closing and fully flushed: drop the descriptor. *)

val namespace : t -> string option
(** The session's namespace, once established. *)

val last_active : t -> float
val touch : t -> now:float -> unit
