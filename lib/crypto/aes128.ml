(* AES-128 (FIPS-197), implemented from scratch.

   Two implementations live here:

   - the default 32-bit T-table implementation: the four round tables
     Te0..Te3 (and Td0..Td3 for decryption) fuse SubBytes, ShiftRows and
     MixColumns into four table lookups plus three xors per state word, so
     one round is 16 loads and ~20 xors instead of ~60 GF(2^8) byte
     operations.  The key schedule is word-based, the per-round state lives
     in a small per-key scratch array, and all byte traffic goes through
     [Bytes.unsafe_get]/[Bytes.unsafe_set] after one bounds check per call
     — encrypting or decrypting a block allocates nothing.  This is the hot
     path under every ORAM path access and every bitonic exchange;

   - [Reference], the original byte-at-a-time FIPS-197 transcription, kept
     as the differential-testing oracle (the test suite cross-checks the
     two on random keys/blocks and on the NIST known-answer sets).

   The S-box is still derived programmatically from the GF(2^8)
   multiplicative inverse and the Rijndael affine transform — no hand-typed
   256-entry table to get wrong — and the T-tables are derived from the
   S-box at module initialisation. *)

let block_size = 16

(* ---- GF(2^8) arithmetic with the Rijndael polynomial x^8+x^4+x^3+x+1 ---- *)

let xtime a =
  let a2 = a lsl 1 in
  if a land 0x80 <> 0 then (a2 lxor 0x1b) land 0xff else a2 land 0xff

let gmul a b =
  (* Russian-peasant multiplication in GF(2^8). *)
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
  in
  loop a b 0

(* ---- S-box construction ---- *)

let sbox, inv_sbox =
  let sb = Array.make 256 0 and inv = Array.make 256 0 in
  (* Multiplicative inverses: inv_tbl.(x) * x = 1 for x <> 0. *)
  let inv_tbl = Array.make 256 0 in
  for x = 1 to 255 do
    for y = 1 to 255 do
      if gmul x y = 1 then inv_tbl.(x) <- y
    done
  done;
  let rotl8 b k = ((b lsl k) lor (b lsr (8 - k))) land 0xff in
  for x = 0 to 255 do
    let b = inv_tbl.(x) in
    let s = b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63 in
    sb.(x) <- s
  done;
  Array.iteri (fun x s -> inv.(s) <- x) sb;
  (sb, inv)

(* Lookup tables for the InvMixColumns multipliers, shared by the reference
   decryption rounds and the T-table decryption key schedule. *)
let mul9 = Array.init 256 (fun x -> gmul x 9)
let mul11 = Array.init 256 (fun x -> gmul x 11)
let mul13 = Array.init 256 (fun x -> gmul x 13)
let mul14 = Array.init 256 (fun x -> gmul x 14)

(* ---- Reference implementation (byte-at-a-time FIPS-197 transcription) ----

   The state is kept as a flat 16-byte buffer in FIPS column-major order:
   state.(r + 4*c) is row r, column c. *)

module Reference = struct
  type key = { enc : int array (* 176 bytes: 11 round keys *) }

  let expand raw =
    if String.length raw <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
    let raw =
      (raw
      [@lint.declassify
        "client-local AES key schedule; its S-box access pattern is not part of \
         the server-visible trace L(DB)"])
    in
    let w = Array.make 176 0 in
    for i = 0 to 15 do
      w.(i) <- Char.code raw.[i]
    done;
    let rcon = ref 1 in
    for i = 4 to 43 do
      let base = i * 4 and prev = (i - 1) * 4 and back = (i - 4) * 4 in
      let t0, t1, t2, t3 =
        if i mod 4 = 0 then begin
          (* RotWord + SubWord + Rcon *)
          let a = sbox.(w.(prev + 1)) lxor !rcon
          and b = sbox.(w.(prev + 2))
          and c = sbox.(w.(prev + 3))
          and d = sbox.(w.(prev)) in
          rcon := xtime !rcon;
          (a, b, c, d)
        end
        else (w.(prev), w.(prev + 1), w.(prev + 2), w.(prev + 3))
      in
      w.(base) <- w.(back) lxor t0;
      w.(base + 1) <- w.(back + 1) lxor t1;
      w.(base + 2) <- w.(back + 2) lxor t2;
      w.(base + 3) <- w.(back + 3) lxor t3
    done;
    { enc = w }

  let add_round_key st w round =
    let off = round * 16 in
    for i = 0 to 15 do
      st.(i) <- st.(i) lxor w.(off + i)
    done

  let sub_bytes st =
    for i = 0 to 15 do
      st.(i) <- sbox.(st.(i))
    done

  let inv_sub_bytes st =
    for i = 0 to 15 do
      st.(i) <- inv_sbox.(st.(i))
    done

  (* ShiftRows: row r rotates left by r.  Bytes are laid out column-major,
     so row r of column c lives at index r + 4*c. *)
  let shift_rows st =
    let t = st.(1) in
    st.(1) <- st.(5); st.(5) <- st.(9); st.(9) <- st.(13); st.(13) <- t;
    let t = st.(2) and u = st.(6) in
    st.(2) <- st.(10); st.(6) <- st.(14); st.(10) <- t; st.(14) <- u;
    let t = st.(15) in
    st.(15) <- st.(11); st.(11) <- st.(7); st.(7) <- st.(3); st.(3) <- t

  let inv_shift_rows st =
    let t = st.(13) in
    st.(13) <- st.(9); st.(9) <- st.(5); st.(5) <- st.(1); st.(1) <- t;
    let t = st.(2) and u = st.(6) in
    st.(2) <- st.(10); st.(6) <- st.(14); st.(10) <- t; st.(14) <- u;
    let t = st.(3) in
    st.(3) <- st.(7); st.(7) <- st.(11); st.(11) <- st.(15); st.(15) <- t

  let mix_columns st =
    for c = 0 to 3 do
      let i = 4 * c in
      let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
      st.(i) <- xtime a0 lxor (xtime a1 lxor a1) lxor a2 lxor a3;
      st.(i + 1) <- a0 lxor xtime a1 lxor (xtime a2 lxor a2) lxor a3;
      st.(i + 2) <- a0 lxor a1 lxor xtime a2 lxor (xtime a3 lxor a3);
      st.(i + 3) <- (xtime a0 lxor a0) lxor a1 lxor a2 lxor xtime a3
    done

  let inv_mix_columns st =
    for c = 0 to 3 do
      let i = 4 * c in
      let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
      st.(i) <- mul14.(a0) lxor mul11.(a1) lxor mul13.(a2) lxor mul9.(a3);
      st.(i + 1) <- mul9.(a0) lxor mul14.(a1) lxor mul11.(a2) lxor mul13.(a3);
      st.(i + 2) <- mul13.(a0) lxor mul9.(a1) lxor mul14.(a2) lxor mul11.(a3);
      st.(i + 3) <- mul11.(a0) lxor mul13.(a1) lxor mul9.(a2) lxor mul14.(a3)
    done

  let load st src off =
    for i = 0 to 15 do
      st.(i) <- Char.code (Bytes.get src (off + i))
    done

  let store st dst off =
    for i = 0 to 15 do
      Bytes.set dst (off + i) (Char.chr st.(i))
    done

  let encrypt_block { enc = w } ~src ~src_off ~dst ~dst_off =
    let st = Array.make 16 0 in
    load st src src_off;
    add_round_key st w 0;
    for round = 1 to 9 do
      sub_bytes st;
      shift_rows st;
      mix_columns st;
      add_round_key st w round
    done;
    sub_bytes st;
    shift_rows st;
    add_round_key st w 10;
    store st dst dst_off

  let decrypt_block { enc = w } ~src ~src_off ~dst ~dst_off =
    let st = Array.make 16 0 in
    load st src src_off;
    add_round_key st w 10;
    for round = 9 downto 1 do
      inv_shift_rows st;
      inv_sub_bytes st;
      add_round_key st w round;
      inv_mix_columns st
    done;
    inv_shift_rows st;
    inv_sub_bytes st;
    add_round_key st w 0;
    store st dst dst_off
end

(* ---- T-tables ----

   Te0.(x) is the 32-bit column contribution of state byte x in column
   position 0: [2·S(x), S(x), S(x), 3·S(x)] packed big-endian; Te1..Te3 are
   its byte rotations for positions 1..3.  Td0..Td3 are the same for the
   inverse cipher over the inverse S-box with the InvMixColumns multipliers
   [14, 9, 13, 11]. *)

let te0 = Array.make 256 0
let te1 = Array.make 256 0
let te2 = Array.make 256 0
let te3 = Array.make 256 0
let td0 = Array.make 256 0
let td1 = Array.make 256 0
let td2 = Array.make 256 0
let td3 = Array.make 256 0

let () =
  for x = 0 to 255 do
    let s = sbox.(x) in
    let s2 = xtime s in
    let s3 = s2 lxor s in
    te0.(x) <- (s2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor s3;
    te1.(x) <- (s3 lsl 24) lor (s2 lsl 16) lor (s lsl 8) lor s;
    te2.(x) <- (s lsl 24) lor (s3 lsl 16) lor (s2 lsl 8) lor s;
    te3.(x) <- (s lsl 24) lor (s lsl 16) lor (s3 lsl 8) lor s2;
    let i = inv_sbox.(x) in
    let e = mul14.(i) and n = mul9.(i) and d = mul13.(i) and b = mul11.(i) in
    td0.(x) <- (e lsl 24) lor (n lsl 16) lor (d lsl 8) lor b;
    td1.(x) <- (b lsl 24) lor (e lsl 16) lor (n lsl 8) lor d;
    td2.(x) <- (d lsl 24) lor (b lsl 16) lor (e lsl 8) lor n;
    td3.(x) <- (n lsl 24) lor (d lsl 16) lor (b lsl 8) lor e
  done

(* ---- Word-based key schedule ----

   [ek] and [dk] each hold 11 round keys as 44 big-endian 32-bit words; [dk]
   is the equivalent-inverse-cipher schedule (round keys reversed, with
   InvMixColumns applied to the nine middle ones) so decryption runs the
   same fused-table round as encryption.  [st] is the per-key round-state
   scratch: 8 ints ping-ponged between rounds, preallocated so a block
   operation allocates nothing.  A [key] is therefore not shareable between
   domains; clone ciphers per worker (as Sort's [make_worker] does). *)

type key = { ek : int array; dk : int array; st : int array }

let inv_mix_word w =
  let b0 = w lsr 24
  and b1 = (w lsr 16) land 0xff
  and b2 = (w lsr 8) land 0xff
  and b3 = w land 0xff in
  ((mul14.(b0) lxor mul11.(b1) lxor mul13.(b2) lxor mul9.(b3)) lsl 24)
  lor ((mul9.(b0) lxor mul14.(b1) lxor mul11.(b2) lxor mul13.(b3)) lsl 16)
  lor ((mul13.(b0) lxor mul9.(b1) lxor mul14.(b2) lxor mul11.(b3)) lsl 8)
  lor (mul11.(b0) lxor mul13.(b1) lxor mul9.(b2) lxor mul14.(b3))

let expand raw =
  if String.length raw <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
  let raw =
    (raw
    [@lint.declassify
      "client-local AES key schedule; its S-box access pattern is not part of \
       the server-visible trace L(DB)"])
  in
  let ek = Array.make 44 0 in
  for i = 0 to 3 do
    ek.(i) <-
      (Char.code raw.[4 * i] lsl 24)
      lor (Char.code raw.[(4 * i) + 1] lsl 16)
      lor (Char.code raw.[(4 * i) + 2] lsl 8)
      lor Char.code raw.[(4 * i) + 3]
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let t = ek.(i - 1) in
    let t =
      if i land 3 = 0 then begin
        (* RotWord + SubWord + Rcon *)
        let r = ((t lsl 8) lor (t lsr 24)) land 0xffffffff in
        let s =
          (sbox.(r lsr 24) lsl 24)
          lor (sbox.((r lsr 16) land 0xff) lsl 16)
          lor (sbox.((r lsr 8) land 0xff) lsl 8)
          lor sbox.(r land 0xff)
        in
        let s = s lxor (!rcon lsl 24) in
        rcon := xtime !rcon;
        s
      end
      else t
    in
    ek.(i) <- ek.(i - 4) lxor t
  done;
  let dk = Array.make 44 0 in
  for c = 0 to 3 do
    dk.(c) <- ek.(40 + c);
    dk.(40 + c) <- ek.(c)
  done;
  for r = 1 to 9 do
    for c = 0 to 3 do
      dk.((4 * r) + c) <- inv_mix_word ek.((4 * (10 - r)) + c)
    done
  done;
  { ek; dk; st = Array.make 8 0 }

(* ---- Block operations ---- *)

let check_off name b off =
  if off < 0 || off + 16 > Bytes.length b then
    invalid_arg (Printf.sprintf "Aes128.%s: 16-byte block at offset %d out of range" name off)

let get32 b off =
  (Char.code (Bytes.unsafe_get b off) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (off + 3))

let put32 b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (v lsr 24));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr (v land 0xff))

let encrypt_block { ek; st; _ } ~src ~src_off ~dst ~dst_off =
  check_off "encrypt_block" src src_off;
  check_off "encrypt_block" dst dst_off;
  st.(0) <- get32 src src_off lxor Array.unsafe_get ek 0;
  st.(1) <- get32 src (src_off + 4) lxor Array.unsafe_get ek 1;
  st.(2) <- get32 src (src_off + 8) lxor Array.unsafe_get ek 2;
  st.(3) <- get32 src (src_off + 12) lxor Array.unsafe_get ek 3;
  (* Nine fused T-table rounds, state ping-ponging st.(0..3) <-> st.(4..7);
     round r reads base [bi] and writes base [4 - bi]. *)
  for r = 1 to 9 do
    let bi = (1 - (r land 1)) * 4 in
    let bo = 4 - bi in
    let ko = r * 4 in
    let s0 = Array.unsafe_get st bi
    and s1 = Array.unsafe_get st (bi + 1)
    and s2 = Array.unsafe_get st (bi + 2)
    and s3 = Array.unsafe_get st (bi + 3) in
    Array.unsafe_set st bo
      (Array.unsafe_get te0 (s0 lsr 24)
      lxor Array.unsafe_get te1 ((s1 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((s2 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (s3 land 0xff)
      lxor Array.unsafe_get ek ko);
    Array.unsafe_set st (bo + 1)
      (Array.unsafe_get te0 (s1 lsr 24)
      lxor Array.unsafe_get te1 ((s2 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((s3 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (s0 land 0xff)
      lxor Array.unsafe_get ek (ko + 1));
    Array.unsafe_set st (bo + 2)
      (Array.unsafe_get te0 (s2 lsr 24)
      lxor Array.unsafe_get te1 ((s3 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((s0 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (s1 land 0xff)
      lxor Array.unsafe_get ek (ko + 2));
    Array.unsafe_set st (bo + 3)
      (Array.unsafe_get te0 (s3 lsr 24)
      lxor Array.unsafe_get te1 ((s0 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((s1 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (s2 land 0xff)
      lxor Array.unsafe_get ek (ko + 3))
  done;
  (* Final round (round 9 wrote st.(4..7)): SubBytes + ShiftRows only. *)
  let t0 = Array.unsafe_get st 4
  and t1 = Array.unsafe_get st 5
  and t2 = Array.unsafe_get st 6
  and t3 = Array.unsafe_get st 7 in
  let sb = sbox in
  put32 dst dst_off
    (((Array.unsafe_get sb (t0 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t1 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t2 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t3 land 0xff))
    lxor Array.unsafe_get ek 40);
  put32 dst (dst_off + 4)
    (((Array.unsafe_get sb (t1 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t2 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t3 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t0 land 0xff))
    lxor Array.unsafe_get ek 41);
  put32 dst (dst_off + 8)
    (((Array.unsafe_get sb (t2 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t3 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t0 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t1 land 0xff))
    lxor Array.unsafe_get ek 42);
  put32 dst (dst_off + 12)
    (((Array.unsafe_get sb (t3 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t0 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t1 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t2 land 0xff))
    lxor Array.unsafe_get ek 43)

let decrypt_block { dk; st; _ } ~src ~src_off ~dst ~dst_off =
  check_off "decrypt_block" src src_off;
  check_off "decrypt_block" dst dst_off;
  st.(0) <- get32 src src_off lxor Array.unsafe_get dk 0;
  st.(1) <- get32 src (src_off + 4) lxor Array.unsafe_get dk 1;
  st.(2) <- get32 src (src_off + 8) lxor Array.unsafe_get dk 2;
  st.(3) <- get32 src (src_off + 12) lxor Array.unsafe_get dk 3;
  (* Equivalent inverse cipher: same round shape as encryption but with the
     Td tables, the InvShiftRows byte-source rotation, and the [dk]
     schedule. *)
  for r = 1 to 9 do
    let bi = (1 - (r land 1)) * 4 in
    let bo = 4 - bi in
    let ko = r * 4 in
    let s0 = Array.unsafe_get st bi
    and s1 = Array.unsafe_get st (bi + 1)
    and s2 = Array.unsafe_get st (bi + 2)
    and s3 = Array.unsafe_get st (bi + 3) in
    Array.unsafe_set st bo
      (Array.unsafe_get td0 (s0 lsr 24)
      lxor Array.unsafe_get td1 ((s3 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((s2 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (s1 land 0xff)
      lxor Array.unsafe_get dk ko);
    Array.unsafe_set st (bo + 1)
      (Array.unsafe_get td0 (s1 lsr 24)
      lxor Array.unsafe_get td1 ((s0 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((s3 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (s2 land 0xff)
      lxor Array.unsafe_get dk (ko + 1));
    Array.unsafe_set st (bo + 2)
      (Array.unsafe_get td0 (s2 lsr 24)
      lxor Array.unsafe_get td1 ((s1 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((s0 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (s3 land 0xff)
      lxor Array.unsafe_get dk (ko + 2));
    Array.unsafe_set st (bo + 3)
      (Array.unsafe_get td0 (s3 lsr 24)
      lxor Array.unsafe_get td1 ((s2 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((s1 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (s0 land 0xff)
      lxor Array.unsafe_get dk (ko + 3))
  done;
  let t0 = Array.unsafe_get st 4
  and t1 = Array.unsafe_get st 5
  and t2 = Array.unsafe_get st 6
  and t3 = Array.unsafe_get st 7 in
  let sb = inv_sbox in
  put32 dst dst_off
    (((Array.unsafe_get sb (t0 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t3 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t2 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t1 land 0xff))
    lxor Array.unsafe_get dk 40);
  put32 dst (dst_off + 4)
    (((Array.unsafe_get sb (t1 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t0 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t3 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t2 land 0xff))
    lxor Array.unsafe_get dk 41);
  put32 dst (dst_off + 8)
    (((Array.unsafe_get sb (t2 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t1 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t0 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t3 land 0xff))
    lxor Array.unsafe_get dk 42);
  put32 dst (dst_off + 12)
    (((Array.unsafe_get sb (t3 lsr 24) lsl 24)
     lor (Array.unsafe_get sb ((t2 lsr 16) land 0xff) lsl 16)
     lor (Array.unsafe_get sb ((t1 lsr 8) land 0xff) lsl 8)
     lor Array.unsafe_get sb (t0 land 0xff))
    lxor Array.unsafe_get dk 43)
