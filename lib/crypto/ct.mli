(** Constant-time comparisons for secret material.

    [String.equal]/[Bytes.equal] (and polymorphic [=]) return at the
    first differing byte, so an attacker timing, say, tag verification
    learns how long a matching prefix it has guessed.  These variants
    always scan every byte — the running time depends only on the
    lengths, which the leakage model [L(DB)] already discloses.  Rule R6
    (constant-time-crypto) rejects variable-time comparisons on key,
    tag, and ciphertext material inside [lib/crypto]; use these instead.

    A length mismatch still returns early: lengths are public. *)

val equal : string -> string -> bool
val equal_bytes : bytes -> bytes -> bool
