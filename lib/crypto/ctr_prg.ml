(* Keystream is produced four AES blocks at a time through the T-table fast
   path; counters are consumed in the same order as the old one-block
   refill, so the byte stream is unchanged. *)
let refill_len = 64

type t = {
  key : Aes128.key;
  block : Bytes.t; (* current keystream chunk (4 AES blocks) *)
  ctr : Bytes.t; (* 16-byte big-endian counter *)
  mutable used : int; (* bytes of [block] already consumed *)
}

let create seed_key =
  {
    key = Aes128.expand seed_key;
    block = Bytes.create refill_len;
    ctr = Bytes.make 16 '\000';
    used = refill_len;
  }

let bump_counter ctr =
  let rec go i =
    if i >= 0 then begin
      let v = (Char.code (Bytes.get ctr i) + 1) land 0xff in
      Bytes.set ctr i (Char.chr v);
      if v = 0 then go (i - 1)
    end
  in
  go 15

let refill t =
  for b = 0 to (refill_len / 16) - 1 do
    bump_counter t.ctr;
    Aes128.encrypt_block
      (t.key [@lint.declassify "client-local AES; table timing is not in the server trace L(DB)"])
      ~src:t.ctr ~src_off:0 ~dst:t.block ~dst_off:(16 * b)
  done;
  t.used <- 0

let next_byte t =
  if t.used >= refill_len then refill t;
  let b = Char.code (Bytes.get t.block t.used) in
  t.used <- t.used + 1;
  b

let next64 t =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (next_byte t))
  done;
  !v

let int t bound =
  if bound <= 0 then invalid_arg "Ctr_prg.int: bound must be positive";
  let max62 = 0x3FFFFFFFFFFFFFFF in
  let limit = max62 / bound * bound in
  let rec go () =
    let v = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL) in
    if v >= limit then go () else v mod bound
  in
  go ()

let fill_bytes t b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    if t.used >= refill_len then refill t;
    let take = min (refill_len - t.used) (n - !off) in
    Bytes.blit t.block t.used b !off take;
    t.used <- t.used + take;
    off := !off + take
  done

let bytes t n =
  let b = Bytes.create n in
  fill_bytes t b;
  b
