(** AES-128-CBC with PKCS#7 padding.

    The IV is supplied by the caller; {!Cell_cipher} layers fresh random IVs
    on top to obtain CBC$ (semantic security under chosen-plaintext attack).

    The [_blocks] primitives are the allocation-free fast path: they operate
    on caller-owned buffers at explicit offsets, so {!Cell_cipher} can
    assemble IV ‖ body ‖ padding in a single output buffer.  The string API
    remains for small one-off uses (e.g. [Det_encryption]). *)

val encrypt : Aes128.key -> iv:string -> string -> string
(** [encrypt key ~iv plaintext] CBC-encrypts [plaintext] (any length) with
    PKCS#7 padding.  The result length is the padded length; the IV is not
    included.  @raise Invalid_argument if [iv] is not 16 bytes. *)

val decrypt : Aes128.key -> iv:string -> string -> string
(** Inverse of {!encrypt}.  @raise Invalid_argument on malformed input or
    padding. *)

val encrypt_blocks : Aes128.key -> Bytes.t -> iv_off:int -> off:int -> nblocks:int -> unit
(** [encrypt_blocks key buf ~iv_off ~off ~nblocks] CBC-encrypts the
    [16*nblocks] bytes of [buf] at [off] in place, chaining from the 16-byte
    IV already present in [buf] at [iv_off].  No padding is added: the
    caller lays out (and pads) the buffer.  Allocates nothing.
    @raise Invalid_argument if either range is out of bounds. *)

val decrypt_blocks :
  Aes128.key ->
  src:Bytes.t -> src_off:int ->
  iv:Bytes.t -> iv_off:int ->
  dst:Bytes.t -> dst_off:int ->
  nblocks:int -> unit
(** [decrypt_blocks] is the inverse of {!encrypt_blocks}: it decrypts
    [16*nblocks] bytes of [src] at [src_off] into [dst] at [dst_off],
    chaining from [iv] at [iv_off].  [dst] must not overlap the [src]
    ciphertext (previous ciphertext blocks are re-read for the xor chain);
    [iv] may alias [src] (as it does for a cell, where the IV precedes the
    body).  No padding is removed.  Allocates nothing. *)

val unpad_len : Bytes.t -> off:int -> len:int -> int
(** [unpad_len buf ~off ~len] validates the PKCS#7 padding of the [len]-byte
    plaintext at [buf.(off)] and returns the unpadded length.
    @raise Invalid_argument on bad padding. *)
