(* Branch-free accumulate-and-compare: XOR every byte pair into an
   accumulator and test it once at the end, so the running time depends
   only on the (public) lengths, never on where the inputs differ. *)

let equal_sub a b =
  let n = String.length a in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc lor (Char.code (String.unsafe_get a i) lxor Char.code (String.unsafe_get b i))
  done;
  !acc = 0
[@@lint.allow "no-unsafe-casts"]

let equal a b = String.length a = String.length b && equal_sub a b

let equal_bytes a b =
  Bytes.length a = Bytes.length b
  && equal_sub (Bytes.unsafe_to_string a) (Bytes.unsafe_to_string b)
[@@lint.allow "no-unsafe-casts"]
