(** Semantically secure cell encryption (CBC$): AES-128-CBC under a secret
    key with a fresh random IV prepended to every ciphertext.

    This is the cell-level encryption the paper assumes for the outsourced
    database (§II-A): every attribute value of every record is encrypted
    individually, and the client re-encrypts on every write so the server
    never sees a repeated ciphertext.

    The cipher carries preallocated scratch (IV buffer, round state inside
    the AES key, a decrypt buffer), so a [t] must not be shared between
    domains — clone one per worker, as [Sort_backend.make_worker] does.
    Encrypting a cell performs exactly one allocation (the ciphertext);
    the bulk [_many] entry points let the ORAM layers push a whole path or
    exchange batch through the cipher in one call. *)

type t

val create : ?iv_rng:(Bytes.t -> unit) -> (string[@secret]) -> t
(** [create raw_key] builds a cipher from a 16-byte key.  [iv_rng] supplies
    IV randomness (defaults to a splitmix64 generator seeded from the key);
    pass an AES-CTR source for cryptographic-strength IVs. *)

val encrypt : t -> string -> string [@@lint.declassify "ciphertext under CBC$ with fresh IVs is public by IND-CPA; it reveals only its length, i.e. Size(DB)"]
(** [encrypt t plaintext] is [iv || cbc_encrypt plaintext] under a fresh IV.
    Repeated calls on equal plaintexts yield distinct ciphertexts. *)

val decrypt : t -> string -> string [@@secret]
(** Inverse of {!encrypt}.  The result is plaintext cell content — a
    secret-flow source for R11.  @raise Invalid_argument on malformed
    input. *)

val encrypt_to : t -> string -> Bytes.t -> int -> int [@@lint.declassify "ciphertext under CBC$ with fresh IVs is public by IND-CPA; it reveals only its length, i.e. Size(DB)"]
(** [encrypt_to t plaintext dst dst_off] writes the whole cell (IV ‖
    CBC body ‖ padding, encrypted in place) into [dst] at [dst_off] and
    returns its length, [ciphertext_len ~plaintext_len].  Consumes the same
    IV randomness as {!encrypt} and produces identical bytes.
    @raise Invalid_argument if the output range is out of bounds. *)

val encrypt_from : t -> Bytes.t -> off:int -> len:int -> Bytes.t -> int -> int [@@lint.declassify "ciphertext under CBC$ with fresh IVs is public by IND-CPA; it reveals only its length, i.e. Size(DB)"]
(** [encrypt_from t src ~off ~len dst dst_off] is {!encrypt_to} with the
    plaintext taken from the [Bytes] region [src.(off .. off+len-1)]
    instead of a string: same cell layout, same IV stream, identical
    ciphertext bytes for identical plaintext bytes.  Lets callers that
    assemble plaintexts in a reused buffer (the ORAM path codec) encrypt
    without per-block plaintext allocations.
    @raise Invalid_argument if either range is out of bounds. *)

val decrypt_to : t -> string -> Bytes.t -> int -> int
(** [decrypt_to t ciphertext dst dst_off] decrypts the cell body into [dst]
    at [dst_off] and returns the plaintext length (padding validated and
    stripped; [dst] must have room for the padded body, i.e. ciphertext
    length - 16).  @raise Invalid_argument on malformed input. *)

val encrypt_many : t -> string list -> string list [@@lint.declassify "ciphertext under CBC$ with fresh IVs is public by IND-CPA; it reveals only its length, i.e. Size(DB)"]
(** [encrypt_many t pts] encrypts each plaintext in order; equivalent to
    [List.map (encrypt t)] (same IV stream, same ciphertexts). *)

val decrypt_many : t -> string list -> string list [@@secret]
(** [decrypt_many t cts] decrypts each cell in order through a shared
    scratch buffer: one allocation per cell instead of four.  Like
    {!decrypt}, the results are secret plaintext. *)

val ciphertext_len : plaintext_len:int -> int
(** Length of the ciphertext produced for a plaintext of the given length
    (IV + PKCS#7-padded body).  Needed for fixed-width server storage. *)
