(** From-scratch AES-128 block cipher (FIPS-197).

    The default implementation is a 32-bit T-table (fused-round) cipher:
    four 256-entry word tables per direction collapse SubBytes, ShiftRows
    and MixColumns into table lookups and xors, the key schedule is
    word-based, and the round state lives in a per-key preallocated scratch
    — a block operation performs no allocation.  The S-box and its inverse
    are still derived programmatically from the GF(2^8) multiplicative
    inverse and the Rijndael affine transform (and the T-tables from them),
    so there is no hand-typed 256-entry table to get wrong.  Verified
    against the FIPS-197 appendix vectors, the full NIST AESAVS
    GFSbox/KeySbox/VarTxt known-answer sets, a 1000-iteration Monte Carlo
    chain, and differentially against {!Reference} in the test suite. *)

type key
(** An expanded AES-128 key schedule (11 round keys for each direction),
    plus a preallocated round-state scratch.  Because of the scratch a [key]
    must not be used from two domains concurrently — clone the cipher per
    worker instead (as [Sort_backend.make_worker] does). *)

val block_size : int
(** Size of an AES block in bytes (16). *)

val expand : (string[@secret]) -> key [@@secret]
(** [expand raw] expands a 16-byte raw key into a key schedule.  Both
    the raw key and the schedule are secret-flow sources for R11.
    @raise Invalid_argument if [raw] is not exactly 16 bytes. *)

val encrypt_block : key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
(** Encrypt one 16-byte block of [src] at [src_off] into [dst] at [dst_off].
    [src] and [dst] may be the same buffer at the same offset.
    @raise Invalid_argument if either 16-byte range is out of bounds. *)

val decrypt_block : key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
(** Inverse of {!encrypt_block}. *)

(** The original byte-at-a-time FIPS-197 transcription, kept as the
    differential-testing oracle for the T-table fast path.  Same behaviour,
    an order of magnitude slower; do not use outside tests/benchmarks. *)
module Reference : sig
  type key

  val expand : (string[@secret]) -> key [@@secret]
  (** @raise Invalid_argument if the raw key is not exactly 16 bytes. *)

  val encrypt_block :
    key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit

  val decrypt_block :
    key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
end
