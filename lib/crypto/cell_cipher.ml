type t = {
  key : Aes128.key; [@secret]
  iv_rng : Bytes.t -> unit;
  iv : Bytes.t; (* 16-byte IV scratch, filled by [iv_rng] per encryption *)
  mutable scratch : Bytes.t; (* grow-on-demand plaintext scratch for [decrypt_many] *)
}

let create ?iv_rng raw_key =
  let key = Aes128.expand raw_key in
  let iv_rng =
    match iv_rng with
    | Some f -> f
    | None ->
        (* Default: deterministic-per-instance splitmix stream seeded from
           the key bytes, good enough for the simulation. *)
        let seed = String.fold_left (fun acc c -> (acc * 257) + Char.code c) 0 raw_key in
        let rng = Rng.create seed in
        fun b -> Rng.fill_bytes rng b
  in
  { key; iv_rng; iv = Bytes.create 16; scratch = Bytes.create 256 }

let ciphertext_len ~plaintext_len = 16 + (plaintext_len / 16 * 16) + 16

(* The whole cell — IV, body, padding — is assembled in [dst] and encrypted
   in place: the only per-cell allocation left is the output itself. *)
let encrypt_to t plaintext dst dst_off =
  let n = String.length plaintext in
  let padded = (n / 16 * 16) + 16 in
  if dst_off < 0 || dst_off + 16 + padded > Bytes.length dst then
    invalid_arg "Cell_cipher.encrypt_to: output range out of bounds";
  t.iv_rng t.iv;
  Bytes.blit t.iv 0 dst dst_off 16;
  Bytes.blit_string plaintext 0 dst (dst_off + 16) n;
  Bytes.fill dst (dst_off + 16 + n) (padded - n) (Char.unsafe_chr (padded - n));
  Cbc.encrypt_blocks
    (t.key [@lint.declassify "client-local AES; table timing is not in the server trace L(DB)"])
    (dst [@lint.declassify "plaintext enters client-local AES here by design; only the ciphertext leaves the client"])
    ~iv_off:dst_off ~off:(dst_off + 16) ~nblocks:(padded / 16);
  16 + padded

let encrypt t plaintext =
  let out = Bytes.create (ciphertext_len ~plaintext_len:(String.length plaintext)) in
  let _ = encrypt_to t plaintext out 0 in
  Bytes.unsafe_to_string out

(* Same cell layout and IV stream as {!encrypt_to}, but the plaintext is
   a [Bytes] region instead of a string — the ORAM path codec encodes
   blocks into a reused path buffer and encrypts straight out of it, so
   the ciphertext cell is the only allocation per block. *)
let encrypt_from t src ~off ~len dst dst_off =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Cell_cipher.encrypt_from: source range out of bounds";
  let padded = (len / 16 * 16) + 16 in
  if dst_off < 0 || dst_off + 16 + padded > Bytes.length dst then
    invalid_arg "Cell_cipher.encrypt_from: output range out of bounds";
  t.iv_rng t.iv;
  Bytes.blit t.iv 0 dst dst_off 16;
  Bytes.blit src off dst (dst_off + 16) len;
  Bytes.fill dst (dst_off + 16 + len) (padded - len) (Char.unsafe_chr (padded - len));
  Cbc.encrypt_blocks
    (t.key [@lint.declassify "client-local AES; table timing is not in the server trace L(DB)"])
    (dst [@lint.declassify "plaintext enters client-local AES here by design; only the ciphertext leaves the client"])
    ~iv_off:dst_off ~off:(dst_off + 16) ~nblocks:(padded / 16);
  16 + padded

let check_ct ciphertext =
  let len = String.length ciphertext in
  if len < 32 then invalid_arg "Cell_cipher.decrypt: too short";
  if (len - 16) mod 16 <> 0 then
    invalid_arg "Cbc.decrypt: length must be a positive multiple of 16";
  len - 16

let decrypt_to t ciphertext dst dst_off =
  let body = check_ct ciphertext in
  if dst_off < 0 || dst_off + body > Bytes.length dst then
    invalid_arg "Cell_cipher.decrypt_to: output range out of bounds";
  let src = Bytes.unsafe_of_string ciphertext in
  Cbc.decrypt_blocks
    (t.key [@lint.declassify "client-local AES; table timing is not in the server trace L(DB)"])
    ~src ~src_off:16 ~iv:src ~iv_off:0 ~dst ~dst_off ~nblocks:(body / 16);
  Cbc.unpad_len dst ~off:dst_off ~len:body

let decrypt t ciphertext =
  let body = check_ct ciphertext in
  let out = Bytes.create body in
  let n = decrypt_to t ciphertext out 0 in
  Bytes.sub_string out 0 n

let encrypt_many t plaintexts = List.map (encrypt t) plaintexts

let decrypt_many t ciphertexts =
  List.map
    (fun ct ->
      let body = check_ct ct in
      if body > Bytes.length t.scratch then begin
        let cap = ref (2 * Bytes.length t.scratch) in
        while body > !cap do
          cap := 2 * !cap
        done;
        t.scratch <- Bytes.create !cap
      end;
      let n = decrypt_to t ct t.scratch 0 in
      Bytes.sub_string t.scratch 0 n)
    ciphertexts
