(* AES-128-CBC.

   The block primitives ([encrypt_blocks]/[decrypt_blocks]) operate on
   caller-owned buffers and allocate nothing; the string API (PKCS#7
   [encrypt]/[decrypt]) is a thin wrapper that allocates exactly the output
   buffer.  [Cell_cipher] drives the block primitives directly so that a
   whole cell — IV, body and padding — is assembled in one buffer. *)

(* dst[off..off+15] ^= srcb[src_off..src_off+15]; the ranges may belong to
   the same buffer as long as they do not overlap. *)
let xor16 dst off srcb src_off =
  for i = 0 to 15 do
    Bytes.unsafe_set dst (off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (off + i))
         lxor Char.code (Bytes.unsafe_get srcb (src_off + i))))
  done

let check_range name b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg
      (Printf.sprintf "Cbc.%s: range [%d, %d) out of bounds" name off (off + len))

let encrypt_blocks key buf ~iv_off ~off ~nblocks =
  check_range "encrypt_blocks" buf iv_off 16;
  check_range "encrypt_blocks" buf off (16 * nblocks);
  for k = 0 to nblocks - 1 do
    let o = off + (16 * k) in
    (* Chain from the IV for the first block, then from the previous
       ciphertext block, which encrypt-in-place left just behind us. *)
    xor16 buf o buf (if k = 0 then iv_off else o - 16);
    Aes128.encrypt_block key ~src:buf ~src_off:o ~dst:buf ~dst_off:o
  done

let decrypt_blocks key ~src ~src_off ~iv ~iv_off ~dst ~dst_off ~nblocks =
  check_range "decrypt_blocks" src src_off (16 * nblocks);
  check_range "decrypt_blocks" iv iv_off 16;
  check_range "decrypt_blocks" dst dst_off (16 * nblocks);
  for k = 0 to nblocks - 1 do
    let so = src_off + (16 * k) and do_ = dst_off + (16 * k) in
    Aes128.decrypt_block key ~src ~src_off:so ~dst ~dst_off:do_;
    if k = 0 then xor16 dst do_ iv iv_off else xor16 dst do_ src (so - 16)
  done

(* PKCS#7: validate the padding of the [len]-byte plaintext at [buf.(off)]
   and return the unpadded length.  Shared by [decrypt] and
   [Cell_cipher.decrypt_to]. *)
let unpad_len buf ~off ~len =
  if len = 0 then invalid_arg "Cbc.decrypt: empty input";
  let k = Char.code (Bytes.get buf (off + len - 1)) in
  if k = 0 || k > 16 || k > len then invalid_arg "Cbc.decrypt: bad padding";
  for i = len - k to len - 1 do
    if Char.code (Bytes.get buf (off + i)) <> k then
      invalid_arg "Cbc.decrypt: bad padding"
  done;
  len - k

let encrypt key ~iv plaintext =
  if String.length iv <> 16 then invalid_arg "Cbc.encrypt: iv must be 16 bytes";
  let n = String.length plaintext in
  let k = 16 - (n mod 16) in
  (* iv scratch ‖ padded body; only the body is returned. *)
  let buf = Bytes.create (16 + n + k) in
  Bytes.blit_string iv 0 buf 0 16;
  Bytes.blit_string plaintext 0 buf 16 n;
  Bytes.fill buf (16 + n) k (Char.chr k);
  encrypt_blocks key buf ~iv_off:0 ~off:16 ~nblocks:((n + k) / 16);
  Bytes.sub_string buf 16 (n + k)

let decrypt key ~iv ciphertext =
  let n = String.length ciphertext in
  if n = 0 || n mod 16 <> 0 then
    invalid_arg "Cbc.decrypt: length must be a positive multiple of 16";
  if String.length iv <> 16 then invalid_arg "Cbc.decrypt: iv must be 16 bytes";
  let src = Bytes.unsafe_of_string ciphertext in
  let out = Bytes.create n in
  decrypt_blocks key ~src ~src_off:0
    ~iv:(Bytes.unsafe_of_string iv)
    ~iv_off:0 ~dst:out ~dst_off:0 ~nblocks:(n / 16);
  Bytes.sub_string out 0 (unpad_len out ~off:0 ~len:n)
