(** Crash-safe file primitives for the persistent store.

    This is the only module in [lib/] permitted to open, rename or
    append to files directly (lint rule R9, durability-hygiene): routing
    every durable write through here keeps the fsync-then-rename
    discipline in one audited place.

    All writes retry [EINTR]; created files are [0o600] and directories
    [0o700] (tenant data is ciphertext, but names and sizes still leak
    workload shape). *)

val mkdirs : string -> unit
(** Create a directory and any missing ancestors ([mkdir -p]). *)

val write_file_atomic : path:string -> string -> unit
(** Replace the file at [path] with [data], atomically with respect to
    a crash: write to [path ^ ".tmp"], [fsync], [rename] over [path],
    then [fsync] the parent directory.  A concurrent or post-crash
    reader sees either the old content or the new — never a torn mix.
    @raise Unix.Unix_error when the filesystem refuses (no space,
    permissions); the target is untouched in that case. *)

val read_file : string -> string option
(** Whole-file read; [None] if the file does not exist or is
    unreadable. *)

val remove_file : string -> unit
(** Unlink, ignoring a missing file. *)

val list_dir : string -> string list
(** Directory entries, sorted; [[]] on a missing directory. *)

(** {2 Append-only log handle}

    Appends are deliberately {e not} fsynced per record: the segment
    log's CRC framing makes a torn tail recoverable ({!Segment.parse}),
    and syncing every block write would serialize the daemon on the
    disk.  {!sync} provides an explicit durability point (snapshots use
    it via {!write_file_atomic}). *)

type append_handle

val open_append : ?truncate_at:int -> string -> append_handle
(** Open (creating if missing) for append.  [truncate_at n] first cuts
    the file to [n] bytes — recovery uses it to discard a torn tail
    before appending new records. *)

val append : append_handle -> string -> unit
(** Append the whole string (short writes are retried to completion). *)

val sync : append_handle -> unit
val close_append : append_handle -> unit
