open Servsim

(* Durable image of one tenant session: a snapshot file plus a
   generation-numbered write-ahead journal, both in CRC-framed
   {!Segment} records under a per-namespace directory.

   Layout under [<data_dir>/<encoded namespace>/]:

     snapshot      meta record, then one wire-encoded reconstruction
                   request per store/slot (atomic replace on rewrite)
     wal-<g>.log   every counted request served since snapshot
                   generation <g>, in service order

   The journal records *all* counted requests, reads included: the trace
   digests fold read accesses too, so replaying only mutations would
   recover the blocks but not the digests.  Replay goes through
   {!Handler.replay}, which reproduces the serving path's accounting
   exactly — after recovery, digests and cost ledgers are bit-identical
   to the uninterrupted run.

   Crash safety is a two-file dance: a snapshot at generation [g+1] is
   written atomically ({!Fsio.write_file_atomic}) while [wal-g.log]
   still exists, and only then is the old journal removed and
   [wal-(g+1).log] started.  Whatever the crash point, the snapshot
   names (via its meta record) exactly the journal generation that
   extends it; any other wal file is stale and deleted on open. *)

exception Corrupt of string

let corruptf fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* {2 Namespace encoding}

   A namespace is client-chosen and must not traverse the filesystem.
   Names made only of [A-Za-z0-9._-] keep themselves (prefixed "t-" so
   "." and ".." are impossible and the two encodings cannot collide);
   anything else becomes "x-" ^ hex.  Wire.max_namespace_len is 64, so
   the worst case (x- + 128 hex digits) stays well inside any
   filesystem's component limit. *)

let safe_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-'

let encode_ns ns =
  if ns <> "" && String.for_all safe_char ns then "t-" ^ ns
  else begin
    let b = Buffer.create (2 + (2 * String.length ns)) in
    Buffer.add_string b "x-";
    String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) ns;
    Buffer.contents b
  end

let tenant_dir ~data_dir ns = Filename.concat data_dir (encode_ns ns)
let wal_path ~dir ~gen = Filename.concat dir (Printf.sprintf "wal-%d.log" gen)
let snapshot_path ~dir = Filename.concat dir "snapshot"

(* {2 Snapshot meta record}

   "sfddsnp1" magic, then 13 little-endian u64s: the journal generation,
   the five words of {!Trace.persisted}, and the seven counters of a
   {!Cost.snapshot}. *)

let meta_magic = "sfddsnp1"
let meta_len = String.length meta_magic + (13 * 8)

let add_u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let u64_at s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := !v lor (Char.code s.[off + i] lsl (i * 8))
  done;
  !v

type meta = { m_gen : int; m_trace : Trace.persisted; m_cost : Cost.snapshot }

let encode_meta m =
  let buf = Buffer.create meta_len in
  Buffer.add_string buf meta_magic;
  List.iter (add_u64 buf)
    [
      m.m_gen;
      m.m_trace.Trace.p_count;
      m.m_trace.Trace.p_full_lo;
      m.m_trace.Trace.p_full_hi;
      m.m_trace.Trace.p_shape_lo;
      m.m_trace.Trace.p_shape_hi;
      m.m_cost.Cost.bytes_to_server;
      m.m_cost.Cost.bytes_to_client;
      m.m_cost.Cost.round_trips;
      m.m_cost.Cost.server_bytes;
      m.m_cost.Cost.client_peak_bytes;
      m.m_cost.Cost.client_current_bytes;
      m.m_cost.Cost.client_underflows;
    ];
  Buffer.contents buf

let decode_meta s =
  if String.length s <> meta_len then corruptf "snapshot meta: %d bytes, want %d" (String.length s) meta_len;
  if not (String.equal (String.sub s 0 (String.length meta_magic)) meta_magic) then
    corruptf "snapshot meta: bad magic";
  let field i = u64_at s (String.length meta_magic + (i * 8)) in
  {
    m_gen = field 0;
    m_trace =
      {
        Trace.p_count = field 1;
        p_full_lo = field 2;
        p_full_hi = field 3;
        p_shape_lo = field 4;
        p_shape_hi = field 5;
      };
    m_cost =
      {
        Cost.bytes_to_server = field 6;
        bytes_to_client = field 7;
        round_trips = field 8;
        server_bytes = field 9;
        client_peak_bytes = field 10;
        client_current_bytes = field 11;
        client_underflows = field 12;
      };
  }

(* {2 Wire-encoded requests as record payloads} *)

let encode_req req =
  let buf = Buffer.create 64 in
  Wire.write_request_sink (Wire.buffer_sink buf) req;
  Buffer.contents buf

let decode_req ~what payload =
  let pos = ref 0 in
  match Wire.read_request_src (Wire.string_source payload pos) with
  | req when !pos = String.length payload -> req
  | _ -> corruptf "%s: trailing bytes in request record" what
  | exception Wire.Protocol_error msg -> corruptf "%s: %s" what msg
  | exception Wire.Incomplete -> corruptf "%s: truncated request record" what

type t = {
  dir : string;
  snapshot_every : int;
  mutable gen : int;
  mutable writer : Segment.writer;
  mutable wal_records : int;
}

(* Rebuild the stores named by a snapshot's reconstruction requests.
   These are replayed with tracing off and no accounting: the snapshot's
   meta record carries the exact digest and ledger state, which is
   restored afterwards — folding the reconstruction into the digests
   would double-count it. *)
let apply_reconstruction state req =
  match Handler.handle state req with
  | Wire.Ok -> ()
  | Wire.Error e -> corruptf "snapshot reconstruction rejected: %s" e
  | _ -> corruptf "snapshot reconstruction: unexpected response"
  | exception Wire.Protocol_error e -> corruptf "snapshot reconstruction failed: %s" e

(* A durable image that records dynamic-session verbs can only be
   rebuilt by a process with the engine linked in; loading it without
   one would silently produce a tenant whose state has forked from its
   journal. *)
let check_dyn_available ~what req =
  if Handler.dynamic_verb req && not (Handler.dynamic_available ()) then
    corruptf "%s: dynamic session recorded but no dynamic engine is installed in this process"
      what

(* Rebuild a dynamic session by re-dispatching its recorded update
   history.  Unlike store reconstruction this goes through the normal
   dispatcher (the engine rebuilds its own ORAM state and trace from
   scratch — deterministically, so no engine state needs serialising),
   and update responses are ignored: erroring updates (arity mismatch,
   capacity) are recorded too and re-error identically.  Only a rejected
   [Begin_dynamic] is fatal — it means the whole session is missing. *)
let apply_dyn state req =
  match Handler.handle state req with
  | Wire.Error e when (match req with Wire.Begin_dynamic _ -> true | _ -> false) ->
      corruptf "snapshot dynamic replay rejected: %s" e
  | _ -> ()
  | exception Wire.Protocol_error e -> corruptf "snapshot dynamic replay failed: %s" e

let load_snapshot ~dir state =
  match Fsio.read_file (snapshot_path ~dir) with
  | None -> 0
  | Some s ->
      let scan = Segment.parse s in
      (* The snapshot is written atomically, so unlike the journal a torn
         record here is real corruption, not an interrupted append. *)
      if scan.Segment.torn then corruptf "snapshot: torn or corrupt record";
      (match scan.Segment.records with
      | [] -> corruptf "snapshot: empty"
      | meta :: reqs ->
          let m = decode_meta meta in
          let trace = Handler.trace state in
          Trace.set_enabled trace false;
          List.iter
            (fun payload ->
              let req = decode_req ~what:"snapshot" payload in
              check_dyn_available ~what:"snapshot" req;
              if Handler.dynamic_verb req then apply_dyn state req
              else apply_reconstruction state req)
            reqs;
          Trace.set_enabled trace true;
          Trace.load trace m.m_trace;
          Cost.restore (Handler.cost state) m.m_cost;
          m.m_gen)

let replay_wal ~dir ~gen state =
  let scan = Segment.read (wal_path ~dir ~gen) in
  List.iter
    (fun payload ->
      let req = decode_req ~what:"journal" payload in
      check_dyn_available ~what:"journal" req;
      Handler.replay state req)
    scan.Segment.records;
  scan

(* Journal files from generations other than the live one are leftovers
   of a crash between the snapshot rename and the old journal's unlink. *)
let remove_stale_wals ~dir ~gen =
  List.iter
    (fun entry ->
      match Scanf.sscanf_opt entry "wal-%d.log%!" (fun g -> g) with
      | Some g when g <> gen -> Fsio.remove_file (Filename.concat dir entry)
      | _ -> ())
    (Fsio.list_dir dir)

let open_ ~data_dir ~snapshot_every ns =
  let dir = tenant_dir ~data_dir ns in
  Fsio.mkdirs dir;
  let state = Handler.create_state () in
  let gen = load_snapshot ~dir state in
  let scan = replay_wal ~dir ~gen state in
  remove_stale_wals ~dir ~gen;
  let writer = Segment.create_writer ~truncate_at:scan.Segment.valid (wal_path ~dir ~gen) in
  let t =
    { dir; snapshot_every; gen; writer; wal_records = List.length scan.Segment.records }
  in
  (t, state)

let snapshot t state =
  let gen' = t.gen + 1 in
  let buf = Buffer.create 4096 in
  let meta =
    {
      m_gen = gen';
      m_trace = Trace.save (Handler.trace state);
      m_cost = Cost.snapshot (Handler.cost state);
    }
  in
  Segment.add_record buf (encode_meta meta);
  List.iter
    (fun (name, blocks) ->
      Segment.add_record buf (encode_req (Wire.Create_store name));
      let n = Array.length blocks in
      if n > 0 then Segment.add_record buf (encode_req (Wire.Ensure (name, n)));
      Array.iteri
        (fun i c -> if c <> "" then Segment.add_record buf (encode_req (Wire.Put (name, i, c))))
        blocks)
    (Handler.export_stores state);
  (* The dynamic session, if any, is persisted as its full update
     history (the successful [Begin_dynamic] plus every update since):
     re-dispatching it is the only representation that rehydrates the
     engine's ORAM state and trace digests bit-identically.  It follows
     the store records so the stores the session's WAL-replayed updates
     never touch are already in place. *)
  List.iter (fun req -> Segment.add_record buf (encode_req req)) (Handler.export_dyn state);
  Fsio.write_file_atomic ~path:(snapshot_path ~dir:t.dir) (Buffer.contents buf);
  (* The snapshot now durably covers everything: retire the old journal
     and start the one the snapshot's generation names. *)
  Segment.close t.writer;
  Fsio.remove_file (wal_path ~dir:t.dir ~gen:t.gen);
  t.gen <- gen';
  t.writer <- Segment.create_writer (wal_path ~dir:t.dir ~gen:gen');
  t.wal_records <- 0

let journal t ~state req =
  Segment.append t.writer (encode_req req);
  t.wal_records <- t.wal_records + 1;
  if t.snapshot_every > 0 && t.wal_records >= t.snapshot_every then snapshot t state

let sync t = Segment.sync t.writer
let close t = Segment.close t.writer
let wal_records t = t.wal_records
let generation t = t.gen
