(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) over strings.

    Guards every record of the segment log ({!Segment}) so recovery can
    tell a fully written record from a torn or bit-flipped tail.  Not a
    cryptographic integrity check — the store sits under the
    honest-but-curious server of the paper's model, which corrupts data
    only by crashing, not adversarially. *)

val digest : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF].
    [digest "123456789" = 0xCBF43926] (the standard check value). *)

val update : int -> string -> off:int -> len:int -> int
(** Streaming form: [update crc s ~off ~len] extends [crc] (the digest
    of everything hashed so far; start from [0]) with [s.[off..off+len-1]].
    [digest s = update 0 s ~off:0 ~len:(String.length s)]. *)
