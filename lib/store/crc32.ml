(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the frame
   checksum of the segment log.  Table-driven, one table shared by every
   caller; built on first use. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~off ~len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest s = update 0 s ~off:0 ~len:(String.length s)
