(** CRC32-framed append-only record log: the on-disk frame of both the
    per-tenant write-ahead journal and the snapshot file.

    A record is [[u32le length][u32le CRC-32][payload]]; a segment is a
    concatenation of records.  {!parse} accepts the longest valid prefix
    and flags (never raises on) a torn or corrupt tail, which is the
    whole crash-recovery story: an append interrupted by a crash loses
    only itself. *)

val max_payload_len : int
(** Hard cap a record's length prefix may claim (128 MiB — beyond any
    legal wire frame).  A larger claim is treated as corruption. *)

val add_record : Buffer.t -> string -> unit
(** Append one framed record to a buffer (used to build snapshot files
    in memory before the atomic write). *)

type scan = {
  records : string list;  (** payloads of the valid prefix, in order *)
  valid : int;  (** byte length of the valid prefix *)
  torn : bool;
      (** bytes past [valid] existed but did not form a whole, checksummed
          record — a crash mid-append or corruption; reopen the log with
          [truncate_at valid] to discard them *)
}

val parse : string -> scan

val read : string -> scan
(** {!parse} of the file's contents; an absent file is an empty, clean
    scan. *)

(** {2 Writer} *)

type writer

val create_writer : ?truncate_at:int -> string -> writer
(** Open an append-only segment writer ({!Fsio.open_append}).
    [truncate_at] discards a torn tail found by a prior {!read}. *)

val append : writer -> string -> unit
(** Frame and append one record.  Not fsynced (see {!Fsio.append});
    call {!sync} for a durability point. *)

val sync : writer -> unit
val close : writer -> unit
