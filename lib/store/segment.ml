(* CRC32-framed append-only record log.

   One record on disk is

     [u32le payload length] [u32le CRC-32 of payload] [payload bytes]

   and a segment file is a plain concatenation of records.  Parsing
   walks the file front to back and stops at the first record that is
   incomplete, over-long or fails its CRC — everything before that point
   is the valid prefix, everything after is a torn tail from a crash
   mid-append (or corruption) and is discarded by truncating the file
   back to the prefix on the next open.  Recovery therefore never
   crashes on a bad tail; it silently loses at most the records the
   crash interrupted, which the journaling protocol is designed to
   tolerate. *)

let header_len = 8

(* A length prefix larger than any frame the wire protocol can produce
   is corruption, not a record; without this cap a flipped bit in a
   length field could make the parser skip the rest of the file and
   call gigabytes of real records a "tail". *)
let max_payload_len = 1 lsl 27

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let add_record buf payload =
  let n = String.length payload in
  if n > max_payload_len then invalid_arg "Segment.add_record: payload too large";
  add_u32 buf n;
  add_u32 buf (Crc32.digest payload);
  Buffer.add_string buf payload

let u32_at s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

type scan = { records : string list; valid : int; torn : bool }

let parse s =
  let len = String.length s in
  let rec go off acc =
    if off + header_len > len then stop off acc ~torn:(off < len)
    else begin
      let n = u32_at s off in
      let crc = u32_at s (off + 4) in
      if n > max_payload_len || off + header_len + n > len then stop off acc ~torn:true
      else begin
        let payload = String.sub s (off + header_len) n in
        if Crc32.digest payload <> crc then stop off acc ~torn:true
        else go (off + header_len + n) (payload :: acc)
      end
    end
  and stop off acc ~torn = { records = List.rev acc; valid = off; torn } in
  go 0 []

let read path =
  match Fsio.read_file path with
  | None -> { records = []; valid = 0; torn = false }
  | Some s -> parse s

type writer = { h : Fsio.append_handle; buf : Buffer.t }

let create_writer ?truncate_at path =
  { h = Fsio.open_append ?truncate_at path; buf = Buffer.create 256 }

let append w payload =
  Buffer.clear w.buf;
  add_record w.buf payload;
  Fsio.append w.h (Buffer.contents w.buf)

let sync w = Fsio.sync w.h
let close w = Fsio.close_append w.h
