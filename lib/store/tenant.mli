(** Durable image of one tenant session: snapshot + write-ahead journal.

    Each namespace owns a directory under the daemon's data dir holding
    a [snapshot] file (atomic-replace, {!Fsio.write_file_atomic}) and a
    generation-numbered journal [wal-<g>.log] of every counted request
    served since that snapshot — reads included, because the trace
    digests fold read accesses.  {!open_} recovers by rebuilding the
    stores from the snapshot, restoring the saved digest and ledger
    words, then replaying the journal through {!Servsim.Handler.replay};
    the recovered session is bit-identical (stores, trace digests, cost
    ledger) to the uninterrupted one.

    A crash mid-append leaves a torn journal tail; recovery keeps the
    valid prefix and truncates the rest ({!Segment}).  A crash anywhere
    in the snapshot rotation is also safe: the snapshot's meta record
    names the journal generation that extends it, and stale journals
    are deleted on open.

    A tenant's dynamic FD session (protocol v5) is persisted as its
    update history: the snapshot embeds, after the store records, the
    successful [Begin_dynamic] and every update dispatched to the live
    session ({!Servsim.Handler.export_dyn}), and the journal carries the
    updates since — both replayed through the normal dispatcher on
    open, which deterministically rebuilds the engine's ORAM state and
    trace digests (no engine state is ever serialised).  Opening an
    image that records dynamic verbs in a process without the engine
    installed ({!Servsim.Handler.dynamic_available}) raises {!Corrupt}
    rather than silently forking the tenant's state from its journal. *)

type t

exception Corrupt of string
(** Recovery found damage that cannot be a torn append tail: a corrupt
    snapshot (snapshots are written atomically, so any damage there is
    real), an undecodable checksummed record, or a reconstruction
    request the handler rejects.  The tenant directory needs operator
    attention; opening it must not silently serve wrong state. *)

val open_ : data_dir:string -> snapshot_every:int -> string -> t * Servsim.Handler.state
(** [open_ ~data_dir ~snapshot_every ns] opens (creating on first use)
    the durable image of namespace [ns] and returns the journal handle
    plus the fully recovered session state.  [snapshot_every <= 0]
    disables automatic snapshots (journal grows until {!snapshot}).
    @raise Corrupt on non-recoverable damage (see {!Corrupt}). *)

val journal : t -> state:Servsim.Handler.state -> Servsim.Wire.request -> unit
(** Append one served request to the journal (call once per counted
    frame, in service order).  Every [snapshot_every] appends the
    journal is folded into a fresh snapshot automatically. *)

val snapshot : t -> Servsim.Handler.state -> unit
(** Write a fresh snapshot of [state] (atomic replace), retire the
    journal it supersedes and start the next generation's.  Called on
    tenant eviction and daemon shutdown so rehydration is snapshot-speed
    rather than full-journal replay. *)

val sync : t -> unit
(** Fsync the journal — an explicit durability point. *)

val close : t -> unit
(** Close the journal handle.  Does not snapshot or sync. *)

val wal_records : t -> int
(** Records appended to the live journal since its snapshot. *)

val generation : t -> int
(** Current snapshot/journal generation (0 before the first snapshot). *)

(** {2 On-disk layout} (exposed for tests and operator tooling) *)

val encode_ns : string -> string
(** Filesystem-safe directory name for a namespace: ["t-" ^ ns] when
    [ns] is non-empty and entirely [A-Za-z0-9._-], else ["x-" ^ hex].
    The two forms cannot collide. *)

val tenant_dir : data_dir:string -> string -> string
val wal_path : dir:string -> gen:int -> string
val snapshot_path : dir:string -> string
