(* The one module allowed to touch raw file syscalls (lint rule R9,
   durability-hygiene): every other file in lib/ must create or replace
   durable state through these helpers, so the fsync-then-rename
   discipline cannot be bypassed by accident.

   Durability contract:
   - [write_file_atomic] is all-or-nothing across a crash: tmp file,
     write, fsync, rename over the target, fsync the directory.  A
     reader never observes a half-written file.
   - [append] is a plain buffered-by-the-kernel write with no per-record
     fsync — a crash may tear the tail of an append-only log, which is
     exactly the failure {!Segment.parse} is built to tolerate.  Callers
     that need a hard durability point use {!sync}. *)

let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let rec mkdirs path =
  if String.length path > 0 && not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if not (String.equal parent path) then mkdirs parent;
    try Unix.mkdir path 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + retry_intr (fun () -> Unix.write fd b !off (n - !off))
  done

(* Some filesystems refuse fsync on a directory fd; degrading to "the
   rename is durable at the filesystem's discretion" is the best
   portable behavior. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file_atomic ~path data =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o600
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (Bytes.of_string data);
      retry_intr (fun () -> Unix.fsync fd));
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  match In_channel.open_bin path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> Some (In_channel.input_all ic))
  | exception Sys_error _ -> None

let remove_file path = try Unix.unlink path with Unix.Unix_error _ -> ()

let list_dir path =
  match Sys.readdir path with
  | entries -> List.sort String.compare (Array.to_list entries)
  | exception Sys_error _ -> []

type append_handle = { fd : Unix.file_descr }

let open_append ?truncate_at path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND; Unix.O_CLOEXEC ] 0o600 in
  (match truncate_at with
  | Some n -> retry_intr (fun () -> Unix.ftruncate fd n)
  | None -> ());
  { fd }

let append h s = write_all h.fd (Bytes.of_string s)
let sync h = retry_intr (fun () -> Unix.fsync h.fd)
let close_append h = try Unix.close h.fd with Unix.Unix_error _ -> ()
