type store = { mutable blocks : string array; mutable len : int }

let reservoir_size = 1024

(* A live dynamic FD session, behind closures so this module (which the
   discovery engine itself depends on for its block stores) needs no
   dependency on the engine.  The concrete implementation lives in
   [Dynserve], which installs itself through {!set_dyn_provider}. *)
type dyn = {
  dyn_dispatch : Wire.request -> Wire.response;
  dyn_release : unit -> unit;
}

type state = {
  stores : (string, store) Hashtbl.t;
  trace : Trace.t;
  cost : Cost.t;
  started : float;
  mutable bytes : int;
  lat : float array; (* ring of the most recent service latencies, seconds *)
  mutable lat_n : int; (* total latencies ever recorded *)
  mutable dyn : dyn option;
  mutable dyn_history : Wire.request list; (* newest first; see [export_dyn] *)
  mutable inserts : int;
  mutable deletes : int;
  mutable revalidates : int;
}

let create_state () =
  {
    stores = Hashtbl.create 32;
    trace = Trace.create ();
    cost = Cost.create ();
    started = Unix.gettimeofday ();
    bytes = 0;
    lat = Array.make reservoir_size 0.;
    lat_n = 0;
    dyn = None;
    dyn_history = [];
    inserts = 0;
    deletes = 0;
    revalidates = 0;
  }

(* {2 Dynamic-session provider}

   Process-global: there is one engine implementation, and whether it is
   linked in is a property of the executable, not of a session.  The
   provider receives the [Begin_dynamic] request and returns the live
   session plus the response to that request, or a client-fault
   message. *)

let dyn_provider : (Wire.request -> (dyn * Wire.response, string) result) option ref = ref None
let set_dyn_provider f = dyn_provider := Some f
let dynamic_available () = Option.is_some !dyn_provider

let dynamic_verb = function
  | Wire.Begin_dynamic _ | Wire.Insert_row _ | Wire.Delete_row _ | Wire.Revalidate -> true
  | _ -> false

let has_dyn st = Option.is_some st.dyn
let dyn_counters st = (st.inserts, st.deletes, st.revalidates)
let export_dyn st = List.rev st.dyn_history

let release_dyn st =
  match st.dyn with
  | None -> ()
  | Some d ->
      st.dyn <- None;
      d.dyn_release ()

let trace st = st.trace
let cost st = st.cost
let total_bytes st = st.bytes
let started st = st.started

(* Session-level frames ([Hello] before the session exists, and the
   version byte) are connection setup, not served requests: the client's
   [Remote.frames] counter skips them, so the server-side ledger must
   too, or the frames == ledger invariant breaks. *)
let counted = function Wire.Hello _ -> false | _ -> true

let account_request st ~bytes =
  Cost.round_trip st.cost;
  Cost.sent_to_server st.cost bytes

let account_response st ~bytes =
  Cost.sent_to_client st.cost bytes;
  Cost.set_server_bytes st.cost st.bytes

let record_latency st s =
  st.lat.(st.lat_n mod reservoir_size) <- s;
  st.lat_n <- st.lat_n + 1

(* Nearest-rank percentiles over the reservoir; (0, 0, 0) before any
   latency has been recorded. *)
let latency_percentiles st =
  let n = min st.lat_n reservoir_size in
  if n = 0 then (0., 0., 0.)
  else begin
    let a = Array.sub st.lat 0 n in
    Array.sort compare a;
    let pick q = a.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))) in
    (pick 0.50, pick 0.95, pick 0.99)
  end

let find st name =
  match Hashtbl.find_opt st.stores name with
  | Some s -> s
  | None -> raise (Wire.Protocol_error ("no such store: " ^ name))

let ensure s n =
  if n > Array.length s.blocks then begin
    let cap = ref (max 16 (Array.length s.blocks)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let blocks = Array.make !cap "" in
    Array.blit s.blocks 0 blocks 0 s.len;
    s.blocks <- blocks
  end;
  if n > s.len then s.len <- n

(* [Stats] answer for serving modes without daemon-side metrics (the
   legacy one-client fork server): the session ledger is exact and the
   percentiles come from the session's own latency reservoir — real
   numbers as long as the serving loop calls {!record_latency}. *)
let basic_stats st =
  let c = Cost.snapshot st.cost in
  let p50, p95, p99 = latency_percentiles st in
  let us s = min 0xFFFFFFFF (int_of_float (s *. 1e6)) in
  Wire.Stats_reply
    {
      uptime_us = Int64.of_float ((Unix.gettimeofday () -. st.started) *. 1e6);
      sessions = 1;
      frames = c.Cost.round_trips;
      bytes_in = c.Cost.bytes_to_server;
      bytes_out = c.Cost.bytes_to_client;
      p50_us = us p50;
      p95_us = us p95;
      p99_us = us p99;
      (* No event loop in this serving mode; the daemon fills these. *)
      loop_reads = 0;
      loop_writes = 0;
      loop_wakeups = 0;
      loop_rounds = 0;
      inserts = st.inserts;
      deletes = st.deletes;
      revalidates = st.revalidates;
      dyn_sessions = (if Option.is_some st.dyn then 1 else 0);
    }

let handle st = function
  | Wire.Create_store name ->
      if Hashtbl.mem st.stores name then Wire.Error ("store exists: " ^ name)
      else begin
        Hashtbl.replace st.stores name { blocks = Array.make 16 ""; len = 0 };
        Wire.Ok
      end
  | Wire.Drop_store name ->
      (match Hashtbl.find_opt st.stores name with
      | None -> ()
      | Some s ->
          for i = 0 to s.len - 1 do
            st.bytes <- st.bytes - String.length s.blocks.(i)
          done;
          Hashtbl.remove st.stores name);
      Wire.Ok
  | Wire.Ensure (name, n) ->
      ensure (find st name) n;
      Wire.Ok
  | Wire.Get (name, i) ->
      let s = find st name in
      if i < 0 || i >= s.len then Wire.Error "index out of bounds"
      else begin
        let c = s.blocks.(i) in
        Trace.record st.trace { Trace.store = name; op = Trace.Read; addr = i; len = String.length c };
        Wire.Value c
      end
  | Wire.Put (name, i, c) ->
      let s = find st name in
      if i < 0 || i >= s.len then Wire.Error "index out of bounds"
      else begin
        st.bytes <- st.bytes - String.length s.blocks.(i) + String.length c;
        s.blocks.(i) <- c;
        Trace.record st.trace { Trace.store = name; op = Trace.Write; addr = i; len = String.length c };
        Wire.Ok
      end
  | Wire.Multi_get (name, idxs) ->
      let s = find st name in
      if List.exists (fun i -> i < 0 || i >= s.len) idxs then Wire.Error "index out of bounds"
      else
        Wire.Values
          (List.map
             (fun i ->
               let c = s.blocks.(i) in
               Trace.record st.trace
                 { Trace.store = name; op = Trace.Read; addr = i; len = String.length c };
               c)
             idxs)
  | Wire.Multi_put (name, items) ->
      let s = find st name in
      (* Validate every index before mutating anything: a batch either
         lands whole or not at all. *)
      if List.exists (fun (i, _) -> i < 0 || i >= s.len) items then
        Wire.Error "index out of bounds"
      else begin
        List.iter
          (fun (i, c) ->
            st.bytes <- st.bytes - String.length s.blocks.(i) + String.length c;
            s.blocks.(i) <- c;
            Trace.record st.trace
              { Trace.store = name; op = Trace.Write; addr = i; len = String.length c })
          items;
        Wire.Ok
      end
  | Wire.Scatter_put groups ->
      (* Resolve every store and validate every index before mutating
         anything: the cross-store batch lands whole or not at all. *)
      let resolved = List.map (fun (name, items) -> (name, find st name, items)) groups in
      if
        List.exists
          (fun (_, s, items) -> List.exists (fun (i, _) -> i < 0 || i >= s.len) items)
          resolved
      then Wire.Error "index out of bounds"
      else begin
        List.iter
          (fun (name, s, items) ->
            List.iter
              (fun (i, c) ->
                st.bytes <- st.bytes - String.length s.blocks.(i) + String.length c;
                s.blocks.(i) <- c;
                Trace.record st.trace
                  { Trace.store = name; op = Trace.Write; addr = i; len = String.length c })
              items)
          resolved;
        Wire.Ok
      end
  | Wire.Begin_dynamic _ as req -> (
      match st.dyn with
      | Some _ -> Wire.Error "dynamic session already active"
      | None -> (
          match !dyn_provider with
          | None -> Wire.Error "dynamic sessions unavailable: no engine linked in"
          | Some create -> (
              match create req with
              | Result.Ok (d, resp) ->
                  (* Recorded only on success: the history must replay to
                     exactly this state, and a failed begin leaves none. *)
                  st.dyn <- Some d;
                  st.dyn_history <- req :: st.dyn_history;
                  resp
              | Result.Error msg -> Wire.Error msg)))
  | (Wire.Insert_row _ | Wire.Delete_row _ | Wire.Revalidate) as req -> (
      match st.dyn with
      | None -> Wire.Error "no dynamic session: send Begin_dynamic first"
      | Some d ->
          (* Recorded and counted even when the engine rejects the op
             (arity mismatch, capacity): rejection is deterministic and
             touches no engine state, so replaying it is harmless — and
             necessary, because the serving path journaled the frame. *)
          st.dyn_history <- req :: st.dyn_history;
          (match req with
          | Wire.Insert_row _ -> st.inserts <- st.inserts + 1
          | Wire.Delete_row _ -> st.deletes <- st.deletes + 1
          | _ -> st.revalidates <- st.revalidates + 1);
          d.dyn_dispatch req)
  | Wire.Digest ->
      Wire.Digests
        {
          full = Trace.full_digest st.trace;
          shape = Trace.shape_digest st.trace;
          count = Trace.count st.trace;
        }
  | Wire.Total_bytes -> Wire.Bytes_total st.bytes
  | Wire.Hello _ -> Wire.Ok
  | Wire.Ping -> Wire.Pong
  | Wire.Stats -> basic_stats st
  | Wire.Bye -> Wire.Ok

(* Re-dispatch one journaled request with exactly the accounting the
   daemon's serving path performs.  The codec is canonical, so
   [Wire.request_size]/[response_size] reproduce the on-the-wire byte
   counts, and dispatch is deterministic (errors included) — replaying a
   journal therefore rebuilds trace digests and cost ledgers
   bit-identically to the original run. *)
let replay st req =
  let c = counted req in
  if c then account_request st ~bytes:(Wire.request_size req);
  let resp = try handle st req with Wire.Protocol_error msg -> Wire.Error msg in
  if c then account_response st ~bytes:(Wire.response_size resp)

let export_stores st =
  Hashtbl.fold (fun name s acc -> (name, Array.sub s.blocks 0 s.len) :: acc) st.stores []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
