(** Wire protocol (v3) between the client and a remote server process.

    Binary, synchronous request/response over any pair of file
    descriptors (Unix socketpair, Unix-domain socket, TCP socket).  All
    integers are little-endian fixed width; strings are length-prefixed.
    The protocol carries only what the honest-but-curious server
    legitimately sees: opaque ciphertext blocks and store bookkeeping.

    v2 added batched block operations ([Multi_get]/[Multi_put]/[Values])
    plus a one-byte version handshake and hard caps on every length
    prefix.  v3 adds multi-tenant session establishment ([Hello] with a
    namespace), liveness ([Ping]/[Pong]) and service introspection
    ([Stats]/[Stats_reply]), and re-expresses the codec over pluggable
    {!sink}/{!source} records so the same code drives blocking channels
    and the daemon's incremental, non-blocking frame reassembly.  v4
    added event-loop counters to [Stats_reply].  v5 adds the dynamic
    FD-maintenance verbs of the paper's §V
    ([Begin_dynamic]/[Insert_row]/[Delete_row]/[Revalidate] answered by
    [Row_id]/[Fds_reply]) plus per-verb update counters in
    [Stats_reply].  v6 adds [Scatter_put], the cross-store batched
    write the recursive ORAM's deferred path-suffix evictions ride in —
    one frame per logical access instead of one per tree.

    The dynamic verbs are the one place the protocol carries plaintext
    row material: they model the trusted client (or enclave proxy)
    streaming updates to the discovery engine it co-locates with, and
    the adversary's view is {e not} this channel but the engine's own
    block-access trace, whose digests every [Fds_reply] reports. *)

type request =
  | Hello of string
      (** Establish the session: bind this connection to an isolated
          store namespace.  Sent once, immediately after the version
          handshake; part of connection setup, so neither side counts it
          as a request frame. *)
  | Create_store of string
  | Drop_store of string
  | Ensure of string * int
  | Get of string * int
  | Put of string * int * string
  | Multi_get of string * int list
      (** Read a batch of slots of one store, in order, in one frame. *)
  | Multi_put of string * (int * string) list
      (** Write a batch of (slot, ciphertext) pairs in one frame; applied
          (and traced server-side) in list order, all-or-nothing with
          respect to bounds checking. *)
  | Scatter_put of (string * (int * string) list) list
      (** Write batches spanning several stores in one frame; groups are
          applied (and traced) in list order, items in order within each
          group.  All-or-nothing: every store must exist and every index
          must be in bounds before anything is mutated. *)
  | Digest  (** ask the server for its own trace digests *)
  | Total_bytes
  | Ping  (** liveness probe; answered with [Pong] *)
  | Stats  (** per-session service statistics; answered with [Stats_reply] *)
  | Begin_dynamic of { seed : int64; capacity : int; max_lhs : int; cols : int; rows : string list list }
      (** Start this namespace's dynamic FD session (§V): run Ex-ORAM
          discovery over the [rows] (each a list of exactly [cols]
          {!Relation.Codec}-encoded cells) and keep every lattice
          structure alive for incremental maintenance.  [seed] drives
          the engine's client randomness so runs are reproducible;
          [capacity] and [max_lhs] are engine parameters (0 = engine
          default).  Answered with [Fds_reply] listing the discovered
          FDs (all initially valid); at most one dynamic session per
          namespace.  Both codec directions reject [cols] outside
          [1..max_row_cells] and any row whose cell count differs from
          [cols]. *)
  | Insert_row of string list
      (** Insert one record (encoded cells, arity checked server-side
          against the session's table); answered with [Row_id]. *)
  | Delete_row of int
      (** Delete a record by ID.  Answered with [Ok] whether or not the
          ID is live — deletion of an absent record performs the same
          oblivious accesses as a real one (§V), so the reply carries no
          membership signal. *)
  | Revalidate
      (** Re-check every initially discovered FD against the current
          data; answered with [Fds_reply]. *)
  | Bye

type stats = {
  uptime_us : int64;  (** server uptime, microseconds *)
  sessions : int;  (** currently connected clients, server-wide *)
  frames : int;
      (** request frames served in this session (its round-trip ledger);
          [Hello] and the version byte are connection setup and excluded *)
  bytes_in : int;  (** request bytes received in this session *)
  bytes_out : int;
      (** response bytes sent in this session, excluding the in-flight
          [Stats_reply] itself *)
  p50_us : int;  (** service-latency percentiles for this session's *)
  p95_us : int;  (** namespace, microseconds; 0 when the serving mode *)
  p99_us : int;  (** does not sample latencies (legacy fork server) *)
  loop_reads : int;
      (** [read(2)] calls issued by the event loop serving this
          session's worker, daemon-lifetime; with {!loop_writes},
          divides into frames served to give syscalls-per-op.  0 when
          the serving mode has no event loop (legacy fork server) *)
  loop_writes : int;  (** [write(2)] calls issued by the same loop *)
  loop_wakeups : int;  (** readiness wakeups with at least one event *)
  loop_rounds : int;  (** event-loop iterations (wait calls) *)
  inserts : int;  (** [Insert_row] frames served to this namespace *)
  deletes : int;  (** [Delete_row] frames served to this namespace *)
  revalidates : int;  (** [Revalidate] frames served to this namespace *)
  dyn_sessions : int;
      (** dynamic sessions currently resident (for the daemon: in this
          session's worker shard; 1 or 0 for single-session servers) *)
}

type fd_status = {
  fd_lhs : int64;  (** LHS attribute set as its bitmask ({!Relation.Attrset.to_int}) *)
  fd_rhs : int;  (** RHS column index *)
  fd_valid : bool;  (** does the FD still hold on the current data? *)
}

type dyn_fds = {
  fds : fd_status list;  (** canonical (sorted) order, as discovery emits them *)
  dyn_full : int64;  (** full trace digest of the dynamic engine's server view *)
  dyn_shape : int64;  (** shape digest of the same view *)
  dyn_events : int;  (** accesses recorded in that trace *)
}

type response =
  | Ok
  | Value of string
  | Values of string list  (** answers [Multi_get], same order as the indices *)
  | Digests of { full : int64; shape : int64; count : int }
  | Bytes_total of int
  | Pong
  | Stats_reply of stats
  | Row_id of int  (** answers [Insert_row]: the record's assigned ID *)
  | Fds_reply of dyn_fds  (** answers [Begin_dynamic] and [Revalidate] *)
  | Error of string

val protocol_version : int
(** Current protocol version (5).  Exchanged once per connection:
    the client sends its version byte, the server always answers with its
    own, and each side rejects a mismatch — a v2 peer fails the handshake
    cleanly instead of misparsing the stream mid-session. *)

val max_string_len : int
(** Upper bound any string length prefix may claim (bytes). *)

val max_list_len : int
(** Upper bound any batch count prefix may claim (entries). *)

val max_namespace_len : int
(** Upper bound on a [Hello] namespace length (bytes). *)

val max_row_cells : int
(** Upper bound on the cell count of one dynamic row — both the claimed
    count of an [Insert_row] and the declared arity of a
    [Begin_dynamic].  Comfortably above {!Relation.Attrset.max_attrs}
    (62 columns), far below {!max_list_len}: a row prefix claiming more
    is rejected as oversized before any cell is read. *)

(** {2 Sinks and sources}

    The codec is written once against these records.  [string_source]
    raises {!Incomplete} (not [Protocol_error]) when it runs off the end
    of the buffer: the frame is merely not fully received yet, and the
    caller should retry once more bytes arrive. *)

type sink = { put_char : char -> unit; put_str : string -> unit }
type source = { get_char : unit -> char; get_exact : int -> string }

val channel_sink : out_channel -> sink
val buffer_sink : Buffer.t -> sink

val channel_source : in_channel -> source
(** Blocking source; raises [End_of_file] on a closed peer. *)

val string_source : string -> int ref -> source
(** [string_source s pos] reads from [s] starting at [!pos], advancing
    [pos] as it consumes.  @raise Incomplete when [s] is exhausted. *)

val bytes_source : bytes -> int ref -> limit:int -> source
(** [bytes_source b pos ~limit] reads from [b.[!pos .. limit-1]],
    advancing [pos] as it consumes — a zero-copy window over a
    reassembly buffer, so an incremental decoder can parse in place
    instead of snapshotting the buffer to a string per frame.
    @raise Incomplete on any read past [limit]. *)

val write_hello : out_channel -> unit
(** Send the one-byte version preamble. *)

val read_hello : in_channel -> int
(** Read the peer's version byte. *)

val write_request : out_channel -> request -> unit
val read_request : in_channel -> request
val write_response : out_channel -> response -> unit
val read_response : in_channel -> response

val write_request_sink : sink -> request -> unit
(** Like {!write_request} but into any sink, and without the flush. *)

val read_request_src : source -> request

val write_response_sink : sink -> response -> unit
val read_response_src : source -> response

val request_size : request -> int
(** Exact encoded size of the frame in bytes (the codec is canonical). *)

val response_size : response -> int

exception Protocol_error of string
(** The stream is malformed beyond recovery (bad tag, oversized prefix,
    out-of-range integer). *)

exception Incomplete
(** Raised only by {!string_source}: the frame has not fully arrived. *)
