(* A socket endpoint that must survive [exec] is identified to the
   re-executed child by its raw descriptor number: on POSIX, OCaml's
   abstract [Unix.file_descr] *is* that int.  These two casts are the
   only sanctioned descriptor<->int conversions in the tree; keeping
   them as one audited pair is what lets rule R2 (no-unsafe-casts) stay
   on everywhere else. *)
let fd_of_int : int -> Unix.file_descr = fun n -> Obj.magic n [@@lint.allow "no-unsafe-casts"]
let int_of_fd : Unix.file_descr -> int = fun fd -> Obj.magic fd [@@lint.allow "no-unsafe-casts"]

let serve ic oc =
  (* Version handshake first: always answer with our own version byte so a
     mismatched client can report the disagreement, then hang up on
     mismatch rather than misparse its stream as requests. *)
  match Wire.read_hello ic with
  | exception End_of_file -> ()
  | client_version ->
      Wire.write_hello oc;
      if client_version = Wire.protocol_version then begin
        let st = Handler.create_state () in
        let continue_ = ref true in
        while !continue_ do
          match Wire.read_request ic with
          | exception End_of_file -> continue_ := false
          | exception Wire.Protocol_error msg ->
              (* The stream is beyond resync (bad tag, oversized prefix):
                 report once and hang up. *)
              ((try Wire.write_response oc (Wire.Error ("unrecoverable: " ^ msg)) with _ -> ())
              [@lint.allow "exception-hygiene"] (* best-effort: peer may be gone *));
              continue_ := false
          | req ->
              let counted = Handler.counted req in
              if counted then Handler.account_request st ~bytes:(Wire.request_size req);
              let t0 = Unix.gettimeofday () in
              let resp =
                match req with
                | Wire.Bye ->
                    continue_ := false;
                    Wire.Ok
                | req -> ( try Handler.handle st req with Wire.Protocol_error msg -> Wire.Error msg)
              in
              Wire.write_response oc resp;
              if counted then begin
                Handler.account_response st ~bytes:(Wire.response_size resp);
                (* Sampled after the flush so [Stats] answers with the
                   same request→response-on-the-wire measure the daemon
                   reports; the [Stats] frame itself is counted in the
                   ledger but (like the daemon) observes only the
                   latencies of the frames before it. *)
                Handler.record_latency st (Unix.gettimeofday () -. t0)
              end
        done
      end

let serve_fd fd =
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  serve ic oc

let serve_fd_env = "SFDD_SERVE_FD"

let maybe_serve_child () =
  match Sys.getenv_opt serve_fd_env with
  | None -> ()
  | Some s ->
      (* We are the re-executed server child: the socket descriptor was
         inherited across exec under this number. *)
      let fd = fd_of_int (int_of_string s) in
      ((try serve_fd fd with _ -> ())
      [@lint.allow "exception-hygiene"] (* the child must reach exit 0 *));
      Stdlib.exit 0

let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let fork_server () =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* The parent's endpoint must never leak into re-exec'd children (ours
     below, or any other exec this process performs later). *)
  Unix.set_close_on_exec parent_fd;
  match retry_intr Unix.fork with
  | 0 ->
      Unix.close parent_fd;
      ((try serve_fd child_fd with _ -> ())
      [@lint.allow "exception-hygiene"] (* the child must reach exit 0 *));
      Stdlib.exit 0
  | pid ->
      Unix.close child_fd;
      (parent_fd, pid)
  | exception Failure _ ->
      (* OCaml 5 forbids fork once domains have been spawned; re-exec this
         program instead, with the child endpoint's descriptor number in
         the environment (the process re-enters through
         {!maybe_serve_child}, which the hosting executable must call at
         startup).  [child_fd] is the one descriptor that must survive
         the exec. *)
      Unix.clear_close_on_exec child_fd;
      let env =
        Array.append (Unix.environment ())
          [| Printf.sprintf "%s=%d" serve_fd_env (int_of_fd child_fd) |]
      in
      let pid =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          env Unix.stdin Unix.stdout Unix.stderr
      in
      Unix.close child_fd;
      (parent_fd, pid)
