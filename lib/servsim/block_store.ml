type storage =
  | Local_mem of { mutable blocks : string array }
  | Remote_conn of { conn : Remote.t; mutable lengths : int array }
      (* [lengths] shadows the remote block sizes so the byte ledger can
         be maintained without extra round trips. *)

type t = {
  name : string;
  tname : Trace.name; (* interned once; the recorder folds it per event *)
  trace : Trace.t;
  cost : Cost.t;
  on_resize : int -> unit; (* notify owner of byte-count delta *)
  storage : storage;
  mutable len : int;
  mutable bytes : int;
}

let name t = t.name
let length t = t.len
let size_bytes t = t.bytes

let create ~name ~trace ~on_resize ?remote cost =
  let storage =
    match remote with
    | Some conn -> Remote_conn { conn; lengths = Array.make 16 0 }
    | None -> Local_mem { blocks = Array.make 16 "" }
  in
  { name; tname = Trace.name name; trace; cost; on_resize; storage; len = 0; bytes = 0 }

let grow_pow2 cur n =
  let cap = ref (max 16 cur) in
  while !cap < n do
    cap := !cap * 2
  done;
  !cap

let ensure t n =
  (match t.storage with
  | Local_mem s ->
      if n > Array.length s.blocks then begin
        let blocks = Array.make (grow_pow2 (Array.length s.blocks) n) "" in
        Array.blit s.blocks 0 blocks 0 t.len;
        s.blocks <- blocks
      end
  | Remote_conn r ->
      if n > Array.length r.lengths then begin
        let lengths = Array.make (grow_pow2 (Array.length r.lengths) n) 0 in
        Array.blit r.lengths 0 lengths 0 t.len;
        r.lengths <- lengths
      end;
      if n > t.len then ignore (Remote.call r.conn (Wire.Ensure (t.name, n))));
  if n > t.len then begin
    t.len <- n;
    (* Growing is one wire frame in remote mode; charge the same in the
       local sim so both ledgers agree. *)
    if Trace.enabled t.trace then Cost.round_trip t.cost
  end

let check_bounds t i fname =
  if i < 0 || i >= t.len then
    invalid_arg
      (Printf.sprintf "Block_store.%s: index %d out of bounds (store %s, len %d)" fname i
         t.name t.len)

(* Store size is state, not cost: the byte ledger must stay accurate even
   while the trace (and with it cost accounting) is suspended, or
   [size_bytes]/[Server.total_bytes] go stale across multi-domain
   sections.  The [delta <> 0] guard keeps the parallel sort workers —
   whose exchanges rewrite fixed-width cells, so delta is always 0 — from
   contending on the owner's shared counter. *)
let resize t delta =
  if delta <> 0 then begin
    t.bytes <- t.bytes + delta;
    t.on_resize delta
  end

(* When the trace is disabled (multi-domain sections), cost accounting is
   suspended too: the shared counters would otherwise bounce between the
   domains' caches and serialise the workers. *)
let read t i =
  check_bounds t i "read";
  let c =
    match t.storage with
    | Local_mem s -> s.blocks.(i)
    | Remote_conn r -> (
        match Remote.call r.conn (Wire.Get (t.name, i)) with
        | Wire.Value v -> v
        | _ -> raise (Wire.Protocol_error "unexpected response to Get"))
  in
  if Trace.enabled t.trace then begin
    Trace.record_name t.trace t.tname Trace.Read ~addr:i ~len:(String.length c);
    Cost.sent_to_client t.cost (String.length c);
    Cost.round_trip t.cost
  end;
  c

let write t i c =
  check_bounds t i "write";
  let old_len =
    match t.storage with
    | Local_mem s ->
        let old = String.length s.blocks.(i) in
        s.blocks.(i) <- c;
        old
    | Remote_conn r ->
        ignore (Remote.call r.conn (Wire.Put (t.name, i, c)));
        let old = r.lengths.(i) in
        r.lengths.(i) <- String.length c;
        old
  in
  resize t (String.length c - old_len);
  if Trace.enabled t.trace then begin
    Trace.record_name t.trace t.tname Trace.Write ~addr:i ~len:(String.length c);
    Cost.sent_to_server t.cost (String.length c);
    Cost.round_trip t.cost
  end

(* Batched operations: the trace still records one event per block (same
   order as the equivalent loop of singles, so obliviousness digests are
   unchanged), but the whole batch is one wire frame / one round trip. *)

let read_many t idxs =
  List.iter (fun i -> check_bounds t i "read_many") idxs;
  if idxs = [] then []
  else begin
    let cs =
      match t.storage with
      | Local_mem s -> List.map (fun i -> s.blocks.(i)) idxs
      | Remote_conn r -> Remote.multi_get r.conn ~store:t.name idxs
    in
    if Trace.enabled t.trace then begin
      List.iter2
        (fun i c ->
          Trace.record_name t.trace t.tname Trace.Read ~addr:i ~len:(String.length c);
          Cost.sent_to_client t.cost (String.length c))
        idxs cs;
      Cost.round_trip t.cost
    end;
    cs
  end

(* Cross-store batched write: every group's items land in one wire frame
   ([Scatter_put] in remote mode) and one round trip, traced one event
   per block in group order — the recursive ORAM's deferred path-suffix
   evictions.  All stores must live on the same server (they share its
   trace and cost ledger); the batch is validated whole before anything
   is mutated, mirroring the server-side handler. *)
let write_scatter groups =
  let groups = List.filter (fun (_, items) -> items <> []) groups in
  match groups with
  | [] -> ()
  | (t0, _) :: _ ->
      List.iter
        (fun (t, items) -> List.iter (fun (i, _) -> check_bounds t i "write_scatter") items)
        groups;
      let apply_group (t, items) =
        let old_lens =
          match t.storage with
          | Local_mem s ->
              List.map
                (fun (i, c) ->
                  let old = String.length s.blocks.(i) in
                  s.blocks.(i) <- c;
                  old)
                items
          | Remote_conn r ->
              List.map
                (fun (i, c) ->
                  let old = r.lengths.(i) in
                  r.lengths.(i) <- String.length c;
                  old)
                items
        in
        List.iter2 (fun (_, c) old -> resize t (String.length c - old)) items old_lens
      in
      (match t0.storage with
      | Local_mem _ -> ()
      | Remote_conn r ->
          (* One frame for the whole cross-store batch; the mirrored
             lengths are updated by [apply_group] below. *)
          Remote.scatter_put_async r.conn
            (List.map (fun (t, items) -> (t.name, items)) groups));
      List.iter apply_group groups;
      if Trace.enabled t0.trace then begin
        List.iter
          (fun (t, items) ->
            List.iter
              (fun (i, c) ->
                Trace.record_name t.trace t.tname Trace.Write ~addr:i ~len:(String.length c);
                Cost.sent_to_server t.cost (String.length c))
              items)
          groups;
        Cost.round_trip t0.cost
      end

let write_many t items =
  List.iter (fun (i, _) -> check_bounds t i "write_many") items;
  if items <> [] then begin
    let old_lens =
      match t.storage with
      | Local_mem s ->
          List.map
            (fun (i, c) ->
              let old = String.length s.blocks.(i) in
              s.blocks.(i) <- c;
              old)
            items
      | Remote_conn r ->
          (* Fire-and-forget on a pipelined connection (bounded by its
             depth; identical to the synchronous put at depth 1).  The
             next read/call on the connection collects the ordered
             acknowledgements, so errors are never silently dropped and
             the frame ledger is the same either way. *)
          Remote.multi_put_async r.conn ~store:t.name items;
          List.map
            (fun (i, c) ->
              let old = r.lengths.(i) in
              r.lengths.(i) <- String.length c;
              old)
            items
    in
    List.iter2 (fun (_, c) old -> resize t (String.length c - old)) items old_lens;
    if Trace.enabled t.trace then begin
      List.iter
        (fun (i, c) ->
          Trace.record_name t.trace t.tname Trace.Write ~addr:i ~len:(String.length c);
          Cost.sent_to_server t.cost (String.length c))
        items;
      Cost.round_trip t.cost
    end
  end
