type request =
  | Hello of string
  | Create_store of string
  | Drop_store of string
  | Ensure of string * int
  | Get of string * int
  | Put of string * int * string
  | Multi_get of string * int list
  | Multi_put of string * (int * string) list
  | Scatter_put of (string * (int * string) list) list
      (* cross-store batched write: all groups land in one frame (the
         recursive ORAM's deferred path-suffix evictions) *)
  | Digest
  | Total_bytes
  | Ping
  | Stats
  | Begin_dynamic of { seed : int64; capacity : int; max_lhs : int; cols : int; rows : string list list }
  | Insert_row of string list
  | Delete_row of int
  | Revalidate
  | Bye

type stats = {
  uptime_us : int64;
  sessions : int;
  frames : int;
  bytes_in : int;
  bytes_out : int;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  loop_reads : int;
  loop_writes : int;
  loop_wakeups : int;
  loop_rounds : int;
  inserts : int;
  deletes : int;
  revalidates : int;
  dyn_sessions : int;
}

type fd_status = { fd_lhs : int64; fd_rhs : int; fd_valid : bool }

type dyn_fds = {
  fds : fd_status list;
  dyn_full : int64;
  dyn_shape : int64;
  dyn_events : int;
}

type response =
  | Ok
  | Value of string
  | Values of string list
  | Digests of { full : int64; shape : int64; count : int }
  | Bytes_total of int
  | Pong
  | Stats_reply of stats
  | Row_id of int
  | Fds_reply of dyn_fds
  | Error of string

exception Protocol_error of string
exception Incomplete

let protocol_version = 6

(* Hard caps on what a length prefix may claim.  A corrupt or truncated
   stream must fail with [Protocol_error], not drive the reader into a
   multi-gigabyte allocation. *)
let max_string_len = 1 lsl 26 (* 64 MiB per string *)
let max_list_len = 1 lsl 24 (* 16M entries per batch *)
let max_namespace_len = 64
let max_row_cells = 64

(* {2 Sinks and sources}

   The codec is written once against these two records; channels, byte
   buffers and raw strings are all just instances.  The daemon's
   non-blocking connection loop parses requests from a reassembly buffer
   with [string_source] (which raises {!Incomplete} when the frame has
   not fully arrived yet) and serialises responses into a [Buffer.t] with
   [buffer_sink] — no blocking [really_input_string] on the server side. *)

type sink = { put_char : char -> unit; put_str : string -> unit }
type source = { get_char : unit -> char; get_exact : int -> string }

let channel_sink oc = { put_char = output_char oc; put_str = output_string oc }
let buffer_sink b = { put_char = Buffer.add_char b; put_str = Buffer.add_string b }

let counting_sink n =
  { put_char = (fun _ -> incr n); put_str = (fun s -> n := !n + String.length s) }

let channel_source ic =
  { get_char = (fun () -> input_char ic); get_exact = (fun n -> really_input_string ic n) }

let string_source s pos =
  {
    get_char =
      (fun () ->
        if !pos >= String.length s then raise Incomplete
        else begin
          let c = s.[!pos] in
          incr pos;
          c
        end);
    get_exact =
      (fun n ->
        if !pos + n > String.length s then raise Incomplete
        else begin
          let r = String.sub s !pos n in
          pos := !pos + n;
          r
        end);
  }

let bytes_source b pos ~limit =
  let limit = min limit (Bytes.length b) in
  {
    get_char =
      (fun () ->
        if !pos >= limit then raise Incomplete
        else begin
          let c = Bytes.get b !pos in
          incr pos;
          c
        end);
    get_exact =
      (fun n ->
        if !pos + n > limit then raise Incomplete
        else begin
          let r = Bytes.sub_string b !pos n in
          pos := !pos + n;
          r
        end);
  }

let put_u32 k v =
  if v < 0 || v > 0xFFFFFFFF then
    raise (Protocol_error (Printf.sprintf "put_u32: %d out of 32-bit range" v));
  for i = 0 to 3 do
    k.put_char (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let get_u32 src =
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (Char.code (src.get_char ()) lsl (i * 8))
  done;
  !v land 0xFFFFFFFF

let put_u64 k v =
  for i = 0 to 7 do
    k.put_char (Char.chr (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff))
  done

let get_u64 src =
  let v = ref 0L in
  for i = 0 to 7 do
    let b = Int64.of_int (Char.code (src.get_char ())) in
    v := Int64.logor !v (Int64.shift_left b (i * 8))
  done;
  !v

let put_string k s =
  let n = String.length s in
  if n > max_string_len then
    raise (Protocol_error (Printf.sprintf "put_string: %d bytes exceeds frame cap %d" n max_string_len));
  put_u32 k n;
  k.put_str s

let get_string src =
  let n = get_u32 src in
  if n > max_string_len then
    raise (Protocol_error (Printf.sprintf "get_string: claimed length %d exceeds frame cap %d" n max_string_len));
  src.get_exact n

let put_count k n =
  if n > max_list_len then
    raise (Protocol_error (Printf.sprintf "put_count: %d entries exceeds batch cap %d" n max_list_len));
  put_u32 k n

let get_count src =
  let n = get_u32 src in
  if n > max_list_len then
    raise (Protocol_error (Printf.sprintf "get_count: claimed %d entries exceeds batch cap %d" n max_list_len));
  n

let get_list src get_item =
  let n = get_count src in
  List.init n (fun _ -> get_item src)

let put_namespace k ns =
  if String.length ns > max_namespace_len then
    raise
      (Protocol_error
         (Printf.sprintf "put_namespace: %d bytes exceeds namespace cap %d" (String.length ns)
            max_namespace_len));
  put_string k ns

let get_namespace src =
  let ns = get_string src in
  if String.length ns > max_namespace_len then
    raise
      (Protocol_error
         (Printf.sprintf "get_namespace: %d bytes exceeds namespace cap %d" (String.length ns)
            max_namespace_len));
  ns

(* A row travels as a count-prefixed list of encoded cells; the count is
   capped far below [max_list_len] because a row's arity is bounded by
   the relation model (62 attributes), not by batch sizes. *)
let put_row k cells =
  let n = List.length cells in
  if n > max_row_cells then
    raise (Protocol_error (Printf.sprintf "put_row: %d cells exceeds row cap %d" n max_row_cells));
  put_u32 k n;
  List.iter (put_string k) cells

let get_row src =
  let n = get_u32 src in
  if n > max_row_cells then
    raise
      (Protocol_error (Printf.sprintf "get_row: claimed %d cells exceeds row cap %d" n max_row_cells));
  List.init n (fun _ -> get_string src)

let check_row_arity ~what ~cols row =
  if List.length row <> cols then
    raise
      (Protocol_error
         (Printf.sprintf "%s: row has %d cells, table arity is %d" what (List.length row) cols))

let write_hello oc =
  output_char oc (Char.chr protocol_version);
  flush oc

let read_hello ic = Char.code (input_char ic)

let write_request_sink k req =
  match req with
  | Create_store s ->
      k.put_char '\001';
      put_string k s
  | Drop_store s ->
      k.put_char '\002';
      put_string k s
  | Ensure (s, n) ->
      k.put_char '\003';
      put_string k s;
      put_u32 k n
  | Get (s, i) ->
      k.put_char '\004';
      put_string k s;
      put_u32 k i
  | Put (s, i, v) ->
      k.put_char '\005';
      put_string k s;
      put_u32 k i;
      put_string k v
  | Multi_get (s, idxs) ->
      k.put_char '\009';
      put_string k s;
      put_count k (List.length idxs);
      List.iter (put_u32 k) idxs
  | Multi_put (s, items) ->
      k.put_char '\010';
      put_string k s;
      put_count k (List.length items);
      List.iter
        (fun (i, v) ->
          put_u32 k i;
          put_string k v)
        items
  | Scatter_put groups ->
      k.put_char '\018';
      put_count k (List.length groups);
      List.iter
        (fun (s, items) ->
          put_string k s;
          put_count k (List.length items);
          List.iter
            (fun (i, v) ->
              put_u32 k i;
              put_string k v)
            items)
        groups
  | Hello ns ->
      k.put_char '\011';
      put_namespace k ns
  | Ping -> k.put_char '\012'
  | Stats -> k.put_char '\013'
  | Begin_dynamic { seed; capacity; max_lhs; cols; rows } ->
      if cols < 1 || cols > max_row_cells then
        raise
          (Protocol_error
             (Printf.sprintf "Begin_dynamic: arity %d outside 1..%d" cols max_row_cells));
      List.iter (check_row_arity ~what:"Begin_dynamic" ~cols) rows;
      k.put_char '\014';
      put_u64 k seed;
      put_u32 k capacity;
      put_u32 k max_lhs;
      put_u32 k cols;
      put_count k (List.length rows);
      List.iter (put_row k) rows
  | Insert_row cells ->
      k.put_char '\015';
      put_row k cells
  | Delete_row id ->
      k.put_char '\016';
      put_u32 k id
  | Revalidate -> k.put_char '\017'
  | Digest -> k.put_char '\006'
  | Total_bytes -> k.put_char '\007'
  | Bye -> k.put_char '\008'

let read_request_src src =
  match src.get_char () with
  | '\001' -> Create_store (get_string src)
  | '\002' -> Drop_store (get_string src)
  | '\003' ->
      let s = get_string src in
      Ensure (s, get_u32 src)
  | '\004' ->
      let s = get_string src in
      Get (s, get_u32 src)
  | '\005' ->
      let s = get_string src in
      let i = get_u32 src in
      Put (s, i, get_string src)
  | '\009' ->
      let s = get_string src in
      Multi_get (s, get_list src get_u32)
  | '\010' ->
      let s = get_string src in
      Multi_put
        ( s,
          get_list src (fun src ->
              let i = get_u32 src in
              (i, get_string src)) )
  | '\018' ->
      Scatter_put
        (get_list src (fun src ->
             let s = get_string src in
             ( s,
               get_list src (fun src ->
                   let i = get_u32 src in
                   (i, get_string src)) )))
  | '\011' -> Hello (get_namespace src)
  | '\012' -> Ping
  | '\013' -> Stats
  | '\014' ->
      let seed = get_u64 src in
      let capacity = get_u32 src in
      let max_lhs = get_u32 src in
      let cols = get_u32 src in
      if cols < 1 || cols > max_row_cells then
        raise
          (Protocol_error
             (Printf.sprintf "Begin_dynamic: arity %d outside 1..%d" cols max_row_cells));
      let rows =
        get_list src (fun src ->
            let row = get_row src in
            check_row_arity ~what:"Begin_dynamic" ~cols row;
            row)
      in
      Begin_dynamic { seed; capacity; max_lhs; cols; rows }
  | '\015' -> Insert_row (get_row src)
  | '\016' -> Delete_row (get_u32 src)
  | '\017' -> Revalidate
  | '\006' -> Digest
  | '\007' -> Total_bytes
  | '\008' -> Bye
  | c -> raise (Protocol_error (Printf.sprintf "bad request tag %d" (Char.code c)))

let write_response_sink k resp =
  match resp with
  | Ok -> k.put_char '\100'
  | Value v ->
      k.put_char '\101';
      put_string k v
  | Values vs ->
      k.put_char '\105';
      put_count k (List.length vs);
      List.iter (put_string k) vs
  | Digests { full; shape; count } ->
      k.put_char '\102';
      put_u64 k full;
      put_u64 k shape;
      put_u32 k count
  | Bytes_total n ->
      k.put_char '\103';
      put_u32 k n
  | Pong -> k.put_char '\106'
  | Stats_reply s ->
      k.put_char '\107';
      put_u64 k s.uptime_us;
      put_u32 k s.sessions;
      put_u64 k (Int64.of_int s.frames);
      put_u64 k (Int64.of_int s.bytes_in);
      put_u64 k (Int64.of_int s.bytes_out);
      put_u32 k s.p50_us;
      put_u32 k s.p95_us;
      put_u32 k s.p99_us;
      (* Fixed-width on purpose: journal replay re-accounts response
         sizes with [response_size], so a [Stats_reply]'s wire size must
         not depend on the counter values. *)
      put_u64 k (Int64.of_int s.loop_reads);
      put_u64 k (Int64.of_int s.loop_writes);
      put_u64 k (Int64.of_int s.loop_wakeups);
      put_u64 k (Int64.of_int s.loop_rounds);
      put_u64 k (Int64.of_int s.inserts);
      put_u64 k (Int64.of_int s.deletes);
      put_u64 k (Int64.of_int s.revalidates);
      put_u32 k s.dyn_sessions
  | Row_id id ->
      k.put_char '\108';
      put_u32 k id
  | Fds_reply { fds; dyn_full; dyn_shape; dyn_events } ->
      k.put_char '\109';
      put_count k (List.length fds);
      List.iter
        (fun { fd_lhs; fd_rhs; fd_valid } ->
          put_u64 k fd_lhs;
          put_u32 k fd_rhs;
          k.put_char (if fd_valid then '\001' else '\000'))
        fds;
      put_u64 k dyn_full;
      put_u64 k dyn_shape;
      put_u32 k dyn_events
  | Error msg ->
      k.put_char '\104';
      put_string k msg

let read_response_src src =
  match src.get_char () with
  | '\100' -> Ok
  | '\101' -> Value (get_string src)
  | '\105' -> Values (get_list src get_string)
  | '\102' ->
      let full = get_u64 src in
      let shape = get_u64 src in
      let count = get_u32 src in
      Digests { full; shape; count }
  | '\103' -> Bytes_total (get_u32 src)
  | '\106' -> Pong
  | '\107' ->
      let uptime_us = get_u64 src in
      let sessions = get_u32 src in
      let frames = Int64.to_int (get_u64 src) in
      let bytes_in = Int64.to_int (get_u64 src) in
      let bytes_out = Int64.to_int (get_u64 src) in
      let p50_us = get_u32 src in
      let p95_us = get_u32 src in
      let p99_us = get_u32 src in
      let loop_reads = Int64.to_int (get_u64 src) in
      let loop_writes = Int64.to_int (get_u64 src) in
      let loop_wakeups = Int64.to_int (get_u64 src) in
      let loop_rounds = Int64.to_int (get_u64 src) in
      let inserts = Int64.to_int (get_u64 src) in
      let deletes = Int64.to_int (get_u64 src) in
      let revalidates = Int64.to_int (get_u64 src) in
      let dyn_sessions = get_u32 src in
      Stats_reply
        { uptime_us; sessions; frames; bytes_in; bytes_out; p50_us; p95_us; p99_us;
          loop_reads; loop_writes; loop_wakeups; loop_rounds;
          inserts; deletes; revalidates; dyn_sessions }
  | '\108' -> Row_id (get_u32 src)
  | '\109' ->
      let fds =
        get_list src (fun src ->
            let fd_lhs = get_u64 src in
            let fd_rhs = get_u32 src in
            let fd_valid =
              match src.get_char () with
              | '\000' -> false
              | '\001' -> true
              | c -> raise (Protocol_error (Printf.sprintf "bad fd validity byte %d" (Char.code c)))
            in
            { fd_lhs; fd_rhs; fd_valid })
      in
      let dyn_full = get_u64 src in
      let dyn_shape = get_u64 src in
      let dyn_events = get_u32 src in
      Fds_reply { fds; dyn_full; dyn_shape; dyn_events }
  | '\104' -> Error (get_string src)
  | c -> raise (Protocol_error (Printf.sprintf "bad response tag %d" (Char.code c)))

let write_request oc req =
  write_request_sink (channel_sink oc) req;
  flush oc

let read_request ic = read_request_src (channel_source ic)

let write_response oc resp =
  write_response_sink (channel_sink oc) resp;
  flush oc

let read_response ic = read_response_src (channel_source ic)

(* Canonical encoded sizes; the codec is deterministic so this equals the
   number of bytes the frame occupies on the wire. *)
let request_size req =
  let n = ref 0 in
  write_request_sink (counting_sink n) req;
  !n

let response_size resp =
  let n = ref 0 in
  write_response_sink (counting_sink n) resp;
  !n
