(** Cost accounting for the three metrics the paper evaluates (§VII-A):
    runtime is measured by the benches; this module tracks (1) bytes moved
    over the client↔server channel and round trips, (2) server-side
    storage, and (3) client-side memory.

    Client memory is tracked as a ledger: protocol components [alloc] and
    [free] the structures the client must hold (position maps, stashes,
    working buffers), and the peak is reported.  Server storage is owned by
    {!Server} / {!Block_store} and folded into {!snapshot}. *)

type t

type snapshot = {
  bytes_to_server : int;
  bytes_to_client : int;
  round_trips : int;
  server_bytes : int;
  client_peak_bytes : int;
  client_current_bytes : int;
  client_underflows : int;
      (** Times {!client_free} was asked to free more than was allocated.
          Always 0 in a correct protocol run; the clamp keeps the ledger
          usable, this counter keeps the bug visible. *)
}

val create : unit -> t

val sent_to_server : t -> int -> unit
val sent_to_client : t -> int -> unit

val round_trip : t -> unit
(** One client↔server message exchange.  {!Block_store} and {!Server}
    count one trip per wire frame (batched or single) automatically; only
    protocol steps that exchange messages outside the block channel (e.g.
    the enclave FD-check of {!Set_level}) should call this directly. *)

val client_alloc : t -> int -> unit
val client_free : t -> int -> unit
val client_set : t -> tag:string -> int -> unit
(** [client_set t ~tag bytes] declares the current size of the named client
    structure (replacing its previous size); convenient for structures that
    grow, like an ORAM stash. *)

val set_server_bytes : t -> int -> unit
(** Owned by {!Server}: current total of all block stores. *)

val snapshot : t -> snapshot
val reset_peak : t -> unit

val restore : t -> snapshot -> unit
(** Overwrite every counter of [t] with the values of a saved snapshot,
    so a ledger reloaded from disk continues exactly where it left off.
    Tagged client-structure sizes (see {!client_set}) are not part of a
    snapshot and are cleared. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
