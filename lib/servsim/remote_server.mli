(** The legacy one-client server process S: a blocking request loop over
    the {!Wire} protocol, one session per process.

    Dispatch lives in {!Handler} (shared with the multi-tenant daemon in
    [Service.Daemon]); this module only owns the blocking channel loop
    and the fork/socketpair plumbing.  The session holds the ciphertext
    stores, its access-pattern {!Trace} — the adversary's view recorded
    where the adversary actually sits — and a per-session {!Cost}
    ledger.  Run it in a forked child over a socketpair ({!serve_fd}) or
    embed the loop in any process with connected channels ({!serve}). *)

val serve : in_channel -> out_channel -> unit
(** Serve requests until [Bye] or EOF. *)

val serve_fd : Unix.file_descr -> unit
(** Convenience: wrap a descriptor and {!serve}. *)

val fork_server : unit -> Unix.file_descr * int
(** [fork_server ()] starts a child process serving one endpoint of a
    socketpair; returns the parent's endpoint and the child pid.  Close
    the descriptor (or send [Bye]) and reap the pid when done.

    Implementation: [Unix.fork] when possible; once domains have been
    spawned (OCaml 5 forbids forking then) it falls back to re-executing
    [Sys.executable_name] with the socket descriptor in the environment —
    which requires the hosting program to call {!maybe_serve_child} at
    startup. *)

val maybe_serve_child : unit -> unit
(** Call first thing in [main]: if this process was started as a re-exec
    server child (see {!fork_server}), runs the serve loop and exits;
    otherwise returns immediately. *)
